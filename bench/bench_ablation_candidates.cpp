// Ablation: candidate-set strategy for the LCRB-P greedy.
//
// kBbstUnion restricts candidates to nodes that can reach some bridge end no
// later than the rumor; kAllNodes is the paper's literal V \ S_R;
// kBridgeEnds is the cheap lower bound (seed the bridge ends themselves).
#include <iostream>

#include "common.h"

int main(int argc, char** argv) {
  using namespace lcrb::bench;
  using namespace lcrb;
  ThreadPool pool;
  BenchContext ctx =
      parse_context(argc, argv, "Ablation — greedy candidate strategies");
  ctx.pool = &pool;
  const Dataset ds = make_hep_dataset(ctx);

  const NodeId csize = ds.partition.size_of(ds.community);
  const ExperimentSetup setup = prepare_experiment(
      ds.graph, ds.partition, ds.community,
      std::max<std::size_t>(1, csize / 10), ctx.seed + 101);
  print_dataset_banner(std::cout, ds, setup);

  MonteCarloConfig precise;
  precise.runs = 200;
  precise.max_hops = 31;
  precise.seed = ctx.seed + 999;

  struct Variant {
    const char* label;
    CandidateStrategy strategy;
    std::size_t cap;
  };
  const Variant variants[] = {
      {"bbst_union", CandidateStrategy::kBbstUnion, 0},
      {"bbst_union+cap", CandidateStrategy::kBbstUnion, ctx.max_candidates},
      {"all_nodes", CandidateStrategy::kAllNodes, 0},
      {"bridge_ends", CandidateStrategy::kBridgeEnds, 0},
  };

  TextTable table;
  table.set_header({"strategy", "candidates", "|P|", "saved% (precise)",
                    "select time (s)"});
  for (const Variant& v : variants) {
    LcrbOptions opts;
    opts.alpha = 0.9;
    opts.candidates = v.strategy;
    opts.max_candidates = v.cap;
    opts.budget = setup.rumors.size() * 2;
    opts.sigma_samples = ctx.sigma_samples;
    opts.sigma_seed = ctx.seed + 7;

    Timer t;
    const GreedyResult r = greedy_lcrbp_from_bridges(
        ds.graph, setup.rumors, setup.bridges, opts.greedy_config(), &pool);
    const double sel_time = t.seconds();
    const HopSeries s =
        evaluate_protectors(setup, r.protectors, precise, &pool);
    table.add_values(v.label, r.candidate_count, r.protectors.size(),
                     fixed(100.0 * s.saved_fraction_mean),
                     fixed(sel_time, 2));
  }
  table.print(std::cout);
  return 0;
}
