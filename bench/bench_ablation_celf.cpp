// Ablation: CELF lazy evaluation vs the paper's plain greedy re-evaluation.
//
// Both must pick (near-)identical seed sets; CELF should need a fraction of
// the sigma evaluations and wall time. This is the design choice DESIGN.md
// §6.3/§6.5 calls out.
#include <iostream>

#include "common.h"

int main(int argc, char** argv) {
  using namespace lcrb::bench;
  using namespace lcrb;
  ThreadPool pool;
  BenchContext ctx =
      parse_context(argc, argv, "Ablation — CELF vs plain greedy");
  ctx.pool = &pool;
  const Dataset ds = make_hep_dataset(ctx);

  const NodeId csize = ds.partition.size_of(ds.community);
  // Enough rumor originators that the greedy runs ~10 rounds — CELF's lazy
  // bounds only pay off past the first pick.
  const ExperimentSetup setup = prepare_experiment(
      ds.graph, ds.partition, ds.community,
      std::max<std::size_t>(5, csize / 5), ctx.seed + 101);
  print_dataset_banner(std::cout, ds, setup);

  TextTable table;
  table.set_header({"variant", "|P|", "achieved", "sigma evals", "time (s)"});
  for (const bool use_celf : {true, false}) {
    LcrbOptions opts;
    opts.alpha = 0.99;
    opts.use_celf = use_celf;
    opts.budget = 10;
    opts.max_candidates = ctx.max_candidates;
    opts.sigma_samples = ctx.sigma_samples;
    opts.sigma_seed = ctx.seed + 7;

    Timer t;
    const GreedyResult r = greedy_lcrbp_from_bridges(
        ds.graph, setup.rumors, setup.bridges, opts.greedy_config(), &pool);
    table.add_values(use_celf ? "CELF" : "plain", r.protectors.size(),
                     fixed(r.achieved_fraction, 3), r.sigma_evaluations,
                     fixed(t.seconds(), 2));
  }
  table.print(std::cout);
  std::cout << "\n(same sigma sample seeds; identical outputs expected up to "
               "ties)\n";
  return 0;
}
