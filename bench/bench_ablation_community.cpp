// Ablation: how the community-detection method upstream affects rumor
// blocking downstream.
//
// The paper delegates community structure to Louvain [25]. We compare
// planted ground truth, Louvain, and label propagation on the same network:
// partition quality (NMI vs planted), the bridge-end set each induces, the
// resulting SCBG cost, and — scored against the *planted* boundary — how
// many of the true bridge ends the SCBG seeds actually save under DOAM.
#include <iostream>

#include "common.h"

int main(int argc, char** argv) {
  using namespace lcrb::bench;
  using namespace lcrb;
  BenchContext ctx = parse_context(
      argc, argv, "Ablation — community detection method", 0.3);
  const Dataset ds = make_hep_dataset(ctx);
  const Partition& truth = ds.partition;

  struct Method {
    const char* label;
    Partition partition;
  };
  std::vector<Method> methods;
  methods.push_back({"ground truth", truth});
  methods.push_back({"louvain", louvain(ds.graph, {.seed = ctx.seed + 3})});
  methods.push_back(
      {"label prop", label_propagation(ds.graph, {.seed = ctx.seed + 3})});

  // The true rumor community and one fixed rumor draw inside it.
  const ExperimentSetup true_setup = prepare_experiment(
      ds.graph, truth, ds.community,
      std::max<std::size_t>(3, truth.size_of(ds.community) / 10),
      ctx.seed + 101);
  print_dataset_banner(std::cout, ds, true_setup);

  TextTable table;
  table.set_header({"method", "communities", "NMI", "|C_r|", "|B|",
                    "SCBG |P|", "true bridge ends saved"});
  for (const Method& m : methods) {
    const double nmi = normalized_mutual_information(m.partition, truth);
    // Map the rumor seeds into this partition: the community holding the
    // majority of them plays the rumor community.
    std::vector<std::size_t> votes(m.partition.num_communities(), 0);
    for (NodeId r : true_setup.rumors) ++votes[m.partition.community_of(r)];
    const CommunityId rc = static_cast<CommunityId>(
        std::max_element(votes.begin(), votes.end()) - votes.begin());
    // Keep only the seeds that landed in that community (the method's view).
    std::vector<NodeId> rumors;
    for (NodeId r : true_setup.rumors) {
      if (m.partition.community_of(r) == rc) rumors.push_back(r);
    }
    if (rumors.empty()) continue;

    const BridgeEndResult bridges =
        find_bridge_ends(ds.graph, m.partition, rc, rumors);
    std::size_t scbg_cost = 0;
    double saved = 1.0;
    if (!bridges.bridge_ends.empty()) {
      const ScbgResult sc =
          scbg_from_bridges(ds.graph, rumors, bridges);
      scbg_cost = sc.protectors.size();
      // Score against the PLANTED boundary with the full rumor set.
      SeedSets seeds{true_setup.rumors, sc.protectors};
      const auto ok =
          doam_saved(ds.graph, seeds, true_setup.bridges.bridge_ends);
      std::size_t n_saved = 0;
      for (bool s : ok) n_saved += s;
      saved = true_setup.bridges.bridge_ends.empty()
                  ? 1.0
                  : static_cast<double>(n_saved) /
                        static_cast<double>(
                            true_setup.bridges.bridge_ends.size());
    }
    table.add_values(m.label, m.partition.num_communities(), fixed(nmi, 3),
                     m.partition.size_of(rc), bridges.bridge_ends.size(),
                     scbg_cost, fixed(100.0 * saved) + "%");
  }
  table.print(std::cout);
  std::cout << "\n(true-bridge-end protection uses the planted boundary and "
               "the full rumor\n seed set, so detection mistakes show up as "
               "unprotected true bridge ends)\n";
  return 0;
}
