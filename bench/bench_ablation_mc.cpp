// Ablation: sigma-estimator sample count vs greedy solution quality.
//
// Fewer Monte-Carlo samples inside the greedy make selection cheaper but
// noisier. We select with S in {5, 10, 20, 40} samples and score every
// resulting seed set with one high-precision evaluator (200 runs).
#include <iostream>

#include "common.h"

int main(int argc, char** argv) {
  using namespace lcrb::bench;
  using namespace lcrb;
  ThreadPool pool;
  BenchContext ctx =
      parse_context(argc, argv, "Ablation — sigma sample count");
  ctx.pool = &pool;
  const Dataset ds = make_hep_dataset(ctx);

  const NodeId csize = ds.partition.size_of(ds.community);
  const ExperimentSetup setup = prepare_experiment(
      ds.graph, ds.partition, ds.community,
      std::max<std::size_t>(1, csize / 20), ctx.seed + 101);
  print_dataset_banner(std::cout, ds, setup);

  MonteCarloConfig precise;
  precise.runs = 200;
  precise.max_hops = 31;
  precise.seed = ctx.seed + 999;

  TextTable table;
  table.set_header(
      {"samples", "|P|", "saved% (precise)", "select time (s)"});
  for (const std::size_t samples : {5u, 10u, 20u, 40u}) {
    LcrbOptions opts;
    opts.alpha = 0.9;
    opts.budget = setup.rumors.size() * 2;
    opts.max_candidates = ctx.max_candidates;
    opts.sigma_samples = samples;
    opts.sigma_seed = ctx.seed + 7;

    Timer t;
    const GreedyResult r = greedy_lcrbp_from_bridges(
        ds.graph, setup.rumors, setup.bridges, opts.greedy_config(), &pool);
    const double sel_time = t.seconds();
    const HopSeries s =
        evaluate_protectors(setup, r.protectors, precise, &pool);
    table.add_values(samples, r.protectors.size(),
                     fixed(100.0 * s.saved_fraction_mean),
                     fixed(sel_time, 2));
  }
  table.print(std::cout);
  std::cout << "\n(saved%% scored by an independent 200-run evaluator)\n";
  return 0;
}
