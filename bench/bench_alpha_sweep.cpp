// Extension bench: the LCRB-P cost curve — protectors needed (greedy) as the
// required protection level alpha sweeps from 0.5 to 0.95.
//
// This is the "least cost" reading of Definition 2/3: LCRB-D (alpha = 1,
// SCBG's cost under DOAM) is printed as the reference ceiling.
#include <iostream>

#include "common.h"

int main(int argc, char** argv) {
  using namespace lcrb::bench;
  using namespace lcrb;
  ThreadPool pool;
  BenchContext ctx = parse_context(
      argc, argv, "Extension — LCRB-P cost vs protection level alpha");
  ctx.pool = &pool;
  const Dataset ds = make_hep_dataset(ctx);

  const NodeId csize = ds.partition.size_of(ds.community);
  const ExperimentSetup setup = prepare_experiment(
      ds.graph, ds.partition, ds.community,
      std::max<std::size_t>(3, csize / 10), ctx.seed + 101);
  print_dataset_banner(std::cout, ds, setup);

  const ScbgResult sc =
      scbg_from_bridges(ds.graph, setup.rumors, setup.bridges);

  TextTable table;
  table.set_header({"alpha", "|P| (greedy)", "achieved", "sigma evals"});
  for (const double alpha : {0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    LcrbOptions opts;
    opts.alpha = alpha;
    opts.budget = setup.bridges.bridge_ends.size();
    opts.max_candidates = ctx.max_candidates;
    opts.sigma_samples = ctx.sigma_samples;
    opts.sigma_seed = ctx.seed + 7;
    const GreedyResult r = greedy_lcrbp_from_bridges(
        ds.graph, setup.rumors, setup.bridges, opts.greedy_config(), &pool);
    table.add_values(fixed(alpha, 2), r.protectors.size(),
                     fixed(r.achieved_fraction, 3), r.sigma_evaluations);
  }
  table.add_values("1.00 (SCBG/DOAM)", sc.protectors.size(), "1.000", "-");
  table.print(std::cout);
  std::cout << "\n(costs rise sharply toward alpha=1 — the LCRB-D regime "
               "where SCBG's\n set-cover guarantee takes over)\n";
  return 0;
}
