// Extension of Table I: cover cost under DOAM for the full baseline zoo.
//
// For each ordering (MaxDegree, PageRank, Betweenness, DegreeDiscount,
// Proximity) we report the shortest prefix that protects every bridge end,
// next to SCBG's purpose-built cost. Centrality orders are rumor-agnostic,
// so their covering prefixes are dramatically longer — the point the paper
// makes with MaxDegree, extended to stronger centralities.
#include <iostream>

#include "common.h"

int main(int argc, char** argv) {
  using namespace lcrb::bench;
  using namespace lcrb;
  BenchContext ctx = parse_context(
      argc, argv, "Extension — DOAM cover cost across baseline orderings",
      /*default_scale=*/0.3);
  const Dataset ds = make_hep_dataset(ctx);

  TextTable table;
  table.set_header({"|R|", "SCBG", "Proximity", "MaxDegree", "PageRank",
                    "Betweenness", "DegreeDiscount"});

  // Betweenness is O(V*E): computed once per dataset.
  const std::vector<double> bc = betweenness_centrality(ds.graph);

  Rng rng(ctx.seed + 31);
  for (const double frac : {0.01, 0.05, 0.10}) {
    const NodeId csize = ds.partition.size_of(ds.community);
    const std::size_t nr =
        std::max<std::size_t>(1, static_cast<std::size_t>(frac * csize));

    RunningStats scbg_c, prox_c, md_c, pr_c, bt_c, dd_c;
    for (std::size_t trial = 0; trial < ctx.trials; ++trial) {
      const ExperimentSetup s = prepare_experiment(
          ds.graph, ds.partition, ds.community, nr, ctx.seed + 700 + trial);
      if (s.bridges.bridge_ends.empty()) continue;

      scbg_c.add(static_cast<double>(
          scbg_from_bridges(ds.graph, s.rumors, s.bridges).protectors.size()));

      auto cost = [&](const std::vector<NodeId>& order) {
        return static_cast<double>(
            cover_cost_doam(ds.graph, s.rumors, s.bridges.bridge_ends, order)
                .cost);
      };
      Rng prox_rng(rng.next());
      prox_c.add(cost(proximity_protectors(ds.graph, s.rumors,
                                           ds.graph.num_nodes(), prox_rng)));
      md_c.add(cost(
          maxdegree_protectors(ds.graph, s.rumors, ds.graph.num_nodes())));
      pr_c.add(cost(
          pagerank_protectors(ds.graph, s.rumors, ds.graph.num_nodes())));

      // Betweenness order (rumors excluded).
      std::vector<bool> is_rumor(ds.graph.num_nodes(), false);
      for (NodeId r : s.rumors) is_rumor[r] = true;
      std::vector<NodeId> bt_order;
      for (NodeId v = 0; v < ds.graph.num_nodes(); ++v) {
        if (!is_rumor[v]) bt_order.push_back(v);
      }
      std::stable_sort(bt_order.begin(), bt_order.end(),
                       [&bc](NodeId a, NodeId b) { return bc[a] > bc[b]; });
      bt_c.add(cost(bt_order));

      dd_c.add(cost(degree_discount(ds.graph, ds.graph.num_nodes(), 0.05,
                                    s.rumors)));
    }
    table.add_values(std::to_string(nr) + " (" + fixed(frac * 100, 0) + "%)",
                     fixed(scbg_c.mean()), fixed(prox_c.mean()),
                     fixed(md_c.mean()), fixed(pr_c.mean()),
                     fixed(bt_c.mean()), fixed(dd_c.mean()));
  }
  table.print(std::cout);
  std::cout << "\n(Hep substitute; costs averaged over " << ctx.trials
            << " rumor re-draws; every column except SCBG is a covering\n"
            << " prefix of a rumor-agnostic order — rumor-aware placement is "
               "what wins)\n";
  return 0;
}
