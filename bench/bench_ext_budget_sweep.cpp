// Extension: protection as a function of the protector budget |P|.
//
// Every selector emits a ranked list; we evaluate each prefix size under
// OPOAO (saved bridge ends, %) with one coupled Monte-Carlo evaluator.
// The greedy's prefix-k IS its budget-k output (greedy is prefix-closed),
// so a single selection run covers the whole sweep.
#include <iostream>

#include "common.h"

int main(int argc, char** argv) {
  using namespace lcrb::bench;
  using namespace lcrb;
  ThreadPool pool;
  BenchContext ctx =
      parse_context(argc, argv, "Extension — saved%% vs protector budget");
  ctx.pool = &pool;
  const Dataset ds = make_hep_dataset(ctx);

  const NodeId csize = ds.partition.size_of(ds.community);
  const ExperimentSetup setup = prepare_experiment(
      ds.graph, ds.partition, ds.community,
      std::max<std::size_t>(3, csize / 10), ctx.seed + 101);
  print_dataset_banner(std::cout, ds, setup);

  const std::vector<std::size_t> budgets{1, 2, 4, 8, 16};
  const std::size_t max_budget = budgets.back();

  // One ranked list per selector, long enough for the largest budget.
  LcrbOptions opts;
  opts.budget = max_budget;
  opts.selector_seed = ctx.seed + 5;
  opts.alpha = 1.0;  // never stop early; the budget cap rules
  opts.max_candidates = ctx.max_candidates;
  opts.sigma_samples = ctx.sigma_samples;
  opts.sigma_seed = ctx.seed + 7;
  opts.gvs_samples = ctx.sigma_samples;

  const SelectorKind kinds[] = {
      SelectorKind::kGreedy,    SelectorKind::kGvs,
      SelectorKind::kProximity, SelectorKind::kMaxDegree,
      SelectorKind::kPageRank,  SelectorKind::kDegreeDiscount};

  MonteCarloConfig mc;
  mc.runs = ctx.mc_runs;
  mc.max_hops = 31;
  mc.seed = ctx.seed + 13;

  TextTable table;
  table.set_header({"|P|", "Greedy", "GVS", "Proximity", "MaxDegree",
                    "PageRank", "DegreeDiscount"});
  std::vector<std::vector<NodeId>> orders;
  for (SelectorKind kind : kinds) {
    opts.selector = kind;
    orders.push_back(select_protectors(setup, opts, &pool));
  }
  for (std::size_t budget : budgets) {
    std::vector<std::string> row{std::to_string(budget)};
    for (const auto& order : orders) {
      const std::size_t take = std::min(budget, order.size());
      const std::span<const NodeId> prefix(order.data(), take);
      const HopSeries s = evaluate_protectors(setup, prefix, mc, &pool);
      row.push_back(fixed(100.0 * s.saved_fraction_mean) + "%");
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\n(cells: mean % of bridge ends saved under OPOAO, " << mc.runs
            << " runs; each column is prefix sizes of ONE ranked selection)\n";
  return 0;
}
