// Extension bench: LCRB beyond the paper's two models.
//
// The paper's conclusion suggests studying LCRB "under other influence
// diffusion models". Our greedy only touches the diffusion model through the
// sigma estimator, so we run the identical pipeline under competitive IC and
// competitive LT and compare all selectors' saved fractions per model.
#include <iostream>

#include "common.h"

int main(int argc, char** argv) {
  using namespace lcrb::bench;
  using namespace lcrb;
  ThreadPool pool;
  BenchContext ctx = parse_context(
      argc, argv, "Extension — LCRB under competitive IC and LT");
  ctx.pool = &pool;
  const Dataset ds = make_hep_dataset(ctx);

  const NodeId csize = ds.partition.size_of(ds.community);
  const ExperimentSetup setup = prepare_experiment(
      ds.graph, ds.partition, ds.community,
      std::max<std::size_t>(3, csize / 10), ctx.seed + 101);
  print_dataset_banner(std::cout, ds, setup);

  struct ModelCase {
    const char* label;
    DiffusionModel model;
    double ic_p;
  };
  const ModelCase cases[] = {
      {"OPOAO", DiffusionModel::kOpoao, 0.0},
      {"IC p=0.10", DiffusionModel::kIc, 0.10},
      {"IC p=0.25", DiffusionModel::kIc, 0.25},
      {"LT", DiffusionModel::kLt, 0.0},
  };

  TextTable table;
  table.set_header({"model", "Greedy", "Proximity", "MaxDegree", "PageRank",
                    "NoBlocking"});
  for (const ModelCase& mcase : cases) {
    LcrbOptions opts;
    opts.selector_seed = ctx.seed + 5;
    opts.alpha = 0.95;
    opts.max_candidates = ctx.max_candidates;
    opts.sigma_samples = ctx.sigma_samples;
    opts.sigma_seed = ctx.seed + 7;
    opts.model = mcase.model;        // greedy optimizes the model
    opts.ic_edge_prob = mcase.ic_p;  // it will be judged under

    MonteCarloConfig mc;
    mc.runs = ctx.mc_runs;
    mc.max_hops = 31;
    mc.model = mcase.model;
    mc.ic_edge_prob = mcase.ic_p;
    mc.seed = ctx.seed + 13;

    std::vector<std::string> row{mcase.label};
    for (SelectorKind kind :
         {SelectorKind::kGreedy, SelectorKind::kProximity,
          SelectorKind::kMaxDegree, SelectorKind::kPageRank,
          SelectorKind::kNoBlocking}) {
      opts.selector = kind;
      opts.budget =
          kind == SelectorKind::kNoBlocking ? 0 : setup.rumors.size();
      const auto protectors = select_protectors(setup, opts, &pool);
      const HopSeries s = evaluate_protectors(setup, protectors, mc, &pool);
      row.push_back(fixed(100.0 * s.saved_fraction_mean) + "%");
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\n(cells: mean % of bridge ends saved; the greedy re-targets "
               "its sigma\n estimator to each model — no code changes "
               "required)\n";
  return 0;
}
