// Reproduces Fig. 4: infected nodes under OPOAO, Hep collaboration network,
// |N|=15233 |C|=308 |B|=387 — Greedy vs Proximity vs MaxDegree vs NoBlocking.
//
// Expected shape (paper §VI-B.2): Greedy best from ~hop 9 on; Proximity and
// MaxDegree better in the earliest hops; Proximity clearly beats MaxDegree on
// this low-degree network; all curves flatten past ~31 hops.
#include <iostream>

#include "common.h"

int main(int argc, char** argv) {
  using namespace lcrb::bench;
  lcrb::ThreadPool pool;
  BenchContext ctx = parse_context(
      argc, argv, "Fig. 4 — OPOAO infected-vs-hops, Hep (|C|=308 analog)", /*default_scale=*/0.2);
  ctx.pool = &pool;
  const Dataset ds = make_hep_dataset(ctx);
  run_opoao_figure(std::cout, ds, ctx, {0.01, 0.05, 0.10});
  return 0;
}
