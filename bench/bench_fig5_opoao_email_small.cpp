// Reproduces Fig. 5: infected nodes under OPOAO, Enron email network,
// |N|=36692 |C|=80 |B|=135 — Greedy vs Proximity vs MaxDegree vs NoBlocking.
//
// Expected shape: Greedy wins from mid-hops; Proximity ~= MaxDegree (dense
// network shrinks Proximity's early advantage).
#include <iostream>

#include "common.h"

int main(int argc, char** argv) {
  using namespace lcrb::bench;
  lcrb::ThreadPool pool;
  BenchContext ctx = parse_context(
      argc, argv, "Fig. 5 — OPOAO infected-vs-hops, Email (|C|=80 analog)", /*default_scale=*/0.3);
  ctx.pool = &pool;
  const Dataset ds = make_email_small_dataset(ctx);
  run_opoao_figure(std::cout, ds, ctx, {0.05, 0.10, 0.20});
  return 0;
}
