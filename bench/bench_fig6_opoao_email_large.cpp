// Reproduces Fig. 6: infected nodes under OPOAO, Enron email network,
// |N|=36692 |C|=2631 |B|=2250 — Greedy vs Proximity vs MaxDegree vs
// NoBlocking on the large, dense rumor community.
#include <iostream>

#include "common.h"

int main(int argc, char** argv) {
  using namespace lcrb::bench;
  lcrb::ThreadPool pool;
  BenchContext ctx = parse_context(
      argc, argv, "Fig. 6 — OPOAO infected-vs-hops, Email (|C|=2631 analog)");
  ctx.pool = &pool;
  const Dataset ds = make_email_large_dataset(ctx);
  run_opoao_figure(std::cout, ds, ctx, {0.01, 0.05, 0.10});
  return 0;
}
