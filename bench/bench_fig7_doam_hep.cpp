// Reproduces Fig. 7: infected nodes under DOAM on the Hep network with every
// selector's seed count pinned to SCBG's cost, for |R| in {1%, 5%, 10%}.
//
// Expected shape: rumors spread fast for ~4 hops then stop; SCBG protects
// the most nodes (Proximity may beat it by ~1 node at |R|=1%); Proximity
// beats MaxDegree on this low-degree network.
#include <iostream>

#include "common.h"

int main(int argc, char** argv) {
  using namespace lcrb::bench;
  BenchContext ctx = parse_context(
      argc, argv, "Fig. 7 — DOAM infected-vs-hops, Hep (|C|=308 analog)", /*default_scale=*/0.5);
  const Dataset ds = make_hep_dataset(ctx);
  run_doam_figure(std::cout, ds, ctx, {0.01, 0.05, 0.10});
  return 0;
}
