// Reproduces Fig. 8: infected nodes under DOAM on the Enron email network,
// small community (|C|=80 analog), |R| in {5%, 10%, 20%}.
#include <iostream>

#include "common.h"

int main(int argc, char** argv) {
  using namespace lcrb::bench;
  BenchContext ctx = parse_context(
      argc, argv, "Fig. 8 — DOAM infected-vs-hops, Email (|C|=80 analog)", /*default_scale=*/0.5);
  const Dataset ds = make_email_small_dataset(ctx);
  run_doam_figure(std::cout, ds, ctx, {0.05, 0.10, 0.20});
  return 0;
}
