// Reproduces Fig. 9: infected nodes under DOAM on the Enron email network,
// large community (|C|=2631 analog), |R| in {1%, 5%, 10%}.
//
// Expected shape: MaxDegree beats Proximity here (higher average degree),
// reversing Figs. 7-8; SCBG still protects the most nodes.
#include <iostream>

#include "common.h"

int main(int argc, char** argv) {
  using namespace lcrb::bench;
  BenchContext ctx = parse_context(
      argc, argv, "Fig. 9 — DOAM infected-vs-hops, Email (|C|=2631 analog)", /*default_scale=*/0.5);
  const Dataset ds = make_email_large_dataset(ctx);
  run_doam_figure(std::cout, ds, ctx, {0.01, 0.05, 0.10});
  return 0;
}
