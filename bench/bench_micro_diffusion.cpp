// Microbenchmarks (google-benchmark): diffusion simulator throughput.
#include <benchmark/benchmark.h>

#include "build_guard.h"

#include "lcrb/core.h"

namespace {

using namespace lcrb;

DiGraph bench_graph(NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  return erdos_renyi_m(n, static_cast<EdgeId>(n) * 8, true, rng);
}

SeedSets bench_seeds(NodeId n) {
  SeedSets s;
  for (NodeId v = 0; v < 8; ++v) s.rumors.push_back(v);
  for (NodeId v = 8; v < 16 && v < n; ++v) s.protectors.push_back(v);
  return s;
}

void BM_Opoao(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const DiGraph g = bench_graph(n, 1);
  const SeedSets seeds = bench_seeds(n);
  OpoaoConfig cfg;
  cfg.max_steps = 31;
  std::uint64_t s = 0;
  for (auto _ : state) {
    DiffusionResult r = simulate_opoao(g, seeds, ++s, cfg);
    benchmark::DoNotOptimize(r.infected_count());
  }
}
BENCHMARK(BM_Opoao)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

void BM_Doam(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const DiGraph g = bench_graph(n, 2);
  const SeedSets seeds = bench_seeds(n);
  for (auto _ : state) {
    DiffusionResult r = simulate_doam(g, seeds);
    benchmark::DoNotOptimize(r.infected_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_Doam)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

void BM_DoamAnalyticSavedTest(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const DiGraph g = bench_graph(n, 3);
  const SeedSets seeds = bench_seeds(n);
  std::vector<NodeId> targets;
  for (NodeId v = 100; v < 200 && v < n; ++v) targets.push_back(v);
  for (auto _ : state) {
    auto saved = doam_saved(g, seeds, targets);
    benchmark::DoNotOptimize(saved.size());
  }
}
BENCHMARK(BM_DoamAnalyticSavedTest)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_CompetitiveIc(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const DiGraph g = bench_graph(n, 4);
  const SeedSets seeds = bench_seeds(n);
  IcConfig cfg;
  cfg.edge_prob = 0.1;
  std::uint64_t s = 0;
  for (auto _ : state) {
    DiffusionResult r = simulate_competitive_ic(g, seeds, ++s, cfg);
    benchmark::DoNotOptimize(r.infected_count());
  }
}
BENCHMARK(BM_CompetitiveIc)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

void BM_CompetitiveLt(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const DiGraph g = bench_graph(n, 7);
  const SeedSets seeds = bench_seeds(n);
  LtConfig cfg;
  cfg.max_steps = 31;
  std::uint64_t s = 0;
  for (auto _ : state) {
    DiffusionResult r = simulate_competitive_lt(g, seeds, ++s, cfg);
    benchmark::DoNotOptimize(r.infected_count());
  }
}
BENCHMARK(BM_CompetitiveLt)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

// The unified run_cascade<Traits> kernel behind the model-generic simulate()
// entry point (diffusion/kernel.h + model_traits.h), one benchmark per
// model: what every subsystem that dispatches on DiffusionModel pays,
// including the one switch hop.
void BM_Kernel(benchmark::State& state) {
  const auto model = static_cast<DiffusionModel>(state.range(0));
  const auto n = static_cast<NodeId>(state.range(1));
  const DiGraph g = bench_graph(n, 8);
  const SeedSets seeds = bench_seeds(n);
  MonteCarloConfig cfg;
  cfg.model = model;
  cfg.max_hops = 31;
  cfg.ic_edge_prob = 0.1;
  std::uint64_t s = 0;
  for (auto _ : state) {
    DiffusionResult r = simulate(g, seeds, ++s, cfg);
    benchmark::DoNotOptimize(r.infected_count());
  }
  state.SetLabel(to_string(model));
}
BENCHMARK(BM_Kernel)
    ->ArgsProduct({{static_cast<long>(DiffusionModel::kOpoao),
                    static_cast<long>(DiffusionModel::kDoam),
                    static_cast<long>(DiffusionModel::kIc),
                    static_cast<long>(DiffusionModel::kLt),
                    static_cast<long>(DiffusionModel::kWc)},
                   {10000}})
    ->Unit(benchmark::kMicrosecond);

void BM_MonteCarloSeries(benchmark::State& state) {
  const DiGraph g = bench_graph(2000, 5);
  const SeedSets seeds = bench_seeds(2000);
  MonteCarloConfig cfg;
  cfg.runs = static_cast<std::size_t>(state.range(0));
  cfg.max_hops = 31;
  ThreadPool pool;
  for (auto _ : state) {
    HopSeries s = monte_carlo_series(g, seeds, cfg, {}, &pool);
    benchmark::DoNotOptimize(s.final_infected_mean);
  }
}
BENCHMARK(BM_MonteCarloSeries)
    ->Arg(10)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_SigmaEvaluation(benchmark::State& state) {
  const DiGraph g = bench_graph(2000, 6);
  std::vector<NodeId> rumors{0, 1, 2, 3};
  std::vector<NodeId> targets;
  for (NodeId v = 500; v < 540; ++v) targets.push_back(v);
  SigmaConfig cfg;
  cfg.samples = static_cast<std::size_t>(state.range(0));
  const SigmaEstimator est(g, rumors, targets, cfg);
  const NodeId protectors[] = {10, 11, 12};
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.sigma(protectors));
  }
}
BENCHMARK(BM_SigmaEvaluation)
    ->Arg(10)
    ->Arg(50)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  lcrb::bench::require_release_build("bench_micro_diffusion");
  benchmark::AddCustomContext("lcrb_build_type", lcrb::bench::kBuildType);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
