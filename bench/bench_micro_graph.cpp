// Microbenchmarks (google-benchmark): graph substrate throughput.
//
// The EfGraph entries double as the compressed-backend regression gate:
// tools/check_bench_graph.py reads the recorded BENCH_graph.json and fails
// CI when ef_bytes_per_arc exceeds 6 or the EfGraph BFS falls more than 2x
// behind the CSR BFS at the same size.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "build_guard.h"

#include "graph/ef_graph.h"
#include "lcrb/core.h"

namespace {

using namespace lcrb;

void BM_CsrBuild(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(1);
  // Pre-generate the arc list once; measure finalize() only.
  std::vector<std::pair<NodeId, NodeId>> arcs;
  for (EdgeId e = 0; e < static_cast<EdgeId>(n) * 8; ++e) {
    arcs.emplace_back(static_cast<NodeId>(rng.next_below(n)),
                      static_cast<NodeId>(rng.next_below(n)));
  }
  for (auto _ : state) {
    GraphBuilder b;
    b.reserve_nodes(n);
    b.reserve_edges(arcs.size());
    for (const auto& [u, v] : arcs) b.add_edge(u, v);
    DiGraph g = b.finalize();
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(arcs.size()));
}
BENCHMARK(BM_CsrBuild)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_BfsForward(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(2);
  const DiGraph g = erdos_renyi_m(n, static_cast<EdgeId>(n) * 8, true, rng);
  const NodeId src[] = {0};
  for (auto _ : state) {
    const BfsResult r = bfs_forward(g, src);
    benchmark::DoNotOptimize(r.dist.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_BfsForward)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_BfsForwardEf(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(2);  // same seed as BM_BfsForward: identical topology, fair ratio
  const DiGraph csr = erdos_renyi_m(n, static_cast<EdgeId>(n) * 8, true, rng);
  const EfGraph g = EfGraph::from_csr(csr);
  const NodeId src[] = {0};
  for (auto _ : state) {
    const BfsResult r = bfs_forward(g, src);
    benchmark::DoNotOptimize(r.dist.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_BfsForwardEf)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_EfCompress(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(2);
  const DiGraph csr = erdos_renyi_m(n, static_cast<EdgeId>(n) * 8, true, rng);
  for (auto _ : state) {
    EfGraph g = EfGraph::from_csr(csr);
    benchmark::DoNotOptimize(g.num_edges());
  }
  // Space ledger for the checker: both encodings' bytes-per-arc over the
  // same graph (CSR counts both directions' offset + endpoint arrays).
  const auto m = static_cast<double>(csr.num_edges());
  const EfGraph ef = EfGraph::from_csr(csr);
  const double csr_bytes =
      2.0 * ((csr.num_nodes() + 1.0) * sizeof(EdgeId) + m * sizeof(NodeId));
  state.counters["csr_bytes_per_arc"] = csr_bytes / m;
  state.counters["ef_bytes_per_arc"] =
      static_cast<double>(ef.memory_bytes()) / m;
}
BENCHMARK(BM_EfCompress)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_EfLoad(benchmark::State& state) {
  const bool use_mmap = state.range(1) != 0;
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(2);
  const DiGraph csr = erdos_renyi_m(n, static_cast<EdgeId>(n) * 8, true, rng);
  const EfGraph ef = EfGraph::from_csr(csr);
  const std::string path = "bench_micro_graph_ef_tmp.bin";
  ef.save(path);
  const EfMapMode mode = use_mmap ? EfMapMode::kMmap : EfMapMode::kRead;
  for (auto _ : state) {
    EfGraph g = EfGraph::load(path, mode, EfVerify::kFull);
    benchmark::DoNotOptimize(g.num_edges());
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ef.num_edges()));
  state.counters["mmap"] = use_mmap ? 1 : 0;
}
BENCHMARK(BM_EfLoad)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Unit(benchmark::kMillisecond);

// The diffusion kernel on each backend, identical topology and seeds. The
// items_per_second ratio of the /0 (CSR) and /1 (EfGraph) rows is the
// kernel-traversal regression the checker bounds at 2x: decode cost must
// stay amortized behind the kernel's RNG and state work.
template <class G>
void kernel_traversal(benchmark::State& state, const DiGraph& csr,
                      const G& g) {
  SeedSets seeds;
  seeds.rumors = {0, 1, 2, 3};
  MonteCarloConfig cfg;
  cfg.model = DiffusionModel::kIc;
  cfg.ic_edge_prob = 0.2;  // dense-enough cascades to walk most arcs
  std::uint64_t run = 0;
  for (auto _ : state) {
    const DiffusionResult r = simulate(g, seeds, 1000 + (run++ % 16), cfg);
    benchmark::DoNotOptimize(r.steps);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(csr.num_edges()));
}

void BM_KernelTraversal(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const bool ef = state.range(1) != 0;
  Rng rng(2);
  const DiGraph csr = erdos_renyi_m(n, static_cast<EdgeId>(n) * 8, true, rng);
  if (ef) {
    kernel_traversal(state, csr, EfGraph::from_csr(csr));
  } else {
    kernel_traversal(state, csr, csr);
  }
  state.counters["ef"] = ef ? 1 : 0;
}
BENCHMARK(BM_KernelTraversal)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Unit(benchmark::kMillisecond);

void BM_CommunityGenerator(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  for (auto _ : state) {
    CommunityGraphConfig cfg;
    cfg.community_sizes.assign(10, n / 10);
    cfg.seed = 3;
    CommunityGraph cg = make_community_graph(cfg);
    benchmark::DoNotOptimize(cg.graph.num_edges());
  }
}
BENCHMARK(BM_CommunityGenerator)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_Louvain(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  CommunityGraphConfig cfg;
  cfg.community_sizes.assign(10, n / 10);
  cfg.seed = 4;
  const CommunityGraph cg = make_community_graph(cfg);
  for (auto _ : state) {
    Partition p = louvain(cg.graph);
    benchmark::DoNotOptimize(p.num_communities());
  }
}
BENCHMARK(BM_Louvain)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_BridgeEndDetection(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  CommunityGraphConfig cfg;
  cfg.community_sizes.assign(10, n / 10);
  cfg.seed = 5;
  const CommunityGraph cg = make_community_graph(cfg);
  const Partition p(cg.membership);
  const std::vector<NodeId> rumors{p.members(0)[0], p.members(0)[1]};
  for (auto _ : state) {
    BridgeEndResult r = find_bridge_ends(cg.graph, p, 0, rumors);
    benchmark::DoNotOptimize(r.bridge_ends.size());
  }
}
BENCHMARK(BM_BridgeEndDetection)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  lcrb::bench::require_release_build("bench_micro_graph");
  benchmark::AddCustomContext("lcrb_build_type", lcrb::bench::kBuildType);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
