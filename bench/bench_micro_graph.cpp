// Microbenchmarks (google-benchmark): graph substrate throughput.
#include <benchmark/benchmark.h>

#include "build_guard.h"

#include "lcrb/core.h"

namespace {

using namespace lcrb;

void BM_CsrBuild(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(1);
  // Pre-generate the arc list once; measure finalize() only.
  std::vector<std::pair<NodeId, NodeId>> arcs;
  for (EdgeId e = 0; e < static_cast<EdgeId>(n) * 8; ++e) {
    arcs.emplace_back(static_cast<NodeId>(rng.next_below(n)),
                      static_cast<NodeId>(rng.next_below(n)));
  }
  for (auto _ : state) {
    GraphBuilder b;
    b.reserve_nodes(n);
    b.reserve_edges(arcs.size());
    for (const auto& [u, v] : arcs) b.add_edge(u, v);
    DiGraph g = b.finalize();
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(arcs.size()));
}
BENCHMARK(BM_CsrBuild)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_BfsForward(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(2);
  const DiGraph g = erdos_renyi_m(n, static_cast<EdgeId>(n) * 8, true, rng);
  const NodeId src[] = {0};
  for (auto _ : state) {
    const BfsResult r = bfs_forward(g, src);
    benchmark::DoNotOptimize(r.dist.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_BfsForward)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_CommunityGenerator(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  for (auto _ : state) {
    CommunityGraphConfig cfg;
    cfg.community_sizes.assign(10, n / 10);
    cfg.seed = 3;
    CommunityGraph cg = make_community_graph(cfg);
    benchmark::DoNotOptimize(cg.graph.num_edges());
  }
}
BENCHMARK(BM_CommunityGenerator)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_Louvain(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  CommunityGraphConfig cfg;
  cfg.community_sizes.assign(10, n / 10);
  cfg.seed = 4;
  const CommunityGraph cg = make_community_graph(cfg);
  for (auto _ : state) {
    Partition p = louvain(cg.graph);
    benchmark::DoNotOptimize(p.num_communities());
  }
}
BENCHMARK(BM_Louvain)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_BridgeEndDetection(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  CommunityGraphConfig cfg;
  cfg.community_sizes.assign(10, n / 10);
  cfg.seed = 5;
  const CommunityGraph cg = make_community_graph(cfg);
  const Partition p(cg.membership);
  const std::vector<NodeId> rumors{p.members(0)[0], p.members(0)[1]};
  for (auto _ : state) {
    BridgeEndResult r = find_bridge_ends(cg.graph, p, 0, rumors);
    benchmark::DoNotOptimize(r.bridge_ends.size());
  }
}
BENCHMARK(BM_BridgeEndDetection)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  lcrb::bench::require_release_build("bench_micro_graph");
  benchmark::AddCustomContext("lcrb_build_type", lcrb::bench::kBuildType);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
