// MC-vs-RIS ablation (google-benchmark): the LCRB-P greedy with the
// Monte-Carlo SigmaEstimator against SigmaMode::kRis on the paper-figure
// analogs (Fig. 4: Hep under OPOAO; Fig. 7: Hep under DOAM), tiny scale.
//
// Counters:
//   visits_per_seed   sigma node-touch operations / protectors selected —
//                     the common cost currency of both modes
//   visit_ratio       MC visits_per_seed / RIS visits_per_seed (the
//                     acceptance bar is >= 5)
//   sigma_mc_ref,     both protector sets scored by one fresh reference
//   sigma_ris_ref     MC estimator on common random numbers
//   agreement_ok      1 when |sigma_mc_ref - sigma_ris_ref| <=
//                     eps * |B| + Hoeffding tolerance (matches the stat
//                     test's check)
//
// Regenerate the committed record with:
//   ./build/bench/bench_micro_ris --benchmark_out=bench/BENCH_ris.json
//       --benchmark_out_format=json   (both flags on one line)
#include <benchmark/benchmark.h>

#include <cmath>

#include "build_guard.h"
#include "lcrb/experiments.h"
#include "util/threadpool.h"

namespace {

using namespace lcrb;

constexpr double kScale = 0.1;
constexpr double kRisEpsilon = 0.1;

struct FigureSetup {
  DiGraph graph;
  std::vector<NodeId> rumors;
  BridgeEndResult bridges;
  std::size_t budget = 0;
};

/// Hep-like dataset with rumors planted in the paper's medium community at
/// the 5%-of-|C| figure point — the shared substrate of Fig. 4 / Fig. 7.
FigureSetup make_setup() {
  DatasetSubstitute ds = make_hep_like(/*seed=*/1, kScale);
  const Partition part(ds.net.membership);
  const NodeId csize = part.size_of(ds.planted_medium);
  const auto nr =
      static_cast<std::size_t>(std::max<NodeId>(2, csize / 20));
  ExperimentSetup ex =
      prepare_experiment(ds.net.graph, part, ds.planted_medium, nr, 102);
  FigureSetup out;
  out.rumors = std::move(ex.rumors);
  out.bridges = std::move(ex.bridges);
  out.budget = out.rumors.size();
  out.graph = std::move(ds.net.graph);
  return out;
}

GreedyConfig mode_cfg(DiffusionModel model, SigmaMode mode,
                      std::size_t budget) {
  LcrbOptions opts;
  opts.alpha = 0.95;
  opts.budget = budget;
  opts.max_candidates = 300;
  opts.model = model;
  opts.sigma_samples = (model == DiffusionModel::kDoam) ? 4 : 20;
  opts.sigma_seed = 9;
  opts.sigma_mode = mode;
  opts.ris_epsilon = kRisEpsilon;
  opts.ris_initial_sets = 256;  // the doubling rule grows it when needed
  opts.ris_max_sets = std::size_t{1} << 14;
  return opts.greedy_config();
}

double visits_per_seed(const GreedyResult& r) {
  return r.protectors.empty()
             ? 0.0
             : static_cast<double>(r.nodes_visited) /
                   static_cast<double>(r.protectors.size());
}

void run_select(benchmark::State& state, DiffusionModel model,
                SigmaMode mode) {
  static const FigureSetup setup = make_setup();
  const GreedyConfig cfg = mode_cfg(model, mode, setup.budget);
  GreedyResult last;
  for (auto _ : state) {
    last = greedy_lcrbp_from_bridges(setup.graph, setup.rumors, setup.bridges,
                                     cfg);
    benchmark::DoNotOptimize(last.protectors.data());
  }
  state.counters["protectors"] =
      static_cast<double>(last.protectors.size());
  state.counters["visits_per_seed"] = visits_per_seed(last);
  if (mode == SigmaMode::kRis) {
    state.counters["rr_sets"] = static_cast<double>(last.sigma_evaluations);
    state.counters["rounds"] = static_cast<double>(last.ris_rounds);
  }
}

void BM_SelectMc_HepOpoao(benchmark::State& state) {
  run_select(state, DiffusionModel::kOpoao, SigmaMode::kMonteCarlo);
}
void BM_SelectRis_HepOpoao(benchmark::State& state) {
  run_select(state, DiffusionModel::kOpoao, SigmaMode::kRis);
}
void BM_SelectMc_HepDoam(benchmark::State& state) {
  run_select(state, DiffusionModel::kDoam, SigmaMode::kMonteCarlo);
}
void BM_SelectRis_HepDoam(benchmark::State& state) {
  run_select(state, DiffusionModel::kDoam, SigmaMode::kRis);
}

/// The ablation record: both modes end to end, a reference estimator scoring
/// both protector sets, and the visit ratio the acceptance bar reads.
void run_ablation(benchmark::State& state, DiffusionModel model) {
  static const FigureSetup setup = make_setup();
  GreedyResult mc, ris;
  for (auto _ : state) {
    mc = greedy_lcrbp_from_bridges(
        setup.graph, setup.rumors, setup.bridges,
        mode_cfg(model, SigmaMode::kMonteCarlo, setup.budget));
    ris = greedy_lcrbp_from_bridges(
        setup.graph, setup.rumors, setup.bridges,
        mode_cfg(model, SigmaMode::kRis, setup.budget));
    benchmark::DoNotOptimize(mc.protectors.data());
    benchmark::DoNotOptimize(ris.protectors.data());
  }

  SigmaConfig ref_cfg;
  ref_cfg.model = model;
  ref_cfg.samples = (model == DiffusionModel::kDoam) ? 4 : 400;
  ref_cfg.seed = 777;
  SigmaEstimator ref(setup.graph, setup.rumors, setup.bridges.bridge_ends,
                     ref_cfg);
  const double sigma_mc = ref.sigma(mc.protectors);
  const double sigma_ris = ref.sigma(ris.protectors);
  const auto range = static_cast<double>(setup.bridges.bridge_ends.size());
  const double hoeffding =
      2.0 * range *
      std::sqrt(std::log(2.0 / 1e-4) /
                (2.0 * static_cast<double>(ref_cfg.samples)));
  const double tol = kRisEpsilon * range + hoeffding;

  const double mc_vps = visits_per_seed(mc);
  const double ris_vps = visits_per_seed(ris);
  state.counters["mc_visits_per_seed"] = mc_vps;
  state.counters["ris_visits_per_seed"] = ris_vps;
  state.counters["visit_ratio"] = ris_vps > 0.0 ? mc_vps / ris_vps : 0.0;
  state.counters["sigma_mc_ref"] = sigma_mc;
  state.counters["sigma_ris_ref"] = sigma_ris;
  state.counters["agreement_tol"] = tol;
  state.counters["agreement_ok"] =
      std::fabs(sigma_mc - sigma_ris) <= tol ? 1.0 : 0.0;
}

void BM_McVsRis_Fig4Opoao(benchmark::State& state) {
  run_ablation(state, DiffusionModel::kOpoao);
}
void BM_McVsRis_Fig7Doam(benchmark::State& state) {
  run_ablation(state, DiffusionModel::kDoam);
}

/// Sharded-generation scaling sweep: grow a fixed-size RR pool on 1/2/4/8
/// worker threads. Determinism makes the pools byte-identical across the
/// sweep, so the only variable is wall-clock; `sets_per_sec` is the scaling
/// counter the CI artifact tracks.
void BM_RisGenerate_ThreadSweep(benchmark::State& state) {
  static const FigureSetup setup = make_setup();
  constexpr std::size_t kSweepSets = 4096;
  RisConfig rc;
  rc.model = DiffusionModel::kOpoao;
  rc.seed = 9;
  RrSampler sampler(setup.graph, setup.rumors, setup.bridges.bridge_ends, rc);
  const auto threads = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(threads);
  std::uint64_t visits = 0;
  for (auto _ : state) {
    RrPool rr;
    sampler.extend(rr, 0, kSweepSets, &pool);
    visits = rr.nodes_visited();
    benchmark::DoNotOptimize(rr.num_sets());
  }
  state.counters["sets_per_sec"] = benchmark::Counter(
      static_cast<double>(kSweepSets) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["nodes_visited"] = static_cast<double>(visits);
  state.counters["threads"] = static_cast<double>(threads);
}

BENCHMARK(BM_SelectMc_HepOpoao)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SelectRis_HepOpoao)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SelectMc_HepDoam)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SelectRis_HepDoam)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_McVsRis_Fig4Opoao)->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_McVsRis_Fig7Doam)->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_RisGenerate_ThreadSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  lcrb::bench::require_release_build("bench_micro_ris");
  benchmark::AddCustomContext("lcrb_build_type", lcrb::bench::kBuildType);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
