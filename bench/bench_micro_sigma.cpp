// Microbenchmarks (google-benchmark): sigma evaluation throughput with the
// sample-realization cache (SigmaEngine) against the legacy re-simulation
// path, per diffusion model. items_processed counts single-sample
// evaluations, so items_per_second is directly "sigma evals/sec".
#include <benchmark/benchmark.h>

#include "build_guard.h"

#include "lcrb/core.h"
#include "lcrb/sigma_engine.h"

namespace {

using namespace lcrb;

DiGraph bench_graph(NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  return erdos_renyi_m(n, static_cast<EdgeId>(n) * 8, true, rng);
}

SigmaConfig sigma_cfg(DiffusionModel model, std::size_t samples,
                      bool use_cache) {
  SigmaConfig cfg;
  cfg.samples = samples;
  cfg.seed = 13;
  cfg.max_hops = 31;
  cfg.model = model;
  cfg.use_realization_cache = use_cache;
  cfg.max_cache_bytes = 0;
  return cfg;
}

void run_sigma_bench(benchmark::State& state, DiffusionModel model,
                     bool use_cache) {
  const auto n = static_cast<NodeId>(state.range(0));
  const auto samples = static_cast<std::size_t>(state.range(1));
  const DiGraph g = bench_graph(n, 6);
  const std::vector<NodeId> rumors{0, 1, 2, 3};
  std::vector<NodeId> targets;
  for (NodeId v = n / 4; v < n / 4 + 40; ++v) targets.push_back(v);

  const SigmaEstimator est(g, rumors, targets,
                           sigma_cfg(model, samples, use_cache));
  if (est.uses_engine() != use_cache) {
    state.SkipWithError("unexpected evaluation path");
    return;
  }
  const NodeId protectors[] = {10, 11, 12};
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.sigma(protectors));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(samples));
}

void BM_SigmaLegacy_Opoao(benchmark::State& state) {
  run_sigma_bench(state, DiffusionModel::kOpoao, false);
}
void BM_SigmaCached_Opoao(benchmark::State& state) {
  run_sigma_bench(state, DiffusionModel::kOpoao, true);
}
void BM_SigmaLegacy_Ic(benchmark::State& state) {
  run_sigma_bench(state, DiffusionModel::kIc, false);
}
void BM_SigmaCached_Ic(benchmark::State& state) {
  run_sigma_bench(state, DiffusionModel::kIc, true);
}
void BM_SigmaLegacy_Lt(benchmark::State& state) {
  run_sigma_bench(state, DiffusionModel::kLt, false);
}
void BM_SigmaCached_Lt(benchmark::State& state) {
  run_sigma_bench(state, DiffusionModel::kLt, true);
}

#define SIGMA_ARGS \
  Args({2000, 50})->Args({10000, 50})->Unit(benchmark::kMillisecond)

BENCHMARK(BM_SigmaLegacy_Opoao)->SIGMA_ARGS;
BENCHMARK(BM_SigmaCached_Opoao)->SIGMA_ARGS;
BENCHMARK(BM_SigmaLegacy_Ic)->SIGMA_ARGS;
BENCHMARK(BM_SigmaCached_Ic)->SIGMA_ARGS;
BENCHMARK(BM_SigmaLegacy_Lt)->SIGMA_ARGS;
BENCHMARK(BM_SigmaCached_Lt)->SIGMA_ARGS;

// Construction cost of the realization cache (what greedy pays once before
// its thousands of evaluations).
void BM_SigmaEngineBuild(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const DiGraph g = bench_graph(n, 6);
  const std::vector<NodeId> rumors{0, 1, 2, 3};
  std::vector<NodeId> targets;
  for (NodeId v = n / 4; v < n / 4 + 40; ++v) targets.push_back(v);
  for (auto _ : state) {
    SigmaEstimator est(g, rumors, targets,
                       sigma_cfg(DiffusionModel::kOpoao, 50, true));
    benchmark::DoNotOptimize(est.baseline_infected());
  }
}
BENCHMARK(BM_SigmaEngineBuild)->Arg(2000)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  lcrb::bench::require_release_build("bench_micro_sigma");
  benchmark::AddCustomContext("lcrb_build_type", lcrb::bench::kBuildType);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
