// Warm-session vs cold-process economics of the query service.
//
// The service exists so repeated queries stop paying the CLI's fixed costs:
// re-reading the edge list, re-building the partition, re-deriving bridge
// ends, and re-materializing sigma realizations on every invocation. This
// bench runs the same 100-query mixed workload (greedy MC / SCBG / maxdegree
// selects, evaluates, infos) two ways:
//
//   cold   one fresh QueryService per query, loading graph + membership from
//          disk each time — the work a cold `lcrb ...` process does, minus
//          exec/link overhead (so the measured ratio *understates* the win)
//   warm   one QueryService, batches of 10 against the shared GraphSession
//
// It also re-checks the batch-vs-sequential byte-identity guarantee on the
// fly and refuses to report numbers if it fails. Results land in
// --out (default BENCH_service.json) in a small self-describing format.
//
// Flags: --scale F | --queries N | --threads N | --out PATH | --seed S
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.h"
#include "community/io.h"
#include "graph/io.h"
#include "service/query_service.h"
#include "util/args.h"

namespace {

using namespace lcrb;
using namespace lcrb::bench;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// The mixed workload: query i cycles through five request shapes, with the
/// rumor draw re-seeded every cycle so warm runs still see a handful of
/// distinct experiment setups (not one setup amortized 100 ways).
std::vector<service::QueryRequest> make_workload(std::size_t n,
                                                 const BenchContext& ctx,
                                                 const Dataset& ds) {
  const CommunityId community = ds.community;
  // Evaluate-op protectors must be disjoint from every rumor draw; picking
  // them from a different community guarantees that.
  const CommunityId other = community == 0 ? 1 : 0;
  const std::vector<NodeId>& pool = ds.partition.members(other);
  const std::vector<NodeId> protectors(pool.begin(),
                                       pool.begin() + std::min<std::size_t>(
                                                          3, pool.size()));
  std::vector<service::QueryRequest> reqs;
  reqs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    service::QueryRequest req;
    req.id = std::to_string(i);
    req.dataset = "bench";
    req.rumor_community = community;
    req.num_rumors = 3;
    req.rumor_seed = ctx.seed + (i / 10) % 4;  // 4 distinct rumor draws
    req.options.alpha = 0.9;
    req.options.sigma_samples = ctx.sigma_samples;
    req.options.sigma_seed = ctx.seed + 7;
    req.options.max_candidates = ctx.max_candidates;
    switch (i % 5) {
      case 0:  // LCRB-P Monte-Carlo greedy
        break;
      case 1:
        req.options.selector = SelectorKind::kScbg;
        break;
      case 2:
        req.options.selector = SelectorKind::kMaxDegree;
        break;
      case 3:
        req.op = service::QueryOp::kEvaluate;
        req.protectors = protectors;
        req.eval_runs = ctx.mc_runs;
        req.eval_seed = ctx.seed + 13;
        break;
      case 4:
        req.op = service::QueryOp::kInfo;
        break;
    }
    reqs.push_back(std::move(req));
  }
  return reqs;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchContext ctx =
      parse_context(argc, argv, "service: warm sessions vs cold processes");
  const Args args(argc, argv);
  const std::size_t queries =
      static_cast<std::size_t>(args.get_int("queries", 100));
  const std::size_t threads =
      static_cast<std::size_t>(args.get_int("threads", 0));
  const std::string out_path = args.get_string("out", "BENCH_service.json");

  const Dataset ds = make_hep_dataset(ctx);
  const std::string graph_path = "bench_service_graph.txt";
  const std::string membership_path = "bench_service_membership.csv";
  save_edge_list(ds.graph, graph_path);
  save_membership(ds.partition, membership_path);

  const std::vector<service::QueryRequest> workload =
      make_workload(queries, ctx, ds);

  service::ServiceConfig cfg;
  cfg.threads = threads;
  cfg.collect_meta = false;

  // --- cold: a fresh service (and a fresh disk load) per query -------------
  std::vector<std::string> cold_payloads;
  cold_payloads.reserve(workload.size());
  const Clock::time_point cold_start = Clock::now();
  for (const service::QueryRequest& req : workload) {
    service::QueryService svc(cfg);
    DiGraph g = load_edge_list(graph_path);
    Partition p = load_membership(membership_path);
    svc.registry().open("bench", std::move(g), std::move(p));
    const service::QueryResult r = svc.run(req);
    if (!r.ok) {
      std::cerr << "cold query " << req.id << " failed: " << r.error << "\n";
      return 1;
    }
    cold_payloads.push_back(r.to_json(false).dump());
  }
  const double cold_ms = ms_since(cold_start);

  // --- warm: one service, batches of 10 against the shared session ---------
  service::QueryService warm_svc(cfg);
  {
    DiGraph g = load_edge_list(graph_path);
    Partition p = load_membership(membership_path);
    warm_svc.registry().open("bench", std::move(g), std::move(p));
  }
  std::vector<std::string> warm_payloads;
  warm_payloads.reserve(workload.size());
  const Clock::time_point warm_start = Clock::now();
  for (std::size_t i = 0; i < workload.size(); i += 10) {
    std::vector<service::QueryRequest> batch(
        workload.begin() + static_cast<std::ptrdiff_t>(i),
        workload.begin() +
            static_cast<std::ptrdiff_t>(std::min(i + 10, workload.size())));
    for (const service::QueryResult& r : warm_svc.run_batch(std::move(batch))) {
      if (!r.ok) {
        std::cerr << "warm query " << r.id << " failed: " << r.error << "\n";
        return 1;
      }
      warm_payloads.push_back(r.to_json(false).dump());
    }
  }
  const double warm_ms = ms_since(warm_start);

  // The headline numbers are only meaningful if warm batching returned the
  // exact payload bytes of the cold one-shot runs. Info replies are excluded:
  // their resident_bytes field truthfully reports the session's warm-cache
  // footprint, which *should* differ between a cold and a warm service.
  bool identical = cold_payloads.size() == warm_payloads.size();
  for (std::size_t i = 0; identical && i < cold_payloads.size(); ++i) {
    if (workload[i].op == service::QueryOp::kInfo) continue;
    if (cold_payloads[i] != warm_payloads[i]) {
      std::cerr << "FAIL: query " << i << " differs\n  cold: "
                << cold_payloads[i] << "\n  warm: " << warm_payloads[i]
                << "\n";
      identical = false;
    }
  }
  if (!identical) return 1;

  const double ratio = warm_ms / cold_ms;
  JsonValue out = JsonValue::object();
  out.set("bench", std::string("service_warm_vs_cold"));
  out.set("dataset", ds.name);
  out.set("num_nodes", static_cast<std::uint64_t>(ds.graph.num_nodes()));
  out.set("num_arcs", static_cast<std::uint64_t>(ds.graph.num_edges()));
  out.set("queries", static_cast<std::uint64_t>(queries));
  out.set("workload", std::string(
      "greedy-mc/scbg/maxdegree selects + evaluate + info, round-robin, "
      "4 distinct rumor draws"));
  out.set("sigma_samples", static_cast<std::uint64_t>(ctx.sigma_samples));
  out.set("mc_runs", static_cast<std::uint64_t>(ctx.mc_runs));
  out.set("scale", ctx.scale);
  out.set("threads", static_cast<std::uint64_t>(threads));
  out.set("cold_wall_ms", cold_ms);
  out.set("warm_wall_ms", warm_ms);
  out.set("warm_over_cold", ratio);
  out.set("acceptance_max_ratio", 0.25);
  out.set("acceptance_ok", ratio < 0.25);
  out.set("batch_byte_identical", identical);

  std::ofstream f(out_path);
  f << out.dump() << "\n";
  std::cout << "cold: " << cold_ms << " ms for " << queries << " queries\n"
            << "warm: " << warm_ms << " ms (" << ratio * 100.0
            << "% of cold)\n"
            << "payloads byte-identical: yes\n"
            << "wrote " << out_path << "\n";
  std::remove(graph_path.c_str());
  std::remove(membership_path.c_str());
  return ratio < 0.25 ? 0 : 2;
}
