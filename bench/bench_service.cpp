// Warm-session vs cold-process economics of the query service, plus an
// open-loop replay load generator for the concurrent dispatcher.
//
// Part 1 (warm vs cold). The service exists so repeated queries stop paying
// the CLI's fixed costs: re-reading the edge list, re-building the
// partition, re-deriving bridge ends, and re-materializing sigma
// realizations on every invocation. This bench runs the same 100-query
// mixed workload (greedy MC / SCBG / maxdegree selects, evaluates, infos)
// two ways:
//
//   cold   one fresh QueryService per query, loading graph + membership from
//          disk each time — the work a cold `lcrb ...` process does, minus
//          exec/link overhead (so the measured ratio *understates* the win)
//   warm   one QueryService, batches of 10 against the shared GraphSession
//
// It also re-checks the batch-vs-sequential byte-identity guarantee on the
// fly and refuses to report numbers if it fails.
//
// Part 2 (open loop). A Poisson arrival process replays evaluate queries
// (fresh seed per request, so every one does real Monte-Carlo work) against
// several sessions of a multi-executor service, sweeping the offered rate
// from well under to well over the measured capacity. Open loop means the
// schedule never waits for the service: latency is measured from each
// request's *scheduled* arrival, so queueing delay under overload is charged
// to the service (no coordinated omission). Reported per rate: achieved QPS
// and p50/p99 latency; the headline `qps_at_saturation` is the best achieved
// throughput over the sweep.
//
// Results land in --out (default BENCH_service.json).
//
// Flags: --scale F | --queries N | --threads N | --out PATH | --seed S
//        --loadgen-requests N | --loadgen-executors N | --loadgen-sessions N
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "community/io.h"
#include "graph/io.h"
#include "service/query_service.h"
#include "util/args.h"
#include "util/rng.h"

namespace {

using namespace lcrb;
using namespace lcrb::bench;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// The mixed workload: query i cycles through five request shapes, with the
/// rumor draw re-seeded every cycle so warm runs still see a handful of
/// distinct experiment setups (not one setup amortized 100 ways).
std::vector<service::QueryRequest> make_workload(std::size_t n,
                                                 const BenchContext& ctx,
                                                 const Dataset& ds) {
  const CommunityId community = ds.community;
  // Evaluate-op protectors must be disjoint from every rumor draw; picking
  // them from a different community guarantees that.
  const CommunityId other = community == 0 ? 1 : 0;
  const std::vector<NodeId>& pool = ds.partition.members(other);
  const std::vector<NodeId> protectors(pool.begin(),
                                       pool.begin() + std::min<std::size_t>(
                                                          3, pool.size()));
  std::vector<service::QueryRequest> reqs;
  reqs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    service::QueryRequest req;
    req.id = std::to_string(i);
    req.dataset = "bench";
    req.rumor_community = community;
    req.num_rumors = 3;
    req.rumor_seed = ctx.seed + (i / 10) % 4;  // 4 distinct rumor draws
    req.options.alpha = 0.9;
    req.options.sigma_samples = ctx.sigma_samples;
    req.options.sigma_seed = ctx.seed + 7;
    req.options.max_candidates = ctx.max_candidates;
    switch (i % 5) {
      case 0:  // LCRB-P Monte-Carlo greedy
        break;
      case 1:
        req.options.selector = SelectorKind::kScbg;
        break;
      case 2:
        req.options.selector = SelectorKind::kMaxDegree;
        break;
      case 3:
        req.op = service::QueryOp::kEvaluate;
        req.protectors = protectors;
        req.eval_runs = ctx.mc_runs;
        req.eval_seed = ctx.seed + 13;
        break;
      case 4:
        req.op = service::QueryOp::kInfo;
        break;
    }
    reqs.push_back(std::move(req));
  }
  return reqs;
}

/// The open-loop unit of work: a Monte-Carlo evaluate with a per-request
/// seed, so no two requests share a result-cache entry and each one costs
/// real simulation time.
service::QueryRequest make_loadgen_request(const std::string& dataset,
                                           std::uint64_t seed,
                                           const BenchContext& ctx,
                                           const Dataset& ds) {
  const CommunityId other = ds.community == 0 ? 1 : 0;
  const std::vector<NodeId>& pool = ds.partition.members(other);
  service::QueryRequest req;
  req.op = service::QueryOp::kEvaluate;
  req.dataset = dataset;
  req.rumor_community = ds.community;
  req.num_rumors = 3;
  req.rumor_seed = ctx.seed;
  req.protectors.assign(pool.begin(),
                        pool.begin() + std::min<std::size_t>(3, pool.size()));
  req.eval_runs = std::max<std::size_t>(ctx.mc_runs / 4, 5);
  req.eval_seed = seed;
  return req;
}

/// Nearest-rank percentile of an unsorted latency sample.
double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(xs.size())));
  return xs[std::min(rank == 0 ? 0 : rank - 1, xs.size() - 1)];
}

struct OpenLoopPoint {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// Replays `n` requests with Poisson (exponential inter-arrival) timing at
/// `rate_qps` against a round-robin of sessions. Latency is completion time
/// minus *scheduled* arrival.
OpenLoopPoint run_open_loop(service::QueryService& svc,
                            const std::vector<std::string>& sessions,
                            double rate_qps, std::size_t n,
                            std::uint64_t seed_base, const BenchContext& ctx,
                            const Dataset& ds, bool* all_ok) {
  Rng rng(ctx.seed + 101);
  std::vector<double> arrival_ms(n);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += -std::log1p(-rng.next_double()) * 1000.0 / rate_qps;
    arrival_ms[i] = t;
  }
  std::vector<double> latency(n, 0.0);
  std::atomic<std::size_t> failures{0};
  std::size_t done = 0;
  std::mutex mu;
  std::condition_variable cv;
  const Clock::time_point t0 = Clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    const Clock::time_point scheduled =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double, std::milli>(arrival_ms[i]));
    std::this_thread::sleep_until(scheduled);  // open loop: never waits for
                                               // the service, only the clock
    // Seeds are disjoint across rate sweeps: a repeated eval_seed would hit
    // the result cache and report replay latency instead of compute latency.
    service::QueryRequest req = make_loadgen_request(
        sessions[i % sessions.size()], seed_base + i, ctx, ds);
    svc.submit_async(std::move(req), [&, i, scheduled](
                                         const service::QueryResult& r) {
      if (!r.ok) failures.fetch_add(1);
      latency[i] =
          std::chrono::duration<double, std::milli>(Clock::now() - scheduled)
              .count();
      std::lock_guard<std::mutex> lock(mu);
      ++done;
      cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == n; });
  }
  const double wall_ms = ms_since(t0);
  *all_ok = *all_ok && failures.load() == 0;
  OpenLoopPoint point;
  point.offered_qps = rate_qps;
  point.achieved_qps = static_cast<double>(n) * 1000.0 / wall_ms;
  point.p50_ms = percentile(latency, 50.0);
  point.p99_ms = percentile(latency, 99.0);
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchContext ctx =
      parse_context(argc, argv, "service: warm sessions vs cold processes");
  const Args args(argc, argv);
  const std::size_t queries =
      static_cast<std::size_t>(args.get_int("queries", 100));
  const std::size_t threads =
      static_cast<std::size_t>(args.get_int("threads", 0));
  const std::string out_path = args.get_string("out", "BENCH_service.json");

  const Dataset ds = make_hep_dataset(ctx);
  const std::string graph_path = "bench_service_graph.txt";
  const std::string membership_path = "bench_service_membership.csv";
  save_edge_list(ds.graph, graph_path);
  save_membership(ds.partition, membership_path);

  const std::vector<service::QueryRequest> workload =
      make_workload(queries, ctx, ds);

  service::ServiceConfig cfg;
  cfg.threads = threads;
  cfg.collect_meta = false;

  // --- cold: a fresh service (and a fresh disk load) per query -------------
  std::vector<std::string> cold_payloads;
  cold_payloads.reserve(workload.size());
  const Clock::time_point cold_start = Clock::now();
  for (const service::QueryRequest& req : workload) {
    service::QueryService svc(cfg);
    DiGraph g = load_edge_list(graph_path);
    Partition p = load_membership(membership_path);
    svc.registry().open("bench", std::move(g), std::move(p));
    const service::QueryResult r = svc.run(req);
    if (!r.ok) {
      std::cerr << "cold query " << req.id << " failed: " << r.error << "\n";
      return 1;
    }
    cold_payloads.push_back(r.to_json(false).dump());
  }
  const double cold_ms = ms_since(cold_start);

  // --- warm: one service, batches of 10 against the shared session ---------
  service::QueryService warm_svc(cfg);
  {
    DiGraph g = load_edge_list(graph_path);
    Partition p = load_membership(membership_path);
    warm_svc.registry().open("bench", std::move(g), std::move(p));
  }
  std::vector<std::string> warm_payloads;
  warm_payloads.reserve(workload.size());
  const Clock::time_point warm_start = Clock::now();
  for (std::size_t i = 0; i < workload.size(); i += 10) {
    std::vector<service::QueryRequest> batch(
        workload.begin() + static_cast<std::ptrdiff_t>(i),
        workload.begin() +
            static_cast<std::ptrdiff_t>(std::min(i + 10, workload.size())));
    for (const service::QueryResult& r : warm_svc.run_batch(std::move(batch))) {
      if (!r.ok) {
        std::cerr << "warm query " << r.id << " failed: " << r.error << "\n";
        return 1;
      }
      warm_payloads.push_back(r.to_json(false).dump());
    }
  }
  const double warm_ms = ms_since(warm_start);

  // The headline numbers are only meaningful if warm batching returned the
  // exact payload bytes of the cold one-shot runs. Info replies are excluded:
  // their resident_bytes field truthfully reports the session's warm-cache
  // footprint, which *should* differ between a cold and a warm service.
  bool identical = cold_payloads.size() == warm_payloads.size();
  for (std::size_t i = 0; identical && i < cold_payloads.size(); ++i) {
    if (workload[i].op == service::QueryOp::kInfo) continue;
    if (cold_payloads[i] != warm_payloads[i]) {
      std::cerr << "FAIL: query " << i << " differs\n  cold: "
                << cold_payloads[i] << "\n  warm: " << warm_payloads[i]
                << "\n";
      identical = false;
    }
  }
  if (!identical) return 1;

  // --- open loop: Poisson replay against a concurrent service --------------
  const std::size_t lg_requests =
      static_cast<std::size_t>(args.get_int("loadgen-requests", 160));
  const std::size_t lg_executors =
      static_cast<std::size_t>(args.get_int("loadgen-executors", 4));
  const std::size_t lg_sessions =
      static_cast<std::size_t>(args.get_int("loadgen-sessions", 4));

  service::ServiceConfig lg_cfg;
  lg_cfg.threads = 2;  // modest inner pool: executor concurrency dominates
  lg_cfg.collect_meta = false;
  lg_cfg.max_concurrent = lg_executors;
  service::QueryService lg_svc(lg_cfg);
  std::vector<std::string> sessions;
  for (std::size_t s = 0; s < lg_sessions; ++s) {
    sessions.push_back("s" + std::to_string(s));
    DiGraph g = load_edge_list(graph_path);
    Partition p = load_membership(membership_path);
    lg_svc.registry().open(sessions.back(), std::move(g), std::move(p));
  }
  // Pre-warm every session's experiment setup so the sweep measures steady
  // state, then calibrate single-stream capacity closed-loop.
  for (const std::string& s : sessions) {
    const service::QueryResult r =
        lg_svc.run(make_loadgen_request(s, ctx.seed + 999, ctx, ds));
    if (!r.ok) {
      std::cerr << "loadgen warmup failed: " << r.error << "\n";
      return 1;
    }
  }
  const std::size_t calibration = 20;
  const Clock::time_point cal_start = Clock::now();
  for (std::size_t i = 0; i < calibration; ++i) {
    lg_svc.run(make_loadgen_request(sessions[0], ctx.seed + 2000 + i, ctx,
                                    ds));
  }
  const double mean_ms = ms_since(cal_start) / calibration;
  const double est_capacity_qps =
      1000.0 / mean_ms * static_cast<double>(lg_executors);

  bool loadgen_ok = true;
  std::vector<OpenLoopPoint> points;
  std::uint64_t seed_base = ctx.seed + 10'000;
  for (const double factor : {0.25, 0.5, 1.0, 2.0}) {
    points.push_back(run_open_loop(lg_svc, sessions,
                                   est_capacity_qps * factor, lg_requests,
                                   seed_base, ctx, ds, &loadgen_ok));
    seed_base += lg_requests;
  }
  if (!loadgen_ok) {
    std::cerr << "open-loop requests failed\n";
    return 1;
  }
  double qps_at_saturation = 0.0;
  for (const OpenLoopPoint& pt : points) {
    qps_at_saturation = std::max(qps_at_saturation, pt.achieved_qps);
  }

  const double ratio = warm_ms / cold_ms;
  JsonValue out = JsonValue::object();
  out.set("bench", std::string("service_warm_vs_cold"));
  out.set("dataset", ds.name);
  out.set("num_nodes", static_cast<std::uint64_t>(ds.graph.num_nodes()));
  out.set("num_arcs", static_cast<std::uint64_t>(ds.graph.num_edges()));
  out.set("queries", static_cast<std::uint64_t>(queries));
  out.set("workload", std::string(
      "greedy-mc/scbg/maxdegree selects + evaluate + info, round-robin, "
      "4 distinct rumor draws"));
  out.set("sigma_samples", static_cast<std::uint64_t>(ctx.sigma_samples));
  out.set("mc_runs", static_cast<std::uint64_t>(ctx.mc_runs));
  out.set("scale", ctx.scale);
  out.set("threads", static_cast<std::uint64_t>(threads));
  out.set("cold_wall_ms", cold_ms);
  out.set("warm_wall_ms", warm_ms);
  out.set("warm_over_cold", ratio);
  out.set("acceptance_max_ratio", 0.25);
  out.set("acceptance_ok", ratio < 0.25);
  out.set("batch_byte_identical", identical);

  JsonValue lg = JsonValue::object();
  lg.set("workload", std::string(
      "evaluate, fresh eval_seed per request (no result-cache hits), "
      "Poisson arrivals, latency from scheduled arrival"));
  lg.set("sessions", static_cast<std::uint64_t>(lg_sessions));
  lg.set("executors", static_cast<std::uint64_t>(lg_executors));
  lg.set("requests_per_rate", static_cast<std::uint64_t>(lg_requests));
  lg.set("eval_runs", static_cast<std::uint64_t>(
                          std::max<std::size_t>(ctx.mc_runs / 4, 5)));
  lg.set("single_stream_ms_per_query", mean_ms);
  JsonValue pts = JsonValue::array();
  for (const OpenLoopPoint& pt : points) {
    JsonValue row = JsonValue::object();
    row.set("offered_qps", pt.offered_qps);
    row.set("achieved_qps", pt.achieved_qps);
    row.set("p50_ms", pt.p50_ms);
    row.set("p99_ms", pt.p99_ms);
    pts.push_back(row);
  }
  lg.set("rates", pts);
  lg.set("qps_at_saturation", qps_at_saturation);
  out.set("open_loop", lg);

  std::ofstream f(out_path);
  f << out.dump() << "\n";
  std::cout << "cold: " << cold_ms << " ms for " << queries << " queries\n"
            << "warm: " << warm_ms << " ms (" << ratio * 100.0
            << "% of cold)\n"
            << "payloads byte-identical: yes\n"
            << "wrote " << out_path << "\n";
  std::remove(graph_path.c_str());
  std::remove(membership_path.c_str());
  return ratio < 0.25 ? 0 : 2;
}
