// Reproduces Table I: average number of protectors each algorithm needs to
// protect EVERY bridge end under the DOAM model (LCRB-D).
//
// Paper's rows (for reference; decimals are averages over repeated trials):
//   Hep/15233/308     1%: SCBG 32.9  Prox 25.3   MaxDeg 140.6
//                     5%: SCBG 42.1  Prox 74.3   MaxDeg 147.8
//                    10%: SCBG 48.9  Prox 133.8  MaxDeg 152.6
//   Email/36692/80    5%: SCBG 6.2   Prox 43.7   MaxDeg 72.7
//                    10%: SCBG 8.2   Prox 46.9   MaxDeg 79.3
//                    20%: SCBG 13.8  Prox 62.9   MaxDeg 91.1
//   Email/36692/2631  1%: SCBG 20.4  Prox 289.3  MaxDeg 1208.8
//                     5%: SCBG 50.9  Prox 1067.6 MaxDeg 1350.2
//                    10%: SCBG 68.4  Prox 1422.6 MaxDeg 1683.8
//
// Expected shape: SCBG smallest everywhere except possibly Hep at 1% (tiny
// |R| lets Proximity win by a hair); SCBG's cost grows far slower with |R|;
// Proximity < MaxDegree.
#include <iostream>

#include "common.h"

int main(int argc, char** argv) {
  using namespace lcrb::bench;
  BenchContext ctx =
      parse_context(argc, argv, "Table I — protectors needed under DOAM", /*default_scale=*/0.5);

  lcrb::TextTable table;
  table.set_header(
      {"Dataset/|N|/|C|", "|R|", "SCBG", "Proximity", "MaxDegree"});

  struct Block {
    Dataset ds;
    std::vector<double> fractions;
  };
  std::vector<Block> blocks;
  blocks.push_back({make_hep_dataset(ctx), {0.01, 0.05, 0.10}});
  blocks.push_back({make_email_small_dataset(ctx), {0.05, 0.10, 0.20}});
  blocks.push_back({make_email_large_dataset(ctx), {0.01, 0.05, 0.10}});

  for (const Block& b : blocks) {
    for (double f : b.fractions) {
      const TableOneRow row = run_table1_row(b.ds, ctx, f);
      table.add_values(row.dataset, row.rumor_label, lcrb::fixed(row.scbg),
                       lcrb::fixed(row.proximity), lcrb::fixed(row.maxdegree));
    }
  }
  table.print(std::cout);
  std::cout << "\n(averages over " << ctx.trials
            << " rumor re-draws; Proximity order re-randomized per trial;\n"
            << " costs are minimal covering prefixes under the analytic DOAM "
               "protection test)\n";
  return 0;
}
