// Build-type guard for every bench binary: recordings from debug builds are
// not comparable (the committed BENCH_*.json history was briefly polluted by
// debug-build captures), so a bench refuses to run unless the library was
// compiled with NDEBUG. Deliberate debug runs (profiling a sanitizer build,
// smoke-testing the harness) can opt in with LCRB_BENCH_ALLOW_DEBUG=1, which
// still prints an unmissable banner so the numbers cannot be mistaken for a
// release record.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace lcrb::bench {

#if defined(NDEBUG)
inline constexpr const char* kBuildType = "release";
inline constexpr bool kIsReleaseBuild = true;
#else
inline constexpr const char* kBuildType = "debug";
inline constexpr bool kIsReleaseBuild = false;
#endif

/// Call first thing in every bench main. Exits with status 2 on a debug
/// build unless LCRB_BENCH_ALLOW_DEBUG is set in the environment.
inline void require_release_build(const char* binary) {
  if (kIsReleaseBuild) return;
  if (std::getenv("LCRB_BENCH_ALLOW_DEBUG") == nullptr) {
    std::fprintf(stderr,
                 "%s: refusing to benchmark a DEBUG build — numbers would "
                 "not be comparable to the committed BENCH records.\n"
                 "Rebuild with -DCMAKE_BUILD_TYPE=Release, or set "
                 "LCRB_BENCH_ALLOW_DEBUG=1 to run anyway (flagged).\n",
                 binary);
    std::exit(2);
  }
  std::fprintf(stderr,
               "%s: *** DEBUG BUILD (LCRB_BENCH_ALLOW_DEBUG set) — do NOT "
               "commit these numbers ***\n",
               binary);
}

}  // namespace lcrb::bench
