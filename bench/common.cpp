#include "common.h"

#include <algorithm>
#include <iostream>

namespace lcrb::bench {

namespace {

/// Heuristic sets for the DOAM figures: the paper computes each heuristic's
/// covering solution first, then samples the SCBG-sized subset from it.
std::vector<NodeId> sized_heuristic_set(const DiGraph& g,
                                        const ExperimentSetup& setup,
                                        SelectorKind kind, std::size_t size,
                                        Rng& rng) {
  std::vector<NodeId> pool;
  if (kind == SelectorKind::kMaxDegree) {
    const auto order =
        maxdegree_protectors(g, setup.rumors, g.num_nodes());
    const CoverCostResult cc =
        cover_cost_doam(g, setup.rumors, setup.bridges.bridge_ends, order);
    pool = cc.protectors;
  } else if (kind == SelectorKind::kProximity) {
    Rng order_rng(rng.next());
    const auto order =
        proximity_protectors(g, setup.rumors, g.num_nodes(), order_rng);
    const CoverCostResult cc =
        cover_cost_doam(g, setup.rumors, setup.bridges.bridge_ends, order);
    pool = cc.protectors;
  }
  if (pool.size() <= size) return pool;
  for (std::size_t i = 0; i < size; ++i) {
    const std::size_t j = i + rng.next_below(pool.size() - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(size);
  return pool;
}

}  // namespace

BenchContext parse_context(int argc, char** argv, const std::string& title,
                           double default_scale) {
  const Args args(argc, argv);
  BenchContext ctx;
  ctx.scale = args.get_double_env("scale", "LCRB_BENCH_SCALE", default_scale);
  ctx.mc_runs = static_cast<std::size_t>(
      args.get_int_env("runs", "LCRB_BENCH_RUNS", 100));
  ctx.sigma_samples = static_cast<std::size_t>(
      args.get_int_env("samples", "LCRB_BENCH_SAMPLES", 20));
  ctx.trials = static_cast<std::size_t>(
      args.get_int_env("trials", "LCRB_BENCH_TRIALS", 3));
  ctx.max_candidates = static_cast<std::size_t>(
      args.get_int_env("candidates", "LCRB_BENCH_CANDIDATES", 300));
  ctx.csv_dir = args.get_string("csv-dir", "");
  ctx.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  require_release_build(title.c_str());
  set_log_level(LogLevel::Warn);
  std::cout << "=== " << title << " ===\n"
            << "build=" << kBuildType << " scale=" << ctx.scale
            << " mc_runs=" << ctx.mc_runs
            << " sigma_samples=" << ctx.sigma_samples
            << " trials=" << ctx.trials << " seed=" << ctx.seed << "\n\n";
  return ctx;
}

Dataset make_hep_dataset(const BenchContext& ctx) {
  const DatasetSubstitute ds = make_hep_like(ctx.seed, ctx.scale);
  Dataset out;
  out.name = "Hep";
  out.graph = std::move(ds.net.graph);
  out.partition = Partition(ds.net.membership);
  out.community = ds.planted_medium;
  out.paper_nodes = 15233;
  out.paper_community = 308;
  out.paper_bridges = 387;
  return out;
}

Dataset make_email_small_dataset(const BenchContext& ctx) {
  const DatasetSubstitute ds = make_enron_like(ctx.seed, ctx.scale);
  Dataset out;
  out.name = "Email";
  out.graph = std::move(ds.net.graph);
  out.partition = Partition(ds.net.membership);
  out.community = ds.planted_small;
  out.paper_nodes = 36692;
  out.paper_community = 80;
  out.paper_bridges = 135;
  return out;
}

Dataset make_email_large_dataset(const BenchContext& ctx) {
  const DatasetSubstitute ds = make_enron_like(ctx.seed, ctx.scale);
  Dataset out;
  out.name = "Email";
  out.graph = std::move(ds.net.graph);
  out.partition = Partition(ds.net.membership);
  out.community = ds.planted_medium;
  out.paper_nodes = 36692;
  out.paper_community = 2631;
  out.paper_bridges = 2250;
  return out;
}

void print_dataset_banner(std::ostream& os, const Dataset& ds,
                          const ExperimentSetup& setup) {
  os << ds.name << " substitute: |N|=" << ds.graph.num_nodes()
     << " |C|=" << ds.partition.size_of(ds.community)
     << " |R|=" << setup.rumors.size()
     << " |B|=" << setup.bridges.bridge_ends.size() << "   (paper: |N|="
     << ds.paper_nodes << " |C|=" << ds.paper_community
     << " |B|=" << ds.paper_bridges << ")\n";
}

void run_opoao_figure(std::ostream& os, const Dataset& ds,
                      const BenchContext& ctx,
                      const std::vector<double>& rumor_fractions) {
  for (double rumor_fraction : rumor_fractions) {
    run_opoao_block(os, ds, ctx, rumor_fraction);
  }
}

void run_opoao_block(std::ostream& os, const Dataset& ds,
                     const BenchContext& ctx, double rumor_fraction) {
  const NodeId csize = ds.partition.size_of(ds.community);
  const std::size_t nr = std::max<std::size_t>(
      1, static_cast<std::size_t>(rumor_fraction * csize));
  os << "--- |R| = " << nr << " (" << fixed(rumor_fraction * 100, 0)
     << "% of |C|) ---\n";
  const ExperimentSetup setup =
      prepare_experiment(ds.graph, ds.partition, ds.community, nr,
                         ctx.seed + 101);
  print_dataset_banner(os, ds, setup);

  LcrbOptions opts;
  opts.budget = setup.rumors.size();
  opts.selector_seed = ctx.seed + 5;
  opts.alpha = 0.95;
  opts.max_candidates = ctx.max_candidates;
  opts.sigma_samples = ctx.sigma_samples;
  opts.sigma_seed = ctx.seed + 7;
  opts.max_hops = 31;

  MonteCarloConfig mc;
  mc.runs = ctx.mc_runs;
  mc.max_hops = 31;
  mc.seed = ctx.seed + 13;

  const SelectorKind kinds[] = {SelectorKind::kGreedy, SelectorKind::kProximity,
                                SelectorKind::kMaxDegree,
                                SelectorKind::kNoBlocking};
  std::vector<HopSeries> series;
  std::vector<std::size_t> sizes;
  for (SelectorKind kind : kinds) {
    Timer t;
    opts.selector = kind;
    // NoBlocking sizes itself (empty); a budget there is rejected.
    opts.budget =
        kind == SelectorKind::kNoBlocking ? 0 : setup.rumors.size();
    const auto protectors = select_protectors(setup, opts, ctx.pool);
    const HopSeries s = evaluate_protectors(setup, protectors, mc, ctx.pool);
    series.push_back(s);
    sizes.push_back(protectors.size());
    os << "  " << to_string(kind) << ": |P|=" << protectors.size()
       << ", saved=" << fixed(100.0 * s.saved_fraction_mean) << "%"
       << ", select+eval=" << fixed(t.seconds(), 2) << "s\n";
  }

  TextTable table;
  table.set_header({"hop", "Greedy", "Proximity", "MaxDegree", "NoBlocking"});
  for (std::uint32_t h = 1; h <= 31; h += 2) {
    table.add_values(h, fixed(series[0].infected_mean[h]),
                     fixed(series[1].infected_mean[h]),
                     fixed(series[2].infected_mean[h]),
                     fixed(series[3].infected_mean[h]));
  }
  os << "\nInfected nodes vs hops (OPOAO, " << mc.runs << " runs, |P|=|R|="
     << setup.rumors.size() << "):\n";
  table.print(os);
  os << "\n";

  if (!ctx.csv_dir.empty()) {
    const std::string path = ctx.csv_dir + "/opoao_" + ds.name + "_C" +
                             std::to_string(csize) + "_R" +
                             std::to_string(setup.rumors.size()) + ".csv";
    CsvWriter csv(path);
    csv.write_header({"hop", "greedy", "proximity", "maxdegree", "noblocking"});
    for (std::uint32_t h = 0; h <= 31; ++h) {
      csv.write_values(h, series[0].infected_mean[h], series[1].infected_mean[h],
                       series[2].infected_mean[h], series[3].infected_mean[h]);
    }
    os << "wrote " << path << "\n";
  }
}

TableOneRow run_table1_row(const Dataset& ds, const BenchContext& ctx,
                           double rumor_fraction) {
  const NodeId csize = ds.partition.size_of(ds.community);
  const std::size_t nr = std::max<std::size_t>(
      1, static_cast<std::size_t>(rumor_fraction * csize));

  RunningStats scbg_cost, prox_cost, md_cost;
  Rng rng(ctx.seed + 31);
  for (std::size_t trial = 0; trial < ctx.trials; ++trial) {
    const ExperimentSetup setup = prepare_experiment(
        ds.graph, ds.partition, ds.community, nr, ctx.seed + 500 + trial);
    if (setup.bridges.bridge_ends.empty()) continue;

    const ScbgResult sc =
        scbg_from_bridges(ds.graph, setup.rumors, setup.bridges);
    scbg_cost.add(static_cast<double>(sc.protectors.size()));

    const auto md_order =
        maxdegree_protectors(ds.graph, setup.rumors, ds.graph.num_nodes());
    const CoverCostResult md = cover_cost_doam(
        ds.graph, setup.rumors, setup.bridges.bridge_ends, md_order);
    md_cost.add(static_cast<double>(md.cost));

    Rng prox_rng(rng.next());
    const auto px_order = proximity_protectors(
        ds.graph, setup.rumors, ds.graph.num_nodes(), prox_rng);
    const CoverCostResult px = cover_cost_doam(
        ds.graph, setup.rumors, setup.bridges.bridge_ends, px_order);
    prox_cost.add(static_cast<double>(px.cost));
  }

  TableOneRow row;
  row.dataset = ds.name + "/" + std::to_string(ds.graph.num_nodes()) + "/" +
                std::to_string(csize);
  row.rumor_label = fixed(rumor_fraction * 100.0, 0) + "%";
  row.scbg = scbg_cost.mean();
  row.proximity = prox_cost.mean();
  row.maxdegree = md_cost.mean();
  return row;
}

void run_doam_figure(std::ostream& os, const Dataset& ds,
                     const BenchContext& ctx,
                     const std::vector<double>& rumor_fractions) {
  for (double frac : rumor_fractions) {
    const NodeId csize = ds.partition.size_of(ds.community);
    const std::size_t nr =
        std::max<std::size_t>(1, static_cast<std::size_t>(frac * csize));

    // Average the deterministic DOAM trajectories over rumor re-draws.
    const std::uint32_t hops = 10;
    std::vector<RunningStats> scbg_s(hops + 1), px_s(hops + 1),
        md_s(hops + 1), nb_s(hops + 1);
    RunningStats psize;

    Rng rng(ctx.seed + 71);
    for (std::size_t trial = 0; trial < ctx.trials; ++trial) {
      const ExperimentSetup setup = prepare_experiment(
          ds.graph, ds.partition, ds.community, nr, ctx.seed + 900 + trial);
      if (setup.bridges.bridge_ends.empty()) continue;

      const ScbgResult sc =
          scbg_from_bridges(ds.graph, setup.rumors, setup.bridges);
      const std::size_t size = sc.protectors.size();
      psize.add(static_cast<double>(size));

      const auto px = sized_heuristic_set(ds.graph, setup,
                                          SelectorKind::kProximity, size, rng);
      const auto md = sized_heuristic_set(ds.graph, setup,
                                          SelectorKind::kMaxDegree, size, rng);

      auto record = [&](const std::vector<NodeId>& prot,
                        std::vector<RunningStats>& out) {
        DoamConfig dc;
        const DiffusionResult r =
            simulate_doam(ds.graph, {setup.rumors, prot}, dc);
        for (std::uint32_t h = 0; h <= hops; ++h) {
          out[h].add(static_cast<double>(r.cumulative_infected_at(h)));
        }
      };
      record(sc.protectors, scbg_s);
      record(px, px_s);
      record(md, md_s);
      record({}, nb_s);
    }

    os << ds.name << ", |R|=" << nr << " (" << fixed(frac * 100, 0)
       << "% of |C|), |P|=SCBG size=" << fixed(psize.mean()) << ":\n";
    TextTable table;
    table.set_header({"hop", "SCBG", "Proximity", "MaxDegree", "NoBlocking"});
    for (std::uint32_t h = 0; h <= hops; ++h) {
      table.add_values(h, fixed(scbg_s[h].mean()), fixed(px_s[h].mean()),
                       fixed(md_s[h].mean()), fixed(nb_s[h].mean()));
    }
    table.print(os);
    os << "\n";

    if (!ctx.csv_dir.empty()) {
      const std::string path = ctx.csv_dir + "/doam_" + ds.name + "_C" +
                               std::to_string(csize) + "_R" +
                               std::to_string(nr) + ".csv";
      CsvWriter csv(path);
      csv.write_header({"hop", "scbg", "proximity", "maxdegree", "noblocking"});
      for (std::uint32_t h = 0; h <= hops; ++h) {
        csv.write_values(h, scbg_s[h].mean(), px_s[h].mean(), md_s[h].mean(),
                         nb_s[h].mean());
      }
      os << "wrote " << path << "\n";
    }
  }
}

}  // namespace lcrb::bench
