// Shared infrastructure for the paper-reproduction bench binaries.
//
// Every binary honors:
//   --scale / LCRB_BENCH_SCALE   graph-size multiplier vs the paper's
//                                datasets (default 0.1: minutes, not hours,
//                                on a 2-core box; 1.0 = paper-sized)
//   --runs / LCRB_BENCH_RUNS     Monte-Carlo evaluation runs
//   --samples / LCRB_BENCH_SAMPLES   sigma-estimator samples inside greedy
//   --trials / LCRB_BENCH_TRIALS     outer repetitions (rumor re-draws)
//   --seed
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "build_guard.h"
#include "lcrb/experiments.h"

namespace lcrb::bench {

struct BenchContext {
  double scale = 0.1;
  std::size_t mc_runs = 100;
  std::size_t sigma_samples = 20;
  std::size_t trials = 3;
  std::size_t max_candidates = 300;  ///< greedy candidate cap (0 = off)
  std::string csv_dir;               ///< when set, dump figure series CSVs here
  std::uint64_t seed = 1;
  ThreadPool* pool = nullptr;
};

/// Parses flags/env and prints the header line every bench starts with.
/// `default_scale` lets cheap (DOAM) benches default closer to paper size
/// while the Monte-Carlo-greedy (OPOAO) benches stay at 0.1.
BenchContext parse_context(int argc, char** argv, const std::string& title,
                           double default_scale = 0.1);

/// A calibrated dataset-substitute with its planted community structure.
struct Dataset {
  std::string name;        ///< "Hep", "Email" — as in the paper's tables
  DiGraph graph;
  Partition partition;     ///< planted ground truth (Louvain quality is
                           ///< covered by tests and the community ablation)
  CommunityId community;   ///< the paper's rumor community for this figure
  NodeId paper_nodes;      ///< |N| the paper reports
  NodeId paper_community;  ///< |C| the paper reports
  NodeId paper_bridges;    ///< |B| the paper reports
};

Dataset make_hep_dataset(const BenchContext& ctx);          // |C|=308 analog
Dataset make_email_small_dataset(const BenchContext& ctx);  // |C|=80 analog
Dataset make_email_large_dataset(const BenchContext& ctx);  // |C|=2631 analog

/// Prints "dataset: n=..., |C|=..., |B|=... (paper: ...)" for calibration.
void print_dataset_banner(std::ostream& os, const Dataset& ds,
                          const ExperimentSetup& setup);

/// Reproduces one OPOAO figure (Figs. 4-6): infected-vs-hops series for
/// Greedy / Proximity / MaxDegree / NoBlocking with |P| = |R|, one block per
/// rumor fraction (the paper's per-|R| sub-figures).
void run_opoao_figure(std::ostream& os, const Dataset& ds,
                      const BenchContext& ctx,
                      const std::vector<double>& rumor_fractions);

/// One |R| block of an OPOAO figure.
void run_opoao_block(std::ostream& os, const Dataset& ds,
                     const BenchContext& ctx, double rumor_fraction);

/// Reproduces one DOAM figure (Figs. 7-9): infected-vs-hops with all
/// selector sizes pinned to SCBG's cost, for several |R| fractions.
void run_doam_figure(std::ostream& os, const Dataset& ds,
                     const BenchContext& ctx,
                     const std::vector<double>& rumor_fractions);

/// One Table-I block: average protectors needed for full protection.
struct TableOneRow {
  std::string dataset;
  std::string rumor_label;  ///< "1%", "5%", ...
  double scbg = 0.0;
  double proximity = 0.0;
  double maxdegree = 0.0;
};
TableOneRow run_table1_row(const Dataset& ds, const BenchContext& ctx,
                           double rumor_fraction);

}  // namespace lcrb::bench
