// Emergency-broadcast scenario (the paper's earthquake-rumor motivation).
//
// A false earthquake warning spreads by word-of-mouth broadcast (DOAM) from
// one neighborhood of a town's social network. The civil-protection office
// can brief a few residents with the official bulletin (cascade P). SCBG
// computes the cheapest set of residents to brief so that no neighboring
// community is reached by the rumor, and we compare its cost against
// briefing the most-connected residents (MaxDegree) or the rumor's direct
// contacts (Proximity).
//
// Run:  ./emergency_broadcast [--scale 0.1] [--seed 2]
#include <iostream>

#include "lcrb/experiments.h"

int main(int argc, char** argv) {
  using namespace lcrb;
  const Args args(argc, argv);
  const double scale = args.get_double("scale", 0.3);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 2));

  // The town: Hep-like collaboration/acquaintance network (symmetric ties).
  const DatasetSubstitute town = make_hep_like(seed, scale);
  const DiGraph& g = town.net.graph;
  const Partition communities(town.net.membership);
  std::cout << "Town network: " << describe(g) << "\n";
  std::cout << communities.num_communities() << " neighborhoods\n\n";

  const CommunityId origin = town.planted_medium;
  std::cout << "Rumor starts in neighborhood #" << origin << " ("
            << communities.size_of(origin) << " residents)\n";

  TextTable table;
  table.set_header({"|R|", "|B|", "SCBG briefs", "Proximity briefs",
                    "MaxDegree briefs", "infected (SCBG)",
                    "infected (NoBlocking)"});

  Rng rng(seed + 7);
  for (const double frac : {0.01, 0.05, 0.10}) {
    const std::size_t nr = std::max<std::size_t>(
        1, static_cast<std::size_t>(frac * communities.size_of(origin)));
    const ExperimentSetup setup =
        prepare_experiment(g, communities, origin, nr, seed + 11);
    if (setup.bridges.bridge_ends.empty()) continue;

    // SCBG: guaranteed full protection, minimal-ish cost.
    const ScbgResult sc = scbg_from_bridges(g, setup.rumors, setup.bridges);

    // Heuristic cover costs: how many briefs until everyone is safe?
    const auto md_order =
        maxdegree_protectors(g, setup.rumors, g.num_nodes());
    const CoverCostResult md =
        cover_cost_doam(g, setup.rumors, setup.bridges.bridge_ends, md_order);
    const auto px_order = proximity_protectors(
        g, setup.rumors, g.num_nodes(), rng);
    const CoverCostResult px =
        cover_cost_doam(g, setup.rumors, setup.bridges.bridge_ends, px_order);

    // Outcome under DOAM with the SCBG briefing vs doing nothing.
    const DiffusionResult with =
        simulate_doam(g, {setup.rumors, sc.protectors});
    const DiffusionResult without = simulate_doam(g, {setup.rumors, {}});

    table.add_values(
        setup.rumors.size(), setup.bridges.bridge_ends.size(),
        sc.protectors.size(),
        px.feasible ? std::to_string(px.cost) : ">" + std::to_string(px.cost),
        md.feasible ? std::to_string(md.cost) : ">" + std::to_string(md.cost),
        with.infected_count(), without.infected_count());
  }
  table.print(std::cout);
  std::cout << "\nEvery SCBG row is verified: no bridge end is ever reached "
               "by the rumor.\n";
  return 0;
}
