// Model explorer: how the four diffusion models spread the same rumor.
//
// Runs OPOAO, DOAM, competitive IC, and competitive LT from identical seed
// sets on one community-structured network and prints the per-hop cumulative
// infection counts side by side — OPOAO's person-to-person crawl versus
// DOAM's broadcast flood is the contrast the paper builds its two problem
// variants on.
//
// Run:  ./model_explorer [--scale 0.05] [--runs 50] [--hops 16] [--csv out.csv]
#include <iostream>

#include "lcrb/experiments.h"

int main(int argc, char** argv) {
  using namespace lcrb;
  const Args args(argc, argv);
  const double scale = args.get_double("scale", 0.05);
  const std::size_t runs = static_cast<std::size_t>(args.get_int("runs", 50));
  const auto hops = static_cast<std::uint32_t>(args.get_int("hops", 16));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 3));

  const DatasetSubstitute ds = make_enron_like(seed, scale);
  const DiGraph& g = ds.net.graph;
  const Partition communities(ds.net.membership);
  std::cout << "Network: " << describe(g) << "\n";

  const ExperimentSetup setup =
      prepare_experiment(g, communities, ds.planted_medium, 5, seed + 1);
  // A handful of protectors from SCBG so both cascades are in play.
  const ScbgResult sc = scbg_from_bridges(g, setup.rumors, setup.bridges);
  std::cout << "|R| = " << setup.rumors.size() << ", |P| = "
            << sc.protectors.size() << " (SCBG seeds)\n\n";

  ThreadPool pool;
  std::vector<HopSeries> series;
  const DiffusionModel models[] = {DiffusionModel::kOpoao,
                                   DiffusionModel::kDoam, DiffusionModel::kIc,
                                   DiffusionModel::kLt};
  for (DiffusionModel m : models) {
    MonteCarloConfig mc;
    mc.runs = runs;
    mc.max_hops = hops;
    mc.model = m;
    mc.ic_edge_prob = 0.15;
    mc.seed = seed + 9;
    SeedSets seeds{setup.rumors, sc.protectors};
    series.push_back(monte_carlo_series(g, seeds, mc,
                                        setup.bridges.bridge_ends, &pool));
  }

  TextTable table;
  table.set_header({"hop", "OPOAO", "DOAM", "IC(p=0.15)", "LT"});
  for (std::uint32_t h = 0; h <= hops; ++h) {
    table.add_values(h, fixed(series[0].infected_mean[h]),
                     fixed(series[1].infected_mean[h]),
                     fixed(series[2].infected_mean[h]),
                     fixed(series[3].infected_mean[h]));
  }
  table.print(std::cout);

  std::cout << "\nBridge ends saved: ";
  for (std::size_t i = 0; i < series.size(); ++i) {
    std::cout << to_string(models[i]) << "="
              << fixed(100.0 * series[i].saved_fraction_mean) << "%  ";
  }
  std::cout << "\n";

  if (args.has("csv")) {
    CsvWriter csv(args.get_string("csv", "model_explorer.csv"));
    csv.write_header({"hop", "opoao", "doam", "ic", "lt"});
    for (std::uint32_t h = 0; h <= hops; ++h) {
      csv.write_values(h, series[0].infected_mean[h],
                       series[1].infected_mean[h], series[2].infected_mean[h],
                       series[3].infected_mean[h]);
    }
    std::cout << "Wrote " << args.get_string("csv", "") << "\n";
  }
  return 0;
}
