// Quickstart: the LCRB workflow on a 12-node toy network.
//
//   build graph -> define communities -> pick rumor originators ->
//   find bridge ends -> run SCBG -> verify protection under DOAM.
//
// Run:  ./quickstart
#include <iostream>

#include "lcrb/experiments.h"

int main() {
  using namespace lcrb;

  // A two-community network. Community 0 (nodes 0-5) hosts the rumor;
  // community 1 (nodes 6-11) must be protected.
  GraphBuilder b;
  // Dense rumor community.
  b.add_undirected_edge(0, 1);
  b.add_undirected_edge(0, 2);
  b.add_undirected_edge(1, 2);
  b.add_undirected_edge(1, 3);
  b.add_undirected_edge(2, 4);
  b.add_undirected_edge(3, 4);
  b.add_undirected_edge(3, 5);
  b.add_undirected_edge(4, 5);
  // Sparse cross-community bridges.
  b.add_edge(4, 6);
  b.add_edge(5, 8);
  // Dense neighbor community.
  b.add_undirected_edge(6, 7);
  b.add_undirected_edge(6, 8);
  b.add_undirected_edge(7, 9);
  b.add_undirected_edge(8, 9);
  b.add_undirected_edge(9, 10);
  b.add_undirected_edge(10, 11);
  const DiGraph g = b.finalize();

  std::cout << "Network: " << describe(g) << "\n\n";

  const Partition communities(
      std::vector<CommunityId>{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1});
  const std::vector<NodeId> rumors{0, 1};

  // Stage 1: bridge ends (boundary nodes of the neighbor community that the
  // rumor can reach).
  const BridgeEndResult bridges =
      find_bridge_ends(g, communities, /*rumor_community=*/0, rumors);
  std::cout << "Bridge ends:";
  for (NodeId v : bridges.bridge_ends) {
    std::cout << "  " << v << " (rumor arrives at hop " << bridges.rumor_dist[v]
              << ")";
  }
  std::cout << "\n";

  // Stage 2: SCBG picks the cheapest protector seed set that saves them all.
  const ScbgResult result = scbg_from_bridges(g, rumors, bridges);
  std::cout << "SCBG protectors:";
  for (NodeId v : result.protectors) std::cout << " " << v;
  std::cout << "  (" << result.protectors.size() << " seeds for "
            << result.bridge_ends.size() << " bridge ends)\n\n";

  // Stage 3: watch both cascades race under DOAM.
  SeedSets seeds{rumors, result.protectors};
  const DiffusionResult sim = simulate_doam(g, seeds);
  TextTable table;
  table.set_header({"node", "community", "state", "hop"});
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const char* state = sim.state[v] == NodeState::kInfected   ? "infected"
                        : sim.state[v] == NodeState::kProtected ? "protected"
                                                                 : "inactive";
    table.add_values(v, communities.community_of(v), state,
                     sim.activation_step[v] == kUnreached
                         ? std::string("-")
                         : std::to_string(sim.activation_step[v]));
  }
  table.print(std::cout);

  std::cout << "\nInfected total: " << sim.infected_count()
            << " | protected total: " << sim.protected_count() << "\n";
  std::cout << "Every bridge end uninfected: "
            << (sim.saved_count(result.bridge_ends) ==
                        result.bridge_ends.size()
                    ? "yes"
                    : "NO (bug!)")
            << "\n";
  return 0;
}
