// Rumor containment campaign on an Enron-like social network.
//
// The full production pipeline, driven through the query service: generate
// (or load) a network, detect communities with Louvain, register the dataset
// with a QueryService, then compare every protector-selection strategy under
// the OPOAO model with one batched round of select queries (they all share
// the session's warm experiment setup and sigma estimator) followed by one
// evaluate query per strategy.
//
// Run:  ./rumor_containment [--scale 0.05] [--rumors 8] [--runs 60]
//                           [--graph path.txt] [--seed 1]
#include <iostream>

#include "lcrb/experiments.h"
#include "service/query_service.h"

int main(int argc, char** argv) {
  using namespace lcrb;
  const Args args(argc, argv);
  const double scale = args.get_double("scale", 0.05);
  const std::size_t num_rumors =
      static_cast<std::size_t>(args.get_int("rumors", 8));
  const std::size_t runs = static_cast<std::size_t>(args.get_int("runs", 60));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));

  // 1. Network: load an edge list if given, else the Enron substitute.
  DiGraph g;
  if (args.has("graph")) {
    g = load_edge_list(args.get_string("graph", ""));
    std::cout << "Loaded " << args.get_string("graph", "") << "\n";
  } else {
    g = make_enron_like(seed, scale).net.graph;
    std::cout << "Generated Enron-like substitute (scale " << scale << ")\n";
  }
  std::cout << describe(g) << "\n\n";

  // 2. Community structure via Louvain (what the paper uses).
  const Partition communities = louvain(g, {.seed = seed});
  std::cout << "Louvain found " << communities.num_communities()
            << " communities; modularity " << fixed(modularity(g, communities), 3)
            << "\n";

  // 3. Rumor community: mid-sized so there is a meaningful boundary.
  const CommunityId rc = communities.closest_to_size(
      static_cast<NodeId>(args.get_int("community-size", 120)));
  std::cout << "Rumor community: #" << rc << " with "
            << communities.size_of(rc) << " members\n";

  // 4. Register the dataset with a query service; every query below runs
  // against this one shared session.
  service::QueryService svc;
  svc.registry().open("enron", std::move(g), std::move(communities));

  // Base request: rumor choice + unified options (budget 0 = |rumors|).
  service::QueryRequest base;
  base.dataset = "enron";
  base.op = service::QueryOp::kSelect;
  base.rumor_community = rc;
  base.num_rumors = num_rumors;
  base.rumor_seed = seed + 1;
  base.options.selector_seed = seed + 2;
  base.options.alpha = 0.95;
  base.options.sigma_samples = 30;
  base.options.sigma_seed = seed + 3;
  base.options.max_candidates =
      static_cast<std::size_t>(args.get_int("candidates", 300));
  base.options.gvs_samples = 20;

  // 5. One batched round of select queries: the batcher groups them onto the
  // shared session, so the experiment setup and sigma estimator are computed
  // once and reused by every strategy.
  const SelectorKind kinds[] = {
      SelectorKind::kGreedy,    SelectorKind::kGvs,
      SelectorKind::kProximity, SelectorKind::kMaxDegree,
      SelectorKind::kPageRank,  SelectorKind::kRandom,
      SelectorKind::kNoBlocking};
  std::vector<service::QueryRequest> selects;
  for (SelectorKind kind : kinds) {
    service::QueryRequest req = base;
    req.id = to_string(kind);
    req.options.selector = kind;
    selects.push_back(req);
  }
  const std::vector<service::QueryResult> selected =
      svc.run_batch(std::move(selects));

  std::cout << "|R| = " << selected.front().rumors.size()
            << ", bridge ends |B| = " << selected.front().num_bridge_ends
            << "\n\n";

  TextTable table;
  table.set_header({"algorithm", "|P|", "infected@7", "infected@15",
                    "infected@31", "bridge ends saved"});
  for (const service::QueryResult& sel : selected) {
    if (!sel.ok) throw Error("select '" + sel.id + "' failed: " + sel.error);
    service::QueryRequest ev = base;
    ev.op = service::QueryOp::kEvaluate;
    ev.id = sel.id;
    ev.protectors = sel.protectors;
    ev.eval_runs = runs;
    ev.eval_seed = seed + 4;
    const service::QueryResult s = svc.run(ev);
    if (!s.ok) throw Error("evaluate '" + s.id + "' failed: " + s.error);
    table.add_values(sel.id, s.protectors.size(),
                     fixed(s.infected_by_hop[7]), fixed(s.infected_by_hop[15]),
                     fixed(s.infected_by_hop[31]),
                     fixed(100.0 * s.saved_fraction) + "%");
  }
  table.print(std::cout);
  std::cout << "\n(" << runs << " Monte-Carlo runs per row, OPOAO model, "
            << "31 hops; protectors budget = |R|)\n";
  return 0;
}
