// Rumor containment campaign on an Enron-like social network.
//
// The full production pipeline: generate (or load) a network, detect
// communities with Louvain, plant a rumor, compare every protector-selection
// strategy under the OPOAO model, and print the per-hop infection table.
//
// Run:  ./rumor_containment [--scale 0.05] [--rumors 8] [--runs 60]
//                           [--graph path.txt] [--seed 1]
#include <iostream>

#include "lcrb/lcrb.h"

int main(int argc, char** argv) {
  using namespace lcrb;
  const Args args(argc, argv);
  const double scale = args.get_double("scale", 0.05);
  const std::size_t num_rumors =
      static_cast<std::size_t>(args.get_int("rumors", 8));
  const std::size_t runs = static_cast<std::size_t>(args.get_int("runs", 60));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));

  // 1. Network: load an edge list if given, else the Enron substitute.
  DiGraph g;
  if (args.has("graph")) {
    g = load_edge_list(args.get_string("graph", ""));
    std::cout << "Loaded " << args.get_string("graph", "") << "\n";
  } else {
    g = make_enron_like(seed, scale).net.graph;
    std::cout << "Generated Enron-like substitute (scale " << scale << ")\n";
  }
  std::cout << describe(g) << "\n\n";

  // 2. Community structure via Louvain (what the paper uses).
  const Partition communities = louvain(g, {.seed = seed});
  std::cout << "Louvain found " << communities.num_communities()
            << " communities; modularity " << fixed(modularity(g, communities), 3)
            << "\n";

  // 3. Rumor community: mid-sized so there is a meaningful boundary.
  const CommunityId rc = communities.closest_to_size(
      static_cast<NodeId>(args.get_int("community-size", 120)));
  std::cout << "Rumor community: #" << rc << " with "
            << communities.size_of(rc) << " members\n";

  const ExperimentSetup setup =
      prepare_experiment(g, communities, rc,
                         std::min<std::size_t>(num_rumors,
                                               communities.size_of(rc)),
                         seed + 1);
  std::cout << "|R| = " << setup.rumors.size()
            << ", bridge ends |B| = " << setup.bridges.bridge_ends.size()
            << "\n\n";

  // 4. Compare selectors with equal budgets (|P| = |R|, as in Figs. 4-6).
  ThreadPool pool;
  SelectorConfig sel;
  sel.budget = setup.rumors.size();
  sel.seed = seed + 2;
  sel.greedy.alpha = 0.95;
  sel.greedy.sigma.samples = 30;
  sel.greedy.sigma.seed = seed + 3;
  sel.greedy.max_protectors = sel.budget;
  sel.greedy.max_candidates =
      static_cast<std::size_t>(args.get_int("candidates", 300));

  MonteCarloConfig mc;
  mc.runs = runs;
  mc.max_hops = 31;
  mc.seed = seed + 4;

  TextTable table;
  table.set_header({"algorithm", "|P|", "infected@7", "infected@15",
                    "infected@31", "bridge ends saved"});
  sel.gvs.samples = 20;
  for (SelectorKind kind :
       {SelectorKind::kGreedy, SelectorKind::kGvs, SelectorKind::kProximity,
        SelectorKind::kMaxDegree, SelectorKind::kPageRank,
        SelectorKind::kRandom, SelectorKind::kNoBlocking}) {
    const auto protectors = select_protectors(kind, setup, sel, &pool);
    const HopSeries s = evaluate_protectors(setup, protectors, mc, &pool);
    table.add_values(to_string(kind), protectors.size(),
                     fixed(s.infected_mean[7]), fixed(s.infected_mean[15]),
                     fixed(s.infected_mean[31]),
                     fixed(100.0 * s.saved_fraction_mean) + "%");
  }
  table.print(std::cout);
  std::cout << "\n(" << runs << " Monte-Carlo runs per row, OPOAO model, "
            << "31 hops; protectors budget = |R|)\n";
  return 0;
}
