// Source detective: locate hidden rumor originators from an infection
// snapshot (the paper's closing research direction).
//
// We plant k hidden originators in one community, let the rumor broadcast
// for a few DOAM hops, hand the snapshot to the locator, and score the
// estimate by hop distance to the truth.
//
// Run:  ./source_detective [--scale 0.2] [--sources 2] [--hops 4] [--trials 10]
#include <iostream>

#include "lcrb/experiments.h"

int main(int argc, char** argv) {
  using namespace lcrb;
  const Args args(argc, argv);
  const double scale = args.get_double("scale", 0.2);
  const auto k = static_cast<std::size_t>(args.get_int("sources", 2));
  const auto hops = static_cast<std::uint32_t>(args.get_int("hops", 4));
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 10));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 4));

  const DatasetSubstitute ds = make_hep_like(seed, scale);
  const DiGraph& g = ds.net.graph;
  const Partition communities(ds.net.membership);
  std::cout << "Network: " << describe(g) << "\n";
  std::cout << "Hidden sources: " << k << ", snapshot after " << hops
            << " DOAM hops, " << trials << " trials\n\n";

  TextTable table;
  table.set_header({"trial", "infected", "estimate radius", "mean err (hops)",
                    "exact hits"});
  RunningStats overall_err, exact_hits;
  Rng rng(seed + 1);
  const auto& members = communities.members(ds.planted_medium);

  for (std::size_t trial = 0; trial < trials; ++trial) {
    // Hidden originators inside the planted community.
    std::vector<NodeId> truth;
    while (truth.size() < k) {
      const NodeId v = members[rng.next_below(members.size())];
      if (std::find(truth.begin(), truth.end(), v) == truth.end()) {
        truth.push_back(v);
      }
    }

    DoamConfig dc;
    dc.max_steps = hops;
    const DiffusionResult r = simulate_doam(g, {truth, {}}, dc);
    std::vector<NodeId> snapshot;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (r.state[v] == NodeState::kInfected) snapshot.push_back(v);
    }
    if (snapshot.size() < 2 * k) continue;

    SourceLocateConfig cfg;
    cfg.num_sources = k;
    const SourceEstimate est = locate_sources(g, snapshot, cfg);
    const auto errs = source_error(g, truth, est.sources);

    RunningStats trial_err;
    std::size_t hits = 0;
    for (std::uint32_t e : errs) {
      if (e == kUnreached) continue;
      trial_err.add(static_cast<double>(e));
      hits += (e == 0);
    }
    overall_err.merge(trial_err);
    exact_hits.add(static_cast<double>(hits));
    table.add_values(trial, snapshot.size(), est.radius,
                     fixed(trial_err.mean(), 2),
                     std::to_string(hits) + "/" + std::to_string(k));
  }
  table.print(std::cout);
  std::cout << "\nMean localization error: " << fixed(overall_err.mean(), 2)
            << " hops; exact source hits per trial: "
            << fixed(exact_hits.mean(), 2) << "/" << k << "\n";
  return 0;
}
