// Fuzz target: the binary graph loader. The header's node/arc counts are
// attacker-controlled; reads must stay bounded by the bytes present and
// corrupt payloads must fail the checksum, not crash.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "graph/io.h"
#include "util/error.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  std::istringstream in(bytes);
  try {
    const lcrb::DiGraph g = lcrb::load_binary(in);
    (void)g.num_edges();
  } catch (const lcrb::Error&) {
  }
  return 0;
}
