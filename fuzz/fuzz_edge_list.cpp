// Fuzz target: the SNAP-style edge-list text loader, directed and
// undirected. Malformed lines must throw lcrb::Error with a line number;
// nothing may crash or allocate unboundedly.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "graph/io.h"
#include "util/error.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  for (const bool undirected : {false, true}) {
    std::istringstream in(text);
    try {
      const lcrb::DiGraph g = lcrb::load_edge_list(in, undirected);
      (void)g.num_nodes();
    } catch (const lcrb::Error&) {
    }
  }
  return 0;
}
