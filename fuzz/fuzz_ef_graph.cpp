// Fuzz target: the Elias-Fano container loader. Every field of the header
// and payload directory is attacker-controlled; parsing must stay bounded
// by the bytes present, and any forged count, truncated payload, or flipped
// bit must surface as lcrb::Error — never a crash or an out-of-bounds read.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "graph/ef_graph.h"
#include "util/error.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  std::istringstream in(bytes);
  try {
    const lcrb::EfGraph g = lcrb::EfGraph::load(in, lcrb::EfVerify::kFull);
    // Touch the decoded structure so a survivable-but-corrupt parse that
    // slipped past validate() still gets exercised.
    std::size_t touched = 0;
    for (lcrb::NodeId u = 0; u < g.num_nodes() && touched < 1024; ++u) {
      for (const lcrb::NodeId v : g.out_neighbors(u)) {
        (void)v;
        ++touched;
      }
    }
  } catch (const lcrb::Error&) {
  }
  return 0;
}
