// Fuzz target: the Elias-Fano container loader. Every field of the header
// and payload directory is attacker-controlled; parsing must stay bounded
// by the bytes present, and any forged count, truncated payload, or flipped
// bit must surface as lcrb::Error — never a crash or an out-of-bounds read.
//
// Both load paths are driven: the chunked istream path and the file path in
// EfMapMode::kMmap, whose truncation bound trusts st_size rather than a
// byte count read from the stream (the divided-bound overflow regression
// lives there; see corpus/fuzz_ef_graph/forged_payload_words.bin).
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include "graph/ef_graph.h"
#include "util/error.h"

#if !defined(_WIN32)
#include <unistd.h>
#define LCRB_FUZZ_EF_HAS_FILE_PATH 1
#else
#define LCRB_FUZZ_EF_HAS_FILE_PATH 0
#endif

namespace {

void touch(const lcrb::EfGraph& g) {
  // Touch the decoded structure so a survivable-but-corrupt parse that
  // slipped past validate() still gets exercised.
  std::size_t touched = 0;
  for (lcrb::NodeId u = 0; u < g.num_nodes() && touched < 1024; ++u) {
    for (const lcrb::NodeId v : g.out_neighbors(u)) {
      (void)v;
      ++touched;
    }
  }
}

#if LCRB_FUZZ_EF_HAS_FILE_PATH
const std::string& scratch_path() {
  static const std::string path = [] {
    char tmpl[] = "/tmp/lcrb_fuzz_ef_XXXXXX";
    const int fd = ::mkstemp(tmpl);
    if (fd >= 0) ::close(fd);
    return std::string(tmpl);
  }();
  return path;
}
#endif

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  std::istringstream in(bytes);
  try {
    touch(lcrb::EfGraph::load(in, lcrb::EfVerify::kFull));
  } catch (const lcrb::Error&) {
  }

#if LCRB_FUZZ_EF_HAS_FILE_PATH
  {
    std::ofstream out(scratch_path(),
                      std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  try {
    touch(lcrb::EfGraph::load(scratch_path(), lcrb::EfMapMode::kMmap,
                              lcrb::EfVerify::kFull));
  } catch (const lcrb::Error&) {
  }
#endif
  return 0;
}
