// Fuzz target: JsonValue::parse on arbitrary bytes, plus the dump/parse
// round-trip invariant on everything that parses. lcrb::Error is the only
// exception the parser is allowed to throw; anything else (bad_alloc from a
// missing length limit, std::out_of_range from an unchecked index) crashes
// the harness and becomes a finding.
#include <cstddef>
#include <cstdint>
#include <string>

#include "util/error.h"
#include "util/json.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const lcrb::JsonValue v = lcrb::JsonValue::parse(text);
    // Round-trip: dump() output must re-parse (and re-dump identically).
    const std::string dumped = v.dump();
    const lcrb::JsonValue v2 = lcrb::JsonValue::parse(dumped);
    if (v2.dump() != dumped) __builtin_trap();
  } catch (const lcrb::Error&) {
    // Malformed input rejected with a diagnostic: the expected outcome.
  }
  return 0;
}
