// Fuzz target: the community membership CSV loader. A hostile file may not
// drive allocation beyond its own size (sparse huge node ids must be
// rejected by the denseness check, not honored with memory).
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "community/io.h"
#include "util/error.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  std::istringstream in(text);
  try {
    const lcrb::Partition p = lcrb::load_membership(in);
    (void)p.num_communities();
  } catch (const lcrb::Error&) {
  }
  return 0;
}
