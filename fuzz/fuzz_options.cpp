// Fuzz target: LcrbOptions::from_json and from_args. The input bytes are
// used twice — as a JSON document, and whitespace-tokenized as an argv
// vector — so one corpus exercises both decoders.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "lcrb/options.h"
#include "util/args.h"
#include "util/error.h"
#include "util/json.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  try {
    const auto o = lcrb::LcrbOptions::from_json(lcrb::JsonValue::parse(text));
    // Round-trip invariant on accepted option sets.
    const std::string dumped = o.to_json().dump();
    const auto o2 = lcrb::LcrbOptions::from_json(lcrb::JsonValue::parse(dumped));
    if (o2.to_json().dump() != dumped) __builtin_trap();
  } catch (const lcrb::Error&) {
  }

  try {
    std::vector<std::string> argv = {"fuzz"};
    std::istringstream tokens(text);
    std::string tok;
    while (tokens >> tok && argv.size() < 64) argv.push_back(tok);
    const lcrb::Args args(argv);
    (void)lcrb::LcrbOptions::from_args(args);
  } catch (const lcrb::Error&) {
  }
  return 0;
}
