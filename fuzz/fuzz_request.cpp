// Fuzz target: the lcrbd wire decode path — bytes -> JSON -> QueryRequest /
// QueryResult. This is the service's untrusted-input boundary: anything a
// socket peer sends goes through exactly this code.
#include <cstddef>
#include <cstdint>
#include <string>

#include "service/request.h"
#include "util/error.h"
#include "util/json.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  lcrb::JsonValue parsed;
  try {
    parsed = lcrb::JsonValue::parse(text);
  } catch (const lcrb::Error&) {
    return 0;
  }
  try {
    const auto req = lcrb::service::QueryRequest::from_json(parsed);
    // Decoded requests must re-encode and decode to the same wire form.
    const std::string wire = req.to_json().dump();
    const auto again = lcrb::service::QueryRequest::from_json(
        lcrb::JsonValue::parse(wire));
    if (again.to_json().dump() != wire) __builtin_trap();
  } catch (const lcrb::Error&) {
  }
  try {
    const auto res = lcrb::service::QueryResult::from_json(parsed);
    (void)res.to_json(true);
  } catch (const lcrb::Error&) {
  }
  return 0;
}
