// Replay driver for toolchains without libFuzzer (the default gcc build):
// runs every file argument through LLVMFuzzerTestOneInput once. This is how
// the checked-in seed corpora execute as plain ctest cases in every build;
// with -DLCRB_LIBFUZZER=ON (Clang) the libFuzzer runtime provides main and
// this file is not compiled in.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int main(int argc, char** argv) {
  int ran = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in.good()) {
      std::fprintf(stderr, "cannot open corpus file: %s\n", argv[i]);
      return 1;
    }
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                           bytes.size());
    ++ran;
  }
  if (ran == 0) {  // no corpus: still exercise the empty input
    LLVMFuzzerTestOneInput(nullptr, 0);
  }
  std::fprintf(stderr, "replayed %d input(s)\n", ran);
  return 0;
}
