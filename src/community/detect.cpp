#include "community/detect.h"

#include "community/label_propagation.h"
#include "community/louvain.h"
#include "graph/ef_graph.h"
#include "graph/graph.h"
#include "util/error.h"

namespace lcrb {

template <GraphView G>
Partition detect_communities(const G& g, CommunityMethod method,
                             std::uint64_t seed) {
  switch (method) {
    case CommunityMethod::kLouvain: {
      LouvainConfig cfg;
      cfg.seed = seed;
      return louvain(g, cfg);
    }
    case CommunityMethod::kLabelPropagation: {
      LabelPropagationConfig cfg;
      cfg.seed = seed;
      return label_propagation(g, cfg);
    }
    case CommunityMethod::kGroundTruth:
      throw Error("kGroundTruth has no detector; build Partition from labels");
  }
  throw Error("unknown community method");
}

template Partition detect_communities<DiGraph>(const DiGraph&,
                                               CommunityMethod, std::uint64_t);
template Partition detect_communities<EfGraph>(const EfGraph&, CommunityMethod,
                                               std::uint64_t);

std::string to_string(CommunityMethod method) {
  switch (method) {
    case CommunityMethod::kLouvain: return "louvain";
    case CommunityMethod::kLabelPropagation: return "label_propagation";
    case CommunityMethod::kGroundTruth: return "ground_truth";
  }
  return "unknown";
}

}  // namespace lcrb
