#include "community/detect.h"

#include "community/label_propagation.h"
#include "community/louvain.h"
#include "util/error.h"

namespace lcrb {

Partition detect_communities(const DiGraph& g, CommunityMethod method,
                             std::uint64_t seed) {
  switch (method) {
    case CommunityMethod::kLouvain: {
      LouvainConfig cfg;
      cfg.seed = seed;
      return louvain(g, cfg);
    }
    case CommunityMethod::kLabelPropagation: {
      LabelPropagationConfig cfg;
      cfg.seed = seed;
      return label_propagation(g, cfg);
    }
    case CommunityMethod::kGroundTruth:
      throw Error("kGroundTruth has no detector; build Partition from labels");
  }
  throw Error("unknown community method");
}

std::string to_string(CommunityMethod method) {
  switch (method) {
    case CommunityMethod::kLouvain: return "louvain";
    case CommunityMethod::kLabelPropagation: return "label_propagation";
    case CommunityMethod::kGroundTruth: return "ground_truth";
  }
  return "unknown";
}

}  // namespace lcrb
