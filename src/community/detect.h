// Unified community-detection entry point used by the LCRB pipeline.
#pragma once

#include <cstdint>
#include <string>

#include "community/partition.h"
#include "graph/graph_view.h"

namespace lcrb {

enum class CommunityMethod {
  kLouvain,           ///< what the paper uses (Blondel et al. [25])
  kLabelPropagation,  ///< faster, lower-quality baseline
  kGroundTruth,       ///< use planted membership (supplied separately)
};

/// Runs the chosen detector. kGroundTruth is invalid here (it has no graph
/// signal); callers with planted labels construct Partition directly.
template <GraphView G>
Partition detect_communities(const G& g, CommunityMethod method,
                             std::uint64_t seed = 1);

/// Human-readable method name for logs and bench output.
std::string to_string(CommunityMethod method);

}  // namespace lcrb
