#include "community/io.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/error.h"

namespace lcrb {

void save_membership(const Partition& p, const std::string& path) {
  std::ofstream out(path);
  LCRB_REQUIRE(out.good(), "cannot open membership file for writing: " + path);
  save_membership(p, out);
  LCRB_REQUIRE(out.good(), "membership write failed: " + path);
}

void save_membership(const Partition& p, std::ostream& out) {
  out << "node,community\n";
  for (NodeId v = 0; v < p.num_nodes(); ++v) {
    out << v << ',' << p.community_of(v) << '\n';
  }
}

Partition load_membership(const std::string& path) {
  std::ifstream in(path);
  LCRB_REQUIRE(in.good(), "cannot open membership file: " + path);
  return load_membership(in);
}

Partition load_membership(std::istream& in) {
  std::string line;
  LCRB_REQUIRE(static_cast<bool>(std::getline(in, line)),
               "empty membership file");
  // Tolerate files without the header.
  const bool has_header = line.rfind("node", 0) == 0;

  std::vector<CommunityId> labels;
  std::vector<bool> seen;
  auto consume = [&](const std::string& row, std::size_t lineno) {
    if (row.empty()) return;
    std::istringstream fields(row);
    std::string node_s, comm_s;
    if (!std::getline(fields, node_s, ',') ||
        !std::getline(fields, comm_s, ',')) {
      throw Error("malformed membership line " + std::to_string(lineno) +
                  ": '" + row + "'");
    }
    std::size_t pos = 0;
    unsigned long node = 0, comm = 0;
    try {
      node = std::stoul(node_s, &pos);
      LCRB_REQUIRE(pos == node_s.size(), "trailing junk in node id");
      comm = std::stoul(comm_s, &pos);
      LCRB_REQUIRE(pos == comm_s.size(), "trailing junk in community id");
    } catch (const std::exception&) {
      throw Error("malformed membership line " + std::to_string(lineno) +
                  ": '" + row + "'");
    }
    if (node >= labels.size()) {
      labels.resize(node + 1, kInvalidCommunity);
      seen.resize(node + 1, false);
    }
    LCRB_REQUIRE(!seen[node],
                 "duplicate node " + std::to_string(node) + " in membership");
    seen[node] = true;
    labels[node] = static_cast<CommunityId>(comm);
  };

  std::size_t lineno = 1;
  if (!has_header) consume(line, lineno);
  while (std::getline(in, line)) consume(line, ++lineno);

  for (std::size_t v = 0; v < seen.size(); ++v) {
    LCRB_REQUIRE(seen[v], "membership missing node " + std::to_string(v));
  }
  return Partition(labels);
}

}  // namespace lcrb
