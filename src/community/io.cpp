#include "community/io.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "util/error.h"

namespace lcrb {

void save_membership(const Partition& p, const std::string& path) {
  std::ofstream out(path);
  LCRB_REQUIRE(out.good(), "cannot open membership file for writing: " + path);
  save_membership(p, out);
  LCRB_REQUIRE(out.good(), "membership write failed: " + path);
}

void save_membership(const Partition& p, std::ostream& out) {
  out << "node,community\n";
  for (NodeId v = 0; v < p.num_nodes(); ++v) {
    out << v << ',' << p.community_of(v) << '\n';
  }
}

Partition load_membership(const std::string& path) {
  std::ifstream in(path);
  LCRB_REQUIRE(in.good(), "cannot open membership file: " + path);
  return load_membership(in);
}

Partition load_membership(std::istream& in) {
  std::string line;
  LCRB_REQUIRE(static_cast<bool>(std::getline(in, line)),
               "empty membership file");
  // Tolerate files without the header.
  const bool has_header = line.rfind("node", 0) == 0;

  // Collect (node, community) rows first and validate denseness at the end:
  // resizing `labels` to an untrusted node id up front would let one line
  // ("4000000000,0") demand gigabytes. This way allocation is proportional
  // to the bytes actually read, and a sparse huge id is rejected by the
  // denseness check rather than honored with memory.
  std::vector<std::pair<std::uint64_t, CommunityId>> rows;
  auto consume = [&](const std::string& row, std::size_t lineno) {
    if (row.empty()) return;
    std::istringstream fields(row);
    std::string node_s, comm_s;
    if (!std::getline(fields, node_s, ',') ||
        !std::getline(fields, comm_s, ',')) {
      throw Error("malformed membership line " + std::to_string(lineno) +
                  ": '" + row + "'");
    }
    std::size_t pos = 0;
    unsigned long long node = 0, comm = 0;
    try {
      node = std::stoull(node_s, &pos);
      LCRB_REQUIRE(pos == node_s.size(), "trailing junk in node id");
      comm = std::stoull(comm_s, &pos);
      LCRB_REQUIRE(pos == comm_s.size(), "trailing junk in community id");
    } catch (const std::exception&) {
      throw Error("malformed membership line " + std::to_string(lineno) +
                  ": '" + row + "'");
    }
    LCRB_REQUIRE(node < kInvalidNode,
                 "membership node id " + std::to_string(node) +
                     " exceeds the node-id range");
    LCRB_REQUIRE(comm < kInvalidCommunity,
                 "membership community id " + std::to_string(comm) +
                     " exceeds the community-id range");
    rows.emplace_back(node, static_cast<CommunityId>(comm));
  };

  std::size_t lineno = 1;
  if (!has_header) consume(line, lineno);
  while (std::getline(in, line)) consume(line, ++lineno);

  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<CommunityId> labels(rows.size(), kInvalidCommunity);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].first < i) {
      throw Error("duplicate node " + std::to_string(rows[i].first) +
                  " in membership");
    }
    if (rows[i].first > i) {
      throw Error("membership missing node " + std::to_string(i));
    }
    labels[i] = rows[i].second;
  }
  return Partition(labels);
}

}  // namespace lcrb
