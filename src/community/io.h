// Partition persistence: "node,community" CSV (the format lcrb_cli's
// `communities --out` writes), so detected structure can be reused across
// runs without re-running Louvain.
#pragma once

#include <iosfwd>
#include <string>

#include "community/partition.h"

namespace lcrb {

/// Writes one "node,community" line per node, with a header row.
void save_membership(const Partition& p, const std::string& path);
void save_membership(const Partition& p, std::ostream& out);

/// Reads the CSV back. Every node in [0, max_node] must appear exactly once;
/// labels are re-normalized by Partition. Throws lcrb::Error on malformed
/// rows, duplicates, or gaps.
Partition load_membership(const std::string& path);
Partition load_membership(std::istream& in);

}  // namespace lcrb
