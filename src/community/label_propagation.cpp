#include "community/label_propagation.h"

#include <algorithm>
#include <numeric>

#include "graph/ef_graph.h"
#include "graph/graph.h"
#include "util/rng.h"

// Determinism-critical (gated by tools/lcrb_analyze D1-D4; community ids
// feed bridge ends and hence sigma): vote counting runs over flat arrays
// with an explicit touched list — no unordered_map iteration anywhere.

namespace lcrb {

template <GraphView G>
Partition label_propagation(const G& g,
                            const LabelPropagationConfig& cfg) {
  const NodeId n = g.num_nodes();
  std::vector<CommunityId> label(n);
  std::iota(label.begin(), label.end(), 0);
  if (n == 0) return Partition(label);

  Rng rng(cfg.seed);
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);

  // Labels always stay in [0, n), so votes can live in a dense array; the
  // touched list makes per-node reset O(neighbors), not O(n).
  std::vector<double> votes(n, 0.0);
  std::vector<CommunityId> touched, best;

  for (int iter = 0; iter < cfg.max_iters; ++iter) {
    for (NodeId i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
    bool changed = false;
    for (NodeId v : order) {
      touched.clear();
      auto tally = [&](NodeId u) {
        const CommunityId c = label[u];
        if (votes[c] == 0.0) touched.push_back(c);
        votes[c] += 1.0;
      };
      for (NodeId u : g.out_neighbors(v)) tally(u);
      for (NodeId u : g.in_neighbors(v)) tally(u);
      if (touched.empty()) continue;

      double max_vote = 0.0;
      for (CommunityId c : touched) max_vote = std::max(max_vote, votes[c]);
      best.clear();
      for (CommunityId c : touched) {
        if (votes[c] == max_vote) best.push_back(c);
      }
      std::sort(best.begin(), best.end());  // touched order is visit order
      const CommunityId pick = best[rng.next_below(best.size())];
      if (pick != label[v]) {
        label[v] = pick;
        changed = true;
      }
      for (CommunityId c : touched) votes[c] = 0.0;
    }
    if (!changed) break;
  }
  return Partition(label);
}

template Partition label_propagation<DiGraph>(const DiGraph&,
                                              const LabelPropagationConfig&);
template Partition label_propagation<EfGraph>(const EfGraph&,
                                              const LabelPropagationConfig&);

}  // namespace lcrb
