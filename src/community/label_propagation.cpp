#include "community/label_propagation.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "util/rng.h"

namespace lcrb {

Partition label_propagation(const DiGraph& g,
                            const LabelPropagationConfig& cfg) {
  const NodeId n = g.num_nodes();
  std::vector<CommunityId> label(n);
  std::iota(label.begin(), label.end(), 0);
  if (n == 0) return Partition(label);

  Rng rng(cfg.seed);
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);

  std::unordered_map<CommunityId, double> votes;
  std::vector<CommunityId> best;

  for (int iter = 0; iter < cfg.max_iters; ++iter) {
    for (NodeId i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
    bool changed = false;
    for (NodeId v : order) {
      votes.clear();
      for (NodeId u : g.out_neighbors(v)) votes[label[u]] += 1.0;
      for (NodeId u : g.in_neighbors(v)) votes[label[u]] += 1.0;
      if (votes.empty()) continue;

      double max_vote = 0.0;
      for (const auto& [c, w] : votes) max_vote = std::max(max_vote, w);
      best.clear();
      for (const auto& [c, w] : votes) {
        if (w == max_vote) best.push_back(c);
      }
      std::sort(best.begin(), best.end());  // determinism across map orders
      const CommunityId pick = best[rng.next_below(best.size())];
      if (pick != label[v]) {
        label[v] = pick;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return Partition(label);
}

}  // namespace lcrb
