// Label propagation community detection (Raghavan et al. 2007): the fast
// baseline we compare against Louvain in the community-quality ablation.
#pragma once

#include <cstdint>

#include "community/partition.h"
#include "graph/graph_view.h"

namespace lcrb {

struct LabelPropagationConfig {
  std::uint64_t seed = 1;
  int max_iters = 100;  ///< safety cap; usually converges in < 10
};

/// Asynchronous label propagation on the undirected view of `g`: each node
/// repeatedly adopts the label carried by the plurality of its neighbors
/// (ties broken uniformly at random). Deterministic in (graph, seed).
template <GraphView G>
Partition label_propagation(const G& g,
                            const LabelPropagationConfig& cfg = {});

}  // namespace lcrb
