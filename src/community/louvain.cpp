#include "community/louvain.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "graph/ef_graph.h"
#include "graph/graph.h"
#include "util/error.h"
#include "util/rng.h"

// Determinism-critical (gated by tools/lcrb_analyze D1-D4): community ids
// feed bridge-end computation and therefore every downstream sigma value, so
// all accumulation below runs over sorted or insertion-ordered containers —
// no unordered_map/unordered_set iteration, no scheduling-dependent floating
// point sums.

namespace lcrb {

namespace {

/// Undirected weighted graph for one aggregation level.
struct LevelGraph {
  // adj[v] = (neighbor, weight); each undirected edge appears in both lists.
  std::vector<std::vector<std::pair<NodeId, double>>> adj;
  // Self-loop contribution to degree (2x the internal weight).
  std::vector<double> self_w;
  double two_m = 0.0;  // sum over all degrees

  NodeId size() const { return static_cast<NodeId>(adj.size()); }

  double degree(NodeId v) const {
    double k = self_w[v];
    for (const auto& [u, w] : adj[v]) k += w;
    return k;
  }
};

template <class G>
LevelGraph from_digraph(const G& g) {
  LevelGraph lg;
  lg.adj.resize(g.num_nodes());
  lg.self_w.assign(g.num_nodes(), 0.0);
  // Merge (u,v) and (v,u) arcs into one undirected weight. Both neighbor
  // lists are sorted, so a two-pointer sweep accumulates each distinct
  // neighbor's weight in ascending order — deterministic, and no hash map.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto outs = g.out_neighbors(u);
    const auto ins = g.in_neighbors(u);
    auto& lst = lg.adj[u];
    std::size_t i = 0, j = 0;
    while (i < outs.size() || j < ins.size()) {
      NodeId v;
      if (j >= ins.size() || (i < outs.size() && outs[i] <= ins[j])) {
        v = outs[i];
      } else {
        v = ins[j];
      }
      double w = 0.0;
      while (i < outs.size() && outs[i] == v) {
        w += 1.0;
        ++i;
      }
      while (j < ins.size() && ins[j] == v) {
        w += 1.0;
        ++j;
      }
      if (v != u) lst.emplace_back(v, w);
    }
  }
  for (NodeId v = 0; v < lg.size(); ++v) lg.two_m += lg.degree(v);
  return lg;
}

/// One level of local moving. Returns the node -> community assignment and
/// whether any move happened.
bool local_move(const LevelGraph& lg, std::vector<CommunityId>& comm,
                const LouvainConfig& cfg, Rng& rng) {
  const NodeId n = lg.size();
  std::vector<double> k(n);
  for (NodeId v = 0; v < n; ++v) k[v] = lg.degree(v);

  std::vector<double> sigma_tot(n, 0.0);
  for (NodeId v = 0; v < n; ++v) sigma_tot[comm[v]] += k[v];

  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  // Fisher-Yates shuffle for visit order.
  for (NodeId i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }

  bool any_move = false;
  std::vector<double> w_to_comm(n, 0.0);
  std::vector<CommunityId> touched;

  for (int sweep = 0; sweep < cfg.max_sweeps; ++sweep) {
    bool moved_this_sweep = false;
    for (NodeId v : order) {
      const CommunityId old_c = comm[v];

      // Weights from v to each adjacent community.
      touched.clear();
      for (const auto& [u, w] : lg.adj[v]) {
        const CommunityId c = comm[u];
        if (w_to_comm[c] == 0.0) touched.push_back(c);
        w_to_comm[c] += w;
      }

      // Remove v from its community.
      sigma_tot[old_c] -= k[v];

      // Best target: maximize k_in(v,c) - sigma_tot[c] * k_v / 2m.
      CommunityId best_c = old_c;
      double best_gain = w_to_comm[old_c] - sigma_tot[old_c] * k[v] / lg.two_m;
      for (CommunityId c : touched) {
        if (c == old_c) continue;
        const double gain = w_to_comm[c] - sigma_tot[c] * k[v] / lg.two_m;
        if (gain > best_gain + cfg.min_gain) {
          best_gain = gain;
          best_c = c;
        }
      }

      sigma_tot[best_c] += k[v];
      if (best_c != old_c) {
        comm[v] = best_c;
        moved_this_sweep = true;
        any_move = true;
      }

      for (CommunityId c : touched) w_to_comm[c] = 0.0;
      w_to_comm[old_c] = 0.0;
    }
    if (!moved_this_sweep) break;
  }
  return any_move;
}

/// Aggregates communities into super-nodes.
LevelGraph aggregate(const LevelGraph& lg, const std::vector<CommunityId>& comm,
                     std::vector<CommunityId>& dense_label) {
  // Densify community labels in first-appearance order. Labels at this level
  // are node ids of the level graph, so a flat remap array suffices.
  dense_label.assign(lg.size(), kInvalidCommunity);
  std::vector<CommunityId> remap(lg.size(), kInvalidCommunity);
  CommunityId next_label = 0;
  for (NodeId v = 0; v < lg.size(); ++v) {
    if (remap[comm[v]] == kInvalidCommunity) remap[comm[v]] = next_label++;
    dense_label[v] = remap[comm[v]];
  }

  LevelGraph out;
  const NodeId k = next_label;
  out.adj.resize(k);
  out.self_w.assign(k, 0.0);

  // Gather cross-community contributions per super-node, then fold runs of
  // equal targets. stable_sort keeps contributions of one target in node-id
  // order, so each fold sums in a fixed order (bit-reproducible).
  std::vector<std::vector<std::pair<NodeId, double>>> acc(k);
  for (NodeId v = 0; v < lg.size(); ++v) {
    const CommunityId cv = dense_label[v];
    out.self_w[cv] += lg.self_w[v];
    for (const auto& [u, w] : lg.adj[v]) {
      const CommunityId cu = dense_label[u];
      if (cu == cv) {
        out.self_w[cv] += w;  // each internal edge visited from both ends
      } else {
        acc[cv].emplace_back(cu, w);
      }
    }
  }
  for (NodeId c = 0; c < k; ++c) {
    auto& raw = acc[c];
    std::stable_sort(raw.begin(), raw.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    auto& lst = out.adj[c];
    for (std::size_t i = 0; i < raw.size();) {
      const NodeId d = raw[i].first;
      double w = 0.0;
      for (; i < raw.size() && raw[i].first == d; ++i) w += raw[i].second;
      lst.emplace_back(d, w);
    }
  }
  out.two_m = lg.two_m;
  return out;
}

}  // namespace

template <GraphView G>
Partition louvain(const G& g, const LouvainConfig& cfg) {
  const NodeId n = g.num_nodes();
  if (n == 0) return Partition{};

  LevelGraph lg = from_digraph(g);
  // node -> community in the original graph, updated level by level.
  std::vector<CommunityId> result(n);
  std::iota(result.begin(), result.end(), 0);

  if (lg.two_m == 0.0) return Partition(result);  // every node alone

  Rng rng(cfg.seed);
  std::vector<CommunityId> comm(n);
  std::iota(comm.begin(), comm.end(), 0);

  for (int level = 0; level < cfg.max_levels; ++level) {
    const bool improved = local_move(lg, comm, cfg, rng);
    if (!improved && level > 0) break;

    std::vector<CommunityId> dense;
    LevelGraph next = aggregate(lg, comm, dense);

    // Push this level's assignment down to original nodes.
    for (NodeId v = 0; v < n; ++v) result[v] = dense[result[v]];

    if (next.size() == lg.size()) break;  // no coarsening -> converged
    lg = std::move(next);
    comm.assign(lg.size(), 0);
    std::iota(comm.begin(), comm.end(), 0);
    if (!improved) break;
  }
  return Partition(result);
}

template Partition louvain<DiGraph>(const DiGraph&, const LouvainConfig&);
template Partition louvain<EfGraph>(const EfGraph&, const LouvainConfig&);

}  // namespace lcrb
