#include "community/louvain.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace lcrb {

namespace {

/// Undirected weighted graph for one aggregation level.
struct LevelGraph {
  // adj[v] = (neighbor, weight); each undirected edge appears in both lists.
  std::vector<std::vector<std::pair<NodeId, double>>> adj;
  // Self-loop contribution to degree (2x the internal weight).
  std::vector<double> self_w;
  double two_m = 0.0;  // sum over all degrees

  NodeId size() const { return static_cast<NodeId>(adj.size()); }

  double degree(NodeId v) const {
    double k = self_w[v];
    for (const auto& [u, w] : adj[v]) k += w;
    return k;
  }
};

LevelGraph from_digraph(const DiGraph& g) {
  LevelGraph lg;
  lg.adj.resize(g.num_nodes());
  lg.self_w.assign(g.num_nodes(), 0.0);
  // Merge (u,v) and (v,u) arcs into one undirected weight.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    std::unordered_map<NodeId, double> acc;
    for (NodeId v : g.out_neighbors(u)) {
      if (v != u) acc[v] += 1.0;
    }
    for (NodeId v : g.in_neighbors(u)) {
      if (v != u) acc[v] += 1.0;
    }
    auto& lst = lg.adj[u];
    lst.reserve(acc.size());
    for (const auto& [v, w] : acc) lst.emplace_back(v, w);
    std::sort(lst.begin(), lst.end());
  }
  for (NodeId v = 0; v < lg.size(); ++v) lg.two_m += lg.degree(v);
  return lg;
}

/// One level of local moving. Returns the node -> community assignment and
/// whether any move happened.
bool local_move(const LevelGraph& lg, std::vector<CommunityId>& comm,
                const LouvainConfig& cfg, Rng& rng) {
  const NodeId n = lg.size();
  std::vector<double> k(n);
  for (NodeId v = 0; v < n; ++v) k[v] = lg.degree(v);

  std::vector<double> sigma_tot(n, 0.0);
  for (NodeId v = 0; v < n; ++v) sigma_tot[comm[v]] += k[v];

  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  // Fisher-Yates shuffle for visit order.
  for (NodeId i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }

  bool any_move = false;
  std::vector<double> w_to_comm(n, 0.0);
  std::vector<CommunityId> touched;

  for (int sweep = 0; sweep < cfg.max_sweeps; ++sweep) {
    bool moved_this_sweep = false;
    for (NodeId v : order) {
      const CommunityId old_c = comm[v];

      // Weights from v to each adjacent community.
      touched.clear();
      for (const auto& [u, w] : lg.adj[v]) {
        const CommunityId c = comm[u];
        if (w_to_comm[c] == 0.0) touched.push_back(c);
        w_to_comm[c] += w;
      }

      // Remove v from its community.
      sigma_tot[old_c] -= k[v];

      // Best target: maximize k_in(v,c) - sigma_tot[c] * k_v / 2m.
      CommunityId best_c = old_c;
      double best_gain = w_to_comm[old_c] - sigma_tot[old_c] * k[v] / lg.two_m;
      for (CommunityId c : touched) {
        if (c == old_c) continue;
        const double gain = w_to_comm[c] - sigma_tot[c] * k[v] / lg.two_m;
        if (gain > best_gain + cfg.min_gain) {
          best_gain = gain;
          best_c = c;
        }
      }

      sigma_tot[best_c] += k[v];
      if (best_c != old_c) {
        comm[v] = best_c;
        moved_this_sweep = true;
        any_move = true;
      }

      for (CommunityId c : touched) w_to_comm[c] = 0.0;
      w_to_comm[old_c] = 0.0;
    }
    if (!moved_this_sweep) break;
  }
  return any_move;
}

/// Aggregates communities into super-nodes.
LevelGraph aggregate(const LevelGraph& lg, const std::vector<CommunityId>& comm,
                     std::vector<CommunityId>& dense_label) {
  // Densify community labels.
  dense_label.assign(lg.size(), kInvalidCommunity);
  std::unordered_map<CommunityId, CommunityId> remap;
  for (NodeId v = 0; v < lg.size(); ++v) {
    auto [it, _] = remap.emplace(comm[v], static_cast<CommunityId>(remap.size()));
    dense_label[v] = it->second;
  }

  LevelGraph out;
  const auto k = static_cast<NodeId>(remap.size());
  out.adj.resize(k);
  out.self_w.assign(k, 0.0);

  std::vector<std::unordered_map<NodeId, double>> acc(k);
  for (NodeId v = 0; v < lg.size(); ++v) {
    const CommunityId cv = dense_label[v];
    out.self_w[cv] += lg.self_w[v];
    for (const auto& [u, w] : lg.adj[v]) {
      const CommunityId cu = dense_label[u];
      if (cu == cv) {
        out.self_w[cv] += w;  // each internal edge visited from both ends
      } else {
        acc[cv][cu] += w;
      }
    }
  }
  for (NodeId c = 0; c < k; ++c) {
    auto& lst = out.adj[c];
    lst.reserve(acc[c].size());
    for (const auto& [d, w] : acc[c]) lst.emplace_back(d, w);
    std::sort(lst.begin(), lst.end());
  }
  out.two_m = lg.two_m;
  return out;
}

}  // namespace

Partition louvain(const DiGraph& g, const LouvainConfig& cfg) {
  const NodeId n = g.num_nodes();
  if (n == 0) return Partition{};

  LevelGraph lg = from_digraph(g);
  // node -> community in the original graph, updated level by level.
  std::vector<CommunityId> result(n);
  std::iota(result.begin(), result.end(), 0);

  if (lg.two_m == 0.0) return Partition(result);  // every node alone

  Rng rng(cfg.seed);
  std::vector<CommunityId> comm(n);
  std::iota(comm.begin(), comm.end(), 0);

  for (int level = 0; level < cfg.max_levels; ++level) {
    const bool improved = local_move(lg, comm, cfg, rng);
    if (!improved && level > 0) break;

    std::vector<CommunityId> dense;
    LevelGraph next = aggregate(lg, comm, dense);

    // Push this level's assignment down to original nodes.
    for (NodeId v = 0; v < n; ++v) result[v] = dense[result[v]];

    if (next.size() == lg.size()) break;  // no coarsening -> converged
    lg = std::move(next);
    comm.assign(lg.size(), 0);
    std::iota(comm.begin(), comm.end(), 0);
    if (!improved) break;
  }
  return Partition(result);
}

}  // namespace lcrb
