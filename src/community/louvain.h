// Louvain community detection (Blondel et al. 2008) — the method the paper
// uses to obtain the community structure before rumor blocking.
#pragma once

#include <cstdint>

#include "community/partition.h"
#include "graph/graph_view.h"

namespace lcrb {

struct LouvainConfig {
  std::uint64_t seed = 1;     ///< node-visit shuffling
  int max_levels = 20;        ///< aggregation rounds
  int max_sweeps = 50;        ///< local-move sweeps per level
  double min_gain = 1e-9;     ///< minimum modularity gain to accept a move
};

/// Runs multi-level Louvain on the undirected weighted view of `g`
/// (arc (u,v) and (v,u) each contribute weight 1 to the undirected edge).
/// Deterministic in (graph, cfg.seed).
template <GraphView G>
Partition louvain(const G& g, const LouvainConfig& cfg = {});

}  // namespace lcrb
