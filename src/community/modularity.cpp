#include "community/modularity.h"

#include "graph/ef_graph.h"
#include "graph/graph.h"
#include "util/error.h"

namespace lcrb {

template <GraphView G>
double modularity(const G& g, const Partition& p) {
  LCRB_REQUIRE(p.num_nodes() == g.num_nodes(),
               "partition does not cover the graph");
  const double m = static_cast<double>(g.num_edges());
  if (m == 0) return 0.0;

  const CommunityId k = p.num_communities();
  std::vector<double> out_sum(k, 0.0), in_sum(k, 0.0);
  double intra = 0.0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const CommunityId cu = p.community_of(u);
    out_sum[cu] += static_cast<double>(g.out_degree(u));
    in_sum[cu] += static_cast<double>(g.in_degree(u));
    for (NodeId v : g.out_neighbors(u)) {
      if (p.community_of(v) == cu) intra += 1.0;
    }
  }

  double expected = 0.0;
  for (CommunityId c = 0; c < k; ++c) expected += out_sum[c] * in_sum[c];
  return intra / m - expected / (m * m);
}

template double modularity<DiGraph>(const DiGraph&, const Partition&);
template double modularity<EfGraph>(const EfGraph&, const Partition&);

}  // namespace lcrb
