// Newman modularity of a partition.
#pragma once

#include "community/partition.h"
#include "graph/graph_view.h"

namespace lcrb {

/// Directed modularity (Leicht–Newman):
///   Q = (1/m) * sum_ij [A_ij - d_out(i) d_in(j) / m] * delta(c_i, c_j).
/// For symmetric graphs this coincides with classic undirected modularity
/// computed on the arc multiset. Returns 0 for edgeless graphs.
template <GraphView G>
double modularity(const G& g, const Partition& p);

}  // namespace lcrb
