#include "community/nmi.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "util/error.h"

namespace lcrb {

double normalized_mutual_information(const Partition& a, const Partition& b) {
  LCRB_REQUIRE(a.num_nodes() == b.num_nodes(),
               "partitions cover different node sets");
  const auto n = static_cast<double>(a.num_nodes());
  if (a.num_nodes() == 0) return 1.0;

  // Joint counts.
  std::unordered_map<std::uint64_t, double> joint;
  std::vector<double> ca(a.num_communities(), 0.0);
  std::vector<double> cb(b.num_communities(), 0.0);
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    const CommunityId x = a.community_of(v);
    const CommunityId y = b.community_of(v);
    joint[(static_cast<std::uint64_t>(x) << 32) | y] += 1.0;
    ca[x] += 1.0;
    cb[y] += 1.0;
  }

  auto entropy = [n](const std::vector<double>& counts) {
    double h = 0.0;
    for (double c : counts) {
      if (c > 0) h -= (c / n) * std::log(c / n);
    }
    return h;
  };
  const double ha = entropy(ca);
  const double hb = entropy(cb);
  if (ha == 0.0 && hb == 0.0) return 1.0;  // both trivial, identical

  // Accumulate in sorted key order: FP addition is not associative, so
  // summing in hash order would make the result depend on the libstdc++
  // bucket layout.
  std::vector<std::uint64_t> keys;
  keys.reserve(joint.size());
  for (const auto& kv : joint) {  // det-ok[D1]: key extraction into a vector that is sorted on the next line — sink is order-insensitive
    keys.push_back(kv.first);
  }
  std::sort(keys.begin(), keys.end());
  double mi = 0.0;
  for (const std::uint64_t key : keys) {
    const double nxy = joint.at(key);
    const auto x = static_cast<CommunityId>(key >> 32);
    const auto y = static_cast<CommunityId>(key & 0xffffffffULL);
    mi += (nxy / n) * std::log(n * nxy / (ca[x] * cb[y]));
  }
  return mi / std::max(ha, hb);
}

}  // namespace lcrb
