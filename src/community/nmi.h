// Normalized mutual information between two partitions (used in tests to
// check that detection recovers planted communities).
#pragma once

#include "community/partition.h"

namespace lcrb {

/// NMI in [0, 1]: 1 means identical partitions (up to label renaming),
/// 0 means independent. Both partitions must cover the same node set.
/// Normalization: I(X;Y) / max(H(X), H(Y)); if both entropies are zero the
/// partitions are the trivial one-community partition and NMI is 1.
double normalized_mutual_information(const Partition& a, const Partition& b);

}  // namespace lcrb
