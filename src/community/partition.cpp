#include "community/partition.h"

#include <unordered_map>

#include "util/error.h"

namespace lcrb {

Partition::Partition(const std::vector<CommunityId>& membership) {
  membership_.resize(membership.size());
  std::unordered_map<CommunityId, CommunityId> remap;
  for (std::size_t v = 0; v < membership.size(); ++v) {
    LCRB_REQUIRE(membership[v] != kInvalidCommunity,
                 "node without community label");
    auto [it, inserted] =
        remap.emplace(membership[v], static_cast<CommunityId>(remap.size()));
    const CommunityId dense = it->second;
    membership_[v] = dense;
    if (inserted) members_.emplace_back();
    members_[dense].push_back(static_cast<NodeId>(v));
  }
}

CommunityId Partition::community_of(NodeId v) const {
  LCRB_REQUIRE(v < membership_.size(), "node id out of range");
  return membership_[v];
}

const std::vector<NodeId>& Partition::members(CommunityId c) const {
  LCRB_REQUIRE(c < members_.size(), "community id out of range");
  return members_[c];
}

CommunityId Partition::closest_to_size(NodeId target) const {
  LCRB_REQUIRE(!members_.empty(), "empty partition");
  CommunityId best = 0;
  auto gap = [&](CommunityId c) {
    const auto s = static_cast<long long>(members_[c].size());
    const auto t = static_cast<long long>(target);
    return s > t ? s - t : t - s;
  };
  for (CommunityId c = 1; c < members_.size(); ++c) {
    if (gap(c) < gap(best)) best = c;
  }
  return best;
}

std::vector<NodeId> Partition::sizes() const {
  std::vector<NodeId> out(members_.size());
  for (CommunityId c = 0; c < members_.size(); ++c) {
    out[c] = static_cast<NodeId>(members_[c].size());
  }
  return out;
}

}  // namespace lcrb
