#include "community/partition.h"

#include <unordered_map>

#include "util/check.h"
#include "util/error.h"

namespace lcrb {

Partition::Partition(const std::vector<CommunityId>& membership) {
  membership_.resize(membership.size());
  std::unordered_map<CommunityId, CommunityId> remap;
  for (std::size_t v = 0; v < membership.size(); ++v) {
    LCRB_REQUIRE(membership[v] != kInvalidCommunity,
                 "node without community label");
    auto [it, inserted] =
        remap.emplace(membership[v], static_cast<CommunityId>(remap.size()));
    const CommunityId dense = it->second;
    membership_[v] = dense;
    if (inserted) members_.emplace_back();
    members_[dense].push_back(static_cast<NodeId>(v));
  }
  LCRB_INVARIANT(validate());
}

void Partition::validate() const {
  std::size_t covered = 0;
  CommunityId first_seen = 0;
  for (CommunityId c = 0; c < members_.size(); ++c) {
    const auto& m = members_[c];
    LCRB_REQUIRE(!m.empty(), "community must not be empty");
    // Labels are assigned in first-appearance order, so the first member of
    // community c is the smallest node not covered by communities < c only
    // in the sense of appearance: its id strictly exceeds none of the later
    // firsts. Checking firsts strictly increase pins that ordering.
    LCRB_REQUIRE(c == 0 || m.front() > first_seen,
                 "labels must be numbered in first-appearance order");
    first_seen = m.front();
    for (std::size_t i = 0; i < m.size(); ++i) {
      LCRB_REQUIRE(i == 0 || m[i - 1] < m[i],
                   "member lists must be strictly ascending");
      LCRB_REQUIRE(m[i] < membership_.size(), "member node out of range");
      LCRB_REQUIRE(membership_[m[i]] == c,
                   "member list disagrees with membership vector");
    }
    covered += m.size();
  }
  // Every membership label is in range and every node was counted exactly
  // once above, so equal totals make the cover disjoint and exhaustive.
  for (CommunityId label : membership_) {
    LCRB_REQUIRE(label < members_.size(), "membership label out of range");
  }
  LCRB_REQUIRE(covered == membership_.size(),
               "communities must cover every node exactly once");
}

CommunityId Partition::community_of(NodeId v) const {
  LCRB_REQUIRE(v < membership_.size(), "node id out of range");
  return membership_[v];
}

const std::vector<NodeId>& Partition::members(CommunityId c) const {
  LCRB_REQUIRE(c < members_.size(), "community id out of range");
  return members_[c];
}

CommunityId Partition::closest_to_size(NodeId target) const {
  LCRB_REQUIRE(!members_.empty(), "empty partition");
  CommunityId best = 0;
  auto gap = [&](CommunityId c) {
    const auto s = static_cast<long long>(members_[c].size());
    const auto t = static_cast<long long>(target);
    return s > t ? s - t : t - s;
  };
  for (CommunityId c = 1; c < members_.size(); ++c) {
    if (gap(c) < gap(best)) best = c;
  }
  return best;
}

std::vector<NodeId> Partition::sizes() const {
  std::vector<NodeId> out(members_.size());
  for (CommunityId c = 0; c < members_.size(); ++c) {
    out[c] = static_cast<NodeId>(members_[c].size());
  }
  return out;
}

}  // namespace lcrb
