// Community partition: the C = {C_1, ..., C_k} of the paper's G(V, E, C).
#pragma once

#include <vector>

#include "util/types.h"

namespace lcrb {

/// Disjoint communities covering all nodes. Labels are normalized to the
/// dense range [0, num_communities) in first-appearance order.
class Partition {
 public:
  Partition() = default;

  /// Builds from a node -> label vector (labels may be sparse; normalized).
  explicit Partition(const std::vector<CommunityId>& membership);

  NodeId num_nodes() const { return static_cast<NodeId>(membership_.size()); }
  CommunityId num_communities() const {
    return static_cast<CommunityId>(members_.size());
  }

  CommunityId community_of(NodeId v) const;

  /// Nodes in community c, ascending.
  const std::vector<NodeId>& members(CommunityId c) const;

  NodeId size_of(CommunityId c) const {
    return static_cast<NodeId>(members(c).size());
  }

  /// Community whose size is nearest to `target` (ties -> smaller id).
  /// Used to pick rumor communities matching the paper's |C| values.
  CommunityId closest_to_size(NodeId target) const;

  /// All community sizes, indexed by community id.
  std::vector<NodeId> sizes() const;

  const std::vector<CommunityId>& membership() const { return membership_; }

  /// Throws lcrb::Error unless the partition is a disjoint cover: every node
  /// carries exactly one dense label, every member list is strictly
  /// ascending and agrees with the membership vector, no community is empty,
  /// and labels are numbered in first-appearance order. O(n). Called
  /// automatically from the constructor under LCRB_ENABLE_INVARIANTS.
  void validate() const;

 private:
  std::vector<CommunityId> membership_;
  std::vector<std::vector<NodeId>> members_;
};

}  // namespace lcrb
