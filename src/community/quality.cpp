#include "community/quality.h"

#include <algorithm>

#include "community/modularity.h"
#include "graph/ef_graph.h"
#include "graph/graph.h"
#include "util/error.h"

namespace lcrb {

template <GraphView G>
double conductance(const G& g, const Partition& p, CommunityId c) {
  LCRB_REQUIRE(p.num_nodes() == g.num_nodes(),
               "partition does not cover the graph");
  LCRB_REQUIRE(c < p.num_communities(), "community out of range");
  if (g.num_edges() == 0) return 0.0;

  EdgeId cut = 0, vol_in = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const bool inside = p.community_of(u) == c;
    if (inside) vol_in += g.out_degree(u);
    for (NodeId v : g.out_neighbors(u)) {
      if (inside != (p.community_of(v) == c)) ++cut;
    }
  }
  // Cut counted from both sides once each (u inside xor v inside covers both
  // orientations across all u).
  const EdgeId vol_out = g.num_edges() - vol_in;
  const EdgeId denom = std::min(vol_in, vol_out);
  if (denom == 0) return 1.0;
  return static_cast<double>(cut) / static_cast<double>(denom);
}

template <GraphView G>
double coverage(const G& g, const Partition& p) {
  LCRB_REQUIRE(p.num_nodes() == g.num_nodes(),
               "partition does not cover the graph");
  if (g.num_edges() == 0) return 0.0;
  EdgeId intra = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.out_neighbors(u)) {
      if (p.community_of(u) == p.community_of(v)) ++intra;
    }
  }
  return static_cast<double>(intra) / static_cast<double>(g.num_edges());
}

template <GraphView G>
PartitionQuality partition_quality(const G& g, const Partition& p) {
  PartitionQuality q;
  q.modularity = modularity(g, p);
  q.coverage = coverage(g, p);
  q.num_communities = p.num_communities();
  if (q.num_communities == 0) return q;

  q.smallest = kInvalidNode;
  double sum_cond = 0.0;
  for (CommunityId c = 0; c < p.num_communities(); ++c) {
    const double cond = conductance(g, p, c);
    sum_cond += cond;
    q.max_conductance = std::max(q.max_conductance, cond);
    q.largest = std::max(q.largest, p.size_of(c));
    q.smallest = std::min(q.smallest, p.size_of(c));
  }
  q.mean_conductance = sum_cond / q.num_communities;
  return q;
}

#define LCRB_INSTANTIATE_QUALITY(G)                                          \
  template double conductance<G>(const G&, const Partition&, CommunityId);  \
  template double coverage<G>(const G&, const Partition&);                  \
  template PartitionQuality partition_quality<G>(const G&, const Partition&);

LCRB_INSTANTIATE_QUALITY(DiGraph)
LCRB_INSTANTIATE_QUALITY(EfGraph)

#undef LCRB_INSTANTIATE_QUALITY

}  // namespace lcrb
