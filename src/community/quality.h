// Partition quality metrics beyond modularity: used by the community
// ablation and by callers choosing a rumor community.
#pragma once

#include "community/partition.h"
#include "graph/graph_view.h"

namespace lcrb {

/// Conductance of one community: cut(C, V\C) / min(vol(C), vol(V\C)),
/// volumes counted over arcs (out-degree). Lower is better-separated.
/// Returns 0 for an edgeless graph and 1 when the community has no volume.
template <GraphView G>
double conductance(const G& g, const Partition& p, CommunityId c);

/// Fraction of arcs whose endpoints share a community ("coverage").
template <GraphView G>
double coverage(const G& g, const Partition& p);

/// Summary used in reports.
struct PartitionQuality {
  double modularity = 0.0;
  double coverage = 0.0;
  double mean_conductance = 0.0;  ///< unweighted mean over communities
  double max_conductance = 0.0;
  NodeId num_communities = 0;
  NodeId largest = 0;
  NodeId smallest = 0;
};

template <GraphView G>
PartitionQuality partition_quality(const G& g, const Partition& p);

}  // namespace lcrb
