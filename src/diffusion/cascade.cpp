#include "diffusion/cascade.h"

#include <algorithm>

#include "util/error.h"

namespace lcrb {

void validate_seeds(const DiGraph& g, const SeedSets& seeds) {
  auto check = [&](const std::vector<NodeId>& s, const char* name) {
    for (NodeId v : s) {
      LCRB_REQUIRE(v < g.num_nodes(),
                   std::string(name) + " seed out of range");
    }
    std::vector<NodeId> sorted = s;
    std::sort(sorted.begin(), sorted.end());
    LCRB_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                     sorted.end(),
                 std::string(name) + " seeds contain duplicates");
    return sorted;
  };
  const auto r = check(seeds.rumors, "rumor");
  const auto p = check(seeds.protectors, "protector");
  std::vector<NodeId> both;
  std::set_intersection(r.begin(), r.end(), p.begin(), p.end(),
                        std::back_inserter(both));
  LCRB_REQUIRE(both.empty(), "rumor and protector seed sets must be disjoint");
}

std::size_t DiffusionResult::infected_count() const {
  return static_cast<std::size_t>(
      std::count(state.begin(), state.end(), NodeState::kInfected));
}

std::size_t DiffusionResult::protected_count() const {
  return static_cast<std::size_t>(
      std::count(state.begin(), state.end(), NodeState::kProtected));
}

std::size_t DiffusionResult::cumulative_infected_at(std::uint32_t hop) const {
  std::size_t total = 0;
  const std::uint32_t last =
      std::min<std::uint32_t>(hop, newly_infected.empty()
                                       ? 0
                                       : static_cast<std::uint32_t>(
                                             newly_infected.size() - 1));
  for (std::uint32_t t = 0; t <= last && t < newly_infected.size(); ++t) {
    total += newly_infected[t];
  }
  return total;
}

std::size_t DiffusionResult::cumulative_protected_at(std::uint32_t hop) const {
  std::size_t total = 0;
  const std::uint32_t last =
      std::min<std::uint32_t>(hop, newly_protected.empty()
                                       ? 0
                                       : static_cast<std::uint32_t>(
                                             newly_protected.size() - 1));
  for (std::uint32_t t = 0; t <= last && t < newly_protected.size(); ++t) {
    total += newly_protected[t];
  }
  return total;
}

double DiffusionResult::saved_fraction(std::span<const NodeId> targets) const {
  if (targets.empty()) return 1.0;
  return static_cast<double>(saved_count(targets)) /
         static_cast<double>(targets.size());
}

std::size_t DiffusionResult::saved_count(std::span<const NodeId> targets) const {
  std::size_t saved = 0;
  for (NodeId v : targets) {
    if (state.at(v) != NodeState::kInfected) ++saved;
  }
  return saved;
}

}  // namespace lcrb
