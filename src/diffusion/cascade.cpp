#include "diffusion/cascade.h"

#include <algorithm>
#include <cctype>

#include "graph/ef_graph.h"
#include "graph/graph.h"
#include "util/check.h"
#include "util/error.h"

namespace lcrb {

namespace {

bool iequals_ascii(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string to_string(DiffusionModel m) {
  switch (m) {
    case DiffusionModel::kOpoao: return "OPOAO";
    case DiffusionModel::kDoam: return "DOAM";
    case DiffusionModel::kIc: return "IC";
    case DiffusionModel::kLt: return "LT";
    case DiffusionModel::kWc: return "WC";
  }
  return "unknown";
}

std::string to_string(CascadeRole r) {
  switch (r) {
    case CascadeRole::kProtector: return "protector";
    case CascadeRole::kRumor: return "rumor";
  }
  return "unknown";
}

std::string to_string(CascadePriority p) {
  switch (p) {
    case CascadePriority::kFixedOrder: return "fixed";
    case CascadePriority::kLowestId: return "lowest";
    case CascadePriority::kRoundRobin: return "roundrobin";
  }
  return "unknown";
}

CascadePriority cascade_priority_from_string(const std::string& name) {
  for (const CascadePriority p :
       {CascadePriority::kFixedOrder, CascadePriority::kLowestId,
        CascadePriority::kRoundRobin}) {
    if (iequals_ascii(to_string(p), name)) return p;
  }
  throw Error("unknown cascade priority '" + name +
              "' (fixed|lowest|roundrobin)");
}

namespace {

std::vector<NodeId> role_union(const SeedSets& s, CascadeRole role) {
  std::vector<NodeId> out;
  for (std::size_t k = 0; k < s.num_cascades(); ++k) {
    if (s.role_of(k) != role) continue;
    const std::vector<NodeId>& seeds = s.seeds_of(k);
    out.insert(out.end(), seeds.begin(), seeds.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

std::vector<NodeId> SeedSets::rumor_role_union() const {
  return role_union(*this, CascadeRole::kRumor);
}

std::vector<NodeId> SeedSets::protector_role_union() const {
  return role_union(*this, CascadeRole::kProtector);
}

bool SeedSets::role_separable() const {
  const std::size_t kk = num_cascades();
  // Round-robin rotates the start position, so any rumor-role cascade
  // eventually moves ahead of a protector-role one (unless one role is
  // absent or K == 1 effectively).
  if (priority == CascadePriority::kRoundRobin) {
    bool has_p = false, has_r = false;
    for (std::size_t k = 0; k < kk; ++k) {
      if (seeds_of(k).empty()) continue;
      (role_of(k) == CascadeRole::kProtector ? has_p : has_r) = true;
    }
    return !(has_p && has_r);
  }
  // Fixed / lowest-id: check the one static order.
  bool seen_rumor = false;
  for (std::size_t i = 0; i < kk; ++i) {
    const std::size_t k =
        (priority == CascadePriority::kFixedOrder && !order.empty())
            ? order[i]
            : i;
    if (seeds_of(k).empty()) continue;  // an empty cascade never claims
    if (role_of(k) == CascadeRole::kRumor) {
      seen_rumor = true;
    } else if (seen_rumor) {
      return false;
    }
  }
  return true;
}

template <GraphView G>
void validate_seeds(const G& g, const SeedSets& seeds) {
  const std::size_t kk = seeds.num_cascades();
  LCRB_REQUIRE(kk <= kMaxCascades, "too many cascades");
  auto check = [&](const std::vector<NodeId>& s, const std::string& name) {
    for (NodeId v : s) {
      LCRB_REQUIRE(v < g.num_nodes(), name + " seed out of range");
    }
    std::vector<NodeId> sorted = s;
    std::sort(sorted.begin(), sorted.end());
    LCRB_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                     sorted.end(),
                 name + " seeds contain duplicates");
    return sorted;
  };
  const auto r = check(seeds.rumors, "rumor");
  const auto p = check(seeds.protectors, "protector");
  std::vector<NodeId> both;
  std::set_intersection(r.begin(), r.end(), p.begin(), p.end(),
                        std::back_inserter(both));
  LCRB_REQUIRE(both.empty(), "rumor and protector seed sets must be disjoint");

  if (!seeds.extras.empty()) {
    // Pairwise disjointness across all K cascades: any node appearing twice
    // in the merged multiset belongs to two cascades (per-cascade dups are
    // already excluded above).
    std::vector<NodeId> all;
    all.insert(all.end(), r.begin(), r.end());
    all.insert(all.end(), p.begin(), p.end());
    for (std::size_t k = 2; k < kk; ++k) {
      const auto e =
          check(seeds.seeds_of(k), "cascade " + std::to_string(k));
      all.insert(all.end(), e.begin(), e.end());
    }
    std::sort(all.begin(), all.end());
    LCRB_REQUIRE(std::adjacent_find(all.begin(), all.end()) == all.end(),
                 "cascade seed sets must be pairwise disjoint");
  }

  if (!seeds.order.empty()) {
    LCRB_REQUIRE(seeds.order.size() == kk,
                 "cascade order must cover every cascade");
    std::vector<char> seen(kk, 0);
    for (std::uint8_t k : seeds.order) {
      LCRB_REQUIRE(k < kk && !seen[k],
                   "cascade order must be a permutation of the cascade ids");
      seen[k] = 1;
    }
  }
}

SeedSets make_seed_sets(std::span<const std::vector<NodeId>> rumor_groups,
                        std::span<const std::vector<NodeId>> protector_groups,
                        CascadePriority priority) {
  SeedSets s;
  s.priority = priority;

  // Same-role dedup: keep the first group that claims a node.
  std::vector<NodeId> seen_r, seen_p;
  auto dedup = [](std::vector<NodeId>& seen, const std::vector<NodeId>& group) {
    std::vector<NodeId> out;
    for (NodeId v : group) {
      if (std::find(seen.begin(), seen.end(), v) == seen.end()) {
        seen.push_back(v);
        out.push_back(v);
      }
    }
    return out;
  };

  if (!protector_groups.empty()) {
    s.protectors = dedup(seen_p, protector_groups[0]);
  }
  if (!rumor_groups.empty()) {
    s.rumors = dedup(seen_r, rumor_groups[0]);
  }
  const std::size_t np = protector_groups.size() > 1
                             ? protector_groups.size() - 1
                             : 0;
  for (std::size_t i = 1; i < protector_groups.size(); ++i) {
    s.extras.push_back(
        {CascadeRole::kProtector, dedup(seen_p, protector_groups[i])});
  }
  for (std::size_t i = 1; i < rumor_groups.size(); ++i) {
    s.extras.push_back({CascadeRole::kRumor, dedup(seen_r, rumor_groups[i])});
  }

  if (priority == CascadePriority::kFixedOrder && !s.extras.empty()) {
    // Role-separable order: cascade 0, protector-role extras, cascade 1,
    // rumor-role extras.
    s.order.push_back(0);
    for (std::size_t i = 0; i < np; ++i) {
      s.order.push_back(static_cast<std::uint8_t>(2 + i));
    }
    s.order.push_back(1);
    for (std::size_t i = 2 + np; i < s.num_cascades(); ++i) {
      s.order.push_back(static_cast<std::uint8_t>(i));
    }
  }
  return s;
}

std::size_t DiffusionResult::infected_count() const {
  return static_cast<std::size_t>(
      std::count(state.begin(), state.end(), NodeState::kInfected));
}

std::size_t DiffusionResult::protected_count() const {
  return static_cast<std::size_t>(
      std::count(state.begin(), state.end(), NodeState::kProtected));
}

std::size_t DiffusionResult::cascade_count(std::uint8_t k) const {
  return static_cast<std::size_t>(
      std::count(cascade.begin(), cascade.end(), k));
}

namespace {

std::size_t cumulative_at(const std::vector<std::uint32_t>& series,
                          std::uint32_t hop) {
  std::size_t total = 0;
  const std::uint32_t last = std::min<std::uint32_t>(
      hop, series.empty() ? 0 : static_cast<std::uint32_t>(series.size() - 1));
  for (std::uint32_t t = 0; t <= last && t < series.size(); ++t) {
    total += series[t];
  }
  return total;
}

}  // namespace

std::size_t DiffusionResult::cumulative_infected_at(std::uint32_t hop) const {
  return cumulative_at(newly_infected, hop);
}

std::size_t DiffusionResult::cumulative_protected_at(std::uint32_t hop) const {
  return cumulative_at(newly_protected, hop);
}

std::size_t DiffusionResult::cumulative_cascade_at(std::uint8_t k,
                                                   std::uint32_t hop) const {
  LCRB_REQUIRE(k < newly_by_cascade.size(), "cascade id out of range");
  return cumulative_at(newly_by_cascade[k], hop);
}

double DiffusionResult::saved_fraction(std::span<const NodeId> targets) const {
  if (targets.empty()) return 1.0;
  return static_cast<double>(saved_count(targets)) /
         static_cast<double>(targets.size());
}

std::size_t DiffusionResult::saved_count(std::span<const NodeId> targets) const {
  std::size_t saved = 0;
  for (NodeId v : targets) {
    if (state.at(v) != NodeState::kInfected) ++saved;
  }
  return saved;
}

template <GraphView G>
void DiffusionResult::validate(const G& g, const SeedSets& seeds) const {
  const std::size_t n = g.num_nodes();
  const std::size_t kk = seeds.num_cascades();
  LCRB_REQUIRE(state.size() == n, "state must cover every node");
  LCRB_REQUIRE(activation_step.size() == n,
               "activation_step must cover every node");
  LCRB_REQUIRE(newly_infected.size() == newly_protected.size(),
               "per-step series must have equal length");
  LCRB_REQUIRE(!newly_infected.empty(), "series must include the seed step");
  const bool with_cascades = !cascade.empty();
  if (with_cascades) {
    LCRB_REQUIRE(cascade.size() == n, "cascade must cover every node");
    LCRB_REQUIRE(newly_by_cascade.size() == kk,
                 "per-cascade series must cover every cascade");
    for (const auto& series : newly_by_cascade) {
      LCRB_REQUIRE(series.size() == newly_infected.size(),
                   "per-cascade series must match the role series length");
    }
  }

  // seed_cascade[v]: 1 + winning cascade id when v is a seed, 0 otherwise.
  std::vector<std::uint32_t> seed_cascade(n, 0);
  for (std::size_t k = 0; k < kk; ++k) {
    for (NodeId v : seeds.seeds_of(k)) {
      seed_cascade[v] = static_cast<std::uint32_t>(k) + 1;
    }
  }

  std::uint32_t last_step = 0;
  std::vector<std::uint32_t> infected_at(newly_infected.size(), 0);
  std::vector<std::uint32_t> protected_at(newly_protected.size(), 0);
  std::vector<std::vector<std::uint32_t>> cascade_at;
  if (with_cascades) {
    cascade_at.assign(kk,
                      std::vector<std::uint32_t>(newly_infected.size(), 0));
  }
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t t = activation_step[v];
    if (state[v] == NodeState::kInactive) {
      LCRB_REQUIRE(t == kUnreached, "inactive node with an activation step");
      LCRB_REQUIRE(seed_cascade[v] == 0, "seed node left inactive");
      if (with_cascades) {
        LCRB_REQUIRE(cascade[v] == kNoCascade,
                     "inactive node with a winning cascade");
      }
      continue;
    }
    LCRB_REQUIRE(t != kUnreached, "active node without an activation step");
    LCRB_REQUIRE(t < newly_infected.size(),
                 "activation step beyond the recorded series");
    if (with_cascades) {
      LCRB_REQUIRE(cascade[v] < kk, "winning cascade id out of range");
      const CascadeRole role = seeds.role_of(cascade[v]);
      LCRB_REQUIRE(state[v] == (role == CascadeRole::kProtector
                                    ? NodeState::kProtected
                                    : NodeState::kInfected),
                   "state disagrees with the winning cascade's role");
      cascade_at[cascade[v]][t] += 1;
    }
    if (t == 0) {
      LCRB_REQUIRE(seed_cascade[v] != 0, "non-seed node activated at step 0");
      const std::size_t k = seed_cascade[v] - 1;
      LCRB_REQUIRE(state[v] == (seeds.role_of(k) == CascadeRole::kProtector
                                    ? NodeState::kProtected
                                    : NodeState::kInfected),
                   "seed activated with the wrong color");
      if (with_cascades) {
        LCRB_REQUIRE(cascade[v] == k, "seed won by the wrong cascade");
      }
    } else {
      LCRB_REQUIRE(seed_cascade[v] == 0, "seed re-activated after step 0");
      // Progressive propagation: some same-cascade (or, without cascade
      // attribution, same-colored) in-neighbor was active strictly before
      // v's activation.
      bool has_source = false;
      for (NodeId u : g.in_neighbors(v)) {
        const bool same = with_cascades ? cascade[u] == cascade[v]
                                        : state[u] == state[v];
        if (same && activation_step[u] < t) {
          has_source = true;
          break;
        }
      }
      LCRB_REQUIRE(has_source,
                   "activation without an earlier same-cascade in-neighbor");
      last_step = std::max(last_step, t);
    }
    (state[v] == NodeState::kInfected ? infected_at : protected_at)[t] += 1;
  }
  LCRB_REQUIRE(steps == last_step, "steps must be the last activating step");
  for (std::size_t t = 0; t < newly_infected.size(); ++t) {
    LCRB_REQUIRE(newly_infected[t] == infected_at[t],
                 "newly_infected series disagrees with activation steps");
    LCRB_REQUIRE(newly_protected[t] == protected_at[t],
                 "newly_protected series disagrees with activation steps");
    if (with_cascades) {
      for (std::size_t k = 0; k < kk; ++k) {
        LCRB_REQUIRE(newly_by_cascade[k][t] == cascade_at[k][t],
                     "per-cascade series disagrees with activation steps");
      }
    }
  }
}

template void validate_seeds<DiGraph>(const DiGraph&, const SeedSets&);
template void validate_seeds<EfGraph>(const EfGraph&, const SeedSets&);
template void DiffusionResult::validate<DiGraph>(const DiGraph&,
                                                 const SeedSets&) const;
template void DiffusionResult::validate<EfGraph>(const EfGraph&,
                                                 const SeedSets&) const;

}  // namespace lcrb
