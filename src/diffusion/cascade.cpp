#include "diffusion/cascade.h"

#include <algorithm>

#include "util/check.h"
#include "util/error.h"

namespace lcrb {

std::string to_string(DiffusionModel m) {
  switch (m) {
    case DiffusionModel::kOpoao: return "OPOAO";
    case DiffusionModel::kDoam: return "DOAM";
    case DiffusionModel::kIc: return "IC";
    case DiffusionModel::kLt: return "LT";
    case DiffusionModel::kWc: return "WC";
  }
  return "unknown";
}

void validate_seeds(const DiGraph& g, const SeedSets& seeds) {
  auto check = [&](const std::vector<NodeId>& s, const char* name) {
    for (NodeId v : s) {
      LCRB_REQUIRE(v < g.num_nodes(),
                   std::string(name) + " seed out of range");
    }
    std::vector<NodeId> sorted = s;
    std::sort(sorted.begin(), sorted.end());
    LCRB_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                     sorted.end(),
                 std::string(name) + " seeds contain duplicates");
    return sorted;
  };
  const auto r = check(seeds.rumors, "rumor");
  const auto p = check(seeds.protectors, "protector");
  std::vector<NodeId> both;
  std::set_intersection(r.begin(), r.end(), p.begin(), p.end(),
                        std::back_inserter(both));
  LCRB_REQUIRE(both.empty(), "rumor and protector seed sets must be disjoint");
}

std::size_t DiffusionResult::infected_count() const {
  return static_cast<std::size_t>(
      std::count(state.begin(), state.end(), NodeState::kInfected));
}

std::size_t DiffusionResult::protected_count() const {
  return static_cast<std::size_t>(
      std::count(state.begin(), state.end(), NodeState::kProtected));
}

std::size_t DiffusionResult::cumulative_infected_at(std::uint32_t hop) const {
  std::size_t total = 0;
  const std::uint32_t last =
      std::min<std::uint32_t>(hop, newly_infected.empty()
                                       ? 0
                                       : static_cast<std::uint32_t>(
                                             newly_infected.size() - 1));
  for (std::uint32_t t = 0; t <= last && t < newly_infected.size(); ++t) {
    total += newly_infected[t];
  }
  return total;
}

std::size_t DiffusionResult::cumulative_protected_at(std::uint32_t hop) const {
  std::size_t total = 0;
  const std::uint32_t last =
      std::min<std::uint32_t>(hop, newly_protected.empty()
                                       ? 0
                                       : static_cast<std::uint32_t>(
                                             newly_protected.size() - 1));
  for (std::uint32_t t = 0; t <= last && t < newly_protected.size(); ++t) {
    total += newly_protected[t];
  }
  return total;
}

double DiffusionResult::saved_fraction(std::span<const NodeId> targets) const {
  if (targets.empty()) return 1.0;
  return static_cast<double>(saved_count(targets)) /
         static_cast<double>(targets.size());
}

std::size_t DiffusionResult::saved_count(std::span<const NodeId> targets) const {
  std::size_t saved = 0;
  for (NodeId v : targets) {
    if (state.at(v) != NodeState::kInfected) ++saved;
  }
  return saved;
}

void DiffusionResult::validate(const DiGraph& g, const SeedSets& seeds) const {
  const std::size_t n = g.num_nodes();
  LCRB_REQUIRE(state.size() == n, "state must cover every node");
  LCRB_REQUIRE(activation_step.size() == n,
               "activation_step must cover every node");
  LCRB_REQUIRE(newly_infected.size() == newly_protected.size(),
               "per-step series must have equal length");
  LCRB_REQUIRE(!newly_infected.empty(), "series must include the seed step");

  std::vector<char> is_seed(n, 0);
  for (NodeId v : seeds.protectors) is_seed[v] = 1;
  for (NodeId v : seeds.rumors) is_seed[v] = 2;

  std::uint32_t last_step = 0;
  std::vector<std::uint32_t> infected_at(newly_infected.size(), 0);
  std::vector<std::uint32_t> protected_at(newly_protected.size(), 0);
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t t = activation_step[v];
    if (state[v] == NodeState::kInactive) {
      LCRB_REQUIRE(t == kUnreached, "inactive node with an activation step");
      LCRB_REQUIRE(is_seed[v] == 0, "seed node left inactive");
      continue;
    }
    LCRB_REQUIRE(t != kUnreached, "active node without an activation step");
    LCRB_REQUIRE(t < newly_infected.size(),
                 "activation step beyond the recorded series");
    if (t == 0) {
      LCRB_REQUIRE(is_seed[v] != 0, "non-seed node activated at step 0");
      LCRB_REQUIRE(state[v] == (is_seed[v] == 1 ? NodeState::kProtected
                                                : NodeState::kInfected),
                   "seed activated with the wrong color");
    } else {
      LCRB_REQUIRE(is_seed[v] == 0, "seed re-activated after step 0");
      // Progressive propagation: some same-colored in-neighbor was active
      // strictly before v's activation (every model hands a node its color
      // from an already-active node of that color).
      bool has_source = false;
      for (NodeId u : g.in_neighbors(v)) {
        if (state[u] == state[v] && activation_step[u] < t) {
          has_source = true;
          break;
        }
      }
      LCRB_REQUIRE(has_source,
                   "activation without an earlier same-colored in-neighbor");
      last_step = std::max(last_step, t);
    }
    (state[v] == NodeState::kInfected ? infected_at : protected_at)[t] += 1;
  }
  LCRB_REQUIRE(steps == last_step, "steps must be the last activating step");
  for (std::size_t t = 0; t < newly_infected.size(); ++t) {
    LCRB_REQUIRE(newly_infected[t] == infected_at[t],
                 "newly_infected series disagrees with activation steps");
    LCRB_REQUIRE(newly_protected[t] == protected_at[t],
                 "newly_protected series disagrees with activation steps");
  }
}

}  // namespace lcrb
