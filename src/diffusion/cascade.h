// Shared vocabulary for the competitive-cascade diffusion simulators.
//
// The paper's formulation (§III) has exactly two cascades — rumor R vs
// protector P — and three rules every model shares:
//   1. all cascades start at step 0,
//   2. on simultaneous arrival the higher-priority cascade wins the node
//      (for the paper's two cascades: P beats R),
//   3. states are progressive (no node ever changes color once activated).
//
// The kernel generalizes this to K cascades. Every cascade has a ROLE —
// protector (positive) or rumor (negative) — and an id. Cascade 0 is the
// paper's protector set, cascade 1 the paper's rumor set; `extras` appends
// cascades 2.. for the multi-rumor / multi-protector workloads (Tong et al.
// arXiv:1711.07412, He et al. arXiv:1110.4723). NodeState stays two-colored:
// a node won by any protector-role cascade is kProtected, by any rumor-role
// cascade kInfected; DiffusionResult::cascade records which cascade won.
// With no extras and the default priority the kernel is byte-identical to
// the historical two-cascade machine (pinned by the golden-hash suite).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph_view.h"
#include "util/types.h"

namespace lcrb {

enum class NodeState : std::uint8_t { kInactive = 0, kProtected = 1, kInfected = 2 };

/// The diffusion models the traits layer implements (model_traits.h). Each
/// value names one traits file in src/diffusion/; dispatch_model() maps the
/// runtime value onto the compile-time traits.
enum class DiffusionModel : std::uint8_t { kOpoao, kDoam, kIc, kLt, kWc };

std::string to_string(DiffusionModel m);

/// Which side a cascade fights for. The role decides the NodeState a win
/// maps to, and every role-aggregated quantity (sigma, saved fractions,
/// newly_* series) downstream.
enum class CascadeRole : std::uint8_t { kProtector = 0, kRumor = 1 };

std::string to_string(CascadeRole r);

/// Tie-break policy when several cascades could claim a node in the same
/// step. Within one step cascades move in "priority order"; earlier wins.
///   kFixedOrder  — SeedSets::order when non-empty, else ascending cascade
///                  id. The default; with no extras this is exactly the
///                  paper's P-before-R rule.
///   kLowestId    — ascending cascade id, always (ignores SeedSets::order).
///   kRoundRobin  — the ascending-id order rotated by one position every
///                  step: step t starts from cascade (t mod K).
enum class CascadePriority : std::uint8_t { kFixedOrder, kLowestId, kRoundRobin };

std::string to_string(CascadePriority p);
/// Inverse of to_string (case-insensitive: "fixed"/"FixedOrder" etc. work);
/// throws lcrb::Error on unknown names.
CascadePriority cascade_priority_from_string(const std::string& name);

/// One additional cascade beyond the paper's two.
struct ExtraCascade {
  CascadeRole role = CascadeRole::kRumor;
  std::vector<NodeId> seeds;

  friend bool operator==(const ExtraCascade&, const ExtraCascade&) = default;
};

/// Sentinel in DiffusionResult::cascade for a node no cascade won.
inline constexpr std::uint8_t kNoCascade = 0xFF;

/// Hard cap on K (cascade ids fit a uint8_t and kNoCascade is reserved).
inline constexpr std::size_t kMaxCascades = 0xFE;

/// The seed sets of every cascade. The first two members keep their
/// historical meaning and aggregate-init shape — `SeedSets{{r...}, {p...}}`
/// still reads "rumors, protectors" everywhere — and map onto cascade ids as
///   cascade 0 = protectors (role kProtector)
///   cascade 1 = rumors     (role kRumor)
///   cascade 2+ = extras[i - 2], in declaration order.
struct SeedSets {
  std::vector<NodeId> rumors;
  std::vector<NodeId> protectors;

  /// Cascades 2.. for the K-way workloads; empty = the paper's two-cascade
  /// problem.
  std::vector<ExtraCascade> extras{};
  /// Simultaneous-arrival policy (see CascadePriority).
  CascadePriority priority = CascadePriority::kFixedOrder;
  /// Explicit priority order over cascade ids for kFixedOrder; empty =
  /// ascending id. Must be a permutation of 0..num_cascades()-1 when set.
  std::vector<std::uint8_t> order{};

  std::size_t num_cascades() const { return 2 + extras.size(); }

  CascadeRole role_of(std::size_t k) const {
    if (k == 0) return CascadeRole::kProtector;
    if (k == 1) return CascadeRole::kRumor;
    return extras[k - 2].role;
  }

  const std::vector<NodeId>& seeds_of(std::size_t k) const {
    if (k == 0) return protectors;
    if (k == 1) return rumors;
    return extras[k - 2].seeds;
  }

  /// All rumor-role seeds, ascending and deduplicated — what the sigma /
  /// RIS engines consume under the role-separable collapse (see
  /// docs/algorithms.md "K cascades").
  std::vector<NodeId> rumor_role_union() const;
  /// All protector-role seeds, ascending.
  std::vector<NodeId> protector_role_union() const;

  /// True when every protector-role cascade precedes every rumor-role
  /// cascade in the priority order of EVERY step. Exactly then the K-way
  /// outcome at role level equals the two-cascade run on the role unions,
  /// which is what lets the realization-cache and RIS engines serve K-way
  /// queries. Round-robin rotation breaks this whenever both roles have a
  /// cascade and K > 1.
  bool role_separable() const;

  friend bool operator==(const SeedSets&, const SeedSets&) = default;
};

/// Throws lcrb::Error unless every cascade's seeds are in range and
/// duplicate-free, the cascades are pairwise disjoint, K <= kMaxCascades,
/// and `order` (when non-empty) is a permutation of the cascade ids.
template <GraphView G>
void validate_seeds(const G& g, const SeedSets& seeds);

/// Assembles a K-way SeedSets from per-campaign seed groups:
/// protector_groups[0] -> cascade 0, rumor_groups[0] -> cascade 1, the
/// remaining groups -> extras with protector-role campaigns first. A node
/// claimed by several same-role groups stays with the lowest-numbered one
/// (uncoordinated campaigns may collide); cross-role overlap is NOT
/// resolved — validate_seeds rejects it. Under kFixedOrder with extras an
/// explicit role-separable order (every protector-role cascade before every
/// rumor-role one) is set, so the engines' role collapse stays exact.
SeedSets make_seed_sets(std::span<const std::vector<NodeId>> rumor_groups,
                        std::span<const std::vector<NodeId>> protector_groups,
                        CascadePriority priority = CascadePriority::kFixedOrder);

/// Outcome of one simulated diffusion.
struct DiffusionResult {
  std::vector<NodeState> state;            ///< final state per node
  std::vector<std::uint32_t> activation_step;  ///< kUnreached if inactive
  std::vector<std::uint32_t> newly_infected;   ///< per step (index 0 = seeds)
  std::vector<std::uint32_t> newly_protected;  ///< per step (index 0 = seeds)
  std::uint32_t steps = 0;                 ///< last step that activated a node
  /// Winning cascade id per node (kNoCascade if inactive). Filled by
  /// run_cascade; role(cascade[v]) always agrees with state[v].
  std::vector<std::uint8_t> cascade;
  /// Per-cascade activation series, same length as newly_infected:
  /// newly_by_cascade[k][t] nodes were won by cascade k at step t. The
  /// role-aggregated newly_* series are the per-role sums of these.
  std::vector<std::vector<std::uint32_t>> newly_by_cascade;

  std::size_t infected_count() const;
  std::size_t protected_count() const;
  /// Number of nodes cascade k won.
  std::size_t cascade_count(std::uint8_t k) const;

  /// Cumulative number of infected nodes at the end of `hop` (hops beyond
  /// the recorded series return the final count — the curve has flattened).
  std::size_t cumulative_infected_at(std::uint32_t hop) const;
  std::size_t cumulative_protected_at(std::uint32_t hop) const;
  std::size_t cumulative_cascade_at(std::uint8_t k, std::uint32_t hop) const;

  /// Fraction of `targets` that finished uninfected (protected or inactive).
  /// This is the paper's notion of a bridge end being "protected".
  double saved_fraction(std::span<const NodeId> targets) const;
  std::size_t saved_count(std::span<const NodeId> targets) const;

  /// Throws lcrb::Error unless this result is a well-formed outcome of the
  /// shared K-cascade state machine on (g, seeds): state/activation_step
  /// agree everywhere, step 0 activates exactly the seeds with their
  /// cascades, the newly_* and per-cascade series match the per-step
  /// activation counts, `steps` is the last activating step, and every
  /// non-seed activation has a same-cascade in-neighbor activated strictly
  /// earlier (progressive propagation — holds for OPOAO, DOAM, IC, WC and
  /// LT alike). The cascade-level checks are skipped when `cascade` is
  /// empty (results assembled outside run_cascade). O(n + m). Called
  /// automatically at the end of every simulate_* under
  /// LCRB_ENABLE_INVARIANTS.
  template <GraphView G>
  void validate(const G& g, const SeedSets& seeds) const;
};

}  // namespace lcrb
