// Shared vocabulary for the two-cascade (rumor R vs protector P) diffusion
// simulators. All models share three rules from the paper (§III):
//   1. both cascades start at step 0,
//   2. on simultaneous arrival P wins the node,
//   3. states are progressive (no node ever changes color once activated).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/types.h"

namespace lcrb {

enum class NodeState : std::uint8_t { kInactive = 0, kProtected = 1, kInfected = 2 };

/// The diffusion models the traits layer implements (model_traits.h). Each
/// value names one traits file in src/diffusion/; dispatch_model() maps the
/// runtime value onto the compile-time traits.
enum class DiffusionModel : std::uint8_t { kOpoao, kDoam, kIc, kLt, kWc };

std::string to_string(DiffusionModel m);

/// The two disjoint seed sets S_R (rumor originators) and S_P (protector
/// originators).
struct SeedSets {
  std::vector<NodeId> rumors;
  std::vector<NodeId> protectors;
};

/// Throws lcrb::Error unless both sets are in range, duplicate-free, and
/// disjoint (the models require disjoint initial sets).
void validate_seeds(const DiGraph& g, const SeedSets& seeds);

/// Outcome of one simulated diffusion.
struct DiffusionResult {
  std::vector<NodeState> state;            ///< final state per node
  std::vector<std::uint32_t> activation_step;  ///< kUnreached if inactive
  std::vector<std::uint32_t> newly_infected;   ///< per step (index 0 = seeds)
  std::vector<std::uint32_t> newly_protected;  ///< per step (index 0 = seeds)
  std::uint32_t steps = 0;                 ///< last step that activated a node

  std::size_t infected_count() const;
  std::size_t protected_count() const;

  /// Cumulative number of infected nodes at the end of `hop` (hops beyond
  /// the recorded series return the final count — the curve has flattened).
  std::size_t cumulative_infected_at(std::uint32_t hop) const;
  std::size_t cumulative_protected_at(std::uint32_t hop) const;

  /// Fraction of `targets` that finished uninfected (protected or inactive).
  /// This is the paper's notion of a bridge end being "protected".
  double saved_fraction(std::span<const NodeId> targets) const;
  std::size_t saved_count(std::span<const NodeId> targets) const;

  /// Throws lcrb::Error unless this result is a well-formed outcome of the
  /// shared two-cascade state machine on (g, seeds): state/activation_step
  /// agree everywhere, step 0 activates exactly the seeds with their colors,
  /// the newly_* series match the per-step activation counts, `steps` is the
  /// last activating step, and every non-seed activation has a same-colored
  /// in-neighbor activated strictly earlier (progressive propagation — holds
  /// for OPOAO, DOAM, IC and LT alike). O(n + m). Called automatically at
  /// the end of every simulate_* under LCRB_ENABLE_INVARIANTS.
  void validate(const DiGraph& g, const SeedSets& seeds) const;
};

}  // namespace lcrb
