#include "diffusion/doam.h"

#include "graph/traversal.h"
#include "util/check.h"
#include "util/error.h"

namespace lcrb {

DiffusionResult simulate_doam(const DiGraph& g, const SeedSets& seeds,
                              const DoamConfig& cfg) {
  validate_seeds(g, seeds);

  DiffusionResult r;
  r.state.assign(g.num_nodes(), NodeState::kInactive);
  r.activation_step.assign(g.num_nodes(), kUnreached);

  std::vector<NodeId> p_frontier, r_frontier;
  auto activate = [&](NodeId v, NodeState s, std::uint32_t step,
                      std::vector<NodeId>& frontier) {
    r.state[v] = s;
    r.activation_step[v] = step;
    frontier.push_back(v);
  };

  for (NodeId v : seeds.protectors) activate(v, NodeState::kProtected, 0, p_frontier);
  for (NodeId v : seeds.rumors) activate(v, NodeState::kInfected, 0, r_frontier);
  r.newly_protected.push_back(static_cast<std::uint32_t>(p_frontier.size()));
  r.newly_infected.push_back(static_cast<std::uint32_t>(r_frontier.size()));

  std::vector<NodeId> next_p, next_r;
  for (std::uint32_t step = 1;
       step <= cfg.max_steps && (!p_frontier.empty() || !r_frontier.empty());
       ++step) {
    next_p.clear();
    next_r.clear();
    // Protector broadcasts claim nodes first: P wins simultaneous arrival.
    for (NodeId u : p_frontier) {
      for (NodeId v : g.out_neighbors(u)) {
        if (r.state[v] == NodeState::kInactive) {
          r.state[v] = NodeState::kProtected;
          r.activation_step[v] = step;
          next_p.push_back(v);
        }
      }
    }
    for (NodeId u : r_frontier) {
      for (NodeId v : g.out_neighbors(u)) {
        if (r.state[v] == NodeState::kInactive) {
          r.state[v] = NodeState::kInfected;
          r.activation_step[v] = step;
          next_r.push_back(v);
        }
      }
    }
    p_frontier.swap(next_p);
    r_frontier.swap(next_r);
    r.newly_protected.push_back(static_cast<std::uint32_t>(p_frontier.size()));
    r.newly_infected.push_back(static_cast<std::uint32_t>(r_frontier.size()));
    if (!p_frontier.empty() || !r_frontier.empty()) r.steps = step;
  }
  LCRB_INVARIANT(r.validate(g, seeds));
  return r;
}

std::vector<bool> doam_saved(const DiGraph& g, const SeedSets& seeds,
                             std::span<const NodeId> targets) {
  validate_seeds(g, seeds);
  const BfsResult from_p = bfs_forward(g, seeds.protectors);
  const BfsResult from_r = bfs_forward(g, seeds.rumors);
  std::vector<bool> saved(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const NodeId v = targets[i];
    LCRB_REQUIRE(v < g.num_nodes(), "target out of range");
    // Unreached == kUnreached == +inf; P wins ties.
    saved[i] = from_p.dist[v] <= from_r.dist[v];
  }
  return saved;
}

}  // namespace lcrb
