#include "diffusion/doam.h"

#include "graph/ef_graph.h"
#include "graph/graph.h"

#include "diffusion/doam_traits.h"
#include "diffusion/kernel.h"
#include "graph/traversal.h"
#include "util/check.h"
#include "util/error.h"

namespace lcrb {

// Flatten the kernel instantiation into the wrapper: leaving it as a comdat
// call costs ~10% on the small-cascade microbenchmarks.
template <GraphView G>
#if defined(__GNUC__)
__attribute__((flatten))
#endif
DiffusionResult simulate_doam(const G& g, const SeedSets& seeds,
                              const DoamConfig& cfg) {
  return run_cascade<DoamTraits>(g, seeds, /*seed=*/0, cfg);
}

template <GraphView G>
std::vector<bool> doam_saved(const G& g, const SeedSets& seeds,
                             std::span<const NodeId> targets) {
  validate_seeds(g, seeds);
  const BfsResult from_p = bfs_forward(g, seeds.protectors);
  const BfsResult from_r = bfs_forward(g, seeds.rumors);
  std::vector<bool> saved(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const NodeId v = targets[i];
    LCRB_REQUIRE(v < g.num_nodes(), "target out of range");
    // Unreached == kUnreached == +inf; P wins ties.
    saved[i] = from_p.dist[v] <= from_r.dist[v];
  }
  return saved;
}

#define LCRB_INSTANTIATE_DOAM(G)                                              \
  template DiffusionResult simulate_doam<G>(const G&, const SeedSets&,        \
                                            const DoamConfig&);               \
  template std::vector<bool> doam_saved<G>(const G&, const SeedSets&,         \
                                           std::span<const NodeId>);

LCRB_INSTANTIATE_DOAM(DiGraph)
LCRB_INSTANTIATE_DOAM(EfGraph)

#undef LCRB_INSTANTIATE_DOAM

}  // namespace lcrb
