// Deterministic One-Activate-Many (DOAM) model (paper §III-B).
//
// A node activated at step t activates ALL of its currently-inactive
// out-neighbors at step t+1, exactly once (broadcast). With the P-priority
// tie rule this is a synchronized two-source BFS and is fully deterministic.
#pragma once

#include <cstdint>

#include "diffusion/cascade.h"

namespace lcrb {

struct DoamConfig {
  std::uint32_t max_steps = 0xffffffff;  ///< hop cap (diffusion is finite anyway)
};

/// Simulates the (deterministic) DOAM diffusion.
template <GraphView G>
DiffusionResult simulate_doam(const G& g, const SeedSets& seeds,
                              const DoamConfig& cfg = {});

/// Analytic protection test (DESIGN.md §6.4): under DOAM, node v ends
/// protected or untouched iff dist(S_P, v) <= dist(S_R, v) (plain multi-
/// source BFS distances, unreachable = infinity). Returns, for each node of
/// `targets`, whether it ends uninfected. Used by SCBG coverage checks —
/// O(V+E) instead of a simulation per query.
template <GraphView G>
std::vector<bool> doam_saved(const G& g, const SeedSets& seeds,
                             std::span<const NodeId> targets);

}  // namespace lcrb
