// DOAM model traits (paper §III-B): the frontier family with every arc
// live — a deterministic synchronized two-source BFS. No realization cache
// (the model has no randomness to materialize; the legacy path already
// collapses it to one run) but a reverse sampler: v saves root iff
// dist(v, root) <= dist_R(root), the §6.4 distance rule.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "diffusion/doam.h"
#include "diffusion/frontier_traits.h"
#include "diffusion/kernel.h"

namespace lcrb {

struct DoamTraits {
  static constexpr DiffusionModel kModel = DiffusionModel::kDoam;
  static constexpr const char* kName = "DOAM";
  static constexpr bool kDeterministic = true;
  static constexpr bool kSupportsCache = false;
  static constexpr bool kSupportsReverse = true;

  using Config = DoamConfig;
  using Trace = NoTrace;

  static Config config_from(const RealizationParams& p) {
    Config c;
    c.max_steps = p.max_hops;
    return c;
  }

  struct AlwaysLive {
    template <class G>
    bool operator()(const G&, NodeId, NodeId) const { return true; }
  };

  template <class G>
  class Forward : public FrontierForward<AlwaysLive, G> {
   public:
    Forward(const G& g, std::uint64_t /*seed*/, const Config& /*cfg*/,
            Trace* /*trace*/)
        : FrontierForward<AlwaysLive, G>(g, AlwaysLive{}) {}
  };

  /// Multi-source rumor BFS, capped at max_hops — the DOAM arrival times.
  /// Deterministic, so it is shared across every reverse draw.
  template <class G>
  static ReverseShared build_reverse_shared(const G& g,
                                            std::span<const NodeId> rumors,
                                            const RealizationParams& p) {
    ReverseShared shared;
    shared.rumor_dist.assign(g.num_nodes(), kUnreached);
    std::vector<NodeId> frontier, next;
    for (NodeId v : rumors) {
      shared.rumor_dist[v] = 0;
      frontier.push_back(v);
    }
    for (std::uint32_t d = 1; d <= p.max_hops && !frontier.empty(); ++d) {
      next.clear();
      for (NodeId u : frontier) {
        for (NodeId w : g.out_neighbors(u)) {
          if (shared.rumor_dist[w] == kUnreached) {
            shared.rumor_dist[w] = d;
            next.push_back(w);
          }
        }
      }
      frontier.swap(next);
    }
    return shared;
  }

  template <class G>
  static void reverse_set(const G& g, const std::vector<bool>& is_rumor,
                          std::span<const NodeId> /*rumors*/,
                          const ReverseShared& shared, NodeId root,
                          std::uint64_t /*seed*/,
                          const RealizationParams& /*p*/, ReverseScratch& sc,
                          std::vector<NodeId>& out, std::uint64_t& visits) {
    const std::uint32_t limit = shared.rumor_dist[root];
    if (limit == kUnreached) return;  // rumor never arrives: null set

    // Plain reverse BFS capped at dist_R(root). Any path through a rumor
    // seed r has length >= 1 + dist_R(root) (dist(r, root) >= dist_R(root)),
    // so the cap already keeps rumor seeds off every counted path; they are
    // only excluded from the output.
    sc.frontier.clear();
    sc.t0_epoch[root] = sc.epoch;
    sc.frontier.push_back(root);
    if (!is_rumor[root]) out.push_back(root);
    ++visits;
    for (std::uint32_t d = 1; d <= limit && !sc.frontier.empty(); ++d) {
      sc.next.clear();
      for (NodeId w : sc.frontier) {
        for (NodeId u : g.in_neighbors(w)) {
          ++visits;
          if (sc.t0_epoch[u] == sc.epoch) continue;
          sc.t0_epoch[u] = sc.epoch;
          sc.next.push_back(u);
          if (!is_rumor[u]) out.push_back(u);
        }
      }
      sc.frontier.swap(sc.next);
    }
  }
};

}  // namespace lcrb
