// Shared machinery of the broadcast/live-edge model family (DOAM, IC, WC).
//
// All three models are synchronized K-frontier BFS races where cascades
// expand in the plan's priority order each step (default: protectors before
// rumors) and an arc (u, v) conducts iff a per-sample coin says it is live
// (DOAM: always; IC: probability p; WC: probability 1/d_in(v)). The family
// is parameterized on that coin:
//
//  * FrontierForward<Coin>   — the Forward runner run_cascade instantiates.
//  * LiveEdgeSample + replay — the realization cache: the live subgraph in
//    CSR form plus baseline rumor BFS distances d_R. With arc liveness
//    independent of the cascades, the winner at any node is
//    argmin(d_R, d_P) with P on ties (docs/algorithms.md gives the
//    induction), so an evaluation is one protector-side BFS over cached
//    live arcs.
//  * live_reverse_set<Coin>  — the RIS reverse sampler: reverse BFS over
//    the transposed live subgraph, truncated at the rumor arrival level.
//
// doam_traits.h, ic_traits.h and wc_traits.h bind these to their coins.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "diffusion/kernel.h"

namespace lcrb {

/// Forward runner for the frontier family. `Coin(g, u, v)` decides arc
/// liveness; it must be a pure function of the sample seed and the arc so
/// that forward runs, cache builds and reverse draws all realize the same
/// subgraph.
template <class Coin, class G>
class FrontierForward {
 public:
  FrontierForward(const G& g, Coin coin) : g_(g), coin_(coin) {}

  void seed(const CascadePlan& plan, DiffusionResult& r) {
    frontier_.resize(plan.size());
    next_.resize(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) {
      const std::uint8_t k = plan.cascade_at(0, i);
      const NodeState s = plan.state_of(k);
      for (NodeId v : plan.seeds_of(k)) {
        r.state[v] = s;
        r.cascade[v] = k;
        r.activation_step[v] = 0;
        frontier_[k].push_back(v);
      }
    }
  }

  bool active() const {
    for (const auto& f : frontier_) {
      if (!f.empty()) return true;
    }
    return false;
  }

  StepDelta step(const CascadePlan& plan, std::uint32_t step,
                 DiffusionResult& r) {
    StepDelta d;
    // Earlier cascades in the priority order claim nodes first (default
    // plan: P wins simultaneous arrival).
    for (std::size_t i = 0; i < plan.size(); ++i) {
      const std::uint8_t k = plan.cascade_at(step, i);
      const NodeState s = plan.state_of(k);
      next_[k].clear();
      for (NodeId u : frontier_[k]) {
        for (NodeId v : g_.out_neighbors(u)) {
          if (r.state[v] == NodeState::kInactive && coin_(g_, u, v)) {
            r.state[v] = s;
            r.cascade[v] = k;
            r.activation_step[v] = step;
            next_[k].push_back(v);
          }
        }
      }
      frontier_[k].swap(next_[k]);
      const auto cnt = static_cast<std::uint32_t>(frontier_[k].size());
      (plan.role(k) == CascadeRole::kProtector ? d.newly_protected
                                               : d.newly_infected) += cnt;
    }
    return d;
  }

 private:
  const G& g_;
  Coin coin_;
  /// Per-cascade frontiers (indexed by cascade id).
  std::vector<std::vector<NodeId>> frontier_, next_;
};

/// One sample's realization for a live-edge model: live subgraph + baseline
/// rumor distances.
struct LiveEdgeSample {
  std::vector<std::uint32_t> live_off;  ///< n+1 CSR offsets
  std::vector<NodeId> live_tgt;         ///< live arc targets
  std::vector<std::uint32_t> dist_r;    ///< baseline rumor BFS distance
  std::uint32_t max_needed = 0;  ///< max d_R over baseline-infected ends
};

/// Replay working memory for live-edge models: the protector-side BFS state.
struct LiveEdgeReplayScratch {
  explicit LiveEdgeReplayScratch(NodeId n) : dist(n, 0) {}
  void on_epoch_wrap() {}  // dist is guarded by the shared color stamps
  std::vector<std::uint32_t> dist;  ///< BFS arrival (touched nodes only)
  std::vector<NodeId> queue;
};

/// Materializes one live-edge sample: the coin is flipped once per arc, and
/// the baseline activation steps ARE the live-subgraph BFS distances from
/// the rumor seeds (no competition in the baseline run). `reserve_hint`
/// presizes live_tgt (expected live-arc count; purely a perf knob).
/// `infected_targets` are the baseline-infected bridge ends — arrivals
/// deeper than the deepest of them can never save anything, which caps every
/// replay's BFS.
template <class Coin, class G>
void build_live_sample(const G& g, const Coin& coin,
                       std::size_t reserve_hint, DiffusionResult&& base,
                       std::span<const NodeId> infected_targets,
                       LiveEdgeSample& sp) {
  sp.live_off.assign(g.num_nodes() + 1, 0);
  sp.live_tgt.reserve(reserve_hint);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.out_neighbors(u)) {
      if (coin(g, u, v)) sp.live_tgt.push_back(v);
    }
    sp.live_off[u + 1] = static_cast<std::uint32_t>(sp.live_tgt.size());
  }
  sp.live_tgt.shrink_to_fit();
  sp.dist_r = std::move(base.activation_step);
  sp.max_needed = 0;
  for (NodeId v : infected_targets) {
    sp.max_needed = std::max(sp.max_needed, sp.dist_r[v]);
  }
}

/// Replays one live-edge sample: a single protector-side BFS over the cached
/// live arcs (protectors are already stamped kColorP by the caller),
/// truncated at min(hops, max_needed). Returns the elementary-op count.
inline std::uint64_t replay_live(const LiveEdgeSample& sp,
                                 std::span<const NodeId> protectors,
                                 EpochColorScratch& color,
                                 LiveEdgeReplayScratch& rs,
                                 std::uint32_t hops) {
  const std::uint32_t e = color.epoch;
  rs.queue.clear();
  for (NodeId v : protectors) {
    rs.dist[v] = 0;
    rs.queue.push_back(v);
  }
  const std::uint32_t depth_cap = std::min(hops, sp.max_needed);
  std::uint64_t ops = 0;
  for (std::size_t head = 0; head < rs.queue.size(); ++head) {
    const NodeId u = rs.queue[head];
    const std::uint32_t du = rs.dist[u];
    ++ops;
    if (du >= depth_cap) continue;
    const std::uint32_t begin = sp.live_off[u], end = sp.live_off[u + 1];
    ops += end - begin;
    for (std::uint32_t k = begin; k < end; ++k) {
      const NodeId v = sp.live_tgt[k];
      if (color.color_epoch[v] != e) {
        color.color_epoch[v] = e;
        color.color[v] = kColorP;
        rs.dist[v] = du + 1;
        rs.queue.push_back(v);
      }
    }
  }
  return ops;
}

/// Bridge-end verdict after replay_live: a baseline-uninfected end cannot be
/// hurt by protectors; a baseline-infected end is saved iff the protector
/// BFS reached it no later than the rumor (P wins ties).
inline bool live_replay_infected(const LiveEdgeSample& sp,
                                 const EpochColorScratch& color,
                                 const LiveEdgeReplayScratch& rs, NodeId v,
                                 bool base_infected) {
  if (!base_infected) return false;
  return !(color.colored(v) && rs.dist[v] <= sp.dist_r[v]);
}

/// Reverse BFS over the TRANSPOSED live arcs. The first level that contains
/// a rumor seed is the realized rumor arrival d_R(root); it truncates the
/// search, and by the live-subgraph distance rule every non-rumor node
/// within that depth saves root. Null (empty out) when the rumor never
/// reaches root within max_hops.
template <class Coin, class G>
void live_reverse_set(const G& g, const Coin& coin,
                      const std::vector<bool>& is_rumor, NodeId root,
                      std::uint32_t max_hops, ReverseScratch& sc,
                      std::vector<NodeId>& out, std::uint64_t& visits) {
  sc.frontier.clear();
  sc.collected.clear();
  sc.t0_epoch[root] = sc.epoch;
  sc.frontier.push_back(root);
  sc.collected.push_back(root);
  ++visits;
  std::uint32_t rumor_level = is_rumor[root] ? 0 : kUnreached;
  std::uint32_t limit = max_hops;
  for (std::uint32_t d = 0; d < limit && !sc.frontier.empty(); ++d) {
    sc.next.clear();
    for (NodeId w : sc.frontier) {
      for (NodeId u : g.in_neighbors(w)) {
        ++visits;
        if (sc.t0_epoch[u] == sc.epoch) continue;
        if (!coin(g, u, w)) continue;
        sc.t0_epoch[u] = sc.epoch;
        sc.next.push_back(u);
        sc.collected.push_back(u);
        if (is_rumor[u] && rumor_level == kUnreached) {
          rumor_level = d + 1;
          limit = std::min(limit, rumor_level);
        }
      }
    }
    sc.frontier.swap(sc.next);
  }
  if (rumor_level == kUnreached) return;  // null set
  out.reserve(sc.collected.size());
  for (NodeId v : sc.collected) {
    if (!is_rumor[v]) out.push_back(v);
  }
}

}  // namespace lcrb
