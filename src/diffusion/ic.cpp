#include "diffusion/ic.h"

#include "graph/ef_graph.h"
#include "graph/graph.h"

#include "diffusion/ic_traits.h"
#include "diffusion/kernel.h"
#include "util/check.h"
#include "util/error.h"

namespace lcrb {

// Flatten the kernel instantiation into the wrapper: leaving it as a comdat
// call costs ~10% on the small-cascade microbenchmarks.
template <GraphView G>
#if defined(__GNUC__)
__attribute__((flatten))
#endif
DiffusionResult simulate_competitive_ic(const G& g, const SeedSets& seeds,
                                        std::uint64_t seed,
                                        const IcConfig& cfg) {
  return run_cascade<IcTraits>(g, seeds, seed, cfg);
}

template DiffusionResult simulate_competitive_ic<DiGraph>(const DiGraph&,
                                                          const SeedSets&,
                                                          std::uint64_t,
                                                          const IcConfig&);
template DiffusionResult simulate_competitive_ic<EfGraph>(const EfGraph&,
                                                          const SeedSets&,
                                                          std::uint64_t,
                                                          const IcConfig&);

}  // namespace lcrb
