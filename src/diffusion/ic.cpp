#include "diffusion/ic.h"

#include "util/check.h"
#include "util/error.h"

namespace lcrb {

bool ic_arc_live(std::uint64_t seed, NodeId u, NodeId v, double p) {
  std::uint64_t x = seed ^ (static_cast<std::uint64_t>(u) << 32) ^ v;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return static_cast<double>(x >> 11) * 0x1.0p-53 < p;
}

DiffusionResult simulate_competitive_ic(const DiGraph& g, const SeedSets& seeds,
                                        std::uint64_t seed,
                                        const IcConfig& cfg) {
  validate_seeds(g, seeds);
  LCRB_REQUIRE(cfg.edge_prob >= 0.0 && cfg.edge_prob <= 1.0,
               "edge_prob must be in [0,1]");

  DiffusionResult r;
  r.state.assign(g.num_nodes(), NodeState::kInactive);
  r.activation_step.assign(g.num_nodes(), kUnreached);

  std::vector<NodeId> p_frontier, r_frontier;
  for (NodeId v : seeds.protectors) {
    r.state[v] = NodeState::kProtected;
    r.activation_step[v] = 0;
    p_frontier.push_back(v);
  }
  for (NodeId v : seeds.rumors) {
    r.state[v] = NodeState::kInfected;
    r.activation_step[v] = 0;
    r_frontier.push_back(v);
  }
  r.newly_protected.push_back(static_cast<std::uint32_t>(p_frontier.size()));
  r.newly_infected.push_back(static_cast<std::uint32_t>(r_frontier.size()));

  std::vector<NodeId> next_p, next_r;
  for (std::uint32_t step = 1;
       step <= cfg.max_steps && (!p_frontier.empty() || !r_frontier.empty());
       ++step) {
    next_p.clear();
    next_r.clear();
    for (NodeId u : p_frontier) {
      for (NodeId v : g.out_neighbors(u)) {
        if (r.state[v] == NodeState::kInactive &&
            ic_arc_live(seed, u, v, cfg.edge_prob)) {
          r.state[v] = NodeState::kProtected;
          r.activation_step[v] = step;
          next_p.push_back(v);
        }
      }
    }
    for (NodeId u : r_frontier) {
      for (NodeId v : g.out_neighbors(u)) {
        if (r.state[v] == NodeState::kInactive &&
            ic_arc_live(seed, u, v, cfg.edge_prob)) {
          r.state[v] = NodeState::kInfected;
          r.activation_step[v] = step;
          next_r.push_back(v);
        }
      }
    }
    p_frontier.swap(next_p);
    r_frontier.swap(next_r);
    r.newly_protected.push_back(static_cast<std::uint32_t>(p_frontier.size()));
    r.newly_infected.push_back(static_cast<std::uint32_t>(r_frontier.size()));
    if (!p_frontier.empty() || !r_frontier.empty()) r.steps = step;
  }
  LCRB_INVARIANT(r.validate(g, seeds));
  return r;
}

}  // namespace lcrb
