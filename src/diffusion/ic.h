// Competitive Independent Cascade (extension model, related work [14][15]).
//
// Each arc (u, v) is live with probability `edge_prob`, decided once per
// sample by hashing (seed, u, v) — the classic live-edge coupling. Both
// cascades then race along live arcs as synchronized BFS with P-priority
// ties, which matches Budak et al.'s "campaign with higher priority" EIL
// setting and gives deterministic, low-variance marginal gains.
#pragma once

#include <cstdint>

#include "diffusion/cascade.h"

namespace lcrb {

struct IcConfig {
  double edge_prob = 0.1;
  std::uint32_t max_steps = 0xffffffff;
};

/// The stateless live-edge coin for arc (u, v): identical across protector-
/// set variations of the same sample. Exposed so the realization cache in
/// `lcrb/sigma_engine.h` can materialize each sample's live subgraph once.
/// Defined inline: it sits on the innermost loop of every forward run,
/// cache build, and RR draw, which the traits layer instantiates across
/// several translation units.
inline bool ic_arc_live(std::uint64_t seed, NodeId u, NodeId v, double p) {
  std::uint64_t x = seed ^ (static_cast<std::uint64_t>(u) << 32) ^ v;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return static_cast<double>(x >> 11) * 0x1.0p-53 < p;
}

/// Simulates one competitive-IC sample. Deterministic in (g, seeds, seed).
template <GraphView G>
DiffusionResult simulate_competitive_ic(const G& g, const SeedSets& seeds,
                                        std::uint64_t seed,
                                        const IcConfig& cfg = {});

}  // namespace lcrb
