// Competitive-IC model traits (extension model, related work [14][15]): the
// frontier family with the classic live-edge coupling — arc (u, v) is live
// with one homogeneous probability, decided once per sample by hashing
// (seed, u, v). Forward, cache and reverse all come from frontier_traits.h;
// this file only binds the coin.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "diffusion/frontier_traits.h"
#include "diffusion/ic.h"
#include "diffusion/kernel.h"
#include "util/check.h"

namespace lcrb {

struct IcTraits {
  static constexpr DiffusionModel kModel = DiffusionModel::kIc;
  static constexpr const char* kName = "IC";
  static constexpr bool kDeterministic = false;
  static constexpr bool kSupportsCache = true;
  static constexpr bool kSupportsReverse = true;

  using Config = IcConfig;
  using Trace = NoTrace;

  static Config config_from(const RealizationParams& p) {
    Config c;
    c.edge_prob = p.ic_edge_prob;
    c.max_steps = p.max_hops;
    return c;
  }

  struct Coin {
    std::uint64_t seed;
    double p;
    template <class G>
    bool operator()(const G&, NodeId u, NodeId v) const {
      return ic_arc_live(seed, u, v, p);
    }
  };

  template <class G>
  class Forward : public FrontierForward<Coin, G> {
   public:
    Forward(const G& g, std::uint64_t seed, const Config& cfg,
            Trace* /*trace*/)
        : FrontierForward<Coin, G>(g, Coin{seed, cfg.edge_prob}) {
      LCRB_REQUIRE(cfg.edge_prob >= 0.0 && cfg.edge_prob <= 1.0,
                   "edge_prob must be in [0,1]");
    }
  };

  // --- realization cache (live subgraph + baseline distances) -------------
  struct CacheShared {};
  using CacheSample = LiveEdgeSample;
  using ReplayScratch = LiveEdgeReplayScratch;

  template <class G>
  static std::size_t estimated_cache_bytes(const G& g,
                                           std::size_t samples,
                                           std::uint32_t /*hops*/) {
    const std::size_t n = g.num_nodes();
    return samples * (static_cast<std::size_t>(g.num_edges()) * sizeof(NodeId) +
                      (n + 1) * sizeof(std::uint32_t) +
                      n * sizeof(std::uint32_t));
  }

  template <class G>
  static CacheShared build_cache_shared(const G&) { return {}; }

  template <class G>
  static void build_cache_sample(const G& g, const CacheShared&,
                                 std::uint64_t seed, DiffusionResult&& base,
                                 std::span<const NodeId> infected_targets,
                                 const RealizationParams& p, CacheSample& sp) {
    build_live_sample(g, Coin{seed, p.ic_edge_prob},
                      static_cast<std::size_t>(
                          static_cast<double>(g.num_edges()) *
                          p.ic_edge_prob * 1.1),
                      std::move(base), infected_targets, sp);
  }

  static std::size_t cache_shared_bytes(const CacheShared&) { return 0; }

  static std::size_t cache_sample_bytes(const CacheSample& sp) {
    return sp.live_off.capacity() * sizeof(std::uint32_t) +
           sp.live_tgt.capacity() * sizeof(NodeId) +
           sp.dist_r.capacity() * sizeof(std::uint32_t);
  }

  template <class G>
  static std::uint64_t replay(const G&, const CacheShared&,
                              const CacheSample& sp,
                              std::span<const NodeId> /*rumors*/,
                              std::span<const NodeId> protectors,
                              EpochColorScratch& color, ReplayScratch& rs,
                              const RealizationParams& p) {
    return replay_live(sp, protectors, color, rs, p.max_hops);
  }

  static bool replay_infected(const CacheSample& sp,
                              const EpochColorScratch& color,
                              const ReplayScratch& rs, NodeId v,
                              bool base_infected) {
    return live_replay_infected(sp, color, rs, v, base_infected);
  }

  // --- reverse reachability (RIS) ------------------------------------------
  template <class G>
  static ReverseShared build_reverse_shared(const G&,
                                            std::span<const NodeId>,
                                            const RealizationParams&) {
    return {};
  }

  template <class G>
  static void reverse_set(const G& g, const std::vector<bool>& is_rumor,
                          std::span<const NodeId> /*rumors*/,
                          const ReverseShared&, NodeId root,
                          std::uint64_t seed, const RealizationParams& p,
                          ReverseScratch& sc, std::vector<NodeId>& out,
                          std::uint64_t& visits) {
    live_reverse_set(g, Coin{seed, p.ic_edge_prob}, is_rumor, root,
                     p.max_hops, sc, out, visits);
  }
};

}  // namespace lcrb
