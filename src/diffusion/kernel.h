// The generic cascade kernel behind every diffusion model.
//
// Model semantics live in per-model traits files (opoao_traits.h,
// doam_traits.h, ic_traits.h, lt_traits.h, wc_traits.h; see model_traits.h
// for the contract). This header holds the machinery every traits file
// instantiates:
//
//  * run_cascade<Traits> — the one forward simulation loop. A traits file
//    contributes a Forward runner (seed handling + one synchronized step);
//    the kernel owns the shared K-cascade state machine: the CascadePlan
//    (cascade ids, roles, per-step priority order), step-0 seeding, the
//    per-step newly_* and per-cascade series, the `steps` watermark, the
//    max_steps cap, and the cross-model DiffusionResult invariant.
//    Everything is resolved at compile time — no virtual dispatch anywhere
//    on the hot path.
//  * CascadePlan — the normalized view of SeedSets the Forward runners
//    iterate: K cascades with roles and seed lists, plus cascade_at(step,
//    idx), the priority policy resolved per step. With two cascades and the
//    default policy the plan is exactly [protectors, rumors] every step —
//    the paper's P-before-R rule, byte-identical to the historical kernel.
//  * RealizationParams — the model-agnostic knobs (hop cap, IC edge
//    probability) that shape one coupled realization. The sigma layer hands
//    these to the traits' cache builders and reverse samplers so the
//    diffusion layer never depends on lcrb/ config types.
//  * EpochColorScratch / ReverseScratch — epoch-stamped working memory for
//    the realization-cache replays and the reverse-reachability samplers.
//    "Clearing" between uses is a counter bump, not an O(n) write; leasing
//    is owned by the calling layer (sigma_engine.cpp, ris.cpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "diffusion/cascade.h"
#include "graph/graph_view.h"
#include "util/check.h"

namespace lcrb {

/// Activation counts of one synchronized step, returned by Forward::step.
struct StepDelta {
  std::uint32_t newly_protected = 0;
  std::uint32_t newly_infected = 0;
  bool any() const { return newly_protected > 0 || newly_infected > 0; }
};

/// Trace type for models that record nothing (every model except OPOAO).
struct NoTrace {};

/// Normalized view of a SeedSets the Forward runners iterate: K cascades
/// (id = index), each with a role and a seed list, and the per-step priority
/// order. Built once per run_cascade; cheap (no copies of the seed lists).
class CascadePlan {
 public:
  explicit CascadePlan(const SeedSets& seeds) : seeds_(&seeds) {
    const std::size_t k = seeds.num_cascades();
    if (seeds.priority == CascadePriority::kFixedOrder &&
        !seeds.order.empty()) {
      base_order_.assign(seeds.order.begin(), seeds.order.end());
    } else {
      base_order_.resize(k);
      for (std::size_t i = 0; i < k; ++i) {
        base_order_[i] = static_cast<std::uint8_t>(i);
      }
    }
    round_robin_ = seeds.priority == CascadePriority::kRoundRobin;
  }

  std::size_t size() const { return base_order_.size(); }

  CascadeRole role(std::uint8_t k) const { return seeds_->role_of(k); }

  NodeState state_of(std::uint8_t k) const {
    return role(k) == CascadeRole::kProtector ? NodeState::kProtected
                                              : NodeState::kInfected;
  }

  const std::vector<NodeId>& seeds_of(std::uint8_t k) const {
    return seeds_->seeds_of(k);
  }

  /// The cascade moving at position `idx` of step `step`'s priority order.
  /// Fixed/lowest-id policies are step-independent; round-robin rotates the
  /// id order by one position per step (step 0 = seeding order).
  std::uint8_t cascade_at(std::uint32_t step, std::size_t idx) const {
    if (round_robin_) {
      return base_order_[(idx + step) % base_order_.size()];
    }
    return base_order_[idx];
  }

 private:
  const SeedSets* seeds_;
  std::vector<std::uint8_t> base_order_;
  bool round_robin_ = false;
};

/// Model-agnostic realization knobs: how deep one coupled sample runs and
/// the IC family's arc probability. The lcrb layer's MonteCarloConfig /
/// SigmaConfig / RisConfig all funnel into this when they cross into
/// diffusion code.
struct RealizationParams {
  std::uint32_t max_hops = 31;
  double ic_edge_prob = 0.1;  ///< homogeneous-IC only; WC derives its own
};

/// One forward simulation of `Traits`' model. Deterministic in
/// (g, seeds, seed); `trace` (model-specific, usually NoTrace) records the
/// model's event log when non-null. This is the single cascade loop —
/// simulate_opoao/simulate_doam/simulate_competitive_ic/... are one-line
/// instantiations of it.
template <class Traits, GraphView G>
DiffusionResult run_cascade(const G& g, const SeedSets& seeds,
                            std::uint64_t seed,
                            const typename Traits::Config& cfg,
                            typename Traits::Trace* trace = nullptr) {
  validate_seeds(g, seeds);

  DiffusionResult r;
  r.state.assign(g.num_nodes(), NodeState::kInactive);
  r.activation_step.assign(g.num_nodes(), kUnreached);
  r.cascade.assign(g.num_nodes(), kNoCascade);

  typename Traits::template Forward<G> fwd(g, seed, cfg, trace);
  const CascadePlan plan(seeds);

  std::uint32_t seed_p = 0, seed_r = 0;
  for (std::size_t k = 0; k < plan.size(); ++k) {
    const auto sz = static_cast<std::uint32_t>(
        plan.seeds_of(static_cast<std::uint8_t>(k)).size());
    (plan.role(static_cast<std::uint8_t>(k)) == CascadeRole::kProtector
         ? seed_p
         : seed_r) += sz;
  }
  r.newly_protected.push_back(seed_p);
  r.newly_infected.push_back(seed_r);
  // Step 0: cascades seed in priority order — with the default two-cascade
  // plan, protector seeds before rumor seeds (the paper's P-priority rule).
  fwd.seed(plan, r);

  for (std::uint32_t step = 1; step <= cfg.max_steps && fwd.active(); ++step) {
    const StepDelta d = fwd.step(plan, step, r);
    r.newly_protected.push_back(d.newly_protected);
    r.newly_infected.push_back(d.newly_infected);
    if (d.any()) r.steps = step;
  }

  // Per-cascade series, derived from the winning-cascade attribution the
  // runner recorded (one counting pass; the runners never touch these).
  r.newly_by_cascade.assign(
      plan.size(), std::vector<std::uint32_t>(r.newly_infected.size(), 0));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (r.cascade[v] != kNoCascade) {
      r.newly_by_cascade[r.cascade[v]][r.activation_step[v]] += 1;
    }
  }
  LCRB_INVARIANT(r.validate(g, seeds));
  return r;
}

/// Cascade colors inside replay scratch (distinct from NodeState so stamped
/// arrays stay byte-sized).
inline constexpr std::uint8_t kColorP = 0;
inline constexpr std::uint8_t kColorR = 1;

/// Epoch-stamped per-node color state for realization-cache replays. An
/// entry is valid only when its stamp equals the current epoch; bump()
/// invalidates everything at once. Model-specific replay scratch
/// (Traits::ReplayScratch) shares this epoch and clears its own stamped
/// arrays via on_epoch_wrap() when the counter wraps.
struct EpochColorScratch {
  std::uint32_t epoch = 0;
  std::vector<std::uint32_t> color_epoch;
  std::vector<std::uint8_t> color;

  explicit EpochColorScratch(std::size_t n) : color_epoch(n, 0), color(n, 0) {}

  bool colored(NodeId v) const { return color_epoch[v] == epoch; }
  void set(NodeId v, std::uint8_t c) {
    color_epoch[v] = epoch;
    color[v] = c;
  }

  /// Starts a fresh replay. Returns true when the epoch counter wrapped
  /// (once per ~4e9 replays) and stamped arrays were really cleared — the
  /// caller must then clear its model scratch's stamps too.
  bool bump() {
    if (++epoch == 0) {
      std::fill(color_epoch.begin(), color_epoch.end(), 0u);
      epoch = 1;
      return true;
    }
    return false;
  }
};

/// Precomputed rumor-side state shared by every reverse draw of one sampler
/// (built once per RrSampler). Only DOAM populates it — its realization is
/// deterministic, so the rumor arrival times can be computed up front; the
/// stochastic models re-derive arrivals per realization seed.
struct ReverseShared {
  std::vector<std::uint32_t> rumor_dist;
};

/// Per-draw working memory for the reverse-reachability samplers, reused
/// across RR sets via epoch stamping so a fresh draw costs O(touched), not
/// O(n). Leased under a mutex by RrSampler; concurrent draws each hold one.
struct ReverseScratch {
  ReverseScratch(NodeId n, std::uint32_t hops)
      : t0_epoch(n, 0),
        t0(n, 0),
        lat_epoch(n, 0),
        lat(n, 0),
        done_epoch(n, 0),
        buckets(static_cast<std::size_t>(hops) + 1) {}

  void bump_epoch() {
    if (++epoch == 0) {  // wrapped: stamps from the previous era could alias
      std::fill(t0_epoch.begin(), t0_epoch.end(), 0u);
      std::fill(lat_epoch.begin(), lat_epoch.end(), 0u);
      std::fill(done_epoch.begin(), done_epoch.end(), 0u);
      epoch = 1;
    }
  }

  std::uint32_t epoch = 0;
  /// OPOAO: rumor-only baseline activation step. IC/DOAM: reverse distance.
  std::vector<std::uint32_t> t0_epoch, t0;
  /// OPOAO reverse search: latest admissible claim step.
  std::vector<std::uint32_t> lat_epoch, lat;
  std::vector<std::uint32_t> done_epoch;
  std::vector<NodeId> frontier, next, active, collected;
  /// OPOAO bucket queue over claim steps; always drained back to empty.
  std::vector<std::vector<NodeId>> buckets;
};

}  // namespace lcrb
