#include "diffusion/lt.h"

#include "util/check.h"
#include "util/error.h"

namespace lcrb {

double lt_node_threshold(std::uint64_t seed, NodeId v) {
  std::uint64_t x = seed ^ (0x9e3779b97f4a7c15ULL * (v + 0x1234567));
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

DiffusionResult simulate_competitive_lt(const DiGraph& g, const SeedSets& seeds,
                                        std::uint64_t seed,
                                        const LtConfig& cfg) {
  validate_seeds(g, seeds);

  DiffusionResult r;
  r.state.assign(g.num_nodes(), NodeState::kInactive);
  r.activation_step.assign(g.num_nodes(), kUnreached);

  // Accumulated in-neighbor weight per color.
  std::vector<double> w_protected(g.num_nodes(), 0.0);
  std::vector<double> w_infected(g.num_nodes(), 0.0);

  std::vector<NodeId> frontier;  // newly activated nodes (both colors)
  auto activate = [&](NodeId v, NodeState s, std::uint32_t step) {
    r.state[v] = s;
    r.activation_step[v] = step;
    frontier.push_back(v);
  };
  for (NodeId v : seeds.protectors) activate(v, NodeState::kProtected, 0);
  for (NodeId v : seeds.rumors) activate(v, NodeState::kInfected, 0);
  r.newly_protected.push_back(static_cast<std::uint32_t>(seeds.protectors.size()));
  r.newly_infected.push_back(static_cast<std::uint32_t>(seeds.rumors.size()));

  std::vector<NodeId> candidates, next_frontier;
  for (std::uint32_t step = 1; step <= cfg.max_steps && !frontier.empty();
       ++step) {
    // Push the new activations' weight to their out-neighbors.
    candidates.clear();
    for (NodeId u : frontier) {
      const bool prot = r.state[u] == NodeState::kProtected;
      for (NodeId v : g.out_neighbors(u)) {
        if (r.state[v] != NodeState::kInactive) continue;
        const double w = 1.0 / static_cast<double>(g.in_degree(v));
        (prot ? w_protected[v] : w_infected[v]) += w;
        candidates.push_back(v);
      }
    }

    next_frontier.clear();
    std::uint32_t newly_p = 0, newly_r = 0;
    for (NodeId v : candidates) {
      if (r.state[v] != NodeState::kInactive) continue;  // dedup within step
      if (w_protected[v] + w_infected[v] >= lt_node_threshold(seed, v)) {
        // Color by the larger contribution; P wins ties.
        const NodeState s = (w_protected[v] >= w_infected[v])
                                ? NodeState::kProtected
                                : NodeState::kInfected;
        r.state[v] = s;
        r.activation_step[v] = step;
        next_frontier.push_back(v);
        (s == NodeState::kProtected ? newly_p : newly_r)++;
      }
    }
    frontier.swap(next_frontier);
    r.newly_protected.push_back(newly_p);
    r.newly_infected.push_back(newly_r);
    if (!frontier.empty()) r.steps = step;
  }
  LCRB_INVARIANT(r.validate(g, seeds));
  return r;
}

}  // namespace lcrb
