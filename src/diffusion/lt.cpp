#include "diffusion/lt.h"

#include "graph/ef_graph.h"
#include "graph/graph.h"

#include "diffusion/kernel.h"
#include "diffusion/lt_traits.h"
#include "util/check.h"
#include "util/error.h"

namespace lcrb {

// Flatten the kernel instantiation into the wrapper: leaving it as a comdat
// call costs ~10% on the small-cascade microbenchmarks.
template <GraphView G>
#if defined(__GNUC__)
__attribute__((flatten))
#endif
DiffusionResult simulate_competitive_lt(const G& g, const SeedSets& seeds,
                                        std::uint64_t seed,
                                        const LtConfig& cfg) {
  return run_cascade<LtTraits>(g, seeds, seed, cfg);
}

template DiffusionResult simulate_competitive_lt<DiGraph>(const DiGraph&,
                                                          const SeedSets&,
                                                          std::uint64_t,
                                                          const LtConfig&);
template DiffusionResult simulate_competitive_lt<EfGraph>(const EfGraph&,
                                                          const SeedSets&,
                                                          std::uint64_t,
                                                          const LtConfig&);

}  // namespace lcrb
