// Competitive Linear Threshold (extension model, after He et al.'s CLT [16]).
//
// Node v has threshold theta_v ~ U(0,1), hashed from (seed, v). Every in-arc
// carries weight 1/d_in(v). At each step an inactive node whose active
// in-neighbor weight reaches theta_v activates and adopts the color with the
// larger contributing weight (ties -> P, matching the paper's priority rule).
#pragma once

#include <cstdint>

#include "diffusion/cascade.h"

namespace lcrb {

struct LtConfig {
  std::uint32_t max_steps = 0xffffffff;
};

/// The stateless threshold draw theta_v ~ U(0,1) for (sample seed, node).
/// Exposed so the realization cache in `lcrb/sigma_engine.h` can materialize
/// each sample's threshold vector once. Defined inline so the traits-layer
/// instantiations in other translation units can inline it.
inline double lt_node_threshold(std::uint64_t seed, NodeId v) {
  std::uint64_t x = seed ^ (0x9e3779b97f4a7c15ULL * (v + 0x1234567));
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Simulates one competitive-LT sample. Deterministic in (g, seeds, seed).
template <GraphView G>
DiffusionResult simulate_competitive_lt(const G& g, const SeedSets& seeds,
                                        std::uint64_t seed,
                                        const LtConfig& cfg = {});

}  // namespace lcrb
