// Competitive-LT model traits (extension model, after He et al.'s CLT [16]):
// threshold theta_v ~ U(0,1) hashed from (seed, v), in-arc weight 1/d_in(v),
// color by the larger contributing weight with P on ties. The realization
// cache serves the threshold draw and the arc weights; the replay mirrors
// the Forward runner's iteration order exactly so every floating-point
// weight sum is bit-identical.
//
// No reverse sampler: competitive LT is not per-sample monotone (adding a
// protector can flip a tie-break chain and infect a previously-saved node),
// so RR-set coverage has no save semantics — kSupportsReverse is false and
// RIS rejects the model at construction.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "diffusion/kernel.h"
#include "diffusion/lt.h"

namespace lcrb {

struct LtTraits {
  static constexpr DiffusionModel kModel = DiffusionModel::kLt;
  static constexpr const char* kName = "LT";
  static constexpr bool kDeterministic = false;
  static constexpr bool kSupportsCache = true;
  static constexpr bool kSupportsReverse = false;

  using Config = LtConfig;
  using Trace = NoTrace;

  static Config config_from(const RealizationParams& p) {
    Config c;
    c.max_steps = p.max_hops;
    return c;
  }

  template <class G>
  class Forward {
   public:
    Forward(const G& g, std::uint64_t seed, const Config& /*cfg*/,
            Trace* /*trace*/)
        : g_(g), seed_(seed) {}

    void seed(const CascadePlan& plan, DiffusionResult& r) {
      w_.assign(plan.size(),
                std::vector<double>(g_.num_nodes(), 0.0));
      wp_.assign(g_.num_nodes(), 0.0);
      wi_.assign(g_.num_nodes(), 0.0);
      for (std::size_t i = 0; i < plan.size(); ++i) {
        const std::uint8_t k = plan.cascade_at(0, i);
        const NodeState s = plan.state_of(k);
        for (NodeId v : plan.seeds_of(k)) {
          r.state[v] = s;
          r.cascade[v] = k;
          r.activation_step[v] = 0;
          frontier_.push_back(v);
        }
      }
    }

    bool active() const { return !frontier_.empty(); }

    StepDelta step(const CascadePlan& plan, std::uint32_t step,
                   DiffusionResult& r) {
      // Push the new activations' weight to their out-neighbors, credited
      // to the pushing node's cascade. LT has no claim race — all weight
      // lands before any threshold check — so CascadePriority never changes
      // an LT outcome; the tie rules below are fixed (P beats R on equal
      // role sums, lowest id on equal weight within the winning role).
      candidates_.clear();
      for (NodeId u : frontier_) {
        const std::uint8_t ku = r.cascade[u];
        const bool prot = plan.role(ku) == CascadeRole::kProtector;
        for (NodeId v : g_.out_neighbors(u)) {
          if (r.state[v] != NodeState::kInactive) continue;
          const double w = 1.0 / static_cast<double>(g_.in_degree(v));
          w_[ku][v] += w;
          // Dedicated per-role accumulators drive the threshold and the
          // winner decision. Every increment to node v is the same constant
          // 1/d_in(v), so these sums depend only on the per-role contributor
          // COUNT, never on how the role is split into cascades — the
          // bit-exact role-separable collapse the cache/RIS engines and the
          // replay below rely on. (Summing the per-cascade partials instead
          // would round differently for K > 2.)
          (prot ? wp_ : wi_)[v] += w;
          candidates_.push_back(v);
        }
      }

      next_frontier_.clear();
      StepDelta d;
      const std::size_t kk = plan.size();
      for (NodeId v : candidates_) {
        if (r.state[v] != NodeState::kInactive) continue;  // dedup within step
        if (wp_[v] + wi_[v] >= lt_node_threshold(seed_, v)) {
          // Role winner by the aggregated role sums (P wins ties); the
          // heaviest cascade of the winning role takes the node.
          const CascadeRole win = (wp_[v] >= wi_[v]) ? CascadeRole::kProtector
                                                     : CascadeRole::kRumor;
          std::uint8_t best = kNoCascade;
          double best_w = -1.0;
          for (std::size_t k = 0; k < kk; ++k) {
            const auto kb = static_cast<std::uint8_t>(k);
            if (plan.role(kb) != win) continue;
            if (w_[k][v] > best_w) {
              best_w = w_[k][v];
              best = kb;
            }
          }
          r.state[v] = win == CascadeRole::kProtector ? NodeState::kProtected
                                                      : NodeState::kInfected;
          r.cascade[v] = best;
          r.activation_step[v] = step;
          next_frontier_.push_back(v);
          (win == CascadeRole::kProtector ? d.newly_protected
                                          : d.newly_infected)++;
        }
      }
      frontier_.swap(next_frontier_);
      return d;
    }

   private:
    const G& g_;
    std::uint64_t seed_;
    /// Accumulated in-neighbor weight per cascade (id-indexed) — attribution
    /// only; the threshold/winner decisions read the role accumulators.
    std::vector<std::vector<double>> w_;
    /// Per-role weight accumulators (protector / rumor), bit-identical to
    /// the two-cascade run on the role unions.
    std::vector<double> wp_, wi_;
    std::vector<NodeId> frontier_;  ///< newly activated nodes (all cascades)
    std::vector<NodeId> candidates_, next_frontier_;
  };

  // --- realization cache (threshold draw + shared arc weights) -------------

  /// Shared across samples: the arc weight 1/d_in(v) per node.
  struct CacheShared {
    std::vector<double> inv_in_deg;
  };

  /// One sample's threshold draw.
  struct CacheSample {
    std::vector<double> thr;
  };

  /// Replay working memory: epoch-stamped per-color weight accumulators
  /// (lazily zeroed on first touch per replay) plus the frontier buffers.
  struct ReplayScratch {
    explicit ReplayScratch(NodeId n) : w_epoch(n, 0), wp(n, 0.0), wi(n, 0.0) {}
    void on_epoch_wrap() {
      std::fill(w_epoch.begin(), w_epoch.end(), 0u);
    }
    std::vector<std::uint32_t> w_epoch;
    std::vector<double> wp, wi;
    std::vector<NodeId> frontier, next_frontier, candidates;
  };

  template <class G>
  static std::size_t estimated_cache_bytes(const G& g,
                                           std::size_t samples,
                                           std::uint32_t /*hops*/) {
    const std::size_t n = g.num_nodes();
    return samples * n * sizeof(double) + n * sizeof(double);
  }

  template <class G>
  static CacheShared build_cache_shared(const G& g) {
    CacheShared shared;
    shared.inv_in_deg.assign(g.num_nodes(), 0.0);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (g.in_degree(v) > 0) {
        shared.inv_in_deg[v] = 1.0 / static_cast<double>(g.in_degree(v));
      }
    }
    return shared;
  }

  template <class G>
  static void build_cache_sample(const G& g, const CacheShared&,
                                 std::uint64_t seed, DiffusionResult&& /*base*/,
                                 std::span<const NodeId> /*infected_targets*/,
                                 const RealizationParams& /*p*/,
                                 CacheSample& sp) {
    sp.thr.resize(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      sp.thr[v] = lt_node_threshold(seed, v);
    }
  }

  static std::size_t cache_shared_bytes(const CacheShared& shared) {
    return shared.inv_in_deg.capacity() * sizeof(double);
  }

  static std::size_t cache_sample_bytes(const CacheSample& sp) {
    return sp.thr.capacity() * sizeof(double);
  }

  /// Identical control flow to the Forward runner, with the threshold draw
  /// and the arc weights served from the cache; protectors are already
  /// stamped kColorP by the caller. Returns the elementary-op count.
  template <class G>
  static std::uint64_t replay(const G& g, const CacheShared& shared,
                              const CacheSample& sp,
                              std::span<const NodeId> rumors,
                              std::span<const NodeId> protectors,
                              EpochColorScratch& color, ReplayScratch& rs,
                              const RealizationParams& p) {
    const std::uint32_t e = color.epoch;
    rs.frontier.clear();
    for (NodeId v : protectors) rs.frontier.push_back(v);
    for (NodeId v : rumors) {
      color.color_epoch[v] = e;
      color.color[v] = kColorR;
      rs.frontier.push_back(v);
    }

    auto colored = [&](NodeId v) { return color.color_epoch[v] == e; };

    std::uint64_t ops = 0;
    for (std::uint32_t t = 1; t <= p.max_hops && !rs.frontier.empty(); ++t) {
      rs.candidates.clear();
      for (NodeId u : rs.frontier) {
        const bool prot = color.color[u] == kColorP;
        ops += g.out_degree(u);
        for (NodeId v : g.out_neighbors(u)) {
          if (colored(v)) continue;
          if (rs.w_epoch[v] != e) {
            rs.w_epoch[v] = e;
            rs.wp[v] = 0.0;
            rs.wi[v] = 0.0;
          }
          (prot ? rs.wp[v] : rs.wi[v]) += shared.inv_in_deg[v];
          rs.candidates.push_back(v);
        }
      }
      rs.next_frontier.clear();
      for (NodeId v : rs.candidates) {
        if (colored(v)) continue;  // dedup within step
        if (rs.wp[v] + rs.wi[v] >= sp.thr[v]) {
          color.color_epoch[v] = e;
          color.color[v] = (rs.wp[v] >= rs.wi[v]) ? kColorP : kColorR;
          rs.next_frontier.push_back(v);
        }
      }
      rs.frontier.swap(rs.next_frontier);
    }
    return ops;
  }

  static bool replay_infected(const CacheSample& /*sp*/,
                              const EpochColorScratch& color,
                              const ReplayScratch& /*rs*/, NodeId v,
                              bool /*base_infected*/) {
    return color.colored(v) && color.color[v] == kColorR;
  }
};

}  // namespace lcrb
