// The model-traits layer: one compile-time contract that every diffusion
// model implements, and the runtime-enum -> compile-time-traits dispatcher.
//
// A traits struct (OpoaoTraits, DoamTraits, IcTraits, LtTraits, WcTraits)
// is the single place its model's semantics live. The contract:
//
//   flags     kModel, kName, kDeterministic (one sample suffices),
//             kSupportsCache (realization cache), kSupportsReverse (RIS)
//   forward   Config, Trace, config_from(RealizationParams),
//             Forward(g, seed, cfg, trace) with seed(plan, r) / active() /
//             step(plan, step, r) over a CascadePlan (K cascades in priority
//             order) — consumed by run_cascade<Traits> (kernel.h)
//   cache     [kSupportsCache] CacheShared/CacheSample/ReplayScratch,
//             build_cache_shared/build_cache_sample, replay,
//             replay_infected, *_bytes — consumed by SigmaEngine
//   reverse   [kSupportsReverse] build_reverse_shared, reverse_set —
//             consumed by RrSampler
//
// Capability flags are checked with `if constexpr`, so a model without a
// capability simply omits those members. Everything downstream — simulate(),
// Monte-Carlo, the sigma engines, RIS, the query service, the CLI — is
// generic over this contract: adding a model is one traits file plus a
// DiffusionModel enum entry (wc_traits.h is the worked example; the recipe
// is in docs/architecture.md).
#pragma once

#include "diffusion/doam_traits.h"
#include "diffusion/ic_traits.h"
#include "diffusion/kernel.h"
#include "diffusion/lt_traits.h"
#include "diffusion/opoao_traits.h"
#include "diffusion/wc_traits.h"
#include "util/error.h"

namespace lcrb {

/// Maps a runtime DiffusionModel onto its compile-time traits: calls
/// f(Traits{}) for the matching traits type and returns its result. The
/// traits value is an empty tag — use `using T = decltype(t)` inside f.
template <class F>
decltype(auto) dispatch_model(DiffusionModel m, F&& f) {
  switch (m) {
    case DiffusionModel::kOpoao: return f(OpoaoTraits{});
    case DiffusionModel::kDoam: return f(DoamTraits{});
    case DiffusionModel::kIc: return f(IcTraits{});
    case DiffusionModel::kLt: return f(LtTraits{});
    case DiffusionModel::kWc: return f(WcTraits{});
  }
  throw Error("unknown diffusion model");
}

}  // namespace lcrb
