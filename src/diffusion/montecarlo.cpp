#include "diffusion/montecarlo.h"

#include "graph/ef_graph.h"
#include "graph/graph.h"

#include "diffusion/kernel.h"
#include "diffusion/model_traits.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"

namespace lcrb {

// Flatten the kernel instantiation into the wrapper: leaving it as a comdat
// call costs ~10% on the small-cascade microbenchmarks.
template <GraphView G>
#if defined(__GNUC__)
__attribute__((flatten))
#endif
DiffusionResult simulate(const G& g, const SeedSets& seeds,
                         std::uint64_t seed, const MonteCarloConfig& cfg) {
  const RealizationParams params{cfg.max_hops, cfg.ic_edge_prob};
  return dispatch_model(cfg.model, [&](auto t) {
    using T = decltype(t);
    return run_cascade<T>(g, seeds, seed, T::config_from(params));
  });
}

template <GraphView G>
HopSeries monte_carlo_series(const G& g, const SeedSets& seeds,
                             const MonteCarloConfig& cfg,
                             std::span<const NodeId> targets,
                             ThreadPool* pool) {
  LCRB_REQUIRE(cfg.runs >= 1, "need at least one Monte-Carlo run");
  validate_seeds(g, seeds);

  // A deterministic model (DOAM): extra runs would just repeat the same
  // trajectory.
  const bool deterministic =
      dispatch_model(cfg.model, [](auto t) { return decltype(t)::kDeterministic; });
  const std::size_t runs = deterministic ? 1 : cfg.runs;

  const std::size_t hops = static_cast<std::size_t>(cfg.max_hops) + 1;

  // Each run writes its raw per-hop counts into a preassigned slot of these
  // flat runs-by-hops arrays; the RunningStats accumulation happens serially
  // afterwards, in run order. Welford updates are order-dependent in floating
  // point, so feeding them in a fixed order (instead of mutex-guarded arrival
  // order) is what makes the series bit-identical across thread counts.
  std::vector<double> inf_c(runs * hops), prot_c(runs * hops);
  std::vector<double> fi(runs), fp(runs), sf(runs);

  Rng master(cfg.seed);
  auto run_one = [&](std::size_t i) {
    const std::uint64_t run_seed = master.fork(i).next();
    const DiffusionResult r = simulate(g, seeds, run_seed, cfg);
    for (std::size_t h = 0; h < hops; ++h) {
      inf_c[i * hops + h] =
          static_cast<double>(r.cumulative_infected_at(static_cast<std::uint32_t>(h)));
      prot_c[i * hops + h] =
          static_cast<double>(r.cumulative_protected_at(static_cast<std::uint32_t>(h)));
    }
    fi[i] = static_cast<double>(r.infected_count());
    fp[i] = static_cast<double>(r.protected_count());
    sf[i] = r.saved_fraction(targets);
  };

  if (pool != nullptr && runs > 1) {
    pool->parallel_for(runs, run_one);
  } else {
    for (std::size_t i = 0; i < runs; ++i) run_one(i);
  }

  std::vector<RunningStats> infected(hops), prot(hops);
  RunningStats final_inf, final_prot, saved;
  for (std::size_t i = 0; i < runs; ++i) {
    for (std::size_t h = 0; h < hops; ++h) {
      infected[h].add(inf_c[i * hops + h]);
      prot[h].add(prot_c[i * hops + h]);
    }
    final_inf.add(fi[i]);
    final_prot.add(fp[i]);
    saved.add(sf[i]);
  }

  HopSeries out;
  out.runs = runs;
  out.infected_mean.resize(hops);
  out.infected_ci95.resize(hops);
  out.protected_mean.resize(hops);
  for (std::size_t h = 0; h < hops; ++h) {
    out.infected_mean[h] = infected[h].mean();
    out.infected_ci95[h] = infected[h].ci95_halfwidth();
    out.protected_mean[h] = prot[h].mean();
  }
  out.final_infected_mean = final_inf.mean();
  out.final_protected_mean = final_prot.mean();
  out.saved_fraction_mean = saved.mean();
  return out;
}

template <GraphView G>
double expected_saved(const G& g, const SeedSets& seeds,
                      std::span<const NodeId> targets,
                      const MonteCarloConfig& cfg, ThreadPool* pool) {
  const HopSeries s = monte_carlo_series(g, seeds, cfg, targets, pool);
  return s.saved_fraction_mean * static_cast<double>(targets.size());
}

#define LCRB_INSTANTIATE_MONTECARLO(G)                                        \
  template DiffusionResult simulate<G>(const G&, const SeedSets&,             \
                                       std::uint64_t,                         \
                                       const MonteCarloConfig&);              \
  template HopSeries monte_carlo_series<G>(const G&, const SeedSets&,         \
                                           const MonteCarloConfig&,           \
                                           std::span<const NodeId>,           \
                                           ThreadPool*);                      \
  template double expected_saved<G>(const G&, const SeedSets&,                \
                                    std::span<const NodeId>,                  \
                                    const MonteCarloConfig&, ThreadPool*);

LCRB_INSTANTIATE_MONTECARLO(DiGraph)
LCRB_INSTANTIATE_MONTECARLO(EfGraph)

#undef LCRB_INSTANTIATE_MONTECARLO

}  // namespace lcrb
