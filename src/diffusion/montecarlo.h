// Monte-Carlo harness: repeated two-cascade simulations with per-hop
// aggregation. This is what produces the paper's Figs. 4-9 series and the
// sigma-estimates inside the LCRB-P greedy.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "diffusion/cascade.h"
#include "util/threadpool.h"

namespace lcrb {

struct MonteCarloConfig {
  std::size_t runs = 200;       ///< samples (DOAM is deterministic: 1 enough)
  std::uint64_t seed = 1;       ///< master seed; run i uses an forked stream
  std::uint32_t max_hops = 31;  ///< series length (paper plots 31 hops)
  DiffusionModel model = DiffusionModel::kOpoao;
  double ic_edge_prob = 0.1;    ///< only for kIc
};

/// Dispatches one simulation of the configured model.
template <GraphView G>
DiffusionResult simulate(const G& g, const SeedSets& seeds,
                         std::uint64_t seed, const MonteCarloConfig& cfg);

/// Per-hop aggregates over `runs` simulations.
struct HopSeries {
  std::vector<double> infected_mean;    ///< cumulative infected at hop h
  std::vector<double> infected_ci95;    ///< 95% CI half-width
  std::vector<double> protected_mean;   ///< cumulative protected at hop h
  double final_infected_mean = 0.0;
  double final_protected_mean = 0.0;
  /// Mean fraction of `targets` (bridge ends) ending uninfected; 1.0 when no
  /// targets were supplied.
  double saved_fraction_mean = 1.0;
  std::size_t runs = 0;
};

/// Runs the Monte-Carlo sweep, optionally on a shared thread pool. Results
/// are deterministic in cfg.seed and bit-identical regardless of threading:
/// per-run statistics are recorded into per-run slots and reduced serially
/// in run order.
template <GraphView G>
HopSeries monte_carlo_series(const G& g, const SeedSets& seeds,
                             const MonteCarloConfig& cfg,
                             std::span<const NodeId> targets = {},
                             ThreadPool* pool = nullptr);

/// Expected number of `targets` ending uninfected (the sigma-hat estimator).
template <GraphView G>
double expected_saved(const G& g, const SeedSets& seeds,
                      std::span<const NodeId> targets,
                      const MonteCarloConfig& cfg, ThreadPool* pool = nullptr);

}  // namespace lcrb
