#include "diffusion/opoao.h"

#include "graph/ef_graph.h"
#include "graph/graph.h"

#include <vector>

#include "diffusion/kernel.h"
#include "diffusion/opoao_traits.h"
#include "util/check.h"
#include "util/error.h"

namespace lcrb {

namespace {

/// Map a cascade color to its slot in the trace index; kInactive has none.
int color_slot(NodeState color) {
  switch (color) {
    case NodeState::kProtected: return 0;
    case NodeState::kInfected: return 1;
    case NodeState::kInactive: break;
  }
  return -1;
}

}  // namespace

std::uint32_t OpoaoTrace::first_pick_step(NodeId u, NodeId v,
                                          NodeState color) const {
  const int slot = color_slot(color);
  if (slot < 0) return kUnreached;
  if (indexed_picks_ > picks.size()) {
    // The log shrank — not an append. Drop the index and start over.
    first_pick_.clear();
    indexed_picks_ = 0;
  }
  if (indexed_picks_ < picks.size()) {
    // Min-merge only the picks appended since the last query: the index is
    // a running minimum per (edge, color), so new entries can only tighten
    // it. An append-then-query loop costs O(new picks), not O(|trace|).
    first_pick_.reserve(picks.size());
    for (std::size_t k = indexed_picks_; k < picks.size(); ++k) {
      const OpoaoPick& p = picks[k];
      const std::uint64_t key =
          (static_cast<std::uint64_t>(p.from) << 32) | p.to;
      auto [it, inserted] =
          first_pick_.try_emplace(key, std::array<std::uint32_t, 2>{
                                           kUnreached, kUnreached});
      auto& steps = it->second;
      const int s = color_slot(p.cascade);
      if (s >= 0) steps[s] = std::min(steps[s], p.step);
    }
    indexed_picks_ = picks.size();
  }
  const auto it =
      first_pick_.find((static_cast<std::uint64_t>(u) << 32) | v);
  return it == first_pick_.end() ? kUnreached : it->second[slot];
}

// Flatten the kernel instantiation into the wrapper: leaving it as a comdat
// call costs ~10% on the small-cascade microbenchmarks.
template <GraphView G>
#if defined(__GNUC__)
__attribute__((flatten))
#endif
DiffusionResult simulate_opoao(const G& g, const SeedSets& seeds,
                               std::uint64_t seed, const OpoaoConfig& cfg,
                               OpoaoTrace* trace) {
  return run_cascade<OpoaoTraits>(g, seeds, seed, cfg, trace);
}

template DiffusionResult simulate_opoao<DiGraph>(const DiGraph&,
                                                 const SeedSets&,
                                                 std::uint64_t,
                                                 const OpoaoConfig&,
                                                 OpoaoTrace*);
template DiffusionResult simulate_opoao<EfGraph>(const EfGraph&,
                                                 const SeedSets&,
                                                 std::uint64_t,
                                                 const OpoaoConfig&,
                                                 OpoaoTrace*);

}  // namespace lcrb
