#include "diffusion/opoao.h"

#include <vector>

#include "util/check.h"
#include "util/error.h"

namespace lcrb {

std::uint64_t opoao_pick_hash(std::uint64_t seed, NodeId v,
                              std::uint32_t step) {
  std::uint64_t x = seed;
  x ^= (static_cast<std::uint64_t>(v) + 1) * 0x9e3779b97f4a7c15ULL;
  x ^= (static_cast<std::uint64_t>(step) + 1) * 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

namespace {

/// Map a cascade color to its slot in the trace index; kInactive has none.
int color_slot(NodeState color) {
  switch (color) {
    case NodeState::kProtected: return 0;
    case NodeState::kInfected: return 1;
    case NodeState::kInactive: break;
  }
  return -1;
}

}  // namespace

std::uint32_t OpoaoTrace::first_pick_step(NodeId u, NodeId v,
                                          NodeState color) const {
  const int slot = color_slot(color);
  if (slot < 0) return kUnreached;
  if (indexed_picks_ > picks.size()) {
    // The log shrank — not an append. Drop the index and start over.
    first_pick_.clear();
    indexed_picks_ = 0;
  }
  if (indexed_picks_ < picks.size()) {
    // Min-merge only the picks appended since the last query: the index is
    // a running minimum per (edge, color), so new entries can only tighten
    // it. An append-then-query loop costs O(new picks), not O(|trace|).
    first_pick_.reserve(picks.size());
    for (std::size_t k = indexed_picks_; k < picks.size(); ++k) {
      const OpoaoPick& p = picks[k];
      const std::uint64_t key =
          (static_cast<std::uint64_t>(p.from) << 32) | p.to;
      auto [it, inserted] =
          first_pick_.try_emplace(key, std::array<std::uint32_t, 2>{
                                           kUnreached, kUnreached});
      auto& steps = it->second;
      const int s = color_slot(p.cascade);
      if (s >= 0) steps[s] = std::min(steps[s], p.step);
    }
    indexed_picks_ = picks.size();
  }
  const auto it =
      first_pick_.find((static_cast<std::uint64_t>(u) << 32) | v);
  return it == first_pick_.end() ? kUnreached : it->second[slot];
}

DiffusionResult simulate_opoao(const DiGraph& g, const SeedSets& seeds,
                               std::uint64_t seed, const OpoaoConfig& cfg,
                               OpoaoTrace* trace) {
  validate_seeds(g, seeds);

  DiffusionResult r;
  r.state.assign(g.num_nodes(), NodeState::kInactive);
  r.activation_step.assign(g.num_nodes(), kUnreached);

  std::vector<NodeId> protectors, rumors;
  // `potential[v]`: number of still-inactive out-neighbors of active node v.
  // The simulation can stop exactly when the sum over active nodes is zero.
  std::vector<std::uint32_t> potential(g.num_nodes(), 0);
  std::size_t active_with_potential = 0;

  auto activate = [&](NodeId v, NodeState s, std::uint32_t step) {
    r.state[v] = s;
    r.activation_step[v] = step;
    // Newly active node: count its inactive out-neighbors.
    std::uint32_t cnt = 0;
    for (NodeId w : g.out_neighbors(v)) {
      if (r.state[w] == NodeState::kInactive) ++cnt;
    }
    potential[v] = cnt;
    if (cnt > 0) ++active_with_potential;
    // Tell active in-neighbors they lost an inactive target.
    for (NodeId w : g.in_neighbors(v)) {
      if (r.state[w] != NodeState::kInactive && potential[w] > 0) {
        if (--potential[w] == 0) --active_with_potential;
      }
    }
    auto& pool = (s == NodeState::kProtected) ? protectors : rumors;
    pool.push_back(v);
  };

  r.newly_protected.push_back(static_cast<std::uint32_t>(seeds.protectors.size()));
  r.newly_infected.push_back(static_cast<std::uint32_t>(seeds.rumors.size()));
  // Seed protectors before rumors so a protector seed adjacent to a rumor
  // seed is counted consistently (seed sets are disjoint anyway).
  for (NodeId v : seeds.protectors) activate(v, NodeState::kProtected, 0);
  for (NodeId v : seeds.rumors) activate(v, NodeState::kInfected, 0);

  std::vector<NodeId> new_protected, new_infected;
  for (std::uint32_t step = 1;
       step <= cfg.max_steps && active_with_potential > 0; ++step) {
    new_protected.clear();
    new_infected.clear();

    // All picks are based on the state at the *start* of the step; applying
    // protector picks first gives P priority on simultaneous arrival.
    for (NodeId u : protectors) {
      const auto nbrs = g.out_neighbors(u);
      if (nbrs.empty()) continue;
      const NodeId target = nbrs[opoao_pick_hash(seed, u, step) % nbrs.size()];
      const bool claimed = r.state[target] == NodeState::kInactive;
      if (claimed) {
        r.state[target] = NodeState::kProtected;  // claim immediately
        new_protected.push_back(target);
      }
      if (trace != nullptr) {
        trace->picks.push_back(
            {step, u, target, NodeState::kProtected, claimed});
      }
    }
    for (NodeId u : rumors) {
      const auto nbrs = g.out_neighbors(u);
      if (nbrs.empty()) continue;
      const NodeId target = nbrs[opoao_pick_hash(seed, u, step) % nbrs.size()];
      const bool claimed = r.state[target] == NodeState::kInactive;
      if (claimed) {
        r.state[target] = NodeState::kInfected;
        new_infected.push_back(target);
      }
      if (trace != nullptr) {
        trace->picks.push_back(
            {step, u, target, NodeState::kInfected, claimed});
      }
    }

    // Finalize activations (bookkeeping wants state transitions via
    // activate(), so temporarily reset and re-apply).
    for (NodeId v : new_protected) r.state[v] = NodeState::kInactive;
    for (NodeId v : new_infected) r.state[v] = NodeState::kInactive;
    for (NodeId v : new_protected) activate(v, NodeState::kProtected, step);
    for (NodeId v : new_infected) activate(v, NodeState::kInfected, step);

    r.newly_protected.push_back(static_cast<std::uint32_t>(new_protected.size()));
    r.newly_infected.push_back(static_cast<std::uint32_t>(new_infected.size()));
    if (!new_protected.empty() || !new_infected.empty()) r.steps = step;
  }
  LCRB_INVARIANT(r.validate(g, seeds));
  return r;
}

}  // namespace lcrb
