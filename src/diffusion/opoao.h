// Opportunistic One-Activate-One (OPOAO) model (paper §III-A).
//
// Every step, EVERY active node picks one uniformly-random out-neighbor
// (repeat selection allowed — see the paper's Fig. 1 where x re-picks u at
// step 2). An inactive target activates at t+1 with the picker's color;
// protector picks are applied before rumor picks, which realizes the
// "P wins simultaneous arrival" rule.
//
// Randomness is stateless per (sample seed, node, step): the sample seed
// fixes which neighbor every node WOULD pick at every step, independent of
// when (or whether) the node activates. This is exactly the paper's
// timestamped random graphs G_R/G_P (§V-A); under it, runs with different
// protector sets are fully coupled, and the per-sample saved set |PB(S)| is
// monotone and submodular (Lemma 4) — verified exhaustively in
// tests/lcrb/lemma_test.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "diffusion/cascade.h"

namespace lcrb {

struct OpoaoConfig {
  /// Hop cap; the simulation also stops exactly when no active node has an
  /// inactive out-neighbor (nothing can ever activate after that).
  std::uint32_t max_steps = 10000;
};

/// The stateless pick stream: which slot of v's out-neighbor list node v
/// would target at absolute step `step`, as a raw 64-bit draw (take it mod
/// out_degree(v)). A pure function of (sample seed, node, step) — this IS
/// the paper's random graph G_R/G_P. Exposed so the realization cache in
/// `lcrb/sigma_engine.h` can materialize each sample's pick tables once.
/// Defined inline: it sits on the innermost loop of every forward run,
/// cache build, and RR draw, which the traits layer instantiates across
/// several translation units.
inline std::uint64_t opoao_pick_hash(std::uint64_t seed, NodeId v,
                                     std::uint32_t step) {
  std::uint64_t x = seed;
  x ^= (static_cast<std::uint64_t>(v) + 1) * 0x9e3779b97f4a7c15ULL;
  x ^= (static_cast<std::uint64_t>(step) + 1) * 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// One activation attempt: active node `from` picked out-neighbor `to` at
/// `step`; `activated` records whether the pick claimed the target. This is
/// the paper's timestamp assignment (§V-A, Fig. 1): the pick at step t by a
/// node of cascade c stamps edge (from, to) with "t_c".
struct OpoaoPick {
  std::uint32_t step;
  NodeId from;
  NodeId to;
  NodeState cascade;  ///< color of the picking node
  bool activated;     ///< target was inactive and adopted `cascade`
};

/// Full pick log of one simulation, in execution order (protector picks of a
/// step precede rumor picks — exactly the priority rule).
struct OpoaoTrace {
  std::vector<OpoaoPick> picks;

  /// Smallest step at which `color` picked edge (u, v) — the simplified
  /// timestamp of Fig. 1(b); kUnreached if the edge was never picked by
  /// that cascade. O(1) amortized: an edge index is built lazily on first
  /// query and extended incrementally when `picks` grew since (append-only
  /// log assumed; a shrink triggers a full rebuild). Not safe to call
  /// concurrently with other first_pick_step calls (the lazy index is
  /// shared).
  std::uint32_t first_pick_step(NodeId u, NodeId v, NodeState color) const;

 private:
  /// (from << 32 | to) -> first pick step per cascade color {P, R}.
  mutable std::unordered_map<std::uint64_t, std::array<std::uint32_t, 2>>
      first_pick_;
  mutable std::size_t indexed_picks_ = 0;  ///< picks.size() at index build
};

/// Simulates one OPOAO diffusion. Deterministic in (g, seeds, seed).
/// Pass `trace` to capture the pick log (costs memory proportional to
/// active-nodes x steps; leave null in Monte-Carlo loops).
template <GraphView G>
DiffusionResult simulate_opoao(const G& g, const SeedSets& seeds,
                               std::uint64_t seed, const OpoaoConfig& cfg = {},
                               OpoaoTrace* trace = nullptr);

}  // namespace lcrb
