// OPOAO model traits: the single semantic source of truth for the paper's
// Opportunistic One-Activate-One model (§III-A). Everything OPOAO-specific —
// the forward pick loop, the realization-cache pick tables + divergence-step
// replay, and the reverse temporal RR search — lives here; kernel.h,
// sigma_engine.cpp and ris.cpp instantiate it generically. See
// model_traits.h for the traits contract.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "diffusion/kernel.h"
#include "diffusion/opoao.h"
#include "util/check.h"

namespace lcrb {

struct OpoaoTraits {
  static constexpr DiffusionModel kModel = DiffusionModel::kOpoao;
  static constexpr const char* kName = "OPOAO";
  static constexpr bool kDeterministic = false;
  static constexpr bool kSupportsCache = true;
  static constexpr bool kSupportsReverse = true;

  using Config = OpoaoConfig;
  using Trace = OpoaoTrace;

  static Config config_from(const RealizationParams& p) {
    Config c;
    c.max_steps = p.max_hops;
    return c;
  }

  // -------------------------------------------------------------------------
  // Forward runner (run_cascade<OpoaoTraits>).
  //
  // Every step, EVERY active node picks one uniformly-random out-neighbor
  // from the stateless (seed, node, step) pick stream; an inactive target
  // activates at t+1 with the picker's cascade. Cascades pick in the plan's
  // priority order (default: protectors first). The runner keeps per-node
  // counts of still-inactive out-neighbors so the simulation stops exactly
  // when nothing can ever activate again.
  // -------------------------------------------------------------------------
  template <class G>
  class Forward {
   public:
    Forward(const G& g, std::uint64_t seed, const Config& /*cfg*/,
            Trace* trace)
        : g_(g), seed_(seed), trace_(trace), potential_(g.num_nodes(), 0) {}

    void seed(const CascadePlan& plan, DiffusionResult& r) {
      pools_.resize(plan.size());
      new_by_cascade_.resize(plan.size());
      for (std::size_t i = 0; i < plan.size(); ++i) {
        const std::uint8_t k = plan.cascade_at(0, i);
        for (NodeId v : plan.seeds_of(k)) activate(v, k, plan, 0, r);
      }
    }

    bool active() const { return active_with_potential_ > 0; }

    StepDelta step(const CascadePlan& plan, std::uint32_t step,
                   DiffusionResult& r) {
      for (auto& list : new_by_cascade_) list.clear();

      // All picks are based on the state at the *start* of the step;
      // applying picks in priority order gives the earlier cascade the node
      // on simultaneous arrival (default plan: P beats R).
      for (std::size_t i = 0; i < plan.size(); ++i) {
        const std::uint8_t k = plan.cascade_at(step, i);
        const NodeState s = plan.state_of(k);
        for (NodeId u : pools_[k]) {
          const auto nbrs = g_.out_neighbors(u);
          if (nbrs.empty()) continue;
          const NodeId target =
              nbrs[opoao_pick_hash(seed_, u, step) % nbrs.size()];
          const bool claimed = r.state[target] == NodeState::kInactive;
          if (claimed) {
            r.state[target] = s;  // claim immediately
            new_by_cascade_[k].push_back(target);
          }
          if (trace_ != nullptr) {
            trace_->picks.push_back({step, u, target, s, claimed});
          }
        }
      }

      // Finalize activations (bookkeeping wants state transitions via
      // activate(), so temporarily reset and re-apply, in priority order).
      StepDelta d;
      for (std::size_t i = 0; i < plan.size(); ++i) {
        for (NodeId v : new_by_cascade_[plan.cascade_at(step, i)]) {
          r.state[v] = NodeState::kInactive;
        }
      }
      for (std::size_t i = 0; i < plan.size(); ++i) {
        const std::uint8_t k = plan.cascade_at(step, i);
        for (NodeId v : new_by_cascade_[k]) activate(v, k, plan, step, r);
        const auto cnt = static_cast<std::uint32_t>(new_by_cascade_[k].size());
        (plan.role(k) == CascadeRole::kProtector ? d.newly_protected
                                                 : d.newly_infected) += cnt;
      }
      return d;
    }

   private:
    void activate(NodeId v, std::uint8_t k, const CascadePlan& plan,
                  std::uint32_t step, DiffusionResult& r) {
      r.state[v] = plan.state_of(k);
      r.cascade[v] = k;
      r.activation_step[v] = step;
      // Newly active node: count its inactive out-neighbors.
      std::uint32_t cnt = 0;
      for (NodeId w : g_.out_neighbors(v)) {
        if (r.state[w] == NodeState::kInactive) ++cnt;
      }
      potential_[v] = cnt;
      if (cnt > 0) ++active_with_potential_;
      // Tell active in-neighbors they lost an inactive target.
      for (NodeId w : g_.in_neighbors(v)) {
        if (r.state[w] != NodeState::kInactive && potential_[w] > 0) {
          if (--potential_[w] == 0) --active_with_potential_;
        }
      }
      pools_[k].push_back(v);
    }

    const G& g_;
    std::uint64_t seed_;
    Trace* trace_;
    /// Active nodes per cascade, in activation order.
    std::vector<std::vector<NodeId>> pools_;
    /// `potential_[v]`: number of still-inactive out-neighbors of active
    /// node v. The simulation can stop exactly when the sum over active
    /// nodes is zero.
    std::vector<std::uint32_t> potential_;
    std::size_t active_with_potential_ = 0;
    std::vector<std::vector<NodeId>> new_by_cascade_;
  };

  // -------------------------------------------------------------------------
  // Realization cache (SigmaEngine).
  //
  // Per sample: a flat pick table (each (seed, v, step) hashed exactly once)
  // plus the rumor-only baseline activation schedule. A replay simulates
  // only the protector cascade and feeds the rumor side from the cached
  // schedule until the first protector claim that invalidates it (the
  // "divergence step"), after which the rumor side is simulated from the
  // tables too. Sound because picks are color- and state-independent.
  // -------------------------------------------------------------------------

  /// Shared across samples: the pick-table row per node (rows exist only
  /// for out-degree>0 nodes; kUnreached otherwise).
  struct CacheShared {
    std::vector<std::uint32_t> pick_row;
    std::size_t num_rows = 0;
  };

  /// One sample's materialized randomness + baseline schedule.
  struct CacheSample {
    /// Flat pick table, step-major: entry [(t-1) * num_rows + r] with
    /// r = pick_row[v] is the node v would target at step t. Step-major
    /// keeps each step's replay inside one contiguous slab of the table
    /// (node-major strides the whole table every step and thrashes cache).
    std::vector<NodeId> picks;
    /// Rumor-only activation step per node (kUnreached if never infected).
    std::vector<std::uint32_t> base_step;
    /// Baseline-infected nodes ordered by (step, id) — the replay schedule.
    std::vector<NodeId> sched;
    /// sched slice for step s is [step_off[s], step_off[s+1]).
    std::vector<std::uint32_t> step_off;
  };

  /// Replay working memory: pick-table ROW indices of colored nodes with
  /// out-edges, in activation order. Presized to num_nodes — a node enters
  /// a pool at most once, so the replay can append through raw pointers
  /// with no growth checks.
  struct ReplayScratch {
    explicit ReplayScratch(NodeId num_nodes)
        : p_pool(num_nodes), r_pool(num_nodes) {}
    void on_epoch_wrap() {}  // no stamped arrays of its own
    std::vector<std::uint32_t> p_pool, r_pool;
  };

  template <class G>
  static std::size_t estimated_cache_bytes(const G& g,
                                           std::size_t samples,
                                           std::uint32_t hops) {
    std::size_t rows = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (g.out_degree(v) > 0) ++rows;
    }
    return samples * (rows * hops * sizeof(NodeId) +
                      g.num_nodes() * (2 * sizeof(std::uint32_t)));
  }

  template <class G>
  static CacheShared build_cache_shared(const G& g) {
    CacheShared shared;
    shared.pick_row.assign(g.num_nodes(), kUnreached);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (g.out_degree(v) > 0) {
        shared.pick_row[v] = static_cast<std::uint32_t>(shared.num_rows++);
      }
    }
    return shared;
  }

  template <class G>
  static void build_cache_sample(const G& g, const CacheShared& shared,
                                 std::uint64_t seed, DiffusionResult&& base,
                                 std::span<const NodeId> /*infected_targets*/,
                                 const RealizationParams& p, CacheSample& sp) {
    const std::uint32_t hops = p.max_hops;
    // Pick tables: hash each (seed, v, step) exactly once.
    sp.picks.resize(shared.num_rows * hops);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const std::uint32_t row = shared.pick_row[v];
      if (row == kUnreached) continue;
      const auto nbrs = g.out_neighbors(v);
      for (std::uint32_t t = 1; t <= hops; ++t) {
        sp.picks[static_cast<std::size_t>(t - 1) * shared.num_rows + row] =
            nbrs[opoao_pick_hash(seed, v, t) % nbrs.size()];
      }
    }
    // Baseline schedule: infected nodes bucketed by activation step
    // (counting sort keeps it deterministic: ascending id within a step).
    sp.step_off.assign(static_cast<std::size_t>(hops) + 2, 0);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const std::uint32_t t = base.activation_step[v];
      if (t != kUnreached) ++sp.step_off[t + 1];
    }
    for (std::size_t s = 1; s < sp.step_off.size(); ++s) {
      sp.step_off[s] += sp.step_off[s - 1];
    }
    sp.sched.resize(sp.step_off.back());
    {
      std::vector<std::uint32_t> cursor(sp.step_off.begin(),
                                        sp.step_off.end() - 1);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        const std::uint32_t t = base.activation_step[v];
        if (t != kUnreached) sp.sched[cursor[t]++] = v;
      }
    }
    sp.base_step = std::move(base.activation_step);
  }

  static std::size_t cache_shared_bytes(const CacheShared& shared) {
    return shared.pick_row.capacity() * sizeof(std::uint32_t);
  }

  static std::size_t cache_sample_bytes(const CacheSample& sp) {
    return sp.picks.capacity() * sizeof(NodeId) +
           sp.base_step.capacity() * sizeof(std::uint32_t) +
           sp.sched.capacity() * sizeof(NodeId) +
           sp.step_off.capacity() * sizeof(std::uint32_t);
  }

  /// Replays one sample with cascade P seeded at `protectors` (already
  /// stamped kColorP in `color` by the caller). Returns the elementary-op
  /// count.
  ///
  /// Phase 1: the rumor side is fed from the cached baseline schedule —
  /// exact as long as no protector claim cuts a node the baseline rumor
  /// cascade claims later. When cascade P claims node v with finite baseline
  /// rumor time T0(v), the schedule is provably valid for every step before
  /// T0(v) (picks are color-independent, so rumor picks cannot change before
  /// the first voided baseline activation); the earliest such T0 is the
  /// divergence step D. From step D on, the rumor side is simulated from the
  /// pick tables like the protector side (phase 2).
  ///
  /// The replay deliberately does NOT mirror the Forward runner's potential
  /// bookkeeping (per-node counts of uncolored out-neighbors): that
  /// machinery only drives the simulator's early exit and costs in+out
  /// neighbor scans for every activation. Claims never depend on it, so the
  /// replay tracks a single uncolored-node counter instead — reaching zero
  /// is an exact stop — and each pooled node costs one table lookup per
  /// step, touching no adjacency.
  template <class G>
  static std::uint64_t replay(const G& g, const CacheShared& shared,
                              const CacheSample& sp,
                              std::span<const NodeId> /*rumors*/,
                              std::span<const NodeId> protectors,
                              EpochColorScratch& color, ReplayScratch& rs,
                              const RealizationParams& p) {
    const std::uint32_t hops = p.max_hops;
    const std::uint32_t e = color.epoch;
    const std::size_t num_rows = shared.num_rows;
    std::uint32_t uncolored = static_cast<std::uint32_t>(g.num_nodes());

    // Hoisted raw pointers: every write below goes through color_c (a
    // uint8_t*, which the compiler must assume aliases anything) or a pool
    // append; keeping the arrays and pool lengths in locals stops those
    // writes from forcing per-iteration reloads of the vector internals —
    // worth ~20% on the sigma replay.
    std::uint32_t* const color_e = color.color_epoch.data();
    std::uint8_t* const color_c = color.color.data();
    const std::uint32_t* const pick_row = shared.pick_row.data();
    const NodeId* const sched = sp.sched.data();
    const std::uint32_t* const step_off = sp.step_off.data();
    const std::uint32_t* const base_step = sp.base_step.data();
    const NodeId* const picks = sp.picks.data();
    std::uint32_t* const p_pool = rs.p_pool.data();
    std::uint32_t* const r_pool = rs.r_pool.data();
    std::size_t p_len = 0, r_len = 0;

    auto colored = [&](NodeId v) { return color_e[v] == e; };
    // Pools hold pick-table ROW indices, not node ids: the replay loop then
    // reads only pool[], the step's pick slab, and color stamps.
    auto color_r = [&](NodeId v) {
      color_e[v] = e;
      color_c[v] = kColorR;
      --uncolored;
      if (pick_row[v] != kUnreached) {
        r_pool[r_len++] = pick_row[v];
      }
    };

    // Step 0: protector seeds (stamped by the caller), then the baseline's
    // rumor seeds.
    for (NodeId v : protectors) {
      --uncolored;
      if (pick_row[v] != kUnreached) {
        p_pool[p_len++] = pick_row[v];
      }
    }
    for (std::uint32_t k = step_off[0]; k < step_off[1]; ++k) {
      color_r(sched[k]);
    }

    std::uint32_t divergence = kUnreached;
    std::size_t sched_pos = step_off[1];
    const std::size_t sched_end = sp.sched.size();
    std::uint64_t ops = 0;

    for (std::uint32_t t = 1; t <= hops && uncolored > 0; ++t) {
      if (p_len == 0 && divergence == kUnreached) {
        // P can never claim again and never disturbed a baseline-rumor node,
        // so every baseline node still activates exactly on schedule: the
        // rest of the cascade IS the baseline. Bulk-apply and stop.
        ops += sched_end - sched_pos;
        for (std::size_t k = sched_pos; k < sched_end; ++k) {
          const NodeId v = sched[k];
          if (!colored(v)) {
            color_e[v] = e;
            color_c[v] = kColorR;
          }
        }
        break;
      }
      const NodeId* step_picks =
          picks + static_cast<std::size_t>(t - 1) * num_rows;

      // Protector picks (first within the step: P wins simultaneous
      // arrival). Snapshot the pool size — nodes claimed at step t pick from
      // t+1 on.
      const std::size_t psz = p_len;
      ops += psz;
      for (std::size_t idx = 0; idx < psz; ++idx) {
        const NodeId tgt = step_picks[p_pool[idx]];
        if (!colored(tgt)) {
          color_e[tgt] = e;
          color_c[tgt] = kColorP;  // claim immediately
          --uncolored;
          if (pick_row[tgt] != kUnreached) {
            p_pool[p_len++] = pick_row[tgt];
          }
          const std::uint32_t t0 = base_step[tgt];
          if (t0 < divergence) divergence = t0;
        }
      }

      // Rumor side: replay the baseline schedule while it is valid, simulate
      // from the pick tables once it is not.
      if (t < divergence) {
        const std::uint32_t off_end = step_off[t + 1];
        ops += off_end - sched_pos;
        for (; sched_pos < off_end; ++sched_pos) {
          const NodeId v = sched[sched_pos];
          if (!colored(v)) color_r(v);
        }
      } else {
        const std::size_t rsz = r_len;
        ops += rsz;
        for (std::size_t idx = 0; idx < rsz; ++idx) {
          const NodeId tgt = step_picks[r_pool[idx]];
          if (!colored(tgt)) color_r(tgt);
        }
      }
    }
    return ops;
  }

  static bool replay_infected(const CacheSample& /*sp*/,
                              const EpochColorScratch& color,
                              const ReplayScratch& /*rs*/, NodeId v,
                              bool /*base_infected*/) {
    return color.colored(v) && color.color[v] == kColorR;
  }

  // -------------------------------------------------------------------------
  // Reverse reachability (RIS).
  //
  // Reverse temporal search over the pick stream: v is collected iff a pick
  // path v -> w1 -> ... -> root exists with strictly increasing steps t_i
  // where every intermediate claim lands no later than that node's
  // rumor-only baseline time (P wins the tie). Sound — every member really
  // saves the root — but a protector can also save it by starving the rumor
  // upstream without ever reaching it, so OPOAO RR coverage is a LOWER
  // bound on sigma (per-sample: covered(A) implies saved(A) by Lemma 4
  // monotonicity). docs/algorithms.md discusses the gap.
  // -------------------------------------------------------------------------

  template <class G>
  static ReverseShared build_reverse_shared(const G& /*g*/,
                                            std::span<const NodeId> /*rumors*/,
                                            const RealizationParams& /*p*/) {
    return {};
  }

  template <class G>
  static void reverse_set(const G& g, const std::vector<bool>& is_rumor,
                          std::span<const NodeId> rumors,
                          const ReverseShared& /*shared*/, NodeId root,
                          std::uint64_t seed, const RealizationParams& p,
                          ReverseScratch& sc, std::vector<NodeId>& out,
                          std::uint64_t& visits) {
    const std::uint32_t hops = p.max_hops;

    // Phase 1: rumor-only forward baseline T0 under this realization,
    // straight from the stateless pick hashes (no trace, no pick tables).
    // Matches the Forward runner with empty protectors and
    // max_steps = max_hops.
    // The replay stops at the end of the step that infects `root`: phase 2's
    // deadlines start at T0(root) and strictly decrease, so it only ever
    // consults T0(u) < T0(root) - 1 — values already final by then. Nodes the
    // full replay would infect later stay epoch-stale, which phase 2 treats
    // identically to T0(u) > deadline. Null roots still replay all `hops`
    // steps (reachability can flip at any step: picks re-draw per step).
    sc.active.clear();
    for (NodeId v : rumors) {
      sc.t0_epoch[v] = sc.epoch;
      sc.t0[v] = 0;
      if (g.out_degree(v) > 0) sc.active.push_back(v);
    }
    for (std::uint32_t step = 1; step <= hops && !sc.active.empty() &&
                                 sc.t0_epoch[root] != sc.epoch;
         ++step) {
      const std::size_t prev = sc.active.size();
      for (std::size_t i = 0; i < prev; ++i) {
        const NodeId v = sc.active[i];
        const auto nbrs = g.out_neighbors(v);
        const NodeId w = nbrs[opoao_pick_hash(seed, v, step) % nbrs.size()];
        ++visits;
        if (sc.t0_epoch[w] != sc.epoch) {
          sc.t0_epoch[w] = sc.epoch;
          sc.t0[w] = step;
          if (g.out_degree(w) > 0) sc.active.push_back(w);
        }
      }
    }
    if (sc.t0_epoch[root] != sc.epoch) return;  // null set
    const std::uint32_t t0_root = sc.t0[root];

    // Phase 2: reverse temporal search, maximizing the latest admissible
    // claim step. lat(w) = latest step at which a protector claim of w still
    // saves root through some pick path; lat(root) = T0(root) (P wins the
    // tie). Relaxing arc (u, w): the largest t <= lat(w) with pick(u, t) = w
    // lets u hand off at t, so u itself must be claimed by
    // min(t - 1, T0(u)). Deadlines strictly decrease along relaxations, so
    // one descending bucket sweep finalizes every node at its maximum
    // deadline. Rumor seeds are never claimable by P and are skipped.
    sc.lat_epoch[root] = sc.epoch;
    sc.lat[root] = t0_root;
    sc.buckets[t0_root].push_back(root);
    for (std::uint32_t b = t0_root + 1; b-- > 0;) {
      auto& bucket = sc.buckets[b];
      for (std::size_t qi = 0; qi < bucket.size(); ++qi) {
        const NodeId w = bucket[qi];
        // Stale entry: superseded by a later push or already finalized.
        if (sc.done_epoch[w] == sc.epoch || sc.lat[w] != b) continue;
        sc.done_epoch[w] = sc.epoch;
        out.push_back(w);
        if (b == 0) continue;  // nothing can be claimed before step 0
        for (NodeId u : g.in_neighbors(w)) {
          ++visits;
          if (sc.done_epoch[u] == sc.epoch || is_rumor[u]) continue;
          const auto nbrs = g.out_neighbors(u);
          std::uint32_t tstar = 0;
          for (std::uint32_t t = b; t >= 1; --t) {
            ++visits;
            if (nbrs[opoao_pick_hash(seed, u, t) % nbrs.size()] == w) {
              tstar = t;
              break;
            }
          }
          if (tstar == 0) continue;
          std::uint32_t cand = tstar - 1;
          if (sc.t0_epoch[u] == sc.epoch && sc.t0[u] < cand) cand = sc.t0[u];
          if (sc.lat_epoch[u] != sc.epoch || sc.lat[u] < cand) {
            sc.lat_epoch[u] = sc.epoch;
            sc.lat[u] = cand;
            sc.buckets[cand].push_back(u);
          }
        }
      }
      bucket.clear();
    }
  }
};

}  // namespace lcrb
