// Competitive weighted-cascade (WC) model traits: the frontier family with
// the classic WC arc probability p(u, v) = 1/d_in(v) (Kempe et al.'s
// weighted cascade), reusing the IC live-edge coin hash so each arc is
// decided once per sample seed.
//
// This file is also the traits layer's extensibility proof: everything WC
// needs — forward simulate, Monte-Carlo, realization cache, RIS reverse
// sets, CLI/service support — falls out of binding the coin below plus the
// DiffusionModel::kWc enum entry. See docs/architecture.md ("adding a
// model") for the recipe.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "diffusion/frontier_traits.h"
#include "diffusion/ic.h"
#include "diffusion/kernel.h"

namespace lcrb {

/// WC has no knobs beyond the shared hop cap: arc probabilities are derived
/// from the graph itself.
struct WcConfig {
  std::uint32_t max_steps = 0xffffffff;
};

struct WcTraits {
  static constexpr DiffusionModel kModel = DiffusionModel::kWc;
  static constexpr const char* kName = "WC";
  static constexpr bool kDeterministic = false;
  static constexpr bool kSupportsCache = true;
  static constexpr bool kSupportsReverse = true;

  using Config = WcConfig;
  using Trace = NoTrace;

  static Config config_from(const RealizationParams& p) {
    Config c;
    c.max_steps = p.max_hops;
    return c;
  }

  /// Arc (u, v) is live with probability 1/d_in(v); the target of an
  /// existing arc always has d_in >= 1.
  struct Coin {
    std::uint64_t seed;
    template <class G>
    bool operator()(const G& g, NodeId u, NodeId v) const {
      return ic_arc_live(seed, u, v,
                         1.0 / static_cast<double>(g.in_degree(v)));
    }
  };

  template <class G>
  class Forward : public FrontierForward<Coin, G> {
   public:
    Forward(const G& g, std::uint64_t seed, const Config& /*cfg*/,
            Trace* /*trace*/)
        : FrontierForward<Coin, G>(g, Coin{seed}) {}
  };

  // --- realization cache (live subgraph + baseline distances) -------------
  struct CacheShared {};
  using CacheSample = LiveEdgeSample;
  using ReplayScratch = LiveEdgeReplayScratch;

  template <class G>
  static std::size_t estimated_cache_bytes(const G& g,
                                           std::size_t samples,
                                           std::uint32_t /*hops*/) {
    // Conservative: all arcs live (the expected count is one per node with
    // in-edges, but the estimate is an upper bound by contract).
    const std::size_t n = g.num_nodes();
    return samples * (static_cast<std::size_t>(g.num_edges()) * sizeof(NodeId) +
                      (n + 1) * sizeof(std::uint32_t) +
                      n * sizeof(std::uint32_t));
  }

  template <class G>
  static CacheShared build_cache_shared(const G&) { return {}; }

  template <class G>
  static void build_cache_sample(const G& g, const CacheShared&,
                                 std::uint64_t seed, DiffusionResult&& base,
                                 std::span<const NodeId> infected_targets,
                                 const RealizationParams& /*p*/,
                                 CacheSample& sp) {
    // Expected live arcs: one per node with in-edges (sum over v of
    // d_in(v) * 1/d_in(v)).
    build_live_sample(g, Coin{seed}, g.num_nodes(), std::move(base),
                      infected_targets, sp);
  }

  static std::size_t cache_shared_bytes(const CacheShared&) { return 0; }

  static std::size_t cache_sample_bytes(const CacheSample& sp) {
    return sp.live_off.capacity() * sizeof(std::uint32_t) +
           sp.live_tgt.capacity() * sizeof(NodeId) +
           sp.dist_r.capacity() * sizeof(std::uint32_t);
  }

  template <class G>
  static std::uint64_t replay(const G&, const CacheShared&,
                              const CacheSample& sp,
                              std::span<const NodeId> /*rumors*/,
                              std::span<const NodeId> protectors,
                              EpochColorScratch& color, ReplayScratch& rs,
                              const RealizationParams& p) {
    return replay_live(sp, protectors, color, rs, p.max_hops);
  }

  static bool replay_infected(const CacheSample& sp,
                              const EpochColorScratch& color,
                              const ReplayScratch& rs, NodeId v,
                              bool base_infected) {
    return live_replay_infected(sp, color, rs, v, base_infected);
  }

  // --- reverse reachability (RIS) ------------------------------------------
  template <class G>
  static ReverseShared build_reverse_shared(const G&,
                                            std::span<const NodeId>,
                                            const RealizationParams&) {
    return {};
  }

  template <class G>
  static void reverse_set(const G& g, const std::vector<bool>& is_rumor,
                          std::span<const NodeId> /*rumors*/,
                          const ReverseShared&, NodeId root,
                          std::uint64_t seed, const RealizationParams& p,
                          ReverseScratch& sc, std::vector<NodeId>& out,
                          std::uint64_t& visits) {
    live_reverse_set(g, Coin{seed}, is_rumor, root, p.max_hops, sc, out,
                     visits);
  }
};

}  // namespace lcrb
