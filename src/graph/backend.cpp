#include "graph/backend.h"

#include <algorithm>
#include <cctype>

namespace lcrb {

GraphBackend parse_graph_backend(const std::string& name) {
  std::string s = name;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s == "csr") return GraphBackend::kCsr;
  if (s == "ef" || s == "elias-fano" || s == "eliasfano") {
    return GraphBackend::kEf;
  }
  throw Error("unknown graph backend '" + name + "' (expected csr or ef)");
}

GraphAny to_backend(DiGraph g, GraphBackend backend) {
  if (backend == GraphBackend::kEf) return GraphAny(EfGraph::from_csr(g));
  return GraphAny(std::move(g));
}

}  // namespace lcrb
