// Runtime graph-backend choice: GraphBackend enum + the GraphAny/GraphRef
// dispatch wrappers.
//
// All algorithms are compile-time templates over the GraphView concept
// (graph/graph_view.h); this header is the single place the runtime choice
// between backends lives. The orchestration layers (lcrb/pipeline,
// src/service, the CLIs) hold a GraphAny (owning) or GraphRef (non-owning)
// and `visit` once per operation to enter the templated stack — one branch
// per query, zero dispatch on traversal paths.
//
// GraphRef is implicitly constructible from either backend, so
// `f(const DiGraph&)`-era call sites keep compiling after an API moves to
// `f(GraphRef)`.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "graph/ef_graph.h"
#include "graph/graph.h"
#include "util/error.h"
#include "util/types.h"

namespace lcrb {

/// Storage backend of a loaded graph.
enum class GraphBackend : std::uint8_t {
  kCsr,  ///< plain dual-direction CSR (DiGraph)
  kEf,   ///< Elias-Fano compressed (EfGraph)
};

inline std::string to_string(GraphBackend b) {
  return b == GraphBackend::kCsr ? "csr" : "ef";
}

/// Case-insensitive parse; throws lcrb::Error on unknown names.
GraphBackend parse_graph_backend(const std::string& name);

/// Non-owning reference to a graph of either backend. Trivially copyable;
/// the referenced graph must outlive it (same contract as const DiGraph&).
class GraphRef {
 public:
  GraphRef() = default;
  GraphRef(const DiGraph& g) : g_(&g) {}  // NOLINT(google-explicit-constructor)
  GraphRef(const EfGraph& g) : g_(&g) {}  // NOLINT(google-explicit-constructor)

  bool valid() const {
    return !std::holds_alternative<std::monostate>(g_);
  }
  GraphBackend backend() const {
    return std::holds_alternative<const EfGraph*>(g_) ? GraphBackend::kEf
                                                      : GraphBackend::kCsr;
  }

  /// Calls f(const G&) with the concrete backend type.
  template <class F>
  decltype(auto) visit(F&& f) const {
    if (const auto* csr = std::get_if<const DiGraph*>(&g_)) {
      return f(**csr);
    }
    if (const auto* ef = std::get_if<const EfGraph*>(&g_)) {
      return f(**ef);
    }
    throw Error("empty GraphRef");
  }

  NodeId num_nodes() const {
    return visit([](const auto& g) { return g.num_nodes(); });
  }
  EdgeId num_edges() const {
    return visit([](const auto& g) { return g.num_edges(); });
  }
  bool empty() const {
    return visit([](const auto& g) { return g.empty(); });
  }
  NodeId out_degree(NodeId u) const {
    return visit([&](const auto& g) { return g.out_degree(u); });
  }
  NodeId in_degree(NodeId u) const {
    return visit([&](const auto& g) { return g.in_degree(u); });
  }
  bool has_edge(NodeId u, NodeId v) const {
    return visit([&](const auto& g) { return g.has_edge(u, v); });
  }
  double average_out_degree() const {
    return visit([](const auto& g) { return g.average_out_degree(); });
  }
  std::size_t memory_bytes() const {
    return visit([](const auto& g) { return g.memory_bytes(); });
  }

  /// The CSR graph, or nullptr when this references an EfGraph.
  const DiGraph* csr_or_null() const {
    const auto* csr = std::get_if<const DiGraph*>(&g_);
    return csr == nullptr ? nullptr : *csr;
  }

 private:
  std::variant<std::monostate, const DiGraph*, const EfGraph*> g_;
};

/// Owning graph of either backend; hands out GraphRef. Move-friendly; the
/// session layer stores one per dataset.
class GraphAny {
 public:
  GraphAny() = default;
  GraphAny(DiGraph g) : g_(std::move(g)) {}  // NOLINT(google-explicit-constructor)
  GraphAny(EfGraph g) : g_(std::move(g)) {}  // NOLINT(google-explicit-constructor)

  GraphBackend backend() const {
    return std::holds_alternative<EfGraph>(g_) ? GraphBackend::kEf
                                               : GraphBackend::kCsr;
  }

  GraphRef ref() const {
    if (const auto* ef = std::get_if<EfGraph>(&g_)) return GraphRef(*ef);
    return GraphRef(std::get<DiGraph>(g_));
  }

  template <class F>
  decltype(auto) visit(F&& f) const {
    return ref().visit(std::forward<F>(f));
  }

  NodeId num_nodes() const { return ref().num_nodes(); }
  EdgeId num_edges() const { return ref().num_edges(); }
  bool empty() const { return ref().empty(); }
  double average_out_degree() const { return ref().average_out_degree(); }
  std::size_t memory_bytes() const { return ref().memory_bytes(); }

 private:
  std::variant<DiGraph, EfGraph> g_;
};

/// Converts a CSR graph into the requested backend (moves it through for
/// kCsr; compresses for kEf).
GraphAny to_backend(DiGraph g, GraphBackend backend);

}  // namespace lcrb
