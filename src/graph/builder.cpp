#include "graph/builder.h"

#include <algorithm>

#include "util/check.h"

namespace lcrb {

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  LCRB_REQUIRE(u != kInvalidNode && v != kInvalidNode, "invalid node id");
  // A dropped self-loop still names the node, so grow the node count first.
  num_nodes_ = std::max({num_nodes_, u + 1, v + 1});
  if (u == v && !opts_.keep_self_loops) return;
  edges_.emplace_back(u, v);
}

void GraphBuilder::add_undirected_edge(NodeId u, NodeId v) {
  add_edge(u, v);
  add_edge(v, u);
}

void GraphBuilder::reserve_nodes(NodeId n) {
  num_nodes_ = std::max(num_nodes_, n);
}

void GraphBuilder::reserve_edges(std::size_t m) { edges_.reserve(m); }

DiGraph GraphBuilder::finalize() {
  std::sort(edges_.begin(), edges_.end());
  if (opts_.dedup) {
    edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  }

  DiGraph g;
  g.num_nodes_ = num_nodes_;
  const std::size_t m = edges_.size();

  // Forward CSR: edges_ already sorted by (source, target).
  g.out_offsets_.assign(num_nodes_ + 1, 0);
  g.out_targets_.resize(m);
  for (const auto& [u, v] : edges_) ++g.out_offsets_[u + 1];
  for (NodeId i = 0; i < num_nodes_; ++i)
    g.out_offsets_[i + 1] += g.out_offsets_[i];
  for (std::size_t e = 0; e < m; ++e) g.out_targets_[e] = edges_[e].second;

  // Backward CSR via counting sort on target.
  g.in_offsets_.assign(num_nodes_ + 1, 0);
  g.in_sources_.resize(m);
  for (const auto& [u, v] : edges_) ++g.in_offsets_[v + 1];
  for (NodeId i = 0; i < num_nodes_; ++i)
    g.in_offsets_[i + 1] += g.in_offsets_[i];
  std::vector<EdgeId> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
  for (const auto& [u, v] : edges_) g.in_sources_[cursor[v]++] = u;
  // Sources arrive in ascending order because edges_ is sorted by source,
  // so each in-neighbor list is already sorted.

  edges_.clear();
  edges_.shrink_to_fit();
  num_nodes_ = 0;
  LCRB_INVARIANT(g.validate());
  return g;
}

DiGraph make_graph(NodeId n, const std::vector<std::pair<NodeId, NodeId>>& arcs,
                   bool undirected) {
  GraphBuilder b;
  b.reserve_nodes(n);
  b.reserve_edges(undirected ? arcs.size() * 2 : arcs.size());
  for (const auto& [u, v] : arcs) {
    if (undirected) {
      b.add_undirected_edge(u, v);
    } else {
      b.add_edge(u, v);
    }
  }
  return b.finalize();
}

}  // namespace lcrb
