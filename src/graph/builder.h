// Mutable edge accumulator that finalizes into an immutable CSR DiGraph.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/types.h"

namespace lcrb {

/// Collects arcs, then finalize() sorts, optionally deduplicates, and builds
/// both CSR directions. Self-loops are dropped by default (they carry no
/// information in any of the diffusion models).
class GraphBuilder {
 public:
  struct Options {
    bool dedup = true;            ///< drop parallel arcs
    bool keep_self_loops = false; ///< keep (u,u) arcs
  };

  GraphBuilder() = default;
  explicit GraphBuilder(Options opts) : opts_(opts) {}

  /// Adds arc u -> v. Node ids may be sparse; num_nodes grows as needed.
  void add_edge(NodeId u, NodeId v);

  /// Adds both u -> v and v -> u (the paper's treatment of undirected data).
  void add_undirected_edge(NodeId u, NodeId v);

  /// Ensures the graph has at least `n` nodes even if some are isolated.
  void reserve_nodes(NodeId n);

  /// Hint for the expected number of arcs.
  void reserve_edges(std::size_t m);

  std::size_t pending_edges() const { return edges_.size(); }
  NodeId pending_nodes() const { return num_nodes_; }

  /// Builds the CSR graph. The builder is left empty and reusable.
  DiGraph finalize();

 private:
  Options opts_;
  NodeId num_nodes_ = 0;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

/// Convenience: builds a graph from an arc list over `n` nodes.
DiGraph make_graph(NodeId n,
                   const std::vector<std::pair<NodeId, NodeId>>& arcs,
                   bool undirected = false);

}  // namespace lcrb
