#include "graph/centrality.h"

#include <algorithm>
#include <deque>

#include "graph/ef_graph.h"
#include "graph/graph.h"
#include "util/error.h"

namespace lcrb {

template <GraphView G>
std::vector<double> betweenness_centrality(const G& g) {
  const NodeId n = g.num_nodes();
  std::vector<double> bc(n, 0.0);

  // Brandes: one BFS per source with path counting, then dependency
  // accumulation in reverse BFS order.
  std::vector<std::uint32_t> dist(n);
  std::vector<double> sigma(n), delta(n);
  std::vector<std::vector<NodeId>> preds(n);
  std::vector<NodeId> order;  // nodes in non-decreasing distance
  order.reserve(n);

  for (NodeId s = 0; s < n; ++s) {
    std::fill(dist.begin(), dist.end(), kUnreached);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    for (auto& p : preds) p.clear();
    order.clear();

    dist[s] = 0;
    sigma[s] = 1.0;
    std::deque<NodeId> queue{s};
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      order.push_back(u);
      for (NodeId v : g.out_neighbors(u)) {
        if (dist[v] == kUnreached) {
          dist[v] = dist[u] + 1;
          queue.push_back(v);
        }
        if (dist[v] == dist[u] + 1) {
          sigma[v] += sigma[u];
          preds[v].push_back(u);
        }
      }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const NodeId w = *it;
      for (NodeId u : preds[w]) {
        delta[u] += sigma[u] / sigma[w] * (1.0 + delta[w]);
      }
      if (w != s) bc[w] += delta[w];
    }
  }
  return bc;
}

template <GraphView G>
std::vector<NodeId> degree_discount(const G& g, std::size_t k, double p,
                                    std::span<const NodeId> excluded) {
  LCRB_REQUIRE(p >= 0.0 && p <= 1.0, "propagation probability in [0,1]");
  const NodeId n = g.num_nodes();
  std::vector<bool> banned(n, false);
  for (NodeId v : excluded) {
    LCRB_REQUIRE(v < n, "excluded node out of range");
    banned[v] = true;
  }

  // dd[v] = discounted degree; t[v] = selected in-neighbors of v.
  std::vector<double> dd(n);
  std::vector<std::uint32_t> t(n, 0);
  for (NodeId v = 0; v < n; ++v) dd[v] = static_cast<double>(g.out_degree(v));

  std::vector<bool> selected(n, false);
  std::vector<NodeId> out;
  const std::size_t want = std::min<std::size_t>(k, n);
  while (out.size() < want) {
    NodeId best = kInvalidNode;
    for (NodeId v = 0; v < n; ++v) {
      if (selected[v] || banned[v]) continue;
      if (best == kInvalidNode || dd[v] > dd[best]) best = v;
    }
    if (best == kInvalidNode) break;
    selected[best] = true;
    out.push_back(best);
    // Discount neighbors: dd_v = d_v - 2 t_v - (d_v - t_v) t_v p.
    for (NodeId v : g.out_neighbors(best)) {
      if (selected[v]) continue;
      ++t[v];
      const double d = static_cast<double>(g.out_degree(v));
      const double tv = static_cast<double>(t[v]);
      dd[v] = d - 2.0 * tv - (d - tv) * tv * p;
    }
  }
  return out;
}

#define LCRB_INSTANTIATE_CENTRALITY(G)                                      \
  template std::vector<double> betweenness_centrality<G>(const G&);        \
  template std::vector<NodeId> degree_discount<G>(const G&, std::size_t,   \
                                                  double,                  \
                                                  std::span<const NodeId>);

LCRB_INSTANTIATE_CENTRALITY(DiGraph)
LCRB_INSTANTIATE_CENTRALITY(EfGraph)

#undef LCRB_INSTANTIATE_CENTRALITY

}  // namespace lcrb
