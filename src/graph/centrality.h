// Centrality measures used as protector-selection baselines.
#pragma once

#include <span>
#include <vector>

#include "graph/graph_view.h"
#include "util/types.h"

namespace lcrb {

/// Exact betweenness centrality via Brandes' algorithm (2001), directed,
/// unweighted. O(V·E) time, O(V+E) memory. Scores are unnormalized raw
/// dependency sums.
template <GraphView G>
std::vector<double> betweenness_centrality(const G& g);

/// DegreeDiscount (Chen, Wang & Yang, KDD'09): the classic cheap
/// influence-maximization heuristic. Picks k nodes by out-degree, but after
/// each pick discounts the degrees of the pick's neighbors (their edge to an
/// already-selected node no longer buys new influence). `p` is the assumed
/// propagation probability of the underlying IC process.
template <GraphView G>
std::vector<NodeId> degree_discount(const G& g, std::size_t k,
                                    double p = 0.01,
                                    std::span<const NodeId> excluded = {});

}  // namespace lcrb
