// EfGraph core: storage, payload encoding/parsing, membership, validation.
// File/mmap I/O lives in ef_io.cpp.
#include "graph/ef_graph.h"

#include <algorithm>
#include <cstring>

#include "graph/ef_storage.h"
#include "graph/graph_view.h"
#include "util/error.h"

namespace lcrb {

std::shared_ptr<EfGraph::Storage> EfGraph::make_storage() {
  return std::make_shared<Storage>();
}

std::vector<std::uint64_t>& EfGraph::storage_buffer(Storage& s) {
  return s.heap;
}

// ---------------------------------------------------------------------------
// PayloadEncoder.
// ---------------------------------------------------------------------------

namespace ef {

PayloadEncoder::Sequence PayloadEncoder::begin_sequence(std::uint64_t size,
                                                        std::uint64_t universe) {
  Sequence s;
  s.buf_ = buf_;
  s.size_ = size;
  s.universe_ = universe;
  s.low_bits_ = SequenceView::pick_low_bits(size, universe);
  const std::uint64_t low_words =
      SequenceView::low_word_count(size, s.low_bits_);
  s.high_words_ = SequenceView::high_word_count(size, universe, s.low_bits_);
  s.sample_count_ = (size + kSelectSample - 1) / kSelectSample;

  s.base_ = buf_->size();
  buf_->push_back(size);
  buf_->push_back(universe);
  buf_->push_back(s.low_bits_);
  s.low_at_ = buf_->size();
  buf_->resize(buf_->size() + low_words, 0);
  s.high_at_ = buf_->size();
  buf_->resize(buf_->size() + s.high_words_, 0);
  s.samples_at_ = buf_->size();
  buf_->resize(buf_->size() + s.sample_count_, 0);
  return s;
}

void PayloadEncoder::Sequence::push(std::uint64_t value) {
  LCRB_REQUIRE(pushed_ < size_, "Elias-Fano sequence overflow");
  LCRB_REQUIRE(value < universe_ || (value == 0 && universe_ == 0),
               "Elias-Fano value exceeds universe");
  LCRB_REQUIRE(pushed_ == 0 || value >= last_,
               "Elias-Fano sequence must be monotone");
  last_ = value;
  std::uint64_t* b = buf_->data();
  if (low_bits_ > 0) {
    const std::uint64_t lo =
        value & ((std::uint64_t{1} << low_bits_) - 1);
    const std::uint64_t bitpos = pushed_ * low_bits_;
    b[low_at_ + (bitpos >> 6)] |= lo << (bitpos & 63);
    if ((bitpos & 63) + low_bits_ > 64) {
      b[low_at_ + (bitpos >> 6) + 1] |= lo >> (64 - (bitpos & 63));
    }
  }
  const std::uint64_t high_pos = (value >> low_bits_) + pushed_;
  b[high_at_ + (high_pos >> 6)] |= std::uint64_t{1} << (high_pos & 63);
  ++pushed_;
}

void PayloadEncoder::Sequence::finish() {
  LCRB_REQUIRE(pushed_ == size_, "Elias-Fano sequence underfilled");
  // Fill the select samples: position of every (k * kSelectSample)-th one.
  std::uint64_t* b = buf_->data();
  std::uint64_t seen = 0, next_sample = 0;
  for (std::uint64_t w = 0; w < high_words_ && next_sample < sample_count_;
       ++w) {
    std::uint64_t bits = b[high_at_ + w];
    const auto cnt = static_cast<std::uint64_t>(__builtin_popcountll(bits));
    while (next_sample < sample_count_ &&
           next_sample * kSelectSample < seen + cnt) {
      std::uint64_t remaining = next_sample * kSelectSample - seen;
      std::uint64_t t = bits;
      for (; remaining > 0; --remaining) t &= t - 1;
      b[samples_at_ + next_sample] =
          (w << 6) + static_cast<std::uint64_t>(__builtin_ctzll(t));
      ++next_sample;
    }
    seen += cnt;
  }
}

}  // namespace ef

// ---------------------------------------------------------------------------
// Payload parsing (shared by the build, read and mmap paths).
// ---------------------------------------------------------------------------

namespace {

/// Parses one sequence region starting at `at`; advances `at` past it.
ef::SequenceView parse_sequence(std::span<const std::uint64_t> payload,
                                std::size_t& at, std::uint64_t expect_size,
                                std::uint64_t expect_universe) {
  LCRB_REQUIRE(at + 3 <= payload.size(), "EF payload truncated (header)");
  const std::uint64_t size = payload[at];
  const std::uint64_t universe = payload[at + 1];
  const std::uint64_t low_bits64 = payload[at + 2];
  at += 3;
  LCRB_REQUIRE(size == expect_size, "EF sequence size mismatch");
  LCRB_REQUIRE(universe == expect_universe, "EF sequence universe mismatch");
  LCRB_REQUIRE(low_bits64 ==
                   ef::SequenceView::pick_low_bits(size, universe),
               "EF sequence low-bit width is not canonical");
  const auto low_bits = static_cast<std::uint32_t>(low_bits64);
  const std::uint64_t low_words =
      ef::SequenceView::low_word_count(size, low_bits);
  const std::uint64_t high_words =
      ef::SequenceView::high_word_count(size, universe, low_bits);
  const std::uint64_t samples =
      (size + ef::kSelectSample - 1) / ef::kSelectSample;
  LCRB_REQUIRE(low_words + high_words + samples <= payload.size() - at,
               "EF payload truncated (data)");
  std::span<const std::uint64_t> low = payload.subspan(at, low_words);
  at += low_words;
  std::span<const std::uint64_t> high = payload.subspan(at, high_words);
  at += high_words;
  std::span<const std::uint64_t> sample_words = payload.subspan(at, samples);
  at += samples;

  // Bitvector bookkeeping: exactly `size` ones, and every select sample
  // really points at the right set bit (monotone, in range) — the select
  // scans are memory-safe only under these.
  std::uint64_t ones = 0;
  for (std::uint64_t w : high) {
    ones += static_cast<std::uint64_t>(__builtin_popcountll(w));
  }
  LCRB_REQUIRE(ones == size, "EF high bitvector popcount mismatch");
  std::uint64_t seen = 0, sample_idx = 0;
  for (std::uint64_t w = 0; w < high.size() && sample_idx < samples; ++w) {
    const auto cnt = static_cast<std::uint64_t>(__builtin_popcountll(high[w]));
    while (sample_idx < samples && sample_idx * ef::kSelectSample < seen + cnt) {
      std::uint64_t remaining = sample_idx * ef::kSelectSample - seen;
      std::uint64_t t = high[w];
      for (; remaining > 0; --remaining) t &= t - 1;
      const std::uint64_t want =
          (w << 6) + static_cast<std::uint64_t>(__builtin_ctzll(t));
      LCRB_REQUIRE(sample_words[sample_idx] == want,
                   "EF select sample table is forged");
      ++sample_idx;
    }
    seen += cnt;
  }

  return {size, universe, low_bits, low,
          ef::BitView(high, sample_words, size)};
}

}  // namespace

EfGraph EfGraph::from_storage(std::shared_ptr<const Storage> s, NodeId n,
                              EdgeId m) {
  std::span<const std::uint64_t> payload = s->payload();
  EfGraph g;
  g.num_nodes_ = n;
  g.num_edges_ = m;
  g.storage_ = std::move(s);
  const std::uint64_t target_universe =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n);
  std::size_t at = 0;
  for (ef::DirectionView* d : {&g.out_, &g.in_}) {
    d->offsets = parse_sequence(payload, at,
                                static_cast<std::uint64_t>(n) + 1, m + 1);
    d->targets = parse_sequence(payload, at, m, target_universe);
    // Offsets must start at 0 and end at m; they are monotone iff the low
    // bits agree with the (already verified) high-bit order — checked in the
    // full decode below for untrusted input; the boundary values are cheap
    // and always checked.
    LCRB_REQUIRE(d->offsets.value(0) == 0, "EF offsets must start at 0");
    LCRB_REQUIRE(d->offsets.value(n) == m,
                 "EF offsets must end at the arc count");
  }
  LCRB_REQUIRE(at <= payload.size(), "EF payload size mismatch");
  return g;
}

// ---------------------------------------------------------------------------
// Construction.
// ---------------------------------------------------------------------------

EfGraph EfGraph::from_csr(const DiGraph& g) {
  return from_rows(
      g.num_nodes(), g.num_edges(),
      [&](NodeId u, auto&& sink) {
        for (NodeId v : g.out_neighbors(u)) sink(v);
      },
      [&](NodeId u, auto&& sink) {
        for (NodeId v : g.in_neighbors(u)) sink(v);
      });
}

// ---------------------------------------------------------------------------
// Queries.
// ---------------------------------------------------------------------------

bool EfGraph::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  return graph_algo::row_contains(out_neighbors(u), v);
}

std::size_t EfGraph::memory_bytes() const {
  if (storage_ == nullptr) return 0;
  if (storage_->map_addr != nullptr) return storage_->map_len;
  return storage_->heap.capacity() * sizeof(std::uint64_t);
}

bool EfGraph::mmap_backed() const {
  return storage_ != nullptr && storage_->map_addr != nullptr;
}

// ---------------------------------------------------------------------------
// Validation.
// ---------------------------------------------------------------------------

void EfGraph::validate(EfVerify level) const {
  const std::uint64_t n = num_nodes_;
  if (storage_ == nullptr) {
    LCRB_REQUIRE(n == 0 && num_edges_ == 0,
                 "non-empty EfGraph without storage");
    return;
  }
  for (const ef::DirectionView* d : {&out_, &in_}) {
    LCRB_REQUIRE(d->offsets.size() == n + 1, "EF offsets size mismatch");
    LCRB_REQUIRE(d->targets.size() == num_edges_, "EF targets size mismatch");
    LCRB_REQUIRE(d->offsets.value(0) == 0, "EF offsets must start at 0");
    LCRB_REQUIRE(d->offsets.value(n) == num_edges_,
                 "EF offsets must end at the arc count");
    if (level != EfVerify::kFull) continue;

    // Full decode: offsets monotone; every row's lifted targets stay inside
    // [u*n, (u+1)*n) and decode in ascending order. One sequential pass over
    // the high bitvectors — O(n + m).
    std::uint64_t prev_off = 0;
    std::uint64_t idx = 0;
    std::uint64_t high_pos =
        d->targets.size() == 0 ? 0 : d->targets.high().select1(0);
    for (std::uint64_t u = 0; u < n; ++u) {
      const std::uint64_t off = d->offsets.value(u + 1);
      LCRB_REQUIRE(off >= prev_off && off <= num_edges_,
                   "EF offsets must be monotone");
      const std::uint64_t base = u * n;
      std::uint64_t prev_val = 0;
      for (; idx < off; ++idx) {
        const std::uint64_t val = d->targets.value_at(idx, high_pos);
        LCRB_REQUIRE(val >= base && val < base + n,
                     "EF adjacency value outside its row's range");
        LCRB_REQUIRE(idx == prev_off || val >= prev_val,
                     "EF adjacency row must be sorted");
        prev_val = val;
        if (idx + 1 < d->targets.size()) {
          high_pos = d->targets.high().next_one(high_pos + 1);
        }
      }
      prev_off = off;
    }
  }
}

}  // namespace lcrb
