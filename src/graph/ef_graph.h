// EfGraph — the Elias-Fano compressed graph-storage backend.
//
// Both adjacency directions are stored as quasi-succinct Elias-Fano
// sequences (Elias 1974, Fano 1971; the libcgraph eliasfano/bitsequence
// design): the concatenated adjacency rows become one globally monotone
// sequence by lifting each target v of row u to u * n + v, split into low
// bits (packed array) and high bits (unary in a bitvector with sampled
// select1). Row boundaries are a second, much smaller Elias-Fano sequence
// over the n+1 CSR offsets. Space is ~(2 + log2(n^2/m)) bits per arc per
// direction — a graph with average degree d costs about
// 2 + log2(n/d) bits/arc instead of CSR's 32, typically 3-6 bytes/arc for
// BOTH directions against CSR's ~16.
//
// Access model (all O(1)-ish via sampled select1, one sample per
// kSelectSample set bits):
//   * row u = positions [off(u), off(u+1)) of the target sequence; iterating
//     a row is a sequential scan of the high bitvector (no select per
//     element), so kernel traversal stays within ~2x of CSR.
//   * row[i] is one select1 + one packed-low read — random access for
//     OPOAO's pick indexing and the O(log d) select-based has_edge.
//
// EfGraph satisfies the GraphView concept (graph/graph_view.h) and is
// byte-for-byte output-compatible with DiGraph: rows decode in the same
// ascending order CSR stores them, so every algorithm instantiated on
// either backend produces identical results (pinned by the golden suite).
//
// Persistence: a versioned binary container (see ef_io.cpp) loaded either
// by mmap (zero-copy: all views point into the mapping) or by read() into
// one heap buffer (the NO_MMAP-style fallback; also the only option for
// istream sources). Untrusted inputs are fully verified by default.
#pragma once

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <memory>
#include <ranges>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/check.h"
#include "util/types.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define LCRB_EF_PDEP 1
#include <immintrin.h>
#endif

namespace lcrb {

namespace ef {

/// One select sample per this many set bits. 32 keeps the scan from a
/// sample to about one word at EF's ~0.5 high-bit density — the select sits
/// on the kernel-traversal hot path, so the sample table trades 2
/// bits/element for a scan loop that almost never iterates.
inline constexpr std::uint64_t kSelectSample = 32;

#ifdef LCRB_EF_PDEP
/// BMI2 select: deposit the r-th bit of a one-hot mask into x's set-bit
/// positions, then count trailing zeros. Compiled with the bmi2 target
/// attribute so no global -march flag is needed; callers gate on the
/// runtime CPUID probe below.
__attribute__((target("bmi2"))) inline std::uint64_t select_in_word_pdep(
    std::uint64_t x, std::uint64_t r) {
  return static_cast<std::uint64_t>(
      __builtin_ctzll(_pdep_u64(std::uint64_t{1} << r, x)));
}

inline const bool kHavePdep = __builtin_cpu_supports("bmi2");
#endif

/// Position of the r-th (0-based) set bit of x; r < popcount(x).
inline std::uint64_t select_in_word(std::uint64_t x, std::uint64_t r) {
#ifdef LCRB_EF_PDEP
  if (kHavePdep) return select_in_word_pdep(x, r);
#endif
  // Branchless popcount halving: the data-dependent "skip this half?"
  // decisions are arithmetic (a mispredicted branch per level would cost
  // more than the whole select).
  std::uint64_t pos = 0;
  for (std::uint32_t width = 32; width >= 1; width >>= 1) {
    const std::uint64_t cnt = static_cast<std::uint64_t>(
        __builtin_popcountll(x & ((std::uint64_t{1} << width) - 1)));
    const std::uint64_t skip = -static_cast<std::uint64_t>(r >= cnt);
    pos += skip & width;
    r -= cnt & skip;
    x >>= (skip & width);
  }
  return pos;
}

/// Read-only bitvector view with sampled select1 (samples[j] = position of
/// the (j * kSelectSample)-th set bit). The words and samples live in the
/// owning EfGraph's storage (heap buffer or mmap region).
class BitView {
 public:
  BitView() = default;
  BitView(std::span<const std::uint64_t> words,
          std::span<const std::uint64_t> samples, std::uint64_t num_ones)
      : words_(words), samples_(samples), num_ones_(num_ones) {}

  std::uint64_t num_ones() const { return num_ones_; }

  /// Position of the i-th set bit (0-based). i < num_ones().
  std::uint64_t select1(std::uint64_t i) const {
    LCRB_DCHECK(i < num_ones_, "select1 index out of range");
    std::uint64_t pos = samples_[i / kSelectSample];
    std::uint64_t remaining = i % kSelectSample;
    std::uint64_t w = pos >> 6;
    std::uint64_t bits = words_[w] & (~std::uint64_t{0} << (pos & 63));
    for (;;) {
      const std::uint64_t cnt =
          static_cast<std::uint64_t>(__builtin_popcountll(bits));
      if (remaining < cnt) break;
      remaining -= cnt;
      bits = words_[++w];
    }
    return (w << 6) + select_in_word(bits, remaining);
  }

  /// Position of the first set bit at or after `pos` (must exist).
  std::uint64_t next_one(std::uint64_t pos) const {
    std::uint64_t w = pos >> 6;
    std::uint64_t bits = words_[w] & (~std::uint64_t{0} << (pos & 63));
    while (bits == 0) bits = words_[++w];
    return (w << 6) + static_cast<std::uint64_t>(__builtin_ctzll(bits));
  }

  /// Positions of set bits i and i+1 in one scan: the word holding bit i is
  /// already in a register when the search for bit i+1 starts, so this beats
  /// select1 + next_one by a dependent load. i + 1 < num_ones().
  std::pair<std::uint64_t, std::uint64_t> select1_pair(std::uint64_t i) const {
    LCRB_DCHECK(i + 1 < num_ones_, "select1_pair index out of range");
    std::uint64_t pos = samples_[i / kSelectSample];
    std::uint64_t remaining = i % kSelectSample;
    std::uint64_t w = pos >> 6;
    std::uint64_t bits = words_[w] & (~std::uint64_t{0} << (pos & 63));
    for (;;) {
      const std::uint64_t cnt =
          static_cast<std::uint64_t>(__builtin_popcountll(bits));
      if (remaining < cnt) break;
      remaining -= cnt;
      bits = words_[++w];
    }
    const std::uint64_t in0 = select_in_word(bits, remaining);
    const std::uint64_t p0 = (w << 6) + in0;
    // Drop bits up to and including p0; what remains of the cached word is
    // the start of the search for bit i+1.
    std::uint64_t rest = bits & (~std::uint64_t{1} << in0);
    while (rest == 0) rest = words_[++w];
    const std::uint64_t p1 =
        (w << 6) + static_cast<std::uint64_t>(__builtin_ctzll(rest));
    return {p0, p1};
  }

  std::span<const std::uint64_t> words() const { return words_; }
  std::span<const std::uint64_t> samples() const { return samples_; }

 private:
  std::span<const std::uint64_t> words_;
  std::span<const std::uint64_t> samples_;
  std::uint64_t num_ones_ = 0;
};

/// Elias-Fano view of a monotone non-decreasing sequence of `size` values in
/// [0, universe).
class SequenceView {
 public:
  SequenceView() = default;
  SequenceView(std::uint64_t size, std::uint64_t universe,
               std::uint32_t low_bits, std::span<const std::uint64_t> low,
               BitView high)
      : size_(size),
        universe_(universe),
        low_bits_(low_bits),
        low_(low),
        high_(high) {}

  std::uint64_t size() const { return size_; }
  std::uint64_t universe() const { return universe_; }
  std::uint32_t low_bits() const { return low_bits_; }
  const BitView& high() const { return high_; }
  std::span<const std::uint64_t> low_words() const { return low_; }

  /// Packed low bits of element i.
  std::uint64_t low(std::uint64_t i) const {
    if (low_bits_ == 0) return 0;
    const std::uint64_t bitpos = i * low_bits_;
    if (low_bits_ <= 57) {
      // One unaligned 8-byte load covers any ≤57-bit field. Reading up to 7
      // bytes past the low region is safe: the payload layout always puts
      // the high words and sample table right behind it.
      std::uint64_t v;
      std::memcpy(&v,
                  reinterpret_cast<const unsigned char*>(low_.data()) +
                      (bitpos >> 3),
                  sizeof(v));
      return (v >> (bitpos & 7)) & ((std::uint64_t{1} << low_bits_) - 1);
    }
    const std::uint64_t w = bitpos >> 6;
    const std::uint64_t off = bitpos & 63;
    std::uint64_t v = low_[w] >> off;
    if (off + low_bits_ > 64) v |= low_[w + 1] << (64 - off);
    return v & (low_bits_ == 64 ? ~std::uint64_t{0}
                                : ((std::uint64_t{1} << low_bits_) - 1));
  }

  /// Random access: one select + one packed read.
  std::uint64_t value(std::uint64_t i) const {
    return ((high_.select1(i) - i) << low_bits_) | low(i);
  }

  /// Value of element i when the high-bit position of element i is already
  /// known (sequential decoding).
  std::uint64_t value_at(std::uint64_t i, std::uint64_t high_pos) const {
    return ((high_pos - i) << low_bits_) | low(i);
  }

  /// Values of elements i and i+1 for the price of one select: the second
  /// high bit is the next one after the first, and both packed-low fields
  /// come from one load when they fit. i + 1 < size(). This is the
  /// row-bounds lookup — two adjacent offsets — on the traversal hot path.
  std::pair<std::uint64_t, std::uint64_t> value_pair(std::uint64_t i) const {
    const auto [p0, p1] = high_.select1_pair(i);
    if (low_bits_ > 0 && 2 * low_bits_ + 7 <= 64) {
      // Adjacent fields span at most 2*low_bits + 7 bits from the first
      // field's byte: one unaligned load covers both (same safety argument
      // as low()).
      const std::uint64_t bitpos = i * low_bits_;
      std::uint64_t v;
      std::memcpy(&v,
                  reinterpret_cast<const unsigned char*>(low_.data()) +
                      (bitpos >> 3),
                  sizeof(v));
      v >>= (bitpos & 7);
      const std::uint64_t mask = (std::uint64_t{1} << low_bits_) - 1;
      return {((p0 - i) << low_bits_) | (v & mask),
              ((p1 - i - 1) << low_bits_) | ((v >> low_bits_) & mask)};
    }
    return {value_at(i, p0), value_at(i + 1, p1)};
  }

  /// Number of low-bit words a sequence of this shape occupies.
  static std::uint64_t low_word_count(std::uint64_t size,
                                      std::uint32_t low_bits) {
    return (size * low_bits + 63) / 64;
  }
  /// Number of high-bit words.
  static std::uint64_t high_word_count(std::uint64_t size,
                                       std::uint64_t universe,
                                       std::uint32_t low_bits) {
    const std::uint64_t bits = (universe >> low_bits) + size + 1;
    return (bits + 63) / 64;
  }
  /// The canonical low-bit width for (size, universe): floor(log2(U/m)).
  static std::uint32_t pick_low_bits(std::uint64_t size,
                                     std::uint64_t universe) {
    if (size == 0 || universe <= size) return 0;
    std::uint32_t l = 0;
    while ((universe >> (l + 1)) >= size) ++l;
    return l;
  }

 private:
  std::uint64_t size_ = 0;
  std::uint64_t universe_ = 0;
  std::uint32_t low_bits_ = 0;
  std::span<const std::uint64_t> low_;
  BitView high_;
};

/// Forward-decoding view of one adjacency row: values
/// targets[first + i] - base, i in [0, size). Satisfies the GraphView row
/// contract: sized, indexable (select-based), forward-iterable (sequential
/// high-bit scan — no select per element).
class Row {
 public:
  Row() = default;
  Row(const SequenceView* seq, std::uint64_t first, std::size_t size,
      std::uint64_t base)
      : seq_(seq), first_(first), size_(size), base_(base) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  NodeId operator[](std::size_t i) const {
    LCRB_DCHECK(i < size_, "row index out of range");
    return static_cast<NodeId>(seq_->value(first_ + i) - base_);
  }

  /// Caches the current high-bitvector word: advancing clears the lowest
  /// set bit (one op) and only touches memory at word boundaries, so the
  /// per-arc decode cost on the kernel hot path is the packed-low read.
  /// Deliberately lean (six words): the kernel interleaves decoding with
  /// coin flips and frontier writes, and a fatter iterator spills.
  class iterator {
   public:
    using value_type = NodeId;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    iterator() = default;
    iterator(const SequenceView* seq, std::uint64_t idx, std::uint64_t end_idx,
             std::uint64_t high_pos, std::uint64_t base)
        : seq_(seq), idx_(idx), end_idx_(end_idx), base_(base) {
      if (idx_ < end_idx_) {
        word_ = high_pos >> 6;
        bits_ = seq_->high().words()[word_] &
                (~std::uint64_t{0} << (high_pos & 63));
      }
    }

    NodeId operator*() const {
      const std::uint64_t high_pos =
          (word_ << 6) + static_cast<std::uint64_t>(__builtin_ctzll(bits_));
      return static_cast<NodeId>(seq_->value_at(idx_, high_pos) - base_);
    }
    iterator& operator++() {
      if (++idx_ == end_idx_) return *this;  // never scan past the row
      bits_ &= bits_ - 1;
      while (bits_ == 0) bits_ = seq_->high().words()[++word_];
      return *this;
    }
    iterator operator++(int) {
      iterator t = *this;
      ++*this;
      return t;
    }
    bool operator==(const iterator& o) const { return idx_ == o.idx_; }

   private:
    const SequenceView* seq_ = nullptr;
    std::uint64_t idx_ = 0;
    std::uint64_t end_idx_ = 0;
    std::uint64_t word_ = 0;
    std::uint64_t bits_ = 0;
    std::uint64_t base_ = 0;
  };

  iterator begin() const {
    if (size_ == 0) return end();
    // Row-partitioned shortcut: rows lift element i of row u to u*n + v, so
    // every element of this row is >= base_ while every earlier element is
    // < base_. Bit first_ therefore sits at or after position
    // (base_ >> low_bits) + first_ and no earlier set bit reaches it — the
    // row's first high bit is one short forward scan (~n >> low_bits bits),
    // not a sampled select.
    const std::uint64_t pos0 =
        (base_ >> seq_->low_bits()) + first_;
    return {seq_, first_, first_ + size_, seq_->high().next_one(pos0), base_};
  }
  iterator end() const { return {seq_, first_ + size_, first_ + size_, 0, base_}; }

 private:
  const SequenceView* seq_ = nullptr;
  std::uint64_t first_ = 0;
  std::size_t size_ = 0;
  std::uint64_t base_ = 0;
};

/// One adjacency direction: Elias-Fano offsets (n+1 values in [0, m]) and
/// lifted targets (m values in [0, n*n)).
struct DirectionView {
  SequenceView offsets;
  SequenceView targets;
};

}  // namespace ef

/// How EfGraph::load maps the file.
enum class EfMapMode : std::uint8_t {
  kAuto,  ///< mmap when available, read() otherwise
  kMmap,  ///< mmap or fail
  kRead,  ///< always read() into a heap buffer (the NO_MMAP path)
};

/// How much of a loaded file is verified before use.
enum class EfVerify : std::uint8_t {
  /// Full structural verification: counts, checksums-of-structure
  /// (popcounts, sample tables), offsets shape, and a sequential decode of
  /// every row proving values are in-range and ascending. O(n + m). The
  /// default — required for untrusted input.
  kFull,
  /// Header + bitvector bookkeeping only (O(n + m/64), no per-element
  /// decode). ONLY for files this process (or a trusted pipeline) wrote:
  /// forged target values would read out of range downstream.
  kTrusted,
};

/// Elias-Fano compressed immutable digraph; see file comment. Cheap to copy
/// (shared storage).
class EfGraph {
 public:
  EfGraph() = default;

  NodeId num_nodes() const { return num_nodes_; }
  EdgeId num_edges() const { return num_edges_; }
  bool empty() const { return num_nodes_ == 0; }

  NodeId out_degree(NodeId u) const {
    check_node(u);
    const auto [lo, hi] = out_.offsets.value_pair(u);
    return static_cast<NodeId>(hi - lo);
  }
  NodeId in_degree(NodeId v) const {
    check_node(v);
    const auto [lo, hi] = in_.offsets.value_pair(v);
    return static_cast<NodeId>(hi - lo);
  }

  /// Targets of u's out-edges, ascending (decoded on the fly).
  ef::Row out_neighbors(NodeId u) const {
    check_node(u);
    return row(out_, u);
  }
  /// Sources of v's in-edges, ascending.
  ef::Row in_neighbors(NodeId v) const {
    check_node(v);
    return row(in_, v);
  }

  /// True iff arc (u, v) exists. O(log out_degree(u)) selects into the
  /// compressed sequence (same probe bound as DiGraph::has_edge).
  bool has_edge(NodeId u, NodeId v) const;

  double average_out_degree() const {
    return num_nodes_ == 0 ? 0.0
                           : static_cast<double>(num_edges_) /
                                 static_cast<double>(num_nodes_);
  }

  /// Compressed footprint: every word of every sequence (or the mapped
  /// payload), in bytes. The honest number ServiceConfig byte budgets see.
  std::size_t memory_bytes() const;

  /// Compressed bits per arc (both directions, offsets included).
  double bits_per_arc() const {
    return num_edges_ == 0
               ? 0.0
               : 8.0 * static_cast<double>(memory_bytes()) /
                     static_cast<double>(num_edges_);
  }

  /// True when the underlying words live in an mmap'ed file region.
  bool mmap_backed() const;

  /// Builds from an existing CSR graph (rows are already sorted).
  static EfGraph from_csr(const DiGraph& g);

  /// Streaming build: `out_row(u, sink)` / `in_row(u, sink)` must call
  /// sink(v) with u's targets/sources in ascending order, for u = 0..n-1;
  /// each direction must emit exactly m arcs, and the in rows must be the
  /// exact transpose of the out rows. No CSR intermediate is materialized —
  /// the path the >=100M-arc synthetic smoke test takes.
  template <class OutFn, class InFn>
  static EfGraph from_rows(NodeId n, EdgeId m, OutFn&& out_row, InFn&& in_row);

  /// Throws lcrb::Error unless the structure is well-formed; `full` adds the
  /// O(m) per-row decode check (values in range, rows ascending, in == exact
  /// transpose arc count). See EfVerify.
  void validate(EfVerify level = EfVerify::kFull) const;

  // --- Versioned on-disk container (ef_io.cpp) ---------------------------

  void save(const std::string& path) const;
  void save(std::ostream& out) const;

  /// Loads a container file. kAuto/kMmap map the file read-only and point
  /// every view into the mapping (zero copy); kRead streams it into one heap
  /// buffer. Both paths verify per `verify`.
  static EfGraph load(const std::string& path, EfMapMode mode = EfMapMode::kAuto,
                      EfVerify verify = EfVerify::kFull);
  /// Stream loader (always the read path). The fuzz harness drives this.
  static EfGraph load(std::istream& in, EfVerify verify = EfVerify::kFull);

  struct Storage;  ///< heap buffer or mmap region owning all words

 private:
  friend struct EfGraphIo;

  /// Opaque storage factory + accessors so header templates (from_rows) can
  /// build without a complete Storage type.
  static std::shared_ptr<Storage> make_storage();
  static std::vector<std::uint64_t>& storage_buffer(Storage& s);
  /// Parses the storage's payload into views and cross-checks counts
  /// against (n, m). Validates structurally (kTrusted level).
  static EfGraph from_storage(std::shared_ptr<const Storage> s, NodeId n,
                              EdgeId m);

  ef::Row row(const ef::DirectionView& d, NodeId u) const {
    const auto [lo, hi] = d.offsets.value_pair(u);
    return {&d.targets, lo, static_cast<std::size_t>(hi - lo),
            static_cast<std::uint64_t>(u) * num_nodes_};
  }

  void check_node(NodeId u) const {
    LCRB_REQUIRE(u < num_nodes_, "node id out of range");
  }

  NodeId num_nodes_ = 0;
  EdgeId num_edges_ = 0;
  ef::DirectionView out_, in_;
  std::shared_ptr<const Storage> storage_;
};

namespace ef {

/// Encodes monotone sequences into the shared payload buffer; used by both
/// the in-memory builders and the serializer. Layout per sequence (all
/// 64-bit words): size, universe, low_bits, low words, high words, select
/// samples. The payload is identical in memory and on disk, so loading is a
/// single parse of either the heap buffer or the mapping.
class PayloadEncoder {
 public:
  explicit PayloadEncoder(std::vector<std::uint64_t>& buf) : buf_(&buf) {}

  /// Reserves a sequence region and returns its encoder handle.
  class Sequence {
   public:
    void push(std::uint64_t value);
    /// Must be called after exactly `size` pushes; fills the select samples.
    void finish();

   private:
    friend class PayloadEncoder;
    std::vector<std::uint64_t>* buf_ = nullptr;
    std::size_t base_ = 0;  ///< index of the size word
    std::uint64_t size_ = 0, universe_ = 0, pushed_ = 0, last_ = 0;
    std::uint32_t low_bits_ = 0;
    std::size_t low_at_ = 0, high_at_ = 0, samples_at_ = 0;
    std::uint64_t high_words_ = 0, sample_count_ = 0;
  };

  Sequence begin_sequence(std::uint64_t size, std::uint64_t universe);

 private:
  std::vector<std::uint64_t>* buf_;
};

}  // namespace ef

template <class OutFn, class InFn>
EfGraph EfGraph::from_rows(NodeId n, EdgeId m, OutFn&& out_row, InFn&& in_row) {
  std::shared_ptr<Storage> storage = make_storage();
  std::vector<std::uint64_t>& buf = storage_buffer(*storage);
  ef::PayloadEncoder enc(buf);
  const std::uint64_t target_universe =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n);

  auto encode_direction = [&](auto&& row_fn) {
    auto offsets =
        enc.begin_sequence(static_cast<std::uint64_t>(n) + 1, m + 1);
    auto targets = enc.begin_sequence(m, target_universe);
    std::uint64_t count = 0;
    offsets.push(0);
    for (NodeId u = 0; u < n; ++u) {
      const std::uint64_t base =
          static_cast<std::uint64_t>(u) * static_cast<std::uint64_t>(n);
      row_fn(u, [&](NodeId v) {
        LCRB_REQUIRE(v < n, "arc endpoint out of range");
        targets.push(base + v);
        ++count;
      });
      offsets.push(count);
    }
    LCRB_REQUIRE(count == m, "direction did not emit exactly m arcs");
    offsets.finish();
    targets.finish();
  };
  encode_direction(out_row);
  encode_direction(in_row);
  return from_storage(std::move(storage), n, m);
}

}  // namespace lcrb

/// ef::Row is a view into the graph's storage — safe to use after the
/// temporary returned by out_neighbors()/in_neighbors() is gone, as long as
/// the EfGraph lives. Lets std::ranges::begin accept rvalue rows, matching
/// std::span's borrowed-range behavior.
template <>
inline constexpr bool std::ranges::enable_borrowed_range<lcrb::ef::Row> = true;

namespace lcrb {

namespace ef {
/// Generic conversion from any GraphView backend (tests, tooling).
template <class G>
EfGraph compress(const G& g) {
  const NodeId n = g.num_nodes();
  return EfGraph::from_rows(
      n, g.num_edges(),
      [&](NodeId u, auto&& sink) {
        for (NodeId v : g.out_neighbors(u)) sink(v);
      },
      [&](NodeId u, auto&& sink) {
        for (NodeId v : g.in_neighbors(u)) sink(v);
      });
}
}  // namespace ef

}  // namespace lcrb
