// Versioned on-disk container for EfGraph with mmap zero-copy loading.
//
// Layout (little-endian, 8-byte aligned):
//   offset  0  magic   "LCEFGRPH" (8 bytes)
//   offset  8  u32 version (currently 1), u32 flags (bit 0: checksummed)
//   offset 16  u64 num_nodes
//   offset 24  u64 num_arcs
//   offset 32  u64 payload word count
//   offset 40  u64 FNV-1a checksum of the payload bytes (0 when absent)
//   offset 48  u64 reserved x2 (zero)
//   offset 64  payload: the Elias-Fano word buffer (see PayloadEncoder)
//
// The payload is byte-identical to the in-memory word buffer, so loading is
// a parse of either (a) one read() into a heap buffer — the NO_MMAP-style
// fallback and the istream path — or (b) the mmap'ed region itself, in which
// case every sequence view points straight into the page cache and load cost
// is O(validation), not O(bytes copied).
//
// Untrusted input (EfVerify::kFull, the default) is rejected with structured
// lcrb::Error on: short/forged headers, wrong magic/version, truncated
// payloads, count mismatches, non-canonical low-bit widths, forged select
// samples or popcounts, out-of-range or non-monotone adjacency rows, and
// checksum mismatches. The fuzz harness (fuzz/fuzz_ef_graph.cpp) drives
// exactly this path.
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

#include "graph/ef_graph.h"
#include "graph/ef_storage.h"
#include "util/error.h"

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define LCRB_EF_HAS_MMAP 1
#else
#define LCRB_EF_HAS_MMAP 0
#endif

namespace lcrb {

namespace {

constexpr char kEfMagic[8] = {'L', 'C', 'E', 'F', 'G', 'R', 'P', 'H'};
constexpr std::uint32_t kEfVersion = 1;
constexpr std::uint32_t kEfFlagChecksummed = 1u << 0;
constexpr std::size_t kEfHeaderBytes = 64;

struct EfHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t flags;
  std::uint64_t num_nodes;
  std::uint64_t num_arcs;
  std::uint64_t payload_words;
  std::uint64_t checksum;
  std::uint64_t reserved[2];
};
static_assert(sizeof(EfHeader) == kEfHeaderBytes);

std::uint64_t fnv1a_words(std::span<const std::uint64_t> words) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto* p = reinterpret_cast<const unsigned char*>(words.data());
  const std::size_t len = words.size() * sizeof(std::uint64_t);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void check_header(const EfHeader& h, const std::string& what) {
  LCRB_REQUIRE(std::memcmp(h.magic, kEfMagic, sizeof kEfMagic) == 0,
               "not an lcrb EF graph file: " + what);
  LCRB_REQUIRE(h.version == kEfVersion,
               "unsupported EF graph version: " + what);
  LCRB_REQUIRE(h.num_nodes <= std::numeric_limits<NodeId>::max(),
               "EF graph node count out of range: " + what);
  LCRB_REQUIRE(h.reserved[0] == 0 && h.reserved[1] == 0,
               "EF graph reserved header words must be zero: " + what);
}

EfHeader read_header(std::istream& in, const std::string& what) {
  EfHeader h{};
  in.read(reinterpret_cast<char*>(&h), sizeof h);
  LCRB_REQUIRE(in.good(), "truncated EF graph header: " + what);
  check_header(h, what);
  return h;
}

}  // namespace

// EfGraphIo is a friend of EfGraph; it bridges the private storage/parse
// hooks into the I/O free functions below.
struct EfGraphIo {
  static EfGraph parse(std::shared_ptr<const EfGraph::Storage> storage,
                       const EfHeader& h, EfVerify verify,
                       const std::string& what) {
    if ((h.flags & kEfFlagChecksummed) != 0 && verify == EfVerify::kFull) {
      LCRB_REQUIRE(fnv1a_words(storage->payload()) == h.checksum,
                   "EF graph checksum mismatch: " + what);
    }
    EfGraph g = EfGraph::from_storage(std::move(storage),
                                      static_cast<NodeId>(h.num_nodes),
                                      h.num_arcs);
    g.validate(verify);
    return g;
  }

  static std::shared_ptr<EfGraph::Storage> storage() {
    return EfGraph::make_storage();
  }

  static std::span<const std::uint64_t> payload_of(const EfGraph& g) {
    return g.storage_ == nullptr ? std::span<const std::uint64_t>{}
                                 : g.storage_->payload();
  }
};

// ---------------------------------------------------------------------------
// Save.
// ---------------------------------------------------------------------------

void EfGraph::save(std::ostream& out) const {
  const std::span<const std::uint64_t> payload = EfGraphIo::payload_of(*this);
  EfHeader h{};
  std::memcpy(h.magic, kEfMagic, sizeof kEfMagic);
  h.version = kEfVersion;
  h.flags = kEfFlagChecksummed;
  h.num_nodes = num_nodes_;
  h.num_arcs = num_edges_;
  h.payload_words = payload.size();
  h.checksum = fnv1a_words(payload);
  out.write(reinterpret_cast<const char*>(&h), sizeof h);
  out.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size() * sizeof(std::uint64_t)));
  LCRB_REQUIRE(out.good(), "EF graph write failed");
}

void EfGraph::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  LCRB_REQUIRE(out.good(), "cannot open file for writing: " + path);
  save(out);
  LCRB_REQUIRE(out.good(), "EF graph write failed: " + path);
}

// ---------------------------------------------------------------------------
// Load: read path.
// ---------------------------------------------------------------------------

EfGraph EfGraph::load(std::istream& in, EfVerify verify) {
  const EfHeader h = read_header(in, "stream");
  std::shared_ptr<Storage> storage = EfGraphIo::storage();
  std::vector<std::uint64_t>& buf = storage_buffer(*storage);
  // Chunked read: a forged word count cannot drive allocation past the
  // bytes actually present (same policy as graph/io.cpp load_binary).
  constexpr std::uint64_t kChunkWords = 1u << 16;
  std::uint64_t remaining = h.payload_words;
  while (remaining > 0) {
    const std::uint64_t take = std::min(remaining, kChunkWords);
    const std::size_t start = buf.size();
    buf.resize(start + take);
    in.read(reinterpret_cast<char*>(buf.data() + start),
            static_cast<std::streamsize>(take * sizeof(std::uint64_t)));
    LCRB_REQUIRE(in.gcount() ==
                     static_cast<std::streamsize>(take * sizeof(std::uint64_t)),
                 "truncated EF graph payload");
    remaining -= take;
  }
  return EfGraphIo::parse(std::move(storage), h, verify, "stream");
}

// ---------------------------------------------------------------------------
// Load: file path (mmap or read).
// ---------------------------------------------------------------------------

EfGraph EfGraph::load(const std::string& path, EfMapMode mode,
                      EfVerify verify) {
  if (mode == EfMapMode::kRead || (LCRB_EF_HAS_MMAP == 0)) {
    LCRB_REQUIRE(mode != EfMapMode::kMmap || LCRB_EF_HAS_MMAP != 0,
                 "mmap is not available on this platform");
    std::ifstream in(path, std::ios::binary);
    LCRB_REQUIRE(in.good(), "cannot open file: " + path);
    return load(in, verify);
  }
#if LCRB_EF_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  LCRB_REQUIRE(fd >= 0, "cannot open file: " + path);
  struct FdGuard {
    int fd;
    ~FdGuard() { ::close(fd); }
  } guard{fd};

  struct ::stat st {};
  LCRB_REQUIRE(::fstat(fd, &st) == 0, "cannot stat file: " + path);
  const auto file_len = static_cast<std::size_t>(st.st_size);
  LCRB_REQUIRE(file_len >= kEfHeaderBytes,
               "truncated EF graph header: " + path);

  void* addr = ::mmap(nullptr, file_len, PROT_READ, MAP_PRIVATE, fd, 0);
  if (addr == MAP_FAILED) {
    LCRB_REQUIRE(mode != EfMapMode::kMmap, "mmap failed: " + path);
    std::ifstream in(path, std::ios::binary);  // kAuto falls back to read()
    LCRB_REQUIRE(in.good(), "cannot open file: " + path);
    return load(in, verify);
  }

  std::shared_ptr<Storage> storage = EfGraphIo::storage();
  storage->map_addr = addr;
  storage->map_len = file_len;
  storage->payload_offset = kEfHeaderBytes;

  EfHeader h{};
  std::memcpy(&h, addr, sizeof h);
  check_header(h, path);
  // Division form: a forged payload_words must not be multiplied before the
  // bound check, or words >= 2^61 wraps mod 2^64 and the check passes while
  // payload() spans far past the mapping.
  LCRB_REQUIRE(h.payload_words <=
                   (file_len - kEfHeaderBytes) / sizeof(std::uint64_t),
               "truncated EF graph payload: " + path);
  storage->payload_words = static_cast<std::size_t>(h.payload_words);
  return EfGraphIo::parse(std::move(storage), h, verify, path);
#else
  LCRB_REQUIRE(false, "unreachable");
  return {};
#endif
}

}  // namespace lcrb
