// Internal: the EfGraph storage block shared by ef_graph.cpp and ef_io.cpp.
// Not part of the public graph API — include only from those two files.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/ef_graph.h"

#if !defined(_WIN32)
#include <sys/mman.h>
#endif

namespace lcrb {

// One contiguous word buffer (heap) or an mmap'ed region. Every
// BitView/SequenceView of the owning EfGraph points into it.
struct EfGraph::Storage {
  std::vector<std::uint64_t> heap;  ///< build/read path
  void* map_addr = nullptr;         ///< mmap path (whole file)
  std::size_t map_len = 0;
  std::size_t payload_offset = 0;  ///< byte offset of the word payload
  std::size_t payload_words = 0;   ///< payload length (mmap path)

  std::span<const std::uint64_t> payload() const {
    if (map_addr != nullptr) {
      return {reinterpret_cast<const std::uint64_t*>(
                  static_cast<const char*>(map_addr) + payload_offset),
              payload_words};
    }
    return {heap.data(), heap.size()};
  }

  ~Storage() {
#if !defined(_WIN32)
    if (map_addr != nullptr) ::munmap(map_addr, map_len);
#endif
  }
};

}  // namespace lcrb
