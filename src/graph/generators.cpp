#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "graph/builder.h"

namespace lcrb {

// ---------------------------------------------------------------------------
// Deterministic structures.
// ---------------------------------------------------------------------------

DiGraph path_graph(NodeId n, bool undirected) {
  GraphBuilder b;
  b.reserve_nodes(n);
  for (NodeId i = 0; i + 1 < n; ++i) {
    if (undirected) {
      b.add_undirected_edge(i, i + 1);
    } else {
      b.add_edge(i, i + 1);
    }
  }
  return b.finalize();
}

DiGraph cycle_graph(NodeId n, bool undirected) {
  LCRB_REQUIRE(n >= 2, "cycle needs at least 2 nodes");
  GraphBuilder b;
  b.reserve_nodes(n);
  for (NodeId i = 0; i < n; ++i) {
    const NodeId j = (i + 1) % n;
    if (undirected) {
      b.add_undirected_edge(i, j);
    } else {
      b.add_edge(i, j);
    }
  }
  return b.finalize();
}

DiGraph star_graph(NodeId n, bool undirected) {
  LCRB_REQUIRE(n >= 1, "star needs at least 1 node");
  GraphBuilder b;
  b.reserve_nodes(n);
  for (NodeId i = 1; i < n; ++i) {
    if (undirected) {
      b.add_undirected_edge(0, i);
    } else {
      b.add_edge(0, i);
    }
  }
  return b.finalize();
}

DiGraph complete_graph(NodeId n) {
  GraphBuilder b;
  b.reserve_nodes(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v) b.add_edge(u, v);
    }
  }
  return b.finalize();
}

DiGraph grid_graph(NodeId rows, NodeId cols) {
  GraphBuilder b;
  b.reserve_nodes(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_undirected_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_undirected_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.finalize();
}

// ---------------------------------------------------------------------------
// Classic random models.
// ---------------------------------------------------------------------------

DiGraph erdos_renyi(NodeId n, double p, bool directed, Rng& rng) {
  LCRB_REQUIRE(p >= 0.0 && p <= 1.0, "edge probability must be in [0,1]");
  GraphBuilder b;
  b.reserve_nodes(n);
  if (p <= 0.0 || n < 2) return b.finalize();

  // Geometric skipping over the flattened pair index space.
  const double log1mp = std::log1p(-p);
  const auto total = directed
                         ? static_cast<std::uint64_t>(n) * (n - 1)
                         : static_cast<std::uint64_t>(n) * (n - 1) / 2;
  std::uint64_t idx = 0;
  bool first = true;
  while (true) {
    std::uint64_t skip = 0;
    if (p < 1.0) {
      const double u = rng.next_double();
      skip = static_cast<std::uint64_t>(std::floor(std::log1p(-u) / log1mp));
    }
    idx += first ? skip : skip + 1;
    first = false;
    if (idx >= total) break;
    if (directed) {
      const NodeId u = static_cast<NodeId>(idx / (n - 1));
      NodeId v = static_cast<NodeId>(idx % (n - 1));
      if (v >= u) ++v;  // skip the diagonal
      b.add_edge(u, v);
    } else {
      // Unrank pair index into (u, v), u < v.
      const double nd = static_cast<double>(n);
      auto u = static_cast<NodeId>(
          nd - 2 -
          std::floor(std::sqrt(-8.0 * static_cast<double>(idx) +
                               4.0 * nd * (nd - 1) - 7.0) /
                         2.0 -
                     0.5));
      const auto base = static_cast<std::uint64_t>(u) * (n - 1) -
                        static_cast<std::uint64_t>(u) * (u + 1) / 2;
      const NodeId v = static_cast<NodeId>(idx - base + u + 1);
      b.add_undirected_edge(u, v);
    }
  }
  return b.finalize();
}

DiGraph erdos_renyi_m(NodeId n, EdgeId m, bool directed, Rng& rng) {
  GraphBuilder b;
  b.reserve_nodes(n);
  if (n < 2) return b.finalize();
  const auto max_edges = directed
                             ? static_cast<std::uint64_t>(n) * (n - 1)
                             : static_cast<std::uint64_t>(n) * (n - 1) / 2;
  LCRB_REQUIRE(m <= max_edges, "requested more edges than the graph can hold");
  // Rejection sampling on a hash set of packed pairs; fine for sparse m.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  while (seen.size() < m) {
    NodeId u = static_cast<NodeId>(rng.next_below(n));
    NodeId v = static_cast<NodeId>(rng.next_below(n));
    if (u == v) continue;
    if (!directed && u > v) std::swap(u, v);
    const std::uint64_t key = static_cast<std::uint64_t>(u) * n + v;
    if (!seen.insert(key).second) continue;
    if (directed) {
      b.add_edge(u, v);
    } else {
      b.add_undirected_edge(u, v);
    }
  }
  return b.finalize();
}

DiGraph barabasi_albert(NodeId n, NodeId m_per_node, Rng& rng) {
  LCRB_REQUIRE(m_per_node >= 1, "BA needs m >= 1");
  LCRB_REQUIRE(n > m_per_node, "BA needs n > m");
  GraphBuilder b;
  b.reserve_nodes(n);
  // `targets` holds one entry per half-edge: sampling uniformly from it is
  // sampling proportional to degree.
  std::vector<NodeId> half_edges;
  half_edges.reserve(static_cast<std::size_t>(2) * n * m_per_node);
  // Seed clique over the first m+1 nodes.
  for (NodeId u = 0; u <= m_per_node; ++u) {
    for (NodeId v = u + 1; v <= m_per_node; ++v) {
      b.add_undirected_edge(u, v);
      half_edges.push_back(u);
      half_edges.push_back(v);
    }
  }
  std::vector<NodeId> picked;
  for (NodeId u = m_per_node + 1; u < n; ++u) {
    picked.clear();
    while (picked.size() < m_per_node) {
      const NodeId t = half_edges[rng.next_below(half_edges.size())];
      if (std::find(picked.begin(), picked.end(), t) == picked.end()) {
        picked.push_back(t);
      }
    }
    for (NodeId t : picked) {
      b.add_undirected_edge(u, t);
      half_edges.push_back(u);
      half_edges.push_back(t);
    }
  }
  return b.finalize();
}

DiGraph watts_strogatz(NodeId n, NodeId k, double beta, Rng& rng) {
  LCRB_REQUIRE(k >= 2 && k % 2 == 0, "WS needs even k >= 2");
  LCRB_REQUIRE(n > k, "WS needs n > k");
  LCRB_REQUIRE(beta >= 0.0 && beta <= 1.0, "beta must be in [0,1]");
  GraphBuilder b;
  b.reserve_nodes(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId j = 1; j <= k / 2; ++j) {
      NodeId v = (u + j) % n;
      if (rng.next_bool(beta)) {
        // Rewire to a uniform random non-self target.
        NodeId w;
        do {
          w = static_cast<NodeId>(rng.next_below(n));
        } while (w == u);
        v = w;
      }
      b.add_undirected_edge(u, v);
    }
  }
  return b.finalize();
}

DiGraph configuration_model(std::span<const NodeId> out_degrees, Rng& rng) {
  const auto n = static_cast<NodeId>(out_degrees.size());
  GraphBuilder b;
  b.reserve_nodes(n);

  // Out-stubs: one entry per arc source. In-stubs: the same degree multiset
  // assigned to nodes in shuffled order, so in-degrees are exchangeable.
  std::vector<NodeId> out_stubs, in_stubs;
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId d = 0; d < out_degrees[v]; ++d) out_stubs.push_back(v);
  }
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (NodeId i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId d = 0; d < out_degrees[i]; ++d) in_stubs.push_back(order[i]);
  }
  // Shuffle in-stubs and match positionally.
  for (std::size_t i = in_stubs.size(); i > 1; --i) {
    std::swap(in_stubs[i - 1], in_stubs[rng.next_below(i)]);
  }

  std::unordered_set<std::uint64_t> seen;
  seen.reserve(out_stubs.size() * 2);
  for (std::size_t i = 0; i < out_stubs.size(); ++i) {
    NodeId u = out_stubs[i];
    NodeId v = in_stubs[i];
    // A few local re-draws dodge most self-loops/duplicates.
    for (int attempt = 0; attempt < 20; ++attempt) {
      const std::uint64_t key = static_cast<std::uint64_t>(u) * n + v;
      if (u != v && seen.insert(key).second) {
        b.add_edge(u, v);
        break;
      }
      v = in_stubs[rng.next_below(in_stubs.size())];
    }
  }
  return b.finalize();
}

// ---------------------------------------------------------------------------
// Community-structured generator.
// ---------------------------------------------------------------------------

namespace {

/// Weighted node sampler over a contiguous id range via cumulative sums.
class WeightedSampler {
 public:
  WeightedSampler(const std::vector<double>& weights, NodeId begin, NodeId end)
      : begin_(begin) {
    cum_.reserve(end - begin);
    double acc = 0.0;
    for (NodeId i = begin; i < end; ++i) {
      acc += weights[i];
      cum_.push_back(acc);
    }
  }

  NodeId sample(Rng& rng) const {
    const double x = rng.next_double() * cum_.back();
    const auto it = std::upper_bound(cum_.begin(), cum_.end(), x);
    const auto idx = static_cast<NodeId>(it - cum_.begin());
    return begin_ + std::min<NodeId>(idx, static_cast<NodeId>(cum_.size() - 1));
  }

  double total() const { return cum_.empty() ? 0.0 : cum_.back(); }

 private:
  NodeId begin_;
  std::vector<double> cum_;
};

}  // namespace

CommunityGraph make_community_graph(const CommunityGraphConfig& cfg) {
  LCRB_REQUIRE(!cfg.community_sizes.empty(), "need at least one community");
  LCRB_REQUIRE(cfg.avg_intra_degree >= 0 && cfg.avg_inter_degree >= 0,
               "degrees must be non-negative");
  NodeId n = 0;
  for (NodeId s : cfg.community_sizes) {
    LCRB_REQUIRE(s >= 1, "community sizes must be positive");
    n += s;
  }

  Rng rng(cfg.seed);
  CommunityGraph out;
  out.num_communities = static_cast<NodeId>(cfg.community_sizes.size());
  out.membership.resize(n);

  // Nodes are laid out community-by-community; record boundaries.
  std::vector<NodeId> begin(cfg.community_sizes.size() + 1, 0);
  for (std::size_t c = 0; c < cfg.community_sizes.size(); ++c) {
    begin[c + 1] = begin[c] + cfg.community_sizes[c];
    for (NodeId v = begin[c]; v < begin[c + 1]; ++v) {
      out.membership[v] = static_cast<CommunityId>(c);
    }
  }

  // Degree-correction weights: Pareto(alpha-1) tail, or uniform.
  std::vector<double> w(n, 1.0);
  if (cfg.degree_exponent > 1.0) {
    const double inv = 1.0 / (cfg.degree_exponent - 1.0);
    for (NodeId v = 0; v < n; ++v) {
      const double u = rng.next_double();
      w[v] = std::min(std::pow(1.0 - u, -inv), 50.0);  // cap extreme hubs
    }
  }

  GraphBuilder b;
  b.reserve_nodes(n);
  const double arcs_per_edge = cfg.symmetric ? 2.0 : 1.0;

  // Track distinct pairs so weighted-sampling collisions don't erode the
  // degree targets (heavy hubs collide often).
  std::unordered_set<std::uint64_t> seen;
  auto try_add = [&](NodeId u, NodeId v) {
    if (u == v) return false;
    if (cfg.symmetric && u > v) std::swap(u, v);
    const std::uint64_t key = static_cast<std::uint64_t>(u) * n + v;
    if (!seen.insert(key).second) return false;
    if (cfg.symmetric) {
      b.add_undirected_edge(u, v);
    } else {
      b.add_edge(u, v);
    }
    return true;
  };

  // Intra-community edges: draw until the per-community quota of *distinct*
  // pairs is met (attempt cap guards tiny dense communities).
  for (std::size_t c = 0; c < cfg.community_sizes.size(); ++c) {
    const NodeId size = cfg.community_sizes[c];
    if (size < 2) continue;
    WeightedSampler sampler(w, begin[c], begin[c + 1]);
    const auto max_pairs = static_cast<std::uint64_t>(size) * (size - 1) /
                           (cfg.symmetric ? 2 : 1);
    auto target = static_cast<std::uint64_t>(
        std::llround(cfg.avg_intra_degree * size / arcs_per_edge));
    target = std::min(target, max_pairs * 8 / 10);
    std::uint64_t added = 0;
    for (std::uint64_t attempts = 0; added < target && attempts < 30 * target;
         ++attempts) {
      added += try_add(sampler.sample(rng), sampler.sample(rng));
    }
  }

  // Inter-community edges: sample endpoints globally, reject same community.
  if (cfg.community_sizes.size() > 1 && cfg.avg_inter_degree > 0) {
    WeightedSampler global(w, 0, n);
    const auto target = static_cast<std::uint64_t>(
        std::llround(cfg.avg_inter_degree * n / arcs_per_edge));
    std::uint64_t added = 0;
    for (std::uint64_t attempts = 0; added < target && attempts < 30 * target;
         ++attempts) {
      const NodeId u = global.sample(rng);
      const NodeId v = global.sample(rng);
      if (out.membership[u] == out.membership[v]) continue;
      added += try_add(u, v);
    }
  }

  out.graph = b.finalize();
  return out;
}

std::vector<NodeId> power_law_sizes(NodeId total, NodeId min_size,
                                    NodeId max_size, double exponent,
                                    Rng& rng) {
  LCRB_REQUIRE(min_size >= 1 && max_size >= min_size, "bad size bounds");
  LCRB_REQUIRE(total >= min_size, "total smaller than min community size");
  std::vector<NodeId> sizes;
  NodeId used = 0;
  const double lo = std::pow(static_cast<double>(min_size), 1.0 - exponent);
  const double hi = std::pow(static_cast<double>(max_size), 1.0 - exponent);
  while (used < total) {
    // Inverse-CDF sample of a bounded power law.
    const double u = rng.next_double();
    const double x = std::pow(lo + u * (hi - lo), 1.0 / (1.0 - exponent));
    auto s = static_cast<NodeId>(std::llround(x));
    s = std::clamp(s, min_size, max_size);
    if (used + s > total) s = total - used;
    if (s < min_size && !sizes.empty()) {
      // Fold a too-small remainder into the previous community.
      sizes.back() += s;
      used += s;
      break;
    }
    sizes.push_back(s);
    used += s;
  }
  return sizes;
}

// ---------------------------------------------------------------------------
// Dataset substitutes.
// ---------------------------------------------------------------------------

namespace {

/// Scales a size, keeping at least `min_v`.
NodeId scaled(double scale, NodeId v, NodeId min_v = 2) {
  return std::max<NodeId>(min_v, static_cast<NodeId>(std::llround(scale * v)));
}

}  // namespace

DatasetSubstitute make_hep_like(std::uint64_t seed, double scale) {
  LCRB_REQUIRE(scale > 0.0 && scale <= 1.0, "scale must be in (0,1]");
  Rng rng(seed ^ 0x48455000);  // "HEP"
  const NodeId total = scaled(scale, 15233, 64);
  const NodeId planted = scaled(scale, 308, 12);

  std::vector<NodeId> sizes{planted};
  auto rest = power_law_sizes(total - planted, std::max<NodeId>(8, scaled(scale, 10, 4)),
                              std::max<NodeId>(16, scaled(scale, 600, 16)), 2.0, rng);
  sizes.insert(sizes.end(), rest.begin(), rest.end());

  CommunityGraphConfig cfg;
  cfg.community_sizes = sizes;
  // Collaboration network: avg total degree 7.73, sparse across communities.
  cfg.avg_intra_degree = 6.4;
  cfg.avg_inter_degree = 1.3;
  cfg.degree_exponent = 2.7;
  cfg.symmetric = true;
  cfg.seed = seed;

  DatasetSubstitute out;
  out.net = make_community_graph(cfg);
  out.planted_medium = 0;  // community 0 is the planted ~308-node one
  return out;
}

DatasetSubstitute make_enron_like(std::uint64_t seed, double scale) {
  LCRB_REQUIRE(scale > 0.0 && scale <= 1.0, "scale must be in (0,1]");
  Rng rng(seed ^ 0x454e524fULL);  // "ENRO"
  const NodeId total = scaled(scale, 36692, 128);
  const NodeId small = scaled(scale, 80, 8);
  const NodeId large = scaled(scale, 2631, 32);

  std::vector<NodeId> sizes{small, large};
  auto rest = power_law_sizes(total - small - large,
                              std::max<NodeId>(8, scaled(scale, 20, 4)),
                              std::max<NodeId>(16, scaled(scale, 2000, 16)),
                              1.9, rng);
  sizes.insert(sizes.end(), rest.begin(), rest.end());

  CommunityGraphConfig cfg;
  cfg.community_sizes = sizes;
  // Email network: avg out-degree 10.0, directed, hubby.
  cfg.avg_intra_degree = 8.5;
  cfg.avg_inter_degree = 1.5;
  cfg.degree_exponent = 2.3;
  cfg.symmetric = false;
  cfg.seed = seed;

  DatasetSubstitute out;
  out.net = make_community_graph(cfg);
  out.planted_small = 0;   // ~80-node community
  out.planted_medium = 1;  // ~2631-node community
  return out;
}

}  // namespace lcrb
