// Graph generators.
//
// Two groups:
//  * deterministic mini-graphs used by unit tests (path/cycle/star/...),
//  * random social-network generators, including the planted-partition
//    (degree-corrected SBM) generator that substitutes for the paper's Enron
//    and Hep datasets (see DESIGN.md §4).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/types.h"

namespace lcrb {

// ---------------------------------------------------------------------------
// Deterministic structures (tests & examples).
// ---------------------------------------------------------------------------

/// 0 -> 1 -> ... -> n-1 (plus reverse arcs when undirected).
DiGraph path_graph(NodeId n, bool undirected = false);
/// Path plus arc n-1 -> 0.
DiGraph cycle_graph(NodeId n, bool undirected = false);
/// Node 0 is the hub; arcs point 0 -> i (or both ways when undirected).
DiGraph star_graph(NodeId n, bool undirected = false);
/// All ordered pairs (u, v), u != v.
DiGraph complete_graph(NodeId n);
/// rows x cols lattice, 4-neighborhood, undirected (bidirected arcs).
DiGraph grid_graph(NodeId rows, NodeId cols);

// ---------------------------------------------------------------------------
// Classic random models.
// ---------------------------------------------------------------------------

/// G(n, p). Uses geometric edge skipping, O(E) expected time.
DiGraph erdos_renyi(NodeId n, double p, bool directed, Rng& rng);

/// G(n, m): exactly-m distinct arcs (or undirected edges) sampled uniformly.
DiGraph erdos_renyi_m(NodeId n, EdgeId m, bool directed, Rng& rng);

/// Barabási–Albert preferential attachment, `m_per_node` edges per new node;
/// undirected edges are emitted as arc pairs.
DiGraph barabasi_albert(NodeId n, NodeId m_per_node, Rng& rng);

/// Watts–Strogatz ring (k nearest neighbors, rewire prob beta), bidirected.
DiGraph watts_strogatz(NodeId n, NodeId k, double beta, Rng& rng);

/// Directed configuration model: a random simple digraph whose out-degree
/// sequence approximates `out_degrees` (in-degrees follow the same multiset,
/// shuffled). Stub-matching with rejection of self-loops and duplicates; a
/// bounded number of retries means heavy-tailed sequences may lose a few
/// arcs (the shortfall is reported by comparing num_edges()).
DiGraph configuration_model(std::span<const NodeId> out_degrees, Rng& rng);

// ---------------------------------------------------------------------------
// Community-structured social networks (the dataset substitute).
// ---------------------------------------------------------------------------

/// Configuration for the degree-corrected planted-partition generator.
struct CommunityGraphConfig {
  /// Planted community sizes; must sum to the node count.
  std::vector<NodeId> community_sizes;
  /// Expected arcs per node whose endpoints share a community.
  double avg_intra_degree = 6.0;
  /// Expected arcs per node crossing communities. Small relative to
  /// avg_intra_degree — that sparsity is the paper's core assumption.
  double avg_inter_degree = 1.5;
  /// Pareto exponent for node weights (heavier tail = hubbier graph);
  /// <= 1 disables degree correction (uniform endpoints).
  double degree_exponent = 2.5;
  /// Emit every edge as a symmetric arc pair (collaboration-network style).
  bool symmetric = false;
  std::uint64_t seed = 1;
};

/// A generated graph together with its planted ground-truth communities.
struct CommunityGraph {
  DiGraph graph;
  std::vector<CommunityId> membership;  ///< node -> planted community
  NodeId num_communities = 0;
};

CommunityGraph make_community_graph(const CommunityGraphConfig& cfg);

/// Random community sizes ~ size^-exponent in [min_size, max_size] summing to
/// exactly `total` (last block clamped).
std::vector<NodeId> power_law_sizes(NodeId total, NodeId min_size,
                                    NodeId max_size, double exponent, Rng& rng);

// ---------------------------------------------------------------------------
// Paper dataset substitutes (calibrated shapes; see DESIGN.md §4).
// ---------------------------------------------------------------------------

/// Hep collaboration-like network: ~15,233 nodes, avg degree ~7.7, symmetric
/// arcs, power-law communities including a planted one of ~308 nodes (its id
/// is returned in `planted`). `scale` in (0, 1] shrinks everything uniformly.
struct DatasetSubstitute {
  CommunityGraph net;
  CommunityId planted_small = kInvalidCommunity;  ///< ~80-node community (Enron)
  CommunityId planted_medium = kInvalidCommunity; ///< ~308 (Hep) / ~2631 (Enron)
};
DatasetSubstitute make_hep_like(std::uint64_t seed, double scale = 1.0);
DatasetSubstitute make_enron_like(std::uint64_t seed, double scale = 1.0);

}  // namespace lcrb
