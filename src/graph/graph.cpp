#include "graph/graph.h"

#include <algorithm>

namespace lcrb {

bool DiGraph::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  const auto nbrs = out_neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

}  // namespace lcrb
