#include "graph/graph.h"

#include <algorithm>

#include "graph/graph_view.h"
#include "util/check.h"

namespace lcrb {

bool DiGraph::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  return graph_algo::row_contains(out_neighbors(u), v);
}

void DiGraph::validate() const {
  const std::size_t n = num_nodes_;
  auto check_offsets = [&](const std::vector<EdgeId>& off, std::size_t entries,
                           const char* which) {
    LCRB_REQUIRE(off.size() == n + 1,
                 std::string(which) + " offsets must have num_nodes + 1 entries");
    LCRB_REQUIRE(off.front() == 0, std::string(which) + " offsets must start at 0");
    LCRB_REQUIRE(off.back() == entries,
                 std::string(which) + " offsets must end at the arc count");
    for (std::size_t i = 0; i < n; ++i) {
      LCRB_REQUIRE(off[i] <= off[i + 1],
                   std::string(which) + " offsets must be monotone");
    }
  };
  check_offsets(out_offsets_, out_targets_.size(), "out");
  check_offsets(in_offsets_, in_sources_.size(), "in");
  LCRB_REQUIRE(out_targets_.size() == in_sources_.size(),
               "out and in CSR must hold the same number of arcs");

  auto check_rows = [&](const std::vector<EdgeId>& off,
                        const std::vector<NodeId>& adj, const char* which) {
    for (std::size_t v = 0; v < n; ++v) {
      for (EdgeId e = off[v]; e < off[v + 1]; ++e) {
        LCRB_REQUIRE(adj[e] < num_nodes_,
                     std::string(which) + " CSR endpoint out of range");
        LCRB_REQUIRE(e == off[v] || adj[e - 1] <= adj[e],
                     std::string(which) + " adjacency row must be sorted");
      }
    }
  };
  check_rows(out_offsets_, out_targets_, "out");
  check_rows(in_offsets_, in_sources_, "in");

  // The in-CSR must be the exact transpose of the out-CSR. Rebuild it by the
  // same counting sort GraphBuilder uses (stable in source order, so each
  // in-row comes out sorted) and compare verbatim.
  std::vector<EdgeId> off(n + 1, 0);
  for (NodeId v : out_targets_) ++off[static_cast<std::size_t>(v) + 1];
  for (std::size_t i = 0; i < n; ++i) off[i + 1] += off[i];
  LCRB_REQUIRE(off == in_offsets_, "in offsets are not the out transpose");
  std::vector<EdgeId> cursor(off.begin(), off.end() - 1);
  std::vector<NodeId> sources(out_targets_.size());
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (EdgeId e = out_offsets_[u]; e < out_offsets_[u + 1]; ++e) {
      sources[cursor[out_targets_[e]]++] = u;
    }
  }
  LCRB_REQUIRE(sources == in_sources_, "in sources are not the out transpose");
}

}  // namespace lcrb
