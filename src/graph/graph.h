// Immutable directed graph in CSR (compressed sparse row) form.
//
// Both adjacency directions are materialized at construction: forward
// diffusion walks out-edges, while the SCBG algorithm's backward search trees
// walk in-edges. All traversal is allocation-free over std::span.
#pragma once

#include <span>
#include <vector>

#include "util/error.h"
#include "util/types.h"

namespace lcrb {

class GraphBuilder;

/// Immutable directed graph. Construct via GraphBuilder, generators, or I/O.
class DiGraph {
 public:
  DiGraph() = default;

  NodeId num_nodes() const { return num_nodes_; }
  /// Number of arcs (directed edges).
  EdgeId num_edges() const { return static_cast<EdgeId>(out_targets_.size()); }

  bool empty() const { return num_nodes_ == 0; }

  NodeId out_degree(NodeId u) const {
    check_node(u);
    return static_cast<NodeId>(out_offsets_[u + 1] - out_offsets_[u]);
  }

  NodeId in_degree(NodeId v) const {
    check_node(v);
    return static_cast<NodeId>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// Targets of u's out-edges, sorted ascending.
  std::span<const NodeId> out_neighbors(NodeId u) const {
    check_node(u);
    return {out_targets_.data() + out_offsets_[u],
            out_targets_.data() + out_offsets_[u + 1]};
  }

  /// Sources of v's in-edges, sorted ascending.
  std::span<const NodeId> in_neighbors(NodeId v) const {
    check_node(v);
    return {in_sources_.data() + in_offsets_[v],
            in_sources_.data() + in_offsets_[v + 1]};
  }

  /// True iff arc (u, v) exists. O(log out_degree(u)) row probes via the
  /// shared row-range binary search (graph/graph_view.h).
  bool has_edge(NodeId u, NodeId v) const;

  /// Heap footprint of both CSR directions (capacity-based, matching the
  /// session registry's accounting convention).
  std::size_t memory_bytes() const {
    return out_offsets_.capacity() * sizeof(EdgeId) +
           in_offsets_.capacity() * sizeof(EdgeId) +
           out_targets_.capacity() * sizeof(NodeId) +
           in_sources_.capacity() * sizeof(NodeId);
  }

  /// Mean number of out-edges per node (the paper's "average node degree"
  /// for directed graphs).
  double average_out_degree() const {
    return num_nodes_ == 0
               ? 0.0
               : static_cast<double>(num_edges()) / static_cast<double>(num_nodes_);
  }

  /// Throws lcrb::Error unless the CSR representation is well-formed: both
  /// offset arrays are monotone and sized n+1, every endpoint is in range,
  /// every adjacency row is sorted ascending, and the in-CSR is exactly the
  /// transpose of the out-CSR. O(n + m). Called automatically from
  /// GraphBuilder::finalize under LCRB_ENABLE_INVARIANTS.
  void validate() const;

 private:
  friend class GraphBuilder;

  void check_node(NodeId u) const {
    LCRB_REQUIRE(u < num_nodes_, "node id out of range");
  }

  NodeId num_nodes_ = 0;
  std::vector<EdgeId> out_offsets_ = {0};
  std::vector<NodeId> out_targets_;
  std::vector<EdgeId> in_offsets_ = {0};
  std::vector<NodeId> in_sources_;
};

}  // namespace lcrb
