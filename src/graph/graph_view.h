// The graph-storage seam: the compile-time contract every graph backend
// satisfies and every graph consumer is templated on.
//
// A GraphView exposes node/arc counts, per-node degrees, and both adjacency
// directions as iterable ranges of ascending NodeIds. The ranges are
// random-access and sized, but NOT necessarily contiguous memory: the plain
// CSR backend (DiGraph) hands out std::span, while the Elias-Fano backend
// (EfGraph) hands out decoding views whose operator[] is a select into the
// compressed bitsequence. Consumers therefore iterate rows
// (`for (NodeId v : g.out_neighbors(u))`) or index them (`row[i]`,
// `row.size()`) and never touch raw pointers.
//
// Algorithms are written as `template <class G> ... requires GraphView<G>`
// (or with the shorthand parameter `GraphView auto`), live in their usual
// .cpp files, and are explicitly instantiated for the two backends — the
// seam is resolved entirely at compile time; no virtual dispatch exists on
// any traversal path. Runtime backend choice happens once per query at the
// orchestration boundary via GraphRef/GraphAny (graph/backend.h).
#pragma once

#include <concepts>
#include <cstdint>
#include <iterator>
#include <ranges>

#include "util/types.h"

namespace lcrb {

/// Contract of a graph-storage backend. `out_neighbors(u)` / `in_neighbors(u)`
/// are sized random-access ranges of NodeId, sorted ascending.
template <class G>
concept GraphView = requires(const G& g, NodeId u, NodeId v, std::size_t i) {
  { g.num_nodes() } -> std::convertible_to<NodeId>;
  { g.num_edges() } -> std::convertible_to<EdgeId>;
  { g.empty() } -> std::convertible_to<bool>;
  { g.out_degree(u) } -> std::convertible_to<NodeId>;
  { g.in_degree(u) } -> std::convertible_to<NodeId>;
  { g.out_neighbors(u).size() } -> std::convertible_to<std::size_t>;
  { g.out_neighbors(u).empty() } -> std::convertible_to<bool>;
  { g.out_neighbors(u)[i] } -> std::convertible_to<NodeId>;
  { *std::ranges::begin(g.out_neighbors(u)) } -> std::convertible_to<NodeId>;
  { std::ranges::end(g.out_neighbors(u)) };
  { g.in_neighbors(u).size() } -> std::convertible_to<std::size_t>;
  { g.in_neighbors(u)[i] } -> std::convertible_to<NodeId>;
  { *std::ranges::begin(g.in_neighbors(u)) } -> std::convertible_to<NodeId>;
  { std::ranges::end(g.in_neighbors(u)) };
  { g.has_edge(u, v) } -> std::convertible_to<bool>;
  { g.average_out_degree() } -> std::convertible_to<double>;
};

namespace graph_algo {

/// Binary search for `v` in an ascending random-access row, reporting the
/// number of element probes. Both backends' has_edge are thin wrappers over
/// this, so membership costs O(log d) row accesses on CSR (span loads) and
/// on Elias-Fano (selects) alike — the unit test pins the probe bound.
template <class Row>
bool row_binary_search(const Row& row, NodeId v, std::size_t* probes) {
  std::size_t lo = 0, hi = row.size(), count = 0;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    ++count;
    const NodeId x = row[mid];
    if (x < v) {
      lo = mid + 1;
    } else if (x > v) {
      hi = mid;
    } else {
      if (probes != nullptr) *probes = count;
      return true;
    }
  }
  if (probes != nullptr) *probes = count;
  return false;
}

/// Membership without probe accounting.
template <class Row>
bool row_contains(const Row& row, NodeId v) {
  return row_binary_search(row, v, nullptr);
}

}  // namespace graph_algo

}  // namespace lcrb
