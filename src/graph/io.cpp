#include "graph/io.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "graph/builder.h"
#include "util/error.h"

namespace lcrb {

namespace {

constexpr std::uint64_t kMagic = 0x4c43524247463031ULL;  // "LCRBGF01"

std::uint64_t fnv1a(const void* data, std::size_t len, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

DiGraph load_edge_list(const std::string& path, bool undirected) {
  std::ifstream in(path);
  LCRB_REQUIRE(in.good(), "cannot open edge list: " + path);
  return load_edge_list(in, undirected);
}

DiGraph load_edge_list(std::istream& in, bool undirected) {
  GraphBuilder b;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Trim leading whitespace, skip blanks and comments.
    std::size_t pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos) continue;
    if (line[pos] == '#' || line[pos] == '%') continue;
    std::istringstream fields(line);
    long long u = -1, v = -1;
    if (!(fields >> u >> v) || u < 0 || v < 0 ||
        u > static_cast<long long>(kInvalidNode - 1) ||
        v > static_cast<long long>(kInvalidNode - 1)) {
      throw Error("malformed edge list line " + std::to_string(lineno) + ": '" +
                  line + "'");
    }
    if (undirected) {
      b.add_undirected_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
    } else {
      b.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
    }
  }
  return b.finalize();
}

void save_edge_list(const DiGraph& g, const std::string& path) {
  std::ofstream out(path);
  LCRB_REQUIRE(out.good(), "cannot open file for writing: " + path);
  save_edge_list(g, out);
  LCRB_REQUIRE(out.good(), "edge list write failed: " + path);
}

void save_edge_list(const DiGraph& g, std::ostream& out) {
  out << "# lcrb edge list: " << g.num_nodes() << " nodes, " << g.num_edges()
      << " arcs\n";
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.out_neighbors(u)) out << u << ' ' << v << '\n';
  }
}

void save_binary(const DiGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  LCRB_REQUIRE(out.good(), "cannot open file for writing: " + path);

  std::vector<std::pair<NodeId, NodeId>> arcs;
  arcs.reserve(g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.out_neighbors(u)) arcs.emplace_back(u, v);
  }

  const std::uint64_t n = g.num_nodes();
  const std::uint64_t m = arcs.size();
  std::uint64_t checksum = 0xcbf29ce484222325ULL;
  checksum = fnv1a(&n, sizeof n, checksum);
  checksum = fnv1a(&m, sizeof m, checksum);
  if (m) checksum = fnv1a(arcs.data(), m * sizeof(arcs[0]), checksum);

  out.write(reinterpret_cast<const char*>(&kMagic), sizeof kMagic);
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  out.write(reinterpret_cast<const char*>(&m), sizeof m);
  if (m) out.write(reinterpret_cast<const char*>(arcs.data()),
                   static_cast<std::streamsize>(m * sizeof(arcs[0])));
  out.write(reinterpret_cast<const char*>(&checksum), sizeof checksum);
  LCRB_REQUIRE(out.good(), "binary graph write failed: " + path);
}

DiGraph load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  LCRB_REQUIRE(in.good(), "cannot open binary graph: " + path);
  return load_binary(in);
}

DiGraph load_binary(std::istream& in) {
  std::uint64_t magic = 0, n = 0, m = 0, stored = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  LCRB_REQUIRE(in.good() && magic == kMagic, "not an lcrb binary graph");
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  in.read(reinterpret_cast<char*>(&m), sizeof m);
  LCRB_REQUIRE(in.good() && n <= kInvalidNode, "corrupt binary graph header");

  // The header's arc count is untrusted: read in bounded chunks so a forged
  // count allocates memory proportional to the bytes actually present, not
  // to the claimed 2^64. Truncation surfaces as a short read, not OOM.
  constexpr std::uint64_t kChunkArcs = 1u << 16;
  std::vector<std::pair<NodeId, NodeId>> arcs;
  arcs.reserve(static_cast<std::size_t>(std::min(m, kChunkArcs)));
  std::uint64_t remaining = m;
  while (remaining > 0) {
    const std::uint64_t batch = std::min(remaining, kChunkArcs);
    const std::size_t old = arcs.size();
    arcs.resize(old + static_cast<std::size_t>(batch));
    in.read(reinterpret_cast<char*>(arcs.data() + old),
            static_cast<std::streamsize>(batch * sizeof(arcs[0])));
    LCRB_REQUIRE(in.good(), "binary graph truncated");
    remaining -= batch;
  }
  in.read(reinterpret_cast<char*>(&stored), sizeof stored);
  LCRB_REQUIRE(in.good(), "binary graph truncated");

  std::uint64_t checksum = 0xcbf29ce484222325ULL;
  checksum = fnv1a(&n, sizeof n, checksum);
  checksum = fnv1a(&m, sizeof m, checksum);
  if (m) checksum = fnv1a(arcs.data(), m * sizeof(arcs[0]), checksum);
  LCRB_REQUIRE(checksum == stored, "binary graph checksum mismatch");

  GraphBuilder b;
  b.reserve_nodes(static_cast<NodeId>(n));
  b.reserve_edges(arcs.size());
  for (const auto& [u, v] : arcs) {
    LCRB_REQUIRE(u < n && v < n, "binary graph arc endpoint out of range");
    b.add_edge(u, v);
  }
  return b.finalize();
}

}  // namespace lcrb
