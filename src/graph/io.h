// Edge-list text I/O (SNAP-style) and a compact binary format.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace lcrb {

/// Loads a whitespace-separated edge list: one "u v" pair per line, '#' and
/// '%' comment lines ignored. When `undirected` is set every pair is added in
/// both directions (the paper's treatment of the Hep collaboration network).
/// Throws lcrb::Error on malformed lines or unreadable files.
DiGraph load_edge_list(const std::string& path, bool undirected = false);
DiGraph load_edge_list(std::istream& in, bool undirected = false);

/// Writes "u v" lines, one arc per line, preceded by a comment header.
void save_edge_list(const DiGraph& g, const std::string& path);
void save_edge_list(const DiGraph& g, std::ostream& out);

/// Binary round-trip format: magic, node/arc counts, arc array, and an
/// FNV-1a checksum so truncated or corrupted files are rejected. The loader
/// reads the arc array in bounded chunks, so a forged header count cannot
/// drive allocation past the bytes actually present, and rejects arcs whose
/// endpoints fall outside the declared node count.
void save_binary(const DiGraph& g, const std::string& path);
DiGraph load_binary(const std::string& path);
DiGraph load_binary(std::istream& in);

}  // namespace lcrb
