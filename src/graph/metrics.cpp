#include "graph/metrics.h"

#include <algorithm>
#include <sstream>

#include "graph/ef_graph.h"
#include "graph/graph.h"
#include "util/stats.h"

namespace lcrb {

template <GraphView G>
DegreeStats degree_stats(const G& g) {
  DegreeStats s;
  const NodeId n = g.num_nodes();
  if (n == 0) return s;
  std::vector<double> outs;
  outs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId dout = g.out_degree(v);
    const NodeId din = g.in_degree(v);
    outs.push_back(static_cast<double>(dout));
    s.max_out = std::max(s.max_out, dout);
    s.max_in = std::max(s.max_in, din);
    if (dout == 0 && din == 0) ++s.isolated;
  }
  s.avg_out = mean_of(outs);
  s.p50_out = percentile_of(outs, 50.0);
  s.p90_out = percentile_of(outs, 90.0);
  s.p99_out = percentile_of(outs, 99.0);
  return s;
}

template <GraphView G>
ComponentResult weakly_connected_components(const G& g) {
  ComponentResult r;
  const NodeId n = g.num_nodes();
  r.labels.assign(n, kInvalidNode);
  std::vector<NodeId> stack;
  for (NodeId root = 0; root < n; ++root) {
    if (r.labels[root] != kInvalidNode) continue;
    const NodeId label = r.count++;
    NodeId size = 0;
    stack.push_back(root);
    r.labels[root] = label;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      ++size;
      auto visit = [&](NodeId w) {
        if (r.labels[w] == kInvalidNode) {
          r.labels[w] = label;
          stack.push_back(w);
        }
      };
      for (NodeId w : g.out_neighbors(u)) visit(w);
      for (NodeId w : g.in_neighbors(u)) visit(w);
    }
    r.largest_size = std::max(r.largest_size, size);
  }
  return r;
}

template <GraphView G>
double reciprocity(const G& g) {
  if (g.num_edges() == 0) return 0.0;
  EdgeId mutual = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.out_neighbors(u)) {
      if (g.has_edge(v, u)) ++mutual;
    }
  }
  return static_cast<double>(mutual) / static_cast<double>(g.num_edges());
}

template <GraphView G>
std::string describe(const G& g) {
  const DegreeStats d = degree_stats(g);
  const ComponentResult c = weakly_connected_components(g);
  std::ostringstream os;
  os << "n=" << g.num_nodes() << " arcs=" << g.num_edges()
     << " avg_out_deg=" << d.avg_out << " max_out=" << d.max_out
     << " wcc=" << c.count << " largest_wcc=" << c.largest_size;
  return os.str();
}

#define LCRB_INSTANTIATE_METRICS(G)                       \
  template DegreeStats degree_stats<G>(const G&);         \
  template ComponentResult weakly_connected_components<G>(const G&); \
  template double reciprocity<G>(const G&);               \
  template std::string describe<G>(const G&);

LCRB_INSTANTIATE_METRICS(DiGraph)
LCRB_INSTANTIATE_METRICS(EfGraph)

#undef LCRB_INSTANTIATE_METRICS

}  // namespace lcrb
