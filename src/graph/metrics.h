// Structural graph reports used for dataset calibration and examples.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/graph_view.h"
#include "util/types.h"

namespace lcrb {

/// Degree summary over out-degrees (add `in` variants where they differ).
struct DegreeStats {
  double avg_out = 0.0;
  NodeId max_out = 0;
  NodeId max_in = 0;
  NodeId isolated = 0;   ///< nodes with no in- and no out-edges
  double p50_out = 0.0;  ///< median out-degree
  double p90_out = 0.0;
  double p99_out = 0.0;
};

template <GraphView G>
DegreeStats degree_stats(const G& g);

/// Weakly connected components: labels[v] in [0, count).
struct ComponentResult {
  std::vector<NodeId> labels;
  NodeId count = 0;
  NodeId largest_size = 0;
};

template <GraphView G>
ComponentResult weakly_connected_components(const G& g);

/// Fraction of arcs (u,v) whose reverse (v,u) also exists. 1.0 for symmetric
/// graphs (the Hep substitute), well below 1 for the Enron substitute.
template <GraphView G>
double reciprocity(const G& g);

/// One-line human-readable summary ("n=... m=... avg_deg=... wcc=...").
template <GraphView G>
std::string describe(const G& g);

}  // namespace lcrb
