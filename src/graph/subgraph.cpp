#include "graph/subgraph.h"

#include "graph/builder.h"
#include "graph/ef_graph.h"

namespace lcrb {

template <GraphView G>
InducedSubgraph induced_subgraph(const G& g,
                                 std::span<const NodeId> nodes) {
  InducedSubgraph out;
  out.from_original.assign(g.num_nodes(), kInvalidNode);
  out.to_original.reserve(nodes.size());
  for (NodeId v : nodes) {
    LCRB_REQUIRE(v < g.num_nodes(), "subgraph node out of range");
    LCRB_REQUIRE(out.from_original[v] == kInvalidNode,
                 "duplicate node in subgraph selection");
    out.from_original[v] = static_cast<NodeId>(out.to_original.size());
    out.to_original.push_back(v);
  }

  GraphBuilder b;
  b.reserve_nodes(static_cast<NodeId>(out.to_original.size()));
  for (NodeId new_u = 0; new_u < out.to_original.size(); ++new_u) {
    const NodeId old_u = out.to_original[new_u];
    for (NodeId old_v : g.out_neighbors(old_u)) {
      const NodeId new_v = out.from_original[old_v];
      if (new_v != kInvalidNode) b.add_edge(new_u, new_v);
    }
  }
  out.graph = b.finalize();
  return out;
}

template InducedSubgraph induced_subgraph<DiGraph>(const DiGraph&,
                                                   std::span<const NodeId>);
template InducedSubgraph induced_subgraph<EfGraph>(const EfGraph&,
                                                   std::span<const NodeId>);

}  // namespace lcrb
