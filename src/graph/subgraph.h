// Induced subgraph extraction with id remapping (used to zoom into a single
// community for examples and tests).
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_view.h"
#include "util/types.h"

namespace lcrb {

/// An induced subgraph plus the mapping between new and original node ids.
struct InducedSubgraph {
  DiGraph graph;
  std::vector<NodeId> to_original;    ///< new id -> original id
  std::vector<NodeId> from_original;  ///< original id -> new id (kInvalidNode if absent)
};

/// Subgraph induced by `nodes` (duplicates rejected).
template <GraphView G>
InducedSubgraph induced_subgraph(const G& g, std::span<const NodeId> nodes);

}  // namespace lcrb
