#include "graph/transform.h"

#include <algorithm>

#include "graph/builder.h"
#include "graph/ef_graph.h"
#include "graph/metrics.h"

namespace lcrb {

template <GraphView G>
DiGraph transpose(const G& g) {
  GraphBuilder b;
  b.reserve_nodes(g.num_nodes());
  b.reserve_edges(g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.out_neighbors(u)) b.add_edge(v, u);
  }
  return b.finalize();
}

template <GraphView G>
DiGraph symmetrize(const G& g) {
  GraphBuilder b;
  b.reserve_nodes(g.num_nodes());
  b.reserve_edges(g.num_edges() * 2);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.out_neighbors(u)) b.add_undirected_edge(u, v);
  }
  return b.finalize();
}

template <GraphView G>
InducedSubgraph k_core(const G& g, NodeId k) {
  // Peel iteratively on the undirected degree. Parallel arcs were deduped at
  // build time, but (u,v) and (v,u) both count toward degree — consistent
  // with treating the pair as two social ties.
  std::vector<NodeId> degree(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    degree[v] = g.out_degree(v) + g.in_degree(v);
  }
  std::vector<bool> removed(g.num_nodes(), false);
  std::vector<NodeId> stack;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (degree[v] < k) stack.push_back(v);
  }
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    if (removed[v]) continue;
    removed[v] = true;
    auto relax = [&](NodeId w) {
      if (!removed[w] && degree[w]-- == k) stack.push_back(w);
    };
    for (NodeId w : g.out_neighbors(v)) relax(w);
    for (NodeId w : g.in_neighbors(v)) relax(w);
  }

  std::vector<NodeId> keep;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!removed[v]) keep.push_back(v);
  }
  return induced_subgraph(g, keep);
}

template <GraphView G>
InducedSubgraph largest_wcc(const G& g) {
  const ComponentResult c = weakly_connected_components(g);
  if (c.count == 0) return induced_subgraph(g, {});
  // Find the label with the most members.
  std::vector<NodeId> counts(c.count, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) ++counts[c.labels[v]];
  const NodeId best = static_cast<NodeId>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
  std::vector<NodeId> keep;
  keep.reserve(counts[best]);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (c.labels[v] == best) keep.push_back(v);
  }
  return induced_subgraph(g, keep);
}

#define LCRB_INSTANTIATE_TRANSFORM(G)                    \
  template DiGraph transpose<G>(const G&);               \
  template DiGraph symmetrize<G>(const G&);              \
  template InducedSubgraph k_core<G>(const G&, NodeId);  \
  template InducedSubgraph largest_wcc<G>(const G&);

LCRB_INSTANTIATE_TRANSFORM(DiGraph)
LCRB_INSTANTIATE_TRANSFORM(EfGraph)

#undef LCRB_INSTANTIATE_TRANSFORM

}  // namespace lcrb
