// Whole-graph transformations.
#pragma once

#include "graph/graph_view.h"
#include "graph/subgraph.h"

namespace lcrb {

/// Reverses every arc: (u, v) -> (v, u).
template <GraphView G>
DiGraph transpose(const G& g);

/// Adds the reverse of every arc (undirected view as a digraph).
template <GraphView G>
DiGraph symmetrize(const G& g);

/// Iteratively strips nodes with total degree (in + out) < k; returns the
/// induced subgraph on the surviving nodes (the classic k-core, computed on
/// the undirected view). The mapping identifies survivors.
template <GraphView G>
InducedSubgraph k_core(const G& g, NodeId k);

/// Induced subgraph on the largest weakly connected component.
template <GraphView G>
InducedSubgraph largest_wcc(const G& g);

}  // namespace lcrb
