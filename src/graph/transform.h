// Whole-graph transformations.
#pragma once

#include "graph/graph.h"
#include "graph/subgraph.h"

namespace lcrb {

/// Reverses every arc: (u, v) -> (v, u).
DiGraph transpose(const DiGraph& g);

/// Adds the reverse of every arc (undirected view as a digraph).
DiGraph symmetrize(const DiGraph& g);

/// Iteratively strips nodes with total degree (in + out) < k; returns the
/// induced subgraph on the surviving nodes (the classic k-core, computed on
/// the undirected view). The mapping identifies survivors.
InducedSubgraph k_core(const DiGraph& g, NodeId k);

/// Induced subgraph on the largest weakly connected component.
InducedSubgraph largest_wcc(const DiGraph& g);

}  // namespace lcrb
