#include "graph/traversal.h"

#include <deque>

#include "graph/ef_graph.h"
#include "graph/graph.h"

namespace lcrb {

namespace {

template <class G, typename NeighborFn>
BfsResult bfs_impl(const G& g, std::span<const NodeId> sources,
                   NeighborFn neighbors) {
  BfsResult r;
  r.dist.assign(g.num_nodes(), kUnreached);
  r.parent.assign(g.num_nodes(), kInvalidNode);
  std::deque<NodeId> queue;
  for (NodeId s : sources) {
    LCRB_REQUIRE(s < g.num_nodes(), "BFS source out of range");
    if (r.dist[s] == kUnreached) {
      r.dist[s] = 0;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : neighbors(u)) {
      if (r.dist[v] == kUnreached) {
        r.dist[v] = r.dist[u] + 1;
        r.parent[v] = u;
        queue.push_back(v);
      }
    }
  }
  return r;
}

template <class G, typename NeighborFn>
BoundedBfsResult bounded_impl(const G& g, NodeId root, std::uint32_t max_depth,
                              NeighborFn neighbors) {
  LCRB_REQUIRE(root < g.num_nodes(), "BFS root out of range");
  BoundedBfsResult r;
  std::vector<bool> seen(g.num_nodes(), false);
  r.nodes.push_back(root);
  r.depth.push_back(0);
  seen[root] = true;
  // r.nodes doubles as the frontier: process it index-by-index.
  for (std::size_t i = 0; i < r.nodes.size(); ++i) {
    const NodeId u = r.nodes[i];
    const std::uint32_t d = r.depth[i];
    if (d >= max_depth) continue;
    for (NodeId v : neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        r.nodes.push_back(v);
        r.depth.push_back(d + 1);
      }
    }
  }
  return r;
}

}  // namespace

template <GraphView G>
BfsResult bfs_forward(const G& g, std::span<const NodeId> sources) {
  return bfs_impl(g, sources, [&g](NodeId u) { return g.out_neighbors(u); });
}

template <GraphView G>
BfsResult bfs_backward(const G& g, std::span<const NodeId> sources) {
  return bfs_impl(g, sources, [&g](NodeId u) { return g.in_neighbors(u); });
}

template <GraphView G>
BoundedBfsResult bfs_backward_bounded(const G& g, NodeId root,
                                      std::uint32_t max_depth) {
  return bounded_impl(g, root, max_depth,
                      [&g](NodeId u) { return g.in_neighbors(u); });
}

template <GraphView G>
BoundedBfsResult bfs_forward_bounded(const G& g, NodeId root,
                                     std::uint32_t max_depth) {
  return bounded_impl(g, root, max_depth,
                      [&g](NodeId u) { return g.out_neighbors(u); });
}

template <GraphView G>
std::vector<NodeId> reachable_from(const G& g,
                                   std::span<const NodeId> sources) {
  const BfsResult r = bfs_forward(g, sources);
  std::vector<NodeId> out;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (r.reached(v)) out.push_back(v);
  }
  return out;
}

#define LCRB_INSTANTIATE_TRAVERSAL(G)                                         \
  template BfsResult bfs_forward<G>(const G&, std::span<const NodeId>);       \
  template BfsResult bfs_backward<G>(const G&, std::span<const NodeId>);      \
  template BoundedBfsResult bfs_backward_bounded<G>(const G&, NodeId,         \
                                                    std::uint32_t);           \
  template BoundedBfsResult bfs_forward_bounded<G>(const G&, NodeId,          \
                                                   std::uint32_t);            \
  template std::vector<NodeId> reachable_from<G>(const G&,                    \
                                                 std::span<const NodeId>);

LCRB_INSTANTIATE_TRAVERSAL(DiGraph)
LCRB_INSTANTIATE_TRAVERSAL(EfGraph)

#undef LCRB_INSTANTIATE_TRAVERSAL

}  // namespace lcrb
