// BFS primitives shared by bridge-end detection (RFST), SCBG's backward
// search trees (BBST), and the DOAM protection test.
//
// All entry points are templates over the GraphView concept; definitions
// live in traversal.cpp with explicit instantiations for DiGraph and
// EfGraph (the pattern every graph consumer in this repo follows).
#pragma once

#include <span>
#include <vector>

#include "graph/graph_view.h"
#include "util/types.h"

namespace lcrb {

/// Output of a (multi-source) BFS.
struct BfsResult {
  /// Hop distance from the nearest source; kUnreached if unreachable.
  std::vector<std::uint32_t> dist;
  /// BFS-tree parent; kInvalidNode for sources and unreached nodes.
  std::vector<NodeId> parent;

  bool reached(NodeId v) const { return dist[v] != kUnreached; }
};

/// Multi-source BFS along out-edges.
template <GraphView G>
BfsResult bfs_forward(const G& g, std::span<const NodeId> sources);

/// Multi-source BFS along in-edges ("who can reach me, and how fast").
template <GraphView G>
BfsResult bfs_backward(const G& g, std::span<const NodeId> sources);

/// Backward BFS from a single node truncated at `max_depth` hops. Returns
/// only the visited nodes and their depths (dist[i] pairs with nodes[i]).
struct BoundedBfsResult {
  std::vector<NodeId> nodes;          ///< visited nodes, BFS order (root first)
  std::vector<std::uint32_t> depth;   ///< depth[i] = hops from root to nodes[i]
};
template <GraphView G>
BoundedBfsResult bfs_backward_bounded(const G& g, NodeId root,
                                      std::uint32_t max_depth);

/// Forward variant of the bounded BFS.
template <GraphView G>
BoundedBfsResult bfs_forward_bounded(const G& g, NodeId root,
                                     std::uint32_t max_depth);

/// Nodes reachable from `sources` along out-edges (including the sources).
template <GraphView G>
std::vector<NodeId> reachable_from(const G& g, std::span<const NodeId> sources);

}  // namespace lcrb
