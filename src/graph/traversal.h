// BFS primitives shared by bridge-end detection (RFST), SCBG's backward
// search trees (BBST), and the DOAM protection test.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/types.h"

namespace lcrb {

/// Output of a (multi-source) BFS.
struct BfsResult {
  /// Hop distance from the nearest source; kUnreached if unreachable.
  std::vector<std::uint32_t> dist;
  /// BFS-tree parent; kInvalidNode for sources and unreached nodes.
  std::vector<NodeId> parent;

  bool reached(NodeId v) const { return dist[v] != kUnreached; }
};

/// Multi-source BFS along out-edges.
BfsResult bfs_forward(const DiGraph& g, std::span<const NodeId> sources);

/// Multi-source BFS along in-edges ("who can reach me, and how fast").
BfsResult bfs_backward(const DiGraph& g, std::span<const NodeId> sources);

/// Backward BFS from a single node truncated at `max_depth` hops. Returns
/// only the visited nodes and their depths (dist[i] pairs with nodes[i]).
struct BoundedBfsResult {
  std::vector<NodeId> nodes;          ///< visited nodes, BFS order (root first)
  std::vector<std::uint32_t> depth;   ///< depth[i] = hops from root to nodes[i]
};
BoundedBfsResult bfs_backward_bounded(const DiGraph& g, NodeId root,
                                      std::uint32_t max_depth);

/// Forward variant of the bounded BFS.
BoundedBfsResult bfs_forward_bounded(const DiGraph& g, NodeId root,
                                     std::uint32_t max_depth);

/// Nodes reachable from `sources` along out-edges (including the sources).
std::vector<NodeId> reachable_from(const DiGraph& g,
                                   std::span<const NodeId> sources);

}  // namespace lcrb
