#include "lcrb/bbst.h"

#include "graph/ef_graph.h"
#include "graph/graph.h"

#include <algorithm>

#include "graph/traversal.h"
#include "util/error.h"

namespace lcrb {

template <GraphView G>
Bbst build_bbst(const G& g, NodeId bridge_end, std::uint32_t rumor_dist,
                std::span<const NodeId> rumors) {
  LCRB_REQUIRE(bridge_end < g.num_nodes(), "bridge end out of range");
  LCRB_REQUIRE(rumor_dist != kUnreached,
               "bridge end must be reachable from the rumors");
  Bbst q;
  q.root = bridge_end;
  q.depth_limit = rumor_dist;

  const BoundedBfsResult bfs = bfs_backward_bounded(g, bridge_end, rumor_dist);
  std::vector<bool> is_rumor(g.num_nodes(), false);
  for (NodeId r : rumors) {
    LCRB_REQUIRE(r < g.num_nodes(), "rumor out of range");
    is_rumor[r] = true;
  }
  q.nodes.reserve(bfs.nodes.size());
  q.depth.reserve(bfs.nodes.size());
  for (std::size_t i = 0; i < bfs.nodes.size(); ++i) {
    if (is_rumor[bfs.nodes[i]]) continue;  // rumors cannot protect
    q.nodes.push_back(bfs.nodes[i]);
    q.depth.push_back(bfs.depth[i]);
  }
  return q;
}

template <GraphView G>
std::vector<Bbst> build_all_bbsts(const G& g,
                                  std::span<const NodeId> bridge_ends,
                                  std::span<const std::uint32_t> rumor_dist_all,
                                  std::span<const NodeId> rumors) {
  LCRB_REQUIRE(rumor_dist_all.size() == g.num_nodes(),
               "rumor_dist_all must be indexed by node id");
  std::vector<Bbst> out;
  out.reserve(bridge_ends.size());
  for (NodeId v : bridge_ends) {
    out.push_back(build_bbst(g, v, rumor_dist_all[v], rumors));
  }
  return out;
}

#define LCRB_INSTANTIATE_BBST(G)                                              \
  template Bbst build_bbst<G>(const G&, NodeId, std::uint32_t,                \
                              std::span<const NodeId>);                       \
  template std::vector<Bbst> build_all_bbsts<G>(                              \
      const G&, std::span<const NodeId>, std::span<const std::uint32_t>,      \
      std::span<const NodeId>);

LCRB_INSTANTIATE_BBST(DiGraph)
LCRB_INSTANTIATE_BBST(EfGraph)

#undef LCRB_INSTANTIATE_BBST

SwSets invert_bbsts(const std::vector<Bbst>& bbsts, NodeId num_nodes) {
  // First pass: count occurrences per node to size buckets.
  std::vector<std::uint32_t> counts(num_nodes, 0);
  for (const Bbst& q : bbsts) {
    for (NodeId u : q.nodes) ++counts[u];
  }

  SwSets out;
  std::vector<std::uint32_t> slot(num_nodes, kUnreached);
  for (NodeId u = 0; u < num_nodes; ++u) {
    if (counts[u] == 0) continue;
    slot[u] = static_cast<std::uint32_t>(out.candidates.size());
    out.candidates.push_back(u);
    out.sets.emplace_back();
    out.sets.back().reserve(counts[u]);
  }
  for (std::uint32_t i = 0; i < bbsts.size(); ++i) {
    for (NodeId u : bbsts[i].nodes) {
      out.sets[slot[u]].push_back(i);
    }
  }
  return out;
}

}  // namespace lcrb
