// Bridge-end Backward Search Trees (BBST) — paper Algorithm 3 step 4,
// Fig. 3b.
//
// For bridge end v with rumor arrival time d = dist(S_R, v), the BBST Q_v is
// the set of nodes w with dist(w, v) <= d: planting a protector seed at any
// such w delivers cascade P to v no later than cascade R arrives, and P wins
// ties — so every node of Q_v except the rumor originators can protect v.
#pragma once

#include <span>
#include <vector>

#include "graph/graph_view.h"
#include "util/types.h"

namespace lcrb {

struct Bbst {
  NodeId root = kInvalidNode;       ///< the bridge end v
  std::uint32_t depth_limit = 0;    ///< dist(S_R, v)
  std::vector<NodeId> nodes;        ///< Q_v in BFS order (root first)
  std::vector<std::uint32_t> depth; ///< depth[i] = dist(nodes[i], v)
};

/// Builds Q_v by backward BFS truncated at `rumor_dist` hops, excluding the
/// rumor originators (they cannot serve as protectors).
template <GraphView G>
Bbst build_bbst(const G& g, NodeId bridge_end, std::uint32_t rumor_dist,
                std::span<const NodeId> rumors);

/// Builds all BBSTs for `bridge_ends` (rumor_dist_all indexed by node id).
template <GraphView G>
std::vector<Bbst> build_all_bbsts(const G& g,
                                  std::span<const NodeId> bridge_ends,
                                  std::span<const std::uint32_t> rumor_dist_all,
                                  std::span<const NodeId> rumors);

/// Inverts BBSTs into the SW map of Algorithm 3 step 5: for every node u
/// appearing in some Q_v, SW_u = indices (into bridge_ends) of the bridge
/// ends u can protect. Returned as (candidates, sets) parallel arrays.
struct SwSets {
  std::vector<NodeId> candidates;               ///< distinct u's, ascending
  std::vector<std::vector<std::uint32_t>> sets; ///< sets[i] = SW of candidates[i]
};
SwSets invert_bbsts(const std::vector<Bbst>& bbsts, NodeId num_nodes);

}  // namespace lcrb
