#include "lcrb/bridge.h"

#include "graph/ef_graph.h"
#include "graph/graph.h"

#include "graph/traversal.h"
#include "util/error.h"

namespace lcrb {

template <GraphView G>
BridgeEndResult find_bridge_ends(const G& g, const Partition& p,
                                 CommunityId rumor_community,
                                 std::span<const NodeId> rumors) {
  LCRB_REQUIRE(p.num_nodes() == g.num_nodes(),
               "partition does not cover the graph");
  LCRB_REQUIRE(rumor_community < p.num_communities(),
               "rumor community out of range");
  LCRB_REQUIRE(!rumors.empty(), "need at least one rumor originator");
  for (NodeId r : rumors) {
    LCRB_REQUIRE(r < g.num_nodes(), "rumor originator out of range");
    LCRB_REQUIRE(p.community_of(r) == rumor_community,
                 "rumor originator outside the rumor community");
  }

  BridgeEndResult out;
  const BfsResult bfs = bfs_forward(g, rumors);
  out.rumor_dist = bfs.dist;

  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (p.community_of(v) == rumor_community) continue;
    if (!bfs.reached(v)) continue;
    // Direct in-neighbor inside the rumor community?
    bool boundary = false;
    for (NodeId w : g.in_neighbors(v)) {
      if (p.community_of(w) == rumor_community) {
        boundary = true;
        break;
      }
    }
    if (boundary) out.bridge_ends.push_back(v);
  }
  return out;
}

template BridgeEndResult find_bridge_ends<DiGraph>(const DiGraph&,
                                                   const Partition&,
                                                   CommunityId,
                                                   std::span<const NodeId>);
template BridgeEndResult find_bridge_ends<EfGraph>(const EfGraph&,
                                                   const Partition&,
                                                   CommunityId,
                                                   std::span<const NodeId>);

}  // namespace lcrb
