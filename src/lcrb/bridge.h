// Bridge-end detection (stage 1 of both LCRB algorithms).
//
// A bridge end is a node v outside the rumor community C_r that (i) has at
// least one direct in-neighbor inside C_r and (ii) is reachable from the
// rumor originators S_R (paper §I and Definition 2). They are the boundary
// individuals of the R-neighbor communities that the protectors must save.
#pragma once

#include <span>
#include <vector>

#include "community/partition.h"
#include "graph/graph_view.h"
#include "util/types.h"

namespace lcrb {

struct BridgeEndResult {
  /// Bridge ends, ascending node id.
  std::vector<NodeId> bridge_ends;
  /// Hop distance from S_R to every node (kUnreached if unreachable) — the
  /// rumor arrival time under DOAM, reused by BBST depth limits.
  std::vector<std::uint32_t> rumor_dist;
};

/// Finds all bridge ends. `rumors` must live inside `rumor_community`.
template <GraphView G>
BridgeEndResult find_bridge_ends(const G& g, const Partition& p,
                                 CommunityId rumor_community,
                                 std::span<const NodeId> rumors);

}  // namespace lcrb
