#include "lcrb/cldag.h"

#include "graph/ef_graph.h"
#include "graph/graph.h"

#include <algorithm>
#include <cstdint>
#include <queue>

#include "util/check.h"
#include "util/error.h"

namespace lcrb {

namespace {

/// One bridge end's local DAG, in position order (0 = the root, descending
/// influence; ties -> lower node id). Arcs are stored per TARGET so both
/// the ap pass (needs in-arcs) and the alpha pass (walks the same arcs in
/// reverse) share one layout.
struct Ldag {
  std::vector<NodeId> nodes;          ///< by position
  std::vector<std::uint32_t> in_off;  ///< CSR offsets into in_src (by pos)
  std::vector<std::uint32_t> in_src;  ///< source POSITIONS of kept in-arcs
  std::vector<double> in_w;           ///< LT weight 1/d_in(target)
};

/// Max-product Dijkstra from `root` over reversed arcs: influence(u) is the
/// best product of weights 1/d_in(.) along any u -> root path. Keeps nodes
/// with influence >= theta.
template <class G>
Ldag build_ldag(const G& g, NodeId root, double theta,
                std::vector<double>& inf, std::vector<std::uint32_t>& pos,
                std::vector<std::uint32_t>& stamp, std::uint32_t epoch) {
  struct QEntry {
    double inf;
    NodeId node;
    bool operator<(const QEntry& o) const {
      // Max-heap on influence; equal influence -> lower id first, so the
      // settle order (and the position order) is deterministic.
      if (inf != o.inf) return inf < o.inf;
      return node > o.node;
    }
  };
  std::priority_queue<QEntry> heap;
  Ldag d;

  inf[root] = 1.0;
  stamp[root] = epoch;
  heap.push({1.0, root});
  while (!heap.empty()) {
    const QEntry top = heap.top();
    heap.pop();
    // Lazy deletion: every re-push strictly improved inf, so exactly one
    // entry per node matches its final influence.
    if (top.inf != inf[top.node]) continue;
    pos[top.node] = static_cast<std::uint32_t>(d.nodes.size());
    d.nodes.push_back(top.node);
    const NodeId v = top.node;
    const double w = g.in_degree(v) > 0
                         ? 1.0 / static_cast<double>(g.in_degree(v))
                         : 0.0;
    for (NodeId u : g.in_neighbors(v)) {
      const double cand = inf[v] * w;
      if (cand < theta) continue;
      if (stamp[u] != epoch || cand > inf[u]) {
        stamp[u] = epoch;
        inf[u] = cand;
        heap.push({cand, u});
      }
    }
  }

  // DAG-ify: keep arc u -> v iff both are members and u sits at a LATER
  // position than v (strictly smaller influence, or equal influence and
  // higher id) — influence strictly flows toward the root, no cycles.
  d.in_off.assign(d.nodes.size() + 1, 0);
  for (std::uint32_t pv = 0; pv < d.nodes.size(); ++pv) {
    const NodeId v = d.nodes[pv];
    for (NodeId u : g.in_neighbors(v)) {
      if (stamp[u] == epoch && pos[u] > pv) ++d.in_off[pv + 1];
    }
  }
  for (std::size_t i = 1; i < d.in_off.size(); ++i) {
    d.in_off[i] += d.in_off[i - 1];
  }
  d.in_src.resize(d.in_off.back());
  d.in_w.resize(d.in_off.back());
  std::vector<std::uint32_t> cur(d.in_off.begin(), d.in_off.end() - 1);
  for (std::uint32_t pv = 0; pv < d.nodes.size(); ++pv) {
    const NodeId v = d.nodes[pv];
    const double w = 1.0 / static_cast<double>(g.in_degree(v));
    for (NodeId u : g.in_neighbors(v)) {
      if (stamp[u] == epoch && pos[u] > pv) {
        d.in_src[cur[pv]] = pos[u];
        d.in_w[cur[pv]] = w;
        ++cur[pv];
      }
    }
  }
  return d;
}

}  // namespace

template <GraphView G>
CldagResult cldag_protectors(const G& g, std::span<const NodeId> rumors,
                             std::span<const NodeId> bridge_ends,
                             std::size_t budget, double theta) {
  LCRB_REQUIRE(budget > 0, "cldag: budget must be > 0");
  LCRB_REQUIRE(theta > 0.0 && theta <= 1.0, "cldag: theta must be in (0,1]");

  CldagResult out;
  if (bridge_ends.empty()) return out;

  const NodeId n = g.num_nodes();
  std::vector<bool> is_rumor(n, false);
  for (NodeId r : rumors) is_rumor[r] = true;
  std::vector<bool> blocked(n, false);

  // Shared per-node scratch across LDAG builds, epoch-stamped.
  std::vector<double> inf(n, 0.0);
  std::vector<std::uint32_t> pos(n, kUnreached), stamp(n, 0);
  std::uint32_t epoch = 0;

  std::vector<Ldag> dags;
  dags.reserve(bridge_ends.size());
  for (NodeId b : bridge_ends) {
    ++epoch;
    dags.push_back(build_ldag(g, b, theta, inf, pos, stamp, epoch));
    out.ldag_nodes += dags.back().nodes.size();
    out.ldag_arcs += dags.back().in_src.size();
  }

  // score[c] = Sum_b ap_b(c) * alpha_b(c): the exact drop in
  // Sum_b ap_b(root_b) from blocking c, by linearity of the DAG recurrence.
  std::vector<double> score(n, 0.0);
  std::vector<double> ap, alpha;  // per-position, reused across DAGs

  for (std::size_t pick = 0; pick < budget; ++pick) {
    std::fill(score.begin(), score.end(), 0.0);
    for (const Ldag& d : dags) {
      const std::size_t sz = d.nodes.size();
      ap.assign(sz, 0.0);
      alpha.assign(sz, 0.0);
      // ap in position-descending order (every kept in-arc's source has a
      // larger position than its target, so sources are ready first).
      for (std::size_t i = sz; i-- > 0;) {
        const NodeId v = d.nodes[i];
        if (blocked[v]) continue;  // ap stays 0
        if (is_rumor[v]) {
          ap[i] = 1.0;
          continue;
        }
        double a = 0.0;
        for (std::uint32_t k = d.in_off[i]; k < d.in_off[i + 1]; ++k) {
          a += d.in_w[k] * ap[d.in_src[k]];
        }
        ap[i] = a;
      }
      // alpha(pos) = d ap(root) / d ap(pos), by the reverse pass; clamped
      // nodes (rumor / blocked) stop the sensitivity flow — their ap does
      // not depend on their in-arcs.
      alpha[0] = 1.0;
      for (std::size_t i = 0; i < sz; ++i) {
        if (alpha[i] == 0.0) continue;
        const NodeId v = d.nodes[i];
        if (i != 0 && (blocked[v] || is_rumor[v])) continue;
        for (std::uint32_t k = d.in_off[i]; k < d.in_off[i + 1]; ++k) {
          alpha[d.in_src[k]] += d.in_w[k] * alpha[i];
        }
      }
      for (std::size_t i = 0; i < sz; ++i) {
        const NodeId v = d.nodes[i];
        if (blocked[v] || is_rumor[v]) continue;
        score[v] += ap[i] * alpha[i];
      }
    }

    double best = 0.0;
    NodeId best_node = kInvalidNode;
    for (NodeId v = 0; v < n; ++v) {
      if (score[v] > best) {
        best = score[v];
        best_node = v;
      }
    }
    if (best_node == kInvalidNode) break;  // nothing left to absorb
    blocked[best_node] = true;
    out.protectors.push_back(best_node);
    out.score_history.push_back(best);
  }
  return out;
}

template CldagResult cldag_protectors<DiGraph>(const DiGraph&,
                                               std::span<const NodeId>,
                                               std::span<const NodeId>,
                                               std::size_t, double);
template CldagResult cldag_protectors<EfGraph>(const EfGraph&,
                                               std::span<const NodeId>,
                                               std::span<const NodeId>,
                                               std::size_t, double);

}  // namespace lcrb
