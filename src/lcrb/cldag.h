// CLDAG protector selection — He et al.'s local-DAG heuristic for
// competitive LT (arXiv:1110.4723), adapted to the LCRB objective: save the
// bridge ends instead of minimizing global rumor spread.
//
// For every bridge end b the heuristic builds LDAG_b(theta): the nodes whose
// best-path influence to b (product of LT arc weights 1/d_in along the path)
// is at least theta, DAG-ified by keeping only arcs that flow from lower- to
// higher-influence positions. On that DAG the LT rumor activation
// probability ap(u) obeys a LINEAR recurrence (seeds clamp to 1, blocked
// nodes to 0), so the effect of blocking a candidate c on ap_b(b) is exactly
// ap_b(c) * alpha_b(c), where alpha is the path-weight coefficient from one
// reverse pass. The greedy repeatedly blocks the candidate with the largest
// total score over all bridge ends (ties -> lowest id) and recomputes.
//
// This is a blocking heuristic: it scores protectors only by the rumor mass
// they absorb, not by the protection they themselves spread — cheap (no
// simulation at all) and, on competitive-LT instances, close to the
// Monte-Carlo greedy (see tests/lcrb/cldag_test.cpp).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/graph_view.h"
#include "util/types.h"

namespace lcrb {

struct CldagResult {
  std::vector<NodeId> protectors;    ///< in pick order
  std::vector<double> score_history; ///< Sum_b ap_b * alpha_b per pick
  std::size_t ldag_nodes = 0;        ///< total LDAG size over bridge ends
  std::size_t ldag_arcs = 0;         ///< total DAG arcs over bridge ends
};

/// Selects up to `budget` protectors by the CLDAG score. `theta` is the
/// influence cutoff for LDAG membership (He et al. use 1/320); larger theta
/// = smaller DAGs = faster and coarser. Stops early when no remaining
/// candidate has positive score. Deterministic in its inputs;
/// single-threaded.
template <GraphView G>
CldagResult cldag_protectors(const G& g, std::span<const NodeId> rumors,
                             std::span<const NodeId> bridge_ends,
                             std::size_t budget, double theta);

}  // namespace lcrb
