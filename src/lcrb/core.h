// Core API: everything needed to state and solve an LCRB instance — the
// graph/community/diffusion substrate plus the paper's algorithms (bridge
// ends, RFST/BBST, set cover, LCRB-P greedy, SCBG) and the unified
// LcrbOptions knob aggregate.
//
// The experiment-harness layer (pipeline, baselines, source detection,
// CLI/CSV/table utilities) lives in lcrb/experiments.h, which includes this
// header. (lcrb/lcrb.h is a deprecated shim for the old single-header API.)
#pragma once

#include "community/detect.h"
#include "community/io.h"
#include "community/label_propagation.h"
#include "community/louvain.h"
#include "community/modularity.h"
#include "community/nmi.h"
#include "community/partition.h"
#include "community/quality.h"
#include "diffusion/cascade.h"
#include "diffusion/doam.h"
#include "diffusion/ic.h"
#include "diffusion/lt.h"
#include "diffusion/model_traits.h"
#include "diffusion/montecarlo.h"
#include "diffusion/opoao.h"
#include "graph/builder.h"
#include "graph/centrality.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/metrics.h"
#include "graph/subgraph.h"
#include "graph/transform.h"
#include "graph/traversal.h"
#include "lcrb/bbst.h"
#include "lcrb/bridge.h"
#include "lcrb/greedy.h"
#include "lcrb/options.h"
#include "lcrb/rfst.h"
#include "lcrb/ris.h"
#include "lcrb/scbg.h"
#include "lcrb/setcover.h"
#include "lcrb/sigma.h"
#include "util/bitset.h"
#include "util/error.h"
#include "util/json.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/threadpool.h"
#include "util/timer.h"
#include "util/types.h"
