// Experiment-harness API: the end-to-end pipeline, comparison baselines
// (GVS and the heuristics), rumor-source detection, and the CLI/reporting
// utilities the examples and bench binaries share. Everything here builds on
// lcrb/core.h, which is included first.
#pragma once

#include "lcrb/core.h"

#include "lcrb/gvs.h"
#include "lcrb/heuristics.h"
#include "lcrb/pipeline.h"
#include "lcrb/source.h"
#include "util/args.h"
#include "util/csv.h"
#include "util/table.h"
