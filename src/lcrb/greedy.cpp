#include "lcrb/greedy.h"

#include "graph/ef_graph.h"
#include "graph/graph.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "lcrb/bbst.h"
#include "util/error.h"
#include "util/log.h"

namespace lcrb {

std::string to_string(CandidateStrategy s) {
  switch (s) {
    case CandidateStrategy::kBbstUnion: return "bbst_union";
    case CandidateStrategy::kAllNodes: return "all_nodes";
    case CandidateStrategy::kBridgeEnds: return "bridge_ends";
  }
  return "unknown";
}

std::string to_string(MultiCascadeMode m) {
  switch (m) {
    case MultiCascadeMode::kOff: return "off";
    case MultiCascadeMode::kCoordinated: return "coordinated";
    case MultiCascadeMode::kUncoordinated: return "uncoordinated";
  }
  return "unknown";
}

namespace {

template <class G>
std::vector<NodeId> make_candidates(const G& g,
                                    std::span<const NodeId> rumors,
                                    const BridgeEndResult& bridges,
                                    CandidateStrategy strategy,
                                    std::size_t max_candidates) {
  std::vector<bool> excluded(g.num_nodes(), false);
  for (NodeId r : rumors) excluded[r] = true;

  std::vector<NodeId> out;
  // Truncation rank: BBST-membership count where available, out-degree
  // otherwise.
  std::vector<std::uint32_t> rank(g.num_nodes(), 0);
  bool have_rank = false;

  switch (strategy) {
    case CandidateStrategy::kBridgeEnds:
      for (NodeId v : bridges.bridge_ends) {
        if (!excluded[v]) out.push_back(v);
      }
      break;
    case CandidateStrategy::kAllNodes:
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (!excluded[v]) out.push_back(v);
      }
      break;
    case CandidateStrategy::kBbstUnion: {
      const std::vector<Bbst> bbsts = build_all_bbsts(
          g, bridges.bridge_ends, bridges.rumor_dist, rumors);
      for (const Bbst& q : bbsts) {
        for (NodeId u : q.nodes) ++rank[u];
      }
      have_rank = true;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (rank[v] > 0 && !excluded[v]) out.push_back(v);
      }
      break;
    }
  }

  if (max_candidates > 0 && out.size() > max_candidates) {
    if (!have_rank) {
      for (NodeId v : out) rank[v] = g.out_degree(v);
    }
    std::stable_sort(out.begin(), out.end(), [&rank](NodeId a, NodeId b) {
      return rank[a] > rank[b];
    });
    out.resize(max_candidates);
    std::sort(out.begin(), out.end());
  }
  return out;
}

}  // namespace

template <GraphView G>
GreedyResult greedy_lcrbp(const G& g, const Partition& p,
                          CommunityId rumor_community,
                          std::span<const NodeId> rumors,
                          const GreedyConfig& cfg, ThreadPool* pool) {
  const BridgeEndResult bridges =
      find_bridge_ends(g, p, rumor_community, rumors);
  return greedy_lcrbp_from_bridges(g, rumors, bridges, cfg, pool);
}

template <GraphView G>
GreedyResult greedy_lcrbp_from_bridges(const G& g,
                                       std::span<const NodeId> rumors,
                                       const BridgeEndResult& bridges,
                                       const GreedyConfig& cfg,
                                       ThreadPool* pool) {
  LCRB_REQUIRE(cfg.alpha > 0.0 && cfg.alpha <= 1.0, "alpha must be in (0,1]");

  GreedyResult out;
  if (bridges.bridge_ends.empty()) {
    out.achieved_fraction = 1.0;
    return out;
  }

  if (cfg.sigma_mode == SigmaMode::kRis) {
    // RR-set max coverage instead of Monte-Carlo gains. The diffusion knobs
    // mirror cfg.sigma so both modes estimate the same sigma; candidate
    // restriction is unnecessary — only nodes appearing in some RR set can
    // ever have positive coverage gain, which is the same pruning for free.
    RisConfig rc = cfg.ris;
    rc.model = cfg.sigma.model;
    rc.seed = cfg.sigma.seed;
    rc.max_hops = cfg.sigma.max_hops;
    rc.ic_edge_prob = cfg.sigma.ic_edge_prob;
    RisGreedyResult ris = ris_greedy_from_bridges(
        g, rumors, bridges, cfg.alpha, cfg.max_protectors, rc, pool);
    out.protectors = std::move(ris.protectors);
    out.achieved_fraction = ris.achieved_fraction;
    out.gain_history = std::move(ris.gain_history);
    out.sigma_evaluations = ris.rr_sets;
    out.candidate_count = ris.distinct_candidates;
    out.nodes_visited = ris.nodes_visited;
    out.ris_rounds = ris.rounds;
    out.ris_sigma_lower = ris.sigma_lower;
    out.ris_sigma_upper = ris.sigma_upper;
    out.ris_guarantee_met = ris.guarantee_met;
    out.ris_stop_reason = ris.stop_reason;
    return out;
  }

  SigmaEstimator estimator(g, {rumors.begin(), rumors.end()},
                           bridges.bridge_ends, cfg.sigma, pool);
  out = greedy_lcrbp_with_estimator(g, rumors, bridges, cfg, estimator, pool);
  // With a private estimator the raw counters are race-free; report them so
  // the legacy fields keep their historical meanings (nodes_visited includes
  // the estimator's internal work, not just call counts).
  out.sigma_evaluations = estimator.evaluations();
  out.nodes_visited = estimator.nodes_visited();
  return out;
}

template <GraphView G>
GreedyResult greedy_lcrbp_with_estimator(const G& g,
                                         std::span<const NodeId> rumors,
                                         const BridgeEndResult& bridges,
                                         const GreedyConfig& cfg,
                                         const SigmaEstimator& estimator,
                                         ThreadPool* pool) {
  LCRB_REQUIRE(cfg.alpha > 0.0 && cfg.alpha <= 1.0, "alpha must be in (0,1]");
  LCRB_REQUIRE(cfg.sigma_mode == SigmaMode::kMonteCarlo,
               "greedy_lcrbp_with_estimator is Monte-Carlo only");

  GreedyResult out;
  if (bridges.bridge_ends.empty()) {
    out.achieved_fraction = 1.0;
    return out;
  }

  std::vector<NodeId> candidates = make_candidates(
      g, rumors, bridges, cfg.candidates, cfg.max_candidates);
  out.candidate_count = candidates.size();

  // The estimator may be shared across concurrent queries, so its internal
  // counters mix work from other callers. Count sigma calls at the (serial)
  // call sites instead: one call = cfg.sigma.samples single-run evaluations,
  // matching SigmaEstimator::evaluations() for a private estimator.
  std::size_t sigma_calls = 0;

  std::vector<NodeId> current;  // S_P so far
  double current_sigma = 0.0;
  double current_fraction = estimator.protected_fraction(current);
  ++sigma_calls;

  auto gain_of = [&](NodeId v) {
    std::vector<NodeId> with = current;
    with.push_back(v);
    return estimator.sigma(with) - current_sigma;
  };

  const std::size_t cap =
      cfg.max_protectors == 0 ? candidates.size() : cfg.max_protectors;

  if (cfg.use_celf) {
    // CELF: (stale gain, node, round when evaluated).
    struct Entry {
      double gain;
      NodeId node;
      std::size_t round;
      bool operator<(const Entry& o) const { return gain < o.gain; }
    };
    std::priority_queue<Entry> heap;

    // Round-0 gains, evaluated in parallel across candidates.
    {
      std::vector<double> gains(candidates.size());
      auto eval = [&](std::size_t i) { gains[i] = gain_of(candidates[i]); };
      if (pool != nullptr && candidates.size() > 1) {
        pool->parallel_for(candidates.size(), eval);
      } else {
        for (std::size_t i = 0; i < candidates.size(); ++i) eval(i);
      }
      sigma_calls += candidates.size();
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        heap.push({gains[i], candidates[i], 0});
      }
    }

    while (current_fraction < cfg.alpha && current.size() < cap &&
           !heap.empty()) {
      Entry top = heap.top();
      heap.pop();
      if (top.round != current.size()) {
        top.gain = gain_of(top.node);
        ++sigma_calls;
        top.round = current.size();
        if (!heap.empty() && top.gain < heap.top().gain) {
          heap.push(top);
          continue;
        }
      }
      // Accept (even zero-gain picks: alpha may still be unreachable and the
      // caller's cap bounds the loop).
      current.push_back(top.node);
      current_sigma += top.gain;
      out.gain_history.push_back(top.gain);
      current_fraction = estimator.protected_fraction(current);
      ++sigma_calls;
      if (top.gain <= 0.0 && current_fraction < cfg.alpha) {
        LCRB_LOG_WARN << "greedy: zero marginal gain with fraction "
                      << current_fraction << " < alpha " << cfg.alpha
                      << "; stopping early";
        break;
      }
    }
  } else {
    // Paper's plain greedy: re-evaluate every candidate each round. Gains
    // land in per-candidate slots and the argmax scans them in candidate
    // order afterwards — no mutex, and the pick (ties go to the lowest node
    // id) cannot depend on thread scheduling.
    std::vector<bool> used(g.num_nodes(), false);
    std::vector<double> gains(candidates.size());
    while (current_fraction < cfg.alpha && current.size() < cap) {
      auto eval = [&](std::size_t i) {
        const NodeId v = candidates[i];
        // NaN never compares greater-or-equal: used slots can't win below.
        gains[i] = used[v] ? std::numeric_limits<double>::quiet_NaN()
                           : gain_of(v);
      };
      if (pool != nullptr && candidates.size() > 1) {
        pool->parallel_for(candidates.size(), eval);
      } else {
        for (std::size_t i = 0; i < candidates.size(); ++i) eval(i);
      }
      sigma_calls += candidates.size() - current.size();  // used slots skip
      double best_gain = -1.0;
      NodeId best_node = kInvalidNode;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (gains[i] > best_gain ||
            (gains[i] == best_gain && candidates[i] < best_node)) {
          best_gain = gains[i];
          best_node = candidates[i];
        }
      }
      if (best_node == kInvalidNode) break;
      used[best_node] = true;
      current.push_back(best_node);
      current_sigma += best_gain;
      out.gain_history.push_back(best_gain);
      current_fraction = estimator.protected_fraction(current);
      ++sigma_calls;
      if (best_gain <= 0.0 && current_fraction < cfg.alpha) break;
    }
  }

  out.protectors = std::move(current);
  out.achieved_fraction = current_fraction;
  out.sigma_evaluations = sigma_calls * cfg.sigma.samples;
  // nodes_visited stays 0 here: the shared estimator's visit counter mixes
  // concurrent queries. greedy_lcrbp_from_bridges overwrites it.
  out.sigma_path = estimator.served_by();
  out.sigma_fallback = estimator.fallback_reason();
  return out;
}

template <GraphView G>
MultiGreedyResult greedy_multi_with_estimator(
    const G& g, std::span<const NodeId> rumors,
    const BridgeEndResult& bridges, const GreedyConfig& cfg,
    std::span<const std::size_t> budgets, MultiCascadeMode mode,
    const SigmaEstimator& estimator, ThreadPool* pool) {
  LCRB_REQUIRE(mode != MultiCascadeMode::kOff,
               "greedy_multi: mode must be coordinated or uncoordinated");
  LCRB_REQUIRE(!budgets.empty(), "greedy_multi: budgets must be non-empty");
  std::size_t total = 0;
  for (std::size_t b : budgets) {
    LCRB_REQUIRE(b > 0, "greedy_multi: every campaign budget must be > 0");
    total += b;
  }

  MultiGreedyResult out;
  out.groups.resize(budgets.size());

  if (mode == MultiCascadeMode::kCoordinated) {
    // One greedy over the summed budget; under the role-separable collapse
    // every pick helps every campaign, so the i-th pick goes to the next
    // campaign (round-robin) that still has budget left.
    GreedyConfig c = cfg;
    c.max_protectors = total;
    out.combined =
        greedy_lcrbp_with_estimator(g, rumors, bridges, c, estimator, pool);
    std::vector<std::size_t> left(budgets.begin(), budgets.end());
    std::size_t campaign = 0;
    for (NodeId v : out.combined.protectors) {
      while (left[campaign] == 0) campaign = (campaign + 1) % left.size();
      out.groups[campaign].push_back(v);
      --left[campaign];
      campaign = (campaign + 1) % left.size();
    }
    out.deployed = out.combined.protectors;
  } else {
    // Each campaign runs greedy with its own budget, blind to the others.
    // Equal-budget campaigns pick identical sets; the deployed union is
    // their dedup — Tong et al.'s uncoordinated setting.
    for (std::size_t ci = 0; ci < budgets.size(); ++ci) {
      GreedyConfig c = cfg;
      c.max_protectors = budgets[ci];
      GreedyResult r =
          greedy_lcrbp_with_estimator(g, rumors, bridges, c, estimator, pool);
      out.groups[ci] = r.protectors;
      out.combined.sigma_evaluations += r.sigma_evaluations;
      out.combined.gain_history.insert(out.combined.gain_history.end(),
                                       r.gain_history.begin(),
                                       r.gain_history.end());
      out.combined.candidate_count =
          std::max(out.combined.candidate_count, r.candidate_count);
      out.combined.sigma_path = r.sigma_path;
      out.combined.sigma_fallback = r.sigma_fallback;
      out.deployed.insert(out.deployed.end(), r.protectors.begin(),
                          r.protectors.end());
    }
    std::sort(out.deployed.begin(), out.deployed.end());
    out.deployed.erase(std::unique(out.deployed.begin(), out.deployed.end()),
                       out.deployed.end());
    out.combined.protectors = out.deployed;
    out.combined.achieved_fraction =
        bridges.bridge_ends.empty()
            ? 1.0
            : estimator.protected_fraction(out.deployed);
    ++out.combined.sigma_evaluations;
  }
  std::sort(out.deployed.begin(), out.deployed.end());
  out.deployed.erase(std::unique(out.deployed.begin(), out.deployed.end()),
                     out.deployed.end());
  return out;
}

template <GraphView G>
MultiGreedyResult greedy_multi_from_bridges(
    const G& g, std::span<const NodeId> rumors,
    const BridgeEndResult& bridges, const GreedyConfig& cfg,
    std::span<const std::size_t> budgets, MultiCascadeMode mode,
    ThreadPool* pool) {
  LCRB_REQUIRE(cfg.sigma_mode == SigmaMode::kMonteCarlo,
               "greedy_multi is Monte-Carlo only");
  if (bridges.bridge_ends.empty()) {
    MultiGreedyResult out;
    out.groups.resize(budgets.size());
    out.combined.achieved_fraction = 1.0;
    return out;
  }
  SigmaEstimator estimator(g, {rumors.begin(), rumors.end()},
                           bridges.bridge_ends, cfg.sigma, pool);
  MultiGreedyResult out = greedy_multi_with_estimator(
      g, rumors, bridges, cfg, budgets, mode, estimator, pool);
  out.combined.sigma_evaluations = estimator.evaluations();
  out.combined.nodes_visited = estimator.nodes_visited();
  return out;
}

#define LCRB_INSTANTIATE_GREEDY(G)                                            \
  template GreedyResult greedy_lcrbp<G>(const G&, const Partition&,           \
                                        CommunityId, std::span<const NodeId>, \
                                        const GreedyConfig&, ThreadPool*);    \
  template GreedyResult greedy_lcrbp_from_bridges<G>(                         \
      const G&, std::span<const NodeId>, const BridgeEndResult&,              \
      const GreedyConfig&, ThreadPool*);                                      \
  template GreedyResult greedy_lcrbp_with_estimator<G>(                       \
      const G&, std::span<const NodeId>, const BridgeEndResult&,              \
      const GreedyConfig&, const SigmaEstimator&, ThreadPool*);               \
  template MultiGreedyResult greedy_multi_with_estimator<G>(                  \
      const G&, std::span<const NodeId>, const BridgeEndResult&,              \
      const GreedyConfig&, std::span<const std::size_t>, MultiCascadeMode,    \
      const SigmaEstimator&, ThreadPool*);                                    \
  template MultiGreedyResult greedy_multi_from_bridges<G>(                    \
      const G&, std::span<const NodeId>, const BridgeEndResult&,              \
      const GreedyConfig&, std::span<const std::size_t>, MultiCascadeMode,    \
      ThreadPool*);

LCRB_INSTANTIATE_GREEDY(DiGraph)
LCRB_INSTANTIATE_GREEDY(EfGraph)

#undef LCRB_INSTANTIATE_GREEDY

}  // namespace lcrb
