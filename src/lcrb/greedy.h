// Greedy protector selection for LCRB-P (paper Algorithm 1).
//
// sigma(A) is monotone and submodular (Theorem 1), so the greedy that
// repeatedly adds argmax marginal gain achieves (1 - 1/e) of the optimum.
// Two refinements over the paper's plain loop, both ablated in bench/:
//  * CELF lazy evaluation (submodularity makes stale upper bounds sound),
//  * candidate restriction to the BBST union — the nodes that can reach a
//    bridge end no later than the rumor does; under any of our models a
//    protector outside that set can still spread, but these are the
//    high-value positions (and under DOAM the only useful ones).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "community/partition.h"
#include "graph/graph_view.h"
#include "lcrb/bridge.h"
#include "lcrb/ris.h"
#include "lcrb/sigma.h"
#include "util/threadpool.h"
#include "util/types.h"

namespace lcrb {

enum class CandidateStrategy : std::uint8_t {
  kBbstUnion,   ///< nodes of any bridge end's BBST (default)
  kAllNodes,    ///< every non-rumor node (the paper's literal V \ S_R)
  kBridgeEnds,  ///< only the bridge ends themselves (cheap lower bound)
};

std::string to_string(CandidateStrategy s);

struct GreedyConfig {
  double alpha = 0.8;              ///< fraction of bridge ends to protect
  std::size_t max_protectors = 0;  ///< hard cap; 0 = until alpha reached
  CandidateStrategy candidates = CandidateStrategy::kBbstUnion;
  /// Cap on the candidate pool (0 = unlimited). When capped, candidates are
  /// ranked by how many bridge ends' BBSTs contain them (kBbstUnion) or by
  /// out-degree (other strategies) before truncation — a cheap, analytic
  /// proxy for sigma that keeps the Monte-Carlo budget on plausible seeds.
  std::size_t max_candidates = 0;
  bool use_celf = true;            ///< false = paper's plain re-evaluation
  SigmaConfig sigma;
  /// kRis swaps the Monte-Carlo estimator for RR-set max coverage; the
  /// model/seed/hops knobs are taken from `sigma` so the two modes optimize
  /// the same objective, and the accuracy knobs come from `ris`.
  SigmaMode sigma_mode = SigmaMode::kMonteCarlo;
  RisConfig ris;
};

struct GreedyResult {
  std::vector<NodeId> protectors;    ///< in pick order
  double achieved_fraction = 0.0;    ///< protected fraction at termination
  std::vector<double> gain_history;  ///< marginal sigma gain per pick
  /// MC: single-run simulations performed. RIS: RR sets generated per pool —
  /// the analogous unit of sampling work.
  std::size_t sigma_evaluations = 0;
  std::size_t candidate_count = 0;
  /// Elementary node-touch operations spent estimating sigma (both modes);
  /// the bench's common cost currency.
  std::uint64_t nodes_visited = 0;
  std::size_t ris_rounds = 0;      ///< stopping checkpoints run (kRis only)
  double ris_sigma_lower = 0.0;    ///< certified sigma bounds (kRis only)
  double ris_sigma_upper = 0.0;
  /// kRis only: whether the (epsilon, delta) guarantee was certified before
  /// a cap (max_sets / pool byte budget) ended sampling, and why sampling
  /// stopped. True for kMonteCarlo (no adaptive rule to miss).
  bool ris_guarantee_met = true;
  RisStopReason ris_stop_reason = RisStopReason::kNone;
  /// kMonteCarlo only: which machinery served sigma and, when it is the
  /// legacy path despite the cache being requested, why.
  SigmaPath sigma_path = SigmaPath::kLegacySimulate;
  SigmaFallbackReason sigma_fallback = SigmaFallbackReason::kNone;
};

/// Runs the LCRB-P greedy end to end (bridge ends computed internally).
template <GraphView G>
GreedyResult greedy_lcrbp(const G& g, const Partition& p,
                          CommunityId rumor_community,
                          std::span<const NodeId> rumors,
                          const GreedyConfig& cfg, ThreadPool* pool = nullptr);

/// Variant reusing precomputed bridge ends.
template <GraphView G>
GreedyResult greedy_lcrbp_from_bridges(const G& g,
                                       std::span<const NodeId> rumors,
                                       const BridgeEndResult& bridges,
                                       const GreedyConfig& cfg,
                                       ThreadPool* pool = nullptr);

/// How multiple protector campaigns (one per rumor group) pick their seeds.
/// Both modes optimize the same role-level sigma — under the role-separable
/// collapse every protector helps against the whole rumor union — so the
/// modes differ only in coordination, which is exactly the knob Tong et
/// al. (arXiv:1711.07412) analyze: the union of uncoordinated greedy
/// solutions keeps at least 1/2 of the coordinated greedy's value.
enum class MultiCascadeMode : std::uint8_t {
  kOff,            ///< single campaign (the paper's problem)
  kCoordinated,    ///< one greedy over the summed budget, picks dealt out
  kUncoordinated,  ///< each campaign runs greedy blind to the others
};

std::string to_string(MultiCascadeMode m);

struct MultiGreedyResult {
  /// Per-campaign protector seeds, in pick order. groups[c] respects
  /// budgets[c].
  std::vector<std::vector<NodeId>> groups;
  /// Deduplicated union of the groups, ascending — what actually deploys
  /// (campaigns may collide on the same node when uncoordinated).
  std::vector<NodeId> deployed;
  /// Stats of the underlying greedy run(s); `protectors` is the deployed
  /// union and `achieved_fraction` is evaluated on it.
  GreedyResult combined;
};

/// Multi-campaign protector selection against the rumor-role union
/// (Monte-Carlo mode only; the estimator must match g/rumors/bridges and
/// cfg.sigma). Coordinated: one greedy with budget sum(budgets), picks
/// assigned round-robin to campaigns that still have budget. Uncoordinated:
/// per-campaign greedy with its own budget, blind to the other campaigns'
/// picks; equal-budget campaigns therefore pick identical sets.
template <GraphView G>
MultiGreedyResult greedy_multi_with_estimator(
    const G& g, std::span<const NodeId> rumors,
    const BridgeEndResult& bridges, const GreedyConfig& cfg,
    std::span<const std::size_t> budgets, MultiCascadeMode mode,
    const SigmaEstimator& estimator, ThreadPool* pool = nullptr);

/// Convenience variant that builds its own estimator.
template <GraphView G>
MultiGreedyResult greedy_multi_from_bridges(
    const G& g, std::span<const NodeId> rumors,
    const BridgeEndResult& bridges, const GreedyConfig& cfg,
    std::span<const std::size_t> budgets, MultiCascadeMode mode,
    ThreadPool* pool = nullptr);

/// Variant against a caller-owned estimator (Monte-Carlo mode only). The
/// query service shares one warm SigmaEstimator — and its realization cache —
/// across every query of a session; SigmaEstimator::sigma() is thread-safe,
/// so concurrent callers are fine. The estimator must have been built for
/// the same graph/rumors/bridge ends and with cfg.sigma, or results are
/// meaningless. Because the shared counters mix concurrent queries,
/// sigma_evaluations is derived from this call's own (serial) call count and
/// nodes_visited is reported as 0.
template <GraphView G>
GreedyResult greedy_lcrbp_with_estimator(const G& g,
                                         std::span<const NodeId> rumors,
                                         const BridgeEndResult& bridges,
                                         const GreedyConfig& cfg,
                                         const SigmaEstimator& estimator,
                                         ThreadPool* pool = nullptr);

}  // namespace lcrb
