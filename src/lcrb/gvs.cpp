#include "lcrb/gvs.h"

#include "graph/ef_graph.h"
#include "graph/graph.h"

#include <algorithm>
#include <queue>

#include "util/error.h"
#include "util/reduce.h"
#include "util/rng.h"

namespace lcrb {

namespace {

/// Expected infected count over fixed sample seeds (common random numbers).
template <class G>
class InfectionEstimator {
 public:
  InfectionEstimator(const G& g, std::vector<NodeId> rumors,
                     const GvsConfig& cfg, ThreadPool* pool)
      : g_(g), rumors_(std::move(rumors)), cfg_(cfg), pool_(pool) {
    Rng master(cfg_.seed);
    seeds_.resize(cfg_.samples);
    for (std::size_t i = 0; i < cfg_.samples; ++i) {
      seeds_[i] = master.fork(i).next();
    }
  }

  double expected_infected(std::span<const NodeId> protectors) const {
    MonteCarloConfig mc;
    mc.model = cfg_.model;
    mc.ic_edge_prob = cfg_.ic_edge_prob;
    mc.max_hops = cfg_.max_hops;

    double total = 0.0;
    auto eval = [&](std::size_t i) {
      SeedSets s;
      s.rumors = rumors_;
      s.protectors.assign(protectors.begin(), protectors.end());
      return static_cast<double>(simulate(g_, s, seeds_[i], mc).infected_count());
    };
    if (pool_ != nullptr && cfg_.samples > 1) {
      // Slot-then-serial-reduce: a mutex-guarded `total += v` would be
      // race-free but would still sum in scheduling order, breaking the
      // bit-identical-across-thread-counts contract.
      total = parallel_fixed_order_sum<double>(*pool_, cfg_.samples, eval);
    } else {
      for (std::size_t i = 0; i < cfg_.samples; ++i) total += eval(i);
    }
    return total / static_cast<double>(cfg_.samples);
  }

 private:
  const G& g_;
  std::vector<NodeId> rumors_;
  GvsConfig cfg_;
  ThreadPool* pool_;
  std::vector<std::uint64_t> seeds_;
};

}  // namespace

template <GraphView G>
GvsResult gvs_protectors(const G& g, std::span<const NodeId> rumors,
                         const GvsConfig& cfg, ThreadPool* pool) {
  LCRB_REQUIRE(cfg.budget >= 1, "GVS needs a positive budget");
  LCRB_REQUIRE(cfg.samples >= 1, "GVS needs at least one sample");
  LCRB_REQUIRE(!rumors.empty(), "GVS needs rumor originators");

  const InfectionEstimator<G> est(g, {rumors.begin(), rumors.end()}, cfg,
                                  pool);

  // Candidates: non-rumor nodes, optionally capped by out-degree rank (high
  // influence first — the GVS paper's own "highly influential nodes").
  std::vector<bool> is_rumor(g.num_nodes(), false);
  for (NodeId r : rumors) {
    LCRB_REQUIRE(r < g.num_nodes(), "rumor out of range");
    is_rumor[r] = true;
  }
  std::vector<NodeId> candidates;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!is_rumor[v]) candidates.push_back(v);
  }
  if (cfg.max_candidates > 0 && candidates.size() > cfg.max_candidates) {
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&g](NodeId a, NodeId b) {
                       return g.out_degree(a) > g.out_degree(b);
                     });
    candidates.resize(cfg.max_candidates);
  }

  GvsResult out;
  out.baseline_infected = est.expected_infected({});
  double current = out.baseline_infected;
  std::vector<NodeId> chosen;

  struct Entry {
    double reduction;
    NodeId node;
    std::size_t round;
    bool operator<(const Entry& o) const { return reduction < o.reduction; }
  };
  std::priority_queue<Entry> heap;

  // Round-0 reductions in parallel across candidates.
  {
    std::vector<double> red(candidates.size());
    auto eval = [&](std::size_t i) {
      const NodeId v[] = {candidates[i]};
      red[i] = current - est.expected_infected(v);
    };
    if (pool != nullptr && candidates.size() > 1) {
      pool->parallel_for(candidates.size(), eval);
    } else {
      for (std::size_t i = 0; i < candidates.size(); ++i) eval(i);
    }
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      heap.push({red[i], candidates[i], 0});
    }
  }

  while (chosen.size() < cfg.budget && !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    if (top.round != chosen.size()) {
      std::vector<NodeId> trial = chosen;
      trial.push_back(top.node);
      top.reduction = current - est.expected_infected(trial);
      top.round = chosen.size();
      if (!heap.empty() && top.reduction < heap.top().reduction) {
        heap.push(top);
        continue;
      }
    }
    chosen.push_back(top.node);
    current -= top.reduction;
    out.infected_history.push_back(current);
  }

  out.protectors = std::move(chosen);
  out.final_infected = current;
  return out;
}

template GvsResult gvs_protectors<DiGraph>(const DiGraph&,
                                           std::span<const NodeId>,
                                           const GvsConfig&, ThreadPool*);
template GvsResult gvs_protectors<EfGraph>(const EfGraph&,
                                           std::span<const NodeId>,
                                           const GvsConfig&, ThreadPool*);

}  // namespace lcrb
