// Greedy Viral Stopper (GVS) — related-work baseline after Nguyen et al.
// [26] (paper §II): greedily seed protectors to minimize the TOTAL expected
// number of infected nodes, irrespective of community structure or bridge
// ends. Contrasting it with the LCRB algorithms shows what the bridge-end
// objective buys: GVS spends budget inside the rumor community where
// infections are doomed anyway, while LCRB guards the boundary.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "diffusion/montecarlo.h"
#include "graph/graph_view.h"
#include "util/threadpool.h"
#include "util/types.h"

namespace lcrb {

struct GvsConfig {
  std::size_t budget = 10;        ///< protectors to select
  std::size_t samples = 20;       ///< Monte-Carlo samples per evaluation
  std::uint64_t seed = 23;
  std::uint32_t max_hops = 31;
  DiffusionModel model = DiffusionModel::kOpoao;
  double ic_edge_prob = 0.1;
  /// Candidate pool cap (ranked by out-degree); 0 = all non-rumor nodes.
  std::size_t max_candidates = 300;
};

struct GvsResult {
  std::vector<NodeId> protectors;       ///< pick order
  double baseline_infected = 0.0;       ///< E[#infected] with no protectors
  double final_infected = 0.0;          ///< E[#infected] with the full set
  std::vector<double> infected_history; ///< E[#infected] after each pick
};

/// Runs GVS with CELF-style lazy evaluation (the infection-reduction
/// objective is monotone and empirically submodular under the live-pick
/// coupling; lazy bounds are refreshed before acceptance either way).
template <GraphView G>
GvsResult gvs_protectors(const G& g, std::span<const NodeId> rumors,
                         const GvsConfig& cfg, ThreadPool* pool = nullptr);

}  // namespace lcrb
