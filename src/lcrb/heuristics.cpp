#include "lcrb/heuristics.h"

#include "graph/ef_graph.h"
#include "graph/graph.h"

#include <algorithm>
#include <numeric>

#include "diffusion/doam.h"
#include "util/error.h"

namespace lcrb {

namespace {

template <class G>
std::vector<bool> rumor_mask(const G& g, std::span<const NodeId> rumors) {
  std::vector<bool> mask(g.num_nodes(), false);
  for (NodeId r : rumors) {
    LCRB_REQUIRE(r < g.num_nodes(), "rumor out of range");
    mask[r] = true;
  }
  return mask;
}

}  // namespace

template <GraphView G>
std::vector<NodeId> maxdegree_protectors(const G& g,
                                         std::span<const NodeId> rumors,
                                         std::size_t k) {
  const std::vector<bool> is_rumor = rumor_mask(g, rumors);
  std::vector<NodeId> order;
  order.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!is_rumor[v]) order.push_back(v);
  }
  std::stable_sort(order.begin(), order.end(), [&g](NodeId a, NodeId b) {
    return g.out_degree(a) > g.out_degree(b);
  });
  if (order.size() > k) order.resize(k);
  return order;
}

template <GraphView G>
std::vector<NodeId> proximity_protectors(const G& g,
                                         std::span<const NodeId> rumors,
                                         std::size_t k, Rng& rng) {
  const std::vector<bool> is_rumor = rumor_mask(g, rumors);
  std::vector<NodeId> pool;
  std::vector<bool> seen(g.num_nodes(), false);
  for (NodeId r : rumors) {
    for (NodeId v : g.out_neighbors(r)) {
      if (!is_rumor[v] && !seen[v]) {
        seen[v] = true;
        pool.push_back(v);
      }
    }
  }
  // Partial Fisher-Yates: the first min(k, |pool|) entries become the sample.
  const std::size_t take = std::min(k, pool.size());
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t j = i + rng.next_below(pool.size() - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(take);
  return pool;
}

template <GraphView G>
std::vector<NodeId> random_protectors(const G& g,
                                      std::span<const NodeId> rumors,
                                      std::size_t k, Rng& rng) {
  const std::vector<bool> is_rumor = rumor_mask(g, rumors);
  std::vector<NodeId> pool;
  pool.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!is_rumor[v]) pool.push_back(v);
  }
  const std::size_t take = std::min(k, pool.size());
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t j = i + rng.next_below(pool.size() - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(take);
  return pool;
}

template <GraphView G>
std::vector<double> pagerank(const G& g, double damping, int iters) {
  LCRB_REQUIRE(damping > 0.0 && damping < 1.0, "damping must be in (0,1)");
  LCRB_REQUIRE(iters >= 1, "need at least one iteration");
  const NodeId n = g.num_nodes();
  if (n == 0) return {};
  std::vector<double> rank(n, 1.0 / n), next(n, 0.0);
  for (int it = 0; it < iters; ++it) {
    double dangling = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (NodeId u = 0; u < n; ++u) {
      const auto nbrs = g.out_neighbors(u);
      if (nbrs.empty()) {
        dangling += rank[u];
        continue;
      }
      const double share = rank[u] / static_cast<double>(nbrs.size());
      for (NodeId v : nbrs) next[v] += share;
    }
    const double base = (1.0 - damping) / n + damping * dangling / n;
    for (NodeId v = 0; v < n; ++v) next[v] = base + damping * next[v];
    rank.swap(next);
  }
  return rank;
}

template <GraphView G>
std::vector<NodeId> pagerank_protectors(const G& g,
                                        std::span<const NodeId> rumors,
                                        std::size_t k, int iters) {
  const std::vector<bool> is_rumor = rumor_mask(g, rumors);
  const std::vector<double> rank = pagerank(g, 0.85, iters);
  std::vector<NodeId> order;
  order.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!is_rumor[v]) order.push_back(v);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&rank](NodeId a, NodeId b) { return rank[a] > rank[b]; });
  if (order.size() > k) order.resize(k);
  return order;
}

template <GraphView G>
CoverCostResult cover_cost_doam(const G& g,
                                std::span<const NodeId> rumors,
                                std::span<const NodeId> bridge_ends,
                                std::span<const NodeId> ordered_candidates) {
  CoverCostResult out;
  auto covers = [&](std::size_t prefix) {
    SeedSets seeds;
    seeds.rumors.assign(rumors.begin(), rumors.end());
    seeds.protectors.assign(ordered_candidates.begin(),
                            ordered_candidates.begin() +
                                static_cast<std::ptrdiff_t>(prefix));
    const std::vector<bool> saved = doam_saved(g, seeds, bridge_ends);
    return std::all_of(saved.begin(), saved.end(),
                       [](bool s) { return s; });
  };

  if (bridge_ends.empty()) {
    out.feasible = true;
    return out;
  }
  if (!covers(ordered_candidates.size())) {
    out.cost = ordered_candidates.size();
    out.feasible = false;
    out.protectors.assign(ordered_candidates.begin(),
                          ordered_candidates.end());
    return out;
  }
  // Binary search the minimal covering prefix (coverage is monotone: adding
  // protector seeds can only speed cascade P up).
  std::size_t lo = 0, hi = ordered_candidates.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (covers(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  out.cost = lo;
  out.feasible = true;
  out.protectors.assign(ordered_candidates.begin(),
                        ordered_candidates.begin() +
                            static_cast<std::ptrdiff_t>(lo));
  return out;
}

#define LCRB_INSTANTIATE_HEURISTICS(G)                                        \
  template std::vector<NodeId> maxdegree_protectors<G>(                       \
      const G&, std::span<const NodeId>, std::size_t);                        \
  template std::vector<NodeId> proximity_protectors<G>(                       \
      const G&, std::span<const NodeId>, std::size_t, Rng&);                  \
  template std::vector<NodeId> random_protectors<G>(                          \
      const G&, std::span<const NodeId>, std::size_t, Rng&);                  \
  template std::vector<double> pagerank<G>(const G&, double, int);            \
  template std::vector<NodeId> pagerank_protectors<G>(                        \
      const G&, std::span<const NodeId>, std::size_t, int);                   \
  template CoverCostResult cover_cost_doam<G>(                                \
      const G&, std::span<const NodeId>, std::span<const NodeId>,             \
      std::span<const NodeId>);

LCRB_INSTANTIATE_HEURISTICS(DiGraph)
LCRB_INSTANTIATE_HEURISTICS(EfGraph)

#undef LCRB_INSTANTIATE_HEURISTICS

}  // namespace lcrb
