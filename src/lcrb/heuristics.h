// Baseline protector-selection heuristics (paper §VI-B.1) plus the
// cover-cost machinery behind Table I.
//
//  * MaxDegree — nodes in decreasing out-degree order.
//  * Proximity — uniformly random direct out-neighbors of the rumor
//    originators.
//  * Random — uniformly random non-rumor nodes (the paper drops it for poor
//    performance; kept for completeness).
//  * PageRank — extension baseline: nodes by PageRank score.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph_view.h"
#include "util/rng.h"
#include "util/types.h"

namespace lcrb {

/// Top-k nodes by out-degree, excluding rumors (ties -> lower id).
template <GraphView G>
std::vector<NodeId> maxdegree_protectors(const G& g,
                                         std::span<const NodeId> rumors,
                                         std::size_t k);

/// k distinct nodes sampled uniformly from the rumors' direct out-neighbors
/// (excluding the rumors themselves). If fewer than k such neighbors exist,
/// returns all of them.
template <GraphView G>
std::vector<NodeId> proximity_protectors(const G& g,
                                         std::span<const NodeId> rumors,
                                         std::size_t k, Rng& rng);

/// k distinct uniformly random non-rumor nodes.
template <GraphView G>
std::vector<NodeId> random_protectors(const G& g,
                                      std::span<const NodeId> rumors,
                                      std::size_t k, Rng& rng);

/// Top-k nodes by PageRank (damping 0.85, `iters` power iterations).
template <GraphView G>
std::vector<NodeId> pagerank_protectors(const G& g,
                                        std::span<const NodeId> rumors,
                                        std::size_t k, int iters = 30);

/// PageRank scores for all nodes (exposed for tests/examples).
template <GraphView G>
std::vector<double> pagerank(const G& g, double damping = 0.85,
                             int iters = 30);

// ---------------------------------------------------------------------------
// Table I support: how many protectors does a heuristic need before every
// bridge end is saved under DOAM?
// ---------------------------------------------------------------------------

struct CoverCostResult {
  std::size_t cost = 0;              ///< protectors needed (pool size if infeasible)
  bool feasible = false;             ///< full protection reached within the pool
  std::vector<NodeId> protectors;    ///< the covering prefix (or whole pool)
};

/// Given a fixed candidate ordering (a heuristic's output ranked best-first),
/// finds the shortest prefix that protects every bridge end under DOAM.
/// Protection is monotone in the prefix, so this runs a binary search with
/// O(log k) analytic DOAM checks.
template <GraphView G>
CoverCostResult cover_cost_doam(const G& g,
                                std::span<const NodeId> rumors,
                                std::span<const NodeId> bridge_ends,
                                std::span<const NodeId> ordered_candidates);

}  // namespace lcrb
