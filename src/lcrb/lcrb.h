// DEPRECATED umbrella header, kept as a compatibility shim.
//
// Include the layer you need instead:
//   lcrb/core.h         graph/community/diffusion substrate + the paper's
//                       algorithms + LcrbOptions
//   lcrb/experiments.h  pipeline, baselines, source detection, CLI/report
//                       utilities (includes core.h)
//
// Nothing in this repository includes lcrb/lcrb.h anymore; it survives only
// so code written against the old single-header API keeps compiling, and it
// may be removed in a future release.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#pragma message( \
    "lcrb/lcrb.h is deprecated: include lcrb/core.h or lcrb/experiments.h")
#endif

#include "lcrb/experiments.h"  // IWYU pragma: export (includes lcrb/core.h)
