// Umbrella header: the full public API of the LCRB library.
//
//   #include "lcrb/lcrb.h"
//
// Split into two layers (each independently includable):
//   lcrb/core.h         graph/community/diffusion substrate + the paper's
//                       algorithms + LcrbOptions
//   lcrb/experiments.h  pipeline, baselines, source detection, CLI/report
//                       utilities (includes core.h)
//
// Layers (bottom-up):
//   util/       RNG, stats, thread pool, JSON, CLI, tables
//   graph/      CSR digraph, generators (incl. Enron/Hep substitutes), I/O
//   community/  Louvain, label propagation, modularity, NMI
//   diffusion/  OPOAO & DOAM (paper models), competitive IC/LT, Monte Carlo
//   lcrb/       bridge ends, RFST/BBST, set cover, LCRB-P greedy, SCBG,
//               baselines, experiment pipeline
#pragma once

#include "lcrb/core.h"
#include "lcrb/experiments.h"
