// Umbrella header: the full public API of the LCRB library.
//
//   #include "lcrb/lcrb.h"
//
// Layers (bottom-up):
//   util/       RNG, stats, thread pool, CLI, tables
//   graph/      CSR digraph, generators (incl. Enron/Hep substitutes), I/O
//   community/  Louvain, label propagation, modularity, NMI
//   diffusion/  OPOAO & DOAM (paper models), competitive IC/LT, Monte Carlo
//   lcrb/       bridge ends, RFST/BBST, set cover, LCRB-P greedy, SCBG,
//               baselines, experiment pipeline
#pragma once

#include "community/detect.h"
#include "community/io.h"
#include "community/label_propagation.h"
#include "community/louvain.h"
#include "community/modularity.h"
#include "community/nmi.h"
#include "community/partition.h"
#include "community/quality.h"
#include "diffusion/cascade.h"
#include "diffusion/doam.h"
#include "diffusion/ic.h"
#include "diffusion/lt.h"
#include "diffusion/montecarlo.h"
#include "diffusion/opoao.h"
#include "graph/builder.h"
#include "graph/centrality.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/metrics.h"
#include "graph/subgraph.h"
#include "graph/transform.h"
#include "graph/traversal.h"
#include "lcrb/bbst.h"
#include "lcrb/bridge.h"
#include "lcrb/greedy.h"
#include "lcrb/gvs.h"
#include "lcrb/heuristics.h"
#include "lcrb/pipeline.h"
#include "lcrb/rfst.h"
#include "lcrb/ris.h"
#include "lcrb/scbg.h"
#include "lcrb/setcover.h"
#include "lcrb/source.h"
#include "lcrb/sigma.h"
#include "util/args.h"
#include "util/bitset.h"
#include "util/csv.h"
#include "util/error.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/threadpool.h"
#include "util/timer.h"
#include "util/types.h"
