#include "lcrb/options.h"

#include <cctype>

#include "util/args.h"
#include "util/error.h"

namespace lcrb {

namespace {

// Case-insensitive name match so the canonical forms ("OPOAO", "Greedy")
// and the lowercase CLI spellings ("opoao", "greedy") both parse.
bool iequals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

// "1,2,3" -> {1, 2, 3}. Empty items are rejected so "1,,2" is a loud typo.
std::vector<std::size_t> parse_size_list(const std::string& s) {
  std::vector<std::size_t> out;
  std::size_t begin = 0;
  while (begin <= s.size()) {
    std::size_t end = s.find(',', begin);
    if (end == std::string::npos) end = s.size();
    const std::string item = s.substr(begin, end - begin);
    if (item.empty()) {
      throw Error("options: empty item in list '" + s + "'");
    }
    std::size_t parsed = 0;
    try {
      parsed = static_cast<std::size_t>(std::stoull(item));
    } catch (const std::exception&) {
      throw Error("options: bad number '" + item + "' in list '" + s + "'");
    }
    out.push_back(parsed);
    begin = end + 1;
  }
  return out;
}

}  // namespace

std::string to_string(SelectorKind kind) {
  switch (kind) {
    case SelectorKind::kGreedy: return "Greedy";
    case SelectorKind::kScbg: return "SCBG";
    case SelectorKind::kMaxDegree: return "MaxDegree";
    case SelectorKind::kProximity: return "Proximity";
    case SelectorKind::kRandom: return "Random";
    case SelectorKind::kPageRank: return "PageRank";
    case SelectorKind::kGvs: return "GVS";
    case SelectorKind::kBetweenness: return "Betweenness";
    case SelectorKind::kDegreeDiscount: return "DegreeDiscount";
    case SelectorKind::kNoBlocking: return "NoBlocking";
    case SelectorKind::kCldag: return "CLDAG";
  }
  return "unknown";
}

SelectorKind selector_kind_from_string(const std::string& name) {
  for (const SelectorKind k :
       {SelectorKind::kGreedy, SelectorKind::kScbg, SelectorKind::kMaxDegree,
        SelectorKind::kProximity, SelectorKind::kRandom, SelectorKind::kPageRank,
        SelectorKind::kGvs, SelectorKind::kBetweenness,
        SelectorKind::kDegreeDiscount, SelectorKind::kNoBlocking,
        SelectorKind::kCldag}) {
    if (iequals(to_string(k), name)) return k;
  }
  throw Error("unknown selector '" + name + "'");
}

DiffusionModel diffusion_model_from_string(const std::string& name) {
  for (const DiffusionModel m : {DiffusionModel::kOpoao, DiffusionModel::kDoam,
                                 DiffusionModel::kIc, DiffusionModel::kLt,
                                 DiffusionModel::kWc}) {
    if (iequals(to_string(m), name)) return m;
  }
  throw Error("unknown diffusion model '" + name + "' (opoao|doam|ic|lt|wc)");
}

SigmaMode sigma_mode_from_string(const std::string& name) {
  for (const SigmaMode m : {SigmaMode::kMonteCarlo, SigmaMode::kRis}) {
    if (iequals(to_string(m), name)) return m;
  }
  throw Error("unknown sigma mode '" + name + "' (mc|ris)");
}

MultiCascadeMode multi_cascade_mode_from_string(const std::string& name) {
  for (const MultiCascadeMode m :
       {MultiCascadeMode::kOff, MultiCascadeMode::kCoordinated,
        MultiCascadeMode::kUncoordinated}) {
    if (iequals(to_string(m), name)) return m;
  }
  throw Error("unknown multi-cascade mode '" + name +
              "' (off|coordinated|uncoordinated)");
}

CandidateStrategy candidate_strategy_from_string(const std::string& name) {
  for (const CandidateStrategy s :
       {CandidateStrategy::kBbstUnion, CandidateStrategy::kAllNodes,
        CandidateStrategy::kBridgeEnds}) {
    if (iequals(to_string(s), name)) return s;
  }
  throw Error("unknown candidate strategy '" + name +
              "' (bbst_union|all_nodes|bridge_ends)");
}

void LcrbOptions::validate() const {
  if (!(alpha > 0.0 && alpha <= 1.0)) {
    throw Error("options: alpha must be in (0, 1]");
  }
  if (sigma_samples == 0) {
    throw Error("options: sigma_samples must be >= 1");
  }
  if (!(ic_edge_prob >= 0.0 && ic_edge_prob <= 1.0)) {
    throw Error("options: ic_edge_prob must be in [0, 1]");
  }
  if (!(ris_epsilon > 0.0)) {
    throw Error("options: ris_epsilon must be positive");
  }
  if (!(ris_delta > 0.0 && ris_delta < 1.0)) {
    throw Error("options: ris_delta must be in (0, 1)");
  }
  if (ris_initial_sets == 0 || ris_max_sets < ris_initial_sets) {
    throw Error("options: need 1 <= ris_initial_sets <= ris_max_sets");
  }
  if (ris_estimator_sets == 0) {
    throw Error("options: ris_estimator_sets must be >= 1");
  }
  // ris_max_pool_bytes: any value is valid (0 = unlimited; a tiny budget
  // degrades to a one-set pool rather than failing).
  if (gvs_samples == 0) {
    throw Error("options: gvs_samples must be >= 1");
  }
  // The budget rule: self-sizing selectors reject an explicit budget.
  if (budget != 0 && (selector == SelectorKind::kScbg ||
                      selector == SelectorKind::kNoBlocking)) {
    throw Error("options: selector " + to_string(selector) +
                " sizes itself; a nonzero budget is meaningless");
  }
  if (sigma_mode == SigmaMode::kRis && selector != SelectorKind::kGreedy) {
    throw Error("options: sigma_mode ris only applies to the Greedy selector");
  }
  if (!(cldag_theta > 0.0 && cldag_theta <= 1.0)) {
    throw Error("options: cldag_theta must be in (0, 1]");
  }
  if (multi_mode != MultiCascadeMode::kOff) {
    if (selector != SelectorKind::kGreedy) {
      throw Error("options: multi_mode requires the Greedy selector");
    }
    if (sigma_mode != SigmaMode::kMonteCarlo) {
      throw Error("options: multi_mode requires sigma_mode mc");
    }
    if (protector_budgets.empty()) {
      throw Error("options: multi_mode requires non-empty protector_budgets");
    }
    for (std::size_t b : protector_budgets) {
      if (b == 0) {
        throw Error("options: every protector budget must be > 0");
      }
    }
    if (budget != 0) {
      throw Error(
          "options: multi_mode uses protector_budgets; the scalar budget "
          "must stay 0");
    }
    if (cascade_priority == CascadePriority::kRoundRobin) {
      // The selection engines serve K-way queries through the role-separable
      // collapse, which round-robin breaks (see SeedSets::role_separable).
      throw Error("options: multi_mode requires a role-separable priority "
                  "(fixed or lowest)");
    }
  } else if (!protector_budgets.empty()) {
    throw Error("options: protector_budgets requires multi_mode");
  }
}

GreedyConfig LcrbOptions::greedy_config() const {
  GreedyConfig gc;
  gc.alpha = alpha;
  gc.max_protectors = budget;  // callers resolve 0 via resolved_budget()
  gc.candidates = candidates;
  gc.max_candidates = max_candidates;
  gc.use_celf = use_celf;
  gc.sigma = sigma_config();
  gc.sigma_mode = sigma_mode;
  gc.ris = ris_config();
  return gc;
}

SigmaConfig LcrbOptions::sigma_config() const {
  SigmaConfig sc;
  sc.samples = sigma_samples;
  sc.seed = sigma_seed;
  sc.max_hops = max_hops;
  sc.model = model;
  sc.ic_edge_prob = ic_edge_prob;
  sc.use_realization_cache = use_realization_cache;
  sc.max_cache_bytes = max_cache_bytes;
  return sc;
}

RisConfig LcrbOptions::ris_config() const {
  RisConfig rc;
  rc.epsilon = ris_epsilon;
  rc.delta = ris_delta;
  rc.initial_sets = ris_initial_sets;
  rc.max_sets = ris_max_sets;
  rc.estimator_sets = ris_estimator_sets;
  rc.max_pool_bytes = ris_max_pool_bytes;
  rc.seed = sigma_seed;
  rc.max_hops = max_hops;
  rc.model = model;
  rc.ic_edge_prob = ic_edge_prob;
  return rc;
}

GvsConfig LcrbOptions::gvs_config() const {
  GvsConfig gc;
  gc.budget = budget;  // callers resolve 0 via resolved_budget()
  gc.samples = gvs_samples;
  gc.seed = sigma_seed;
  gc.max_hops = max_hops;
  gc.model = model;
  gc.ic_edge_prob = ic_edge_prob;
  gc.max_candidates = gvs_max_candidates;
  return gc;
}

LcrbOptions LcrbOptions::from_args(const Args& args) {
  LcrbOptions o;
  if (args.has("selector")) {
    o.selector = selector_kind_from_string(args.get_string("selector", ""));
  }
  o.budget = static_cast<std::size_t>(
      args.get_int("budget", static_cast<std::int64_t>(o.budget)));
  o.selector_seed = static_cast<std::uint64_t>(args.get_int(
      "selector-seed", static_cast<std::int64_t>(o.selector_seed)));
  o.alpha = args.get_double("alpha", o.alpha);
  if (args.has("candidate-strategy")) {
    o.candidates = candidate_strategy_from_string(
        args.get_string("candidate-strategy", ""));
  }
  o.max_candidates = static_cast<std::size_t>(args.get_int(
      "candidates", static_cast<std::int64_t>(o.max_candidates)));
  if (args.get_bool("no-celf")) o.use_celf = false;
  if (args.has("sigma-mode")) {
    o.sigma_mode = sigma_mode_from_string(args.get_string("sigma-mode", ""));
  }
  if (args.has("model")) {
    o.model = diffusion_model_from_string(args.get_string("model", ""));
  }
  o.sigma_samples = static_cast<std::size_t>(
      args.get_int("samples", static_cast<std::int64_t>(o.sigma_samples)));
  o.sigma_seed = static_cast<std::uint64_t>(
      args.get_int("sigma-seed", static_cast<std::int64_t>(o.sigma_seed)));
  o.max_hops = static_cast<std::uint32_t>(
      args.get_int("hops", static_cast<std::int64_t>(o.max_hops)));
  o.ic_edge_prob = args.get_double("ic-prob", o.ic_edge_prob);
  if (args.get_bool("no-sigma-cache")) o.use_realization_cache = false;
  o.max_cache_bytes = static_cast<std::size_t>(args.get_int(
      "sigma-cache-bytes", static_cast<std::int64_t>(o.max_cache_bytes)));
  o.ris_epsilon = args.get_double("ris-eps", o.ris_epsilon);
  o.ris_delta = args.get_double("ris-delta", o.ris_delta);
  o.ris_initial_sets = static_cast<std::size_t>(args.get_int(
      "ris-initial-sets", static_cast<std::int64_t>(o.ris_initial_sets)));
  o.ris_max_sets = static_cast<std::size_t>(args.get_int(
      "ris-max-sets", static_cast<std::int64_t>(o.ris_max_sets)));
  o.ris_estimator_sets = static_cast<std::size_t>(args.get_int(
      "ris-estimator-sets", static_cast<std::int64_t>(o.ris_estimator_sets)));
  o.ris_max_pool_bytes = static_cast<std::size_t>(args.get_int(
      "ris-pool-bytes", static_cast<std::int64_t>(o.ris_max_pool_bytes)));
  o.gvs_samples = static_cast<std::size_t>(args.get_int(
      "gvs-samples", static_cast<std::int64_t>(o.gvs_samples)));
  o.gvs_max_candidates = static_cast<std::size_t>(args.get_int(
      "gvs-candidates", static_cast<std::int64_t>(o.gvs_max_candidates)));
  if (args.has("cascade-priority")) {
    o.cascade_priority =
        cascade_priority_from_string(args.get_string("cascade-priority", ""));
  }
  if (args.has("multi-mode")) {
    o.multi_mode =
        multi_cascade_mode_from_string(args.get_string("multi-mode", ""));
  }
  if (args.has("protector-budgets")) {
    o.protector_budgets =
        parse_size_list(args.get_string("protector-budgets", ""));
  }
  o.cldag_theta = args.get_double("cldag-theta", o.cldag_theta);
  if (args.has("graph-backend")) {
    o.graph_backend =
        parse_graph_backend(args.get_string("graph-backend", ""));
  }
  o.validate();
  return o;
}

JsonValue LcrbOptions::to_json() const {
  JsonValue v = JsonValue::object();
  v.set("selector", to_string(selector));
  v.set("budget", static_cast<std::uint64_t>(budget));
  v.set("selector_seed", selector_seed);
  v.set("alpha", alpha);
  v.set("candidates", to_string(candidates));
  v.set("max_candidates", static_cast<std::uint64_t>(max_candidates));
  v.set("use_celf", use_celf);
  v.set("sigma_mode", to_string(sigma_mode));
  v.set("model", to_string(model));
  v.set("sigma_samples", static_cast<std::uint64_t>(sigma_samples));
  v.set("sigma_seed", sigma_seed);
  v.set("max_hops", static_cast<std::uint64_t>(max_hops));
  v.set("ic_edge_prob", ic_edge_prob);
  v.set("use_realization_cache", use_realization_cache);
  v.set("max_cache_bytes", static_cast<std::uint64_t>(max_cache_bytes));
  v.set("ris_epsilon", ris_epsilon);
  v.set("ris_delta", ris_delta);
  v.set("ris_initial_sets", static_cast<std::uint64_t>(ris_initial_sets));
  v.set("ris_max_sets", static_cast<std::uint64_t>(ris_max_sets));
  v.set("ris_estimator_sets", static_cast<std::uint64_t>(ris_estimator_sets));
  v.set("ris_max_pool_bytes", static_cast<std::uint64_t>(ris_max_pool_bytes));
  v.set("gvs_samples", static_cast<std::uint64_t>(gvs_samples));
  v.set("gvs_max_candidates", static_cast<std::uint64_t>(gvs_max_candidates));
  v.set("cascade_priority", to_string(cascade_priority));
  v.set("multi_mode", to_string(multi_mode));
  JsonValue budgets = JsonValue::array();
  for (std::size_t b : protector_budgets) {
    budgets.push_back(JsonValue(static_cast<std::uint64_t>(b)));
  }
  v.set("protector_budgets", std::move(budgets));
  v.set("cldag_theta", cldag_theta);
  v.set("graph_backend", to_string(graph_backend));
  return v;
}

namespace {

// Negative JSON ints would wrap to huge unsigned counts (e.g. -1 becomes
// 2^64-1 samples) and pass validate() as plausible values; reject up front.
std::uint64_t non_negative_option(const JsonValue& v, const char* what) {
  const std::int64_t x = v.as_int();
  if (x < 0) {
    throw Error(std::string("options: ") + what +
                " must be non-negative, got " + std::to_string(x));
  }
  return static_cast<std::uint64_t>(x);
}

}  // namespace

LcrbOptions LcrbOptions::from_json(const JsonValue& v) {
  if (!v.is_object()) throw Error("options: expected a JSON object");
  LcrbOptions o;
  for (const auto& [key, val] : v.members()) {
    if (key == "selector") {
      o.selector = selector_kind_from_string(val.as_string());
    } else if (key == "budget") {
      o.budget = static_cast<std::size_t>(non_negative_option(val, "budget"));
    } else if (key == "selector_seed") {
      o.selector_seed = non_negative_option(val, "selector_seed");
    } else if (key == "alpha") {
      o.alpha = val.as_double();
    } else if (key == "candidates") {
      o.candidates = candidate_strategy_from_string(val.as_string());
    } else if (key == "max_candidates") {
      o.max_candidates = static_cast<std::size_t>(non_negative_option(val, "max_candidates"));
    } else if (key == "use_celf") {
      o.use_celf = val.as_bool();
    } else if (key == "sigma_mode") {
      o.sigma_mode = sigma_mode_from_string(val.as_string());
    } else if (key == "model") {
      o.model = diffusion_model_from_string(val.as_string());
    } else if (key == "sigma_samples") {
      o.sigma_samples = static_cast<std::size_t>(non_negative_option(val, "sigma_samples"));
    } else if (key == "sigma_seed") {
      o.sigma_seed = non_negative_option(val, "sigma_seed");
    } else if (key == "max_hops") {
      o.max_hops = static_cast<std::uint32_t>(non_negative_option(val, "max_hops"));
    } else if (key == "ic_edge_prob") {
      o.ic_edge_prob = val.as_double();
    } else if (key == "use_realization_cache") {
      o.use_realization_cache = val.as_bool();
    } else if (key == "max_cache_bytes") {
      o.max_cache_bytes = static_cast<std::size_t>(non_negative_option(val, "max_cache_bytes"));
    } else if (key == "ris_epsilon") {
      o.ris_epsilon = val.as_double();
    } else if (key == "ris_delta") {
      o.ris_delta = val.as_double();
    } else if (key == "ris_initial_sets") {
      o.ris_initial_sets = static_cast<std::size_t>(non_negative_option(val, "ris_initial_sets"));
    } else if (key == "ris_max_sets") {
      o.ris_max_sets = static_cast<std::size_t>(non_negative_option(val, "ris_max_sets"));
    } else if (key == "ris_estimator_sets") {
      o.ris_estimator_sets = static_cast<std::size_t>(non_negative_option(val, "ris_estimator_sets"));
    } else if (key == "ris_max_pool_bytes") {
      o.ris_max_pool_bytes = static_cast<std::size_t>(non_negative_option(val, "ris_max_pool_bytes"));
    } else if (key == "gvs_samples") {
      o.gvs_samples = static_cast<std::size_t>(non_negative_option(val, "gvs_samples"));
    } else if (key == "gvs_max_candidates") {
      o.gvs_max_candidates = static_cast<std::size_t>(non_negative_option(val, "gvs_max_candidates"));
    } else if (key == "cascade_priority") {
      o.cascade_priority = cascade_priority_from_string(val.as_string());
    } else if (key == "multi_mode") {
      o.multi_mode = multi_cascade_mode_from_string(val.as_string());
    } else if (key == "protector_budgets") {
      if (!val.is_array()) {
        throw Error("options: protector_budgets must be an array");
      }
      o.protector_budgets.clear();
      for (const JsonValue& b : val.items()) {
        o.protector_budgets.push_back(
            static_cast<std::size_t>(non_negative_option(b, "protector_budgets")));
      }
    } else if (key == "cldag_theta") {
      o.cldag_theta = val.as_double();
    } else if (key == "graph_backend") {
      o.graph_backend = parse_graph_backend(val.as_string());
    } else {
      throw Error("options: unknown key '" + key + "'");
    }
  }
  o.validate();
  return o;
}

}  // namespace lcrb
