// LcrbOptions — the single documented knob aggregate of the library's
// protector-selection API.
//
// Historically every entry point took its own nest of structs
// (SelectorConfig wrapping GreedyConfig wrapping SigmaConfig and RisConfig,
// with GvsConfig on the side). LcrbOptions collapses that nesting into one
// flat, validated aggregate with a canonical JSON round-trip; the legacy
// structs survive as thin engine-level configs that LcrbOptions converts
// into (deprecated as *entry-point* types — new code should pass
// LcrbOptions; the nested structs will stop appearing in public signatures
// after one release).
//
// The budget rule (previously enforced inconsistently — kGvs silently
// overrode its own budget, kScbg silently ignored one):
//
//   * budget == 0 means "match the rumor count" (the paper's |P| = |R|
//     convention) for every budgeted selector: greedy, maxdegree, proximity,
//     random, pagerank, betweenness, degreediscount, gvs.
//   * kScbg and kNoBlocking size themselves (SCBG picks the cheapest full
//     cover; NoBlocking is empty by definition); combining them with a
//     nonzero budget is meaningless and validate() rejects it.
#pragma once

#include <cstdint>
#include <string>

#include "graph/backend.h"
#include "lcrb/greedy.h"
#include "lcrb/gvs.h"
#include "util/json.h"

namespace lcrb {

class Args;

/// Protector-selection strategies compared in the paper's evaluation.
enum class SelectorKind : std::uint8_t {
  kGreedy,      ///< LCRB-P Monte-Carlo greedy (Algorithm 1)
  kScbg,        ///< LCRB-D set-cover greedy (Algorithm 3)
  kMaxDegree,
  kProximity,
  kRandom,
  kPageRank,
  kGvs,         ///< Greedy Viral Stopper (related work [26]): minimize total infections
  kBetweenness, ///< top betweenness-centrality nodes (extension baseline)
  kDegreeDiscount, ///< DegreeDiscount (Chen et al. KDD'09) IM heuristic
  kNoBlocking,  ///< empty protector set (the paper's reference line)
  kCldag,       ///< He et al.'s CLDAG (arXiv:1110.4723): competitive-LT local DAGs
};

std::string to_string(SelectorKind kind);
/// Inverse of to_string (case-insensitive, so "scbg" and "SCBG" both work);
/// throws lcrb::Error on unknown names.
SelectorKind selector_kind_from_string(const std::string& name);

DiffusionModel diffusion_model_from_string(const std::string& name);
SigmaMode sigma_mode_from_string(const std::string& name);
CandidateStrategy candidate_strategy_from_string(const std::string& name);
MultiCascadeMode multi_cascade_mode_from_string(const std::string& name);

/// Every knob of protector selection, flat. Field groups mirror the legacy
/// structs they replace; the *_config() accessors produce those structs for
/// the engine entry points.
struct LcrbOptions {
  // --- selection -----------------------------------------------------------
  SelectorKind selector = SelectorKind::kGreedy;
  /// Protector budget |S_P|; 0 = |rumors| (see the budget rule above).
  std::size_t budget = 0;
  /// Seed of the randomized selectors (Proximity / Random).
  std::uint64_t selector_seed = 99;

  // --- greedy (LCRB-P) -----------------------------------------------------
  double alpha = 0.8;              ///< fraction of bridge ends to protect
  CandidateStrategy candidates = CandidateStrategy::kBbstUnion;
  std::size_t max_candidates = 0;  ///< candidate-pool cap (0 = unlimited)
  bool use_celf = true;            ///< false = paper's plain re-evaluation

  // --- sigma estimation (shared by the mc and ris machineries) -------------
  SigmaMode sigma_mode = SigmaMode::kMonteCarlo;
  DiffusionModel model = DiffusionModel::kOpoao;
  std::size_t sigma_samples = 50;
  std::uint64_t sigma_seed = 7;
  std::uint32_t max_hops = 31;
  double ic_edge_prob = 0.1;
  bool use_realization_cache = true;
  std::size_t max_cache_bytes = std::size_t{1} << 30;

  // --- ris accuracy knobs --------------------------------------------------
  double ris_epsilon = 0.1;
  double ris_delta = 0.01;
  std::size_t ris_initial_sets = 512;
  std::size_t ris_max_sets = std::size_t{1} << 18;
  std::size_t ris_estimator_sets = 4096;
  /// Content-byte budget per RR pool (0 = unlimited); see
  /// RisConfig::max_pool_bytes for the retirement semantics.
  std::size_t ris_max_pool_bytes = 0;

  // --- gvs baseline --------------------------------------------------------
  std::size_t gvs_samples = 20;
  std::size_t gvs_max_candidates = 300;

  // --- K-cascade workloads -------------------------------------------------
  /// Simultaneous-arrival policy threaded into every K-way evaluation.
  CascadePriority cascade_priority = CascadePriority::kFixedOrder;
  /// Multi-campaign protector selection (kGreedy + Monte-Carlo only; see
  /// MultiCascadeMode). kOff = the paper's single-campaign problem.
  MultiCascadeMode multi_mode = MultiCascadeMode::kOff;
  /// Per-campaign protector budgets; required non-empty iff multi_mode is
  /// on (the scalar `budget` must then stay 0).
  std::vector<std::size_t> protector_budgets;
  /// LDAG influence cutoff for the kCldag selector (He et al.'s 1/320).
  double cldag_theta = 1.0 / 320.0;

  // --- graph storage -------------------------------------------------------
  /// Storage backend used when this aggregate drives a graph load (lcrb_cli,
  /// the daemon's open verb). Purely a space/speed trade: selection outputs
  /// are byte-identical across backends, so the field never shapes results.
  GraphBackend graph_backend = GraphBackend::kCsr;

  /// Throws lcrb::Error (plain message, no file/line) on out-of-range
  /// fields or meaningless combinations — notably a nonzero budget with
  /// kScbg or kNoBlocking.
  void validate() const;

  /// Budget resolved per the rule above: 0 -> num_rumors.
  std::size_t resolved_budget(std::size_t num_rumors) const {
    return budget == 0 ? num_rumors : budget;
  }

  // Engine-level views (the legacy structs, populated from these fields).
  GreedyConfig greedy_config() const;
  SigmaConfig sigma_config() const;
  RisConfig ris_config() const;
  GvsConfig gvs_config() const;

  /// Parses the shared CLI flag set (see docs/service.md for the list);
  /// starts from defaults, overrides only flags that are present, and
  /// validates the result.
  static LcrbOptions from_args(const Args& args);

  /// Canonical JSON object holding every field (stable key order).
  JsonValue to_json() const;
  /// Inverse of to_json. Absent keys keep their defaults; unknown keys are
  /// rejected so a typo cannot silently fall back to a default. Validates.
  static LcrbOptions from_json(const JsonValue& v);

  friend bool operator==(const LcrbOptions& a, const LcrbOptions& b) = default;
};

}  // namespace lcrb
