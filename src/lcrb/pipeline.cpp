#include "lcrb/pipeline.h"

#include <algorithm>

#include "graph/centrality.h"
#include "lcrb/heuristics.h"
#include "util/error.h"
#include "util/rng.h"

namespace lcrb {

ExperimentSetup prepare_experiment(const DiGraph& g, const Partition& p,
                                   CommunityId rumor_community,
                                   std::size_t num_rumors,
                                   std::uint64_t seed) {
  LCRB_REQUIRE(p.num_nodes() == g.num_nodes(),
               "partition does not cover the graph");
  LCRB_REQUIRE(rumor_community < p.num_communities(),
               "rumor community out of range");
  const std::vector<NodeId>& members = p.members(rumor_community);
  LCRB_REQUIRE(num_rumors >= 1, "need at least one rumor originator");
  LCRB_REQUIRE(num_rumors <= members.size(),
               "more rumor originators than community members");

  ExperimentSetup setup;
  setup.graph = &g;
  setup.partition = &p;
  setup.rumor_community = rumor_community;

  // Partial Fisher-Yates over a copy of the member list.
  std::vector<NodeId> pool = members;
  Rng rng(seed);
  for (std::size_t i = 0; i < num_rumors; ++i) {
    const std::size_t j = i + rng.next_below(pool.size() - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(num_rumors);
  std::sort(pool.begin(), pool.end());
  setup.rumors = std::move(pool);

  setup.bridges = find_bridge_ends(g, p, rumor_community, setup.rumors);
  return setup;
}

std::string to_string(SelectorKind kind) {
  switch (kind) {
    case SelectorKind::kGreedy: return "Greedy";
    case SelectorKind::kScbg: return "SCBG";
    case SelectorKind::kMaxDegree: return "MaxDegree";
    case SelectorKind::kProximity: return "Proximity";
    case SelectorKind::kRandom: return "Random";
    case SelectorKind::kPageRank: return "PageRank";
    case SelectorKind::kGvs: return "GVS";
    case SelectorKind::kBetweenness: return "Betweenness";
    case SelectorKind::kDegreeDiscount: return "DegreeDiscount";
    case SelectorKind::kNoBlocking: return "NoBlocking";
  }
  return "unknown";
}

std::vector<NodeId> select_protectors(SelectorKind kind,
                                      const ExperimentSetup& setup,
                                      const SelectorConfig& cfg,
                                      ThreadPool* pool) {
  LCRB_REQUIRE(setup.graph != nullptr, "setup not prepared");
  const DiGraph& g = *setup.graph;
  const std::size_t budget =
      cfg.budget == 0 ? setup.rumors.size() : cfg.budget;
  Rng rng(cfg.seed);

  switch (kind) {
    case SelectorKind::kNoBlocking:
      return {};
    case SelectorKind::kMaxDegree:
      return maxdegree_protectors(g, setup.rumors, budget);
    case SelectorKind::kProximity:
      return proximity_protectors(g, setup.rumors, budget, rng);
    case SelectorKind::kRandom:
      return random_protectors(g, setup.rumors, budget, rng);
    case SelectorKind::kPageRank:
      return pagerank_protectors(g, setup.rumors, budget);
    case SelectorKind::kGvs: {
      GvsConfig gc = cfg.gvs;
      gc.budget = budget;
      return gvs_protectors(g, setup.rumors, gc, pool).protectors;
    }
    case SelectorKind::kBetweenness: {
      const std::vector<double> bc = betweenness_centrality(g);
      std::vector<bool> is_rumor(g.num_nodes(), false);
      for (NodeId r : setup.rumors) is_rumor[r] = true;
      std::vector<NodeId> order;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (!is_rumor[v]) order.push_back(v);
      }
      std::stable_sort(order.begin(), order.end(),
                       [&bc](NodeId a, NodeId b) { return bc[a] > bc[b]; });
      if (order.size() > budget) order.resize(budget);
      return order;
    }
    case SelectorKind::kDegreeDiscount:
      return degree_discount(g, budget, 0.05, setup.rumors);
    case SelectorKind::kScbg: {
      const ScbgResult r =
          scbg_from_bridges(g, setup.rumors, setup.bridges, {});
      return r.protectors;
    }
    case SelectorKind::kGreedy: {
      GreedyConfig gc = cfg.greedy;
      if (gc.max_protectors == 0) gc.max_protectors = budget;
      const GreedyResult r =
          greedy_lcrbp_from_bridges(g, setup.rumors, setup.bridges, gc, pool);
      return r.protectors;
    }
  }
  throw Error("unknown selector kind");
}

HopSeries evaluate_protectors(const ExperimentSetup& setup,
                              std::span<const NodeId> protectors,
                              const MonteCarloConfig& mc, ThreadPool* pool) {
  LCRB_REQUIRE(setup.graph != nullptr, "setup not prepared");
  SeedSets seeds;
  seeds.rumors = setup.rumors;
  seeds.protectors.assign(protectors.begin(), protectors.end());
  return monte_carlo_series(*setup.graph, seeds, mc,
                            setup.bridges.bridge_ends, pool);
}

}  // namespace lcrb
