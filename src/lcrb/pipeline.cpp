#include "lcrb/pipeline.h"

#include <algorithm>

#include "graph/centrality.h"
#include "lcrb/cldag.h"
#include "lcrb/heuristics.h"
#include "util/error.h"
#include "util/rng.h"

namespace lcrb {

template <GraphView G>
ExperimentSetup prepare_experiment(const G& g, const Partition& p,
                                   CommunityId rumor_community,
                                   std::size_t num_rumors,
                                   std::uint64_t seed) {
  LCRB_REQUIRE(p.num_nodes() == g.num_nodes(),
               "partition does not cover the graph");
  LCRB_REQUIRE(rumor_community < p.num_communities(),
               "rumor community out of range");
  const std::vector<NodeId>& members = p.members(rumor_community);
  LCRB_REQUIRE(num_rumors >= 1, "need at least one rumor originator");
  LCRB_REQUIRE(num_rumors <= members.size(),
               "more rumor originators than community members");

  ExperimentSetup setup;
  setup.graph = g;
  setup.partition = &p;
  setup.rumor_community = rumor_community;

  // Partial Fisher-Yates over a copy of the member list.
  std::vector<NodeId> pool = members;
  Rng rng(seed);
  for (std::size_t i = 0; i < num_rumors; ++i) {
    const std::size_t j = i + rng.next_below(pool.size() - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(num_rumors);
  std::sort(pool.begin(), pool.end());
  setup.rumors = std::move(pool);

  setup.bridges = find_bridge_ends(g, p, rumor_community, setup.rumors);
  return setup;
}

template <GraphView G>
ExperimentSetup prepare_experiment_with_rumors(const G& g,
                                               const Partition& p,
                                               std::vector<NodeId> rumors) {
  LCRB_REQUIRE(p.num_nodes() == g.num_nodes(),
               "partition does not cover the graph");
  LCRB_REQUIRE(!rumors.empty(), "need at least one rumor originator");
  std::sort(rumors.begin(), rumors.end());
  rumors.erase(std::unique(rumors.begin(), rumors.end()), rumors.end());
  for (NodeId r : rumors) {
    LCRB_REQUIRE(r < g.num_nodes(), "rumor originator out of range");
  }
  const CommunityId c = p.community_of(rumors.front());
  for (NodeId r : rumors) {
    LCRB_REQUIRE(p.community_of(r) == c,
                 "rumor originators must share one community");
  }
  ExperimentSetup setup;
  setup.graph = g;
  setup.partition = &p;
  setup.rumor_community = c;
  setup.rumors = std::move(rumors);
  setup.bridges = find_bridge_ends(g, p, c, setup.rumors);
  return setup;
}

ExperimentSetup prepare_experiment(GraphRef g, const Partition& p,
                                   CommunityId rumor_community,
                                   std::size_t num_rumors,
                                   std::uint64_t seed) {
  return g.visit([&](const auto& gr) {
    return prepare_experiment(gr, p, rumor_community, num_rumors, seed);
  });
}

ExperimentSetup prepare_experiment_with_rumors(GraphRef g, const Partition& p,
                                               std::vector<NodeId> rumors) {
  return g.visit([&](const auto& gr) {
    return prepare_experiment_with_rumors(gr, p, std::move(rumors));
  });
}

std::vector<NodeId> select_protectors(const ExperimentSetup& setup,
                                      const LcrbOptions& opts,
                                      ThreadPool* pool) {
  LCRB_REQUIRE(setup.graph.valid(), "setup not prepared");
  opts.validate();
  const std::size_t budget = opts.resolved_budget(setup.rumors.size());
  Rng rng(opts.selector_seed);

  // One backend dispatch per query; the selectors below are all templates
  // over the concrete graph type.
  return setup.graph.visit([&](const auto& g) -> std::vector<NodeId> {
  switch (opts.selector) {
    case SelectorKind::kNoBlocking:
      return {};
    case SelectorKind::kMaxDegree:
      return maxdegree_protectors(g, setup.rumors, budget);
    case SelectorKind::kProximity:
      return proximity_protectors(g, setup.rumors, budget, rng);
    case SelectorKind::kRandom:
      return random_protectors(g, setup.rumors, budget, rng);
    case SelectorKind::kPageRank:
      return pagerank_protectors(g, setup.rumors, budget);
    case SelectorKind::kGvs: {
      GvsConfig gc = opts.gvs_config();
      gc.budget = budget;
      return gvs_protectors(g, setup.rumors, gc, pool).protectors;
    }
    case SelectorKind::kBetweenness: {
      const std::vector<double> bc = betweenness_centrality(g);
      std::vector<bool> is_rumor(g.num_nodes(), false);
      for (NodeId r : setup.rumors) is_rumor[r] = true;
      std::vector<NodeId> order;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (!is_rumor[v]) order.push_back(v);
      }
      std::stable_sort(order.begin(), order.end(),
                       [&bc](NodeId a, NodeId b) { return bc[a] > bc[b]; });
      if (order.size() > budget) order.resize(budget);
      return order;
    }
    case SelectorKind::kDegreeDiscount:
      return degree_discount(g, budget, 0.05, setup.rumors);
    case SelectorKind::kScbg: {
      const ScbgResult r =
          scbg_from_bridges(g, setup.rumors, setup.bridges, {});
      return r.protectors;
    }
    case SelectorKind::kCldag: {
      const CldagResult r =
          cldag_protectors(g, setup.rumors, setup.bridges.bridge_ends, budget,
                           opts.cldag_theta);
      return r.protectors;
    }
    case SelectorKind::kGreedy: {
      if (opts.multi_mode != MultiCascadeMode::kOff) {
        return select_protector_groups(setup, opts, pool).deployed;
      }
      GreedyConfig gc = opts.greedy_config();
      gc.max_protectors = budget;
      const GreedyResult r =
          greedy_lcrbp_from_bridges(g, setup.rumors, setup.bridges, gc, pool);
      return r.protectors;
    }
  }
  throw Error("unknown selector kind");
  });
}

MultiGreedyResult select_protector_groups(const ExperimentSetup& setup,
                                          const LcrbOptions& opts,
                                          ThreadPool* pool) {
  LCRB_REQUIRE(setup.graph.valid(), "setup not prepared");
  opts.validate();
  LCRB_REQUIRE(opts.multi_mode != MultiCascadeMode::kOff,
               "select_protector_groups requires multi_mode");
  return setup.graph.visit([&](const auto& g) {
    return greedy_multi_from_bridges(g, setup.rumors, setup.bridges,
                                     opts.greedy_config(),
                                     opts.protector_budgets, opts.multi_mode,
                                     pool);
  });
}

std::vector<NodeId> select_protectors(SelectorKind kind,
                                      const ExperimentSetup& setup,
                                      const SelectorConfig& cfg,
                                      ThreadPool* pool) {
  // Legacy shim: translate the nested structs into the flat aggregate,
  // preserving the historical lenient budget handling (a nonzero budget is
  // simply dropped for the self-sizing selectors instead of rejected).
  LcrbOptions o;
  o.selector = kind;
  if (kind != SelectorKind::kScbg && kind != SelectorKind::kNoBlocking) {
    o.budget = cfg.budget;
  }
  o.selector_seed = cfg.seed;
  o.alpha = cfg.greedy.alpha;
  o.candidates = cfg.greedy.candidates;
  o.max_candidates = cfg.greedy.max_candidates;
  o.use_celf = cfg.greedy.use_celf;
  o.sigma_mode = cfg.greedy.sigma_mode;
  o.model = cfg.greedy.sigma.model;
  o.sigma_samples = cfg.greedy.sigma.samples;
  o.sigma_seed = cfg.greedy.sigma.seed;
  o.max_hops = cfg.greedy.sigma.max_hops;
  o.ic_edge_prob = cfg.greedy.sigma.ic_edge_prob;
  o.use_realization_cache = cfg.greedy.sigma.use_realization_cache;
  o.max_cache_bytes = cfg.greedy.sigma.max_cache_bytes;
  o.ris_epsilon = cfg.greedy.ris.epsilon;
  o.ris_delta = cfg.greedy.ris.delta;
  o.ris_initial_sets = cfg.greedy.ris.initial_sets;
  o.ris_max_sets = cfg.greedy.ris.max_sets;
  o.ris_estimator_sets = cfg.greedy.ris.estimator_sets;
  o.gvs_samples = cfg.gvs.samples;
  o.gvs_max_candidates = cfg.gvs.max_candidates;

  if (kind == SelectorKind::kGreedy && cfg.greedy.max_protectors != 0) {
    // The old API let max_protectors override the selector budget.
    o.budget = cfg.greedy.max_protectors;
  }
  if (kind == SelectorKind::kGvs) {
    // Historical behavior: GvsConfig::seed drove GVS sampling (not the
    // sigma seed) and the selector budget won over GvsConfig::budget.
    const std::size_t budget = o.resolved_budget(setup.rumors.size());
    GvsConfig gc = cfg.gvs;
    gc.budget = budget;
    LCRB_REQUIRE(setup.graph.valid(), "setup not prepared");
    return setup.graph.visit([&](const auto& g) {
      return gvs_protectors(g, setup.rumors, gc, pool).protectors;
    });
  }
  return select_protectors(setup, o, pool);
}

HopSeries evaluate_protectors(const ExperimentSetup& setup,
                              std::span<const NodeId> protectors,
                              const MonteCarloConfig& mc, ThreadPool* pool) {
  LCRB_REQUIRE(setup.graph.valid(), "setup not prepared");
  SeedSets seeds;
  seeds.rumors = setup.rumors;
  seeds.protectors.assign(protectors.begin(), protectors.end());
  return setup.graph.visit([&](const auto& g) {
    return monte_carlo_series(g, seeds, mc, setup.bridges.bridge_ends, pool);
  });
}

HopSeries evaluate_protector_groups(
    const ExperimentSetup& setup,
    std::span<const std::vector<NodeId>> rumor_groups,
    std::span<const std::vector<NodeId>> protector_groups,
    CascadePriority priority, const MonteCarloConfig& mc, ThreadPool* pool) {
  LCRB_REQUIRE(setup.graph.valid(), "setup not prepared");
  const SeedSets seeds = make_seed_sets(rumor_groups, protector_groups,
                                        priority);
  LCRB_REQUIRE(seeds.rumor_role_union() == setup.rumors,
               "rumor groups must union to the setup's rumor set");
  return setup.graph.visit([&](const auto& g) {
    return monte_carlo_series(g, seeds, mc, setup.bridges.bridge_ends, pool);
  });
}

#define LCRB_INSTANTIATE_PIPELINE(G)                                          \
  template ExperimentSetup prepare_experiment<G>(                             \
      const G&, const Partition&, CommunityId, std::size_t, std::uint64_t);   \
  template ExperimentSetup prepare_experiment_with_rumors<G>(                 \
      const G&, const Partition&, std::vector<NodeId>);

LCRB_INSTANTIATE_PIPELINE(DiGraph)
LCRB_INSTANTIATE_PIPELINE(EfGraph)

#undef LCRB_INSTANTIATE_PIPELINE

}  // namespace lcrb
