// End-to-end experiment pipeline: graph -> communities -> rumor seeds ->
// bridge ends -> protector selection -> diffusion evaluation. Shared by the
// examples and every bench binary.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "community/partition.h"
#include "diffusion/montecarlo.h"
#include "graph/graph.h"
#include "lcrb/bridge.h"
#include "lcrb/greedy.h"
#include "lcrb/gvs.h"
#include "lcrb/scbg.h"
#include "util/threadpool.h"
#include "util/types.h"

namespace lcrb {

/// Everything fixed before protector selection.
struct ExperimentSetup {
  const DiGraph* graph = nullptr;
  const Partition* partition = nullptr;
  CommunityId rumor_community = kInvalidCommunity;
  std::vector<NodeId> rumors;
  BridgeEndResult bridges;
};

/// Samples `num_rumors` rumor originators uniformly from the community and
/// computes the bridge ends. Deterministic in `seed`.
ExperimentSetup prepare_experiment(const DiGraph& g, const Partition& p,
                                   CommunityId rumor_community,
                                   std::size_t num_rumors, std::uint64_t seed);

/// Protector-selection strategies compared in the paper's evaluation.
enum class SelectorKind : std::uint8_t {
  kGreedy,      ///< LCRB-P Monte-Carlo greedy (Algorithm 1)
  kScbg,        ///< LCRB-D set-cover greedy (Algorithm 3)
  kMaxDegree,
  kProximity,
  kRandom,
  kPageRank,
  kGvs,         ///< Greedy Viral Stopper (related work [26]): minimize total infections
  kBetweenness, ///< top betweenness-centrality nodes (extension baseline)
  kDegreeDiscount, ///< DegreeDiscount (Chen et al. KDD'09) IM heuristic
  kNoBlocking,  ///< empty protector set (the paper's reference line)
};

std::string to_string(SelectorKind kind);

struct SelectorConfig {
  std::size_t budget = 0;       ///< |S_P| for budgeted heuristics (0: |rumors|)
  std::uint64_t seed = 99;      ///< randomized selectors (Proximity/Random)
  GreedyConfig greedy;          ///< kGreedy parameters
  GvsConfig gvs;                ///< kGvs parameters (budget overridden)
};

/// Runs one selector. For kScbg the budget is ignored (SCBG sizes itself);
/// for kGreedy the budget caps max_protectors.
std::vector<NodeId> select_protectors(SelectorKind kind,
                                      const ExperimentSetup& setup,
                                      const SelectorConfig& cfg,
                                      ThreadPool* pool = nullptr);

/// Evaluates a protector set: Monte-Carlo hop series of infected counts plus
/// the saved fraction of bridge ends (the paper's Figs. 4-9 measurement).
HopSeries evaluate_protectors(const ExperimentSetup& setup,
                              std::span<const NodeId> protectors,
                              const MonteCarloConfig& mc,
                              ThreadPool* pool = nullptr);

}  // namespace lcrb
