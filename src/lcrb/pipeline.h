// End-to-end experiment pipeline: graph -> communities -> rumor seeds ->
// bridge ends -> protector selection -> diffusion evaluation. Shared by the
// examples, every bench binary, and the src/service/ query engine.
//
// The selection entry point is select_protectors(setup, LcrbOptions) — one
// validated aggregate instead of the legacy SelectorConfig nest (kept below
// as a deprecated thin shim for one release).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "community/partition.h"
#include "diffusion/montecarlo.h"
#include "graph/backend.h"
#include "lcrb/bridge.h"
#include "lcrb/greedy.h"
#include "lcrb/gvs.h"
#include "lcrb/options.h"
#include "lcrb/scbg.h"
#include "util/threadpool.h"
#include "util/types.h"

namespace lcrb {

/// Everything fixed before protector selection. `graph` references either
/// backend (empty until prepared); the referenced graph must outlive the
/// setup.
struct ExperimentSetup {
  GraphRef graph;
  const Partition* partition = nullptr;
  CommunityId rumor_community = kInvalidCommunity;
  std::vector<NodeId> rumors;
  BridgeEndResult bridges;
};

/// Samples `num_rumors` rumor originators uniformly from the community and
/// computes the bridge ends. Deterministic in `seed`.
template <GraphView G>
ExperimentSetup prepare_experiment(const G& g, const Partition& p,
                                   CommunityId rumor_community,
                                   std::size_t num_rumors, std::uint64_t seed);

/// Variant with explicit rumor originators (they must share one community);
/// used by the CLI's --rumor-ids and the query service's rumor_ids field.
template <GraphView G>
ExperimentSetup prepare_experiment_with_rumors(const G& g,
                                               const Partition& p,
                                               std::vector<NodeId> rumors);

/// Runtime-dispatch overloads for GraphRef holders (the service layer).
/// GraphRef does not satisfy GraphView, so these never collide with the
/// templates above; concrete graphs still bind the template directly.
ExperimentSetup prepare_experiment(GraphRef g, const Partition& p,
                                   CommunityId rumor_community,
                                   std::size_t num_rumors, std::uint64_t seed);
ExperimentSetup prepare_experiment_with_rumors(GraphRef g, const Partition& p,
                                               std::vector<NodeId> rumors);

/// DEPRECATED entry-point config (use LcrbOptions): the legacy nest of
/// selector knobs. Note the historical budget semantics this carried:
/// budget == 0 meant |rumors| for budgeted selectors, kGvs silently
/// overrode GvsConfig::budget, and kScbg silently ignored the budget.
/// LcrbOptions::validate() now rejects the meaningless combinations.
struct SelectorConfig {
  std::size_t budget = 0;       ///< |S_P| for budgeted heuristics (0: |rumors|)
  std::uint64_t seed = 99;      ///< randomized selectors (Proximity/Random)
  GreedyConfig greedy;          ///< kGreedy parameters
  GvsConfig gvs;                ///< kGvs parameters (budget overridden)
};

/// Runs one selector per the budget rule documented in lcrb/options.h.
/// Validates `opts` (throws lcrb::Error on meaningless combinations). When
/// opts.multi_mode is on, returns the deployed union of the per-campaign
/// groups (use select_protector_groups for the groups themselves).
std::vector<NodeId> select_protectors(const ExperimentSetup& setup,
                                      const LcrbOptions& opts,
                                      ThreadPool* pool = nullptr);

/// Multi-campaign selection (opts.multi_mode must not be kOff): one
/// protector group per entry of opts.protector_budgets, selected against
/// the rumor-role union per MultiCascadeMode.
MultiGreedyResult select_protector_groups(const ExperimentSetup& setup,
                                          const LcrbOptions& opts,
                                          ThreadPool* pool = nullptr);

/// DEPRECATED shim over the LcrbOptions overload, kept for one release.
/// For kScbg the budget is ignored (SCBG sizes itself); for kGreedy the
/// budget caps max_protectors.
std::vector<NodeId> select_protectors(SelectorKind kind,
                                      const ExperimentSetup& setup,
                                      const SelectorConfig& cfg,
                                      ThreadPool* pool = nullptr);

/// Evaluates a protector set: Monte-Carlo hop series of infected counts plus
/// the saved fraction of bridge ends (the paper's Figs. 4-9 measurement).
HopSeries evaluate_protectors(const ExperimentSetup& setup,
                              std::span<const NodeId> protectors,
                              const MonteCarloConfig& mc,
                              ThreadPool* pool = nullptr);

/// K-way evaluation: per-campaign rumor and protector groups become one
/// cascade each (make_seed_sets semantics — same-role collisions keep the
/// first group; `priority` is the simultaneous-arrival policy). The rumor
/// groups must union to setup.rumors.
HopSeries evaluate_protector_groups(
    const ExperimentSetup& setup,
    std::span<const std::vector<NodeId>> rumor_groups,
    std::span<const std::vector<NodeId>> protector_groups,
    CascadePriority priority, const MonteCarloConfig& mc,
    ThreadPool* pool = nullptr);

}  // namespace lcrb
