#include "lcrb/rfst.h"

#include "graph/ef_graph.h"
#include "graph/graph.h"

#include <algorithm>

#include "util/error.h"

namespace lcrb {

std::vector<NodeId> RumorForest::path_to_root(NodeId v) const {
  LCRB_REQUIRE(v < dist.size(), "node out of range");
  std::vector<NodeId> path;
  if (!reaches(v)) return path;
  for (NodeId cur = v; cur != kInvalidNode; cur = parent[cur]) {
    path.push_back(cur);
    LCRB_REQUIRE(path.size() <= dist.size(), "cycle in BFS forest");
  }
  return path;
}

std::size_t RumorForest::size() const {
  return static_cast<std::size_t>(
      std::count_if(dist.begin(), dist.end(),
                    [](std::uint32_t d) { return d != kUnreached; }));
}

template <GraphView G>
RumorForest build_rfst(const G& g, std::span<const NodeId> rumors) {
  LCRB_REQUIRE(!rumors.empty(), "need at least one rumor originator");
  RumorForest f;
  f.roots.assign(rumors.begin(), rumors.end());
  BfsResult bfs = bfs_forward(g, rumors);
  f.dist = std::move(bfs.dist);
  f.parent = std::move(bfs.parent);
  return f;
}

template RumorForest build_rfst<DiGraph>(const DiGraph&,
                                         std::span<const NodeId>);
template RumorForest build_rfst<EfGraph>(const EfGraph&,
                                         std::span<const NodeId>);

}  // namespace lcrb
