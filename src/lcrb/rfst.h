// Rumor Forward Search Trees (RFST): the BFS forest rooted at the rumor
// originators (paper Algorithm 1/3 step 3, Fig. 3a). The forest realizes the
// "who gets infected when" structure; bridge ends are among its nodes.
#pragma once

#include <span>
#include <vector>

#include "graph/graph_view.h"
#include "graph/traversal.h"
#include "util/types.h"

namespace lcrb {

struct RumorForest {
  std::vector<NodeId> roots;            ///< the rumor originators
  std::vector<std::uint32_t> dist;      ///< hop count from nearest root
  std::vector<NodeId> parent;           ///< BFS-tree parent (kInvalidNode at roots)

  bool reaches(NodeId v) const { return dist[v] != kUnreached; }

  /// Path from v up to its root (inclusive), v first. Empty if unreached.
  std::vector<NodeId> path_to_root(NodeId v) const;

  /// Number of nodes in the forest (reached nodes).
  std::size_t size() const;
};

/// Builds the forest with a multi-source BFS from `rumors`.
template <GraphView G>
RumorForest build_rfst(const G& g, std::span<const NodeId> rumors);

}  // namespace lcrb
