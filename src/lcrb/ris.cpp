#include "lcrb/ris.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>
#include <utility>

#include "diffusion/model_traits.h"
#include "lcrb/ris_schedule.h"
#include "util/check.h"
#include "util/error.h"
#include "util/log.h"
#include "util/rng.h"

namespace lcrb {

std::string to_string(SigmaMode m) {
  switch (m) {
    case SigmaMode::kMonteCarlo: return "mc";
    case SigmaMode::kRis: return "ris";
  }
  return "unknown";
}

std::string to_string(RisStopReason r) {
  switch (r) {
    case RisStopReason::kNone: return "none";
    case RisStopReason::kCertified: return "certified";
    case RisStopReason::kNegligible: return "negligible";
    case RisStopReason::kMaxSets: return "max_sets";
    case RisStopReason::kPoolBytes: return "pool_bytes";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// RrPool

double RrPool::coverage_fraction(std::span<const NodeId> a, bool count_null,
                                 std::size_t limit) const {
  LCRB_REQUIRE(limit <= num_sets(), "coverage limit exceeds pool size");
  const std::size_t n = limit == 0 ? num_sets() : limit;
  if (n == 0) return count_null ? 1.0 : 0.0;
  std::vector<char> hit(n, 0);
  std::size_t covered = 0;
  for (NodeId v : a) {
    for (std::uint32_t s : sets_containing(v)) {
      if (s >= n) break;  // posting lists ascend
      if (!hit[s]) {
        hit[s] = 1;
        ++covered;
      }
    }
  }
  const std::size_t nulls =
      limit == 0 ? num_null_ : num_null_prefix(n);
  const std::size_t numer = covered + (count_null ? nulls : 0);
  return static_cast<double>(numer) / static_cast<double>(n);
}

std::size_t RrPool::num_null_prefix(std::size_t limit) const {
  LCRB_REQUIRE(limit <= num_sets(), "prefix limit exceeds pool size");
  if (limit == num_sets()) return num_null_;
  std::size_t nulls = 0;
  for (std::size_t i = 0; i < limit; ++i) {
    if (set_off_[i + 1] == set_off_[i]) ++nulls;
  }
  return nulls;
}

std::size_t RrPool::num_covered_nodes_prefix(std::size_t limit) const {
  LCRB_REQUIRE(limit <= num_sets(), "prefix limit exceeds pool size");
  if (limit == num_sets()) return num_covered_nodes_;
  std::size_t covered = 0;
  const std::size_t num_nodes = inv_off_.empty() ? 0 : inv_off_.size() - 1;
  for (std::size_t v = 0; v < num_nodes; ++v) {
    const auto postings = sets_containing(static_cast<NodeId>(v));
    if (!postings.empty() && postings.front() < limit) ++covered;
  }
  return covered;
}

std::size_t RrPool::memory_bytes() const {
  return sizeof(*this) + set_off_.capacity() * sizeof(std::uint32_t) +
         nodes_.capacity() * sizeof(NodeId) +
         inv_off_.capacity() * sizeof(std::uint32_t) +
         inv_sets_.capacity() * sizeof(std::uint32_t);
}

std::size_t RrPool::content_bytes_for(std::size_t sets, std::size_t entries,
                                      std::size_t num_graph_nodes) {
  // Mirrors the post-append layout: set_off (sets + 1), nodes (entries),
  // inv_off (num_graph_nodes + 1), inv_sets (entries). Size-based, so the
  // same content always costs the same bytes whatever the growth history.
  return sizeof(RrPool) + (sets + 1) * sizeof(std::uint32_t) +
         entries * sizeof(NodeId) +
         (num_graph_nodes + 1) * sizeof(std::uint32_t) +
         entries * sizeof(std::uint32_t);
}

std::size_t RrPool::content_bytes() const {
  const std::size_t num_nodes = inv_off_.empty() ? 0 : inv_off_.size() - 1;
  return content_bytes_for(num_sets(), nodes_.size(), num_nodes);
}

void RrPool::set_byte_budget(std::size_t bytes) {
  byte_budget_ = bytes;
  byte_capped_ = false;
  if (bytes == 0 || inv_off_.empty()) return;
  const std::size_t num_nodes = inv_off_.size() - 1;
  std::size_t sets = num_sets();
  std::size_t entries = nodes_.size();
  while (sets > 1 &&
         content_bytes_for(sets, entries, num_nodes) > bytes) {
    --sets;
    entries = set_off_[sets];
    byte_capped_ = true;
  }
  if (!byte_capped_) return;
  for (std::size_t i = sets; i < num_sets(); ++i) {
    if (set_off_[i + 1] == set_off_[i]) --num_null_;
  }
  set_off_.resize(sets + 1);
  nodes_.resize(entries);
  // Give the memory back: retirement exists to shrink the registry's
  // capacity-based accounting, not just the logical size.
  set_off_.shrink_to_fit();
  nodes_.shrink_to_fit();
  rebuild_inverted_index(static_cast<NodeId>(num_nodes));
  inv_sets_.shrink_to_fit();
  LCRB_INVARIANT(validate());
}

void RrPool::rebuild_inverted_index(NodeId num_graph_nodes) {
  // Counting sort; iterating sets in id order keeps each node's posting
  // list ascending.
  inv_off_.assign(static_cast<std::size_t>(num_graph_nodes) + 1, 0);
  for (NodeId v : nodes_) ++inv_off_[static_cast<std::size_t>(v) + 1];
  for (std::size_t i = 1; i < inv_off_.size(); ++i) {
    inv_off_[i] += inv_off_[i - 1];
  }
  inv_sets_.assign(nodes_.size(), 0);
  std::vector<std::uint32_t> cursor(inv_off_.begin(), inv_off_.end() - 1);
  for (std::size_t s = 0; s + 1 < set_off_.size(); ++s) {
    for (std::uint32_t i = set_off_[s]; i < set_off_[s + 1]; ++i) {
      inv_sets_[cursor[nodes_[i]]++] = static_cast<std::uint32_t>(s);
    }
  }
  num_covered_nodes_ = 0;
  for (NodeId v = 0; v < num_graph_nodes; ++v) {
    if (inv_off_[v + 1] > inv_off_[v]) ++num_covered_nodes_;
  }
}

void RrPool::append_shards(std::vector<RrShard>&& shards,
                           NodeId num_graph_nodes) {
  std::size_t add_sets = 0;
  std::size_t add_entries = 0;
  for (const RrShard& sh : shards) {
    add_sets += sh.sizes.size();
    add_entries += sh.nodes.size();
    nodes_visited_ += sh.visits;  // work was spent even if a set is dropped
  }
  nodes_.reserve(nodes_.size() + add_entries);
  set_off_.reserve(set_off_.size() + add_sets);
  for (const RrShard& sh : shards) {
    std::size_t pos = 0;
    for (std::uint32_t size : sh.sizes) {
      if (byte_budget_ != 0 &&
          content_bytes_for(num_sets() + 1, nodes_.size() + size,
                            num_graph_nodes) > byte_budget_ &&
          num_sets() >= 1) {
        byte_capped_ = true;
        break;
      }
      if (size == 0) ++num_null_;
      nodes_.insert(nodes_.end(), sh.nodes.begin() + pos,
                    sh.nodes.begin() + pos + size);
      set_off_.push_back(static_cast<std::uint32_t>(nodes_.size()));
      pos += size;
    }
    if (byte_capped_) break;
  }
  rebuild_inverted_index(num_graph_nodes);
  LCRB_INVARIANT(validate());
}

void RrPool::validate() const {
  LCRB_REQUIRE(!set_off_.empty() && set_off_.front() == 0,
               "set offsets must start at 0");
  LCRB_REQUIRE(set_off_.back() == nodes_.size(),
               "set offsets must end at the entry count");
  std::size_t nulls = 0;
  for (std::size_t s = 0; s + 1 < set_off_.size(); ++s) {
    LCRB_REQUIRE(set_off_[s] <= set_off_[s + 1], "set offsets must be monotone");
    if (set_off_[s] == set_off_[s + 1]) ++nulls;
    for (std::uint32_t i = set_off_[s] + 1; i < set_off_[s + 1]; ++i) {
      LCRB_REQUIRE(nodes_[i - 1] < nodes_[i],
                   "RR set nodes must be strictly ascending");
    }
  }
  LCRB_REQUIRE(nulls == num_null_, "null-set counter out of sync");
  if (inv_off_.empty()) {
    LCRB_REQUIRE(nodes_.empty() && inv_sets_.empty() && num_covered_nodes_ == 0,
                 "pool with entries must carry an inverted index");
    return;
  }
  const auto n = static_cast<NodeId>(inv_off_.size() - 1);
  for (NodeId v : nodes_) {
    LCRB_REQUIRE(v < n, "RR set node out of range");
  }
  LCRB_REQUIRE(inv_off_.front() == 0 && inv_off_.back() == inv_sets_.size(),
               "inverted-index offsets must span the posting array");
  LCRB_REQUIRE(inv_sets_.size() == nodes_.size(),
               "inverted index must hold exactly one posting per entry");
  std::size_t covered = 0;
  for (NodeId v = 0; v < n; ++v) {
    LCRB_REQUIRE(inv_off_[v] <= inv_off_[v + 1],
                 "inverted-index offsets must be monotone");
    if (inv_off_[v + 1] > inv_off_[v]) ++covered;
    for (std::uint32_t i = inv_off_[v]; i < inv_off_[v + 1]; ++i) {
      LCRB_REQUIRE(i == inv_off_[v] || inv_sets_[i - 1] < inv_sets_[i],
                   "posting lists must be strictly ascending");
      const std::uint32_t s = inv_sets_[i];
      LCRB_REQUIRE(s + 1 < set_off_.size(), "posting names a nonexistent set");
      const auto row = set_nodes(s);
      LCRB_REQUIRE(std::binary_search(row.begin(), row.end(), v),
                   "posting names a set that does not contain the node");
    }
  }
  LCRB_REQUIRE(covered == num_covered_nodes_,
               "covered-node counter out of sync");
  if (byte_budget_ != 0) {
    LCRB_REQUIRE(num_sets() <= 1 || content_bytes() <= byte_budget_,
                 "pool content exceeds its byte budget");
  }
}

// ---------------------------------------------------------------------------
// RrSampler

/// RAII lease of a per-draw ReverseScratch (diffusion/kernel.h) from the
/// sampler's free list; concurrent draws each hold their own buffer.
struct RrSampler::ScratchLease {
  explicit ScratchLease(const RrSampler& owner) : owner_(owner) {
    {
      std::lock_guard<std::mutex> lock(owner_.scratch_mu_);
      if (!owner_.scratch_free_.empty()) {
        scratch = std::move(owner_.scratch_free_.back());
        owner_.scratch_free_.pop_back();
      }
    }
    if (scratch == nullptr) {
      scratch = std::make_unique<ReverseScratch>(owner_.g_.num_nodes(),
                                                 owner_.cfg_.max_hops);
    }
  }
  ~ScratchLease() {
    std::lock_guard<std::mutex> lock(owner_.scratch_mu_);
    owner_.scratch_free_.push_back(std::move(scratch));
  }
  const RrSampler& owner_;
  std::unique_ptr<ReverseScratch> scratch;
};

RrSampler::RrSampler(GraphRef g, std::vector<NodeId> rumors,
                     std::vector<NodeId> bridge_ends, const RisConfig& cfg)
    : g_(g),
      cfg_(cfg),
      rumors_(std::move(rumors)),
      bridge_ends_(std::move(bridge_ends)) {
  LCRB_REQUIRE(dispatch_model(cfg_.model,
                              [](auto t) {
                                return decltype(t)::kSupportsReverse;
                              }),
               "RIS does not support competitive LT: it is not per-sample "
               "monotone, so RR-set coverage has no save semantics");
  is_rumor_.assign(g_.num_nodes(), false);
  for (NodeId v : rumors_) {
    LCRB_REQUIRE(v < g_.num_nodes(), "rumor seed out of range");
    is_rumor_[v] = true;
  }
  for (NodeId v : bridge_ends_) {
    LCRB_REQUIRE(v < g_.num_nodes(), "bridge end out of range");
  }
  const RealizationParams params{cfg_.max_hops, cfg_.ic_edge_prob};
  reverse_shared_ = dispatch_model(cfg_.model, [&](auto t) -> ReverseShared {
    using T = decltype(t);
    if constexpr (T::kSupportsReverse) {
      return g_.visit([&](const auto& gr) {
        return T::build_reverse_shared(gr, rumors_, params);
      });
    } else {
      return {};
    }
  });
}

RrSampler::~RrSampler() = default;

RrSampler::Draw RrSampler::draw(std::uint64_t stream, std::size_t index) const {
  // One forked stream per (stream, index) pair; streams are interleaved so
  // the three pools never share a realization.
  Rng r = Rng(cfg_.seed).fork(static_cast<std::uint64_t>(index) * 3 + stream);
  Draw d;
  d.realization_seed = r.next();
  d.root_idx = bridge_ends_.empty()
                   ? 0
                   : static_cast<std::size_t>(r.next_below(bridge_ends_.size()));
  return d;
}

std::uint32_t RrSampler::rr_set_into(std::size_t root_idx,
                                     std::uint64_t realization_seed,
                                     ReverseScratch& sc,
                                     std::vector<NodeId>& nodes,
                                     std::uint64_t& visits) const {
  LCRB_REQUIRE(root_idx < bridge_ends_.size(), "RR root index out of range");
  const NodeId root = bridge_ends_[root_idx];
  const RealizationParams params{cfg_.max_hops, cfg_.ic_edge_prob};
  const std::size_t start = nodes.size();
  sc.bump_epoch();
  dispatch_model(cfg_.model, [&](auto t) {
    using T = decltype(t);
    if constexpr (T::kSupportsReverse) {
      g_.visit([&](const auto& gr) {
        T::reverse_set(gr, is_rumor_, rumors_, reverse_shared_, root,
                       realization_seed, params, sc, nodes, visits);
      });
    } else {
      throw Error("RIS does not support " + std::string(T::kName));
    }
  });
  std::sort(nodes.begin() + static_cast<std::ptrdiff_t>(start), nodes.end());
  return static_cast<std::uint32_t>(nodes.size() - start);
}

std::vector<NodeId> RrSampler::rr_set(std::size_t root_idx,
                                      std::uint64_t realization_seed,
                                      std::uint64_t* visits) const {
  std::uint64_t local = 0;
  std::vector<NodeId> out;
  {
    ScratchLease lease(*this);
    rr_set_into(root_idx, realization_seed, *lease.scratch, out, local);
  }
  if (visits != nullptr) *visits += local;
  return out;
}

void RrSampler::extend(RrPool& pool, std::uint64_t stream,
                       std::size_t target_sets, ThreadPool* tp) const {
  const std::size_t from = pool.num_sets();
  if (target_sets <= from) return;
  if (pool.byte_budget() != 0 && pool.byte_capped()) return;  // already full
  const std::size_t count = target_sets - from;

  // Contiguous index shards: shard s owns draws [from + s*chunk,
  // from + min((s+1)*chunk, count)). The shard count depends only on the
  // pool's thread count (a few shards per thread evens out skewed reverse
  // searches); merging in shard order makes the result independent of it.
  const std::size_t threads = tp != nullptr ? tp->thread_count() : 0;
  const std::size_t num_shards =
      (threads > 1 && count > 1) ? std::min(count, threads * 4) : 1;
  const std::size_t chunk = (count + num_shards - 1) / num_shards;

  std::vector<RrShard> shards(num_shards);
  auto fill_shard = [&](std::size_t s) {
    const std::size_t lo = s * chunk;
    const std::size_t hi = std::min(lo + chunk, count);
    if (lo >= hi) return;
    RrShard& sh = shards[s];
    sh.sizes.reserve(hi - lo);
    if (bridge_ends_.empty()) {  // no targets: every set is null
      sh.sizes.assign(hi - lo, 0);
      return;
    }
    ScratchLease lease(*this);
    for (std::size_t i = lo; i < hi; ++i) {
      const Draw d = draw(stream, from + i);
      sh.sizes.push_back(rr_set_into(d.root_idx, d.realization_seed,
                                     *lease.scratch, sh.nodes, sh.visits));
    }
  };
  if (tp != nullptr && num_shards > 1) {
    tp->parallel_for(num_shards, fill_shard);
  } else {
    for (std::size_t s = 0; s < num_shards; ++s) fill_shard(s);
  }
  pool.append_shards(std::move(shards), g_.num_nodes());
}

// ---------------------------------------------------------------------------
// Max-coverage greedy + two-pool stopping rule

namespace {

struct CoverageGreedyOutcome {
  std::vector<NodeId> picks;
  std::vector<std::size_t> gains;  ///< newly covered sets per pick
  std::size_t covered = 0;
  std::uint64_t ops = 0;
};

/// Max-coverage greedy over the first `theta` sets of the pool (its
/// identity-keeping prefix), lowest node id on ties, stopping once
/// (covered + null) / theta reaches alpha or the pick cap is hit.
///
/// CELF-style lazy argmax: cnt[] holds every node's EXACT residual coverage
/// (maintained by decrements when a pick's sets are covered), and the heap
/// holds stale upper bounds of it. A popped entry whose bound is stale is
/// reinserted at the current count; a fresh top is the exact argmax, because
/// counts only decrease and every other heap bound dominates its node's
/// count. The comparator breaks count ties toward the LOWEST node id — the
/// exact pick sequence of the linear scan this replaces, so golden hashes
/// are unchanged. ops counts cnt[] decrements only (the work measure the
/// linear scan reported), so nodes_visited is unchanged too.
CoverageGreedyOutcome coverage_greedy(const RrPool& pool, NodeId num_nodes,
                                      double alpha, std::size_t max_protectors,
                                      std::size_t theta) {
  CoverageGreedyOutcome out;
  if (theta == 0) return out;
  std::vector<std::uint32_t> cnt(num_nodes, 0);
  // (count, node) max-heap: larger count wins, lower id wins ties. Stored
  // flat and re-heapified lazily via push_heap/pop_heap.
  const auto heap_less = [](const std::pair<std::uint32_t, NodeId>& x,
                            const std::pair<std::uint32_t, NodeId>& y) {
    if (x.first != y.first) return x.first < y.first;
    return x.second > y.second;
  };
  std::vector<std::pair<std::uint32_t, NodeId>> heap;
  for (NodeId v = 0; v < num_nodes; ++v) {
    const std::span<const std::uint32_t> postings = pool.sets_containing(v);
    const auto end = std::lower_bound(postings.begin(), postings.end(),
                                      static_cast<std::uint32_t>(theta));
    cnt[v] = static_cast<std::uint32_t>(end - postings.begin());
    if (cnt[v] > 0) heap.emplace_back(cnt[v], v);
  }
  std::make_heap(heap.begin(), heap.end(), heap_less);
  std::vector<char> covered(theta, 0);
  const std::size_t nulls = pool.num_null_prefix(theta);
  const double need = alpha * static_cast<double>(theta) - 1e-9;
  while (static_cast<double>(out.covered + nulls) < need &&
         (max_protectors == 0 || out.picks.size() < max_protectors)) {
    NodeId best = kInvalidNode;
    std::uint32_t best_cnt = 0;
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), heap_less);
      const auto [bound, v] = heap.back();
      heap.pop_back();
      if (cnt[v] == 0) continue;  // fully covered since; drop for good
      if (bound != cnt[v]) {      // stale bound: requeue at the exact count
        heap.emplace_back(cnt[v], v);
        std::push_heap(heap.begin(), heap.end(), heap_less);
        continue;
      }
      best = v;
      best_cnt = bound;
      break;
    }
    if (best == kInvalidNode) break;  // every remaining set is uncoverable
    out.picks.push_back(best);
    out.gains.push_back(best_cnt);
    for (std::uint32_t s : pool.sets_containing(best)) {
      if (s >= theta) break;  // posting lists ascend
      if (covered[s]) continue;
      covered[s] = 1;
      ++out.covered;
      for (NodeId w : pool.set_nodes(s)) {
        --cnt[w];
        ++out.ops;
      }
    }
  }
  return out;
}

/// Satellite guard: sampling hit a cap without certifying the (eps, delta)
/// guarantee. Warn once per process; every affected result carries
/// guarantee_met = false.
void warn_guarantee_not_met(RisStopReason reason, std::size_t theta,
                            double epsilon, double delta) {
  static std::atomic<bool> warned{false};
  if (warned.exchange(true)) return;
  LCRB_LOG_WARN << "ris: sampling stopped at the " << to_string(reason)
                << " cap (theta=" << theta << ") before certifying the (eps="
                << epsilon << ", delta=" << delta
                << ") guarantee; results are flagged guarantee_met=false "
                << "(further occurrences are not logged)";
}

}  // namespace

RisGreedyResult ris_greedy_from_bridges(GraphRef g,
                                        std::span<const NodeId> rumors,
                                        const BridgeEndResult& bridges,
                                        double alpha,
                                        std::size_t max_protectors,
                                        const RisConfig& cfg,
                                        ThreadPool* pool) {
  LCRB_REQUIRE(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
  RisGreedyResult out;
  if (bridges.bridge_ends.empty()) {
    out.achieved_fraction = 1.0;
    out.guarantee_met = true;  // nothing to certify
    return out;
  }
  RisContext ctx(g, {rumors.begin(), rumors.end()}, bridges.bridge_ends, cfg);
  out = ris_greedy_with_context(alpha, max_protectors, cfg, ctx, pool);
  // Private pools: fold their generation work back into the legacy metric
  // (ris_greedy_with_context reports only the greedy ops).
  out.nodes_visited +=
      ctx.selection.nodes_visited() + ctx.validation.nodes_visited();
  return out;
}

RisGreedyResult ris_greedy_with_context(double alpha,
                                        std::size_t max_protectors,
                                        const RisConfig& cfg, RisContext& ctx,
                                        ThreadPool* pool) {
  LCRB_REQUIRE(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
  LCRB_REQUIRE(cfg.epsilon > 0.0 && cfg.delta > 0.0 && cfg.delta < 1.0,
               "epsilon must be positive and delta in (0, 1)");
  const RisConfig& base = ctx.sampler.config();
  LCRB_REQUIRE(cfg.seed == base.seed && cfg.max_hops == base.max_hops &&
                   cfg.model == base.model &&
                   cfg.ic_edge_prob == base.ic_edge_prob &&
                   cfg.max_pool_bytes == base.max_pool_bytes,
               "ris context was built with different draw- or pool-shaping "
               "knobs");

  RisGreedyResult out;
  out.epsilon_used = cfg.epsilon;
  out.delta_used = cfg.delta;
  const std::size_t nb = ctx.sampler.bridge_ends().size();
  if (nb == 0) {
    out.achieved_fraction = 1.0;
    out.guarantee_met = true;  // nothing to certify
    return out;
  }
  const GraphRef g = ctx.sampler.graph();
  const double b = static_cast<double>(nb);
  const double approx = 1.0 - std::exp(-1.0);  // the (1 - 1/e) factor

  // Checkpoint schedule and per-bound failure share: delta split uniformly
  // across checkpoints x 2 pools x 2 bound sides (union bound), the same
  // split the pure-doubling rule used, so the Hoeffding half-width formula
  // is unchanged at equal checkpoint counts.
  const std::vector<std::size_t> schedule =
      ris_stopping_schedule(cfg.initial_sets, cfg.max_sets);
  const double a = ris_bound_exponent(cfg.delta, schedule.size());
  out.delta_per_bound =
      cfg.delta / (4.0 * static_cast<double>(schedule.size()));

  std::uint64_t greedy_ops = 0;
  for (std::size_t k = 0; k < schedule.size(); ++k) {
    std::size_t theta = schedule[k];
    {
      std::unique_lock<std::shared_mutex> grow(ctx.mu);
      if (ctx.selection.num_sets() < theta) {
        ctx.sampler.extend(ctx.selection, 0, theta, pool);
      }
      if (ctx.validation.num_sets() < theta) {
        ctx.sampler.extend(ctx.validation, 1, theta, pool);
      }
    }
    std::shared_lock<std::shared_mutex> read(ctx.mu);
    // A byte-budgeted pool may stall below theta; evaluate on what both
    // pools actually hold and treat the stall as a cap.
    const bool pool_capped =
        std::min(ctx.selection.num_sets(), ctx.validation.num_sets()) < theta;
    if (pool_capped) {
      theta = std::min(ctx.selection.num_sets(), ctx.validation.num_sets());
    }
    if (theta == 0) {
      out.stop_reason = RisStopReason::kPoolBytes;
      warn_guarantee_not_met(out.stop_reason, 0, cfg.epsilon, cfg.delta);
      return out;
    }
    // Evaluate over the first-theta prefix: identical to a cold pool of
    // theta sets because slots are preassigned, even when another query has
    // already grown the shared pools past theta.
    CoverageGreedyOutcome sel =
        coverage_greedy(ctx.selection, g.num_nodes(), alpha, max_protectors,
                        theta);
    greedy_ops += sel.ops;

    const double t = static_cast<double>(theta);
    const double cov1 = static_cast<double>(sel.covered) / t;
    const double cov2 =
        ctx.validation.coverage_fraction(sel.picks, false, theta);
    const double hw = std::sqrt(a / (2.0 * t));
    // Certified bounds: best of Hoeffding and martingale on each side (see
    // ris_schedule.h). The OPT upper bound keeps the historical
    // cov1/approx + hw form alongside the martingale OPT bound.
    const double lb = ris_mean_lower_bound(cov2 * t, theta, a);
    const double ub = std::min(
        {1.0, cov1 / approx + hw,
         ris_mean_upper_bound(cov1 * t, theta, a) / approx});
    const double ub_sel = ris_mean_upper_bound(cov1 * t, theta, a);
    // OPIM-style acceptance, adapted to the alpha-truncated objective: stop
    // when the validated coverage certifies the greedy ratio up to epsilon,
    // when both estimates are within epsilon/4 of their certified bounds
    // (nothing left to learn at this accuracy), or at a cap.
    const bool certified = ub > 0.0 && lb / ub >= approx - cfg.epsilon;
    const bool negligible =
        cov2 - lb <= cfg.epsilon / 4.0 && ub_sel - cov1 <= cfg.epsilon / 4.0;
    const bool capped = pool_capped || k + 1 == schedule.size();
    if (certified || negligible || capped) {
      out.protectors = std::move(sel.picks);
      out.gain_history.reserve(sel.gains.size());
      for (std::size_t gsets : sel.gains) {
        out.gain_history.push_back(static_cast<double>(gsets) * b / t);
      }
      out.achieved_fraction =
          ctx.validation.coverage_fraction(out.protectors, true, theta);
      out.rr_sets = theta;
      out.rounds = k + 1;
      out.sigma_lower = lb * b;
      out.sigma_upper = ub * b;
      out.distinct_candidates = ctx.selection.num_covered_nodes_prefix(theta);
      out.nodes_visited = greedy_ops;
      out.guarantee_met = certified || negligible;
      out.stop_reason = certified     ? RisStopReason::kCertified
                        : negligible  ? RisStopReason::kNegligible
                        : pool_capped ? RisStopReason::kPoolBytes
                                      : RisStopReason::kMaxSets;
      if (!out.guarantee_met) {
        warn_guarantee_not_met(out.stop_reason, theta, cfg.epsilon,
                               cfg.delta);
      }
      return out;
    }
  }
  throw Error("ris: stopping schedule ended without a cap checkpoint");
}

// ---------------------------------------------------------------------------
// RisEstimator

RisEstimator::RisEstimator(GraphRef g, std::vector<NodeId> rumors,
                           std::vector<NodeId> bridge_ends,
                           const RisConfig& cfg, ThreadPool* pool)
    : sampler_(g, std::move(rumors), std::move(bridge_ends), cfg) {
  sampler_.extend(pool_, 2, cfg.estimator_sets, pool);
}

double RisEstimator::sigma(std::span<const NodeId> protectors) const {
  return pool_.coverage_fraction(protectors, false) *
         static_cast<double>(sampler_.bridge_ends().size());
}

double RisEstimator::protected_fraction(
    std::span<const NodeId> protectors) const {
  return pool_.coverage_fraction(protectors, true);
}

}  // namespace lcrb
