// Reverse-reachable (RR) set sampling for sigma — the RIS alternative to
// the forward Monte-Carlo SigmaEstimator (after Tong et al.'s randomized
// rumor blocking and the Borgs et al. / OPIM line of IM samplers).
//
// One RR draw picks a uniformly-random bridge end b and one coupled
// realization (the same stateless randomness simulate() uses: OPOAO pick
// stream, IC/WC live-edge coins; DOAM is deterministic), then collects the
// set of nodes that, seeded alone as a protector at step 0, save b in that
// realization. The per-model reverse searches live in the model traits
// (src/diffusion/model_traits.h, capability kSupportsReverse with
// build_reverse_shared + reverse_set); the sampler here owns the generic
// machinery — root/realization draws, scratch leasing, pool growth:
//
//  * DOAM   — reverse BFS truncated at dist_R(b): v saves b iff
//             dist(v, b) <= dist_R(b) (the §6.4 distance rule). Exact.
//  * IC/WC  — reverse BFS over the TRANSPOSED live-edge subgraph; the rumor
//             arrival d_R(b) is discovered by the same search (first level
//             containing a rumor seed) and truncates it. Exact by the
//             live-subgraph distance rule.
//  * OPOAO  — reverse temporal search over the pick stream: v is collected
//             iff a pick path v -> w1 -> ... -> b exists with strictly
//             increasing steps t_i where every intermediate claim lands no
//             later than that node's rumor-only baseline time (P wins the
//             tie). Sound — every member really saves b — but a protector
//             can also save b by starving the rumor upstream without ever
//             reaching b, so OPOAO RR coverage is a LOWER bound on sigma
//             (per-sample: covered(A) implies saved(A) by Lemma 4
//             monotonicity). docs/algorithms.md discusses the gap.
//  * LT     — rejected at construction (kSupportsReverse = false): not
//             per-sample monotone, so coverage has no save semantics.
//
// sigma(A) ~= |B| * (covered RR sets / total RR sets): exact in expectation
// for DOAM/IC/WC, conservative for OPOAO. Coverage of a fixed pool is
// monotone and submodular, so a CELF-style lazy-heap max-coverage greedy
// over the pool keeps the paper's (1 - 1/e) machinery, and an OPIM-style
// two-pool stopping rule — Hoeffding and martingale concentration bounds
// (arXiv:1701.02368) evaluated at every checkpoint of a sub-doubling
// schedule, whichever is tighter — makes the accuracy knobs (epsilon,
// delta) explicit instead of a fixed sample count (see ris_schedule.h).
//
// Generation is deterministic in (config seed, stream, index): every RR set
// lands in a preassigned slot, shards are merged in index order, and
// byte-budget truncation scans in index order, so results are bit-identical
// across thread counts (PR 1's fixed-order reduction convention).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "diffusion/kernel.h"
#include "diffusion/montecarlo.h"
#include "graph/backend.h"
#include "lcrb/bridge.h"
#include "util/threadpool.h"
#include "util/types.h"

namespace lcrb {

/// Which sigma machinery drives the LCRB-P greedy.
enum class SigmaMode : std::uint8_t {
  kMonteCarlo,  ///< forward coupled simulation (SigmaEstimator)
  kRis,         ///< RR-set max coverage (this header)
};

std::string to_string(SigmaMode m);

struct RisConfig {
  /// Relative accuracy target of the stopping rule: sampling stops once the
  /// selected set's certified coverage ratio reaches (1 - 1/e - epsilon), or
  /// both pool estimates are within epsilon/4 of their certified bounds.
  double epsilon = 0.1;
  /// Total failure probability budget of all concentration bounds.
  double delta = 0.01;
  /// RR sets per pool at the first stopping checkpoint; later checkpoints
  /// follow ris_stopping_schedule (doublings plus x1.5 midpoints).
  std::size_t initial_sets = 512;
  /// Hard cap per pool; sampling stops here even if the rule has not fired.
  std::size_t max_sets = std::size_t{1} << 18;
  /// Fixed pool size used by RisEstimator (no adaptive rule there).
  std::size_t estimator_sets = 4096;
  /// Content-byte budget per pool (0 = unlimited). A pool at its budget
  /// stops growing: appends beyond it are dropped deterministically (newest
  /// sets first, so the identity-keeping prefix survives) and the stopping
  /// rule treats the stall like the max_sets cap. Because the budget shapes
  /// which RR sets exist, it is a pool-shaping knob: warm contexts require
  /// it to match, like seed/model (see ris_greedy_with_context).
  std::size_t max_pool_bytes = 0;
  std::uint64_t seed = 7;
  std::uint32_t max_hops = 31;
  DiffusionModel model = DiffusionModel::kOpoao;
  double ic_edge_prob = 0.1;
};

/// One worker's batch of freshly drawn RR sets in CSR-lite form (per-set
/// sizes + concatenated ascending nodes) — the unit RrSampler::extend fills
/// in parallel and RrPool merges in fixed shard order, so pool contents are
/// a pure function of draw indices whatever the thread count.
struct RrShard {
  std::vector<std::uint32_t> sizes;  ///< nodes per set, in draw-index order
  std::vector<NodeId> nodes;         ///< concatenated sets, each ascending
  std::uint64_t visits = 0;          ///< node-touch ops spent on this shard
};

/// A batch of RR sets in CSR form with a node -> RR-set inverted index.
/// Grows in rounds via RrSampler::extend; set i keeps its identity forever.
class RrPool {
 public:
  /// Number of RR sets, including null sets (root not rumor-reached in its
  /// realization — nothing to save, but it still counts in the denominator).
  std::size_t num_sets() const { return set_off_.size() - 1; }
  std::size_t num_null() const { return num_null_; }

  /// Nodes of RR set i, ascending. Empty span = null set.
  std::span<const NodeId> set_nodes(std::size_t i) const {
    return {nodes_.data() + set_off_[i], nodes_.data() + set_off_[i + 1]};
  }
  /// RR-set ids containing node v, ascending (the inverted index).
  std::span<const std::uint32_t> sets_containing(NodeId v) const {
    if (inv_off_.empty()) return {};
    return {inv_sets_.data() + inv_off_[v], inv_sets_.data() + inv_off_[v + 1]};
  }

  std::size_t total_entries() const { return nodes_.size(); }
  /// Distinct nodes appearing in at least one RR set.
  std::size_t num_covered_nodes() const { return num_covered_nodes_; }
  /// Elementary node-touch operations spent generating the pool (forward
  /// baseline steps + reverse-search relaxations); the bench's cost metric.
  std::uint64_t nodes_visited() const { return nodes_visited_; }

  /// Fraction of RR sets hit by seed set `a` (coverage objective), plus the
  /// null sets folded in when `count_null` (the protected-fraction reading).
  /// `limit` restricts the evaluation to the first `limit` sets (0 = all):
  /// because set i keeps its identity forever, the first-theta prefix of a
  /// warm pool is bit-identical to a cold pool of theta sets, which is what
  /// lets the query service reuse one grown pool across queries.
  double coverage_fraction(std::span<const NodeId> a, bool count_null,
                           std::size_t limit = 0) const;

  /// Null sets among the first `limit` sets (limit <= num_sets()).
  std::size_t num_null_prefix(std::size_t limit) const;

  /// Distinct nodes appearing in at least one of the first `limit` sets.
  std::size_t num_covered_nodes_prefix(std::size_t limit) const;

  /// Heap footprint of the pool's arrays (capacity-based), for the session
  /// registry's byte accounting.
  std::size_t memory_bytes() const;

  /// Bytes the pool's CONTENT occupies (size-based, a pure function of the
  /// stored sets — unlike memory_bytes, independent of growth history).
  /// This is the quantity the byte budget caps.
  std::size_t content_bytes() const;

  /// Sets a content-byte budget (0 = unlimited). If the pool is already over
  /// the new budget, the highest-index sets are retired until it fits (at
  /// least one set is always kept): retiring from the tail preserves the
  /// identity-keeping prefix, and the retired sets are deterministically
  /// regenerable from their draw indices. Future appends stop at the budget.
  void set_byte_budget(std::size_t bytes);
  std::size_t byte_budget() const { return byte_budget_; }
  /// True once the budget has refused or retired at least one set since the
  /// last set_byte_budget call (which resets the flag to whether that call
  /// itself retired anything).
  bool byte_capped() const { return byte_capped_; }

  /// Throws lcrb::Error unless the pool is internally consistent: CSR
  /// offsets monotone, sets strictly ascending with in-range nodes, null and
  /// covered-node counters exact, and the inverted index in exact two-way
  /// agreement with the sets. O(total entries). Called automatically after
  /// every append under LCRB_ENABLE_INVARIANTS.
  void validate() const;

 private:
  friend class RrSampler;
  /// Merges freshly drawn shards, in shard order, onto the end of the pool.
  /// Honors the byte budget: sets that would push content_bytes past it are
  /// dropped (all-or-nothing per set, scanning in index order, so the kept
  /// prefix is exactly what an identically-budgeted cold pool would hold).
  void append_shards(std::vector<RrShard>&& shards, NodeId num_graph_nodes);
  void rebuild_inverted_index(NodeId num_graph_nodes);
  /// Content bytes of a pool holding `sets` sets and `entries` entries.
  static std::size_t content_bytes_for(std::size_t sets, std::size_t entries,
                                       std::size_t num_graph_nodes);

  std::vector<std::uint32_t> set_off_ = {0};
  std::vector<NodeId> nodes_;
  std::vector<std::uint32_t> inv_off_;  ///< per node, rebuilt on append
  std::vector<std::uint32_t> inv_sets_;
  std::size_t num_null_ = 0;
  std::size_t num_covered_nodes_ = 0;
  std::uint64_t nodes_visited_ = 0;
  std::size_t byte_budget_ = 0;  ///< content-byte cap; 0 = unlimited
  bool byte_capped_ = false;
};

/// Draws RR sets under the coupled competitive models. Thread-safe: parallel
/// draws lease independent scratch buffers, and every draw is a pure
/// function of (config seed, stream, index).
class RrSampler {
 public:
  /// `g` may reference either backend; it must outlive the sampler.
  RrSampler(GraphRef g, std::vector<NodeId> rumors,
            std::vector<NodeId> bridge_ends, const RisConfig& cfg);
  ~RrSampler();

  RrSampler(const RrSampler&) = delete;
  RrSampler& operator=(const RrSampler&) = delete;

  /// Root index (into bridge_ends) and realization seed of draw `index` on
  /// `stream` (0 = selection pool, 1 = validation pool, 2 = estimator).
  struct Draw {
    std::size_t root_idx;
    std::uint64_t realization_seed;
  };
  Draw draw(std::uint64_t stream, std::size_t index) const;

  /// The RR set of one (root, realization) pair, ascending node ids; empty
  /// when the rumor never reaches the root in this realization. `visits`
  /// (optional) accumulates elementary node-touch operations.
  std::vector<NodeId> rr_set(std::size_t root_idx,
                             std::uint64_t realization_seed,
                             std::uint64_t* visits = nullptr) const;

  /// Grows `pool` toward `target_sets` RR sets using draws
  /// [pool.num_sets(), target_sets) of `stream`. The draw range is split
  /// into contiguous index shards, each filled into its own CSR shard buffer
  /// (one scratch lease per shard, no per-set heap allocation) — in parallel
  /// when `tp` is given — then merged in fixed shard order, so the pool is
  /// bit-identical at 0/1/N threads. A byte-budgeted pool may stop short of
  /// `target_sets`; check pool.num_sets() / pool.byte_capped().
  void extend(RrPool& pool, std::uint64_t stream, std::size_t target_sets,
              ThreadPool* tp = nullptr) const;

  const std::vector<NodeId>& bridge_ends() const { return bridge_ends_; }
  GraphRef graph() const { return g_; }
  const RisConfig& config() const { return cfg_; }

 private:
  struct ScratchLease;

  /// Appends the RR set of one (root, realization) pair to `nodes` (its
  /// freshly written tail sorted ascending) and returns its size; the shard
  /// fill loop shares one scratch across all its draws.
  std::uint32_t rr_set_into(std::size_t root_idx,
                            std::uint64_t realization_seed, ReverseScratch& sc,
                            std::vector<NodeId>& nodes,
                            std::uint64_t& visits) const;

  GraphRef g_;
  RisConfig cfg_;
  std::vector<NodeId> rumors_;
  std::vector<NodeId> bridge_ends_;
  std::vector<bool> is_rumor_;
  /// Traits::build_reverse_shared output, shared by every draw (only DOAM
  /// populates it — its realization is deterministic).
  ReverseShared reverse_shared_;

  mutable std::mutex scratch_mu_;
  mutable std::vector<std::unique_ptr<ReverseScratch>> scratch_free_;
};

/// Why the adaptive sampling loop stopped.
enum class RisStopReason : std::uint8_t {
  kNone,        ///< no sampling ran (e.g. no bridge ends)
  kCertified,   ///< the (1 - 1/e - epsilon) ratio was certified
  kNegligible,  ///< both pool estimates within epsilon/4 of their bounds
  kMaxSets,     ///< RisConfig::max_sets exhausted before the rule fired
  kPoolBytes,   ///< RisConfig::max_pool_bytes stalled growth before the rule
};

std::string to_string(RisStopReason r);

/// Result of the RIS max-coverage greedy (the SigmaMode::kRis engine behind
/// greedy_lcrbp_from_bridges).
struct RisGreedyResult {
  std::vector<NodeId> protectors;  ///< in pick order
  /// Estimated protected fraction on the validation pool at termination.
  double achieved_fraction = 0.0;
  /// Marginal sigma gain per pick, in bridge-end units (|B| * d_coverage).
  std::vector<double> gain_history;
  std::size_t rr_sets = 0;  ///< per pool at termination
  std::size_t rounds = 0;   ///< stopping checkpoints evaluated
  /// Certified bounds on sigma(protectors) under the coverage objective:
  /// lower from the validation pool, upper from the selection pool's greedy
  /// guarantee, each holding with probability >= 1 - delta overall.
  double sigma_lower = 0.0;
  double sigma_upper = 0.0;
  std::size_t distinct_candidates = 0;  ///< nodes seen in any RR set
  std::uint64_t nodes_visited = 0;      ///< generation + greedy node ops
  /// epsilon/delta accounting of the stopping rule: the accuracy knobs the
  /// run certified against, the per-bound failure share after the union
  /// bound over checkpoints x pools x sides, and whether the guarantee was
  /// actually met (false when a cap ended sampling first — also surfaced as
  /// a one-time process warning).
  double epsilon_used = 0.0;
  double delta_used = 0.0;
  double delta_per_bound = 0.0;
  RisStopReason stop_reason = RisStopReason::kNone;
  bool guarantee_met = false;
};

/// RIS protector selection: adaptive sample doubling (OPIM-style two-pool
/// rule) + max-coverage greedy until the estimated protected fraction
/// reaches `alpha` or `max_protectors` (0 = unlimited) is hit.
RisGreedyResult ris_greedy_from_bridges(GraphRef g,
                                        std::span<const NodeId> rumors,
                                        const BridgeEndResult& bridges,
                                        double alpha,
                                        std::size_t max_protectors,
                                        const RisConfig& cfg,
                                        ThreadPool* pool = nullptr);

/// Warm RIS state a GraphSession keeps between queries: the sampler plus the
/// selection/validation pools it has grown so far. Queries that need theta
/// sets extend the pools (unique_lock) if short, then evaluate over the
/// first-theta prefix (shared_lock) — bit-identical to a cold run because
/// every RR set lands in a preassigned slot.
struct RisContext {
  RisContext(GraphRef g, std::vector<NodeId> rumors,
             std::vector<NodeId> bridge_ends, const RisConfig& cfg)
      : sampler(g, std::move(rumors), std::move(bridge_ends), cfg) {
    selection.set_byte_budget(cfg.max_pool_bytes);
    validation.set_byte_budget(cfg.max_pool_bytes);
  }

  RrSampler sampler;
  RrPool selection;   ///< stream 0
  RrPool validation;  ///< stream 1
  mutable std::shared_mutex mu;  ///< extend: unique; evaluate: shared

  /// Pool heap footprint (the sampler's scratch is transient and excluded).
  std::size_t memory_bytes() const {
    return selection.memory_bytes() + validation.memory_bytes();
  }
};

/// ris_greedy_from_bridges against a caller-owned warm context. The context
/// must have been built for the same graph/rumors/bridge ends, and the knobs
/// that shape RR draws or pool growth (seed, max_hops, model, ic_edge_prob,
/// max_pool_bytes) must match ctx.sampler.config() — enforced with
/// lcrb::Error. The accuracy knobs (epsilon/delta/initial_sets/max_sets) may
/// differ per query.
/// RisGreedyResult::nodes_visited reports only this call's greedy ops: the
/// shared pools' generation counters mix queries.
RisGreedyResult ris_greedy_with_context(double alpha,
                                        std::size_t max_protectors,
                                        const RisConfig& cfg, RisContext& ctx,
                                        ThreadPool* pool = nullptr);

/// Fixed-pool sigma estimator over cfg.estimator_sets RR sets — the RIS
/// counterpart of SigmaEstimator for agreement tests and benches.
class RisEstimator {
 public:
  RisEstimator(GraphRef g, std::vector<NodeId> rumors,
               std::vector<NodeId> bridge_ends, const RisConfig& cfg,
               ThreadPool* pool = nullptr);

  /// sigma-hat(A) = |B| * covered fraction. Exact-in-expectation for DOAM
  /// and IC; a lower bound in expectation for OPOAO.
  double sigma(std::span<const NodeId> protectors) const;
  /// (null + covered) / num_sets — the protected-fraction reading.
  double protected_fraction(std::span<const NodeId> protectors) const;

  std::size_t num_sets() const { return pool_.num_sets(); }
  const RrPool& pool() const { return pool_; }
  std::uint64_t nodes_visited() const { return pool_.nodes_visited(); }

 private:
  RrSampler sampler_;
  RrPool pool_;
};

}  // namespace lcrb
