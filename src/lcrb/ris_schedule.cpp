#include "lcrb/ris_schedule.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace lcrb {

std::vector<std::size_t> ris_stopping_schedule(std::size_t initial_sets,
                                               std::size_t max_sets) {
  LCRB_REQUIRE(max_sets >= 1, "ris schedule needs max_sets >= 1");
  const std::size_t first = std::min(std::max<std::size_t>(initial_sets, 1),
                                     max_sets);
  std::vector<std::size_t> sched{first};
  for (std::size_t base = first; base < max_sets;) {
    // Midpoint checkpoint at 1.5x, then the doubling point; integer halving
    // keeps the schedule well defined for odd bases, and the strictness
    // checks drop degenerate midpoints (base < 2).
    const std::size_t mid = base + base / 2;
    const bool overflow = base > max_sets / 2;
    const std::size_t next = overflow ? max_sets : base * 2;
    if (mid > base && mid < std::min(next, max_sets)) sched.push_back(mid);
    sched.push_back(std::min(next, max_sets));
    base = sched.back();
  }
  return sched;
}

double ris_bound_exponent(double delta, std::size_t num_checkpoints) {
  LCRB_REQUIRE(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
  LCRB_REQUIRE(num_checkpoints >= 1, "schedule must have a checkpoint");
  return std::log(4.0 * static_cast<double>(num_checkpoints) / delta);
}

double ris_mean_lower_bound(double sum, std::size_t theta, double a) {
  LCRB_REQUIRE(theta >= 1 && a > 0.0, "bad concentration-bound arguments");
  const double t = static_cast<double>(theta);
  const double hoeffding = sum / t - std::sqrt(a / (2.0 * t));
  // At sum == 0 the martingale expression is analytically zero (the a/18
  // term is exactly the square's residual), but the identity does not
  // survive floating point — force the sharp value rather than leak a
  // spurious epsilon-positive lower bound on an all-null pool.
  const double root = std::sqrt(sum + 2.0 * a / 9.0) - std::sqrt(a / 2.0);
  const double martingale = sum <= 0.0 ? 0.0 : (root * root - a / 18.0) / t;
  return std::clamp(std::max(hoeffding, martingale), 0.0, 1.0);
}

double ris_mean_upper_bound(double sum, std::size_t theta, double a) {
  LCRB_REQUIRE(theta >= 1 && a > 0.0, "bad concentration-bound arguments");
  const double t = static_cast<double>(theta);
  const double hoeffding = sum / t + std::sqrt(a / (2.0 * t));
  const double root = std::sqrt(sum + a / 2.0) + std::sqrt(a / 2.0);
  const double martingale = root * root / t;
  return std::clamp(std::min(hoeffding, martingale), 0.0, 1.0);
}

}  // namespace lcrb
