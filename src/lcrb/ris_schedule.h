// Checkpoint schedule and concentration bounds of the adaptive RIS stopping
// rule (used by ris_greedy_with_context in ris.cpp).
//
// The rule is OPIM-style two-pool certification (Tang et al., SIGMOD 2018)
// strengthened with the martingale bounds of Tong et al.'s randomized rumor
// blocking (arXiv:1701.02368): at every checkpoint both a Hoeffding bound
// and a martingale (Chernoff-style, variance-adaptive) bound are evaluated
// and the tighter one wins. Hoeffding is tighter when the mean coverage is
// large (its half-width is variance-free), the martingale bound is tighter
// when coverage is small (its deviation scales with sqrt(mu) instead of a
// constant), so the combined bound certifies at least as early as either
// alone in every regime.
//
// Everything here is a pure function of its arguments — no state, no
// randomness — so the stopping decision is bit-reproducible across thread
// counts and across warm/cold pools (the determinism contract of ris.h).
#pragma once

#include <cstddef>
#include <vector>

namespace lcrb {

/// Checkpoint sizes of the stopping rule: the pool sizes at which the
/// certification test runs. Doubling ladder from `initial_sets` to
/// `max_sets` with one midpoint (x1.5) checkpoint inserted between
/// consecutive doublings, so the rule tests roughly every sqrt(2)-factor of
/// work instead of only at doubling boundaries. Strictly increasing; first
/// element is min(max(initial_sets, 1), max_sets); last element is max_sets.
std::vector<std::size_t> ris_stopping_schedule(std::size_t initial_sets,
                                               std::size_t max_sets);

/// ln(1 / delta_share) where delta_share is the failure budget of ONE
/// one-sided bound: the total budget `delta` split uniformly across
/// `num_checkpoints` checkpoints x 2 pools x 2 sides (union bound). This is
/// the exponent `a` every bound below takes.
double ris_bound_exponent(double delta, std::size_t num_checkpoints);

/// High-probability lower bound on the mean coverage of a fixed seed set
/// whose observed coverage over `theta` RR sets sums to `sum` (so the
/// empirical mean is sum / theta). Takes the tighter of:
///   Hoeffding:   mean - sqrt(a / (2 theta))
///   martingale:  ((sqrt(sum + 2a/9) - sqrt(a/2))^2 - a/18) / theta
/// clamped to [0, 1]. Exactly 0 when sum == 0 (the martingale bound is
/// sharp at zero coverage). Holds with probability >= 1 - exp(-a).
double ris_mean_lower_bound(double sum, std::size_t theta, double a);

/// High-probability upper bound on the same mean; the tighter of:
///   Hoeffding:   mean + sqrt(a / (2 theta))
///   martingale:  (sqrt(sum + a/2) + sqrt(a/2))^2 / theta
/// clamped to [0, 1]. Holds with probability >= 1 - exp(-a).
double ris_mean_upper_bound(double sum, std::size_t theta, double a);

}  // namespace lcrb
