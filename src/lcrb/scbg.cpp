#include "lcrb/scbg.h"

#include "graph/ef_graph.h"
#include "graph/graph.h"

#include "diffusion/doam.h"
#include "lcrb/bbst.h"
#include "lcrb/setcover.h"
#include "util/error.h"

namespace lcrb {

template <GraphView G>
ScbgResult scbg(const G& g, const Partition& p,
                CommunityId rumor_community, std::span<const NodeId> rumors,
                const ScbgConfig& cfg) {
  const BridgeEndResult bridges =
      find_bridge_ends(g, p, rumor_community, rumors);
  return scbg_from_bridges(g, rumors, bridges, cfg);
}

template <GraphView G>
ScbgResult scbg_from_bridges(const G& g, std::span<const NodeId> rumors,
                             const BridgeEndResult& bridges,
                             const ScbgConfig& cfg) {
  ScbgResult out;
  out.bridge_ends = bridges.bridge_ends;
  if (out.bridge_ends.empty()) return out;

  const std::vector<Bbst> bbsts =
      build_all_bbsts(g, out.bridge_ends, bridges.rumor_dist, rumors);
  const SwSets sw = invert_bbsts(bbsts, g.num_nodes());
  out.candidate_count = sw.candidates.size();

  SetCoverInstance inst;
  inst.universe_size = static_cast<std::uint32_t>(out.bridge_ends.size());
  inst.sets = sw.sets;
  const SetCoverResult cover = greedy_set_cover(inst);
  out.covered = cover.covered;
  // Every bridge end sits in its own BBST (N^0(v) = v), so a complete cover
  // always exists; failure indicates a bug, not an infeasible instance.
  LCRB_REQUIRE(cover.complete, "SCBG: set cover unexpectedly incomplete");

  out.protectors.reserve(cover.chosen.size());
  for (std::uint32_t idx : cover.chosen) {
    out.protectors.push_back(sw.candidates[idx]);
  }

  if (cfg.verify_coverage) {
    SeedSets seeds;
    seeds.rumors.assign(rumors.begin(), rumors.end());
    seeds.protectors = out.protectors;
    const std::vector<bool> saved = doam_saved(g, seeds, out.bridge_ends);
    for (std::size_t i = 0; i < saved.size(); ++i) {
      LCRB_REQUIRE(saved[i], "SCBG verification failed: bridge end " +
                                 std::to_string(out.bridge_ends[i]) +
                                 " still infected under DOAM");
    }
  }
  return out;
}

#define LCRB_INSTANTIATE_SCBG(G)                                              \
  template ScbgResult scbg<G>(const G&, const Partition&, CommunityId,        \
                              std::span<const NodeId>, const ScbgConfig&);    \
  template ScbgResult scbg_from_bridges<G>(const G&,                          \
                                           std::span<const NodeId>,           \
                                           const BridgeEndResult&,            \
                                           const ScbgConfig&);

LCRB_INSTANTIATE_SCBG(DiGraph)
LCRB_INSTANTIATE_SCBG(EfGraph)

#undef LCRB_INSTANTIATE_SCBG

}  // namespace lcrb
