// Set Cover Based Greedy (SCBG) — the paper's Algorithm 3 for LCRB-D.
//
// Pipeline: RFST -> bridge ends B -> one BBST per bridge end -> invert into
// SW sets -> greedy set cover -> protector seed set W. The output provably
// protects every bridge end under DOAM (each bridge end is in its own BBST,
// so a complete cover always exists), within O(ln |B|) of the optimum.
#pragma once

#include <span>
#include <vector>

#include "community/partition.h"
#include "graph/graph_view.h"
#include "lcrb/bridge.h"
#include "util/types.h"

namespace lcrb {

struct ScbgConfig {
  /// Re-check the cover with an actual DOAM protection test (cheap, O(V+E))
  /// and throw if the guarantee is ever violated. Keep on; it is the
  /// paper's central claim.
  bool verify_coverage = true;
};

struct ScbgResult {
  std::vector<NodeId> protectors;   ///< W, in pick order
  std::vector<NodeId> bridge_ends;  ///< B
  std::size_t covered = 0;          ///< bridge ends covered (== |B|)
  std::size_t candidate_count = 0;  ///< |union of BBSTs| (set-cover width)
};

/// Runs SCBG end to end.
template <GraphView G>
ScbgResult scbg(const G& g, const Partition& p,
                CommunityId rumor_community, std::span<const NodeId> rumors,
                const ScbgConfig& cfg = {});

/// Variant when bridge ends were already computed (shared with benches).
template <GraphView G>
ScbgResult scbg_from_bridges(const G& g, std::span<const NodeId> rumors,
                             const BridgeEndResult& bridges,
                             const ScbgConfig& cfg = {});

}  // namespace lcrb
