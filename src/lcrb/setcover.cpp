#include "lcrb/setcover.h"

#include <algorithm>
#include <queue>

#include "util/bitset.h"
#include "util/error.h"

namespace lcrb {

namespace {

void validate(const SetCoverInstance& inst) {
  for (const auto& s : inst.sets) {
    for (std::uint32_t e : s) {
      LCRB_REQUIRE(e < inst.universe_size, "set element outside universe");
    }
  }
}

std::uint32_t fresh_count(const std::vector<std::uint32_t>& set,
                          const DynamicBitset& covered) {
  std::uint32_t c = 0;
  for (std::uint32_t e : set) c += !covered.test(e);
  return c;
}

}  // namespace

SetCoverResult greedy_set_cover(const SetCoverInstance& inst) {
  validate(inst);
  SetCoverResult out;
  if (inst.universe_size == 0) {
    out.complete = true;
    return out;
  }

  // Normalize: duplicate elements inside a set must not inflate its
  // marginal-coverage counts.
  std::vector<std::vector<std::uint32_t>> sets = inst.sets;
  for (auto& s : sets) {
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
  }

  DynamicBitset covered(inst.universe_size);

  // Max-heap of (upper bound on marginal coverage, set index). Bounds only
  // decrease, so when a popped entry's refreshed value still beats the next
  // entry's bound, it is the true maximum.
  struct Entry {
    std::uint32_t bound;
    std::uint32_t index;
    bool operator<(const Entry& other) const {
      if (bound != other.bound) return bound < other.bound;
      return index > other.index;  // prefer the lowest index on ties
    }
  };
  std::priority_queue<Entry> heap;
  for (std::uint32_t i = 0; i < inst.sets.size(); ++i) {
    // Initial bound: set size ignoring duplicates is fine as an upper bound.
    const auto bound = static_cast<std::uint32_t>(sets[i].size());
    if (bound > 0) heap.push({bound, i});
  }

  while (out.covered < inst.universe_size && !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    const std::uint32_t fresh = fresh_count(sets[top.index], covered);
    if (fresh == 0) continue;
    if (!heap.empty() && fresh < heap.top().bound) {
      heap.push({fresh, top.index});  // stale; requeue with exact value
      continue;
    }
    // Winner: apply it.
    out.chosen.push_back(top.index);
    for (std::uint32_t e : sets[top.index]) {
      if (covered.set_if_clear(e)) ++out.covered;
    }
  }
  out.complete = (out.covered == inst.universe_size);
  return out;
}

SetCoverResult exact_set_cover(const SetCoverInstance& inst,
                               std::size_t max_sets) {
  validate(inst);
  LCRB_REQUIRE(inst.sets.size() <= max_sets,
               "exact_set_cover: instance too large");
  const auto m = static_cast<std::uint32_t>(inst.sets.size());

  SetCoverResult best;
  bool found = false;

  // Precompute bitmask coverage per set (universe <= 64 fast path not
  // needed; DynamicBitset is fine at oracle sizes).
  for (std::uint64_t mask = 0; mask < (1ULL << m); ++mask) {
    const int picked = __builtin_popcountll(mask);
    if (found && picked >= static_cast<int>(best.chosen.size())) continue;
    DynamicBitset covered(inst.universe_size);
    std::uint32_t count = 0;
    for (std::uint32_t i = 0; i < m; ++i) {
      if (!(mask >> i & 1)) continue;
      for (std::uint32_t e : inst.sets[i]) {
        if (covered.set_if_clear(e)) ++count;
      }
    }
    if (count == inst.universe_size) {
      best.chosen.clear();
      for (std::uint32_t i = 0; i < m; ++i) {
        if (mask >> i & 1) best.chosen.push_back(i);
      }
      best.covered = count;
      best.complete = true;
      found = true;
    }
  }

  if (!found) {
    // No complete cover exists; report the max coverage with all sets.
    DynamicBitset covered(inst.universe_size);
    std::uint32_t count = 0;
    for (std::uint32_t i = 0; i < m; ++i) {
      for (std::uint32_t e : inst.sets[i]) {
        if (covered.set_if_clear(e)) ++count;
      }
      best.chosen.push_back(i);
    }
    best.covered = count;
    best.complete = false;
  }
  return best;
}

}  // namespace lcrb
