// Greedy set cover (the engine inside SCBG, paper Algorithm 2) plus an exact
// brute-force solver used by tests to certify the H_n approximation bound.
#pragma once

#include <cstdint>
#include <vector>

namespace lcrb {

struct SetCoverInstance {
  std::uint32_t universe_size = 0;
  /// Each set lists element ids in [0, universe_size). Duplicates allowed
  /// (ignored); empty sets allowed (never picked).
  std::vector<std::vector<std::uint32_t>> sets;
};

struct SetCoverResult {
  std::vector<std::uint32_t> chosen;  ///< indices into instance.sets, pick order
  std::uint32_t covered = 0;          ///< elements covered by the chosen sets
  bool complete = false;              ///< covered == universe_size
};

/// Classic greedy: repeatedly take the set covering the most uncovered
/// elements. Uses lazy re-evaluation (CELF-style
/// priority queue) — marginal coverage only shrinks as the cover grows, so a
/// stale bound that still tops the queue is exact. Stops when everything is
/// covered or no remaining set helps. Guarantees |chosen| <= H_n * OPT.
SetCoverResult greedy_set_cover(const SetCoverInstance& inst);

/// Exact minimum cover by subset enumeration; for test oracles only.
/// Throws lcrb::Error if inst.sets.size() > max_sets (cost is 2^sets).
SetCoverResult exact_set_cover(const SetCoverInstance& inst,
                               std::size_t max_sets = 24);

}  // namespace lcrb
