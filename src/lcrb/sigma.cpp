#include "lcrb/sigma.h"

#include <atomic>
#include <mutex>

#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"

namespace lcrb {

SigmaEstimator::SigmaEstimator(const DiGraph& g, std::vector<NodeId> rumors,
                               std::vector<NodeId> bridge_ends,
                               const SigmaConfig& cfg, ThreadPool* pool)
    : g_(g),
      rumors_(std::move(rumors)),
      bridge_ends_(std::move(bridge_ends)),
      cfg_(cfg),
      pool_(pool) {
  LCRB_REQUIRE(cfg_.samples >= 1, "need at least one sample");
  LCRB_REQUIRE(!rumors_.empty(), "need rumor originators");

  Rng master(cfg_.seed);
  sample_seeds_.resize(cfg_.samples);
  for (std::size_t i = 0; i < cfg_.samples; ++i) {
    sample_seeds_[i] = master.fork(i).next();
  }

  // Baseline: run every sample with no protectors and record which bridge
  // ends get infected.
  baseline_infected_.assign(cfg_.samples,
                            std::vector<bool>(bridge_ends_.size(), false));
  MonteCarloConfig mc;
  mc.max_hops = cfg_.max_hops;
  mc.model = cfg_.model;
  mc.ic_edge_prob = cfg_.ic_edge_prob;

  std::atomic<std::uint64_t> total_infected{0};
  auto run_baseline = [&](std::size_t i) {
    SeedSets seeds;
    seeds.rumors = rumors_;
    const DiffusionResult r = simulate(g_, seeds, sample_seeds_[i], mc);
    std::uint64_t count = 0;
    for (std::size_t b = 0; b < bridge_ends_.size(); ++b) {
      if (r.state[bridge_ends_[b]] == NodeState::kInfected) {
        baseline_infected_[i][b] = true;
        ++count;
      }
    }
    total_infected.fetch_add(count);
  };
  if (pool_ != nullptr && cfg_.samples > 1) {
    pool_->parallel_for(cfg_.samples, run_baseline);
  } else {
    for (std::size_t i = 0; i < cfg_.samples; ++i) run_baseline(i);
  }
  baseline_infected_mean_ = static_cast<double>(total_infected.load()) /
                            static_cast<double>(cfg_.samples);
}

SigmaEstimator::SampleOutcome SigmaEstimator::evaluate_sample(
    std::size_t i, std::span<const NodeId> protectors) const {
  MonteCarloConfig mc;
  mc.max_hops = cfg_.max_hops;
  mc.model = cfg_.model;
  mc.ic_edge_prob = cfg_.ic_edge_prob;

  SeedSets seeds;
  seeds.rumors = rumors_;
  seeds.protectors.assign(protectors.begin(), protectors.end());
  const DiffusionResult r = simulate(g_, seeds, sample_seeds_[i], mc);
  evals_.fetch_add(1, std::memory_order_relaxed);

  SampleOutcome out{0.0, 0.0};
  for (std::size_t b = 0; b < bridge_ends_.size(); ++b) {
    const bool infected = r.state[bridge_ends_[b]] == NodeState::kInfected;
    if (!infected) {
      out.uninfected += 1.0;
      if (baseline_infected_[i][b]) out.saved_vs_baseline += 1.0;
    }
  }
  return out;
}

double SigmaEstimator::sigma(std::span<const NodeId> protectors) const {
  double total = 0.0;
  if (pool_ != nullptr && cfg_.samples > 1) {
    std::mutex mu;
    pool_->parallel_for(cfg_.samples, [&](std::size_t i) {
      const SampleOutcome o = evaluate_sample(i, protectors);
      std::lock_guard<std::mutex> lock(mu);
      total += o.saved_vs_baseline;
    });
  } else {
    for (std::size_t i = 0; i < cfg_.samples; ++i) {
      total += evaluate_sample(i, protectors).saved_vs_baseline;
    }
  }
  return total / static_cast<double>(cfg_.samples);
}

double SigmaEstimator::protected_fraction(
    std::span<const NodeId> protectors) const {
  if (bridge_ends_.empty()) return 1.0;
  double total = 0.0;
  if (pool_ != nullptr && cfg_.samples > 1) {
    std::mutex mu;
    pool_->parallel_for(cfg_.samples, [&](std::size_t i) {
      const SampleOutcome o = evaluate_sample(i, protectors);
      std::lock_guard<std::mutex> lock(mu);
      total += o.uninfected;
    });
  } else {
    for (std::size_t i = 0; i < cfg_.samples; ++i) {
      total += evaluate_sample(i, protectors).uninfected;
    }
  }
  return total / static_cast<double>(cfg_.samples) /
         static_cast<double>(bridge_ends_.size());
}

}  // namespace lcrb
