#include "lcrb/sigma.h"

#include <atomic>

#include "lcrb/sigma_engine.h"
#include "util/error.h"
#include "util/log.h"
#include "util/rng.h"

namespace lcrb {

std::string to_string(SigmaPath p) {
  switch (p) {
    case SigmaPath::kRealizationCache: return "realization_cache";
    case SigmaPath::kLegacySimulate: return "legacy_simulate";
  }
  return "unknown";
}

std::string to_string(SigmaFallbackReason r) {
  switch (r) {
    case SigmaFallbackReason::kNone: return "none";
    case SigmaFallbackReason::kDisabled: return "disabled";
    case SigmaFallbackReason::kUnsupportedModel: return "unsupported_model";
    case SigmaFallbackReason::kByteCap: return "byte_cap";
  }
  return "unknown";
}

SigmaEstimator::SigmaEstimator(GraphRef g, std::vector<NodeId> rumors,
                               std::vector<NodeId> bridge_ends,
                               const SigmaConfig& cfg, ThreadPool* pool)
    : g_(g),
      rumors_(std::move(rumors)),
      bridge_ends_(std::move(bridge_ends)),
      cfg_(cfg),
      pool_(pool) {
  LCRB_REQUIRE(cfg_.samples >= 1, "need at least one sample");
  LCRB_REQUIRE(!rumors_.empty(), "need rumor originators");

  Rng master(cfg_.seed);
  sample_seeds_.resize(cfg_.samples);
  for (std::size_t i = 0; i < cfg_.samples; ++i) {
    sample_seeds_[i] = master.fork(i).next();
  }

  const std::size_t estimated = SigmaEngine::estimated_bytes(g_, cfg_);
  const bool cache_fits =
      cfg_.max_cache_bytes == 0 || estimated <= cfg_.max_cache_bytes;
  if (!cfg_.use_realization_cache) {
    fallback_reason_ = SigmaFallbackReason::kDisabled;
  } else if (!SigmaEngine::supports(cfg_.model)) {
    fallback_reason_ = SigmaFallbackReason::kUnsupportedModel;
  } else if (!cache_fits) {
    // The caller asked for the cache and the model supports it, but the
    // byte cap silently downgraded to per-sample re-simulation — that is a
    // real perf cliff, so say so (once per process; repeats at debug level).
    fallback_reason_ = SigmaFallbackReason::kByteCap;
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      LCRB_LOG_WARN << "sigma: realization cache requested but its estimated "
                    << estimated << " bytes exceed max_cache_bytes "
                    << cfg_.max_cache_bytes
                    << "; falling back to the legacy simulate() path "
                    << "(~5x slower per evaluation)";
    } else {
      LCRB_LOG_DEBUG << "sigma: byte-cap fallback to legacy path (estimated "
                     << estimated << " > cap " << cfg_.max_cache_bytes << ")";
    }
  }
  if (fallback_reason_ == SigmaFallbackReason::kNone) {
    // The engine runs the rumor-only baselines itself while materializing
    // each sample's realization.
    engine_ = std::make_unique<SigmaEngine>(g_, rumors_, bridge_ends_,
                                            sample_seeds_, cfg_, pool_);
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < cfg_.samples; ++i) {
      total += engine_->baseline_infected(i);
    }
    baseline_infected_mean_ =
        static_cast<double>(total) / static_cast<double>(cfg_.samples);
    return;
  }

  // Legacy path: run every sample with no protectors and record which bridge
  // ends get infected. Per-sample counts land in their own slots and are
  // reduced in sample order, so the result is thread-schedule independent.
  baseline_infected_.assign(cfg_.samples,
                            std::vector<bool>(bridge_ends_.size(), false));
  MonteCarloConfig mc;
  mc.max_hops = cfg_.max_hops;
  mc.model = cfg_.model;
  mc.ic_edge_prob = cfg_.ic_edge_prob;

  std::vector<std::uint64_t> counts(cfg_.samples, 0);
  auto run_baseline = [&](std::size_t i) {
    SeedSets seeds;
    seeds.rumors = rumors_;
    const DiffusionResult r = g_.visit([&](const auto& gr) {
      return simulate(gr, seeds, sample_seeds_[i], mc);
    });
    std::uint64_t count = 0;
    for (std::size_t b = 0; b < bridge_ends_.size(); ++b) {
      if (r.state[bridge_ends_[b]] == NodeState::kInfected) {
        baseline_infected_[i][b] = true;
        ++count;
      }
    }
    counts[i] = count;
  };
  if (pool_ != nullptr && cfg_.samples > 1) {
    pool_->parallel_for(cfg_.samples, run_baseline);
  } else {
    for (std::size_t i = 0; i < cfg_.samples; ++i) run_baseline(i);
  }
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < cfg_.samples; ++i) total += counts[i];
  baseline_infected_mean_ =
      static_cast<double>(total) / static_cast<double>(cfg_.samples);
}

SigmaEstimator::~SigmaEstimator() = default;

SigmaEstimator::SampleOutcome SigmaEstimator::evaluate_sample(
    std::size_t i, std::span<const NodeId> protectors) const {
  evals_.fetch_add(1, std::memory_order_relaxed);
  if (engine_ != nullptr) {
    const SigmaEngine::Outcome o = engine_->evaluate(i, protectors);
    return {static_cast<double>(o.saved), static_cast<double>(o.uninfected)};
  }

  MonteCarloConfig mc;
  mc.max_hops = cfg_.max_hops;
  mc.model = cfg_.model;
  mc.ic_edge_prob = cfg_.ic_edge_prob;

  SeedSets seeds;
  seeds.rumors = rumors_;
  seeds.protectors.assign(protectors.begin(), protectors.end());
  const DiffusionResult r = g_.visit([&](const auto& gr) {
    return simulate(gr, seeds, sample_seeds_[i], mc);
  });
  // Visit proxy for a full simulation: every node the run activated.
  legacy_visits_.fetch_add(
      r.infected_count() + r.protected_count(), std::memory_order_relaxed);

  SampleOutcome out{0.0, 0.0};
  for (std::size_t b = 0; b < bridge_ends_.size(); ++b) {
    const bool infected = r.state[bridge_ends_[b]] == NodeState::kInfected;
    if (!infected) {
      out.uninfected += 1.0;
      if (baseline_infected_[i][b]) out.saved_vs_baseline += 1.0;
    }
  }
  return out;
}

SigmaEstimator::Totals SigmaEstimator::evaluate_all(
    std::span<const NodeId> protectors) const {
  // Per-sample outcomes land in preassigned slots; the reduction below runs
  // serially in sample order. Outcomes are integer-valued bridge-end counts
  // (exact in double), so parallel and serial runs agree bit for bit.
  std::vector<SampleOutcome> outcomes(cfg_.samples);
  auto eval_one = [&](std::size_t i) {
    outcomes[i] = evaluate_sample(i, protectors);
  };
  if (pool_ != nullptr && cfg_.samples > 1) {
    pool_->parallel_for(cfg_.samples, eval_one);
  } else {
    for (std::size_t i = 0; i < cfg_.samples; ++i) eval_one(i);
  }
  Totals t;
  for (std::size_t i = 0; i < cfg_.samples; ++i) {
    t.saved += outcomes[i].saved_vs_baseline;
    t.uninfected += outcomes[i].uninfected;
  }
  return t;
}

std::uint64_t SigmaEstimator::nodes_visited() const {
  return engine_ != nullptr
             ? engine_->nodes_visited()
             : legacy_visits_.load(std::memory_order_relaxed);
}

std::size_t SigmaEstimator::memory_bytes() const {
  std::size_t bytes = sizeof(*this) +
                      sample_seeds_.capacity() * sizeof(std::uint64_t);
  if (engine_ != nullptr) {
    bytes += engine_->realization_bytes();
  }
  for (const std::vector<bool>& bits : baseline_infected_) {
    bytes += bits.capacity() / 8;
  }
  return bytes;
}

double SigmaEstimator::sigma(std::span<const NodeId> protectors) const {
  return evaluate_all(protectors).saved / static_cast<double>(cfg_.samples);
}

double SigmaEstimator::protected_fraction(
    std::span<const NodeId> protectors) const {
  if (bridge_ends_.empty()) return 1.0;
  return evaluate_all(protectors).uninfected /
         static_cast<double>(cfg_.samples) /
         static_cast<double>(bridge_ends_.size());
}

}  // namespace lcrb
