// Monte-Carlo estimator of the protector influence function sigma(A)
// (paper §V-A): the expected number of bridge ends saved by seeding
// protectors at A, i.e. E|PB(A)|.
//
// Sampling uses common random numbers: sample i fixes every node's pick
// stream (OPOAO) or the live-edge/threshold draw (IC/LT), so evaluating
// different protector sets on sample i realizes the paper's coupled random
// graphs G_R/G_P. That keeps greedy marginal gains low-variance and
// per-sample monotone/submodular (Lemma 4).
//
// Evaluations are served by the sample-realization cache (SigmaEngine) when
// the model supports it: the per-sample randomness is materialized once at
// construction and every sigma(A) call is a cheap deterministic replay —
// same results as the legacy simulate()-based path, bit for bit. Per-sample
// outcomes are integer counts and cross-sample reductions run in fixed
// sample order, so results are bit-identical across thread counts.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "diffusion/montecarlo.h"
#include "graph/backend.h"
#include "util/threadpool.h"
#include "util/types.h"

namespace lcrb {

class SigmaEngine;

/// Which machinery actually serves sigma evaluations (tests and benches
/// assert on this instead of inferring it from timings).
enum class SigmaPath : std::uint8_t {
  kRealizationCache,  ///< SigmaEngine replay
  kLegacySimulate,    ///< per-sample simulate() re-runs
};

/// Why the estimator is NOT on the realization cache.
enum class SigmaFallbackReason : std::uint8_t {
  kNone,              ///< not a fallback: the cache is serving
  kDisabled,          ///< use_realization_cache = false
  kUnsupportedModel,  ///< DOAM (deterministic, never cached)
  kByteCap,           ///< estimated cache size exceeds max_cache_bytes
};

std::string to_string(SigmaPath p);
std::string to_string(SigmaFallbackReason r);

struct SigmaConfig {
  std::size_t samples = 50;
  std::uint64_t seed = 7;
  std::uint32_t max_hops = 31;
  DiffusionModel model = DiffusionModel::kOpoao;
  double ic_edge_prob = 0.1;
  /// Serve evaluations from the per-sample realization cache (SigmaEngine)
  /// when the model supports it. false forces the legacy re-simulation path
  /// (kept as the reference implementation; results are identical).
  bool use_realization_cache = true;
  /// Fall back to the legacy path when the realization cache would exceed
  /// this many bytes (dominant term: OPOAO pick tables at
  /// 4B x nodes x max_hops x samples). 0 disables the cap.
  std::size_t max_cache_bytes = std::size_t{1} << 30;
};

/// Estimates sigma(A) and the protected fraction of the bridge ends for a
/// fixed rumor seed set. Thread-safe for concurrent evaluations.
class SigmaEstimator {
 public:
  /// `g` may reference either backend; the referenced graph must outlive
  /// the estimator (same contract as the old const DiGraph&).
  SigmaEstimator(GraphRef g, std::vector<NodeId> rumors,
                 std::vector<NodeId> bridge_ends, const SigmaConfig& cfg,
                 ThreadPool* pool = nullptr);
  ~SigmaEstimator();

  /// sigma-hat(A): mean over samples of |{v in B : infected without
  /// protectors, uninfected with A}|.
  double sigma(std::span<const NodeId> protectors) const;

  /// Mean fraction of bridge ends ending uninfected when A seeds cascade P.
  /// (The greedy's stopping rule: protect alpha |B| in expectation.)
  double protected_fraction(std::span<const NodeId> protectors) const;

  /// Mean number of bridge ends infected with no protectors at all.
  double baseline_infected() const { return baseline_infected_mean_; }

  const std::vector<NodeId>& bridge_ends() const { return bridge_ends_; }
  std::size_t samples() const { return cfg_.samples; }

  /// True when evaluations are served by the realization cache rather than
  /// by re-running simulate() per sample.
  bool uses_engine() const { return engine_ != nullptr; }

  /// The path serving sigma evaluations. When it is kLegacySimulate despite
  /// use_realization_cache = true, fallback_reason() says why (the byte-cap
  /// case additionally logs a one-time warning).
  SigmaPath served_by() const {
    return uses_engine() ? SigmaPath::kRealizationCache
                         : SigmaPath::kLegacySimulate;
  }
  SigmaFallbackReason fallback_reason() const { return fallback_reason_; }

  /// Number of single-sample evaluations performed so far (for the CELF
  /// ablation bench). Approximate under concurrency.
  std::size_t evaluations() const { return evals_; }

  /// Cumulative elementary node-touch operations spent on evaluations (engine
  /// replay ops, or activated-node counts on the legacy path) — the common
  /// cost currency of the MC-vs-RIS ablation. Exact once concurrent
  /// evaluations have finished.
  std::uint64_t nodes_visited() const;

  /// Heap footprint of the warm state (realization cache or legacy baseline
  /// bitsets), for the session registry's byte accounting.
  std::size_t memory_bytes() const;

 private:
  struct SampleOutcome {
    double saved_vs_baseline;  ///< |PB(A)| in this sample
    double uninfected;         ///< |B| - infected(A) in this sample
  };
  struct Totals {
    double saved = 0.0;
    double uninfected = 0.0;
  };
  SampleOutcome evaluate_sample(std::size_t i,
                                std::span<const NodeId> protectors) const;
  /// Evaluates every sample (in parallel when a pool is attached) and
  /// reduces the per-sample outcomes in fixed sample order, so the result
  /// does not depend on thread scheduling.
  Totals evaluate_all(std::span<const NodeId> protectors) const;

  GraphRef g_;
  std::vector<NodeId> rumors_;
  std::vector<NodeId> bridge_ends_;
  SigmaConfig cfg_;
  ThreadPool* pool_;

  std::vector<std::uint64_t> sample_seeds_;
  std::unique_ptr<SigmaEngine> engine_;  ///< null = legacy path
  /// Legacy path only: baseline_infected_[i] = bridge-end indices infected
  /// in sample i with A = {} (bitset over bridge_ends_).
  std::vector<std::vector<bool>> baseline_infected_;
  double baseline_infected_mean_ = 0.0;
  SigmaFallbackReason fallback_reason_ = SigmaFallbackReason::kNone;
  mutable std::atomic<std::size_t> evals_{0};
  /// Legacy path's visit counter; the engine path reads SigmaEngine's.
  mutable std::atomic<std::uint64_t> legacy_visits_{0};
};

}  // namespace lcrb
