#include "lcrb/sigma_engine.h"

#include <atomic>
#include <mutex>
#include <type_traits>
#include <utility>

#include "diffusion/kernel.h"
#include "diffusion/model_traits.h"
#include "util/error.h"

namespace lcrb {

// The model-generic implementation interface. One virtual hop per public
// call; everything inside an evaluation — the replay loop, the bridge-end
// verdicts — is resolved against the traits at compile time.
class SigmaEngine::Base {
 public:
  virtual ~Base() = default;
  virtual Outcome evaluate(std::size_t sample,
                           std::span<const NodeId> protectors) const = 0;
  virtual std::uint32_t baseline_infected(std::size_t sample) const = 0;
  virtual const DynamicBitset& baseline_bits(std::size_t sample) const = 0;
  virtual std::size_t realization_bytes() const = 0;
  virtual std::uint64_t nodes_visited() const = 0;
};

namespace {

template <class Traits, class G>
class EngineImpl final : public SigmaEngine::Base {
 public:
  using Outcome = SigmaEngine::Outcome;

  EngineImpl(const G& g, std::span<const NodeId> rumors,
             std::span<const NodeId> bridge_ends,
             std::span<const std::uint64_t> sample_seeds,
             const SigmaConfig& cfg, ThreadPool* pool)
      : g_(g),
        cfg_(cfg),
        params_{cfg.max_hops, cfg.ic_edge_prob},
        rumors_(rumors.begin(), rumors.end()),
        bridge_ends_(bridge_ends.begin(), bridge_ends.end()),
        sample_seeds_(sample_seeds.begin(), sample_seeds.end()),
        is_rumor_(g.num_nodes()) {
    LCRB_REQUIRE(sample_seeds_.size() == cfg_.samples,
                 "one sample seed per sample required");
    for (NodeId r : rumors_) {
      LCRB_REQUIRE(r < g_.num_nodes(), "rumor id out of range");
      is_rumor_.set(r);
    }

    const std::size_t samples = cfg_.samples;
    baseline_bits_.assign(samples, DynamicBitset(bridge_ends_.size()));
    baseline_count_.assign(samples, 0);
    shared_ = Traits::build_cache_shared(g_);
    samples_.resize(samples);

    // Every per-sample cache writes only its own slots, so parallel
    // construction yields identical data to serial.
    auto build = [this](std::size_t i) { build_sample(i); };
    if (pool != nullptr && samples > 1) {
      pool->parallel_for(samples, build);
    } else {
      for (std::size_t i = 0; i < samples; ++i) build(i);
    }
  }

  Outcome evaluate(std::size_t sample,
                   std::span<const NodeId> protectors) const override {
    LCRB_REQUIRE(sample < cfg_.samples, "sample index out of range");
    ScratchLease lease(*this);
    Scratch& s = *lease.scratch;
    s.bump();
    // Shared protector-seed validation + P stamping; the model replay then
    // derives its own seeding structures from `protectors` in this order.
    for (NodeId v : protectors) seed_protector(v, s.color);
    const std::uint64_t ops =
        Traits::replay(g_, shared_, samples_[sample], rumors_, protectors,
                       s.color, s.model, params_);
    visits_.fetch_add(ops, std::memory_order_relaxed);

    Outcome o;
    const DynamicBitset& base = baseline_bits_[sample];
    for (std::size_t b = 0; b < bridge_ends_.size(); ++b) {
      const bool infected = Traits::replay_infected(
          samples_[sample], s.color, s.model, bridge_ends_[b], base.test(b));
      if (!infected) {
        ++o.uninfected;
        if (base.test(b)) ++o.saved;
      }
    }
    return o;
  }

  std::uint32_t baseline_infected(std::size_t sample) const override {
    return baseline_count_[sample];
  }
  const DynamicBitset& baseline_bits(std::size_t sample) const override {
    return baseline_bits_[sample];
  }

  std::size_t realization_bytes() const override {
    std::size_t total = Traits::cache_shared_bytes(shared_);
    for (const typename Traits::CacheSample& sp : samples_) {
      total += Traits::cache_sample_bytes(sp);
    }
    return total;
  }

  std::uint64_t nodes_visited() const override {
    return visits_.load(std::memory_order_relaxed);
  }

 private:
  /// Epoch-stamped scratch for one in-flight replay: the shared color state
  /// plus the model's own working memory, advanced in lockstep.
  struct Scratch {
    explicit Scratch(NodeId n) : color(n), model(n) {}
    void bump() {
      if (color.bump()) model.on_epoch_wrap();
    }
    EpochColorScratch color;
    typename Traits::ReplayScratch model;
  };

  /// RAII lease of a scratch buffer from the engine's free list.
  struct ScratchLease {
    const EngineImpl& eng;
    std::unique_ptr<Scratch> scratch;

    explicit ScratchLease(const EngineImpl& e) : eng(e) {
      {
        std::lock_guard<std::mutex> lock(e.scratch_mu_);
        if (!e.scratch_free_.empty()) {
          scratch = std::move(e.scratch_free_.back());
          e.scratch_free_.pop_back();
        }
      }
      if (scratch == nullptr) {
        scratch = std::make_unique<Scratch>(e.g_.num_nodes());
      }
    }
    ~ScratchLease() {
      std::lock_guard<std::mutex> lock(eng.scratch_mu_);
      eng.scratch_free_.push_back(std::move(scratch));
    }
  };

  void build_sample(std::size_t i) {
    const std::uint64_t seed = sample_seeds_[i];

    // Rumor-only baseline through the reference kernel: the cache must
    // reproduce exactly what simulate() realizes for this sample seed.
    SeedSets seeds;
    seeds.rumors = rumors_;
    DiffusionResult base =
        run_cascade<Traits>(g_, seeds, seed, Traits::config_from(params_));

    std::uint32_t count = 0;
    std::vector<NodeId> infected_targets;
    for (std::size_t b = 0; b < bridge_ends_.size(); ++b) {
      if (base.state[bridge_ends_[b]] == NodeState::kInfected) {
        baseline_bits_[i].set(b);
        ++count;
        infected_targets.push_back(bridge_ends_[b]);
      }
    }
    baseline_count_[i] = count;

    Traits::build_cache_sample(g_, shared_, seed, std::move(base),
                               infected_targets, params_, samples_[i]);
  }

  void seed_protector(NodeId v, EpochColorScratch& color) const {
    LCRB_REQUIRE(v < g_.num_nodes(), "protector id out of range");
    LCRB_REQUIRE(!is_rumor_.test(v), "protector seed collides with a rumor");
    LCRB_REQUIRE(color.color_epoch[v] != color.epoch,
                 "duplicate protector seed");
    color.set(v, kColorP);
  }

  const G& g_;
  SigmaConfig cfg_;
  RealizationParams params_;
  std::vector<NodeId> rumors_;
  std::vector<NodeId> bridge_ends_;
  std::vector<std::uint64_t> sample_seeds_;
  DynamicBitset is_rumor_;

  typename Traits::CacheShared shared_;
  std::vector<typename Traits::CacheSample> samples_;

  std::vector<DynamicBitset> baseline_bits_;
  std::vector<std::uint32_t> baseline_count_;

  mutable std::mutex scratch_mu_;
  mutable std::vector<std::unique_ptr<Scratch>> scratch_free_;
  mutable std::atomic<std::uint64_t> visits_{0};
};

}  // namespace

bool SigmaEngine::supports(DiffusionModel model) {
  return dispatch_model(model,
                        [](auto t) { return decltype(t)::kSupportsCache; });
}

std::size_t SigmaEngine::estimated_bytes(GraphRef g,
                                         const SigmaConfig& cfg) {
  return dispatch_model(cfg.model, [&](auto t) -> std::size_t {
    using T = decltype(t);
    if constexpr (T::kSupportsCache) {
      return g.visit([&](const auto& gr) {
        return T::estimated_cache_bytes(gr, cfg.samples, cfg.max_hops);
      });
    } else {
      return 0;
    }
  });
}

SigmaEngine::SigmaEngine(GraphRef g, std::span<const NodeId> rumors,
                         std::span<const NodeId> bridge_ends,
                         std::span<const std::uint64_t> sample_seeds,
                         const SigmaConfig& cfg, ThreadPool* pool) {
  // Two-level dispatch, resolved once per engine: model x backend picks the
  // fully concrete EngineImpl; replays then run template-specialized code.
  impl_ = dispatch_model(cfg.model, [&](auto t) -> std::unique_ptr<Base> {
    using T = decltype(t);
    if constexpr (T::kSupportsCache) {
      return g.visit([&](const auto& gr) -> std::unique_ptr<Base> {
        using Gr = std::decay_t<decltype(gr)>;
        return std::make_unique<EngineImpl<T, Gr>>(gr, rumors, bridge_ends,
                                                   sample_seeds, cfg, pool);
      });
    } else {
      throw Error("model has no realization cache");
    }
  });
}

SigmaEngine::~SigmaEngine() = default;

SigmaEngine::Outcome SigmaEngine::evaluate(
    std::size_t sample, std::span<const NodeId> protectors) const {
  return impl_->evaluate(sample, protectors);
}

std::uint32_t SigmaEngine::baseline_infected(std::size_t sample) const {
  return impl_->baseline_infected(sample);
}

const DynamicBitset& SigmaEngine::baseline_bits(std::size_t sample) const {
  return impl_->baseline_bits(sample);
}

std::size_t SigmaEngine::realization_bytes() const {
  return impl_->realization_bytes();
}

std::uint64_t SigmaEngine::nodes_visited() const {
  return impl_->nodes_visited();
}

}  // namespace lcrb
