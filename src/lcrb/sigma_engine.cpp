#include "lcrb/sigma_engine.h"

#include <algorithm>

#include "diffusion/ic.h"
#include "diffusion/lt.h"
#include "diffusion/opoao.h"
#include "util/error.h"

namespace lcrb {

namespace {

constexpr std::uint8_t kColorP = 0;
constexpr std::uint8_t kColorR = 1;

}  // namespace

// Epoch-stamped scratch for one in-flight replay. An entry of any stamped
// array is valid only when its epoch equals the current one, so "clearing"
// between evaluations is a single counter bump instead of O(n) writes.
struct SigmaEngine::Scratch {
  std::uint32_t epoch = 0;
  std::vector<std::uint32_t> color_epoch;  ///< node touched this replay
  std::vector<std::uint8_t> color;         ///< kColorP / kColorR when touched
  // OPOAO: pick-table rows of colored nodes with out-edges, activation order
  std::vector<std::uint32_t> p_pool, r_pool;
  // IC
  std::vector<std::uint32_t> dist;  ///< BFS arrival (touched nodes only)
  std::vector<NodeId> queue;
  // LT
  std::vector<std::uint32_t> w_epoch;
  std::vector<double> wp, wi;
  std::vector<NodeId> frontier, next_frontier, candidates;

  void bump() {
    if (++epoch == 0) {
      // uint32 wrapped (once per ~4e9 replays): stale stamps could collide,
      // so do the one real clear.
      std::fill(color_epoch.begin(), color_epoch.end(), 0u);
      std::fill(w_epoch.begin(), w_epoch.end(), 0u);
      epoch = 1;
    }
  }
};

/// RAII lease of a scratch buffer from the engine's free list.
struct SigmaEngine::ScratchLease {
  const SigmaEngine& eng;
  std::unique_ptr<Scratch> scratch;

  explicit ScratchLease(const SigmaEngine& e) : eng(e) {
    {
      std::lock_guard<std::mutex> lock(e.scratch_mu_);
      if (!e.scratch_free_.empty()) {
        scratch = std::move(e.scratch_free_.back());
        e.scratch_free_.pop_back();
      }
    }
    if (scratch == nullptr) {
      scratch = std::make_unique<Scratch>();
      const std::size_t n = e.g_.num_nodes();
      scratch->color_epoch.assign(n, 0);
      scratch->color.assign(n, 0);
      switch (e.cfg_.model) {
        case DiffusionModel::kOpoao:
          break;  // pools grow on demand
        case DiffusionModel::kIc:
          scratch->dist.assign(n, 0);
          break;
        case DiffusionModel::kLt:
          scratch->w_epoch.assign(n, 0);
          scratch->wp.assign(n, 0.0);
          scratch->wi.assign(n, 0.0);
          break;
        case DiffusionModel::kDoam: break;  // unreachable: unsupported
      }
    }
  }
  ~ScratchLease() {
    std::lock_guard<std::mutex> lock(eng.scratch_mu_);
    eng.scratch_free_.push_back(std::move(scratch));
  }
};

bool SigmaEngine::supports(DiffusionModel model) {
  switch (model) {
    case DiffusionModel::kOpoao:
    case DiffusionModel::kIc:
    case DiffusionModel::kLt:
      return true;
    case DiffusionModel::kDoam:
      return false;
  }
  return false;
}

std::size_t SigmaEngine::estimated_bytes(const DiGraph& g,
                                         const SigmaConfig& cfg) {
  const std::size_t n = g.num_nodes();
  const std::size_t s = cfg.samples;
  switch (cfg.model) {
    case DiffusionModel::kOpoao: {
      std::size_t rows = 0;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (g.out_degree(v) > 0) ++rows;
      }
      return s * (rows * cfg.max_hops * sizeof(NodeId) +
                  n * (2 * sizeof(std::uint32_t)));
    }
    case DiffusionModel::kIc:
      return s * (static_cast<std::size_t>(g.num_edges()) * sizeof(NodeId) +
                  (n + 1) * sizeof(std::uint32_t) +
                  n * sizeof(std::uint32_t));
    case DiffusionModel::kLt:
      return s * n * sizeof(double) + n * sizeof(double);
    case DiffusionModel::kDoam:
      return 0;
  }
  return 0;
}

SigmaEngine::SigmaEngine(const DiGraph& g, std::span<const NodeId> rumors,
                         std::span<const NodeId> bridge_ends,
                         std::span<const std::uint64_t> sample_seeds,
                         const SigmaConfig& cfg, ThreadPool* pool)
    : g_(g),
      cfg_(cfg),
      rumors_(rumors.begin(), rumors.end()),
      bridge_ends_(bridge_ends.begin(), bridge_ends.end()),
      sample_seeds_(sample_seeds.begin(), sample_seeds.end()),
      is_rumor_(g.num_nodes()),
      hops_(cfg.max_hops) {
  LCRB_REQUIRE(supports(cfg_.model), "model has no realization cache");
  LCRB_REQUIRE(sample_seeds_.size() == cfg_.samples,
               "one sample seed per sample required");
  for (NodeId r : rumors_) {
    LCRB_REQUIRE(r < g_.num_nodes(), "rumor id out of range");
    is_rumor_.set(r);
  }

  const std::size_t samples = cfg_.samples;
  baseline_bits_.assign(samples, DynamicBitset(bridge_ends_.size()));
  baseline_count_.assign(samples, 0);

  switch (cfg_.model) {
    case DiffusionModel::kOpoao: {
      pick_row_.assign(g_.num_nodes(), kUnreached);
      for (NodeId v = 0; v < g_.num_nodes(); ++v) {
        if (g_.out_degree(v) > 0) {
          pick_row_[v] = static_cast<std::uint32_t>(num_rows_++);
        }
      }
      op_.resize(samples);
      break;
    }
    case DiffusionModel::kIc:
      ic_.resize(samples);
      break;
    case DiffusionModel::kLt: {
      inv_in_deg_.assign(g_.num_nodes(), 0.0);
      for (NodeId v = 0; v < g_.num_nodes(); ++v) {
        if (g_.in_degree(v) > 0) {
          inv_in_deg_[v] = 1.0 / static_cast<double>(g_.in_degree(v));
        }
      }
      lt_.resize(samples);
      break;
    }
    case DiffusionModel::kDoam: break;
  }

  // Every per-sample cache writes only its own slots, so parallel
  // construction yields identical data to serial.
  auto build = [this](std::size_t i) { build_sample(i); };
  if (pool != nullptr && samples > 1) {
    pool->parallel_for(samples, build);
  } else {
    for (std::size_t i = 0; i < samples; ++i) build(i);
  }
}

SigmaEngine::~SigmaEngine() = default;

void SigmaEngine::build_sample(std::size_t i) {
  const std::uint64_t seed = sample_seeds_[i];

  // Rumor-only baseline through the reference simulator: the cache must
  // reproduce exactly what simulate() realizes for this sample seed.
  MonteCarloConfig mc;
  mc.max_hops = cfg_.max_hops;
  mc.model = cfg_.model;
  mc.ic_edge_prob = cfg_.ic_edge_prob;
  SeedSets seeds;
  seeds.rumors = rumors_;
  DiffusionResult base = simulate(g_, seeds, seed, mc);

  std::uint32_t count = 0;
  for (std::size_t b = 0; b < bridge_ends_.size(); ++b) {
    if (base.state[bridge_ends_[b]] == NodeState::kInfected) {
      baseline_bits_[i].set(b);
      ++count;
    }
  }
  baseline_count_[i] = count;

  switch (cfg_.model) {
    case DiffusionModel::kOpoao: {
      OpoaoSample& sp = op_[i];
      // Pick tables: hash each (seed, v, step) exactly once.
      sp.picks.resize(num_rows_ * hops_);
      for (NodeId v = 0; v < g_.num_nodes(); ++v) {
        const std::uint32_t row = pick_row_[v];
        if (row == kUnreached) continue;
        const auto nbrs = g_.out_neighbors(v);
        for (std::uint32_t t = 1; t <= hops_; ++t) {
          sp.picks[static_cast<std::size_t>(t - 1) * num_rows_ + row] =
              nbrs[opoao_pick_hash(seed, v, t) % nbrs.size()];
        }
      }
      // Baseline schedule: infected nodes bucketed by activation step
      // (counting sort keeps it deterministic: ascending id within a step).
      sp.step_off.assign(static_cast<std::size_t>(hops_) + 2, 0);
      for (NodeId v = 0; v < g_.num_nodes(); ++v) {
        const std::uint32_t t = base.activation_step[v];
        if (t != kUnreached) ++sp.step_off[t + 1];
      }
      for (std::size_t s = 1; s < sp.step_off.size(); ++s) {
        sp.step_off[s] += sp.step_off[s - 1];
      }
      sp.sched.resize(sp.step_off.back());
      {
        std::vector<std::uint32_t> cursor(sp.step_off.begin(),
                                          sp.step_off.end() - 1);
        for (NodeId v = 0; v < g_.num_nodes(); ++v) {
          const std::uint32_t t = base.activation_step[v];
          if (t != kUnreached) sp.sched[cursor[t]++] = v;
        }
      }
      sp.base_step = std::move(base.activation_step);
      break;
    }
    case DiffusionModel::kIc: {
      IcSample& sp = ic_[i];
      sp.live_off.assign(g_.num_nodes() + 1, 0);
      sp.live_tgt.reserve(static_cast<std::size_t>(
          static_cast<double>(g_.num_edges()) * cfg_.ic_edge_prob * 1.1));
      for (NodeId u = 0; u < g_.num_nodes(); ++u) {
        for (NodeId v : g_.out_neighbors(u)) {
          if (ic_arc_live(seed, u, v, cfg_.ic_edge_prob)) {
            sp.live_tgt.push_back(v);
          }
        }
        sp.live_off[u + 1] = static_cast<std::uint32_t>(sp.live_tgt.size());
      }
      sp.live_tgt.shrink_to_fit();
      // Baseline activation steps ARE the live-subgraph BFS distances from
      // the rumor seeds (no competition in the baseline run).
      sp.dist_r = std::move(base.activation_step);
      sp.max_needed = 0;
      for (std::size_t b = 0; b < bridge_ends_.size(); ++b) {
        if (baseline_bits_[i].test(b)) {
          sp.max_needed = std::max(sp.max_needed, sp.dist_r[bridge_ends_[b]]);
        }
      }
      break;
    }
    case DiffusionModel::kLt: {
      LtSample& sp = lt_[i];
      sp.thr.resize(g_.num_nodes());
      for (NodeId v = 0; v < g_.num_nodes(); ++v) {
        sp.thr[v] = lt_node_threshold(seed, v);
      }
      break;
    }
    case DiffusionModel::kDoam: break;
  }
}

std::size_t SigmaEngine::realization_bytes() const {
  std::size_t total = inv_in_deg_.capacity() * sizeof(double) +
                      pick_row_.capacity() * sizeof(std::uint32_t);
  for (const OpoaoSample& sp : op_) {
    total += sp.picks.capacity() * sizeof(NodeId) +
             sp.base_step.capacity() * sizeof(std::uint32_t) +
             sp.sched.capacity() * sizeof(NodeId) +
             sp.step_off.capacity() * sizeof(std::uint32_t);
  }
  for (const IcSample& sp : ic_) {
    total += sp.live_off.capacity() * sizeof(std::uint32_t) +
             sp.live_tgt.capacity() * sizeof(NodeId) +
             sp.dist_r.capacity() * sizeof(std::uint32_t);
  }
  for (const LtSample& sp : lt_) total += sp.thr.capacity() * sizeof(double);
  return total;
}

void SigmaEngine::seed_protector(NodeId v, Scratch& s) const {
  LCRB_REQUIRE(v < g_.num_nodes(), "protector id out of range");
  LCRB_REQUIRE(!is_rumor_.test(v), "protector seed collides with a rumor");
  LCRB_REQUIRE(s.color_epoch[v] != s.epoch, "duplicate protector seed");
  s.color_epoch[v] = s.epoch;
  s.color[v] = kColorP;
}

SigmaEngine::Outcome SigmaEngine::count_bridge_ends(std::size_t i,
                                                    const Scratch& s) const {
  Outcome o;
  const DynamicBitset& base = baseline_bits_[i];
  for (std::size_t b = 0; b < bridge_ends_.size(); ++b) {
    const NodeId v = bridge_ends_[b];
    const bool infected =
        s.color_epoch[v] == s.epoch && s.color[v] == kColorR;
    if (!infected) {
      ++o.uninfected;
      if (base.test(b)) ++o.saved;
    }
  }
  return o;
}

SigmaEngine::Outcome SigmaEngine::evaluate(
    std::size_t sample, std::span<const NodeId> protectors) const {
  LCRB_REQUIRE(sample < cfg_.samples, "sample index out of range");
  ScratchLease lease(*this);
  Scratch& s = *lease.scratch;
  s.bump();
  switch (cfg_.model) {
    case DiffusionModel::kOpoao: return eval_opoao(sample, protectors, s);
    case DiffusionModel::kIc: return eval_ic(sample, protectors, s);
    case DiffusionModel::kLt: return eval_lt(sample, protectors, s);
    case DiffusionModel::kDoam: break;
  }
  throw Error("model has no realization cache");
}

// ---------------------------------------------------------------------------
// OPOAO replay.
//
// Phase 1: the rumor side is fed from the cached baseline schedule — exact
// as long as no protector claim cuts a node the baseline rumor cascade
// claims later. When cascade P claims node v with finite baseline rumor time
// T0(v), the schedule is provably valid for every step before T0(v) (picks
// are color-independent, so rumor picks cannot change before the first
// voided baseline activation); the earliest such T0 is the divergence step
// D. From step D on, the rumor side is simulated from the pick tables like
// the protector side (phase 2).
//
// The replay deliberately does NOT mirror simulate_opoao()'s potential
// bookkeeping (per-node counts of uncolored out-neighbors): that machinery
// only drives the simulator's early exit and costs in+out neighbor scans for
// every activation. Claims never depend on it, so the replay tracks a single
// uncolored-node counter instead — reaching zero is an exact stop — and
// each pooled node costs one table lookup per step, touching no adjacency.
// ---------------------------------------------------------------------------
SigmaEngine::Outcome SigmaEngine::eval_opoao(std::size_t i,
                                             std::span<const NodeId> protectors,
                                             Scratch& s) const {
  const OpoaoSample& sp = op_[i];
  const std::uint32_t e = s.epoch;
  s.p_pool.clear();
  s.r_pool.clear();
  std::uint32_t uncolored = static_cast<std::uint32_t>(g_.num_nodes());

  auto colored = [&](NodeId v) { return s.color_epoch[v] == e; };
  // Pools hold pick-table ROW indices, not node ids: the replay loop then
  // reads only pool[], the step's pick slab, and color stamps.
  auto color_r = [&](NodeId v) {
    s.color_epoch[v] = e;
    s.color[v] = kColorR;
    --uncolored;
    if (pick_row_[v] != kUnreached) s.r_pool.push_back(pick_row_[v]);
  };

  // Step 0: protector seeds, then the baseline's rumor seeds.
  for (NodeId v : protectors) {
    seed_protector(v, s);
    --uncolored;
    if (pick_row_[v] != kUnreached) s.p_pool.push_back(pick_row_[v]);
  }
  for (std::uint32_t k = sp.step_off[0]; k < sp.step_off[1]; ++k) {
    color_r(sp.sched[k]);
  }

  std::uint32_t divergence = kUnreached;
  std::size_t sched_pos = sp.step_off[1];
  const std::size_t sched_end = sp.sched.size();
  std::uint64_t ops = 0;

  for (std::uint32_t t = 1; t <= hops_ && uncolored > 0; ++t) {
    if (s.p_pool.empty() && divergence == kUnreached) {
      // P can never claim again and never disturbed a baseline-rumor node,
      // so every baseline node still activates exactly on schedule: the
      // rest of the cascade IS the baseline. Bulk-apply and stop.
      ops += sched_end - sched_pos;
      for (std::size_t k = sched_pos; k < sched_end; ++k) {
        const NodeId v = sp.sched[k];
        if (!colored(v)) {
          s.color_epoch[v] = e;
          s.color[v] = kColorR;
        }
      }
      break;
    }
    const NodeId* step_picks =
        sp.picks.data() + static_cast<std::size_t>(t - 1) * num_rows_;

    // Protector picks (first within the step: P wins simultaneous arrival).
    // Snapshot the pool size — nodes claimed at step t pick from t+1 on.
    const std::size_t psz = s.p_pool.size();
    ops += psz;
    for (std::size_t idx = 0; idx < psz; ++idx) {
      const NodeId tgt = step_picks[s.p_pool[idx]];
      if (!colored(tgt)) {
        s.color_epoch[tgt] = e;
        s.color[tgt] = kColorP;  // claim immediately
        --uncolored;
        if (pick_row_[tgt] != kUnreached) s.p_pool.push_back(pick_row_[tgt]);
        const std::uint32_t t0 = sp.base_step[tgt];
        if (t0 < divergence) divergence = t0;
      }
    }

    // Rumor side: replay the baseline schedule while it is valid, simulate
    // from the pick tables once it is not.
    if (t < divergence) {
      const std::uint32_t off_end = sp.step_off[t + 1];
      ops += off_end - sched_pos;
      for (; sched_pos < off_end; ++sched_pos) {
        const NodeId v = sp.sched[sched_pos];
        if (!colored(v)) color_r(v);
      }
    } else {
      const std::size_t rsz = s.r_pool.size();
      ops += rsz;
      for (std::size_t idx = 0; idx < rsz; ++idx) {
        const NodeId tgt = step_picks[s.r_pool[idx]];
        if (!colored(tgt)) color_r(tgt);
      }
    }
  }

  visits_.fetch_add(ops, std::memory_order_relaxed);
  return count_bridge_ends(i, s);
}

// ---------------------------------------------------------------------------
// IC replay: with one homogeneous edge probability the competitive race on
// the realized live subgraph is decided by plain BFS distances — node v ends
// with the cascade whose seed set is closer in the live subgraph, P on ties
// (docs/algorithms.md gives the induction). d_R is cached from the baseline,
// so an evaluation is a single protector-side BFS, truncated at the deepest
// baseline-infected bridge end (later arrivals cannot save anything).
// ---------------------------------------------------------------------------
SigmaEngine::Outcome SigmaEngine::eval_ic(std::size_t i,
                                          std::span<const NodeId> protectors,
                                          Scratch& s) const {
  const IcSample& sp = ic_[i];
  const std::uint32_t e = s.epoch;

  s.queue.clear();
  for (NodeId v : protectors) {
    seed_protector(v, s);
    s.dist[v] = 0;
    s.queue.push_back(v);
  }

  const std::uint32_t depth_cap = std::min(hops_, sp.max_needed);
  std::uint64_t ops = 0;
  for (std::size_t head = 0; head < s.queue.size(); ++head) {
    const NodeId u = s.queue[head];
    const std::uint32_t du = s.dist[u];
    ++ops;
    if (du >= depth_cap) continue;
    const std::uint32_t begin = sp.live_off[u], end = sp.live_off[u + 1];
    ops += end - begin;
    for (std::uint32_t k = begin; k < end; ++k) {
      const NodeId v = sp.live_tgt[k];
      if (s.color_epoch[v] != e) {
        s.color_epoch[v] = e;
        s.color[v] = kColorP;
        s.dist[v] = du + 1;
        s.queue.push_back(v);
      }
    }
  }

  visits_.fetch_add(ops, std::memory_order_relaxed);

  Outcome o;
  const DynamicBitset& base = baseline_bits_[i];
  for (std::size_t b = 0; b < bridge_ends_.size(); ++b) {
    if (!base.test(b)) {
      // Never rumor-reached in this realization; protectors cannot hurt.
      ++o.uninfected;
      continue;
    }
    const NodeId v = bridge_ends_[b];
    if (s.color_epoch[v] == e && s.dist[v] <= sp.dist_r[v]) {
      ++o.saved;
      ++o.uninfected;
    }
  }
  return o;
}

// ---------------------------------------------------------------------------
// LT replay: identical control flow to simulate_competitive_lt, with the
// threshold draw and the 1/d_in arc weights served from the cache. The
// iteration order (and hence every floating-point sum) matches the legacy
// simulator exactly, so outcomes are bit-identical.
// ---------------------------------------------------------------------------
SigmaEngine::Outcome SigmaEngine::eval_lt(std::size_t i,
                                          std::span<const NodeId> protectors,
                                          Scratch& s) const {
  const LtSample& sp = lt_[i];
  const std::uint32_t e = s.epoch;

  s.frontier.clear();
  for (NodeId v : protectors) {
    seed_protector(v, s);
    s.frontier.push_back(v);
  }
  for (NodeId v : rumors_) {
    s.color_epoch[v] = e;
    s.color[v] = kColorR;
    s.frontier.push_back(v);
  }

  auto colored = [&](NodeId v) { return s.color_epoch[v] == e; };

  std::uint64_t ops = 0;
  for (std::uint32_t t = 1; t <= hops_ && !s.frontier.empty(); ++t) {
    s.candidates.clear();
    for (NodeId u : s.frontier) {
      const bool prot = s.color[u] == kColorP;
      ops += g_.out_degree(u);
      for (NodeId v : g_.out_neighbors(u)) {
        if (colored(v)) continue;
        if (s.w_epoch[v] != e) {
          s.w_epoch[v] = e;
          s.wp[v] = 0.0;
          s.wi[v] = 0.0;
        }
        (prot ? s.wp[v] : s.wi[v]) += inv_in_deg_[v];
        s.candidates.push_back(v);
      }
    }
    s.next_frontier.clear();
    for (NodeId v : s.candidates) {
      if (colored(v)) continue;  // dedup within step
      if (s.wp[v] + s.wi[v] >= sp.thr[v]) {
        s.color_epoch[v] = e;
        s.color[v] = (s.wp[v] >= s.wi[v]) ? kColorP : kColorR;
        s.next_frontier.push_back(v);
      }
    }
    s.frontier.swap(s.next_frontier);
  }

  visits_.fetch_add(ops, std::memory_order_relaxed);
  return count_bridge_ends(i, s);
}

}  // namespace lcrb
