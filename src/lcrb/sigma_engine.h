// Sample-realization evaluation engine behind SigmaEstimator.
//
// The estimator's common-random-number coupling (paper §V-A, Lemma 4) fixes
// ALL randomness of sample i the moment the sample seed is drawn: OPOAO's
// pick stream, the IC family's live-edge coins, LT's node thresholds. The
// legacy path re-derives that randomness by hashing inside every end-to-end
// simulation — O(rounds x candidates x samples) full simulations in the
// greedy. This engine materializes each sample's realization once at
// construction and turns every subsequent sigma evaluation into a cheap
// deterministic replay.
//
// The engine itself is model-generic: everything model-specific — what a
// cached sample IS (pick tables, live subgraphs, thresholds), how a replay
// runs, and how a bridge end's verdict is read — comes from the model's
// traits (src/diffusion/model_traits.h, capability kSupportsCache). The
// engine contributes the shared machinery: per-sample baselines via
// run_cascade, protector-seed validation and color stamping, epoch-stamped
// scratch leasing (no per-evaluation allocation, no O(n) clearing), the
// bridge-end counting loop, and byte accounting. A model compiled against
// the cache contract is cross-checked against its forward simulator in
// tests/lcrb/sigma_engine_test.cpp — same outcomes, bit for bit.
//
// DOAM is not cached here (kSupportsCache = false: it is deterministic and
// the legacy path already collapses it) — SigmaEstimator falls back to
// simulate() for it.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "lcrb/sigma.h"
#include "util/bitset.h"

namespace lcrb {

class SigmaEngine {
 public:
  /// Per-sample evaluation result, in bridge-end counts. Counts are exact
  /// integers, so any summation order over samples is bit-identical.
  struct Outcome {
    std::uint32_t saved = 0;       ///< infected in baseline, uninfected now
    std::uint32_t uninfected = 0;  ///< bridge ends ending uninfected
  };

  /// True for models whose traits implement the cache contract
  /// (Traits::kSupportsCache — OPOAO, IC, LT, WC).
  static bool supports(DiffusionModel model);

  /// Upper-bound estimate of the realization-cache footprint, used by
  /// SigmaEstimator to fall back to the legacy path on oversized requests
  /// (SigmaConfig::max_cache_bytes).
  static std::size_t estimated_bytes(GraphRef g, const SigmaConfig& cfg);

  /// Builds every sample's realization (and the rumor-only baselines) up
  /// front; `sample_seeds` must be the estimator's per-sample seeds.
  /// Construction parallelizes over samples when `pool` is given; the cached
  /// data is identical regardless.
  SigmaEngine(GraphRef g, std::span<const NodeId> rumors,
              std::span<const NodeId> bridge_ends,
              std::span<const std::uint64_t> sample_seeds,
              const SigmaConfig& cfg, ThreadPool* pool);
  ~SigmaEngine();

  SigmaEngine(const SigmaEngine&) = delete;
  SigmaEngine& operator=(const SigmaEngine&) = delete;

  /// Replays sample i with cascade P seeded at `protectors`. Thread-safe:
  /// concurrent evaluations lease independent scratch buffers. Throws
  /// lcrb::Error if a protector seed is out of range, duplicated, or
  /// collides with a rumor seed (matching simulate()'s validation).
  Outcome evaluate(std::size_t sample,
                   std::span<const NodeId> protectors) const;

  /// Bridge ends infected in sample i with no protectors at all.
  std::uint32_t baseline_infected(std::size_t sample) const;
  /// Bit b set iff bridge_ends[b] is infected in sample i's baseline.
  const DynamicBitset& baseline_bits(std::size_t sample) const;

  /// Actual bytes held by the realization caches (for logging/benchmarks).
  std::size_t realization_bytes() const;

  /// Cumulative elementary node-touch operations across all evaluations
  /// (table lookups / arcs scanned / weight updates) — the common cost
  /// currency the MC-vs-RIS ablation compares. Relaxed counter: exact once
  /// concurrent evaluations have finished.
  std::uint64_t nodes_visited() const;

  /// Model-generic interface the per-traits implementation fulfills
  /// (defined in sigma_engine.cpp; public so the templated implementation
  /// can derive from it).
  class Base;

 private:
  std::unique_ptr<Base> impl_;
};

}  // namespace lcrb
