// Sample-realization evaluation engine behind SigmaEstimator.
//
// The estimator's common-random-number coupling (paper §V-A, Lemma 4) fixes
// ALL randomness of sample i the moment the sample seed is drawn: OPOAO's
// pick stream, IC's live-edge coins, LT's node thresholds. The legacy path
// re-derives that randomness by hashing inside every end-to-end simulation —
// O(rounds x candidates x samples) full simulations in the greedy. This
// engine materializes each sample's realization once at construction and
// turns every subsequent sigma evaluation into a cheap deterministic replay:
//
//  * OPOAO — per-node pick tables over the max_hops steps (each
//    (seed, v, step) hashed exactly once, stored in a flat row-per-node
//    array), plus the rumor-only baseline activation schedule. A replay
//    simulates only the protector cascade and feeds the rumor side from the
//    cached schedule until the first protector claim that invalidates it
//    (the "divergence step"), after which the rumor side is simulated from
//    the tables too. Sound because picks are color- and state-independent.
//  * IC — the live-edge subgraph in CSR form plus baseline rumor BFS
//    distances d_R. With homogeneous probabilities the winner at any node is
//    argmin(d_R, d_P) with P on ties (see docs/algorithms.md for the proof),
//    so an evaluation is a single protector-side BFS over cached live arcs.
//  * LT — the per-node threshold draw; the replay mirrors the legacy loop
//    order exactly so the floating-point weight sums are bit-identical.
//
// Replays run on epoch-stamped scratch buffers leased from a small pool: no
// per-evaluation allocation and no O(n) clearing. Results are exactly the
// outcomes the legacy simulate()-based path produces for the same sample
// seeds — cross-checked in tests/lcrb/sigma_engine_test.cpp.
//
// DOAM is not cached here (it is deterministic; the legacy path already
// collapses it) — SigmaEstimator falls back to simulate() for it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "lcrb/sigma.h"
#include "util/bitset.h"

namespace lcrb {

class SigmaEngine {
 public:
  /// Per-sample evaluation result, in bridge-end counts. Counts are exact
  /// integers, so any summation order over samples is bit-identical.
  struct Outcome {
    std::uint32_t saved = 0;       ///< infected in baseline, uninfected now
    std::uint32_t uninfected = 0;  ///< bridge ends ending uninfected
  };

  /// True for the models the engine can cache (OPOAO, IC, LT).
  static bool supports(DiffusionModel model);

  /// Upper-bound estimate of the realization-cache footprint, used by
  /// SigmaEstimator to fall back to the legacy path on oversized requests
  /// (SigmaConfig::max_cache_bytes).
  static std::size_t estimated_bytes(const DiGraph& g, const SigmaConfig& cfg);

  /// Builds every sample's realization (and the rumor-only baselines) up
  /// front; `sample_seeds` must be the estimator's per-sample seeds.
  /// Construction parallelizes over samples when `pool` is given; the cached
  /// data is identical regardless.
  SigmaEngine(const DiGraph& g, std::span<const NodeId> rumors,
              std::span<const NodeId> bridge_ends,
              std::span<const std::uint64_t> sample_seeds,
              const SigmaConfig& cfg, ThreadPool* pool);
  ~SigmaEngine();

  SigmaEngine(const SigmaEngine&) = delete;
  SigmaEngine& operator=(const SigmaEngine&) = delete;

  /// Replays sample i with cascade P seeded at `protectors`. Thread-safe:
  /// concurrent evaluations lease independent scratch buffers. Throws
  /// lcrb::Error if a protector seed is out of range, duplicated, or
  /// collides with a rumor seed (matching simulate()'s validation).
  Outcome evaluate(std::size_t sample,
                   std::span<const NodeId> protectors) const;

  /// Bridge ends infected in sample i with no protectors at all.
  std::uint32_t baseline_infected(std::size_t sample) const {
    return baseline_count_[sample];
  }
  /// Bit b set iff bridge_ends[b] is infected in sample i's baseline.
  const DynamicBitset& baseline_bits(std::size_t sample) const {
    return baseline_bits_[sample];
  }

  /// Actual bytes held by the realization caches (for logging/benchmarks).
  std::size_t realization_bytes() const;

  /// Cumulative elementary node-touch operations across all evaluations
  /// (table lookups / arcs scanned / weight updates) — the common cost
  /// currency the MC-vs-RIS ablation compares. Relaxed counter: exact once
  /// concurrent evaluations have finished.
  std::uint64_t nodes_visited() const {
    return visits_.load(std::memory_order_relaxed);
  }

 private:
  struct Scratch;
  struct ScratchLease;

  /// OPOAO: one sample's materialized randomness + baseline schedule.
  struct OpoaoSample {
    /// Flat pick table, step-major: entry [(t-1) * num_rows_ + r] with
    /// r = pick_row_[v] is the node v would target at step t. Step-major
    /// keeps each step's replay inside one contiguous slab of the table
    /// (node-major strides the whole table every step and thrashes cache).
    /// Rows exist only for out-degree>0 nodes.
    std::vector<NodeId> picks;
    /// Rumor-only activation step per node (kUnreached if never infected).
    std::vector<std::uint32_t> base_step;
    /// Baseline-infected nodes ordered by (step, id) — the replay schedule.
    std::vector<NodeId> sched;
    /// sched slice for step s is [step_off[s], step_off[s+1]).
    std::vector<std::uint32_t> step_off;
  };

  /// IC: one sample's live-edge subgraph + baseline rumor distances.
  struct IcSample {
    std::vector<std::uint32_t> live_off;  ///< n+1 CSR offsets
    std::vector<NodeId> live_tgt;         ///< live arc targets
    std::vector<std::uint32_t> dist_r;    ///< baseline rumor BFS distance
    std::uint32_t max_needed = 0;  ///< max d_R over baseline-infected ends
  };

  /// LT: one sample's threshold draw.
  struct LtSample {
    std::vector<double> thr;
  };

  void build_sample(std::size_t i);
  Outcome eval_opoao(std::size_t i, std::span<const NodeId> protectors,
                     Scratch& s) const;
  Outcome eval_ic(std::size_t i, std::span<const NodeId> protectors,
                  Scratch& s) const;
  Outcome eval_lt(std::size_t i, std::span<const NodeId> protectors,
                  Scratch& s) const;
  Outcome count_bridge_ends(std::size_t i, const Scratch& s) const;
  void seed_protector(NodeId v, Scratch& s) const;

  const DiGraph& g_;
  SigmaConfig cfg_;
  std::vector<NodeId> rumors_;
  std::vector<NodeId> bridge_ends_;
  std::vector<std::uint64_t> sample_seeds_;
  DynamicBitset is_rumor_;
  std::uint32_t hops_ = 0;  ///< steps cached/replayed: 1..hops_

  /// OPOAO pick-table row per node; kUnreached for out-degree-0 nodes.
  std::vector<std::uint32_t> pick_row_;
  std::size_t num_rows_ = 0;
  std::vector<double> inv_in_deg_;  ///< LT arc weight 1/d_in(v), shared

  std::vector<OpoaoSample> op_;
  std::vector<IcSample> ic_;
  std::vector<LtSample> lt_;

  std::vector<DynamicBitset> baseline_bits_;
  std::vector<std::uint32_t> baseline_count_;

  mutable std::mutex scratch_mu_;
  mutable std::vector<std::unique_ptr<Scratch>> scratch_free_;
  mutable std::atomic<std::uint64_t> visits_{0};
};

}  // namespace lcrb
