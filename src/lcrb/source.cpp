#include "lcrb/source.h"

#include "graph/ef_graph.h"
#include "graph/graph.h"

#include <algorithm>

#include "graph/subgraph.h"
#include "graph/traversal.h"
#include "util/error.h"

namespace lcrb {

namespace {

/// Distances from every infected node to every other, inside the induced
/// subgraph. dist[i] is the BFS row for source i (local ids).
std::vector<std::vector<std::uint32_t>> pairwise_distances(
    const DiGraph& sub) {
  std::vector<std::vector<std::uint32_t>> dist(sub.num_nodes());
  for (NodeId s = 0; s < sub.num_nodes(); ++s) {
    const NodeId src[] = {s};
    dist[s] = bfs_forward(sub, src).dist;
  }
  return dist;
}

/// Score of adding nothing: per-node best distance from the chosen set.
struct GreedyScore {
  std::uint32_t radius;
  std::uint64_t sum;
  std::size_t unreachable;
};

GreedyScore score_assignment(const std::vector<std::uint32_t>& best) {
  GreedyScore s{0, 0, 0};
  for (std::uint32_t d : best) {
    if (d == kUnreached) {
      ++s.unreachable;
    } else {
      s.radius = std::max(s.radius, d);
      s.sum += d;
    }
  }
  return s;
}

/// Lexicographic comparison under the chosen objective: fewer unreachable
/// always wins, then the score, then the tie-break by radius/sum.
bool better(SourceScore score, const GreedyScore& a, const GreedyScore& b) {
  if (a.unreachable != b.unreachable) return a.unreachable < b.unreachable;
  if (score == SourceScore::kEccentricity) {
    if (a.radius != b.radius) return a.radius < b.radius;
    return a.sum < b.sum;
  }
  if (a.sum != b.sum) return a.sum < b.sum;
  return a.radius < b.radius;
}

}  // namespace

template <GraphView G>
SourceEstimate locate_sources(const G& g,
                              std::span<const NodeId> infected,
                              const SourceLocateConfig& cfg) {
  LCRB_REQUIRE(!infected.empty(), "snapshot has no infected nodes");
  LCRB_REQUIRE(cfg.num_sources >= 1, "need at least one source");
  LCRB_REQUIRE(infected.size() <= cfg.max_snapshot,
               "snapshot exceeds max_snapshot cap");

  const InducedSubgraph sub = induced_subgraph(g, infected);
  const auto dist = pairwise_distances(sub.graph);
  const NodeId n = sub.graph.num_nodes();

  // Greedy k-center / k-median: repeatedly add the candidate that most
  // improves the assignment. For k=1 this is the exact Jordan center /
  // centroid.
  std::vector<std::uint32_t> best_dist(n, kUnreached);
  std::vector<NodeId> chosen;  // local ids
  for (std::size_t round = 0; round < cfg.num_sources && chosen.size() < n;
       ++round) {
    NodeId best_candidate = kInvalidNode;
    GreedyScore best_score{0, 0, 0};
    std::vector<std::uint32_t> trial(n);
    for (NodeId c = 0; c < n; ++c) {
      if (std::find(chosen.begin(), chosen.end(), c) != chosen.end()) continue;
      for (NodeId v = 0; v < n; ++v) {
        trial[v] = std::min(best_dist[v], dist[c][v]);
      }
      const GreedyScore s = score_assignment(trial);
      if (best_candidate == kInvalidNode || better(cfg.score, s, best_score)) {
        best_candidate = c;
        best_score = s;
      }
    }
    if (best_candidate == kInvalidNode) break;
    chosen.push_back(best_candidate);
    for (NodeId v = 0; v < n; ++v) {
      best_dist[v] = std::min(best_dist[v], dist[best_candidate][v]);
    }
  }

  SourceEstimate out;
  out.sources.reserve(chosen.size());
  for (NodeId c : chosen) out.sources.push_back(sub.to_original[c]);
  std::sort(out.sources.begin(), out.sources.end());

  const GreedyScore final_score = score_assignment(best_dist);
  out.radius = final_score.radius;
  out.unreachable = final_score.unreachable;
  const std::size_t reachable = n - final_score.unreachable;
  out.mean_distance =
      reachable == 0 ? 0.0
                     : static_cast<double>(final_score.sum) /
                           static_cast<double>(reachable);
  return out;
}

template <GraphView G>
std::vector<std::uint32_t> source_error(const G& g,
                                        std::span<const NodeId> truth,
                                        std::span<const NodeId> estimate) {
  LCRB_REQUIRE(!estimate.empty(), "no estimated sources");
  // Hop distance in the undirected sense would be forgiving; use forward
  // distance from the true source (the direction the rumor traveled).
  std::vector<std::uint32_t> out;
  out.reserve(truth.size());
  for (NodeId t : truth) {
    LCRB_REQUIRE(t < g.num_nodes(), "true source out of range");
    const NodeId src[] = {t};
    const BfsResult bfs = bfs_forward(g, src);
    std::uint32_t best = kUnreached;
    for (NodeId e : estimate) {
      LCRB_REQUIRE(e < g.num_nodes(), "estimated source out of range");
      best = std::min(best, bfs.dist[e]);
    }
    out.push_back(best);
  }
  return out;
}

#define LCRB_INSTANTIATE_SOURCE(G)                                            \
  template SourceEstimate locate_sources<G>(const G&,                         \
                                            std::span<const NodeId>,          \
                                            const SourceLocateConfig&);       \
  template std::vector<std::uint32_t> source_error<G>(                        \
      const G&, std::span<const NodeId>, std::span<const NodeId>);

LCRB_INSTANTIATE_SOURCE(DiGraph)
LCRB_INSTANTIATE_SOURCE(EfGraph)

#undef LCRB_INSTANTIATE_SOURCE

}  // namespace lcrb
