// Rumor-source localization (the paper's §VII "another direction": locating
// rumor originators from an observed infection).
//
// Given a snapshot of infected nodes, estimate the originators. Under DOAM
// the infection grows as a BFS ball, so the classic estimators apply:
//  * Jordan center — minimize the eccentricity (max hop distance to any
//    infected node, measured inside the infected subgraph),
//  * distance centroid — minimize the sum of distances.
// Multi-source (k > 1) uses the greedy k-center / k-median reduction on the
// infected subgraph.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph_view.h"
#include "util/types.h"

namespace lcrb {

enum class SourceScore : std::uint8_t {
  kEccentricity,  ///< Jordan center (minimax)
  kDistanceSum,   ///< centroid (minisum)
};

struct SourceEstimate {
  std::vector<NodeId> sources;    ///< estimated originators (original ids)
  std::uint32_t radius = 0;       ///< max distance source -> infected node
  double mean_distance = 0.0;     ///< average distance over infected nodes
  /// Infected nodes unreachable from every estimated source inside the
  /// infected subgraph (0 when the snapshot is one weakly-usable region).
  std::size_t unreachable = 0;
};

struct SourceLocateConfig {
  std::size_t num_sources = 1;
  SourceScore score = SourceScore::kEccentricity;
  /// Safety cap: the estimator runs one BFS per infected node, O(|I|*E_I);
  /// larger snapshots are rejected rather than silently slow.
  std::size_t max_snapshot = 20000;
};

/// Estimates the rumor originators from an infected-set snapshot. Candidates
/// are the infected nodes themselves (the true source is always infected —
/// states are progressive). Distances are hop counts in the subgraph induced
/// by the infected set: the rumor can only have traveled through nodes that
/// ended up infected under DOAM's priority rule.
template <GraphView G>
SourceEstimate locate_sources(const G& g,
                              std::span<const NodeId> infected,
                              const SourceLocateConfig& cfg = {});

/// Evaluation helper: hop distance (in the full graph) from each true source
/// to the nearest estimate; kUnreached when no estimate is reachable.
template <GraphView G>
std::vector<std::uint32_t> source_error(const G& g,
                                        std::span<const NodeId> truth,
                                        std::span<const NodeId> estimate);

}  // namespace lcrb
