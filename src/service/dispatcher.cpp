#include "service/dispatcher.h"

#include <algorithm>
#include <utility>

namespace lcrb::service {

namespace {

/// The tenant a job bills against: explicit request tenant, else the
/// dataset (per-dataset fairness out of the box).
std::string tenant_of(const QueryRequest& req) {
  return req.tenant.empty() ? req.dataset : req.tenant;
}

}  // namespace

Dispatcher::Dispatcher(ExecuteFn execute, std::size_t executors,
                       TenantQuota default_quota,
                       std::map<std::string, TenantQuota> tenant_quotas)
    : execute_(std::move(execute)), default_quota_(default_quota) {
  default_quota_.weight = std::max<std::uint32_t>(default_quota_.weight, 1);
  for (auto& [name, quota] : tenant_quotas) {
    TenantState state;
    state.quota = quota;
    state.quota.weight = std::max<std::uint32_t>(state.quota.weight, 1);
    tenants_.emplace(name, state);
  }
  const std::size_t n = std::max<std::size_t>(executors, 1);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { executor_loop(); });
  }
}

Dispatcher::~Dispatcher() { shutdown(); }

Dispatcher::TenantState& Dispatcher::tenant_state_locked(
    const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    TenantState state;
    state.quota = default_quota_;
    it = tenants_.emplace(tenant, state).first;
  }
  return it->second;
}

Dispatcher::Ticket Dispatcher::submit(QueryRequest req, DoneFn done) {
  const Clock::time_point admitted = Clock::now();  // det-ok[D3]: admission timestamp for deadline bookkeeping, not in result path
  const std::string tenant = tenant_of(req);
  QueryResult rejection;
  bool rejected = false;
  Ticket ticket = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      rejection = QueryResult::make_error(req, ErrorCode::kShutdown,
                                          "service shut down");
      rejected = true;
    } else if (req.deadline_ms == 0) {
      // The unified deterministic case: a spent budget never enters a
      // queue. Same code — and, in v1, the same "deadline exceeded"
      // message — whichever door (run/submit) the request used.
      rejection = QueryResult::make_error(req, ErrorCode::kDeadlineRejected,
                                          "deadline exceeded");
      ++rejected_;
      rejected = true;
    } else {
      TenantState& state = tenant_state_locked(tenant);
      if (state.quota.max_queued != 0 &&
          state.queued >= state.quota.max_queued) {
        rejection = QueryResult::make_error(
            req, ErrorCode::kQueueFull,
            "queue full for tenant '" + tenant + "' (max_queued " +
                std::to_string(state.quota.max_queued) + ")");
        ++shed_;
        rejected = true;
      } else {
        ticket = ++next_ticket_;
        Job job;
        job.admitted = admitted;
        job.ticket = ticket;
        job.tenant = tenant;
        job.done = std::move(done);
        const std::string dataset = req.dataset;
        job.req = std::move(req);
        queues_[dataset].jobs.push_back(std::move(job));
        ticket_to_dataset_.emplace(ticket, dataset);
        ++state.queued;
        ++queued_total_;
        ++submitted_;
        // notify_all: the cv is shared with drain()/shutdown waiters, so a
        // single notify could land on a waiter whose predicate is false and
        // strand the job until the next signal.
        cv_.notify_all();
      }
    }
  }
  if (rejected) done(std::move(rejection));
  return ticket;
}

bool Dispatcher::cancel(Ticket ticket) {
  Job victim;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto where = ticket_to_dataset_.find(ticket);
    if (where == ticket_to_dataset_.end()) return false;
    auto qit = queues_.find(where->second);
    if (qit == queues_.end()) return false;
    std::deque<Job>& jobs = qit->second.jobs;
    auto jit = std::find_if(jobs.begin(), jobs.end(), [&](const Job& j) {
      return j.ticket == ticket;
    });
    if (jit == jobs.end()) return false;
    victim = std::move(*jit);
    jobs.erase(jit);
    if (jobs.empty() && !qit->second.running) queues_.erase(qit);
    ticket_to_dataset_.erase(where);
    --tenant_state_locked(victim.tenant).queued;
    --queued_total_;
    ++cancelled_;
    cv_.notify_all();
  }
  victim.done(QueryResult::make_error(victim.req, ErrorCode::kCancelled,
                                      "cancelled"));
  return true;
}

void Dispatcher::pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void Dispatcher::resume() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = false;
  cv_.notify_all();
}

void Dispatcher::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] {
    return (queued_total_ == 0 && in_flight_total_ == 0) || stop_;
  });
}

void Dispatcher::shutdown() {
  std::vector<Job> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      // Second call: executors are already stopping; nothing left to fail.
    } else {
      stop_ = true;
      for (auto& [dataset, queue] : queues_) {
        for (Job& job : queue.jobs) orphans.push_back(std::move(job));
        queue.jobs.clear();
      }
      for (const Job& job : orphans) {
        --tenant_state_locked(job.tenant).queued;
        --queued_total_;
      }
      ticket_to_dataset_.clear();
    }
    cv_.notify_all();
  }
  // Fail queued work outside the lock rather than dropping it silently.
  for (Job& job : orphans) {
    job.done(QueryResult::make_error(job.req, ErrorCode::kShutdown,
                                     "service shut down"));
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

DispatchStats Dispatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DispatchStats s;
  s.queue_depth = queued_total_;
  s.in_flight = in_flight_total_;
  s.submitted = submitted_;
  s.completed = completed_;
  s.rejected = rejected_;
  s.shed = shed_;
  s.expired = expired_;
  s.cancelled = cancelled_;
  return s;
}

bool Dispatcher::dispatchable_locked() const {
  for (const auto& [dataset, queue] : queues_) {
    if (queue.running || queue.jobs.empty()) continue;
    const auto it = tenants_.find(queue.jobs.front().tenant);
    if (it != tenants_.end() && it->second.quota.max_in_flight != 0 &&
        it->second.in_flight >= it->second.quota.max_in_flight) {
      continue;
    }
    return true;
  }
  return false;
}

Dispatcher::Job Dispatcher::take_next_locked() {
  for (;;) {
    // Per eligible tenant, the lexicographically-first session whose head
    // job it owns (map order makes this deterministic given queue state).
    std::map<std::string, std::map<std::string, SessionQueue>::iterator>
        candidates;
    for (auto it = queues_.begin(); it != queues_.end(); ++it) {
      if (it->second.running || it->second.jobs.empty()) continue;
      const std::string& tenant = it->second.jobs.front().tenant;
      const auto ts = tenants_.find(tenant);
      if (ts != tenants_.end() && ts->second.quota.max_in_flight != 0 &&
          ts->second.in_flight >= ts->second.quota.max_in_flight) {
        continue;
      }
      candidates.emplace(tenant, it);  // first (smallest dataset) wins
    }
    // WRR: the eligible tenant with the most credit; lexicographic
    // tie-break via map order. Replenish everyone by weight when the
    // eligible set has no credit left.
    auto best = candidates.end();
    for (auto it = candidates.begin(); it != candidates.end(); ++it) {
      const TenantState& state = tenants_.at(it->first);
      if (state.credit == 0) continue;
      if (best == candidates.end() ||
          state.credit > tenants_.at(best->first).credit) {
        best = it;
      }
    }
    if (best == candidates.end()) {
      // Replenish by weight, capped at two rounds of share: an idle tenant
      // may bank one burst round but cannot accumulate unbounded credit and
      // then monopolize the executors on return.
      for (auto& [name, state] : tenants_) {
        state.credit =
            std::min<std::uint64_t>(state.credit + state.quota.weight,
                                    std::uint64_t{2} * state.quota.weight);
      }
      continue;  // every candidate now holds credit >= 1
    }
    TenantState& state = tenants_.at(best->first);
    --state.credit;
    --state.queued;
    ++state.in_flight;
    SessionQueue& queue = best->second->second;
    Job job = std::move(queue.jobs.front());
    queue.jobs.pop_front();
    queue.running = true;
    ticket_to_dataset_.erase(job.ticket);
    --queued_total_;
    ++in_flight_total_;
    return job;
  }
}

void Dispatcher::executor_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] {
      return stop_ || (!paused_ && dispatchable_locked());
    });
    if (stop_) return;
    Job job = take_next_locked();
    const std::string dataset = job.req.dataset;
    lock.unlock();

    bool deadline_lapsed = false;
    QueryResult result;
    if (job.req.deadline_ms > 0) {
      const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
          Clock::now() - job.admitted);  // det-ok[D3]: expire-at-dequeue check; decides whether we answer, never the answer
      deadline_lapsed = waited.count() >= job.req.deadline_ms;
    }
    if (deadline_lapsed) {
      result = QueryResult::make_error(job.req, ErrorCode::kDeadlineExpired,
                                       "deadline expired in queue");
    } else {
      result = execute_(job.req, job.admitted);
    }
    job.done(std::move(result));

    lock.lock();
    auto qit = queues_.find(dataset);
    if (qit != queues_.end()) {
      qit->second.running = false;
      if (qit->second.jobs.empty()) queues_.erase(qit);
    }
    TenantState& state = tenant_state_locked(job.tenant);
    --state.in_flight;
    --in_flight_total_;
    ++completed_;
    if (deadline_lapsed) ++expired_;
    cv_.notify_all();
  }
}

}  // namespace lcrb::service
