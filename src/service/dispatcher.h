// Dispatcher — the concurrent, admission-controlled execution core of the
// query service.
//
// Requests enter through submit() and leave through their completion
// callback, exactly once, on one of three paths:
//
//   rejected at admission   synchronously, on the submitting thread:
//                           deadline_rejected (budget already spent —
//                           deadline_ms == 0, the deterministic case),
//                           queue_full (tenant's max_queued quota hit; the
//                           request was shed), or shutdown
//   cancelled               from cancel(ticket) while still queued
//   executed                on an executor thread, in arrival order per
//                           session; a positive deadline that lapsed while
//                           queued fails with deadline_expired without
//                           touching the session
//
// Concurrency model. Jobs are queued per session (dataset). An executor
// claims a whole session — at most one executor runs a given session at any
// moment, draining its jobs head-first — so same-session jobs execute
// sequentially in admission order, which is what keeps a concurrent batch
// byte-identical to sequential execution per session (the PR-4 guarantee).
// Jobs on *different* sessions run on up to `executors` threads at once;
// cross-session interleaving cannot change any payload because sessions
// share no mutable state except internally-locked caches keyed by
// deterministic request-derived keys.
//
// Fairness. Every job belongs to a tenant (request.tenant, defaulting to the
// dataset). Tenants hold quotas: max_queued bounds admission (shedding
// above), max_in_flight bounds dispatch (jobs wait, never shed), and
// `weight` drives weighted round-robin: each tenant holds a credit balance,
// dispatch picks the eligible tenant with the most credit (lexicographic
// tie-break), spends one, and replenishes every tenant by its weight when
// the eligible ones run dry — so a weight-2 tenant drains twice as fast as a
// weight-1 tenant under contention, and nobody starves.
//
// Determinism note (this file is on the analyzer's checked set): wall-clock
// reads decide only *whether* a job still runs (deadline bookkeeping), never
// any payload byte; queue scans iterate std::map in lexicographic key order.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/request.h"

namespace lcrb::service {

/// Per-tenant admission and dispatch limits. Zero means unlimited.
struct TenantQuota {
  std::size_t max_queued = 0;     ///< admission cap; excess is shed
  std::size_t max_in_flight = 0;  ///< dispatch cap; excess waits queued
  std::uint32_t weight = 1;       ///< WRR share (clamped to >= 1)
};

/// Lifetime counters + instantaneous gauges, all under one lock snapshot.
struct DispatchStats {
  std::size_t queue_depth = 0;   ///< jobs admitted, not yet dispatched
  std::size_t in_flight = 0;     ///< jobs currently on an executor
  std::uint64_t submitted = 0;   ///< admitted into a queue
  std::uint64_t completed = 0;   ///< dispatched to an executor and finished
  std::uint64_t rejected = 0;    ///< admission: deadline_rejected
  std::uint64_t shed = 0;        ///< admission: queue_full
  std::uint64_t expired = 0;     ///< dequeue: deadline_expired
  std::uint64_t cancelled = 0;   ///< removed from a queue by cancel()
};

class Dispatcher {
 public:
  using Clock = std::chrono::steady_clock;
  /// Runs one request to a result. Must be thread-safe across sessions; the
  /// dispatcher guarantees it is never entered twice concurrently for the
  /// same dataset.
  using ExecuteFn =
      std::function<QueryResult(const QueryRequest&, Clock::time_point)>;
  using DoneFn = std::function<void(QueryResult)>;
  /// Admission handle for cancel(); 0 = the request never entered a queue
  /// (it was rejected synchronously).
  using Ticket = std::uint64_t;

  Dispatcher(ExecuteFn execute, std::size_t executors,
             TenantQuota default_quota = {},
             std::map<std::string, TenantQuota> tenant_quotas = {});
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Admits or rejects `req`. `done` fires exactly once — synchronously on
  /// this thread for admission rejections (returning 0), later on an
  /// executor thread otherwise.
  Ticket submit(QueryRequest req, DoneFn done);

  /// Best-effort cancel of a still-queued job: true removes it and fires its
  /// callback with code `cancelled`; false means it already ran, is running,
  /// or never existed.
  bool cancel(Ticket ticket);

  /// Stops dispatching new jobs (in-flight jobs finish). Deterministic
  /// queue-state control for tests and stats snapshots.
  void pause();
  void resume();

  /// Blocks until nothing is queued or in flight.
  void drain();

  /// Stops executors after their current job and fails everything still
  /// queued with code `shutdown`. Idempotent; the destructor calls it.
  void shutdown();

  DispatchStats stats() const;
  std::size_t executor_count() const { return workers_.size(); }

 private:
  struct Job {
    QueryRequest req;
    Clock::time_point admitted;
    Ticket ticket = 0;
    std::string tenant;
    DoneFn done;
  };
  struct SessionQueue {
    std::deque<Job> jobs;
    bool running = false;  ///< an executor currently owns this session
  };
  struct TenantState {
    TenantQuota quota;
    std::size_t queued = 0;
    std::size_t in_flight = 0;
    std::uint64_t credit = 0;  ///< WRR balance
  };

  void executor_loop();
  TenantState& tenant_state_locked(const std::string& tenant);
  /// An idle, non-empty session whose head tenant is under its in-flight
  /// cap exists (no credit bookkeeping — replenishment makes every such
  /// session eventually dispatchable).
  bool dispatchable_locked() const;
  /// WRR pick: claims the chosen session (running = true), pops its head
  /// job, spends tenant credit/quota. Caller holds mu_ and has checked
  /// dispatchable_locked().
  Job take_next_locked();

  ExecuteFn execute_;
  TenantQuota default_quota_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, SessionQueue> queues_;  ///< keyed by dataset
  std::map<std::string, TenantState> tenants_;
  std::map<Ticket, std::string> ticket_to_dataset_;  ///< queued jobs only
  bool stop_ = false;
  bool paused_ = false;
  Ticket next_ticket_ = 0;
  std::size_t queued_total_ = 0;
  std::size_t in_flight_total_ = 0;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t expired_ = 0;
  std::uint64_t cancelled_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace lcrb::service
