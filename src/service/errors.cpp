#include "service/errors.h"

namespace lcrb::service {

std::string to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kUnsupportedVersion: return "unsupported_version";
    case ErrorCode::kUnknownDataset: return "unknown_dataset";
    case ErrorCode::kDeadlineRejected: return "deadline_rejected";
    case ErrorCode::kDeadlineExpired: return "deadline_expired";
    case ErrorCode::kQueueFull: return "queue_full";
    case ErrorCode::kShutdown: return "shutdown";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

ErrorCode error_code_from_string(const std::string& name) {
  for (const ErrorCode code :
       {ErrorCode::kInvalidArgument, ErrorCode::kUnsupportedVersion,
        ErrorCode::kUnknownDataset, ErrorCode::kDeadlineRejected,
        ErrorCode::kDeadlineExpired, ErrorCode::kQueueFull,
        ErrorCode::kShutdown, ErrorCode::kCancelled, ErrorCode::kInternal}) {
    if (to_string(code) == name) return code;
  }
  throw Error("error: unknown code '" + name + "'");
}

std::string error_category(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kInvalidArgument:
    case ErrorCode::kUnsupportedVersion:
      return "request";
    case ErrorCode::kUnknownDataset: return "session";
    case ErrorCode::kDeadlineRejected:
    case ErrorCode::kDeadlineExpired:
      return "deadline";
    case ErrorCode::kQueueFull:
    case ErrorCode::kShutdown:
      return "capacity";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

bool error_retryable(ErrorCode code) {
  switch (code) {
    case ErrorCode::kDeadlineExpired:
    case ErrorCode::kQueueFull:
    case ErrorCode::kShutdown:
      return true;
    default:
      return false;
  }
}

}  // namespace lcrb::service
