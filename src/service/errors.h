// Structured error taxonomy of the query service — the wire-protocol v2
// error surface and the dispatcher's admission-control vocabulary.
//
// Every failure a client can observe maps to one ErrorCode. A code fixes its
// category (which subsystem refused) and whether retrying the identical
// request can ever succeed:
//
//   code                 category    retryable   emitted when
//   invalid_argument     request     no          malformed/unvalidatable request
//   unsupported_version  request     no          "v" outside [1, 2]
//   unknown_dataset      session     no          dataset not in the registry
//   deadline_rejected    deadline    no          budget already spent at
//                                                admission (deadline_ms == 0 —
//                                                the deterministic case tests
//                                                pin)
//   deadline_expired     deadline    yes         admitted, but the budget
//                                                lapsed while queued or at a
//                                                stage boundary
//   queue_full           capacity    yes         tenant's queued quota hit —
//                                                the request was shed
//   shutdown             capacity    yes         service stopping; queued work
//                                                failed rather than dropped
//   cancelled            cancelled   no          removed from the queue by a
//                                                cancel verb
//   internal             internal    no          anything else
//
// Protocol v1 renders only the message string (unchanged since PR 4); v2
// renders {code, category, retryable, message}. The taxonomy is part of the
// deterministic payload: for a fixed request and service state the code is
// as reproducible as a protector set.
#pragma once

#include <cstdint>
#include <string>

#include "util/error.h"

namespace lcrb::service {

enum class ErrorCode : std::uint8_t {
  kNone,  ///< placeholder for ok results; never serialized
  kInvalidArgument,
  kUnsupportedVersion,
  kUnknownDataset,
  kDeadlineRejected,
  kDeadlineExpired,
  kQueueFull,
  kShutdown,
  kCancelled,
  kInternal,
};

std::string to_string(ErrorCode code);
ErrorCode error_code_from_string(const std::string& name);

/// The code's fixed category: request | session | deadline | capacity |
/// cancelled | internal.
std::string error_category(ErrorCode code);

/// True when retrying the identical request against the same service can
/// succeed (transient capacity/timing failures), false when the request
/// itself can never pass (validation, determinstic rejection, cancellation).
bool error_retryable(ErrorCode code);

/// lcrb::Error specialization carrying a taxonomy code. The service layers
/// throw this wherever the failure class is known; a bare lcrb::Error from
/// deeper layers is classified as invalid_argument (every deep throw is a
/// validation REQUIRE on request-derived values).
class ServiceError : public Error {
 public:
  ServiceError(ErrorCode code, const std::string& message)
      : Error(message), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

}  // namespace lcrb::service
