#include "service/query_service.h"

#include <algorithm>
#include <utility>

#include "community/detect.h"
#include "graph/io.h"
#include "lcrb/pipeline.h"
#include "util/error.h"

namespace lcrb::service {

namespace {

using Clock = std::chrono::steady_clock;

/// Deadline test at a stage boundary, for budgets that survived admission
/// (positive deadline_ms; a zero budget never reaches these checks — it is
/// deadline_rejected on entry, which keeps deadline failures reproducible).
bool deadline_lapsed(const QueryRequest& req, Clock::time_point admitted) {
  if (req.deadline_ms <= 0) return false;
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      Clock::now() - admitted);  // det-ok[D3]: deadline bookkeeping; affects only whether we answer, never the answer
  return elapsed.count() >= req.deadline_ms;
}

void check_deadline(const QueryRequest& req, Clock::time_point admitted) {
  if (deadline_lapsed(req, admitted)) {
    throw ServiceError(ErrorCode::kDeadlineExpired, "deadline expired");
  }
}

double elapsed_ms(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)  // det-ok[D3]: elapsed-time metadata reported in the meta block only
      .count();
}

std::size_t resolve_executors(std::size_t max_concurrent) {
  if (max_concurrent != 0) return max_concurrent;
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::min<std::size_t>(4, std::max<std::size_t>(hw / 2, 1));
}

}  // namespace

QueryService::QueryService(ServiceConfig cfg)
    : cfg_(cfg), pool_(cfg.threads), registry_(cfg.max_resident_bytes) {
  dispatcher_ = std::make_unique<Dispatcher>(
      [this](const QueryRequest& req, Clock::time_point admitted) {
        return execute(req, admitted);
      },
      resolve_executors(cfg_.max_concurrent), cfg_.default_quota,
      cfg_.tenant_quotas);
}

QueryService::~QueryService() {
  // Explicit: fail queued work with code `shutdown` and join executors while
  // the registry and pool are still intact.
  dispatcher_->shutdown();
}

std::shared_ptr<GraphSession> QueryService::open_dataset(
    const std::string& dataset, const std::string& edge_list_path,
    bool undirected, std::uint64_t community_seed, GraphBackend backend) {
  if (std::shared_ptr<GraphSession> existing = registry_.find(dataset)) {
    return existing;
  }
  DiGraph g = load_edge_list(edge_list_path, undirected);
  Partition p =
      detect_communities(g, CommunityMethod::kLouvain, community_seed);
  return registry_.open(dataset, to_backend(std::move(g), backend),
                        std::move(p));
}

QueryResult QueryService::run(const QueryRequest& req) {
  return execute(req, Clock::now());  // det-ok[D3]: admission timestamp for deadline bookkeeping, not in result path
}

QueryService::Ticket QueryService::submit_async(
    QueryRequest req, std::function<void(QueryResult)> done) {
  return dispatcher_->submit(std::move(req), std::move(done));
}

std::future<QueryResult> QueryService::submit(QueryRequest req) {
  auto promise = std::make_shared<std::promise<QueryResult>>();
  std::future<QueryResult> fut = promise->get_future();
  submit_async(std::move(req), [promise](QueryResult result) {
    promise->set_value(std::move(result));
  });
  return fut;
}

std::vector<QueryResult> QueryService::run_batch(
    std::vector<QueryRequest> reqs) {
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(reqs.size());
  for (QueryRequest& req : reqs) futures.push_back(submit(std::move(req)));
  std::vector<QueryResult> out;
  out.reserve(futures.size());
  for (std::future<QueryResult>& f : futures) out.push_back(f.get());
  return out;
}

bool QueryService::cancel(Ticket ticket) { return dispatcher_->cancel(ticket); }

void QueryService::pause() { dispatcher_->pause(); }

void QueryService::resume() { dispatcher_->resume(); }

void QueryService::drain() { dispatcher_->drain(); }

ServiceStats QueryService::stats() const {
  ServiceStats s;
  s.dispatch = dispatcher_->stats();
  s.registry = registry_.stats();
  return s;
}

QueryResult QueryService::execute(const QueryRequest& req,
                                  Clock::time_point admitted) {
  const Clock::time_point started = Clock::now();  // det-ok[D3]: elapsed_ms meta field only; results depend solely on req + seed
  JsonValue meta = JsonValue::object();
  QueryResult result;
  try {
    if (req.dataset.empty()) {
      throw ServiceError(ErrorCode::kInvalidArgument,
                         "request: dataset is required");
    }
    if (req.deadline_ms == 0) {
      // The same deterministic rejection the dispatcher applies at
      // admission, so run() and submit() answer a spent budget identically
      // (code deadline_rejected, v1 message "deadline exceeded").
      throw ServiceError(ErrorCode::kDeadlineRejected, "deadline exceeded");
    }
    check_deadline(req, admitted);
    std::shared_ptr<GraphSession> session = registry_.find(req.dataset);
    if (session == nullptr) {
      throw ServiceError(ErrorCode::kUnknownDataset,
                         "unknown dataset '" + req.dataset +
                             "' (open it first)");
    }
    if (req.op == QueryOp::kInfo) {
      // Never cached: resident_bytes truthfully tracks warm-cache growth.
      result = execute_info(req, *session);
    } else {
      // Select/evaluate results are deterministic functions of the immutable
      // session and the request, so a warm session replays them from its
      // result cache instead of recomputing.
      const std::string result_key = make_result_key(req);
      if (std::shared_ptr<const QueryResult> cached =
              session->cached_result(result_key)) {
        result = *cached;
        result.version = req.version;
        result.id = req.id;
        meta.set("result_cache_hit", true);
      } else {
        meta.set("result_cache_hit", false);
        result = req.op == QueryOp::kSelect
                     ? execute_select(req, *session, admitted, meta)
                     : execute_evaluate(req, *session, admitted, meta);
        if (result.ok) session->store_result(result_key, result);
      }
    }
    result.version = req.version;
  } catch (const ServiceError& e) {
    result = QueryResult::make_error(req, e.code(), e.what());
  } catch (const Error& e) {
    // Bare lcrb::Error from option validation or request-derived values:
    // the invalid_argument class, with the v1 message surface unchanged.
    result = QueryResult::make_error(req, e.what());
  }
  if (cfg_.collect_meta) {
    meta.set("wall_ms", elapsed_ms(started));
    result.meta = std::move(meta);
  }
  return result;
}

std::shared_ptr<const ExperimentSetup> QueryService::setup_for(
    const QueryRequest& req, GraphSession& session, std::string* key_out,
    bool* cache_hit) {
  const Partition& p = session.partition();
  // Multi-rumor requests resolve to their flattened union: the bridge ends
  // (and so the setup) depend only on WHERE the rumors are, not on how the
  // campaigns split them — group partitions with equal unions share one
  // memoized setup.
  std::vector<NodeId> rumor_ids = req.rumor_ids;
  if (!req.rumor_groups.empty()) {
    rumor_ids.clear();
    for (const auto& group : req.rumor_groups) {
      LCRB_REQUIRE(!group.empty(), "rumor groups must be non-empty");
      rumor_ids.insert(rumor_ids.end(), group.begin(), group.end());
    }
    std::sort(rumor_ids.begin(), rumor_ids.end());
    rumor_ids.erase(std::unique(rumor_ids.begin(), rumor_ids.end()),
                    rumor_ids.end());
  }
  CommunityId community = req.rumor_community;
  if (rumor_ids.empty() && community == kInvalidCommunity) {
    community = p.closest_to_size(static_cast<NodeId>(req.community_size));
  }
  const std::string key =
      make_setup_key(rumor_ids, community, req.num_rumors, req.rumor_seed);
  if (key_out != nullptr) *key_out = key;
  const GraphRef g = session.graph();
  return session.setup_for(
      key,
      [&]() -> ExperimentSetup {
        return g.visit([&](const auto& gr) -> ExperimentSetup {
          if (!rumor_ids.empty()) {
            return prepare_experiment_with_rumors(gr, p, rumor_ids);
          }
          LCRB_REQUIRE(community < p.num_communities(),
                       "rumor community out of range");
          const std::size_t k = std::min<std::size_t>(
              std::max<std::size_t>(req.num_rumors, 1), p.size_of(community));
          return prepare_experiment(gr, p, community, k, req.rumor_seed);
        });
      },
      cache_hit);
}

QueryResult QueryService::execute_select(const QueryRequest& req,
                                         GraphSession& session,
                                         Clock::time_point admitted,
                                         JsonValue& meta) {
  req.options.validate();
  QueryResult result;
  result.version = req.version;
  result.id = req.id;
  result.op = req.op;
  result.dataset = req.dataset;

  bool setup_hit = false;
  std::string setup_key;
  std::shared_ptr<const ExperimentSetup> setup =
      setup_for(req, session, &setup_key, &setup_hit);
  meta.set("setup_cache_hit", setup_hit);
  result.rumor_community = setup->rumor_community;
  result.rumors = setup->rumors;
  result.num_bridge_ends = setup->bridges.bridge_ends.size();
  check_deadline(req, admitted);

  const LcrbOptions& opts = req.options;
  const std::size_t budget = opts.resolved_budget(setup->rumors.size());

  if (opts.selector == SelectorKind::kGreedy &&
      opts.sigma_mode == SigmaMode::kMonteCarlo) {
    // Shared warm estimator: every query with matching rumor/sigma knobs
    // reuses one realization cache.
    bool estimator_hit = false;
    std::shared_ptr<SigmaEstimator> estimator = session.estimator_for(
        setup_key, *setup, opts.sigma_config(), &pool_, &estimator_hit);
    meta.set("estimator_cache_hit", estimator_hit);
    check_deadline(req, admitted);
    if (opts.multi_mode != MultiCascadeMode::kOff) {
      // Multi-campaign greedy shares the same warm estimator; the result
      // carries both the per-campaign groups and their deployed union.
      const MultiGreedyResult r = session.graph().visit([&](const auto& g) {
        return greedy_multi_with_estimator(
            g, setup->rumors, setup->bridges, opts.greedy_config(),
            opts.protector_budgets, opts.multi_mode, *estimator, &pool_);
      });
      result.protectors = r.deployed;
      result.protector_groups = r.groups;
      result.achieved_fraction = r.combined.achieved_fraction;
      result.gain_history = r.combined.gain_history;
      result.candidate_count = r.combined.candidate_count;
      result.sigma_evaluations = r.combined.sigma_evaluations;
      meta.set("multi_mode", to_string(opts.multi_mode));
      return result;
    }
    GreedyConfig gc = opts.greedy_config();
    gc.max_protectors = budget;
    const GreedyResult r = session.graph().visit([&](const auto& g) {
      return greedy_lcrbp_with_estimator(g, setup->rumors, setup->bridges, gc,
                                         *estimator, &pool_);
    });
    result.protectors = r.protectors;
    result.achieved_fraction = r.achieved_fraction;
    result.gain_history = r.gain_history;
    result.candidate_count = r.candidate_count;
    result.sigma_evaluations = r.sigma_evaluations;
    meta.set("sigma_path", to_string(r.sigma_path));
    meta.set("sigma_fallback", to_string(r.sigma_fallback));
  } else if (opts.selector == SelectorKind::kGreedy) {
    // RIS mode: shared warm RR pools, evaluated over the first-theta prefix.
    bool ris_hit = false;
    std::shared_ptr<RisContext> ctx = session.ris_context_for(
        setup_key, *setup, opts.ris_config(), &ris_hit);
    meta.set("ris_cache_hit", ris_hit);
    check_deadline(req, admitted);
    const RisGreedyResult r = ris_greedy_with_context(
        opts.alpha, budget, opts.ris_config(), *ctx, &pool_);
    result.protectors = r.protectors;
    result.achieved_fraction = r.achieved_fraction;
    result.gain_history = r.gain_history;
    result.candidate_count = r.distinct_candidates;
    result.sigma_evaluations = r.rr_sets;
    meta.set("ris_rounds", static_cast<std::uint64_t>(r.rounds));
    meta.set("ris_sigma_lower", r.sigma_lower);
    meta.set("ris_sigma_upper", r.sigma_upper);
    meta.set("ris_guarantee_met", r.guarantee_met);
    meta.set("ris_stop_reason", to_string(r.stop_reason));
  } else {
    check_deadline(req, admitted);
    result.protectors = select_protectors(*setup, opts, &pool_);
    if (opts.selector == SelectorKind::kScbg) {
      // SCBG covers every bridge end by construction.
      result.achieved_fraction = 1.0;
    }
  }
  return result;
}

QueryResult QueryService::execute_evaluate(const QueryRequest& req,
                                           GraphSession& session,
                                           Clock::time_point admitted,
                                           JsonValue& meta) {
  req.options.validate();
  QueryResult result;
  result.version = req.version;
  result.id = req.id;
  result.op = req.op;
  result.dataset = req.dataset;

  for (NodeId v : req.protectors) {
    LCRB_REQUIRE(v < session.graph().num_nodes(),
                 "protector id out of range");
  }
  bool setup_hit = false;
  std::shared_ptr<const ExperimentSetup> setup =
      setup_for(req, session, nullptr, &setup_hit);
  meta.set("setup_cache_hit", setup_hit);
  result.rumor_community = setup->rumor_community;
  result.rumors = setup->rumors;
  result.num_bridge_ends = setup->bridges.bridge_ends.size();
  result.protectors = req.protectors;
  check_deadline(req, admitted);

  LCRB_REQUIRE(req.eval_runs >= 1, "eval_runs must be >= 1");
  MonteCarloConfig mc;
  mc.runs = req.eval_runs;
  mc.seed = req.eval_seed;
  mc.max_hops = req.options.max_hops;
  mc.model = req.options.model;
  mc.ic_edge_prob = req.options.ic_edge_prob;
  HopSeries series;
  if (!req.rumor_groups.empty()) {
    // K-way evaluation: one rumor cascade per group, protectors as cascade 0,
    // ordered by the request's cascade_priority.
    const std::vector<std::vector<NodeId>> protector_groups{req.protectors};
    series = evaluate_protector_groups(*setup, req.rumor_groups,
                                       protector_groups,
                                       req.options.cascade_priority, mc,
                                       &pool_);
  } else {
    series = evaluate_protectors(*setup, req.protectors, mc, &pool_);
  }
  result.infected_by_hop = series.infected_mean;
  result.infected_ci95 = series.infected_ci95;
  result.protected_by_hop = series.protected_mean;
  result.final_infected_mean = series.final_infected_mean;
  result.final_protected_mean = series.final_protected_mean;
  result.saved_fraction = series.saved_fraction_mean;
  return result;
}

QueryResult QueryService::execute_info(const QueryRequest& req,
                                       GraphSession& session) {
  QueryResult result;
  result.version = req.version;
  result.id = req.id;
  result.op = req.op;
  result.dataset = req.dataset;
  result.num_nodes = session.graph().num_nodes();
  result.num_arcs = static_cast<std::size_t>(session.graph().num_edges());
  result.num_communities = session.partition().num_communities();
  result.resident_bytes = session.memory_bytes();
  return result;
}

}  // namespace lcrb::service
