// QueryService — the long-lived in-process LCRB query engine.
//
// One instance owns a shared ThreadPool, a SessionRegistry, and a request
// batcher. Queries enter as QueryRequest (see service/request.h) through one
// of three doors:
//
//   run(req)        synchronous; inner parallelism on the shared pool
//   submit(req)     enqueue; a dispatcher thread coalesces whatever is
//                   queued, stable-groups it by dataset (so same-session
//                   queries run back-to-back against hot caches), and
//                   executes the groups sequentially — which is also why a
//                   batch is byte-identical to running the same requests
//                   one at a time in queue order per dataset
//   run_batch(reqs) submit them all, wait for every future
//
// Failures never throw across the API: every lcrb::Error becomes an
// ok=false QueryResult carrying the message. Deadlines (deadline_ms) are
// measured from admission and checked only at stage boundaries; an
// already-expired budget (0) deterministically yields "deadline exceeded".
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/request.h"
#include "service/session.h"
#include "util/threadpool.h"

namespace lcrb::service {

struct ServiceConfig {
  /// Shared worker pool size; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Session-registry byte budget (LRU eviction above it).
  std::size_t max_resident_bytes = SessionRegistry::kDefaultMaxBytes;
  /// Attach the nondeterministic `meta` object (timings, cache hits) to
  /// results. Payload fields are unaffected either way.
  bool collect_meta = true;
};

class QueryService {
 public:
  explicit QueryService(ServiceConfig cfg = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  SessionRegistry& registry() { return registry_; }
  ThreadPool& pool() { return pool_; }
  const ServiceConfig& config() const { return cfg_; }

  /// Convenience loader: reads a SNAP-style edge list, detects communities
  /// (Louvain, seeded), and registers the session. Re-opening an existing
  /// dataset id returns the existing session without touching the file.
  std::shared_ptr<GraphSession> open_dataset(const std::string& dataset,
                                             const std::string& edge_list_path,
                                             bool undirected = false,
                                             std::uint64_t community_seed = 1);

  /// Executes one request now, on the calling thread (inner parallelism on
  /// the shared pool). Never throws for request-level failures.
  QueryResult run(const QueryRequest& req);

  /// Enqueues for the batcher; the future resolves when its group runs.
  std::future<QueryResult> submit(QueryRequest req);

  /// submit() them all, then wait; results in request order.
  std::vector<QueryResult> run_batch(std::vector<QueryRequest> reqs);

 private:
  struct Pending {
    QueryRequest req;
    std::promise<QueryResult> promise;
    std::chrono::steady_clock::time_point admitted;
    std::uint64_t seq = 0;  ///< admission order, the stable-sort anchor
  };

  void dispatcher_loop();
  QueryResult execute(const QueryRequest& req,
                      std::chrono::steady_clock::time_point admitted);
  QueryResult execute_select(const QueryRequest& req, GraphSession& session,
                             std::chrono::steady_clock::time_point admitted,
                             JsonValue& meta);
  QueryResult execute_evaluate(const QueryRequest& req, GraphSession& session,
                               std::chrono::steady_clock::time_point admitted,
                               JsonValue& meta);
  QueryResult execute_info(const QueryRequest& req, GraphSession& session);

  /// Memoized experiment setup for the request's rumor choice.
  std::shared_ptr<const ExperimentSetup> setup_for(const QueryRequest& req,
                                                   GraphSession& session,
                                                   std::string* key_out,
                                                   bool* cache_hit);

  ServiceConfig cfg_;
  ThreadPool pool_;
  SessionRegistry registry_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool stop_ = false;
  std::uint64_t next_seq_ = 0;
  std::thread dispatcher_;
};

}  // namespace lcrb::service
