// QueryService — the long-lived in-process LCRB query engine.
//
// One instance owns a shared ThreadPool (inner parallelism), a
// SessionRegistry, and a Dispatcher (see service/dispatcher.h) that executes
// admitted queries on `max_concurrent` executor threads. Queries enter as
// QueryRequest (see service/request.h) through one of four doors:
//
//   run(req)          synchronous on the calling thread; bypasses queues and
//                     quotas but not deadline admission (deadline_ms == 0 is
//                     deadline_rejected here too)
//   submit_async(...) admission control, then per-session FIFO dispatch; the
//                     completion callback fires exactly once (synchronously
//                     on rejection, on an executor thread otherwise)
//   submit(req)       submit_async wrapped in a future
//   run_batch(reqs)   submit them all, wait for every future; results in
//                     request order
//
// Ordering and identity guarantees: queries on the SAME session execute
// sequentially in admission order — a concurrent batch is byte-identical to
// running those requests one at a time (pinned by tests). Queries on
// DIFFERENT sessions run concurrently, which cannot change any payload:
// sessions are immutable, their caches are keyed deterministically, and all
// inner parallel reductions are fixed-order.
//
// Failures never throw across the API: every error becomes an ok=false
// QueryResult carrying a structured code (service/errors.h) plus the v1
// message. Deadlines (deadline_ms) are measured from admission; a spent
// budget (0) is deterministically rejected at admission, a positive budget
// is re-checked at dequeue and at stage boundaries.
#pragma once

#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "service/dispatcher.h"
#include "service/request.h"
#include "service/session.h"
#include "util/threadpool.h"

namespace lcrb::service {

struct ServiceConfig {
  /// Shared worker pool size; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Session-registry byte budget (LRU eviction above it).
  std::size_t max_resident_bytes = SessionRegistry::kDefaultMaxBytes;
  /// Attach the nondeterministic `meta` object (timings, cache hits) to
  /// results. Payload fields are unaffected either way.
  bool collect_meta = true;
  /// Dispatcher executor threads: how many *different* sessions execute at
  /// once (same-session queries always serialize). 1 = the sequential PR-4
  /// behavior; 0 = auto (min(4, half the hardware threads)).
  std::size_t max_concurrent = 1;
  /// Quota applied to tenants without an explicit entry. Zeros = unlimited.
  TenantQuota default_quota;
  /// Per-tenant overrides (max queued / max in flight / WRR weight).
  std::map<std::string, TenantQuota> tenant_quotas;
};

/// One-lock-each snapshot of the dispatcher and the registry.
struct ServiceStats {
  DispatchStats dispatch;
  SessionRegistry::Stats registry;
};

class QueryService {
 public:
  using Ticket = Dispatcher::Ticket;

  explicit QueryService(ServiceConfig cfg = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  SessionRegistry& registry() { return registry_; }
  ThreadPool& pool() { return pool_; }
  const ServiceConfig& config() const { return cfg_; }

  /// Convenience loader: reads a SNAP-style edge list, detects communities
  /// (Louvain, seeded), converts to the requested storage backend, and
  /// registers the session. Re-opening an existing dataset id returns the
  /// existing session without touching the file (whatever its backend).
  std::shared_ptr<GraphSession> open_dataset(
      const std::string& dataset, const std::string& edge_list_path,
      bool undirected = false, std::uint64_t community_seed = 1,
      GraphBackend backend = GraphBackend::kCsr);

  /// Executes one request now, on the calling thread (inner parallelism on
  /// the shared pool). Never throws for request-level failures.
  QueryResult run(const QueryRequest& req);

  /// Admission-controlled enqueue; `done` fires exactly once. Returns the
  /// cancel ticket (0 when rejected at admission).
  Ticket submit_async(QueryRequest req,
                      std::function<void(QueryResult)> done);

  /// submit_async wrapped in a future.
  std::future<QueryResult> submit(QueryRequest req);

  /// submit() them all, then wait; results in request order.
  std::vector<QueryResult> run_batch(std::vector<QueryRequest> reqs);

  /// Best-effort cancel of a still-queued request (see Dispatcher::cancel).
  bool cancel(Ticket ticket);

  /// Deterministic queue-state control (tests, stats snapshots): pause stops
  /// dispatching new jobs, drain blocks until idle.
  void pause();
  void resume();
  void drain();

  ServiceStats stats() const;

 private:
  QueryResult execute(const QueryRequest& req,
                      std::chrono::steady_clock::time_point admitted);
  QueryResult execute_select(const QueryRequest& req, GraphSession& session,
                             std::chrono::steady_clock::time_point admitted,
                             JsonValue& meta);
  QueryResult execute_evaluate(const QueryRequest& req, GraphSession& session,
                               std::chrono::steady_clock::time_point admitted,
                               JsonValue& meta);
  QueryResult execute_info(const QueryRequest& req, GraphSession& session);

  /// Memoized experiment setup for the request's rumor choice.
  std::shared_ptr<const ExperimentSetup> setup_for(const QueryRequest& req,
                                                   GraphSession& session,
                                                   std::string* key_out,
                                                   bool* cache_hit);

  ServiceConfig cfg_;
  ThreadPool pool_;
  SessionRegistry registry_;
  /// Last member: its destructor joins executors that call execute(), so
  /// everything execute() touches must still be alive.
  std::unique_ptr<Dispatcher> dispatcher_;
};

}  // namespace lcrb::service
