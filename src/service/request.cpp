#include "service/request.h"

#include "util/error.h"

namespace lcrb::service {

namespace {

JsonValue ids_to_json(const std::vector<NodeId>& ids) {
  JsonValue arr = JsonValue::array();
  for (NodeId v : ids) arr.push_back(JsonValue(static_cast<std::uint64_t>(v)));
  return arr;
}

// Every unsigned field goes through here: a negative JSON int would
// otherwise wrap to a huge value (e.g. -1 -> 2^32-1 as a NodeId) and
// sail through downstream validation as a plausible count.
std::uint64_t non_negative(const JsonValue& v, const char* what) {
  const std::int64_t x = v.as_int();
  if (x < 0) {
    throw Error(std::string("request: ") + what + " must be non-negative, " +
                "got " + std::to_string(x));
  }
  return static_cast<std::uint64_t>(x);
}

std::vector<NodeId> ids_from_json(const JsonValue& v, const char* what) {
  if (!v.is_array()) throw Error(std::string("request: ") + what +
                                 " must be an array of node ids");
  std::vector<NodeId> out;
  const std::span<const JsonValue> items = v.items();
  out.reserve(items.size());
  for (const JsonValue& x : items) {
    const std::uint64_t id = non_negative(x, what);
    if (id >= kInvalidNode) {
      throw Error(std::string("request: ") + what + " id " +
                  std::to_string(id) + " exceeds the node-id range");
    }
    out.push_back(static_cast<NodeId>(id));
  }
  return out;
}

JsonValue groups_to_json(const std::vector<std::vector<NodeId>>& groups) {
  JsonValue arr = JsonValue::array();
  for (const auto& g : groups) arr.push_back(ids_to_json(g));
  return arr;
}

std::vector<std::vector<NodeId>> groups_from_json(const JsonValue& v,
                                                  const char* what) {
  if (!v.is_array()) throw Error(std::string("request: ") + what +
                                 " must be an array of node-id arrays");
  std::vector<std::vector<NodeId>> out;
  for (const JsonValue& g : v.items()) out.push_back(ids_from_json(g, what));
  return out;
}

JsonValue doubles_to_json(const std::vector<double>& xs) {
  JsonValue arr = JsonValue::array();
  for (double x : xs) arr.push_back(JsonValue(x));
  return arr;
}

std::vector<double> doubles_from_json(const JsonValue& v) {
  std::vector<double> out;
  const std::span<const JsonValue> items = v.items();
  out.reserve(items.size());
  for (const JsonValue& x : items) out.push_back(x.as_double());
  return out;
}

}  // namespace

std::string to_string(QueryOp op) {
  switch (op) {
    case QueryOp::kSelect: return "select";
    case QueryOp::kEvaluate: return "evaluate";
    case QueryOp::kInfo: return "info";
  }
  return "unknown";
}

QueryOp query_op_from_string(const std::string& name) {
  for (const QueryOp op :
       {QueryOp::kSelect, QueryOp::kEvaluate, QueryOp::kInfo}) {
    if (to_string(op) == name) return op;
  }
  throw Error("request: unknown op '" + name + "' (select|evaluate|info)");
}

JsonValue QueryRequest::to_json() const {
  JsonValue v = JsonValue::object();
  v.set("v", static_cast<std::int64_t>(version));
  if (!id.empty()) v.set("id", id);
  v.set("op", to_string(op));
  v.set("dataset", dataset);
  // tenant is a v2 field; a v1 request never writes it so v1 serializations
  // stay byte-for-byte what PR 4 shipped.
  if (version >= 2 && !tenant.empty()) v.set("tenant", tenant);
  if (!rumor_groups.empty()) {
    v.set("rumor_groups", groups_to_json(rumor_groups));
  } else if (!rumor_ids.empty()) {
    v.set("rumor_ids", ids_to_json(rumor_ids));
  } else if (rumor_community != kInvalidCommunity) {
    v.set("rumor_community", static_cast<std::uint64_t>(rumor_community));
  } else {
    v.set("community_size", static_cast<std::uint64_t>(community_size));
  }
  v.set("num_rumors", static_cast<std::uint64_t>(num_rumors));
  v.set("rumor_seed", rumor_seed);
  v.set("options", options.to_json());
  if (op == QueryOp::kEvaluate) {
    v.set("protectors", ids_to_json(protectors));
    v.set("eval_runs", static_cast<std::uint64_t>(eval_runs));
    v.set("eval_seed", eval_seed);
  }
  if (deadline_ms >= 0) v.set("deadline_ms", deadline_ms);
  return v;
}

QueryRequest QueryRequest::from_json(const JsonValue& v) {
  if (!v.is_object()) throw Error("request: expected a JSON object");
  QueryRequest req;
  // v2-only keys are collected first and re-checked against the declared
  // version afterwards, so key order in the document cannot change whether a
  // v1 request smuggles a v2 field through.
  bool saw_tenant = false;
  for (const auto& [key, val] : v.members()) {
    if (key == "v") {
      req.version = static_cast<int>(val.as_int());
    } else if (key == "id") {
      req.id = val.as_string();
    } else if (key == "op") {
      req.op = query_op_from_string(val.as_string());
    } else if (key == "dataset") {
      req.dataset = val.as_string();
    } else if (key == "tenant") {
      req.tenant = val.as_string();
      saw_tenant = true;
    } else if (key == "rumor_ids") {
      req.rumor_ids = ids_from_json(val, "rumor_ids");
    } else if (key == "rumor_groups") {
      req.rumor_groups = groups_from_json(val, "rumor_groups");
    } else if (key == "rumor_community") {
      req.rumor_community = static_cast<CommunityId>(non_negative(val, "rumor_community"));
    } else if (key == "community_size") {
      req.community_size = static_cast<std::size_t>(non_negative(val, "community_size"));
    } else if (key == "num_rumors") {
      req.num_rumors = static_cast<std::size_t>(non_negative(val, "num_rumors"));
    } else if (key == "rumor_seed") {
      req.rumor_seed = non_negative(val, "rumor_seed");
    } else if (key == "options") {
      req.options = LcrbOptions::from_json(val);
    } else if (key == "protectors") {
      req.protectors = ids_from_json(val, "protectors");
    } else if (key == "eval_runs") {
      req.eval_runs = static_cast<std::size_t>(non_negative(val, "eval_runs"));
    } else if (key == "eval_seed") {
      req.eval_seed = non_negative(val, "eval_seed");
    } else if (key == "deadline_ms") {
      req.deadline_ms = val.as_int();
    } else {
      throw Error("request: unknown key '" + key + "'");
    }
  }
  if (req.version < kProtocolVersion || req.version > kProtocolVersionMax) {
    throw ServiceError(
        ErrorCode::kUnsupportedVersion,
        "request: unsupported version " + std::to_string(req.version) +
            " (this build speaks " + std::to_string(kProtocolVersion) + ".." +
            std::to_string(kProtocolVersionMax) + ")");
  }
  if (saw_tenant && req.version < 2) {
    throw Error("request: unknown key 'tenant'");
  }
  return req;
}

JsonValue QueryResult::to_json(bool include_meta) const {
  JsonValue v = JsonValue::object();
  v.set("v", static_cast<std::int64_t>(version));
  if (!id.empty()) v.set("id", id);
  v.set("op", to_string(op));
  v.set("dataset", dataset);
  v.set("ok", ok);
  if (!ok) {
    if (version >= 2) {
      // v2: the structured taxonomy object. category/retryable are derived
      // from the code so the three can never disagree on the wire.
      const ErrorCode code =
          error_code == ErrorCode::kNone ? ErrorCode::kInternal : error_code;
      JsonValue err = JsonValue::object();
      err.set("code", to_string(code));
      err.set("category", error_category(code));
      err.set("retryable", error_retryable(code));
      err.set("message", error);
      v.set("error", err);
    } else {
      // v1: the bare message string, byte-for-byte the PR-4 shape.
      v.set("error", error);
    }
    if (include_meta && !meta.is_null()) v.set("meta", meta);
    return v;
  }
  switch (op) {
    case QueryOp::kSelect:
      v.set("rumor_community", static_cast<std::uint64_t>(rumor_community));
      v.set("rumors", ids_to_json(rumors));
      v.set("num_bridge_ends", static_cast<std::uint64_t>(num_bridge_ends));
      v.set("protectors", ids_to_json(protectors));
      if (!protector_groups.empty()) {
        v.set("protector_groups", groups_to_json(protector_groups));
      }
      v.set("achieved_fraction", achieved_fraction);
      v.set("gain_history", doubles_to_json(gain_history));
      v.set("candidate_count", static_cast<std::uint64_t>(candidate_count));
      v.set("sigma_evaluations",
            static_cast<std::uint64_t>(sigma_evaluations));
      break;
    case QueryOp::kEvaluate:
      v.set("rumor_community", static_cast<std::uint64_t>(rumor_community));
      v.set("rumors", ids_to_json(rumors));
      v.set("num_bridge_ends", static_cast<std::uint64_t>(num_bridge_ends));
      v.set("protectors", ids_to_json(protectors));
      v.set("infected_by_hop", doubles_to_json(infected_by_hop));
      v.set("infected_ci95", doubles_to_json(infected_ci95));
      v.set("protected_by_hop", doubles_to_json(protected_by_hop));
      v.set("final_infected_mean", final_infected_mean);
      v.set("final_protected_mean", final_protected_mean);
      v.set("saved_fraction", saved_fraction);
      break;
    case QueryOp::kInfo:
      v.set("num_nodes", static_cast<std::uint64_t>(num_nodes));
      v.set("num_arcs", static_cast<std::uint64_t>(num_arcs));
      v.set("num_communities", static_cast<std::uint64_t>(num_communities));
      v.set("resident_bytes", static_cast<std::uint64_t>(resident_bytes));
      break;
  }
  if (include_meta && !meta.is_null()) v.set("meta", meta);
  return v;
}

QueryResult QueryResult::from_json(const JsonValue& v) {
  if (!v.is_object()) throw Error("result: expected a JSON object");
  QueryResult r;
  for (const auto& [key, val] : v.members()) {
    if (key == "v") {
      r.version = static_cast<int>(val.as_int());
    } else if (key == "id") {
      r.id = val.as_string();
    } else if (key == "op") {
      r.op = query_op_from_string(val.as_string());
    } else if (key == "dataset") {
      r.dataset = val.as_string();
    } else if (key == "ok") {
      r.ok = val.as_bool();
    } else if (key == "error") {
      if (val.is_object()) {
        // v2 structured error; category/retryable are derived fields and
        // only checked for presence-consistency by round-trip tests.
        r.error = val.get_string("message", "");
        r.error_code = error_code_from_string(val.get_string("code", ""));
      } else {
        r.error = val.as_string();
      }
    } else if (key == "rumor_community") {
      r.rumor_community = static_cast<CommunityId>(non_negative(val, "rumor_community"));
    } else if (key == "rumors") {
      r.rumors = ids_from_json(val, "rumors");
    } else if (key == "num_bridge_ends") {
      r.num_bridge_ends = static_cast<std::size_t>(non_negative(val, "num_bridge_ends"));
    } else if (key == "protectors") {
      r.protectors = ids_from_json(val, "protectors");
    } else if (key == "protector_groups") {
      r.protector_groups = groups_from_json(val, "protector_groups");
    } else if (key == "achieved_fraction") {
      r.achieved_fraction = val.as_double();
    } else if (key == "gain_history") {
      r.gain_history = doubles_from_json(val);
    } else if (key == "candidate_count") {
      r.candidate_count = static_cast<std::size_t>(non_negative(val, "candidate_count"));
    } else if (key == "sigma_evaluations") {
      r.sigma_evaluations = static_cast<std::size_t>(non_negative(val, "sigma_evaluations"));
    } else if (key == "infected_by_hop") {
      r.infected_by_hop = doubles_from_json(val);
    } else if (key == "infected_ci95") {
      r.infected_ci95 = doubles_from_json(val);
    } else if (key == "protected_by_hop") {
      r.protected_by_hop = doubles_from_json(val);
    } else if (key == "final_infected_mean") {
      r.final_infected_mean = val.as_double();
    } else if (key == "final_protected_mean") {
      r.final_protected_mean = val.as_double();
    } else if (key == "saved_fraction") {
      r.saved_fraction = val.as_double();
    } else if (key == "num_nodes") {
      r.num_nodes = static_cast<std::size_t>(non_negative(val, "num_nodes"));
    } else if (key == "num_arcs") {
      r.num_arcs = static_cast<std::size_t>(non_negative(val, "num_arcs"));
    } else if (key == "num_communities") {
      r.num_communities = static_cast<std::size_t>(non_negative(val, "num_communities"));
    } else if (key == "resident_bytes") {
      r.resident_bytes = static_cast<std::size_t>(non_negative(val, "resident_bytes"));
    } else if (key == "meta") {
      r.meta = val;
    } else {
      throw Error("result: unknown key '" + key + "'");
    }
  }
  return r;
}

QueryResult QueryResult::make_error(const QueryRequest& req,
                                    std::string message) {
  return make_error(req, ErrorCode::kInvalidArgument, std::move(message));
}

QueryResult QueryResult::make_error(const QueryRequest& req, ErrorCode code,
                                    std::string message) {
  QueryResult r;
  r.version = req.version;
  r.id = req.id;
  r.op = req.op;
  r.dataset = req.dataset;
  r.ok = false;
  r.error = std::move(message);
  r.error_code = code;
  return r;
}

}  // namespace lcrb::service
