// Versioned request/result pair of the LCRB query service — the single entry
// point the pipeline examples, lcrb_cli, the bench binaries, and the lcrbd
// daemon all speak.
//
// A QueryRequest names a registered dataset (GraphSession), describes the
// experiment (rumor originators by id, by community, or by community-size
// target), and carries one LcrbOptions aggregate. Three operations:
//
//   select    run the configured protector selector (LCRB-P greedy, SCBG,
//             or any baseline) against the session's warm caches
//   evaluate  Monte-Carlo hop series for an explicit protector set
//   info      structural summary of the session (nodes, arcs, communities,
//             resident bytes)
//
// Two wire versions are spoken side by side. A request declares its version
// with "v", and its result is rendered in the same version:
//
//   v1   the PR-4 shape, byte-for-byte: errors are a bare message string,
//        no tenant field. Every existing client and golden file keeps
//        working unchanged.
//   v2   adds `tenant` (admission-control identity; defaults to the dataset)
//        and renders errors structurally as
//        {"code","category","retryable","message"} (see service/errors.h).
//
// Results split deterministic payload fields (bit-identical for a fixed
// request against equal session state, independent of thread count,
// concurrency, or batching) from the `meta` object (timings, cache hits,
// visit counters), which to_json() omits unless asked. Golden tests and the
// batch-vs-sequential identity check compare to_json(false) lines only.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lcrb/options.h"
#include "service/errors.h"
#include "util/json.h"
#include "util/types.h"

namespace lcrb::service {

/// Oldest wire version this build still speaks (and the default for
/// programmatically-built requests, so in-process callers and cache keys are
/// unchanged from PR 4).
inline constexpr int kProtocolVersion = 1;
/// Newest wire version this build speaks. Requests outside
/// [kProtocolVersion, kProtocolVersionMax] are rejected rather than misread.
inline constexpr int kProtocolVersionMax = 2;

enum class QueryOp : std::uint8_t {
  kSelect,
  kEvaluate,
  kInfo,
};

std::string to_string(QueryOp op);
QueryOp query_op_from_string(const std::string& name);

struct QueryRequest {
  int version = kProtocolVersion;
  std::string id;       ///< caller's correlation tag, echoed verbatim
  QueryOp op = QueryOp::kSelect;
  std::string dataset;  ///< GraphSession key in the registry
  /// Admission-control identity (v2 wire field; always usable in-process).
  /// Empty means "the dataset is the tenant" — per-dataset fairness out of
  /// the box. Quotas and weighted round-robin dispatch key on this; the
  /// deterministic payload never depends on it.
  std::string tenant;

  // --- experiment shape (select / evaluate) --------------------------------
  /// Explicit rumor originators; when non-empty they win and must share one
  /// community. Otherwise `num_rumors` originators are sampled (seeded by
  /// `rumor_seed`) from `rumor_community`, or — when that is
  /// kInvalidCommunity — from the community closest to `community_size`
  /// nodes (the CLI's historical default behavior).
  std::vector<NodeId> rumor_ids;
  CommunityId rumor_community = kInvalidCommunity;
  std::size_t community_size = 100;
  std::size_t num_rumors = 5;
  std::uint64_t rumor_seed = 1;
  /// Multi-rumor experiments: one rumor campaign per group (cascade 1 plus
  /// rumor-role extras; see make_seed_sets). When non-empty this wins over
  /// rumor_ids / rumor_community — the flattened union (which must share one
  /// community) is the rumor set the selectors contain, and K-way evaluate
  /// runs one cascade per group under options.cascade_priority.
  std::vector<std::vector<NodeId>> rumor_groups;

  /// Selector knobs (select op). Validated on admission.
  LcrbOptions options;

  // --- evaluate ------------------------------------------------------------
  std::vector<NodeId> protectors;  ///< set to evaluate
  std::size_t eval_runs = 200;
  std::uint64_t eval_seed = 1;

  /// Time budget in milliseconds from admission; -1 = none. 0 means the
  /// budget is already spent — admission control deterministically rejects
  /// with code deadline_rejected (v1 message "deadline exceeded", which is
  /// what the deadline tests pin). Positive budgets are re-checked when the
  /// dispatcher dequeues the request and at stage boundaries (after session
  /// acquisition, after experiment setup, after selection), never
  /// mid-algorithm; a lapse there is code deadline_expired.
  std::int64_t deadline_ms = -1;

  JsonValue to_json() const;
  /// Throws lcrb::Error on unknown keys, type mismatches, or an unsupported
  /// version. Absent keys keep their defaults.
  static QueryRequest from_json(const JsonValue& v);
};

struct QueryResult {
  int version = kProtocolVersion;  ///< mirrors the request's version
  std::string id;  ///< echoed from the request
  QueryOp op = QueryOp::kSelect;
  std::string dataset;
  bool ok = true;
  std::string error;  ///< error message when !ok (the whole v1 error surface)
  /// Structured taxonomy entry when !ok (category and retryability derive
  /// from it; see service/errors.h). v1 rendering drops it; v2 renders the
  /// full {code, category, retryable, message} object.
  ErrorCode error_code = ErrorCode::kNone;

  // --- select / evaluate ---------------------------------------------------
  CommunityId rumor_community = kInvalidCommunity;
  std::vector<NodeId> rumors;
  std::size_t num_bridge_ends = 0;

  // --- select --------------------------------------------------------------
  std::vector<NodeId> protectors;    ///< in pick order
  /// Per-campaign protector groups (multi_mode selects only); empty
  /// otherwise, and then absent from the JSON so single-campaign payloads
  /// are unchanged.
  std::vector<std::vector<NodeId>> protector_groups;
  double achieved_fraction = 0.0;
  std::vector<double> gain_history;
  std::size_t candidate_count = 0;
  std::size_t sigma_evaluations = 0;

  // --- evaluate ------------------------------------------------------------
  std::vector<double> infected_by_hop;   ///< cumulative mean per hop
  std::vector<double> infected_ci95;     ///< 95% half-width per hop
  std::vector<double> protected_by_hop;  ///< cumulative mean per hop
  double final_infected_mean = 0.0;
  double final_protected_mean = 0.0;
  double saved_fraction = 0.0;           ///< bridge ends saved

  // --- info ----------------------------------------------------------------
  std::size_t num_nodes = 0;
  std::size_t num_arcs = 0;
  std::size_t num_communities = 0;
  std::size_t resident_bytes = 0;  ///< session graph + warm caches

  /// Nondeterministic extras: wall_ms, warm-cache hit flags, nodes_visited,
  /// sigma path. Never part of the deterministic payload.
  JsonValue meta;

  /// Deterministic single-line JSON; `include_meta` appends the meta object
  /// (for humans and dashboards, never for golden comparisons).
  JsonValue to_json(bool include_meta = false) const;
  static QueryResult from_json(const JsonValue& v);

  /// Uniform error result (used by the service for every failure path so
  /// error payloads are as deterministic as success payloads). The overload
  /// without a code classifies as invalid_argument — the class of every
  /// bare lcrb::Error thrown on request-derived values.
  static QueryResult make_error(const QueryRequest& req, std::string message);
  static QueryResult make_error(const QueryRequest& req, ErrorCode code,
                                std::string message);
};

}  // namespace lcrb::service
