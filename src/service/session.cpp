#include "service/session.h"

#include <sstream>

#include "util/error.h"

namespace lcrb::service {

namespace {

std::size_t graph_bytes(GraphRef g) {
  if (const DiGraph* csr = g.csr_or_null()) {
    const std::size_t n = csr->num_nodes();
    const std::size_t m = static_cast<std::size_t>(csr->num_edges());
    // Both CSR directions: two offset arrays of n+1 EdgeIds, two endpoint
    // arrays of m NodeIds.
    return 2 * ((n + 1) * sizeof(EdgeId) + m * sizeof(NodeId));
  }
  // Compressed backend: the encoded footprint itself (mmap-backed pages
  // count too — they are this session's resident working set).
  return g.memory_bytes();
}

std::size_t partition_bytes(const Partition& p) {
  // membership_ (n CommunityIds) + members_ lists (n NodeIds total across
  // communities, plus one vector header per community).
  const std::size_t n = p.num_nodes();
  return n * sizeof(CommunityId) + n * sizeof(NodeId) +
         static_cast<std::size_t>(p.num_communities()) *
             sizeof(std::vector<NodeId>);
}

std::size_t setup_bytes(const ExperimentSetup& s) {
  return sizeof(ExperimentSetup) + s.rumors.capacity() * sizeof(NodeId) +
         s.bridges.bridge_ends.capacity() * sizeof(NodeId) +
         s.bridges.rumor_dist.capacity() * sizeof(std::uint32_t);
}

void append_sigma_key(std::ostringstream& key, const SigmaConfig& cfg) {
  // hexfloat: exact, so two distinct probabilities can never share a key.
  key << ":model=" << to_string(cfg.model) << ":hops=" << cfg.max_hops
      << ":seed=" << cfg.seed << ":icp=" << std::hexfloat << cfg.ic_edge_prob
      << std::defaultfloat;
}

}  // namespace

GraphSession::GraphSession(std::string dataset, GraphAny graph,
                           Partition partition)
    : dataset_(std::move(dataset)),
      graph_(std::move(graph)),
      partition_(std::move(partition)) {
  LCRB_REQUIRE(partition_.num_nodes() == graph_.num_nodes(),
               "session partition does not cover the graph");
  base_bytes_ = graph_bytes(graph_.ref()) + partition_bytes(partition_);
}

std::shared_ptr<const ExperimentSetup> GraphSession::setup_for(
    const std::string& key, const std::function<ExperimentSetup()>& build,
    bool* cache_hit) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = setups_.find(key);
  if (it != setups_.end()) {
    if (cache_hit != nullptr) *cache_hit = true;
    return it->second;
  }
  if (cache_hit != nullptr) *cache_hit = false;
  auto setup = std::make_shared<const ExperimentSetup>(build());
  setups_.emplace(key, setup);
  return setup;
}

std::shared_ptr<SigmaEstimator> GraphSession::estimator_for(
    const std::string& setup_key, const ExperimentSetup& setup,
    const SigmaConfig& cfg, ThreadPool* pool, bool* cache_hit) {
  std::ostringstream key;
  key << setup_key;
  append_sigma_key(key, cfg);
  key << ":samples=" << cfg.samples << ":cache=" << cfg.use_realization_cache
      << ":capbytes=" << cfg.max_cache_bytes;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = estimators_.find(key.str());
  if (it != estimators_.end()) {
    if (cache_hit != nullptr) *cache_hit = true;
    return it->second;
  }
  if (cache_hit != nullptr) *cache_hit = false;
  auto estimator = std::make_shared<SigmaEstimator>(
      graph_.ref(), setup.rumors, setup.bridges.bridge_ends, cfg, pool);
  estimators_.emplace(key.str(), estimator);
  return estimator;
}

std::shared_ptr<RisContext> GraphSession::ris_context_for(
    const std::string& setup_key, const ExperimentSetup& setup,
    const RisConfig& cfg, bool* cache_hit) {
  std::ostringstream key;
  key << setup_key;
  SigmaConfig draws;
  draws.model = cfg.model;
  draws.max_hops = cfg.max_hops;
  draws.seed = cfg.seed;
  draws.ic_edge_prob = cfg.ic_edge_prob;
  append_sigma_key(key, draws);
  // The byte budget shapes which RR sets a pool can hold, so budgeted and
  // unbudgeted queries must not share a context (ris_greedy_with_context
  // enforces the same match).
  key << ":pb=" << cfg.max_pool_bytes;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ris_contexts_.find(key.str());
  if (it != ris_contexts_.end()) {
    if (cache_hit != nullptr) *cache_hit = true;
    return it->second;
  }
  if (cache_hit != nullptr) *cache_hit = false;
  auto ctx = std::make_shared<RisContext>(graph_.ref(), setup.rumors,
                                          setup.bridges.bridge_ends, cfg);
  ris_contexts_.emplace(key.str(), ctx);
  return ctx;
}

std::shared_ptr<const QueryResult> GraphSession::cached_result(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = results_.find(key);
  return it == results_.end() ? nullptr : it->second.result;
}

void GraphSession::store_result(const std::string& key,
                                const QueryResult& result) {
  // Strip the caller-varying bits so a cache entry serves every caller: the
  // id and wire version are re-stamped on replay, and meta describes the
  // computing run only.
  QueryResult canonical = result;
  canonical.version = kProtocolVersion;
  canonical.id.clear();
  canonical.meta = JsonValue();
  const std::size_t bytes =
      key.size() + canonical.to_json(false).dump().size();
  std::lock_guard<std::mutex> lock(mu_);
  results_.emplace(
      key, CachedResult{
               std::make_shared<const QueryResult>(std::move(canonical)),
               bytes});
}

std::size_t GraphSession::memory_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t bytes = base_bytes_;
  for (const auto& [key, setup] : setups_) {
    bytes += key.size() + setup_bytes(*setup);
  }
  for (const auto& [key, est] : estimators_) {
    bytes += key.size() + est->memory_bytes();
  }
  for (const auto& [key, ctx] : ris_contexts_) {
    bytes += key.size() + ctx->memory_bytes();
  }
  for (const auto& [key, entry] : results_) {
    bytes += entry.bytes;
  }
  return bytes;
}

void GraphSession::shed_warm_state() {
  std::lock_guard<std::mutex> lock(mu_);
  setups_.clear();
  estimators_.clear();
  ris_contexts_.clear();
  results_.clear();
}

std::string make_result_key(const QueryRequest& req) {
  // Canonicalize everything that cannot affect the deterministic payload:
  // correlation id, deadline budget, admission identity, and the wire
  // version (a v1 and a v2 rendering of the same query share one entry —
  // the replay is re-stamped with the caller's version).
  QueryRequest canonical = req;
  canonical.version = kProtocolVersion;
  canonical.id.clear();
  canonical.tenant.clear();
  canonical.deadline_ms = -1;
  return canonical.to_json().dump();
}

std::string make_setup_key(const std::vector<NodeId>& rumor_ids,
                           CommunityId resolved_community,
                           std::size_t num_rumors, std::uint64_t rumor_seed) {
  std::ostringstream key;
  if (!rumor_ids.empty()) {
    key << "ids=";
    for (std::size_t i = 0; i < rumor_ids.size(); ++i) {
      if (i > 0) key << ',';
      key << rumor_ids[i];
    }
  } else {
    key << "comm=" << resolved_community << ":k=" << num_rumors
        << ":seed=" << rumor_seed;
  }
  return key.str();
}

std::shared_ptr<GraphSession> SessionRegistry::open(std::string dataset,
                                                    GraphAny graph,
                                                    Partition partition) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(dataset);
  if (it != sessions_.end()) {
    it->second.last_used = ++tick_;
    return it->second.session;
  }
  auto session = std::make_shared<GraphSession>(dataset, std::move(graph),
                                                std::move(partition));
  sessions_.emplace(std::move(dataset), Entry{session, ++tick_});
  evict_locked();
  return session;
}

std::shared_ptr<GraphSession> SessionRegistry::find(
    const std::string& dataset) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(dataset);
  if (it == sessions_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  it->second.last_used = ++tick_;
  // Warm state may have grown since the last look; rebalance, never
  // evicting the entry just requested (its use_count is now > 1).
  std::shared_ptr<GraphSession> session = it->second.session;
  evict_locked();
  return session;
}

bool SessionRegistry::close(const std::string& dataset) {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.erase(dataset) > 0;
}

std::vector<std::string> SessionRegistry::datasets() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(sessions_.size());
  for (const auto& [name, entry] : sessions_) out.push_back(name);
  return out;
}

std::size_t SessionRegistry::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& [name, entry] : sessions_) {
    total += entry.session->memory_bytes();
  }
  return total;
}

void SessionRegistry::set_max_bytes(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  max_bytes_ = bytes;
  evict_locked();
}

SessionRegistry::Stats SessionRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.sessions = sessions_.size();
  for (const auto& [name, entry] : sessions_) {
    s.resident_bytes += entry.session->memory_bytes();
  }
  s.evictions = evictions_;
  s.hits = hits_;
  s.misses = misses_;
  return s;
}

void SessionRegistry::evict_locked() {
  for (;;) {
    std::size_t total = 0;
    for (const auto& [name, entry] : sessions_) {
      total += entry.session->memory_bytes();
    }
    if (total <= max_bytes_) return;
    // Oldest unpinned entry. The registry holds exactly one reference per
    // session; anything above that is an in-flight query.
    auto victim = sessions_.end();
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
      if (it->second.session.use_count() > 1) continue;
      if (victim == sessions_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == sessions_.end()) return;  // everything pinned: over budget
    ++evictions_;
    sessions_.erase(victim);
  }
}

}  // namespace lcrb::service
