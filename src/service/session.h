// GraphSession + SessionRegistry — the shared-graph layer of the query
// service.
//
// A GraphSession owns one immutable loaded dataset (CSR graph with both
// adjacency directions + community partition) and the warm per-experiment
// state queries accumulate against it: memoized ExperimentSetups (bridge
// ends), shared SigmaEstimators (PR-1 realization caches), and shared
// RisContexts (PR-2 RR pools, grown monotonically and evaluated by prefix).
// Sessions are handed out as shared_ptr and immutable after construction
// except for the internally-locked caches, so any number of queries can run
// against one concurrently.
//
// The SessionRegistry maps dataset id -> session with LRU eviction under a
// configurable byte budget. Accounting is capacity-based via
// GraphSession::memory_bytes(); sessions currently pinned by an in-flight
// query (shared_ptr use_count > 1) are never evicted, so the registry can
// transiently exceed its budget rather than fail queries.
//
// Determinism note (this file is on the determinism linter's sensitive
// list): all keyed lookups use std::map with string keys — iteration order
// is lexicographic, never hash-dependent.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "community/partition.h"
#include "graph/backend.h"
#include "graph/graph.h"
#include "lcrb/pipeline.h"
#include "lcrb/ris.h"
#include "lcrb/sigma.h"
#include "service/request.h"
#include "util/threadpool.h"

namespace lcrb::service {

class GraphSession {
 public:
  /// `graph` may be either backend (DiGraph converts implicitly, so legacy
  /// CSR call sites are unchanged).
  GraphSession(std::string dataset, GraphAny graph, Partition partition);

  const std::string& dataset() const { return dataset_; }
  GraphRef graph() const { return graph_.ref(); }
  GraphBackend backend() const { return graph_.backend(); }
  const Partition& partition() const { return partition_; }

  /// Memoized experiment setup. `key` must deterministically identify the
  /// rumor choice (see make_setup_key); `build` runs under the session lock
  /// on a miss, so it must not re-enter the session.
  std::shared_ptr<const ExperimentSetup> setup_for(
      const std::string& key,
      const std::function<ExperimentSetup()>& build, bool* cache_hit);

  /// Shared warm sigma estimator for (setup, cfg). The estimator is
  /// thread-safe for concurrent sigma() calls, so one instance — and its
  /// realization cache — serves every concurrent query with matching knobs.
  std::shared_ptr<SigmaEstimator> estimator_for(
      const std::string& setup_key, const ExperimentSetup& setup,
      const SigmaConfig& cfg, ThreadPool* pool, bool* cache_hit);

  /// Shared warm RIS context, keyed by the draw-shaping knobs only
  /// (seed/max_hops/model/ic_edge_prob): queries whose accuracy knobs differ
  /// still share pools, evaluating by prefix.
  std::shared_ptr<RisContext> ris_context_for(const std::string& setup_key,
                                              const ExperimentSetup& setup,
                                              const RisConfig& cfg,
                                              bool* cache_hit);

  /// Memoized select/evaluate result for a canonical request key (the
  /// request's JSON with the caller-varying fields — id, deadline — blanked).
  /// Results are deterministic functions of the immutable session and the
  /// request, so replaying a cached payload is bit-identical to recomputing
  /// it. nullptr on miss; store_result() fills the slot (first write wins).
  std::shared_ptr<const QueryResult> cached_result(
      const std::string& key) const;
  void store_result(const std::string& key, const QueryResult& result);

  /// Capacity-based heap footprint: graph + partition + every warm cache.
  std::size_t memory_bytes() const;

  /// Drops the warm caches (graph and partition stay). The registry calls
  /// this before re-measuring when it needs bytes back but the session is
  /// pinned.
  void shed_warm_state();

 private:
  std::string dataset_;
  GraphAny graph_;
  Partition partition_;
  std::size_t base_bytes_ = 0;  ///< graph + partition, fixed at construction

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const ExperimentSetup>> setups_;
  std::map<std::string, std::shared_ptr<SigmaEstimator>> estimators_;
  std::map<std::string, std::shared_ptr<RisContext>> ris_contexts_;
  struct CachedResult {
    std::shared_ptr<const QueryResult> result;
    std::size_t bytes = 0;  ///< key + serialized payload, for accounting
  };
  std::map<std::string, CachedResult> results_;
};

/// The canonical result-cache key for a request: its JSON with the
/// caller-varying fields (id, deadline_ms) blanked.
std::string make_result_key(const QueryRequest& req);

/// Deterministic cache key for a rumor choice: explicit ids win, otherwise
/// the (resolved community, count, seed) triple.
std::string make_setup_key(const std::vector<NodeId>& rumor_ids,
                           CommunityId resolved_community,
                           std::size_t num_rumors, std::uint64_t rumor_seed);

class SessionRegistry {
 public:
  static constexpr std::size_t kDefaultMaxBytes = std::size_t{4} << 30;

  explicit SessionRegistry(std::size_t max_bytes = kDefaultMaxBytes)
      : max_bytes_(max_bytes) {}

  /// Registers a loaded dataset and returns its session. Re-opening an
  /// existing id returns the existing session untouched (the caller's graph
  /// is discarded) — sessions are immutable, so both callers see the same
  /// data. The graph may be either backend; the session's accounting then
  /// reflects the compressed footprint.
  std::shared_ptr<GraphSession> open(std::string dataset, GraphAny graph,
                                     Partition partition);

  /// Session for `dataset`, refreshing its LRU stamp; nullptr when absent
  /// (or evicted — callers re-open).
  std::shared_ptr<GraphSession> find(const std::string& dataset);

  /// Explicitly removes a session. True when something was removed.
  bool close(const std::string& dataset);

  /// Registered ids, lexicographic.
  std::vector<std::string> datasets() const;

  std::size_t resident_bytes() const;
  std::size_t max_bytes() const { return max_bytes_; }
  void set_max_bytes(std::size_t bytes);

  struct Stats {
    std::size_t sessions = 0;
    std::size_t resident_bytes = 0;
    std::size_t evictions = 0;   ///< lifetime
    std::size_t hits = 0;        ///< find() returning a session
    std::size_t misses = 0;      ///< find() returning nullptr
  };
  Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<GraphSession> session;
    std::uint64_t last_used = 0;
  };

  /// Evicts least-recently-used unpinned sessions until under budget (or
  /// nothing evictable remains). Caller holds mu_.
  void evict_locked();

  mutable std::mutex mu_;
  std::size_t max_bytes_;
  std::uint64_t tick_ = 0;
  std::map<std::string, Entry> sessions_;
  std::size_t evictions_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace lcrb::service
