#include "util/args.h"

#include <cstdlib>

#include "util/error.h"

namespace lcrb {

Args::Args(int argc, const char* const* argv) {
  std::vector<std::string> v;
  v.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) v.emplace_back(argv[i]);
  parse(v);
}

Args::Args(const std::vector<std::string>& argv) { parse(argv); }

void Args::parse(const std::vector<std::string>& argv) {
  for (std::size_t i = 0; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (a.rfind("--", 0) != 0) {
      positional_.push_back(a);
      continue;
    }
    std::string name = a.substr(2);
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      values_[name.substr(0, eq)] = name.substr(eq + 1);
    } else if (i + 1 < argv.size() && argv[i + 1].rfind("--", 0) != 0) {
      values_[name] = argv[++i];
    } else {
      values_[name] = "true";  // bare flag
    }
  }
}

bool Args::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Args::get_string(const std::string& name,
                             const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Args::get_int(const std::string& name, std::int64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw Error("flag --" + name + " expects an integer, got '" + it->second + "'");
  }
}

double Args::get_double(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw Error("flag --" + name + " expects a number, got '" + it->second + "'");
  }
}

bool Args::get_bool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second != "false" && it->second != "0";
}

double Args::get_double_env(const std::string& name, const std::string& env,
                            double def) const {
  if (has(name)) return get_double(name, def);
  if (const char* v = std::getenv(env.c_str())) {
    try {
      return std::stod(v);
    } catch (const std::exception&) {
      throw Error("env " + env + " expects a number, got '" + std::string(v) + "'");
    }
  }
  return def;
}

std::int64_t Args::get_int_env(const std::string& name, const std::string& env,
                               std::int64_t def) const {
  if (has(name)) return get_int(name, def);
  if (const char* v = std::getenv(env.c_str())) {
    try {
      return std::stoll(v);
    } catch (const std::exception&) {
      throw Error("env " + env + " expects an integer, got '" + std::string(v) + "'");
    }
  }
  return def;
}

}  // namespace lcrb
