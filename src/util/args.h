// Tiny CLI argument parser for examples and bench binaries.
//
// Supports `--name value`, `--name=value`, and boolean `--flag`. Values can
// also be supplied via environment variables (used by the bench harness for
// LCRB_BENCH_SCALE-style overrides): env wins over default, CLI wins over env.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lcrb {

class Args {
 public:
  Args(int argc, const char* const* argv);
  explicit Args(const std::vector<std::string>& argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def = false) const;

  /// Like get_double but also consults environment variable `env` when the
  /// flag is absent on the command line.
  double get_double_env(const std::string& name, const std::string& env,
                        double def) const;
  std::int64_t get_int_env(const std::string& name, const std::string& env,
                           std::int64_t def) const;

  /// Positional arguments (anything not starting with --).
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  void parse(const std::vector<std::string>& argv);

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace lcrb
