#include "util/bitset.h"

#include <bit>
#include <cstring>

namespace lcrb {

void DynamicBitset::reset() {
  if (!words_.empty()) {
    std::memset(words_.data(), 0, words_.size() * sizeof(std::uint64_t));
  }
}

std::size_t DynamicBitset::count() const {
  std::size_t c = 0;
  for (std::uint64_t w : words_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

bool DynamicBitset::none() const {
  for (std::uint64_t w : words_)
    if (w) return false;
  return true;
}

bool DynamicBitset::intersects(const DynamicBitset& other) const {
  LCRB_REQUIRE(size_ == other.size_, "bitset size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i)
    if (words_[i] & other.words_[i]) return true;
  return false;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  LCRB_REQUIRE(size_ == other.size_, "bitset size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  LCRB_REQUIRE(size_ == other.size_, "bitset size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::subtract(const DynamicBitset& other) {
  LCRB_REQUIRE(size_ == other.size_, "bitset size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

std::vector<std::uint32_t> DynamicBitset::to_indices() const {
  std::vector<std::uint32_t> out;
  out.reserve(count());
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    std::uint64_t w = words_[wi];
    while (w) {
      const int bit = std::countr_zero(w);
      out.push_back(static_cast<std::uint32_t>(wi * 64 + static_cast<std::size_t>(bit)));
      w &= w - 1;
    }
  }
  return out;
}

}  // namespace lcrb
