// Dynamic bitset tuned for diffusion simulation (fast set/test/reset, cheap
// clearing between Monte-Carlo runs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/error.h"

namespace lcrb {

/// Fixed-capacity bitset sized at construction. Unlike std::vector<bool> the
/// word array is directly iterable, popcount is O(words), and reset() is a
/// memset.
class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  std::size_t size() const { return size_; }

  bool test(std::size_t i) const {
    LCRB_REQUIRE(i < size_, "bit index out of range");
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::size_t i) {
    LCRB_REQUIRE(i < size_, "bit index out of range");
    words_[i >> 6] |= 1ULL << (i & 63);
  }

  void clear(std::size_t i) {
    LCRB_REQUIRE(i < size_, "bit index out of range");
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  /// Sets bit i, returning whether it was previously clear.
  bool set_if_clear(std::size_t i) {
    LCRB_REQUIRE(i < size_, "bit index out of range");
    const std::uint64_t mask = 1ULL << (i & 63);
    std::uint64_t& w = words_[i >> 6];
    if (w & mask) return false;
    w |= mask;
    return true;
  }

  /// Clears every bit; O(words) memset.
  void reset();

  /// Number of set bits.
  std::size_t count() const;

  /// True if no bit is set.
  bool none() const;

  /// True if any bit of `other` is also set here. Sizes must match.
  bool intersects(const DynamicBitset& other) const;

  /// In-place union. Sizes must match.
  DynamicBitset& operator|=(const DynamicBitset& other);
  /// In-place intersection. Sizes must match.
  DynamicBitset& operator&=(const DynamicBitset& other);
  /// In-place difference (this and-not other). Sizes must match.
  DynamicBitset& subtract(const DynamicBitset& other);

  bool operator==(const DynamicBitset& other) const = default;

  /// Indices of all set bits, ascending.
  std::vector<std::uint32_t> to_indices() const;

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace lcrb
