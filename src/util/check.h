// Runtime invariant checks, compiled in or out per build configuration.
//
// Three tiers, all throwing lcrb::Error (never aborting) so tests can assert
// on violations and callers can recover:
//
//   LCRB_REQUIRE   (util/error.h) — precondition on PUBLIC input; always on.
//   LCRB_CHECK     — cheap internal invariant (O(1)); on in debug builds
//                    (!NDEBUG) and whenever LCRB_ENABLE_INVARIANTS is set.
//   LCRB_DCHECK    — internal invariant that may sit on a hot path; on only
//                    under LCRB_ENABLE_INVARIANTS.
//   LCRB_INVARIANT — runs a whole validation expression (e.g. a validate()
//                    call that is itself O(n) or worse); on only under
//                    LCRB_ENABLE_INVARIANTS.
//
// LCRB_ENABLE_INVARIANTS is a CMake option (-DLCRB_ENABLE_INVARIANTS=ON);
// CI runs the full ctest suite once with it enabled. Disabled checks still
// type-check their condition (via unevaluated sizeof) so invariant-only
// expressions cannot rot, and cost exactly nothing at runtime.
#pragma once

#include "util/error.h"

namespace lcrb {
/// True when this translation unit was compiled with the invariant layer on.
/// Tests use it to assert that self-validation actually fired.
#if defined(LCRB_ENABLE_INVARIANTS)
inline constexpr bool kInvariantsEnabled = true;
#else
inline constexpr bool kInvariantsEnabled = false;
#endif
}  // namespace lcrb

#if defined(LCRB_ENABLE_INVARIANTS) || !defined(NDEBUG)
#define LCRB_CHECK(cond, msg) LCRB_REQUIRE(cond, msg)
#else
#define LCRB_CHECK(cond, msg) \
  do {                        \
    (void)sizeof((cond));     \
    (void)sizeof((msg));      \
  } while (false)
#endif

#if defined(LCRB_ENABLE_INVARIANTS)
#define LCRB_DCHECK(cond, msg) LCRB_REQUIRE(cond, msg)
#define LCRB_INVARIANT(expr) \
  do {                       \
    expr;                    \
  } while (false)
#else
#define LCRB_DCHECK(cond, msg) \
  do {                         \
    (void)sizeof((cond));      \
    (void)sizeof((msg));       \
  } while (false)
#define LCRB_INVARIANT(expr)     \
  do {                           \
    (void)sizeof(((expr), 0));   \
  } while (false)
#endif
