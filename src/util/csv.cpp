#include "util/csv.h"

#include "util/error.h"

namespace lcrb {

CsvWriter::CsvWriter(const std::string& path) : file_(path), to_file_(true) {
  LCRB_REQUIRE(file_.good(), "cannot open CSV file for writing: " + path);
}

CsvWriter::CsvWriter() : to_file_(false) {}

void CsvWriter::write_header(const std::vector<std::string>& columns) {
  LCRB_REQUIRE(columns_ == 0, "CSV header already written");
  LCRB_REQUIRE(!columns.empty(), "CSV header must have at least one column");
  columns_ = columns.size();
  write_line(columns);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  if (columns_ != 0) {
    LCRB_REQUIRE(fields.size() == columns_, "CSV row width differs from header");
  }
  write_line(fields);
}

std::string CsvWriter::str() const {
  LCRB_REQUIRE(!to_file_, "str() only valid for in-memory CsvWriter");
  return buffer_.str();
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_line(const std::vector<std::string>& fields) {
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) line += ',';
    line += escape(fields[i]);
  }
  line += '\n';
  if (to_file_) {
    file_ << line;
    LCRB_REQUIRE(file_.good(), "CSV write failed");
  } else {
    buffer_ << line;
  }
}

}  // namespace lcrb
