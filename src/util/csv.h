// Minimal CSV writer used by bench binaries to dump figure series.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace lcrb {

/// Writes RFC-4180-ish CSV (quotes fields containing comma/quote/newline).
/// Row length is validated against the header once a header is set.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Throws lcrb::Error on failure.
  explicit CsvWriter(const std::string& path);
  /// Writes to an in-memory buffer retrievable via str() (for tests).
  CsvWriter();

  void write_header(const std::vector<std::string>& columns);
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: formats arithmetic values with operator<<.
  template <typename... Ts>
  void write_values(const Ts&... vals) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(vals));
    (fields.push_back(format(vals)), ...);
    write_row(fields);
  }

  /// In-memory contents (only valid for the buffer constructor).
  std::string str() const;

 private:
  template <typename T>
  static std::string format(const T& v) {
    std::ostringstream os;
    os << v;
    return os.str();
  }

  static std::string escape(const std::string& field);
  void write_line(const std::vector<std::string>& fields);

  std::ofstream file_;
  std::ostringstream buffer_;
  bool to_file_ = false;
  std::size_t columns_ = 0;
};

}  // namespace lcrb
