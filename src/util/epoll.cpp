#if defined(__linux__)

#include "util/epoll.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.h"

namespace lcrb {

namespace {

[[noreturn]] void fail(const char* what) {
  throw Error(std::string(what) + " failed: " + std::strerror(errno));
}

}  // namespace

Epoll::Epoll() {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd_ < 0) fail("epoll_create1");
}

Epoll::~Epoll() {
  if (epfd_ >= 0) ::close(epfd_);
}

void Epoll::add(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) fail("epoll_ctl(ADD)");
}

void Epoll::mod(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0) fail("epoll_ctl(MOD)");
}

void Epoll::del(int fd) {
  if (::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
    fail("epoll_ctl(DEL)");
  }
}

std::vector<EpollEvent> Epoll::wait(int timeout_ms) {
  epoll_event ready[64];
  const int n = ::epoll_wait(epfd_, ready, 64, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return {};
    fail("epoll_wait");
  }
  std::vector<EpollEvent> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] = {ready[i].data.fd, ready[i].events};
  }
  return out;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    fail("fcntl(O_NONBLOCK)");
  }
}

EventFd::EventFd() {
  fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (fd_ < 0) fail("eventfd");
}

EventFd::~EventFd() {
  if (fd_ >= 0) ::close(fd_);
}

void EventFd::signal() {
  const std::uint64_t one = 1;
  // A full counter (EAGAIN) still wakes the loop; nothing to handle.
  [[maybe_unused]] const ssize_t n = ::write(fd_, &one, sizeof(one));
}

void EventFd::drain() {
  std::uint64_t count = 0;
  while (::read(fd_, &count, sizeof(count)) > 0) {
  }
}

}  // namespace lcrb

#endif  // __linux__
