// Thin RAII wrappers over the Linux epoll readiness API plus the two
// primitives an event-looped daemon needs next to it: nonblocking fds and an
// eventfd for cross-thread wakeups (worker threads signal the loop without
// touching any loop-owned state).
//
// Linux-only (epoll and eventfd have no portable equivalent); every user is
// expected to guard with LCRB_HAVE_EPOLL.
#pragma once

#if defined(__linux__)
#define LCRB_HAVE_EPOLL 1

#include <sys/epoll.h>  // EPOLLIN/EPOLLOUT/... for callers of add()/mod()

#include <cstdint>
#include <vector>

namespace lcrb {

/// One readiness report from Epoll::wait().
struct EpollEvent {
  int fd = -1;
  std::uint32_t events = 0;  ///< EPOLLIN / EPOLLOUT / EPOLLHUP / EPOLLERR bits
};

/// Level-triggered epoll instance. Register interest per fd, then wait();
/// level-triggering keeps the loop logic simple (no drained-buffer
/// bookkeeping — readiness re-reports until consumed).
class Epoll {
 public:
  Epoll();
  ~Epoll();

  Epoll(const Epoll&) = delete;
  Epoll& operator=(const Epoll&) = delete;

  void add(int fd, std::uint32_t events);
  void mod(int fd, std::uint32_t events);
  void del(int fd);

  /// Blocks up to timeout_ms (-1 = forever) and returns every ready fd.
  /// EINTR returns an empty set rather than throwing.
  std::vector<EpollEvent> wait(int timeout_ms);

 private:
  int epfd_ = -1;
};

/// Puts an fd into O_NONBLOCK mode. Throws lcrb::Error on failure.
void set_nonblocking(int fd);

/// Wakeup channel: any thread may signal(); the owning loop registers fd()
/// for EPOLLIN and calls drain() when it fires (coalescing is fine — the
/// signal means "check your queues", not "exactly one item").
class EventFd {
 public:
  EventFd();
  ~EventFd();

  EventFd(const EventFd&) = delete;
  EventFd& operator=(const EventFd&) = delete;

  int fd() const { return fd_; }
  void signal();
  void drain();

 private:
  int fd_ = -1;
};

}  // namespace lcrb

#endif  // __linux__
