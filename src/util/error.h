// Error type used across the LCRB library.
//
// The library throws `lcrb::Error` for precondition violations and I/O
// failures; it never aborts. Hot paths validate with LCRB_REQUIRE so release
// builds keep the checks (they are cheap relative to graph traversal).
#pragma once

#include <stdexcept>
#include <string>

namespace lcrb {

/// Exception thrown by all LCRB components on invalid input or I/O failure.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise(const char* cond, const char* file, int line,
                               const std::string& msg) {
  throw Error(std::string(file) + ":" + std::to_string(line) +
              ": requirement failed (" + cond + "): " + msg);
}
}  // namespace detail

}  // namespace lcrb

/// Precondition check that throws lcrb::Error with location info.
#define LCRB_REQUIRE(cond, msg)                                   \
  do {                                                            \
    if (!(cond)) ::lcrb::detail::raise(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
