#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace lcrb {

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw Error("json: " + what + " at byte " + std::to_string(pos));
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue v = value(0);
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value(int depth) {
    if (depth > kMaxDepth) fail(pos_, "nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return JsonValue(string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail(pos_, "invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail(pos_, "invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail(pos_, "invalid literal");
      default: return number();
    }
  }

  JsonValue object(int depth) {
    expect('{');
    JsonValue out = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      out.set(std::move(key), value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return out;
    }
  }

  JsonValue array(int depth) {
    expect('[');
    JsonValue out = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return out;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(pos_ - 1, "raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_codepoint(out); break;
        default: fail(pos_ - 1, "unknown escape");
      }
    }
  }

  std::uint32_t hex4() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail(pos_ - 1, "bad \\u escape");
      }
    }
    return v;
  }

  void append_codepoint(std::string& out) {
    std::uint32_t cp = hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      // Surrogate pair: a low surrogate must follow.
      if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        fail(pos_, "unpaired surrogate");
      }
      pos_ += 2;
      const std::uint32_t lo = hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail(pos_ - 4, "unpaired surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail(pos_ - 4, "unpaired surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
      ++pos_;
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
        ++pos_;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (integral) {
      std::int64_t iv = 0;
      const auto [p, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), iv);
      if (ec == std::errc() && p == tok.data() + tok.size()) {
        return JsonValue(iv);
      }
      // Out-of-range integer literal: fall through to double.
    }
    double dv = 0.0;
    const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), dv);
    if (ec != std::errc() || p != tok.data() + tok.size() || tok.empty()) {
      fail(start, "invalid number");
    }
    return JsonValue(dv);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_double(std::string& out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no inf/nan; null is the conventional stand-in.
    out += "null";
    return;
  }
  char buf[32];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  (void)ec;
  out.append(buf, p);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw Error("json: value is not a bool");
  return bool_;
}

double JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) throw Error("json: value is not a number");
  return is_int_ ? static_cast<double>(int_) : num_;
}

std::int64_t JsonValue::as_int() const {
  if (kind_ != Kind::kNumber) throw Error("json: value is not a number");
  if (is_int_) return int_;
  const double d = num_;
  const auto i = static_cast<std::int64_t>(d);
  if (static_cast<double>(i) != d) {
    throw Error("json: number is not an integer");
  }
  return i;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw Error("json: value is not a string");
  return str_;
}

std::span<const JsonValue> JsonValue::items() const {
  if (kind_ != Kind::kArray) throw Error("json: value is not an array");
  return arr_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool JsonValue::get_bool(std::string_view key, bool def) const {
  const JsonValue* v = find(key);
  return v == nullptr ? def : v->as_bool();
}

double JsonValue::get_double(std::string_view key, double def) const {
  const JsonValue* v = find(key);
  return v == nullptr ? def : v->as_double();
}

std::int64_t JsonValue::get_int(std::string_view key, std::int64_t def) const {
  const JsonValue* v = find(key);
  return v == nullptr ? def : v->as_int();
}

std::string JsonValue::get_string(std::string_view key, std::string def) const {
  const JsonValue* v = find(key);
  return v == nullptr ? std::move(def) : v->as_string();
}

JsonValue& JsonValue::set(std::string key, JsonValue value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) throw Error("json: set() on a non-object");
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
  return *this;
}

JsonValue& JsonValue::push_back(JsonValue value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) throw Error("json: push_back() on a non-array");
  arr_.push_back(std::move(value));
  return *this;
}

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).run();
}

void JsonValue::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += bool_ ? "true" : "false"; return;
    case Kind::kNumber:
      if (is_int_) {
        out += std::to_string(int_);
      } else {
        append_double(out, num_);
      }
      return;
    case Kind::kString: append_escaped(out, str_); return;
    case Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& v : arr_) {
        if (!first) out.push_back(',');
        first = false;
        v.dump_to(out);
      }
      out.push_back(']');
      return;
    }
    case Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out.push_back(',');
        first = false;
        append_escaped(out, k);
        out.push_back(':');
        v.dump_to(out);
      }
      out.push_back('}');
      return;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

bool operator==(const JsonValue& a, const JsonValue& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case JsonValue::Kind::kNull: return true;
    case JsonValue::Kind::kBool: return a.bool_ == b.bool_;
    case JsonValue::Kind::kNumber:
      if (a.is_int_ != b.is_int_) return a.as_double() == b.as_double();
      return a.is_int_ ? a.int_ == b.int_ : a.num_ == b.num_;
    case JsonValue::Kind::kString: return a.str_ == b.str_;
    case JsonValue::Kind::kArray: return a.arr_ == b.arr_;
    case JsonValue::Kind::kObject: return a.obj_ == b.obj_;
  }
  return false;
}

}  // namespace lcrb
