// Minimal JSON value, parser, and serializer — the wire format of the
// lcrbd query service and the LcrbOptions round-trip.
//
// Deliberately small instead of general:
//  * Objects preserve insertion order (serialization is deterministic and
//    lookups are linear — service objects hold tens of keys, not thousands).
//  * Numbers remember whether they were written as integers; doubles
//    serialize via std::to_chars shortest-round-trip, so a value survives
//    dump() -> parse() bit for bit.
//  * parse() throws lcrb::Error with a byte offset on malformed input; it
//    never aborts. Depth is capped to keep hostile input from overflowing
//    the stack.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/error.h"

namespace lcrb {

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  JsonValue() = default;  ///< null
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(double d) : kind_(Kind::kNumber), num_(d) {}
  JsonValue(std::int64_t i) : kind_(Kind::kNumber), num_(static_cast<double>(i)), int_(i), is_int_(true) {}
  JsonValue(std::uint64_t u)
      : kind_(Kind::kNumber),
        num_(static_cast<double>(u)),
        int_(static_cast<std::int64_t>(u)),
        is_int_(true) {}
  JsonValue(int i) : JsonValue(static_cast<std::int64_t>(i)) {}
  JsonValue(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  JsonValue(const char* s) : kind_(Kind::kString), str_(s) {}

  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  /// True for numbers written without '.', 'e', or fractional part.
  bool is_integer() const { return kind_ == Kind::kNumber && is_int_; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw lcrb::Error on kind mismatch.
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;  ///< also accepts integral-valued doubles
  const std::string& as_string() const;
  std::span<const JsonValue> items() const;  ///< array elements

  // -- object access ---------------------------------------------------------

  /// Member lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;
  bool has(std::string_view key) const { return find(key) != nullptr; }

  /// Convenience getters with defaults; throw on present-but-wrong-kind.
  bool get_bool(std::string_view key, bool def) const;
  double get_double(std::string_view key, double def) const;
  std::int64_t get_int(std::string_view key, std::int64_t def) const;
  std::string get_string(std::string_view key, std::string def) const;

  /// Appends/overwrites object member `key` (insertion order kept);
  /// converts a null value to an object first.
  JsonValue& set(std::string key, JsonValue value);
  /// Appends to an array; converts a null value to an array first.
  JsonValue& push_back(JsonValue value);

  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return obj_;
  }

  // -- wire format -----------------------------------------------------------

  /// Parses exactly one JSON document (trailing whitespace allowed).
  static JsonValue parse(std::string_view text);
  /// Compact single-line serialization (NDJSON-safe: no raw newlines).
  std::string dump() const;

  friend bool operator==(const JsonValue& a, const JsonValue& b);

 private:
  void dump_to(std::string& out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  bool is_int_ = false;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

}  // namespace lcrb
