#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace lcrb {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Info};
std::mutex g_mu;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  const auto now = std::chrono::system_clock::now();  // det-ok[D3]: log-line timestamp; stderr only, not part of any output artifact
  const auto t = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch()) % 1000;
  std::tm tm_buf{};
  localtime_r(&t, &tm_buf);
  std::lock_guard<std::mutex> lock(g_mu);
  std::fprintf(stderr, "[%02d:%02d:%02d.%03d] %s %s\n", tm_buf.tm_hour,
               tm_buf.tm_min, tm_buf.tm_sec, static_cast<int>(ms.count()),
               level_name(level), msg.c_str());
}

}  // namespace lcrb
