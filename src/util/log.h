// Leveled logger with wall-clock timestamps. Default level is Info; bench
// binaries lower it to Warn unless --verbose is given.
#pragma once

#include <sstream>
#include <string>

namespace lcrb {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits a line to stderr as "[HH:MM:SS.mmm] LEVEL message". Thread-safe.
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace lcrb

#define LCRB_LOG_DEBUG ::lcrb::detail::LogLine(::lcrb::LogLevel::Debug)
#define LCRB_LOG_INFO ::lcrb::detail::LogLine(::lcrb::LogLevel::Info)
#define LCRB_LOG_WARN ::lcrb::detail::LogLine(::lcrb::LogLevel::Warn)
#define LCRB_LOG_ERROR ::lcrb::detail::LogLine(::lcrb::LogLevel::Error)
