#pragma once

// Fixed-order floating-point reduction — the sanctioned sink for parallel FP
// accumulation (analyzer rule D2 / shared-fp-accum).
//
// FP addition is not associative, so `total += x` from concurrent tasks (or
// std::reduce, or an atomic<double> CAS loop) yields sums that depend on
// thread interleaving. The pattern enforced repo-wide instead: each task
// writes its contribution into a per-index slot, then one thread folds the
// slots serially in index order. Bit-identical for a fixed seed regardless
// of thread count.

#include <cstddef>
#include <vector>

#include "util/threadpool.h"

namespace lcrb {

/// Serial left-fold in index order. The deterministic reduce step.
template <typename T>
T fixed_order_sum(const std::vector<T>& slots) {
  T total{};
  for (const T& v : slots) total += v;
  return total;
}

/// Parallel map, deterministic reduce: evaluates fn(i) for i in [0, n) on
/// the pool into per-index slots, then folds serially in index order.
template <typename T, typename Fn>
T parallel_fixed_order_sum(ThreadPool& pool, std::size_t n, Fn&& fn) {
  std::vector<T> slots(n, T{});
  pool.parallel_for(n, [&](std::size_t i) { slots[i] = fn(i); });
  return fixed_order_sum(slots);
}

}  // namespace lcrb
