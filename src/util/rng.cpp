#include "util/rng.h"

namespace lcrb {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
  // All-zero state is the one invalid state for xoshiro; SplitMix64 cannot
  // produce four zero outputs in a row from any seed, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  LCRB_REQUIRE(bound > 0, "next_below bound must be positive");
  // Lemire's multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = next();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<unsigned __int128>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::fork(std::uint64_t index) const {
  // Mix (seed, index) through SplitMix64 to get a well-separated child seed.
  SplitMix64 sm(seed_ ^ (0x9e3779b97f4a7c15ULL + index * 0xbf58476d1ce4e5b9ULL));
  sm.next();
  return Rng(sm.next() + index);
}

}  // namespace lcrb
