// Deterministic, seedable random number generation.
//
// All randomized components in the library take an explicit 64-bit seed and
// draw from Xoshiro256** streams. Independent streams for parallel work are
// derived via SplitMix64 so results are reproducible regardless of thread
// scheduling.
#pragma once

#include <array>
#include <cstdint>

#include "util/error.h"

namespace lcrb {

/// SplitMix64: tiny PRNG used to expand a single seed into stream states.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (the standard seeding companion for xoshiro).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Satisfies the C++ UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound). Lemire's nearly-divisionless method.
  /// bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Derives a new independent stream for worker `index`. Deterministic in
  /// (this stream's original seed, index).
  Rng fork(std::uint64_t index) const;

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t seed_ = 0;  // original seed, kept for fork()
};

}  // namespace lcrb
