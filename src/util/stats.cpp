#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace lcrb {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::ci95_halfwidth() const { return 1.96 * stderr_mean(); }

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev_of(const std::vector<double>& xs) {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return rs.stddev();
}

double median_of(std::vector<double> xs) { return percentile_of(std::move(xs), 50.0); }

double percentile_of(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  LCRB_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  LCRB_REQUIRE(hi > lo, "histogram range must be non-empty");
  LCRB_REQUIRE(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<long>((x - lo_) / width);
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  LCRB_REQUIRE(i < counts_.size(), "bucket index out of range");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

}  // namespace lcrb
