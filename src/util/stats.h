// Streaming and batch statistics used by the Monte-Carlo harness and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace lcrb {

/// Numerically-stable streaming mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 when fewer than 2 samples.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean; 0 when fewer than 2 samples.
  double stderr_mean() const;
  /// Half-width of the normal-approximation 95% confidence interval.
  double ci95_halfwidth() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch helpers (copy + nth_element based; inputs unmodified).
double mean_of(const std::vector<double>& xs);
double stddev_of(const std::vector<double>& xs);
double median_of(std::vector<double> xs);
/// Linear-interpolated percentile, p in [0,100].
double percentile_of(std::vector<double> xs, double p);

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bucket. Used by degree-distribution reports.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count(std::size_t bucket) const { return counts_.at(bucket); }
  std::size_t total() const { return total_; }
  /// Inclusive lower bound of bucket i.
  double bucket_lo(std::size_t i) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace lcrb
