#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>

namespace lcrb {

void TextTable::set_header(std::vector<std::string> columns) {
  header_ = std::move(columns);
}

void TextTable::add_row(std::vector<std::string> fields) {
  rows_.push_back(std::move(fields));
}

std::string TextTable::render() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  if (cols == 0) return "";

  std::vector<std::size_t> widths(cols, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  if (!header_.empty()) measure(header_);
  for (const auto& r : rows_) measure(r);

  auto emit = [&](const std::vector<std::string>& row, std::string& out) {
    out += '|';
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out += ' ';
      out += cell;
      out.append(widths[i] - cell.size() + 1, ' ');
      out += '|';
    }
    out += '\n';
  };

  std::string out;
  if (!header_.empty()) {
    emit(header_, out);
    out += '|';
    for (std::size_t i = 0; i < cols; ++i) {
      out.append(widths[i] + 2, '-');
      out += '|';
    }
    out += '\n';
  }
  for (const auto& r : rows_) emit(r, out);
  return out;
}

void TextTable::print(std::ostream& os) const { os << render(); }

std::string fixed(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

}  // namespace lcrb
