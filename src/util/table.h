// Console table printer: the bench binaries print paper-shaped rows with it.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>
#include <vector>

namespace lcrb {

/// Accumulates rows and renders an aligned ASCII table:
///
///   | Dataset        | |R| | SCBG | Proximity |
///   |----------------|-----|------|-----------|
///   | Hep/15233/308  | 1%  | 32.9 | 25.3      |
class TextTable {
 public:
  void set_header(std::vector<std::string> columns);
  void add_row(std::vector<std::string> fields);

  /// Convenience: stringify mixed values with operator<<.
  template <typename... Ts>
  void add_values(const Ts&... vals) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(vals));
    (fields.push_back(stringify(vals)), ...);
    add_row(std::move(fields));
  }

  /// Renders the table. Rows shorter than the widest row are padded with
  /// empty cells.
  std::string render() const;
  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  template <typename T>
  static std::string stringify(const T& v) {
    std::ostringstream os;
    os << v;
    return os.str();
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (default 1 decimal, like Table I).
std::string fixed(double v, int decimals = 1);

}  // namespace lcrb
