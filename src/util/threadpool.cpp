#include "util/threadpool.h"

#include <algorithm>
#include <atomic>

namespace lcrb {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;  // already shut down (workers_ joined and cleared)
    stop_ = true;
    cv_.notify_all();  // under the lock: no waiter can miss the stop flag
  }
  for (auto& w : workers_) w.join();
  workers_.clear();
}

namespace {
// Set while a pool worker executes a task; lets parallel_for detect nested
// use and degrade to inline execution instead of deadlocking (all workers
// blocked on futures only workers could run).
thread_local bool t_in_pool_worker = false;
}  // namespace

void ThreadPool::worker_loop() {
  t_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) throw Error("ThreadPool::parallel_for after shutdown");
  }
  if (n == 0) return;
  const std::size_t workers = thread_count();
  // Nested call from inside a worker: run inline — submitting and blocking
  // on futures here could leave every worker waiting on work only workers
  // can execute.
  if (n == 1 || workers <= 1 || t_in_pool_worker) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Dynamic chunking: enough chunks for load balance, few enough to keep
  // queue contention negligible.
  const std::size_t chunks = std::min(n, workers * 4);
  std::atomic<std::size_t> next{0};
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    futs.push_back(submit([&next, &fn, n, chunk_size] {
      for (;;) {
        const std::size_t begin = next.fetch_add(chunk_size);
        if (begin >= n) return;
        const std::size_t end = std::min(n, begin + chunk_size);
        for (std::size_t i = begin; i < end; ++i) fn(i);
      }
    }));
  }
  for (auto& f : futs) f.get();
}

}  // namespace lcrb
