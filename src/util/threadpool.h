// Fixed-size thread pool with a parallel_for convenience used by the
// Monte-Carlo harness and the greedy selector's candidate scoring.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/error.h"

namespace lcrb {

/// Simple work-queue thread pool. Tasks are std::function<void()>; submit()
/// returns a future. Shutdown (explicit or via destruction) drains every
/// already-accepted task, then joins; submits that lose the race against
/// shutdown are rejected deterministically with lcrb::Error instead of being
/// silently dropped, so a task is always either executed or visibly refused.
class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Stops accepting work, runs every task already in the queue, joins the
  /// workers. Idempotent; called by the destructor. Not safe to call
  /// concurrently with itself (the destructor counts as a call).
  void shutdown();

  /// True once shutdown has begun; subsequent submits throw.
  bool stopped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stop_;
  }

  /// Enqueues a task; returns a future for its result. Throws lcrb::Error if
  /// the pool is shutting down (an accepted task is guaranteed to run).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) throw Error("ThreadPool::submit after shutdown");
      queue_.emplace([task] { (*task)(); });
      // Notify while holding the lock: a waiter is either blocked in wait()
      // (and sees the signal) or has not yet re-checked the predicate under
      // this same mutex — no window for a lost wakeup, and the condition
      // variable cannot be destroyed mid-notify while the lock pins the
      // shutdown sequence.
      cv_.notify_one();
    }
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool; blocks until all complete.
  /// fn must be safe to call concurrently. Work is chunked to limit
  /// scheduling overhead. Throws lcrb::Error after shutdown.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace lcrb
