// Fixed-size thread pool with a parallel_for convenience used by the
// Monte-Carlo harness and the greedy selector's candidate scoring.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lcrb {

/// Simple work-queue thread pool. Tasks are std::function<void()>; submit()
/// returns a future. Destruction drains outstanding tasks then joins.
class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool; blocks until all complete.
  /// fn must be safe to call concurrently. Work is chunked to limit
  /// scheduling overhead.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace lcrb
