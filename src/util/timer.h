// Wall-clock timers for benches and progress logging.
#pragma once

#include <chrono>

namespace lcrb {

/// Stopwatch measuring wall time since construction or last restart().
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lcrb
