// Wall-clock timers for benches and progress logging.
#pragma once

#include <chrono>

namespace lcrb {

/// Stopwatch measuring wall time since construction or last restart().
class Timer {
 public:
  Timer() : start_(Clock::now()) {}  // det-ok[D3]: wall-clock feeds timing stats only, never result values

  void restart() { start_ = Clock::now(); }  // det-ok[D3]: wall-clock feeds timing stats only, never result values

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();  // det-ok[D3]: wall-clock feeds timing stats only, never result values
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lcrb
