// Fundamental scalar types shared across the LCRB library.
#pragma once

#include <cstdint>
#include <limits>

namespace lcrb {

/// Node identifier. 32 bits comfortably covers the paper's graphs
/// (36,692 nodes) and anything laptop-scale.
using NodeId = std::uint32_t;

/// Edge index into a CSR arc array.
using EdgeId = std::uint64_t;

/// Community identifier produced by community detection.
using CommunityId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Sentinel for "no community".
inline constexpr CommunityId kInvalidCommunity =
    std::numeric_limits<CommunityId>::max();

/// Sentinel hop count for "never reached" in BFS / diffusion outputs.
inline constexpr std::uint32_t kUnreached =
    std::numeric_limits<std::uint32_t>::max();

}  // namespace lcrb
