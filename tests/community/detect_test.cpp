#include "community/detect.h"

#include <gtest/gtest.h>

#include "community/nmi.h"
#include "graph/generators.h"
#include "util/error.h"

namespace lcrb {
namespace {

TEST(Detect, LouvainDispatch) {
  CommunityGraphConfig cfg;
  cfg.community_sizes = {50, 50};
  cfg.avg_inter_degree = 0.3;
  cfg.seed = 2;
  const CommunityGraph cg = make_community_graph(cfg);
  const Partition p =
      detect_communities(cg.graph, CommunityMethod::kLouvain, 1);
  EXPECT_EQ(p.num_nodes(), cg.graph.num_nodes());
  EXPECT_GE(p.num_communities(), 2u);
}

TEST(Detect, LabelPropagationDispatch) {
  CommunityGraphConfig cfg;
  cfg.community_sizes = {50, 50};
  cfg.avg_inter_degree = 0.3;
  cfg.seed = 2;
  const CommunityGraph cg = make_community_graph(cfg);
  const Partition p =
      detect_communities(cg.graph, CommunityMethod::kLabelPropagation, 1);
  EXPECT_EQ(p.num_nodes(), cg.graph.num_nodes());
}

TEST(Detect, GroundTruthThrows) {
  const DiGraph g = complete_graph(3);
  EXPECT_THROW(detect_communities(g, CommunityMethod::kGroundTruth), Error);
}

TEST(Detect, MethodNames) {
  EXPECT_EQ(to_string(CommunityMethod::kLouvain), "louvain");
  EXPECT_EQ(to_string(CommunityMethod::kLabelPropagation), "label_propagation");
  EXPECT_EQ(to_string(CommunityMethod::kGroundTruth), "ground_truth");
}

}  // namespace
}  // namespace lcrb
