#include "community/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "community/nmi.h"
#include "graph/generators.h"
#include "util/error.h"

namespace lcrb {
namespace {

TEST(MembershipIo, RoundTripThroughStream) {
  const Partition p({0, 0, 1, 2, 1, 0});
  std::ostringstream out;
  save_membership(p, out);
  std::istringstream in(out.str());
  const Partition q = load_membership(in);
  EXPECT_EQ(p.membership(), q.membership());
}

TEST(MembershipIo, RoundTripThroughFile) {
  CommunityGraphConfig cfg;
  cfg.community_sizes = {40, 40};
  cfg.seed = 3;
  const CommunityGraph cg = make_community_graph(cfg);
  const Partition p(cg.membership);
  const std::string path = testing::TempDir() + "/lcrb_membership.csv";
  save_membership(p, path);
  const Partition q = load_membership(path);
  EXPECT_DOUBLE_EQ(normalized_mutual_information(p, q), 1.0);
  EXPECT_EQ(p.membership(), q.membership());
  std::remove(path.c_str());
}

TEST(MembershipIo, HeaderOptional) {
  std::istringstream with_header("node,community\n0,5\n1,5\n2,9\n");
  const Partition a = load_membership(with_header);
  std::istringstream without("0,5\n1,5\n2,9\n");
  const Partition b = load_membership(without);
  EXPECT_EQ(a.membership(), b.membership());
  EXPECT_EQ(a.num_communities(), 2u);
}

TEST(MembershipIo, OutOfOrderRowsAccepted) {
  std::istringstream in("2,1\n0,0\n1,0\n");
  const Partition p = load_membership(in);
  EXPECT_EQ(p.num_nodes(), 3u);
  EXPECT_EQ(p.community_of(0), p.community_of(1));
  EXPECT_NE(p.community_of(0), p.community_of(2));
}

TEST(MembershipIo, RejectsMalformedRows) {
  std::istringstream bad1("0\n");
  EXPECT_THROW(load_membership(bad1), Error);
  std::istringstream bad2("x,1\n");
  EXPECT_THROW(load_membership(bad2), Error);
  std::istringstream bad3("0,1extra\n");
  EXPECT_THROW(load_membership(bad3), Error);
}

TEST(MembershipIo, RejectsDuplicatesAndGaps) {
  std::istringstream dup("0,1\n0,2\n");
  EXPECT_THROW(load_membership(dup), Error);
  std::istringstream gap("0,1\n2,1\n");
  EXPECT_THROW(load_membership(gap), Error);
}

TEST(MembershipIo, RejectsMissingFileAndEmpty) {
  EXPECT_THROW(load_membership("/nonexistent/m.csv"), Error);
  std::istringstream empty("");
  EXPECT_THROW(load_membership(empty), Error);
}

}  // namespace
}  // namespace lcrb
