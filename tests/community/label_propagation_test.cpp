#include "community/label_propagation.h"

#include <gtest/gtest.h>

#include "community/nmi.h"
#include "graph/builder.h"
#include "graph/generators.h"

namespace lcrb {
namespace {

TEST(LabelPropagation, EmptyGraph) {
  const Partition p = label_propagation(DiGraph{});
  EXPECT_EQ(p.num_nodes(), 0u);
}

TEST(LabelPropagation, IsolatedNodesKeepOwnLabels) {
  GraphBuilder b;
  b.reserve_nodes(4);
  const Partition p = label_propagation(b.finalize());
  EXPECT_EQ(p.num_communities(), 4u);
}

TEST(LabelPropagation, CliqueConverges) {
  const DiGraph g = complete_graph(8);
  const Partition p = label_propagation(g);
  EXPECT_EQ(p.num_communities(), 1u);
}

TEST(LabelPropagation, TwoCliquesSeparated) {
  GraphBuilder b;
  for (NodeId u = 0; u < 6; ++u)
    for (NodeId v = u + 1; v < 6; ++v) b.add_undirected_edge(u, v);
  for (NodeId u = 6; u < 12; ++u)
    for (NodeId v = u + 1; v < 12; ++v) b.add_undirected_edge(u, v);
  b.add_undirected_edge(0, 6);
  const Partition p = label_propagation(b.finalize(), {.seed = 3});
  EXPECT_EQ(p.num_communities(), 2u);
}

TEST(LabelPropagation, RecoversStrongPlantedStructure) {
  CommunityGraphConfig cfg;
  cfg.community_sizes = {80, 80, 80};
  cfg.avg_intra_degree = 10.0;
  cfg.avg_inter_degree = 0.3;
  cfg.seed = 17;
  const CommunityGraph cg = make_community_graph(cfg);
  const Partition found = label_propagation(cg.graph, {.seed = 5});
  const Partition truth(cg.membership);
  EXPECT_GT(normalized_mutual_information(found, truth), 0.6);
}

TEST(LabelPropagation, DeterministicInSeed) {
  CommunityGraphConfig cfg;
  cfg.community_sizes = {40, 40};
  cfg.seed = 8;
  const CommunityGraph cg = make_community_graph(cfg);
  const Partition a = label_propagation(cg.graph, {.seed = 2});
  const Partition b = label_propagation(cg.graph, {.seed = 2});
  EXPECT_EQ(a.membership(), b.membership());
}

}  // namespace
}  // namespace lcrb
