#include "community/louvain.h"

#include <gtest/gtest.h>

#include "community/modularity.h"
#include "community/nmi.h"
#include "graph/builder.h"
#include "graph/generators.h"

namespace lcrb {
namespace {

TEST(Louvain, EmptyGraph) {
  const Partition p = louvain(DiGraph{});
  EXPECT_EQ(p.num_nodes(), 0u);
}

TEST(Louvain, EdgelessGraphSingletons) {
  GraphBuilder b;
  b.reserve_nodes(5);
  const Partition p = louvain(b.finalize());
  EXPECT_EQ(p.num_nodes(), 5u);
  EXPECT_EQ(p.num_communities(), 5u);
}

TEST(Louvain, TwoCliquesSeparated) {
  GraphBuilder b;
  for (NodeId u = 0; u < 5; ++u)
    for (NodeId v = u + 1; v < 5; ++v) b.add_undirected_edge(u, v);
  for (NodeId u = 5; u < 10; ++u)
    for (NodeId v = u + 1; v < 10; ++v) b.add_undirected_edge(u, v);
  b.add_undirected_edge(0, 5);
  const DiGraph g = b.finalize();

  const Partition p = louvain(g);
  EXPECT_EQ(p.num_communities(), 2u);
  // All of clique 1 together, all of clique 2 together.
  for (NodeId v = 1; v < 5; ++v)
    EXPECT_EQ(p.community_of(v), p.community_of(0));
  for (NodeId v = 6; v < 10; ++v)
    EXPECT_EQ(p.community_of(v), p.community_of(5));
  EXPECT_NE(p.community_of(0), p.community_of(5));
}

TEST(Louvain, ImprovesModularityOverTrivial) {
  CommunityGraphConfig cfg;
  cfg.community_sizes = {80, 80, 80};
  cfg.avg_intra_degree = 6.0;
  cfg.avg_inter_degree = 0.8;
  cfg.seed = 21;
  const CommunityGraph cg = make_community_graph(cfg);
  const Partition p = louvain(cg.graph);
  const double q = modularity(cg.graph, p);
  EXPECT_GT(q, 0.4);
}

// Property: Louvain recovers planted partitions across seeds and shapes.
struct PlantedCase {
  std::vector<NodeId> sizes;
  double intra, inter;
  std::uint64_t seed;
};

class LouvainRecoveryTest : public ::testing::TestWithParam<PlantedCase> {};

TEST_P(LouvainRecoveryTest, RecoversPlantedCommunities) {
  const PlantedCase& pc = GetParam();
  CommunityGraphConfig cfg;
  cfg.community_sizes = pc.sizes;
  cfg.avg_intra_degree = pc.intra;
  cfg.avg_inter_degree = pc.inter;
  cfg.seed = pc.seed;
  const CommunityGraph cg = make_community_graph(cfg);

  LouvainConfig lc;
  lc.seed = pc.seed + 1;
  const Partition found = louvain(cg.graph, lc);
  const Partition truth(cg.membership);

  EXPECT_GT(normalized_mutual_information(found, truth), 0.75)
      << "sizes=" << pc.sizes.size() << " seed=" << pc.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Planted, LouvainRecoveryTest,
    ::testing::Values(PlantedCase{{60, 60, 60}, 8.0, 0.4, 1},
                      PlantedCase{{100, 50, 150}, 7.0, 0.5, 2},
                      PlantedCase{{40, 40, 40, 40, 40}, 9.0, 0.6, 3},
                      PlantedCase{{200, 200}, 6.0, 0.5, 4}));

TEST(Louvain, DeterministicInSeed) {
  CommunityGraphConfig cfg;
  cfg.community_sizes = {50, 50};
  cfg.seed = 31;
  const CommunityGraph cg = make_community_graph(cfg);
  LouvainConfig lc;
  lc.seed = 9;
  const Partition a = louvain(cg.graph, lc);
  const Partition b = louvain(cg.graph, lc);
  EXPECT_EQ(a.membership(), b.membership());
}

}  // namespace
}  // namespace lcrb
