#include "community/modularity.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"

namespace lcrb {
namespace {

TEST(Modularity, EdgelessGraphIsZero) {
  GraphBuilder b;
  b.reserve_nodes(4);
  EXPECT_EQ(modularity(b.finalize(), Partition({0, 0, 1, 1})), 0.0);
}

TEST(Modularity, SingleCommunityIsZero) {
  // All mass inside one community: Q = 1 - 1 = 0.
  const DiGraph g = complete_graph(4);
  EXPECT_NEAR(modularity(g, Partition({0, 0, 0, 0})), 0.0, 1e-12);
}

TEST(Modularity, TwoCliquesGoodSplit) {
  // Two 4-cliques joined by a single undirected bridge.
  GraphBuilder b;
  for (NodeId u = 0; u < 4; ++u)
    for (NodeId v = u + 1; v < 4; ++v) b.add_undirected_edge(u, v);
  for (NodeId u = 4; u < 8; ++u)
    for (NodeId v = u + 1; v < 8; ++v) b.add_undirected_edge(u, v);
  b.add_undirected_edge(3, 4);
  const DiGraph g = b.finalize();

  const double good = modularity(g, Partition({0, 0, 0, 0, 1, 1, 1, 1}));
  const double bad = modularity(g, Partition({0, 1, 0, 1, 0, 1, 0, 1}));
  const double trivial = modularity(g, Partition({0, 0, 0, 0, 0, 0, 0, 0}));
  EXPECT_GT(good, 0.3);
  EXPECT_GT(good, bad);
  EXPECT_GT(good, trivial);
  EXPECT_LT(bad, 0.05);
}

TEST(Modularity, KnownHandValue) {
  // Directed triangle split as {0,1} {2}:
  // intra = 1 arc (0->1); m=3; expected = (2*2 + 1*1)/9 = 5/9.
  const DiGraph g = make_graph(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_NEAR(modularity(g, Partition({0, 0, 1})), 1.0 / 3 - 5.0 / 9, 1e-12);
}

TEST(Modularity, SizeMismatchThrows) {
  const DiGraph g = complete_graph(3);
  EXPECT_THROW(modularity(g, Partition({0, 0})), Error);
}

TEST(Modularity, PlantedPartitionScoresHigh) {
  CommunityGraphConfig cfg;
  cfg.community_sizes = {100, 100, 100};
  cfg.avg_intra_degree = 8.0;
  cfg.avg_inter_degree = 0.5;
  cfg.seed = 5;
  const CommunityGraph cg = make_community_graph(cfg);
  const double q = modularity(cg.graph, Partition(cg.membership));
  EXPECT_GT(q, 0.5);
}

}  // namespace
}  // namespace lcrb
