#include "community/nmi.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace lcrb {
namespace {

TEST(Nmi, IdenticalPartitionsScoreOne) {
  Partition a({0, 0, 1, 1, 2});
  Partition b({5, 5, 9, 9, 7});  // same grouping, different labels
  EXPECT_NEAR(normalized_mutual_information(a, b), 1.0, 1e-12);
}

TEST(Nmi, BothTrivialScoreOne) {
  Partition a({0, 0, 0});
  Partition b({4, 4, 4});
  EXPECT_DOUBLE_EQ(normalized_mutual_information(a, b), 1.0);
}

TEST(Nmi, EmptyPartitionsScoreOne) {
  EXPECT_DOUBLE_EQ(normalized_mutual_information(Partition{}, Partition{}), 1.0);
}

TEST(Nmi, TrivialVsAnythingScoresZero) {
  Partition trivial({0, 0, 0, 0});
  Partition split({0, 0, 1, 1});
  EXPECT_NEAR(normalized_mutual_information(trivial, split), 0.0, 1e-12);
}

TEST(Nmi, Symmetric) {
  Partition a({0, 0, 1, 1, 2, 2});
  Partition b({0, 1, 1, 0, 2, 2});
  EXPECT_NEAR(normalized_mutual_information(a, b),
              normalized_mutual_information(b, a), 1e-12);
}

TEST(Nmi, IndependentPartitionsLow) {
  // Large random labelings with no relation should score near 0.
  Rng rng(3);
  std::vector<CommunityId> x(4000), y(4000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<CommunityId>(rng.next_below(4));
    y[i] = static_cast<CommunityId>(rng.next_below(4));
  }
  EXPECT_LT(normalized_mutual_information(Partition(x), Partition(y)), 0.05);
}

TEST(Nmi, RefinementScoresBetween) {
  // b refines a: information shared but not identical.
  Partition a({0, 0, 0, 0, 1, 1, 1, 1});
  Partition b({0, 0, 1, 1, 2, 2, 3, 3});
  const double v = normalized_mutual_information(a, b);
  EXPECT_GT(v, 0.3);
  EXPECT_LT(v, 1.0);
}

TEST(Nmi, SizeMismatchThrows) {
  EXPECT_THROW(
      normalized_mutual_information(Partition({0, 1}), Partition({0, 1, 2})),
      Error);
}

TEST(Nmi, BoundedInUnitInterval) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<CommunityId> x(100), y(100);
    for (std::size_t i = 0; i < 100; ++i) {
      x[i] = static_cast<CommunityId>(rng.next_below(5));
      y[i] = static_cast<CommunityId>(rng.next_below(3));
    }
    const double v = normalized_mutual_information(Partition(x), Partition(y));
    EXPECT_GE(v, -1e-12);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

}  // namespace
}  // namespace lcrb
