#include "community/partition.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace lcrb {
namespace {

TEST(Partition, EmptyByDefault) {
  Partition p;
  EXPECT_EQ(p.num_nodes(), 0u);
  EXPECT_EQ(p.num_communities(), 0u);
}

TEST(Partition, NormalizesSparseLabels) {
  Partition p({7, 7, 42, 7, 42, 100});
  EXPECT_EQ(p.num_nodes(), 6u);
  EXPECT_EQ(p.num_communities(), 3u);
  // First-appearance order: 7 -> 0, 42 -> 1, 100 -> 2.
  EXPECT_EQ(p.community_of(0), 0u);
  EXPECT_EQ(p.community_of(2), 1u);
  EXPECT_EQ(p.community_of(5), 2u);
}

TEST(Partition, MembersAreAscending) {
  Partition p({1, 0, 1, 0, 1});
  EXPECT_EQ(p.members(0), (std::vector<NodeId>{0, 2, 4}));
  EXPECT_EQ(p.members(1), (std::vector<NodeId>{1, 3}));
  EXPECT_EQ(p.size_of(0), 3u);
  EXPECT_EQ(p.size_of(1), 2u);
}

TEST(Partition, SizesVector) {
  Partition p({0, 0, 1, 2, 2, 2});
  EXPECT_EQ(p.sizes(), (std::vector<NodeId>{2, 1, 3}));
}

TEST(Partition, ClosestToSize) {
  Partition p({0, 0, 0, 0, 0, 1, 1, 2});  // sizes 5, 2, 1
  EXPECT_EQ(p.closest_to_size(5), 0u);
  EXPECT_EQ(p.closest_to_size(2), 1u);
  EXPECT_EQ(p.closest_to_size(1), 2u);
  EXPECT_EQ(p.closest_to_size(100), 0u);
  // Tie between size 2 and size 1 for target 0 -> ... 1 is closer (gap 1 vs 2).
  EXPECT_EQ(p.closest_to_size(0), 2u);
}

TEST(Partition, OutOfRangeThrows) {
  Partition p({0, 1});
  EXPECT_THROW(p.community_of(2), Error);
  EXPECT_THROW(p.members(2), Error);
}

TEST(Partition, InvalidLabelThrows) {
  EXPECT_THROW(Partition({0, kInvalidCommunity}), Error);
}

TEST(Partition, ClosestOnEmptyThrows) {
  Partition p;
  EXPECT_THROW(p.closest_to_size(1), Error);
}

TEST(Partition, ValidateAcceptsWellFormedPartitions) {
  EXPECT_NO_THROW(Partition().validate());
  EXPECT_NO_THROW(Partition({0}).validate());
  // Sparse labels exercise the renumbering the validator re-derives.
  EXPECT_NO_THROW(Partition({7, 7, 42, 7, 42, 100}).validate());
  EXPECT_NO_THROW(Partition({3, 2, 1, 0}).validate());
}

}  // namespace
}  // namespace lcrb
