#include "community/quality.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"

namespace lcrb {
namespace {

// Two 4-cliques joined by one undirected edge.
DiGraph two_cliques() {
  GraphBuilder b;
  for (NodeId u = 0; u < 4; ++u)
    for (NodeId v = u + 1; v < 4; ++v) b.add_undirected_edge(u, v);
  for (NodeId u = 4; u < 8; ++u)
    for (NodeId v = u + 1; v < 8; ++v) b.add_undirected_edge(u, v);
  b.add_undirected_edge(0, 4);
  return b.finalize();
}

TEST(Conductance, WellSeparatedCommunityIsLow) {
  const DiGraph g = two_cliques();
  const Partition p({0, 0, 0, 0, 1, 1, 1, 1});
  // Each side: 12 intra arcs + 1 outgoing bridge arc = volume 13; the cut
  // counts both orientations of the bridge -> 2/13.
  EXPECT_NEAR(conductance(g, p, 0), 2.0 / 13.0, 1e-12);
  EXPECT_NEAR(conductance(g, p, 1), 2.0 / 13.0, 1e-12);
}

TEST(Conductance, RandomSplitIsHigh) {
  const DiGraph g = two_cliques();
  const Partition bad({0, 1, 0, 1, 0, 1, 0, 1});
  EXPECT_GT(conductance(g, bad, 0), 0.5);
}

TEST(Conductance, WholeGraphCommunityIsOne) {
  const DiGraph g = complete_graph(4);
  const Partition p({0, 0, 0, 0});
  // V \ C has zero volume -> defined as 1.
  EXPECT_DOUBLE_EQ(conductance(g, p, 0), 1.0);
}

TEST(Conductance, EdgelessGraphIsZero) {
  GraphBuilder b;
  b.reserve_nodes(3);
  EXPECT_DOUBLE_EQ(conductance(b.finalize(), Partition({0, 0, 1}), 0), 0.0);
}

TEST(Conductance, OutOfRangeThrows) {
  const DiGraph g = complete_graph(3);
  EXPECT_THROW(conductance(g, Partition({0, 0, 0}), 2), Error);
  EXPECT_THROW(conductance(g, Partition({0, 0}), 0), Error);
}

TEST(Coverage, AllIntraIsOne) {
  const DiGraph g = two_cliques();
  const Partition trivial({0, 0, 0, 0, 0, 0, 0, 0});
  EXPECT_DOUBLE_EQ(coverage(g, trivial), 1.0);
}

TEST(Coverage, CountsIntraFraction) {
  const DiGraph g = two_cliques();
  const Partition p({0, 0, 0, 0, 1, 1, 1, 1});
  // 26 arcs total, 2 cross.
  EXPECT_NEAR(coverage(g, p), 24.0 / 26.0, 1e-12);
}

TEST(Coverage, SingletonsScoreZeroWithoutSelfLoops) {
  const DiGraph g = path_graph(4);
  const Partition p({0, 1, 2, 3});
  EXPECT_DOUBLE_EQ(coverage(g, p), 0.0);
}

TEST(PartitionQuality, AggregatesSensibly) {
  const DiGraph g = two_cliques();
  const Partition p({0, 0, 0, 0, 1, 1, 1, 1});
  const PartitionQuality q = partition_quality(g, p);
  EXPECT_EQ(q.num_communities, 2u);
  EXPECT_EQ(q.largest, 4u);
  EXPECT_EQ(q.smallest, 4u);
  EXPECT_GT(q.modularity, 0.3);
  EXPECT_NEAR(q.coverage, 24.0 / 26.0, 1e-12);
  EXPECT_NEAR(q.mean_conductance, 2.0 / 13.0, 1e-12);
  EXPECT_NEAR(q.max_conductance, 2.0 / 13.0, 1e-12);
}

TEST(PartitionQuality, PlantedBeatsRandomSplit) {
  CommunityGraphConfig cfg;
  cfg.community_sizes = {80, 80};
  cfg.avg_inter_degree = 0.5;
  cfg.seed = 9;
  const CommunityGraph cg = make_community_graph(cfg);
  const PartitionQuality planted =
      partition_quality(cg.graph, Partition(cg.membership));
  std::vector<CommunityId> shuffled = cg.membership;
  // Deterministic "bad" split: alternate labels.
  for (std::size_t i = 0; i < shuffled.size(); ++i) shuffled[i] = i % 2;
  const PartitionQuality random_split =
      partition_quality(cg.graph, Partition(shuffled));
  EXPECT_GT(planted.modularity, random_split.modularity);
  EXPECT_LT(planted.mean_conductance, random_split.mean_conductance);
}

}  // namespace
}  // namespace lcrb
