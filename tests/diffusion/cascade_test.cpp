#include "diffusion/cascade.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/error.h"

namespace lcrb {
namespace {

TEST(ValidateSeeds, AcceptsDisjointSets) {
  const DiGraph g = cycle_graph(6);
  EXPECT_NO_THROW(validate_seeds(g, {{0, 1}, {3, 4}}));
  EXPECT_NO_THROW(validate_seeds(g, {{0}, {}}));
  EXPECT_NO_THROW(validate_seeds(g, {{}, {}}));
}

TEST(ValidateSeeds, RejectsOverlap) {
  const DiGraph g = cycle_graph(6);
  EXPECT_THROW(validate_seeds(g, {{0, 1}, {1, 2}}), Error);
}

TEST(ValidateSeeds, RejectsDuplicates) {
  const DiGraph g = cycle_graph(6);
  EXPECT_THROW(validate_seeds(g, {{0, 0}, {}}), Error);
  EXPECT_THROW(validate_seeds(g, {{}, {2, 2}}), Error);
}

TEST(ValidateSeeds, RejectsOutOfRange) {
  const DiGraph g = cycle_graph(6);
  EXPECT_THROW(validate_seeds(g, {{6}, {}}), Error);
  EXPECT_THROW(validate_seeds(g, {{}, {99}}), Error);
}

TEST(DiffusionResult, CountsAndCumulatives) {
  DiffusionResult r;
  r.state = {NodeState::kInfected, NodeState::kProtected, NodeState::kInactive,
             NodeState::kInfected};
  r.newly_infected = {1, 1, 0};
  r.newly_protected = {1, 0, 0};
  EXPECT_EQ(r.infected_count(), 2u);
  EXPECT_EQ(r.protected_count(), 1u);
  EXPECT_EQ(r.cumulative_infected_at(0), 1u);
  EXPECT_EQ(r.cumulative_infected_at(1), 2u);
  EXPECT_EQ(r.cumulative_infected_at(2), 2u);
  // Beyond the recorded series the curve is flat.
  EXPECT_EQ(r.cumulative_infected_at(100), 2u);
  EXPECT_EQ(r.cumulative_protected_at(100), 1u);
}

TEST(DiffusionResult, SavedFraction) {
  DiffusionResult r;
  r.state = {NodeState::kInfected, NodeState::kProtected, NodeState::kInactive};
  const NodeId targets[] = {0, 1, 2};
  EXPECT_EQ(r.saved_count(targets), 2u);
  EXPECT_NEAR(r.saved_fraction(targets), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.saved_fraction({}), 1.0);
}

}  // namespace
}  // namespace lcrb
