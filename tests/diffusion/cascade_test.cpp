#include "diffusion/cascade.h"

#include <gtest/gtest.h>

#include "diffusion/montecarlo.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "util/error.h"

namespace lcrb {
namespace {

TEST(ValidateSeeds, AcceptsDisjointSets) {
  const DiGraph g = cycle_graph(6);
  EXPECT_NO_THROW(validate_seeds(g, {{0, 1}, {3, 4}}));
  EXPECT_NO_THROW(validate_seeds(g, {{0}, {}}));
  EXPECT_NO_THROW(validate_seeds(g, {{}, {}}));
}

TEST(ValidateSeeds, RejectsOverlap) {
  const DiGraph g = cycle_graph(6);
  EXPECT_THROW(validate_seeds(g, {{0, 1}, {1, 2}}), Error);
}

TEST(ValidateSeeds, RejectsDuplicates) {
  const DiGraph g = cycle_graph(6);
  EXPECT_THROW(validate_seeds(g, {{0, 0}, {}}), Error);
  EXPECT_THROW(validate_seeds(g, {{}, {2, 2}}), Error);
}

TEST(ValidateSeeds, RejectsOutOfRange) {
  const DiGraph g = cycle_graph(6);
  EXPECT_THROW(validate_seeds(g, {{6}, {}}), Error);
  EXPECT_THROW(validate_seeds(g, {{}, {99}}), Error);
}

TEST(DiffusionResult, CountsAndCumulatives) {
  DiffusionResult r;
  r.state = {NodeState::kInfected, NodeState::kProtected, NodeState::kInactive,
             NodeState::kInfected};
  r.newly_infected = {1, 1, 0};
  r.newly_protected = {1, 0, 0};
  EXPECT_EQ(r.infected_count(), 2u);
  EXPECT_EQ(r.protected_count(), 1u);
  EXPECT_EQ(r.cumulative_infected_at(0), 1u);
  EXPECT_EQ(r.cumulative_infected_at(1), 2u);
  EXPECT_EQ(r.cumulative_infected_at(2), 2u);
  // Beyond the recorded series the curve is flat.
  EXPECT_EQ(r.cumulative_infected_at(100), 2u);
  EXPECT_EQ(r.cumulative_protected_at(100), 1u);
}

TEST(DiffusionResultValidate, AcceptsRealSimulationAndRejectsCorruption) {
  // A genuine OPOAO run on a path passes; targeted corruptions of each
  // invariant the validator states must throw.
  const DiGraph g = make_graph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const SeedSets seeds{{0}, {4}};
  MonteCarloConfig cfg;
  cfg.model = DiffusionModel::kOpoao;
  const DiffusionResult r = simulate(g, seeds, 17, cfg);
  EXPECT_NO_THROW(r.validate(g, seeds));

  {  // state says active, activation_step says unreached
    DiffusionResult bad = r;
    bad.state[0] = NodeState::kInactive;
    EXPECT_THROW(bad.validate(g, seeds), Error);
  }
  {  // a non-seed claiming step 0
    DiffusionResult bad = r;
    bad.state[2] = NodeState::kInfected;
    bad.activation_step[2] = 0;
    EXPECT_THROW(bad.validate(g, seeds), Error);
  }
  {  // newly_* series out of sync with the activation steps
    DiffusionResult bad = r;
    bad.newly_infected[0] += 1;
    EXPECT_THROW(bad.validate(g, seeds), Error);
  }
  {  // hand-built result whose counting invariants all hold, but node 2's
     // protection at step 1 has no protected in-neighbor at step 0 (its only
     // in-neighbor, 1, is inactive) — only the propagation rule can catch it
    DiffusionResult bad;
    bad.state.assign(5, NodeState::kInactive);
    bad.activation_step.assign(5, kUnreached);
    bad.state[0] = NodeState::kInfected;
    bad.activation_step[0] = 0;
    bad.state[4] = NodeState::kProtected;
    bad.activation_step[4] = 0;
    bad.state[2] = NodeState::kProtected;
    bad.activation_step[2] = 1;
    bad.newly_infected = {1, 0};
    bad.newly_protected = {1, 1};
    bad.steps = 1;
    EXPECT_THROW(bad.validate(g, seeds), Error);
  }
}

TEST(DiffusionResult, SavedFraction) {
  DiffusionResult r;
  r.state = {NodeState::kInfected, NodeState::kProtected, NodeState::kInactive};
  const NodeId targets[] = {0, 1, 2};
  EXPECT_EQ(r.saved_count(targets), 2u);
  EXPECT_NEAR(r.saved_fraction(targets), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.saved_fraction({}), 1.0);
}

}  // namespace
}  // namespace lcrb
