#include "diffusion/doam.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace lcrb {
namespace {

TEST(Doam, RumorAloneFloodsReachableSet) {
  const DiGraph g = path_graph(5);
  const DiffusionResult r = simulate_doam(g, {{0}, {}});
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(r.state[v], NodeState::kInfected);
    EXPECT_EQ(r.activation_step[v], v);
  }
  EXPECT_EQ(r.steps, 4u);
}

TEST(Doam, ProtectorWinsTie) {
  // 0 -> 2 <- 1; rumor at 0, protector at 1: both reach 2 at step 1.
  const DiGraph g = make_graph(3, {{0, 2}, {1, 2}});
  const DiffusionResult r = simulate_doam(g, {{0}, {1}});
  EXPECT_EQ(r.state[2], NodeState::kProtected);
}

TEST(Doam, RumorWinsWhenStrictlyCloser) {
  // rumor 0 -> 1 -> 2 ; protector 3 -> 4 -> 2 is longer path.
  const DiGraph g = make_graph(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}, {5, 2}});
  const DiffusionResult r = simulate_doam(g, {{0}, {3}});
  EXPECT_EQ(r.state[2], NodeState::kInfected);
}

TEST(Doam, ProtectedNodesBlockRumorPaths) {
  // Line 0 -> 1 -> 2 -> 3 with protector seeded at 2: rumor stops at 1.
  const DiGraph g = path_graph(4);
  const DiffusionResult r = simulate_doam(g, {{0}, {2}});
  EXPECT_EQ(r.state[1], NodeState::kInfected);
  EXPECT_EQ(r.state[2], NodeState::kProtected);
  EXPECT_EQ(r.state[3], NodeState::kProtected);  // P spreads through 2
}

TEST(Doam, InfectedNodesBlockProtectorPaths) {
  // Protector's only path to 3 runs through 1, which the rumor grabs first.
  const DiGraph g = make_graph(4, {{0, 1}, {2, 1}, {1, 3}});
  // dist_R(1)=1 via 0; protector at 2 also dist 1 -> P wins tie; flip so R
  // is closer: add direct rumor shortcut.
  const DiGraph g2 = make_graph(5, {{0, 1}, {4, 2}, {2, 1}, {1, 3}});
  // R: 0 -> 1 (step 1). P: 4 -> 2 (step 1) -> 1 (step 2, blocked).
  const DiffusionResult r = simulate_doam(g2, {{0}, {4}});
  EXPECT_EQ(r.state[1], NodeState::kInfected);
  EXPECT_EQ(r.state[3], NodeState::kInfected);
  (void)g;
}

TEST(Doam, EachNodeBroadcastsOnce) {
  const DiGraph g = star_graph(6);
  const DiffusionResult r = simulate_doam(g, {{0}, {}});
  EXPECT_EQ(r.infected_count(), 6u);
  EXPECT_EQ(r.steps, 1u);  // hub broadcast reaches everyone in one step
}

TEST(Doam, MaxStepsCapsSpread) {
  const DiGraph g = path_graph(10);
  DoamConfig cfg;
  cfg.max_steps = 3;
  const DiffusionResult r = simulate_doam(g, {{0}, {}}, cfg);
  EXPECT_EQ(r.infected_count(), 4u);  // seed + 3 hops
}

TEST(Doam, DisjointSeedsRequired) {
  const DiGraph g = path_graph(3);
  EXPECT_THROW(simulate_doam(g, {{0}, {0}}), Error);
}

TEST(Doam, NewlySeriesConsistent) {
  const DiGraph g = path_graph(6, /*undirected=*/true);
  const DiffusionResult r = simulate_doam(g, {{0}, {5}});
  std::size_t inf = 0, prot = 0;
  for (auto c : r.newly_infected) inf += c;
  for (auto c : r.newly_protected) prot += c;
  EXPECT_EQ(inf, r.infected_count());
  EXPECT_EQ(prot, r.protected_count());
  EXPECT_EQ(inf + prot, 6u);  // everything reachable gets claimed
}

// The analytic rule: v saved  <=>  dist_P(v) <= dist_R(v).
class DoamOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DoamOracleTest, SimulationMatchesDistanceRule) {
  Rng rng(GetParam());
  const DiGraph g = erdos_renyi(120, 0.03, /*directed=*/true, rng);

  // Random disjoint seed sets.
  SeedSets seeds;
  std::vector<bool> used(g.num_nodes(), false);
  for (int i = 0; i < 4; ++i) {
    const auto v = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    if (!used[v]) {
      used[v] = true;
      seeds.rumors.push_back(v);
    }
  }
  for (int i = 0; i < 4; ++i) {
    const auto v = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    if (!used[v]) {
      used[v] = true;
      seeds.protectors.push_back(v);
    }
  }
  if (seeds.rumors.empty() || seeds.protectors.empty()) GTEST_SKIP();

  const DiffusionResult sim = simulate_doam(g, seeds);
  const BfsResult dp = bfs_forward(g, seeds.protectors);
  const BfsResult dr = bfs_forward(g, seeds.rumors);

  std::vector<NodeId> all(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
  const std::vector<bool> saved = doam_saved(g, seeds, all);

  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const bool sim_saved = sim.state[v] != NodeState::kInfected;
    EXPECT_EQ(sim_saved, dp.dist[v] <= dr.dist[v]) << "node " << v;
    EXPECT_EQ(saved[v], sim_saved) << "node " << v;
    // Activation times match BFS distances for claimed nodes.
    if (sim.state[v] == NodeState::kInfected) {
      EXPECT_EQ(sim.activation_step[v], dr.dist[v]);
    } else if (sim.state[v] == NodeState::kProtected) {
      EXPECT_EQ(sim.activation_step[v], dp.dist[v]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DoamOracleTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

}  // namespace
}  // namespace lcrb
