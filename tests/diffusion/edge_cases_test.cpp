// Boundary conditions across the diffusion stack.
#include <gtest/gtest.h>

#include "diffusion/doam.h"
#include "diffusion/montecarlo.h"
#include "diffusion/opoao.h"
#include "graph/builder.h"
#include "graph/generators.h"

namespace lcrb {
namespace {

TEST(EdgeCases, ZeroMaxStepsFreezesSeeds) {
  const DiGraph g = path_graph(5);
  OpoaoConfig oc;
  oc.max_steps = 0;
  const DiffusionResult r = simulate_opoao(g, {{0}, {4}}, 1, oc);
  EXPECT_EQ(r.infected_count(), 1u);
  EXPECT_EQ(r.protected_count(), 1u);
  EXPECT_EQ(r.steps, 0u);

  DoamConfig dc;
  dc.max_steps = 0;
  const DiffusionResult d = simulate_doam(g, {{0}, {4}}, dc);
  EXPECT_EQ(d.infected_count(), 1u);
}

TEST(EdgeCases, EmptySeedSetsAreLegalNoOps) {
  const DiGraph g = path_graph(4);
  const DiffusionResult r = simulate_doam(g, {{}, {}});
  EXPECT_EQ(r.infected_count(), 0u);
  EXPECT_EQ(r.protected_count(), 0u);
  const DiffusionResult o = simulate_opoao(g, {{}, {}}, 1);
  EXPECT_EQ(o.infected_count(), 0u);
}

TEST(EdgeCases, ProtectorOnlyDiffusionInfectsNothing) {
  Rng rng(2);
  const DiGraph g = erdos_renyi(60, 0.08, true, rng);
  const DiffusionResult r = simulate_doam(g, {{}, {0, 1}});
  EXPECT_EQ(r.infected_count(), 0u);
  EXPECT_GT(r.protected_count(), 2u);  // P floods unopposed
}

TEST(EdgeCases, SingleNodeGraph) {
  GraphBuilder b;
  b.reserve_nodes(1);
  const DiGraph g = b.finalize();
  const DiffusionResult r = simulate_doam(g, {{0}, {}});
  EXPECT_EQ(r.infected_count(), 1u);
  EXPECT_EQ(r.steps, 0u);
  const DiffusionResult o = simulate_opoao(g, {{0}, {}}, 1);
  EXPECT_EQ(o.infected_count(), 1u);
}

TEST(EdgeCases, SinkSeedsCannotSpread) {
  // Seeds with zero out-degree: nothing ever activates.
  const DiGraph g = make_graph(4, {{0, 1}, {0, 2}, {0, 3}});
  const DiffusionResult r = simulate_opoao(g, {{1}, {2}}, 5);
  EXPECT_EQ(r.infected_count(), 1u);
  EXPECT_EQ(r.protected_count(), 1u);
  EXPECT_EQ(r.state[3], NodeState::kInactive);
}

TEST(EdgeCases, CumulativeNeverDecreasesUnderHopCapSweep) {
  Rng rng(3);
  const DiGraph g = erdos_renyi(100, 0.05, true, rng);
  // Running with a lower hop cap must be a prefix of the higher-cap run.
  OpoaoConfig long_cfg;
  long_cfg.max_steps = 20;
  const DiffusionResult full = simulate_opoao(g, {{0, 1}, {2}}, 9, long_cfg);
  for (std::uint32_t cap : {0u, 3u, 7u, 12u}) {
    OpoaoConfig c;
    c.max_steps = cap;
    const DiffusionResult part = simulate_opoao(g, {{0, 1}, {2}}, 9, c);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (part.state[v] != NodeState::kInactive) {
        EXPECT_EQ(part.state[v], full.state[v]) << "node " << v;
        EXPECT_EQ(part.activation_step[v], full.activation_step[v]);
      }
    }
    EXPECT_EQ(part.cumulative_infected_at(cap),
              full.cumulative_infected_at(cap));
  }
}

TEST(EdgeCases, DoamSavedOnEmptyTargets) {
  const DiGraph g = path_graph(3);
  const auto saved = doam_saved(g, {{0}, {}}, {});
  EXPECT_TRUE(saved.empty());
}

TEST(EdgeCases, MonteCarloOnEdgelessGraph) {
  GraphBuilder b;
  b.reserve_nodes(5);
  const DiGraph g = b.finalize();
  MonteCarloConfig cfg;
  cfg.runs = 3;
  cfg.max_hops = 5;
  const HopSeries s = monte_carlo_series(g, {{0}, {1}}, cfg);
  EXPECT_DOUBLE_EQ(s.final_infected_mean, 1.0);
  EXPECT_DOUBLE_EQ(s.final_protected_mean, 1.0);
}

}  // namespace
}  // namespace lcrb
