#include <gtest/gtest.h>

#include "diffusion/doam.h"
#include "diffusion/ic.h"
#include "diffusion/lt.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace lcrb {
namespace {

// ------------------------------ IC ------------------------------

TEST(CompetitiveIc, ProbabilityOneIsDoamLike) {
  const DiGraph g = path_graph(5);
  IcConfig cfg;
  cfg.edge_prob = 1.0;
  const DiffusionResult r = simulate_competitive_ic(g, {{0}, {}}, 3, cfg);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(r.state[v], NodeState::kInfected);
    EXPECT_EQ(r.activation_step[v], v);
  }
}

TEST(CompetitiveIc, ProbabilityZeroOnlySeeds) {
  const DiGraph g = complete_graph(6);
  IcConfig cfg;
  cfg.edge_prob = 0.0;
  const DiffusionResult r = simulate_competitive_ic(g, {{0}, {1}}, 3, cfg);
  EXPECT_EQ(r.infected_count(), 1u);
  EXPECT_EQ(r.protected_count(), 1u);
}

TEST(CompetitiveIc, DeterministicInSeed) {
  Rng rng(2);
  const DiGraph g = erdos_renyi(80, 0.06, true, rng);
  const SeedSets seeds{{0, 1}, {2}};
  IcConfig cfg;
  cfg.edge_prob = 0.4;
  const DiffusionResult a = simulate_competitive_ic(g, seeds, 5, cfg);
  const DiffusionResult b = simulate_competitive_ic(g, seeds, 5, cfg);
  EXPECT_EQ(a.state, b.state);
}

TEST(CompetitiveIc, ProtectorWinsTie) {
  IcConfig cfg;
  cfg.edge_prob = 1.0;
  const DiGraph g = make_graph(3, {{0, 2}, {1, 2}});
  const DiffusionResult r = simulate_competitive_ic(g, {{0}, {1}}, 7, cfg);
  EXPECT_EQ(r.state[2], NodeState::kProtected);
}

TEST(CompetitiveIc, SpreadGrowsWithProbability) {
  Rng rng(4);
  const DiGraph g = erdos_renyi(300, 0.02, true, rng);
  double low = 0, high = 0;
  for (std::uint64_t s = 0; s < 20; ++s) {
    IcConfig cl;
    cl.edge_prob = 0.05;
    IcConfig ch;
    ch.edge_prob = 0.5;
    low += static_cast<double>(
        simulate_competitive_ic(g, {{0}, {}}, s, cl).infected_count());
    high += static_cast<double>(
        simulate_competitive_ic(g, {{0}, {}}, s, ch).infected_count());
  }
  EXPECT_LT(low, high);
}

TEST(CompetitiveIc, InvalidProbabilityThrows) {
  const DiGraph g = path_graph(3);
  IcConfig cfg;
  cfg.edge_prob = 1.5;
  EXPECT_THROW(simulate_competitive_ic(g, {{0}, {}}, 1, cfg), Error);
}

TEST(CompetitiveIc, LiveEdgeCouplingMonotoneInProtectors) {
  // Adding protectors never increases the infected set under the live-edge
  // coupling (same seed -> same live edges; P only blocks R).
  Rng rng(6);
  const DiGraph g = erdos_renyi(150, 0.04, true, rng);
  IcConfig cfg;
  cfg.edge_prob = 0.35;
  for (std::uint64_t s = 0; s < 10; ++s) {
    const auto no_p = simulate_competitive_ic(g, {{0, 1}, {}}, s, cfg);
    const auto with_p = simulate_competitive_ic(g, {{0, 1}, {5, 6, 7}}, s, cfg);
    EXPECT_LE(with_p.infected_count(), no_p.infected_count()) << "seed " << s;
  }
}

TEST(CompetitiveIc, ProbabilityOneEqualsDoamEverywhere) {
  // With every arc live, competitive IC degenerates to DOAM's synchronized
  // broadcast: identical states and activation times on random graphs.
  Rng rng(31);
  for (int trial = 0; trial < 5; ++trial) {
    const DiGraph g = erdos_renyi(100, 0.04, true, rng);
    const SeedSets seeds{{0, 1, 2}, {3, 4}};
    IcConfig cfg;
    cfg.edge_prob = 1.0;
    const DiffusionResult ic = simulate_competitive_ic(g, seeds, trial, cfg);
    const DiffusionResult doam = simulate_doam(g, seeds);
    EXPECT_EQ(ic.state, doam.state) << "trial " << trial;
    EXPECT_EQ(ic.activation_step, doam.activation_step);
  }
}

// ------------------------------ LT ------------------------------

TEST(CompetitiveLt, SingleInNeighborAlwaysActivates) {
  // d_in = 1 => weight 1 >= any threshold in [0,1).
  const DiGraph g = path_graph(5);
  const DiffusionResult r = simulate_competitive_lt(g, {{0}, {}}, 3);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(r.state[v], NodeState::kInfected);
}

TEST(CompetitiveLt, DeterministicInSeed) {
  Rng rng(8);
  const DiGraph g = erdos_renyi(80, 0.06, true, rng);
  const SeedSets seeds{{0, 1}, {2, 3}};
  const DiffusionResult a = simulate_competitive_lt(g, seeds, 5);
  const DiffusionResult b = simulate_competitive_lt(g, seeds, 5);
  EXPECT_EQ(a.state, b.state);
}

TEST(CompetitiveLt, MajorityColorWinsProtectorTies) {
  // Node 4 has in-neighbors {0,1,2,3}: 2 rumors + 2 protectors active at
  // step 0 -> weight tie 0.5 vs 0.5 -> protected.
  GraphBuilder b;
  for (NodeId u = 0; u < 4; ++u) b.add_edge(u, 4);
  const DiGraph g = b.finalize();
  const DiffusionResult r = simulate_competitive_lt(g, {{0, 1}, {2, 3}}, 9);
  if (r.state[4] != NodeState::kInactive) {
    EXPECT_EQ(r.state[4], NodeState::kProtected);
  }
}

TEST(CompetitiveLt, RumorMajorityInfects) {
  GraphBuilder b;
  for (NodeId u = 0; u < 4; ++u) b.add_edge(u, 4);
  const DiGraph g = b.finalize();
  // 3 rumors vs 1 protector: if 4 activates it must be infected.
  const DiffusionResult r = simulate_competitive_lt(g, {{0, 1, 2}, {3}}, 9);
  if (r.state[4] != NodeState::kInactive) {
    EXPECT_EQ(r.state[4], NodeState::kInfected);
  }
}

TEST(CompetitiveLt, ThresholdControlsActivation) {
  // Many seeds on a shared target: full in-neighborhood active => weight 1
  // => always activates regardless of threshold.
  GraphBuilder b;
  for (NodeId u = 0; u < 6; ++u) b.add_edge(u, 6);
  const DiGraph g = b.finalize();
  const DiffusionResult r =
      simulate_competitive_lt(g, {{0, 1, 2, 3, 4, 5}, {}}, 123);
  EXPECT_EQ(r.state[6], NodeState::kInfected);
}

TEST(CompetitiveLt, ProgressiveAndConsistent) {
  Rng rng(10);
  const DiGraph g = erdos_renyi(100, 0.05, true, rng);
  const DiffusionResult r = simulate_competitive_lt(g, {{0, 1, 2}, {3, 4}}, 77);
  std::size_t inf = 0, prot = 0;
  for (auto c : r.newly_infected) inf += c;
  for (auto c : r.newly_protected) prot += c;
  EXPECT_EQ(inf, r.infected_count());
  EXPECT_EQ(prot, r.protected_count());
}

}  // namespace
}  // namespace lcrb
