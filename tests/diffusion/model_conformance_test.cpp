// Conformance suite for the model-traits contract (diffusion/model_traits.h),
// parameterized over every DiffusionModel. Each model must expose coherent
// flags, share the kernel's seed validation and step accounting, obey the
// P-beats-R tie rule, and — where the capability flags say so — keep the
// realization cache and the reverse (RR-set) sampler in exact agreement with
// the forward kernel under one coupled realization seed. A new model added
// per the docs/architecture.md recipe passes this suite with a one-line
// instantiation change.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "diffusion/model_traits.h"
#include "diffusion/montecarlo.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "lcrb/ris.h"
#include "lcrb/sigma_engine.h"
#include "util/error.h"
#include "util/rng.h"

namespace lcrb {
namespace {

class ModelConformanceTest : public ::testing::TestWithParam<DiffusionModel> {
 protected:
  DiffusionModel model() const { return GetParam(); }

  MonteCarloConfig mc_config() const {
    MonteCarloConfig cfg;
    cfg.model = model();
    cfg.max_hops = 20;
    cfg.ic_edge_prob = 0.3;
    return cfg;
  }
};

TEST_P(ModelConformanceTest, TraitsIdentityMatchesEnum) {
  const std::string name = dispatch_model(
      model(), [](auto t) { return std::string(decltype(t)::kName); });
  EXPECT_EQ(name, to_string(model()));
  const DiffusionModel roundtrip =
      dispatch_model(model(), [](auto t) { return decltype(t)::kModel; });
  EXPECT_EQ(roundtrip, model());
  // The capability flags the subsystems branch on must agree with the
  // entry points that consume them.
  const bool cache = dispatch_model(
      model(), [](auto t) { return decltype(t)::kSupportsCache; });
  EXPECT_EQ(cache, SigmaEngine::supports(model()));
}

TEST_P(ModelConformanceTest, RejectsInvalidSeedSets) {
  Rng rng(1);
  const DiGraph g = erdos_renyi(40, 0.1, true, rng);
  const MonteCarloConfig cfg = mc_config();
  EXPECT_THROW(simulate(g, {{40}, {}}, 1, cfg), Error);    // out of range
  EXPECT_THROW(simulate(g, {{3, 3}, {}}, 1, cfg), Error);  // duplicate rumor
  EXPECT_THROW(simulate(g, {{3}, {5, 5}}, 1, cfg), Error);  // duplicate prot.
  EXPECT_THROW(simulate(g, {{3}, {3}}, 1, cfg), Error);    // overlap
}

TEST_P(ModelConformanceTest, ProtectorWinsTheContestedNode) {
  // r -> c <- p plus an isolated dummy d. Every model keys its randomness on
  // (realization seed, node/arc) only, so the protector-side randomness is
  // identical whether or not the rumor participates. Whenever the lone
  // protector reaches c in the rumor-free run, P-wins-ties requires c to end
  // protected when the rumor contests it at equal distance.
  const DiGraph g = make_graph(4, {{0, 2}, {1, 2}});
  const NodeId r = 0, p = 1, c = 2, d = 3;
  const MonteCarloConfig cfg = mc_config();
  std::size_t contested_ties = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const DiffusionResult alone = simulate(g, {{d}, {p}}, seed, cfg);
    if (alone.state[c] != NodeState::kProtected) continue;
    const DiffusionResult both = simulate(g, {{r}, {p}}, seed, cfg);
    EXPECT_EQ(both.state[c], NodeState::kProtected) << "seed " << seed;
    ++contested_ties;
  }
  // Every model reaches c from p in at least some realizations (always, for
  // the deterministic and single-pick models), so the check is never vacuous.
  EXPECT_GT(contested_ties, 0u);
}

TEST_P(ModelConformanceTest, StepAccountingIsConsistent) {
  Rng rng(7);
  const DiGraph g = erdos_renyi(120, 0.06, true, rng);
  const SeedSets seeds{{0, 1, 2}, {3, 4}};
  const MonteCarloConfig cfg = mc_config();
  for (std::uint64_t s = 0; s < 8; ++s) {
    const DiffusionResult res = simulate(g, seeds, s, cfg);
    EXPECT_LE(res.steps, cfg.max_hops);
    std::uint32_t max_step = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (res.state[v] == NodeState::kInactive) {
        EXPECT_EQ(res.activation_step[v], kUnreached);
        continue;
      }
      max_step = std::max(max_step, res.activation_step[v]);
    }
    EXPECT_EQ(max_step, res.steps) << "steps must be the activation watermark";
    EXPECT_NO_THROW(res.validate(g, seeds));
  }
}

TEST_P(ModelConformanceTest, ReverseSetMembersSaveTheRootForward) {
  const bool supports_reverse = dispatch_model(
      model(), [](auto t) { return decltype(t)::kSupportsReverse; });
  Rng rng(11);
  const DiGraph g = erdos_renyi(80, 0.07, true, rng);
  const std::vector<NodeId> rumors{0, 1};
  std::vector<NodeId> bridge_ends;
  for (NodeId v = 40; v < 60; ++v) bridge_ends.push_back(v);
  RisConfig cfg;
  cfg.model = model();
  cfg.max_hops = 20;
  cfg.ic_edge_prob = 0.3;
  if (!supports_reverse) {
    EXPECT_THROW(RrSampler(g, rumors, bridge_ends, cfg), Error);
    return;
  }
  RrSampler sampler(g, rumors, bridge_ends, cfg);
  // RR membership is sound for every reverse-capable model (exact for
  // DOAM/IC/WC, a lower bound for OPOAO): seeding any member as the lone
  // protector must save the root in the coupled forward realization.
  const MonteCarloConfig mc = mc_config();
  std::size_t checked = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    const RrSampler::Draw d = sampler.draw(0, i);
    const std::vector<NodeId> set =
        sampler.rr_set(d.root_idx, d.realization_seed);
    EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
    const NodeId root = bridge_ends[d.root_idx];
    for (NodeId v : set) {
      const DiffusionResult res =
          simulate(g, {rumors, {v}}, d.realization_seed, mc);
      EXPECT_NE(res.state[root], NodeState::kInfected)
          << "RR member " << v << " fails to save root " << root;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST_P(ModelConformanceTest, CacheReplayMatchesForwardSimulation) {
  Rng rng(13);
  const DiGraph g = erdos_renyi(80, 0.07, true, rng);
  const std::vector<NodeId> rumors{0, 1, 2};
  std::vector<NodeId> bridge_ends;
  for (NodeId v = 30; v < 55; ++v) bridge_ends.push_back(v);
  SigmaConfig cfg;
  cfg.model = model();
  cfg.samples = 6;
  cfg.max_hops = 20;
  cfg.ic_edge_prob = 0.3;
  std::vector<std::uint64_t> sample_seeds;
  for (std::uint64_t i = 0; i < cfg.samples; ++i) {
    sample_seeds.push_back(1000 + i * 77);
  }
  if (!SigmaEngine::supports(model())) {
    EXPECT_THROW(
        SigmaEngine(g, rumors, bridge_ends, sample_seeds, cfg, nullptr),
        Error);
    return;
  }
  const SigmaEngine engine(g, rumors, bridge_ends, sample_seeds, cfg, nullptr);
  const MonteCarloConfig mc = mc_config();
  const std::vector<std::vector<NodeId>> protector_sets = {
      {}, {10}, {10, 11, 12}, {33, 47}};
  for (std::size_t i = 0; i < cfg.samples; ++i) {
    const DiffusionResult base = simulate(g, {rumors, {}}, sample_seeds[i], mc);
    for (const std::vector<NodeId>& prot : protector_sets) {
      const SigmaEngine::Outcome o = engine.evaluate(i, prot);
      const DiffusionResult with =
          simulate(g, {rumors, prot}, sample_seeds[i], mc);
      std::uint32_t saved = 0, uninfected = 0;
      for (NodeId b : bridge_ends) {
        const bool base_inf = base.state[b] == NodeState::kInfected;
        const bool now_inf = with.state[b] == NodeState::kInfected;
        if (!now_inf) {
          ++uninfected;
          if (base_inf) ++saved;
        }
      }
      EXPECT_EQ(o.saved, saved) << "sample " << i;
      EXPECT_EQ(o.uninfected, uninfected) << "sample " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelConformanceTest,
    ::testing::Values(DiffusionModel::kOpoao, DiffusionModel::kDoam,
                      DiffusionModel::kIc, DiffusionModel::kLt,
                      DiffusionModel::kWc),
    [](const auto& param_info) { return to_string(param_info.param); });

// ---------------------------------------------------------------------------
// K-way conformance: the same kernel invariants, parameterized over
// (model, K) with K in {2, 3, 5}. K cascades are assembled with
// make_seed_sets from round-robin splits of a rumor set and a protector set:
// K=2 is the paper's problem (1 rumor + 1 protector campaign), K=3 adds a
// second rumor campaign, K=5 runs 3 rumor vs 2 protector campaigns.
// ---------------------------------------------------------------------------

class KWayConformanceTest
    : public ::testing::TestWithParam<std::tuple<DiffusionModel, int>> {
 protected:
  DiffusionModel model() const { return std::get<0>(GetParam()); }
  std::size_t num_cascades() const {
    return static_cast<std::size_t>(std::get<1>(GetParam()));
  }
  std::size_t rumor_campaigns() const { return (num_cascades() + 1) / 2; }
  std::size_t protector_campaigns() const {
    return num_cascades() - rumor_campaigns();
  }

  MonteCarloConfig mc_config() const {
    MonteCarloConfig cfg;
    cfg.model = model();
    cfg.max_hops = 20;
    cfg.ic_edge_prob = 0.3;
    return cfg;
  }

  /// Deal `ids` round-robin into `n` groups (groups may end up empty when
  /// ids.size() < n — make_seed_sets and the kernel accept empty cascades).
  static std::vector<std::vector<NodeId>> split(const std::vector<NodeId>& ids,
                                                std::size_t n) {
    std::vector<std::vector<NodeId>> groups(n);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      groups[i % n].push_back(ids[i]);
    }
    return groups;
  }

  SeedSets seeds_for(const std::vector<NodeId>& rumors,
                     const std::vector<NodeId>& protectors,
                     CascadePriority priority) const {
    return make_seed_sets(split(rumors, rumor_campaigns()),
                          split(protectors, protector_campaigns()), priority);
  }
};

TEST_P(KWayConformanceTest, PairwiseColorExclusivity) {
  // Every active node is won by exactly one cascade, the winner's role
  // matches the node's color, and inactive nodes carry kNoCascade — under
  // all three priority policies.
  Rng rng(17);
  const DiGraph g = erdos_renyi(100, 0.06, true, rng);
  const std::vector<NodeId> rumors{0, 1, 2, 3, 4, 5};
  const std::vector<NodeId> protectors{10, 11, 12, 13};
  const MonteCarloConfig cfg = mc_config();
  for (const CascadePriority priority :
       {CascadePriority::kFixedOrder, CascadePriority::kLowestId,
        CascadePriority::kRoundRobin}) {
    const SeedSets seeds = seeds_for(rumors, protectors, priority);
    ASSERT_EQ(seeds.num_cascades(), num_cascades());
    for (std::uint64_t s = 0; s < 6; ++s) {
      const DiffusionResult res = simulate(g, seeds, s, cfg);
      ASSERT_EQ(res.cascade.size(), g.num_nodes());
      std::size_t active = 0;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (res.state[v] == NodeState::kInactive) {
          EXPECT_EQ(res.cascade[v], kNoCascade);
          continue;
        }
        ++active;
        ASSERT_LT(res.cascade[v], seeds.num_cascades());
        const CascadeRole role = seeds.role_of(res.cascade[v]);
        EXPECT_EQ(res.state[v], role == CascadeRole::kRumor
                                    ? NodeState::kInfected
                                    : NodeState::kProtected);
      }
      // Exclusivity: the per-cascade counts partition the active nodes.
      std::size_t by_cascade = 0;
      for (std::size_t k = 0; k < seeds.num_cascades(); ++k) {
        by_cascade += res.cascade_count(static_cast<std::uint8_t>(k));
      }
      EXPECT_EQ(by_cascade, active);
      EXPECT_NO_THROW(res.validate(g, seeds));
    }
  }
}

TEST_P(KWayConformanceTest, PerCascadeMonotoneGrowth) {
  // Each cascade's cumulative curve is non-decreasing, flattens to its final
  // count, and the per-cascade series sum to the role-aggregated newly_*
  // series at every step.
  Rng rng(19);
  const DiGraph g = erdos_renyi(120, 0.05, true, rng);
  const std::vector<NodeId> rumors{0, 1, 2, 3, 4, 5, 6};
  const std::vector<NodeId> protectors{20, 21, 22, 23, 24};
  const SeedSets seeds = seeds_for(rumors, protectors,
                                   CascadePriority::kFixedOrder);
  const MonteCarloConfig cfg = mc_config();
  for (std::uint64_t s = 0; s < 6; ++s) {
    const DiffusionResult res = simulate(g, seeds, s, cfg);
    ASSERT_EQ(res.newly_by_cascade.size(), seeds.num_cascades());
    for (std::size_t k = 0; k < seeds.num_cascades(); ++k) {
      const auto kk = static_cast<std::uint8_t>(k);
      std::size_t prev = 0;
      for (std::uint32_t h = 0; h <= res.steps; ++h) {
        const std::size_t cur = res.cumulative_cascade_at(kk, h);
        EXPECT_GE(cur, prev) << "cascade " << k << " shrank at hop " << h;
        prev = cur;
      }
      EXPECT_EQ(prev, res.cascade_count(kk));
      EXPECT_EQ(res.cumulative_cascade_at(kk, res.steps + 5),
                res.cascade_count(kk));
    }
    for (std::size_t t = 0; t < res.newly_infected.size(); ++t) {
      std::uint32_t infected = 0, prot = 0;
      for (std::size_t k = 0; k < seeds.num_cascades(); ++k) {
        (seeds.role_of(k) == CascadeRole::kRumor ? infected : prot) +=
            res.newly_by_cascade[k][t];
      }
      EXPECT_EQ(infected, res.newly_infected[t]);
      EXPECT_EQ(prot, res.newly_protected[t]);
    }
  }
}

TEST_P(KWayConformanceTest, RoleSeparableCollapseMatchesTwoCascadeRun) {
  // Under a role-separable priority the K-way run and the two-cascade run on
  // the role unions color every node identically (only the attribution
  // differs). This is the invariant that lets the realization cache serve
  // K-way queries, so it doubles as the K-way replay==forward check.
  Rng rng(23);
  const DiGraph g = erdos_renyi(100, 0.06, true, rng);
  const std::vector<NodeId> rumors{0, 1, 2, 3, 4, 5};
  const std::vector<NodeId> protectors{10, 11, 12, 13};
  const SeedSets kway = seeds_for(rumors, protectors,
                                  CascadePriority::kFixedOrder);
  ASSERT_TRUE(kway.role_separable());
  SeedSets two;
  two.rumors = kway.rumor_role_union();
  two.protectors = kway.protector_role_union();
  const MonteCarloConfig cfg = mc_config();
  for (std::uint64_t s = 0; s < 10; ++s) {
    const DiffusionResult a = simulate(g, kway, s, cfg);
    const DiffusionResult b = simulate(g, two, s, cfg);
    EXPECT_EQ(a.state, b.state) << "seed " << s;
    EXPECT_EQ(a.activation_step, b.activation_step) << "seed " << s;
    EXPECT_EQ(a.newly_infected, b.newly_infected) << "seed " << s;
    EXPECT_EQ(a.newly_protected, b.newly_protected) << "seed " << s;
  }
}

TEST_P(KWayConformanceTest, CacheReplayMatchesKWayForward) {
  // For cache-capable models the SigmaEngine replay over the role unions
  // must reproduce the K-way forward outcome bridge end by bridge end.
  if (!SigmaEngine::supports(model())) return;
  Rng rng(29);
  const DiGraph g = erdos_renyi(80, 0.07, true, rng);
  const std::vector<NodeId> rumors{0, 1, 2, 3};
  std::vector<NodeId> bridge_ends;
  for (NodeId v = 30; v < 55; ++v) bridge_ends.push_back(v);
  const std::vector<NodeId> protectors{10, 11, 12};
  const SeedSets kway = seeds_for(rumors, protectors,
                                  CascadePriority::kFixedOrder);

  SigmaConfig cfg;
  cfg.model = model();
  cfg.samples = 5;
  cfg.max_hops = 20;
  cfg.ic_edge_prob = 0.3;
  std::vector<std::uint64_t> sample_seeds;
  for (std::uint64_t i = 0; i < cfg.samples; ++i) {
    sample_seeds.push_back(500 + i * 31);
  }
  const SigmaEngine engine(g, kway.rumor_role_union(), bridge_ends,
                           sample_seeds, cfg, nullptr);
  const MonteCarloConfig mc = mc_config();
  for (std::size_t i = 0; i < cfg.samples; ++i) {
    SeedSets base_seeds;
    base_seeds.rumors = kway.rumor_role_union();
    const DiffusionResult base = simulate(g, base_seeds, sample_seeds[i], mc);
    const DiffusionResult with = simulate(g, kway, sample_seeds[i], mc);
    const SigmaEngine::Outcome o =
        engine.evaluate(i, kway.protector_role_union());
    std::uint32_t saved = 0, uninfected = 0;
    for (NodeId b : bridge_ends) {
      if (with.state[b] != NodeState::kInfected) {
        ++uninfected;
        if (base.state[b] == NodeState::kInfected) ++saved;
      }
    }
    EXPECT_EQ(o.saved, saved) << "sample " << i;
    EXPECT_EQ(o.uninfected, uninfected) << "sample " << i;
  }
}

TEST_P(KWayConformanceTest, ReverseSetMembersSaveTheRootAgainstKWayRumors) {
  // Reverse-capable models: an RR member seeded as the lone protector saves
  // the root even when the rumor union is split into K-way campaigns (role
  // collapse keeps RR membership sound).
  const bool supports_reverse = dispatch_model(
      model(), [](auto t) { return decltype(t)::kSupportsReverse; });
  if (!supports_reverse) return;  // rejection pinned by the K=2 suite
  Rng rng(31);
  const DiGraph g = erdos_renyi(80, 0.07, true, rng);
  const std::vector<NodeId> rumors{0, 1, 2};
  std::vector<NodeId> bridge_ends;
  for (NodeId v = 40; v < 60; ++v) bridge_ends.push_back(v);
  RisConfig cfg;
  cfg.model = model();
  cfg.max_hops = 20;
  cfg.ic_edge_prob = 0.3;
  RrSampler sampler(g, rumors, bridge_ends, cfg);
  const MonteCarloConfig mc = mc_config();
  std::size_t checked = 0;
  for (std::size_t i = 0; i < 25; ++i) {
    const RrSampler::Draw d = sampler.draw(0, i);
    const std::vector<NodeId> set =
        sampler.rr_set(d.root_idx, d.realization_seed);
    const NodeId root = bridge_ends[d.root_idx];
    for (NodeId v : set) {
      const SeedSets seeds = seeds_for(rumors, {v},
                                       CascadePriority::kFixedOrder);
      const DiffusionResult res = simulate(g, seeds, d.realization_seed, mc);
      EXPECT_NE(res.state[root], NodeState::kInfected)
          << "RR member " << v << " fails to save root " << root
          << " against K-way rumors";
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsAllK, KWayConformanceTest,
    ::testing::Combine(::testing::Values(DiffusionModel::kOpoao,
                                         DiffusionModel::kDoam,
                                         DiffusionModel::kIc,
                                         DiffusionModel::kLt,
                                         DiffusionModel::kWc),
                       ::testing::Values(2, 3, 5)),
    [](const auto& param_info) {
      return to_string(std::get<0>(param_info.param)) + "_K" +
             std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace lcrb
