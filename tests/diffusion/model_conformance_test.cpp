// Conformance suite for the model-traits contract (diffusion/model_traits.h),
// parameterized over every DiffusionModel. Each model must expose coherent
// flags, share the kernel's seed validation and step accounting, obey the
// P-beats-R tie rule, and — where the capability flags say so — keep the
// realization cache and the reverse (RR-set) sampler in exact agreement with
// the forward kernel under one coupled realization seed. A new model added
// per the docs/architecture.md recipe passes this suite with a one-line
// instantiation change.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "diffusion/model_traits.h"
#include "diffusion/montecarlo.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "lcrb/ris.h"
#include "lcrb/sigma_engine.h"
#include "util/error.h"
#include "util/rng.h"

namespace lcrb {
namespace {

class ModelConformanceTest : public ::testing::TestWithParam<DiffusionModel> {
 protected:
  DiffusionModel model() const { return GetParam(); }

  MonteCarloConfig mc_config() const {
    MonteCarloConfig cfg;
    cfg.model = model();
    cfg.max_hops = 20;
    cfg.ic_edge_prob = 0.3;
    return cfg;
  }
};

TEST_P(ModelConformanceTest, TraitsIdentityMatchesEnum) {
  const std::string name = dispatch_model(
      model(), [](auto t) { return std::string(decltype(t)::kName); });
  EXPECT_EQ(name, to_string(model()));
  const DiffusionModel roundtrip =
      dispatch_model(model(), [](auto t) { return decltype(t)::kModel; });
  EXPECT_EQ(roundtrip, model());
  // The capability flags the subsystems branch on must agree with the
  // entry points that consume them.
  const bool cache = dispatch_model(
      model(), [](auto t) { return decltype(t)::kSupportsCache; });
  EXPECT_EQ(cache, SigmaEngine::supports(model()));
}

TEST_P(ModelConformanceTest, RejectsInvalidSeedSets) {
  Rng rng(1);
  const DiGraph g = erdos_renyi(40, 0.1, true, rng);
  const MonteCarloConfig cfg = mc_config();
  EXPECT_THROW(simulate(g, {{40}, {}}, 1, cfg), Error);    // out of range
  EXPECT_THROW(simulate(g, {{3, 3}, {}}, 1, cfg), Error);  // duplicate rumor
  EXPECT_THROW(simulate(g, {{3}, {5, 5}}, 1, cfg), Error);  // duplicate prot.
  EXPECT_THROW(simulate(g, {{3}, {3}}, 1, cfg), Error);    // overlap
}

TEST_P(ModelConformanceTest, ProtectorWinsTheContestedNode) {
  // r -> c <- p plus an isolated dummy d. Every model keys its randomness on
  // (realization seed, node/arc) only, so the protector-side randomness is
  // identical whether or not the rumor participates. Whenever the lone
  // protector reaches c in the rumor-free run, P-wins-ties requires c to end
  // protected when the rumor contests it at equal distance.
  const DiGraph g = make_graph(4, {{0, 2}, {1, 2}});
  const NodeId r = 0, p = 1, c = 2, d = 3;
  const MonteCarloConfig cfg = mc_config();
  std::size_t contested_ties = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const DiffusionResult alone = simulate(g, {{d}, {p}}, seed, cfg);
    if (alone.state[c] != NodeState::kProtected) continue;
    const DiffusionResult both = simulate(g, {{r}, {p}}, seed, cfg);
    EXPECT_EQ(both.state[c], NodeState::kProtected) << "seed " << seed;
    ++contested_ties;
  }
  // Every model reaches c from p in at least some realizations (always, for
  // the deterministic and single-pick models), so the check is never vacuous.
  EXPECT_GT(contested_ties, 0u);
}

TEST_P(ModelConformanceTest, StepAccountingIsConsistent) {
  Rng rng(7);
  const DiGraph g = erdos_renyi(120, 0.06, true, rng);
  const SeedSets seeds{{0, 1, 2}, {3, 4}};
  const MonteCarloConfig cfg = mc_config();
  for (std::uint64_t s = 0; s < 8; ++s) {
    const DiffusionResult res = simulate(g, seeds, s, cfg);
    EXPECT_LE(res.steps, cfg.max_hops);
    std::uint32_t max_step = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (res.state[v] == NodeState::kInactive) {
        EXPECT_EQ(res.activation_step[v], kUnreached);
        continue;
      }
      max_step = std::max(max_step, res.activation_step[v]);
    }
    EXPECT_EQ(max_step, res.steps) << "steps must be the activation watermark";
    EXPECT_NO_THROW(res.validate(g, seeds));
  }
}

TEST_P(ModelConformanceTest, ReverseSetMembersSaveTheRootForward) {
  const bool supports_reverse = dispatch_model(
      model(), [](auto t) { return decltype(t)::kSupportsReverse; });
  Rng rng(11);
  const DiGraph g = erdos_renyi(80, 0.07, true, rng);
  const std::vector<NodeId> rumors{0, 1};
  std::vector<NodeId> bridge_ends;
  for (NodeId v = 40; v < 60; ++v) bridge_ends.push_back(v);
  RisConfig cfg;
  cfg.model = model();
  cfg.max_hops = 20;
  cfg.ic_edge_prob = 0.3;
  if (!supports_reverse) {
    EXPECT_THROW(RrSampler(g, rumors, bridge_ends, cfg), Error);
    return;
  }
  RrSampler sampler(g, rumors, bridge_ends, cfg);
  // RR membership is sound for every reverse-capable model (exact for
  // DOAM/IC/WC, a lower bound for OPOAO): seeding any member as the lone
  // protector must save the root in the coupled forward realization.
  const MonteCarloConfig mc = mc_config();
  std::size_t checked = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    const RrSampler::Draw d = sampler.draw(0, i);
    const std::vector<NodeId> set =
        sampler.rr_set(d.root_idx, d.realization_seed);
    EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
    const NodeId root = bridge_ends[d.root_idx];
    for (NodeId v : set) {
      const DiffusionResult res =
          simulate(g, {rumors, {v}}, d.realization_seed, mc);
      EXPECT_NE(res.state[root], NodeState::kInfected)
          << "RR member " << v << " fails to save root " << root;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST_P(ModelConformanceTest, CacheReplayMatchesForwardSimulation) {
  Rng rng(13);
  const DiGraph g = erdos_renyi(80, 0.07, true, rng);
  const std::vector<NodeId> rumors{0, 1, 2};
  std::vector<NodeId> bridge_ends;
  for (NodeId v = 30; v < 55; ++v) bridge_ends.push_back(v);
  SigmaConfig cfg;
  cfg.model = model();
  cfg.samples = 6;
  cfg.max_hops = 20;
  cfg.ic_edge_prob = 0.3;
  std::vector<std::uint64_t> sample_seeds;
  for (std::uint64_t i = 0; i < cfg.samples; ++i) {
    sample_seeds.push_back(1000 + i * 77);
  }
  if (!SigmaEngine::supports(model())) {
    EXPECT_THROW(
        SigmaEngine(g, rumors, bridge_ends, sample_seeds, cfg, nullptr),
        Error);
    return;
  }
  const SigmaEngine engine(g, rumors, bridge_ends, sample_seeds, cfg, nullptr);
  const MonteCarloConfig mc = mc_config();
  const std::vector<std::vector<NodeId>> protector_sets = {
      {}, {10}, {10, 11, 12}, {33, 47}};
  for (std::size_t i = 0; i < cfg.samples; ++i) {
    const DiffusionResult base = simulate(g, {rumors, {}}, sample_seeds[i], mc);
    for (const std::vector<NodeId>& prot : protector_sets) {
      const SigmaEngine::Outcome o = engine.evaluate(i, prot);
      const DiffusionResult with =
          simulate(g, {rumors, prot}, sample_seeds[i], mc);
      std::uint32_t saved = 0, uninfected = 0;
      for (NodeId b : bridge_ends) {
        const bool base_inf = base.state[b] == NodeState::kInfected;
        const bool now_inf = with.state[b] == NodeState::kInfected;
        if (!now_inf) {
          ++uninfected;
          if (base_inf) ++saved;
        }
      }
      EXPECT_EQ(o.saved, saved) << "sample " << i;
      EXPECT_EQ(o.uninfected, uninfected) << "sample " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelConformanceTest,
    ::testing::Values(DiffusionModel::kOpoao, DiffusionModel::kDoam,
                      DiffusionModel::kIc, DiffusionModel::kLt,
                      DiffusionModel::kWc),
    [](const auto& param_info) { return to_string(param_info.param); });

}  // namespace
}  // namespace lcrb
