// Cross-model property sweep: invariants every diffusion model must satisfy,
// run over all models via TEST_P.
#include <gtest/gtest.h>

#include "diffusion/montecarlo.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace lcrb {
namespace {

class ModelPropertyTest
    : public ::testing::TestWithParam<std::tuple<DiffusionModel, std::uint64_t>> {
 protected:
  MonteCarloConfig config() const {
    MonteCarloConfig cfg;
    cfg.model = std::get<0>(GetParam());
    cfg.runs = 15;
    cfg.max_hops = 25;
    cfg.ic_edge_prob = 0.25;
    cfg.seed = std::get<1>(GetParam());
    return cfg;
  }
};

TEST_P(ModelPropertyTest, SeedsAlwaysKeepTheirColor) {
  Rng rng(std::get<1>(GetParam()));
  const DiGraph g = erdos_renyi(120, 0.05, true, rng);
  const SeedSets seeds{{0, 1, 2}, {3, 4}};
  const DiffusionResult r = simulate(g, seeds, 99, config());
  for (NodeId v : seeds.rumors) {
    EXPECT_EQ(r.state[v], NodeState::kInfected);
    EXPECT_EQ(r.activation_step[v], 0u);
  }
  for (NodeId v : seeds.protectors) {
    EXPECT_EQ(r.state[v], NodeState::kProtected);
    EXPECT_EQ(r.activation_step[v], 0u);
  }
}

TEST_P(ModelPropertyTest, ResultPassesStructuralValidation) {
  // DiffusionResult::validate re-derives the shared state-machine rules
  // (seed steps, series counts, same-colored-predecessor propagation) from
  // scratch; every model's output must satisfy them on every run.
  Rng rng(std::get<1>(GetParam()) + 5);
  const DiGraph g = erdos_renyi(120, 0.05, true, rng);
  const SeedSets seeds{{0, 1, 2}, {3, 4}};
  for (std::uint64_t run = 0; run < 5; ++run) {
    const DiffusionResult r = simulate(g, seeds, run, config());
    EXPECT_NO_THROW(r.validate(g, seeds)) << "run " << run;
  }
}

TEST_P(ModelPropertyTest, ActivationTimesRespectHopCap) {
  Rng rng(std::get<1>(GetParam()) + 1);
  const DiGraph g = erdos_renyi(120, 0.05, true, rng);
  const SeedSets seeds{{0, 1}, {2}};
  MonteCarloConfig cfg = config();
  cfg.max_hops = 5;
  const DiffusionResult r = simulate(g, seeds, 7, cfg);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (r.state[v] != NodeState::kInactive) {
      EXPECT_LE(r.activation_step[v], 5u);
    }
  }
}

TEST_P(ModelPropertyTest, NewlySeriesSumToFinalCounts) {
  Rng rng(std::get<1>(GetParam()) + 2);
  const DiGraph g = erdos_renyi(150, 0.04, true, rng);
  const SeedSets seeds{{0, 1, 2, 3}, {4, 5}};
  const DiffusionResult r = simulate(g, seeds, 11, config());
  std::size_t inf = 0, prot = 0;
  for (auto c : r.newly_infected) inf += c;
  for (auto c : r.newly_protected) prot += c;
  EXPECT_EQ(inf, r.infected_count());
  EXPECT_EQ(prot, r.protected_count());
}

TEST_P(ModelPropertyTest, MonteCarloSavedFractionBounded) {
  Rng rng(std::get<1>(GetParam()) + 3);
  const DiGraph g = erdos_renyi(100, 0.05, true, rng);
  const SeedSets seeds{{0, 1}, {2, 3}};
  std::vector<NodeId> targets;
  for (NodeId v = 40; v < 60; ++v) targets.push_back(v);
  const HopSeries s = monte_carlo_series(g, seeds, config(), targets);
  EXPECT_GE(s.saved_fraction_mean, 0.0);
  EXPECT_LE(s.saved_fraction_mean, 1.0);
  EXPECT_GE(s.final_infected_mean, static_cast<double>(seeds.rumors.size()));
  EXPECT_GE(s.final_protected_mean,
            static_cast<double>(seeds.protectors.size()));
}

TEST_P(ModelPropertyTest, MoreProtectorSeedsNeverHurtOnAverage) {
  // Holds per-sample for OPOAO (fixed pick tables), DOAM (distance rule),
  // and IC (live-edge coupling). It does NOT hold for competitive LT: an
  // extra protector's weight can push a node over its threshold where the
  // rumor weight then dominates, so LT is excluded (that asymmetry is the
  // "models without submodularity" direction the paper's conclusion names).
  if (std::get<0>(GetParam()) == DiffusionModel::kLt) GTEST_SKIP();
  Rng rng(std::get<1>(GetParam()) + 4);
  const DiGraph g = erdos_renyi(150, 0.05, true, rng);
  MonteCarloConfig cfg = config();
  cfg.runs = 40;
  const HopSeries small = monte_carlo_series(g, {{0, 1}, {2}}, cfg);
  const HopSeries large = monte_carlo_series(g, {{0, 1}, {2, 3, 4, 5}}, cfg);
  EXPECT_LE(large.final_infected_mean, small.final_infected_mean + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelPropertyTest,
    ::testing::Combine(::testing::Values(DiffusionModel::kOpoao,
                                         DiffusionModel::kDoam,
                                         DiffusionModel::kIc,
                                         DiffusionModel::kLt,
                                         DiffusionModel::kWc),
                       ::testing::Values(1, 2, 3)),
    [](const auto& param_info) {
      return to_string(std::get<0>(param_info.param)) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace lcrb
