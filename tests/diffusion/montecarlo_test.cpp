#include "diffusion/montecarlo.h"

#include <gtest/gtest.h>

#include "diffusion/doam.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace lcrb {
namespace {

TEST(MonteCarlo, SeriesShapesMatchConfig) {
  const DiGraph g = path_graph(10);
  MonteCarloConfig cfg;
  cfg.runs = 5;
  cfg.max_hops = 12;
  const HopSeries s = monte_carlo_series(g, {{0}, {}}, cfg);
  EXPECT_EQ(s.infected_mean.size(), 13u);
  EXPECT_EQ(s.protected_mean.size(), 13u);
  EXPECT_EQ(s.runs, 5u);
}

TEST(MonteCarlo, DeterministicPathHasZeroVariance) {
  const DiGraph g = path_graph(8);  // forced walk
  MonteCarloConfig cfg;
  cfg.runs = 10;
  cfg.max_hops = 10;
  const HopSeries s = monte_carlo_series(g, {{0}, {}}, cfg);
  for (double ci : s.infected_ci95) EXPECT_DOUBLE_EQ(ci, 0.0);
  EXPECT_DOUBLE_EQ(s.infected_mean[0], 1.0);
  EXPECT_DOUBLE_EQ(s.infected_mean[7], 8.0);
  EXPECT_DOUBLE_EQ(s.final_infected_mean, 8.0);
}

TEST(MonteCarlo, CumulativeSeriesMonotone) {
  Rng rng(1);
  const DiGraph g = erdos_renyi(200, 0.03, true, rng);
  MonteCarloConfig cfg;
  cfg.runs = 20;
  cfg.max_hops = 20;
  const HopSeries s = monte_carlo_series(g, {{0, 1, 2}, {3, 4}}, cfg);
  for (std::size_t h = 1; h < s.infected_mean.size(); ++h) {
    EXPECT_GE(s.infected_mean[h], s.infected_mean[h - 1]);
    EXPECT_GE(s.protected_mean[h], s.protected_mean[h - 1]);
  }
}

TEST(MonteCarlo, DoamCollapsesToSingleRun) {
  const DiGraph g = path_graph(6);
  MonteCarloConfig cfg;
  cfg.runs = 50;
  cfg.model = DiffusionModel::kDoam;
  const HopSeries s = monte_carlo_series(g, {{0}, {}}, cfg);
  EXPECT_EQ(s.runs, 1u);
  EXPECT_DOUBLE_EQ(s.final_infected_mean, 6.0);
}

TEST(MonteCarlo, DeterministicAcrossThreadCounts) {
  Rng rng(2);
  const DiGraph g = erdos_renyi(150, 0.04, true, rng);
  MonteCarloConfig cfg;
  cfg.runs = 16;
  cfg.seed = 33;
  cfg.max_hops = 15;
  const HopSeries serial = monte_carlo_series(g, {{0}, {1}}, cfg);
  ThreadPool pool(4);
  const HopSeries parallel =
      monte_carlo_series(g, {{0}, {1}}, cfg, {}, &pool);
  // Per-run statistics land in per-run slots and are merged serially in run
  // order, so the aggregates are bit-identical, not merely close.
  for (std::size_t h = 0; h < serial.infected_mean.size(); ++h) {
    EXPECT_EQ(serial.infected_mean[h], parallel.infected_mean[h]);
    EXPECT_EQ(serial.infected_ci95[h], parallel.infected_ci95[h]);
    EXPECT_EQ(serial.protected_mean[h], parallel.protected_mean[h]);
  }
  EXPECT_EQ(serial.final_infected_mean, parallel.final_infected_mean);
  EXPECT_EQ(serial.final_protected_mean, parallel.final_protected_mean);
  EXPECT_EQ(serial.saved_fraction_mean, parallel.saved_fraction_mean);
}

TEST(MonteCarlo, BitIdenticalAcrossPoolSizes) {
  // The Welford merge is order-sensitive in floating point; the fixed-order
  // reduction must erase any dependence on how runs are scheduled.
  Rng rng(9);
  const DiGraph g = erdos_renyi(120, 0.05, true, rng);
  MonteCarloConfig cfg;
  cfg.runs = 24;
  cfg.seed = 77;
  cfg.max_hops = 12;
  cfg.model = DiffusionModel::kIc;
  cfg.ic_edge_prob = 0.25;
  const NodeId targets[] = {60, 61, 62, 63};
  const HopSeries base = monte_carlo_series(g, {{0, 1}, {2}}, cfg, targets);
  for (std::size_t workers : {1u, 2u, 7u}) {
    ThreadPool pool(workers);
    const HopSeries s =
        monte_carlo_series(g, {{0, 1}, {2}}, cfg, targets, &pool);
    for (std::size_t h = 0; h < base.infected_mean.size(); ++h) {
      EXPECT_EQ(base.infected_mean[h], s.infected_mean[h]) << workers;
      EXPECT_EQ(base.infected_ci95[h], s.infected_ci95[h]) << workers;
    }
    EXPECT_EQ(base.saved_fraction_mean, s.saved_fraction_mean) << workers;
  }
}

TEST(MonteCarlo, SavedFractionAgainstTargets) {
  // Protector seed sits between rumor and targets: everything beyond it is
  // saved under OPOAO on a path.
  const DiGraph g = path_graph(10);
  MonteCarloConfig cfg;
  cfg.runs = 3;
  cfg.max_hops = 20;
  const NodeId targets[] = {6, 7, 8, 9};
  const HopSeries s = monte_carlo_series(g, {{0}, {5}}, cfg, targets);
  EXPECT_DOUBLE_EQ(s.saved_fraction_mean, 1.0);

  const NodeId early[] = {1, 2};
  const HopSeries s2 = monte_carlo_series(g, {{0}, {5}}, cfg, early);
  EXPECT_DOUBLE_EQ(s2.saved_fraction_mean, 0.0);
}

TEST(MonteCarlo, ExpectedSavedCountsTargets) {
  const DiGraph g = path_graph(10);
  MonteCarloConfig cfg;
  cfg.runs = 3;
  cfg.max_hops = 20;
  const NodeId targets[] = {6, 7, 8, 9};
  EXPECT_DOUBLE_EQ(expected_saved(g, {{0}, {5}}, targets, cfg), 4.0);
}

TEST(MonteCarlo, ZeroRunsRejected) {
  const DiGraph g = path_graph(3);
  MonteCarloConfig cfg;
  cfg.runs = 0;
  EXPECT_THROW(monte_carlo_series(g, {{0}, {}}, cfg), Error);
}

TEST(MonteCarlo, ModelNames) {
  EXPECT_EQ(to_string(DiffusionModel::kOpoao), "OPOAO");
  EXPECT_EQ(to_string(DiffusionModel::kDoam), "DOAM");
  EXPECT_EQ(to_string(DiffusionModel::kIc), "IC");
  EXPECT_EQ(to_string(DiffusionModel::kLt), "LT");
}

TEST(MonteCarlo, IcModelDispatch) {
  Rng rng(5);
  const DiGraph g = erdos_renyi(100, 0.05, true, rng);
  MonteCarloConfig cfg;
  cfg.runs = 10;
  cfg.model = DiffusionModel::kIc;
  cfg.ic_edge_prob = 0.3;
  const HopSeries s = monte_carlo_series(g, {{0, 1}, {}}, cfg);
  EXPECT_GE(s.final_infected_mean, 2.0);  // at least the seeds
}

TEST(MonteCarlo, LtModelDispatch) {
  Rng rng(5);
  const DiGraph g = erdos_renyi(100, 0.05, true, rng);
  MonteCarloConfig cfg;
  cfg.runs = 10;
  cfg.model = DiffusionModel::kLt;
  const HopSeries s = monte_carlo_series(g, {{0, 1}, {}}, cfg);
  EXPECT_GE(s.final_infected_mean, 2.0);
}

}  // namespace
}  // namespace lcrb
