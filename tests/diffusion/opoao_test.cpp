#include "diffusion/opoao.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace lcrb {
namespace {

TEST(Opoao, DeterministicInSeed) {
  Rng rng(1);
  const DiGraph g = erdos_renyi(100, 0.05, true, rng);
  const SeedSets seeds{{0, 1}, {2, 3}};
  const DiffusionResult a = simulate_opoao(g, seeds, 42);
  const DiffusionResult b = simulate_opoao(g, seeds, 42);
  EXPECT_EQ(a.state, b.state);
  EXPECT_EQ(a.activation_step, b.activation_step);
  const DiffusionResult c = simulate_opoao(g, seeds, 43);
  // A different sample seed should (almost surely) differ somewhere.
  EXPECT_NE(a.activation_step, c.activation_step);
}

TEST(Opoao, PathIsTraversedOneHopPerStep) {
  // Out-degree 1 everywhere: the walk is forced, one new node per step.
  const DiGraph g = path_graph(6);
  const DiffusionResult r = simulate_opoao(g, {{0}, {}}, 7);
  for (NodeId v = 0; v < 6; ++v) {
    EXPECT_EQ(r.state[v], NodeState::kInfected);
    EXPECT_EQ(r.activation_step[v], v);
  }
}

TEST(Opoao, TerminatesWhenNoInactiveNeighborsRemain) {
  // Star: hub infects one leaf per step; must stop after all leaves done,
  // well before any large step cap.
  const DiGraph g = star_graph(5);
  OpoaoConfig cfg;
  cfg.max_steps = 1000000;  // termination must come from the stuck check
  const DiffusionResult r = simulate_opoao(g, {{0}, {}}, 3, cfg);
  EXPECT_EQ(r.infected_count(), 5u);
  EXPECT_LE(r.steps, 200u);  // coupon collector on 4 leaves
}

TEST(Opoao, ProtectorPriorityOnSharedTarget) {
  // 0 -> 2 and 1 -> 2, out-degree 1 each: both pick 2 at step 1; P wins.
  const DiGraph g = make_graph(3, {{0, 2}, {1, 2}});
  const DiffusionResult r = simulate_opoao(g, {{0}, {1}}, 11);
  EXPECT_EQ(r.state[2], NodeState::kProtected);
}

TEST(Opoao, StatesAreProgressive) {
  Rng rng(5);
  const DiGraph g = erdos_renyi(60, 0.08, true, rng);
  const SeedSets seeds{{0}, {1}};
  const DiffusionResult r = simulate_opoao(g, seeds, 9);
  // Activation steps respect the newly_* series: counts match.
  std::size_t inf = 0, prot = 0;
  for (auto c : r.newly_infected) inf += c;
  for (auto c : r.newly_protected) prot += c;
  EXPECT_EQ(inf, r.infected_count());
  EXPECT_EQ(prot, r.protected_count());
  // Every activated node has a finite step; inactive nodes have none.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (r.state[v] == NodeState::kInactive) {
      EXPECT_EQ(r.activation_step[v], kUnreached);
    } else {
      EXPECT_NE(r.activation_step[v], kUnreached);
    }
  }
}

TEST(Opoao, ActivationRequiresInEdgeFromEarlierActiveNode) {
  Rng rng(6);
  const DiGraph g = erdos_renyi(80, 0.05, true, rng);
  const SeedSets seeds{{0, 1, 2}, {3, 4}};
  const DiffusionResult r = simulate_opoao(g, seeds, 13);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (r.state[v] == NodeState::kInactive || r.activation_step[v] == 0) {
      continue;
    }
    // Some in-neighbor with the same color activated strictly earlier.
    bool found = false;
    for (NodeId u : g.in_neighbors(v)) {
      if (r.state[u] == r.state[v] &&
          r.activation_step[u] < r.activation_step[v]) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "node " << v << " has no plausible activator";
  }
}

TEST(Opoao, MaxStepsRespected) {
  const DiGraph g = path_graph(100);
  OpoaoConfig cfg;
  cfg.max_steps = 10;
  const DiffusionResult r = simulate_opoao(g, {{0}, {}}, 3, cfg);
  EXPECT_EQ(r.infected_count(), 11u);
  EXPECT_LE(r.steps, 10u);
}

TEST(Opoao, SpreadIsSlowerThanDoamBroadcast) {
  // OPOAO activates at most one node per active node per step; on a star the
  // hub needs ~n log n steps versus DOAM's single step.
  const DiGraph g = star_graph(30);
  const DiffusionResult r = simulate_opoao(g, {{0}, {}}, 17);
  EXPECT_EQ(r.infected_count(), 30u);
  EXPECT_GT(r.steps, 20u);
}

TEST(Opoao, CommonRandomNumbersCoupleRuns) {
  // With per-node streams, adding a protector far from the rumor must not
  // change the rumor's own pick sequence: infected set without protector is
  // a superset of infected set with an isolated protector seed.
  GraphBuilder b;
  b.reserve_nodes(12);
  for (NodeId v = 0; v + 1 < 10; ++v) b.add_edge(v, v + 1);
  // Nodes 10, 11 form an isolated protector island.
  b.add_edge(10, 11);
  const DiGraph g = b.finalize();

  const DiffusionResult without = simulate_opoao(g, {{0}, {}}, 23);
  const DiffusionResult with = simulate_opoao(g, {{0}, {10}}, 23);
  for (NodeId v = 0; v < 10; ++v) {
    EXPECT_EQ(without.state[v], with.state[v]) << "node " << v;
    EXPECT_EQ(without.activation_step[v], with.activation_step[v]);
  }
  EXPECT_EQ(with.state[11], NodeState::kProtected);
}

TEST(Opoao, SeedsValidated) {
  const DiGraph g = path_graph(4);
  EXPECT_THROW(simulate_opoao(g, {{0}, {0}}, 1), Error);
  EXPECT_THROW(simulate_opoao(g, {{9}, {}}, 1), Error);
}

// Property: when the simulation stops before the hop cap, it stopped for the
// right reason — no active node has an inactive out-neighbor left, so no
// future step could ever activate anything.
class OpoaoTerminationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OpoaoTerminationTest, StopsExactlyWhenStuck) {
  Rng rng(GetParam());
  const DiGraph g = erdos_renyi(70, 0.05, true, rng);
  OpoaoConfig cfg;
  cfg.max_steps = 1000000;  // force the stuck check to be the stopper
  const DiffusionResult r = simulate_opoao(g, {{0, 1}, {2}}, GetParam(), cfg);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (r.state[u] == NodeState::kInactive) continue;
    for (NodeId v : g.out_neighbors(u)) {
      EXPECT_NE(r.state[v], NodeState::kInactive)
          << "active " << u << " still has inactive neighbor " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpoaoTerminationTest,
                         ::testing::Values(3, 4, 5, 6, 7));

// Property: repeat selection happens — an active node picks every step, so
// with a 2-target fan the second target is eventually reached.
class OpoaoEventualTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OpoaoEventualTest, AllReachableNodesEventuallyInfected) {
  // Binary tree of depth 3 (out-degree 2): all 15 nodes reachable from root.
  GraphBuilder b;
  for (NodeId v = 0; v < 7; ++v) {
    b.add_edge(v, 2 * v + 1);
    b.add_edge(v, 2 * v + 2);
  }
  const DiGraph g = b.finalize();
  const DiffusionResult r = simulate_opoao(g, {{0}, {}}, GetParam());
  EXPECT_EQ(r.infected_count(), 15u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpoaoEventualTest,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 12345));

}  // namespace
}  // namespace lcrb
