// Tests of the OPOAO pick trace — the executable form of the paper's
// timestamp-assignment construction (§V-A, Fig. 1).
#include <gtest/gtest.h>

#include <map>

#include "diffusion/opoao.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace lcrb {
namespace {

TEST(OpoaoTrace, EveryActiveNodePicksOncePerStep) {
  Rng grng(1);
  const DiGraph g = erdos_renyi(60, 0.08, true, grng);
  OpoaoTrace trace;
  OpoaoConfig cfg;
  cfg.max_steps = 15;
  const DiffusionResult r = simulate_opoao(g, {{0, 1}, {2}}, 5, cfg, &trace);

  // Group picks by (step, from): exactly one pick per active node per step.
  std::map<std::pair<std::uint32_t, NodeId>, int> count;
  for (const auto& p : trace.picks) ++count[{p.step, p.from}];
  for (const auto& [key, c] : count) {
    EXPECT_EQ(c, 1) << "node " << key.second << " at step " << key.first;
  }

  // A node with out-edges picks at every step from activation+1 to the end.
  for (const auto& p : trace.picks) {
    EXPECT_LT(r.activation_step[p.from], p.step);
  }
}

TEST(OpoaoTrace, PicksAreAlwaysOutNeighbors) {
  Rng grng(2);
  const DiGraph g = erdos_renyi(50, 0.1, true, grng);
  OpoaoTrace trace;
  OpoaoConfig cfg;
  cfg.max_steps = 10;
  simulate_opoao(g, {{0}, {1}}, 7, cfg, &trace);
  for (const auto& p : trace.picks) {
    const auto nbrs = g.out_neighbors(p.from);
    EXPECT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(), p.to));
  }
}

TEST(OpoaoTrace, ActivatedPicksMatchActivationSteps) {
  Rng grng(3);
  const DiGraph g = erdos_renyi(80, 0.06, true, grng);
  OpoaoTrace trace;
  OpoaoConfig cfg;
  cfg.max_steps = 20;
  const DiffusionResult r = simulate_opoao(g, {{0, 1}, {2, 3}}, 9, cfg, &trace);

  std::map<NodeId, const OpoaoPick*> first_activation;
  for (const auto& p : trace.picks) {
    if (p.activated) {
      // Only one pick may ever activate a given node.
      EXPECT_EQ(first_activation.count(p.to), 0u);
      first_activation[p.to] = &p;
    }
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (r.state[v] == NodeState::kInactive || r.activation_step[v] == 0) {
      continue;  // seeds and untouched nodes have no activating pick
    }
    ASSERT_EQ(first_activation.count(v), 1u) << "node " << v;
    const OpoaoPick* p = first_activation[v];
    EXPECT_EQ(p->step, r.activation_step[v]);
    EXPECT_EQ(p->cascade, r.state[v]);
  }
}

TEST(OpoaoTrace, ProtectorPicksPrecedeRumorPicksWithinStep) {
  Rng grng(4);
  const DiGraph g = erdos_renyi(50, 0.1, true, grng);
  OpoaoTrace trace;
  OpoaoConfig cfg;
  cfg.max_steps = 10;
  simulate_opoao(g, {{0, 1}, {2, 3}}, 11, cfg, &trace);
  std::uint32_t current_step = 0;
  bool seen_rumor_this_step = false;
  for (const auto& p : trace.picks) {
    if (p.step != current_step) {
      current_step = p.step;
      seen_rumor_this_step = false;
    }
    if (p.cascade == NodeState::kInfected) seen_rumor_this_step = true;
    if (p.cascade == NodeState::kProtected) {
      EXPECT_FALSE(seen_rumor_this_step)
          << "protector pick after rumor pick at step " << p.step;
    }
  }
}

TEST(OpoaoTrace, PaperFigureOneChains) {
  // The Fig. 1 structure with forced picks: x -> u -> w and y -> v -> z
  // (out-degree 1 everywhere makes every pick deterministic).
  // Nodes: x=0, u=1, w=2, y=3, v=4, z=5.
  const DiGraph g = make_graph(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  OpoaoTrace trace;
  const DiffusionResult r =
      simulate_opoao(g, {{0, 3}, {}}, 13, {}, &trace);

  // Timestamp 1_x on (x,u): x picks u at step 1 and keeps re-picking it.
  EXPECT_EQ(trace.first_pick_step(0, 1, NodeState::kInfected), 1u);
  // u activates at 1, picks w at step 2 — the paper's "2_x" simplified stamp.
  EXPECT_EQ(trace.first_pick_step(1, 2, NodeState::kInfected), 2u);
  EXPECT_EQ(trace.first_pick_step(3, 4, NodeState::kInfected), 1u);
  EXPECT_EQ(trace.first_pick_step(4, 5, NodeState::kInfected), 2u);
  // Repeat selection really happens: x picks (x,u) again after step 1.
  int x_picks = 0;
  for (const auto& p : trace.picks) x_picks += (p.from == 0);
  EXPECT_GT(x_picks, 1);
  EXPECT_EQ(r.infected_count(), 6u);
  // Never-picked edge/color combos report kUnreached.
  EXPECT_EQ(trace.first_pick_step(0, 1, NodeState::kProtected), kUnreached);
}

TEST(OpoaoTrace, FirstPickStepMatchesLinearScan) {
  // The indexed lookup must agree with a brute-force scan over the pick log
  // for every (from, to, color) triple that occurs, plus misses.
  Rng grng(6);
  const DiGraph g = erdos_renyi(70, 0.07, true, grng);
  OpoaoTrace trace;
  OpoaoConfig cfg;
  cfg.max_steps = 18;
  simulate_opoao(g, {{0, 1}, {2, 3}}, 21, cfg, &trace);
  ASSERT_FALSE(trace.picks.empty());

  auto brute = [&](NodeId u, NodeId v, NodeState color) {
    std::uint32_t best = kUnreached;
    for (const auto& p : trace.picks) {
      if (p.from == u && p.to == v && p.cascade == color) {
        best = std::min(best, p.step);
      }
    }
    return best;
  };
  for (const auto& p : trace.picks) {
    for (NodeState c : {NodeState::kProtected, NodeState::kInfected}) {
      EXPECT_EQ(trace.first_pick_step(p.from, p.to, c), brute(p.from, p.to, c));
    }
  }
  EXPECT_EQ(trace.first_pick_step(68, 69, NodeState::kInfected),
            brute(68, 69, NodeState::kInfected));
  EXPECT_EQ(trace.first_pick_step(0, 0, NodeState::kInactive), kUnreached);
}

TEST(OpoaoTrace, FirstPickIndexRebuildsAfterAppend) {
  // Querying builds the index; appending more picks (e.g. a second traced
  // simulation into the same log) must invalidate and rebuild it.
  const DiGraph g = make_graph(3, {{0, 1}, {1, 2}});
  OpoaoTrace trace;
  simulate_opoao(g, {{0}, {}}, 3, {}, &trace);
  EXPECT_EQ(trace.first_pick_step(0, 1, NodeState::kInfected), 1u);
  EXPECT_EQ(trace.first_pick_step(2, 0, NodeState::kProtected), kUnreached);

  trace.picks.push_back({1, 2, 0, NodeState::kProtected, false});
  EXPECT_EQ(trace.first_pick_step(2, 0, NodeState::kProtected), 1u);
}

TEST(OpoaoTrace, FirstPickIndexExtendsIncrementallyAcrossAppends) {
  // Regression for the append-after-query loop: the index is extended by
  // min-merging only the new suffix, and that merge must (a) register new
  // edges, (b) tighten an already-indexed edge when a smaller step arrives,
  // and (c) leave untouched entries alone — across several rounds.
  const DiGraph g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  OpoaoTrace trace;
  trace.picks.push_back({5, 0, 1, NodeState::kInfected, true});
  EXPECT_EQ(trace.first_pick_step(0, 1, NodeState::kInfected), 5u);

  // New edge and a tighter step for the existing one, in one append round.
  trace.picks.push_back({7, 1, 2, NodeState::kProtected, true});
  trace.picks.push_back({2, 0, 1, NodeState::kInfected, false});
  EXPECT_EQ(trace.first_pick_step(0, 1, NodeState::kInfected), 2u);
  EXPECT_EQ(trace.first_pick_step(1, 2, NodeState::kProtected), 7u);

  // Same edge, other cascade color: slots stay independent.
  trace.picks.push_back({4, 1, 2, NodeState::kInfected, false});
  EXPECT_EQ(trace.first_pick_step(1, 2, NodeState::kInfected), 4u);
  EXPECT_EQ(trace.first_pick_step(1, 2, NodeState::kProtected), 7u);
  EXPECT_EQ(trace.first_pick_step(0, 1, NodeState::kInfected), 2u);

  // A shrink is not an append: the lazy index must drop and rebuild.
  trace.picks.resize(1);
  EXPECT_EQ(trace.first_pick_step(0, 1, NodeState::kInfected), 5u);
  EXPECT_EQ(trace.first_pick_step(1, 2, NodeState::kProtected), kUnreached);
}

TEST(OpoaoTrace, NullTraceIsDefaultAndCheap) {
  const DiGraph g = path_graph(5);
  const DiffusionResult a = simulate_opoao(g, {{0}, {}}, 3);
  OpoaoTrace trace;
  const DiffusionResult b = simulate_opoao(g, {{0}, {}}, 3, {}, &trace);
  EXPECT_EQ(a.state, b.state);  // tracing must not perturb the simulation
  EXPECT_FALSE(trace.picks.empty());
}

}  // namespace
}  // namespace lcrb
