#include "graph/builder.h"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.h"

namespace lcrb {
namespace {

TEST(GraphBuilder, DedupsParallelEdgesByDefault) {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  const DiGraph g = b.finalize();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilder, KeepsParallelEdgesWhenAsked) {
  GraphBuilder b({.dedup = false, .keep_self_loops = false});
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  const DiGraph g = b.finalize();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphBuilder, DropsSelfLoopsByDefault) {
  GraphBuilder b;
  b.add_edge(2, 2);
  b.add_edge(0, 1);
  const DiGraph g = b.finalize();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.has_edge(2, 2));
}

TEST(GraphBuilder, KeepsSelfLoopsWhenAsked) {
  GraphBuilder b({.dedup = true, .keep_self_loops = true});
  b.add_edge(2, 2);
  const DiGraph g = b.finalize();
  EXPECT_TRUE(g.has_edge(2, 2));
}

TEST(GraphBuilder, UndirectedAddsBothArcs) {
  GraphBuilder b;
  b.add_undirected_edge(0, 1);
  const DiGraph g = b.finalize();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
}

TEST(GraphBuilder, NodeCountGrowsWithIds) {
  GraphBuilder b;
  b.add_edge(0, 42);
  const DiGraph g = b.finalize();
  EXPECT_EQ(g.num_nodes(), 43u);
}

TEST(GraphBuilder, ReserveNodesCreatesIsolated) {
  GraphBuilder b;
  b.reserve_nodes(5);
  const DiGraph g = b.finalize();
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphBuilder, ReusableAfterFinalize) {
  GraphBuilder b;
  b.add_edge(0, 1);
  const DiGraph g1 = b.finalize();
  EXPECT_EQ(g1.num_edges(), 1u);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const DiGraph g2 = b.finalize();
  EXPECT_EQ(g2.num_edges(), 2u);
  EXPECT_EQ(g2.num_nodes(), 3u);
}

TEST(GraphBuilder, InvalidNodeIdThrows) {
  GraphBuilder b;
  EXPECT_THROW(b.add_edge(kInvalidNode, 0), Error);
  EXPECT_THROW(b.add_edge(0, kInvalidNode), Error);
}

// Property: for random graphs, the in-adjacency is exactly the transpose of
// the out-adjacency.
class BuilderPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BuilderPropertyTest, InAdjacencyIsTransposeOfOut) {
  Rng rng(GetParam());
  GraphBuilder b;
  const NodeId n = 50;
  b.reserve_nodes(n);
  std::map<std::pair<NodeId, NodeId>, bool> truth;
  for (int e = 0; e < 400; ++e) {
    const auto u = static_cast<NodeId>(rng.next_below(n));
    const auto v = static_cast<NodeId>(rng.next_below(n));
    if (u == v) continue;
    b.add_edge(u, v);
    truth[{u, v}] = true;
  }
  const DiGraph g = b.finalize();

  EXPECT_EQ(g.num_edges(), truth.size());
  // Every stored out-arc appears in truth and as an in-arc.
  EdgeId out_arcs = 0, in_arcs = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.out_neighbors(u)) {
      EXPECT_TRUE(truth.count({u, v})) << u << "->" << v;
      const auto in = g.in_neighbors(v);
      EXPECT_TRUE(std::binary_search(in.begin(), in.end(), u));
      ++out_arcs;
    }
    in_arcs += g.in_degree(u);
  }
  EXPECT_EQ(out_arcs, g.num_edges());
  EXPECT_EQ(in_arcs, g.num_edges());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuilderPropertyTest,
                         ::testing::Values(1, 2, 3, 17, 99, 12345));

}  // namespace
}  // namespace lcrb
