#include "graph/centrality.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace lcrb {
namespace {

TEST(Betweenness, PathMiddleHighest) {
  // Directed path 0->1->2->3->4: interior nodes carry all the shortest
  // paths; node 2 carries the most (paths 0-3, 0-4, 1-4, 1-3... count).
  const DiGraph g = path_graph(5);
  const auto bc = betweenness_centrality(g);
  // Endpoint carries nothing.
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[4], 0.0);
  // Exact values: node v lies on (v)(4-v) shortest source-target pairs.
  EXPECT_DOUBLE_EQ(bc[1], 3.0);
  EXPECT_DOUBLE_EQ(bc[2], 4.0);
  EXPECT_DOUBLE_EQ(bc[3], 3.0);
}

TEST(Betweenness, StarHubCarriesAllPairs) {
  // Undirected star: hub 0 lies between every leaf pair.
  const DiGraph g = star_graph(6, /*undirected=*/true);
  const auto bc = betweenness_centrality(g);
  // 5 leaves -> 5*4 = 20 ordered pairs routed through the hub.
  EXPECT_DOUBLE_EQ(bc[0], 20.0);
  for (NodeId v = 1; v < 6; ++v) EXPECT_DOUBLE_EQ(bc[v], 0.0);
}

TEST(Betweenness, EvenPathSplitsAcrossTwoShortestPaths) {
  // Diamond: 0->1->3, 0->2->3. Two equal shortest paths; each middle node
  // gets half the 0->3 dependency.
  const DiGraph g = make_graph(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  const auto bc = betweenness_centrality(g);
  EXPECT_DOUBLE_EQ(bc[1], 0.5);
  EXPECT_DOUBLE_EQ(bc[2], 0.5);
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[3], 0.0);
}

TEST(Betweenness, DisconnectedGraphIsFine) {
  const DiGraph g = make_graph(4, {{0, 1}, {2, 3}});
  const auto bc = betweenness_centrality(g);
  for (double v : bc) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Betweenness, MatchesBruteForceOnRandomGraph) {
  Rng rng(5);
  const DiGraph g = erdos_renyi(25, 0.15, true, rng);
  const auto bc = betweenness_centrality(g);

  // Brute force: enumerate all shortest paths via BFS parent DAG counting.
  const NodeId n = g.num_nodes();
  std::vector<double> ref(n, 0.0);
  for (NodeId s = 0; s < n; ++s) {
    // BFS distances + path counts.
    std::vector<std::uint32_t> dist(n, kUnreached);
    std::vector<double> cnt(n, 0.0);
    dist[s] = 0;
    cnt[s] = 1;
    std::vector<NodeId> frontier{s}, order{s};
    while (!frontier.empty()) {
      std::vector<NodeId> next;
      for (NodeId u : frontier) {
        for (NodeId v : g.out_neighbors(u)) {
          if (dist[v] == kUnreached) {
            dist[v] = dist[u] + 1;
            next.push_back(v);
            order.push_back(v);
          }
        }
      }
      frontier = next;
    }
    for (NodeId u = 0; u < n; ++u) {
      if (dist[u] == kUnreached) continue;
      // re-propagate counts level by level
    }
    // Count shortest paths with a second pass in BFS order.
    for (NodeId u : order) {
      for (NodeId v : g.out_neighbors(u)) {
        if (dist[v] == dist[u] + 1) cnt[v] += cnt[u];
      }
    }
    // Pair dependencies: for each target t and interior w on some shortest
    // s-t path: contribution cnt_sw * cnt_wt / cnt_st. Compute cnt_wt by a
    // per-target backward count — O(n^2) per source is fine at n=25.
    for (NodeId t = 0; t < n; ++t) {
      if (t == s || dist[t] == kUnreached || cnt[t] == 0) continue;
      // count paths from w to t constrained to the BFS DAG of s
      std::vector<double> to_t(n, 0.0);
      to_t[t] = 1.0;
      for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const NodeId u = *it;
        for (NodeId v : g.out_neighbors(u)) {
          if (dist[v] == dist[u] + 1) to_t[u] += to_t[v];
        }
      }
      for (NodeId w = 0; w < n; ++w) {
        if (w == s || w == t || dist[w] == kUnreached) continue;
        ref[w] += cnt[w] * to_t[w] / cnt[t];
      }
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_NEAR(bc[v], ref[v], 1e-9) << "node " << v;
  }
}

TEST(DegreeDiscount, PlainTopDegreeWhenIsolatedPicks) {
  // Star: hub has the top degree; after picking it the leaves' discounted
  // degrees drop but they had degree 0 anyway (directed star).
  const DiGraph g = star_graph(8);
  const auto picks = degree_discount(g, 3, 0.05);
  EXPECT_EQ(picks[0], 0u);
  EXPECT_EQ(picks.size(), 3u);
}

TEST(DegreeDiscount, DiscountAppliesToNeighborsOfSelected) {
  // Chain of hubs: 0 -> 1 -> {many}. Node 1 has the top degree; once 1 is
  // selected nothing changes for 0 (0 is not 1's out-neighbor), but when 0
  // is a neighbor of a selected node its discounted degree must drop.
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  for (NodeId t = 10; t < 16; ++t) b.add_edge(1, t);  // degree 6
  for (NodeId t = 20; t < 23; ++t) b.add_edge(4, t);  // degree 3
  const DiGraph g = b.finalize();
  const auto picks = degree_discount(g, 3, 0.5);
  ASSERT_EQ(picks.size(), 3u);
  EXPECT_EQ(picks[0], 1u);  // top degree 6
  // After picking 1: dd[0] unchanged? 0 is an in-neighbor of 1, not an
  // out-neighbor, so no discount — 0 keeps dd=3 and ties with 4; lower id
  // wins the scan.
  EXPECT_EQ(picks[1], 0u);
  // After picking 0: its out-neighbors (1 selected; 2, 3 degree 0) get
  // discounted; 4 remains at 3 and is next.
  EXPECT_EQ(picks[2], 4u);
}

TEST(DegreeDiscount, DiscountDemotesSaturatedNeighbor) {
  // v's only value is its out-edge into already-influenced territory:
  // u -> v and v -> u's other target w. Selecting u discounts v below a
  // fresh node of equal raw degree.
  GraphBuilder b;
  b.add_edge(0, 1);   // u = 0 picks first (degree 2)
  b.add_edge(0, 2);
  b.add_edge(1, 3);   // v = 1, raw degree 1
  b.add_edge(4, 5);   // fresh node 4, raw degree 1
  const DiGraph g = b.finalize();
  const auto picks = degree_discount(g, 2, 0.5);
  ASSERT_EQ(picks.size(), 2u);
  EXPECT_EQ(picks[0], 0u);
  // dd[1] = 1 - 2*1 - (1-1)*1*0.5 = -1 < dd[4] = 1.
  EXPECT_EQ(picks[1], 4u);
}

TEST(DegreeDiscount, ExcludedNodesNeverPicked) {
  const DiGraph g = complete_graph(6);
  const NodeId excluded[] = {0, 1};
  const auto picks = degree_discount(g, 6, 0.1, excluded);
  EXPECT_EQ(picks.size(), 4u);
  for (NodeId v : picks) EXPECT_GT(v, 1u);
}

TEST(DegreeDiscount, KLargerThanGraphClamps) {
  const DiGraph g = path_graph(3);
  const auto picks = degree_discount(g, 100, 0.1);
  EXPECT_EQ(picks.size(), 3u);
}

TEST(DegreeDiscount, InvalidProbabilityThrows) {
  const DiGraph g = path_graph(3);
  EXPECT_THROW(degree_discount(g, 1, -0.1), Error);
  EXPECT_THROW(degree_discount(g, 1, 1.1), Error);
}

}  // namespace
}  // namespace lcrb
