// EfGraph backend: row equality against DiGraph, save/load round-trips in
// mmap and read modes, structural rejection of forged files, compression
// ratio, and the shared O(log d) has_edge probe bound (satellite: the
// row-range binary search both backends route through).
#include "graph/ef_graph.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "graph/backend.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph_view.h"
#include "util/rng.h"

namespace lcrb {
namespace {

static_assert(GraphView<DiGraph>, "DiGraph must satisfy GraphView");
static_assert(GraphView<EfGraph>, "EfGraph must satisfy GraphView");

std::vector<NodeId> row_vec(ef::Row row) {
  std::vector<NodeId> out;
  for (NodeId v : row) out.push_back(v);
  return out;
}

std::vector<NodeId> row_vec(std::span<const NodeId> row) {
  return {row.begin(), row.end()};
}

void expect_same_graph(const DiGraph& csr, const EfGraph& ef) {
  ASSERT_EQ(csr.num_nodes(), ef.num_nodes());
  ASSERT_EQ(csr.num_edges(), ef.num_edges());
  for (NodeId u = 0; u < csr.num_nodes(); ++u) {
    EXPECT_EQ(csr.out_degree(u), ef.out_degree(u)) << "node " << u;
    EXPECT_EQ(csr.in_degree(u), ef.in_degree(u)) << "node " << u;
    ASSERT_EQ(row_vec(csr.out_neighbors(u)), row_vec(ef.out_neighbors(u)))
        << "out row " << u;
    ASSERT_EQ(row_vec(csr.in_neighbors(u)), row_vec(ef.in_neighbors(u)))
        << "in row " << u;
    // Random access must agree with iteration.
    const auto row = ef.out_neighbors(u);
    const auto expect = row_vec(csr.out_neighbors(u));
    for (std::size_t i = 0; i < row.size(); ++i) {
      ASSERT_EQ(row[i], expect[i]) << "out row " << u << " index " << i;
    }
  }
}

class TempFile {
 public:
  TempFile() {
    path_ = (std::filesystem::temp_directory_path() /
             ("lcrb_ef_test_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter_++)))
                .string();
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

TEST(EfGraph, EmptyGraph) {
  EfGraph g;
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.memory_bytes(), 0u);
  g.validate();
}

TEST(EfGraph, MatchesCsrOnDeterministicGraphs) {
  for (const DiGraph& csr :
       {path_graph(17), cycle_graph(9, /*undirected=*/true), star_graph(33),
        complete_graph(12), grid_graph(7, 5),
        make_graph(6, {{0, 5}, {0, 1}, {3, 2}, {5, 0}, {5, 4}, {2, 2}})}) {
    const EfGraph ef = EfGraph::from_csr(csr);
    ef.validate(EfVerify::kFull);
    expect_same_graph(csr, ef);
  }
}

TEST(EfGraph, MatchesCsrOnRandomGraphs) {
  Rng rng(20260809);
  for (int trial = 0; trial < 8; ++trial) {
    const DiGraph csr = erdos_renyi(200, 0.03, /*directed=*/true, rng);
    const EfGraph ef = EfGraph::from_csr(csr);
    ef.validate(EfVerify::kFull);
    expect_same_graph(csr, ef);
  }
}

TEST(EfGraph, HasEdgeAgreesWithCsr) {
  Rng rng(7);
  const DiGraph csr = erdos_renyi(120, 0.05, /*directed=*/true, rng);
  const EfGraph ef = EfGraph::from_csr(csr);
  for (NodeId u = 0; u < csr.num_nodes(); u += 3) {
    for (NodeId v = 0; v < csr.num_nodes(); v += 2) {
      EXPECT_EQ(csr.has_edge(u, v), ef.has_edge(u, v))
          << "(" << u << ", " << v << ")";
    }
  }
  EXPECT_THROW((void)ef.has_edge(0, 999), Error);
  EXPECT_THROW(ef.out_neighbors(999), Error);
}

// Satellite: both backends answer membership through the shared row-range
// binary search, so the probe count is logarithmic in the row length — not
// linear — on CSR spans and EF rows alike.
TEST(EfGraph, HasEdgeIsLogarithmicOnBothBackends) {
  const NodeId n = 4096;
  const DiGraph csr = star_graph(n);  // hub row has n-1 targets
  const EfGraph ef = EfGraph::from_csr(csr);

  std::size_t csr_probes = 0, ef_probes = 0;
  EXPECT_TRUE(graph_algo::row_binary_search(csr.out_neighbors(0), n - 1,
                                            &csr_probes));
  EXPECT_TRUE(
      graph_algo::row_binary_search(ef.out_neighbors(0), n - 1, &ef_probes));
  // ceil(log2(4095)) = 12; allow slack for the implementation's +/-1 probes.
  EXPECT_LE(csr_probes, 14u);
  EXPECT_LE(ef_probes, 14u);
  EXPECT_GE(csr_probes, 8u);  // and it really is a search, not a lookup table

  std::size_t miss_probes = 0;
  EXPECT_FALSE(
      graph_algo::row_binary_search(ef.out_neighbors(0), 0, &miss_probes));
  EXPECT_LE(miss_probes, 14u);
}

TEST(EfGraph, CompressesCommunityGraphBelowSixBytesPerArc) {
  CommunityGraphConfig cfg;
  cfg.community_sizes.assign(8, 500);
  cfg.avg_intra_degree = 10.0;
  cfg.avg_inter_degree = 2.0;
  cfg.seed = 42;
  const DiGraph csr = make_community_graph(cfg).graph;
  const EfGraph ef = EfGraph::from_csr(csr);
  ASSERT_GT(ef.num_edges(), 10000u);
  // Acceptance bar: <= 6 bytes/arc for BOTH directions, and at least 2.5x
  // smaller than the CSR footprint.
  EXPECT_LE(ef.bits_per_arc(), 48.0) << ef.bits_per_arc() << " bits/arc";
  EXPECT_LE(static_cast<double>(ef.memory_bytes()) * 2.5,
            static_cast<double>(csr.memory_bytes()));
}

TEST(EfGraph, StreamRoundTrip) {
  Rng rng(11);
  const DiGraph csr = erdos_renyi(300, 0.02, /*directed=*/true, rng);
  const EfGraph ef = EfGraph::from_csr(csr);

  std::stringstream ss;
  ef.save(ss);
  const EfGraph back = EfGraph::load(ss);
  back.validate(EfVerify::kFull);
  expect_same_graph(csr, back);
  EXPECT_FALSE(back.mmap_backed());
}

TEST(EfGraph, FileRoundTripMmapAndRead) {
  Rng rng(13);
  const DiGraph csr = erdos_renyi(500, 0.015, /*directed=*/true, rng);
  const EfGraph ef = EfGraph::from_csr(csr);
  TempFile file;
  ef.save(file.path());

  const EfGraph mapped = EfGraph::load(file.path(), EfMapMode::kMmap);
  EXPECT_TRUE(mapped.mmap_backed());
  expect_same_graph(csr, mapped);

  const EfGraph read = EfGraph::load(file.path(), EfMapMode::kRead);
  EXPECT_FALSE(read.mmap_backed());
  expect_same_graph(csr, read);

  const EfGraph autoloaded = EfGraph::load(file.path(), EfMapMode::kAuto);
  expect_same_graph(csr, autoloaded);
}

TEST(EfGraph, ConcurrentReadersShareOneMapping) {
  // The registry serves one immutable EfGraph to many query threads; all
  // views alias the same mmap'ed words. Decoding must be a pure read —
  // this is the race-stress shape the TSan job runs.
  Rng rng(29);
  const DiGraph csr = erdos_renyi(300, 0.03, /*directed=*/true, rng);
  TempFile file;
  EfGraph::from_csr(csr).save(file.path());
  const EfGraph ef = EfGraph::load(file.path(), EfMapMode::kAuto);

  std::vector<std::uint64_t> sums(4, 0);
  {
    std::vector<std::jthread> readers;
    for (std::size_t t = 0; t < sums.size(); ++t) {
      readers.emplace_back([&, t] {
        std::uint64_t sum = 0;
        for (NodeId u = 0; u < ef.num_nodes(); ++u) {
          for (const NodeId v : ef.out_neighbors(u)) sum += v;
          for (const NodeId w : ef.in_neighbors(u)) sum += w + 1;
        }
        sums[t] = sum;
      });
    }
  }
  for (std::size_t t = 1; t < sums.size(); ++t) EXPECT_EQ(sums[t], sums[0]);

  std::uint64_t expect = 0;
  for (NodeId u = 0; u < csr.num_nodes(); ++u) {
    for (const NodeId v : csr.out_neighbors(u)) expect += v;
    for (const NodeId w : csr.in_neighbors(u)) expect += w + 1;
  }
  EXPECT_EQ(sums[0], expect);
}

TEST(EfGraph, FromRowsStreamingBuild) {
  // Ring of n nodes: u -> (u+1) % n; transpose is u -> (u-1+n) % n.
  const NodeId n = 64;
  const EfGraph ef = EfGraph::from_rows(
      n, n,
      [&](NodeId u, auto&& sink) { sink((u + 1) % n); },
      [&](NodeId u, auto&& sink) { sink((u + n - 1) % n); });
  ef.validate(EfVerify::kFull);
  const DiGraph csr = cycle_graph(n);
  expect_same_graph(csr, ef);
}

std::string serialized(const EfGraph& g) {
  std::stringstream ss;
  g.save(ss);
  return ss.str();
}

EfGraph load_bytes(const std::string& bytes) {
  std::stringstream ss(bytes);
  return EfGraph::load(ss);
}

TEST(EfGraph, RejectsTruncatedHeader) {
  const std::string bytes = serialized(EfGraph::from_csr(path_graph(10)));
  EXPECT_THROW(load_bytes(bytes.substr(0, 20)), Error);
}

TEST(EfGraph, RejectsBadMagicAndVersion) {
  std::string bytes = serialized(EfGraph::from_csr(path_graph(10)));
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW(load_bytes(bad_magic), Error);
  std::string bad_version = bytes;
  bad_version[8] = 99;
  EXPECT_THROW(load_bytes(bad_version), Error);
}

TEST(EfGraph, RejectsTruncatedPayload) {
  const std::string bytes = serialized(EfGraph::from_csr(complete_graph(9)));
  EXPECT_THROW(load_bytes(bytes.substr(0, bytes.size() - 9)), Error);
}

TEST(EfGraph, RejectsCorruptedPayload) {
  // Flip one payload byte: either the checksum or (with checksum patched
  // out via flags) the structural validation must catch it.
  std::string bytes = serialized(EfGraph::from_csr(complete_graph(9)));
  ASSERT_GT(bytes.size(), 200u);
  bytes[100] ^= 0x40;
  EXPECT_THROW(load_bytes(bytes), Error);
}

TEST(EfGraph, RejectsForgedCounts) {
  std::string bytes = serialized(EfGraph::from_csr(path_graph(10)));
  // num_arcs lives at byte offset 24.
  bytes[24] = static_cast<char>(bytes[24] + 1);
  EXPECT_THROW(load_bytes(bytes), Error);
}

void patch_u64(std::string& bytes, std::size_t offset, std::uint64_t value) {
  ASSERT_GE(bytes.size(), offset + sizeof value);
  std::memcpy(bytes.data() + offset, &value, sizeof value);
}

TEST(EfGraph, RejectsOverflowingPayloadWordsOnAllLoadPaths) {
  // payload_words lives at byte offset 32. 2^61 words * 8 bytes wraps to 0
  // mod 2^64, so a multiplied truncation bound would pass; the divided bound
  // must reject it before payload() can span past the mapping.
  std::string bytes = serialized(EfGraph::from_csr(path_graph(10)));
  patch_u64(bytes, 32, std::uint64_t{1} << 61);

  TempFile file;
  {
    std::ofstream out(file.path(), std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
  }
  EXPECT_THROW(EfGraph::load(file.path(), EfMapMode::kMmap), Error);
  EXPECT_THROW(EfGraph::load(file.path(), EfMapMode::kRead), Error);
  EXPECT_THROW(load_bytes(bytes), Error);
}

TEST(EfGraph, RejectsNodeCountAboveNodeIdRange) {
  // num_nodes lives at byte offset 16. Exactly 2^32 does not fit NodeId
  // (uint32_t) and must be rejected by the header check itself, on the
  // stream and mmap paths alike.
  std::string bytes = serialized(EfGraph::from_csr(path_graph(10)));
  patch_u64(bytes, 16, std::uint64_t{1} << 32);
  EXPECT_THROW(load_bytes(bytes), Error);

  TempFile file;
  {
    std::ofstream out(file.path(), std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
  }
  EXPECT_THROW(EfGraph::load(file.path(), EfMapMode::kMmap), Error);
}

TEST(GraphBackend, ParseAndToString) {
  EXPECT_EQ(parse_graph_backend("csr"), GraphBackend::kCsr);
  EXPECT_EQ(parse_graph_backend("EF"), GraphBackend::kEf);
  EXPECT_EQ(parse_graph_backend("elias-fano"), GraphBackend::kEf);
  EXPECT_THROW(parse_graph_backend("quantum"), Error);
  EXPECT_EQ(to_string(GraphBackend::kCsr), "csr");
  EXPECT_EQ(to_string(GraphBackend::kEf), "ef");
}

TEST(GraphBackend, GraphRefDispatch) {
  const DiGraph csr = path_graph(12);
  const EfGraph ef = EfGraph::from_csr(csr);
  const GraphRef rcsr = csr;
  const GraphRef ref = ef;
  EXPECT_EQ(rcsr.backend(), GraphBackend::kCsr);
  EXPECT_EQ(ref.backend(), GraphBackend::kEf);
  EXPECT_EQ(rcsr.num_nodes(), ref.num_nodes());
  EXPECT_EQ(rcsr.num_edges(), ref.num_edges());
  EXPECT_TRUE(ref.has_edge(0, 1));
  EXPECT_FALSE(ref.has_edge(1, 0));
  EXPECT_EQ(rcsr.csr_or_null(), &csr);
  EXPECT_EQ(ref.csr_or_null(), nullptr);
  EXPECT_LT(ref.memory_bytes(), rcsr.memory_bytes());
  EXPECT_THROW((void)GraphRef().num_nodes(), Error);
}

TEST(GraphBackend, GraphAnyOwnsEitherBackend) {
  GraphAny csr = to_backend(path_graph(12), GraphBackend::kCsr);
  GraphAny ef = to_backend(path_graph(12), GraphBackend::kEf);
  EXPECT_EQ(csr.backend(), GraphBackend::kCsr);
  EXPECT_EQ(ef.backend(), GraphBackend::kEf);
  EXPECT_EQ(csr.num_nodes(), ef.num_nodes());
  EXPECT_EQ(csr.num_edges(), ef.num_edges());
  EXPECT_LT(ef.memory_bytes(), csr.memory_bytes());
  const NodeId n = ef.visit([](const auto& g) { return g.num_nodes(); });
  EXPECT_EQ(n, 12u);
}

}  // namespace
}  // namespace lcrb
