#include "graph/generators.h"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/metrics.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace lcrb {
namespace {

TEST(Deterministic, PathGraph) {
  const DiGraph g = path_graph(4);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  const DiGraph u = path_graph(4, /*undirected=*/true);
  EXPECT_EQ(u.num_edges(), 6u);
  EXPECT_TRUE(u.has_edge(1, 0));
}

TEST(Deterministic, CycleGraph) {
  const DiGraph g = cycle_graph(5);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_TRUE(g.has_edge(4, 0));
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(g.out_degree(v), 1u);
    EXPECT_EQ(g.in_degree(v), 1u);
  }
  EXPECT_THROW(cycle_graph(1), Error);
}

TEST(Deterministic, StarGraph) {
  const DiGraph g = star_graph(6);
  EXPECT_EQ(g.out_degree(0), 5u);
  for (NodeId v = 1; v < 6; ++v) {
    EXPECT_EQ(g.in_degree(v), 1u);
    EXPECT_EQ(g.out_degree(v), 0u);
  }
}

TEST(Deterministic, CompleteGraph) {
  const DiGraph g = complete_graph(5);
  EXPECT_EQ(g.num_edges(), 20u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.out_degree(v), 4u);
}

TEST(Deterministic, GridGraph) {
  const DiGraph g = grid_graph(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  // 3*3 horizontal + 2*4 vertical undirected edges = 17, doubled = 34 arcs.
  EXPECT_EQ(g.num_edges(), 34u);
  // Corner has degree 2, middle 4.
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(5), 4u);
}

TEST(ErdosRenyi, EdgeCountNearExpectation) {
  Rng rng(42);
  const NodeId n = 500;
  const double p = 0.02;
  const DiGraph g = erdos_renyi(n, p, /*directed=*/true, rng);
  const double expected = p * n * (n - 1);
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.15);
}

TEST(ErdosRenyi, UndirectedIsSymmetric) {
  Rng rng(43);
  const DiGraph g = erdos_renyi(100, 0.05, /*directed=*/false, rng);
  EXPECT_DOUBLE_EQ(reciprocity(g), 1.0);
}

TEST(ErdosRenyi, ZeroProbabilityEmpty) {
  Rng rng(1);
  const DiGraph g = erdos_renyi(50, 0.0, true, rng);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.num_nodes(), 50u);
}

TEST(ErdosRenyi, FullProbabilityComplete) {
  Rng rng(1);
  const DiGraph g = erdos_renyi(20, 1.0, true, rng);
  EXPECT_EQ(g.num_edges(), 20u * 19u);
}

TEST(ErdosRenyi, InvalidProbabilityThrows) {
  Rng rng(1);
  EXPECT_THROW(erdos_renyi(10, -0.1, true, rng), Error);
  EXPECT_THROW(erdos_renyi(10, 1.1, true, rng), Error);
}

TEST(ErdosRenyiM, ExactEdgeCount) {
  Rng rng(5);
  const DiGraph g = erdos_renyi_m(200, 1000, /*directed=*/true, rng);
  EXPECT_EQ(g.num_edges(), 1000u);
  const DiGraph u = erdos_renyi_m(200, 500, /*directed=*/false, rng);
  EXPECT_EQ(u.num_edges(), 1000u);  // 500 undirected edges = 1000 arcs
}

TEST(ErdosRenyiM, TooManyEdgesThrows) {
  Rng rng(5);
  EXPECT_THROW(erdos_renyi_m(5, 100, true, rng), Error);
}

TEST(BarabasiAlbert, DegreeSumAndHubs) {
  Rng rng(6);
  const NodeId n = 400;
  const DiGraph g = barabasi_albert(n, 3, rng);
  // Each new node adds 3 undirected edges (6 arcs) modulo the seed clique.
  EXPECT_GT(g.num_edges(), 2u * 3u * (n - 10));
  const DegreeStats s = degree_stats(g);
  // Preferential attachment should grow hubs well above the mean.
  EXPECT_GT(s.max_out, 4 * static_cast<NodeId>(s.avg_out));
  EXPECT_DOUBLE_EQ(reciprocity(g), 1.0);
}

TEST(BarabasiAlbert, InvalidParamsThrow) {
  Rng rng(1);
  EXPECT_THROW(barabasi_albert(5, 0, rng), Error);
  EXPECT_THROW(barabasi_albert(3, 3, rng), Error);
}

TEST(WattsStrogatz, RingWithoutRewiring) {
  Rng rng(7);
  const DiGraph g = watts_strogatz(50, 4, 0.0, rng);
  // Every node connects to 2 neighbors each side: 4 arcs out of each node
  // from its own loop plus 4 in from others' loops => out_degree 4.
  for (NodeId v = 0; v < 50; ++v) EXPECT_EQ(g.out_degree(v), 4u);
}

TEST(WattsStrogatz, RewiringKeepsEdgeBudget) {
  Rng rng(8);
  const DiGraph g = watts_strogatz(200, 6, 0.3, rng);
  // Dedup can only shrink the count: at most n*k arcs.
  EXPECT_LE(g.num_edges(), 200u * 6u);
  EXPECT_GT(g.num_edges(), 200u * 6u * 8 / 10);
}

TEST(WattsStrogatz, InvalidParamsThrow) {
  Rng rng(1);
  EXPECT_THROW(watts_strogatz(10, 3, 0.1, rng), Error);   // odd k
  EXPECT_THROW(watts_strogatz(4, 4, 0.1, rng), Error);    // n <= k
  EXPECT_THROW(watts_strogatz(10, 2, 1.5, rng), Error);   // beta
}

TEST(ConfigurationModel, MatchesOutDegreesOnEasySequences) {
  Rng rng(14);
  std::vector<NodeId> degs(200, 4);
  const DiGraph g = configuration_model(degs, rng);
  EXPECT_EQ(g.num_nodes(), 200u);
  // Regular sparse sequence: stub matching rarely drops arcs.
  EXPECT_GE(g.num_edges(), 200u * 4u * 95 / 100);
  std::size_t exact = 0;
  for (NodeId v = 0; v < 200; ++v) exact += (g.out_degree(v) == 4);
  EXPECT_GT(exact, 180u);
}

TEST(ConfigurationModel, NoSelfLoopsOrDuplicates) {
  Rng rng(15);
  std::vector<NodeId> degs;
  for (NodeId v = 0; v < 150; ++v) degs.push_back(1 + v % 7);
  const DiGraph g = configuration_model(degs, rng);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbrs = g.out_neighbors(u);
    EXPECT_TRUE(std::adjacent_find(nbrs.begin(), nbrs.end()) == nbrs.end());
    EXPECT_FALSE(g.has_edge(u, u));
  }
}

TEST(ConfigurationModel, InDegreeTotalsMatchOutTotals) {
  Rng rng(16);
  std::vector<NodeId> degs(100, 3);
  const DiGraph g = configuration_model(degs, rng);
  EdgeId in_total = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) in_total += g.in_degree(v);
  EXPECT_EQ(in_total, g.num_edges());
}

TEST(ConfigurationModel, ZeroDegreesAllowed) {
  Rng rng(17);
  std::vector<NodeId> degs{0, 0, 2, 0, 2};
  const DiGraph g = configuration_model(degs, rng);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.out_degree(0), 0u);
}

TEST(PowerLawSizes, SumsToTotal) {
  Rng rng(9);
  for (NodeId total : {100u, 1000u, 12345u}) {
    const auto sizes = power_law_sizes(total, 10, 200, 2.0, rng);
    EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), NodeId{0}), total);
    for (NodeId s : sizes) EXPECT_LE(s, 200u + 10u);  // remainder fold allowance
  }
}

TEST(PowerLawSizes, SkewedTowardSmall) {
  Rng rng(10);
  const auto sizes = power_law_sizes(20000, 10, 500, 2.5, rng);
  std::size_t small = 0;
  for (NodeId s : sizes) small += (s < 50);
  EXPECT_GT(static_cast<double>(small) / static_cast<double>(sizes.size()), 0.5);
}

TEST(CommunityGraph, MembershipMatchesPlantedSizes) {
  CommunityGraphConfig cfg;
  cfg.community_sizes = {30, 50, 20};
  cfg.seed = 3;
  const CommunityGraph cg = make_community_graph(cfg);
  EXPECT_EQ(cg.graph.num_nodes(), 100u);
  EXPECT_EQ(cg.num_communities, 3u);
  std::vector<int> counts(3, 0);
  for (CommunityId c : cg.membership) ++counts[c];
  EXPECT_EQ(counts[0], 30);
  EXPECT_EQ(counts[1], 50);
  EXPECT_EQ(counts[2], 20);
}

TEST(CommunityGraph, IntraDenserThanInter) {
  CommunityGraphConfig cfg;
  cfg.community_sizes = {200, 200, 200, 200};
  cfg.avg_intra_degree = 8.0;
  cfg.avg_inter_degree = 1.0;
  cfg.seed = 11;
  const CommunityGraph cg = make_community_graph(cfg);
  EdgeId intra = 0, inter = 0;
  for (NodeId u = 0; u < cg.graph.num_nodes(); ++u) {
    for (NodeId v : cg.graph.out_neighbors(u)) {
      (cg.membership[u] == cg.membership[v] ? intra : inter)++;
    }
  }
  EXPECT_GT(intra, 4 * inter);
}

TEST(CommunityGraph, SymmetricFlagProducesSymmetricArcs) {
  CommunityGraphConfig cfg;
  cfg.community_sizes = {100, 100};
  cfg.symmetric = true;
  cfg.seed = 12;
  const CommunityGraph cg = make_community_graph(cfg);
  EXPECT_DOUBLE_EQ(reciprocity(cg.graph), 1.0);
}

TEST(CommunityGraph, DeterministicInSeed) {
  CommunityGraphConfig cfg;
  cfg.community_sizes = {50, 50};
  cfg.seed = 77;
  const CommunityGraph a = make_community_graph(cfg);
  const CommunityGraph b = make_community_graph(cfg);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (NodeId u = 0; u < a.graph.num_nodes(); ++u) {
    const auto x = a.graph.out_neighbors(u);
    const auto y = b.graph.out_neighbors(u);
    ASSERT_EQ(x.size(), y.size());
    EXPECT_TRUE(std::equal(x.begin(), x.end(), y.begin()));
  }
}

TEST(CommunityGraph, InvalidConfigThrows) {
  CommunityGraphConfig cfg;
  EXPECT_THROW(make_community_graph(cfg), Error);  // no communities
  cfg.community_sizes = {0, 5};
  EXPECT_THROW(make_community_graph(cfg), Error);  // zero-size community
  cfg.community_sizes = {5};
  cfg.avg_intra_degree = -1;
  EXPECT_THROW(make_community_graph(cfg), Error);
}

TEST(DatasetSubstitutes, HepShapeAtSmallScale) {
  const DatasetSubstitute ds = make_hep_like(1, 0.1);
  const DiGraph& g = ds.net.graph;
  EXPECT_NEAR(g.num_nodes(), 1523, 10);
  // Average degree close to the Hep target of 7.73 (generator dedup loses a
  // little).
  EXPECT_NEAR(g.average_out_degree(), 7.7, 1.6);
  EXPECT_DOUBLE_EQ(reciprocity(g), 1.0);
  // Planted community exists and has roughly scaled size (~31).
  ASSERT_EQ(ds.planted_medium, 0u);
  std::size_t planted_size = 0;
  for (CommunityId c : ds.net.membership) planted_size += (c == 0);
  EXPECT_NEAR(static_cast<double>(planted_size), 31.0, 3.0);
}

TEST(DatasetSubstitutes, EnronShapeAtSmallScale) {
  const DatasetSubstitute ds = make_enron_like(1, 0.05);
  const DiGraph& g = ds.net.graph;
  EXPECT_NEAR(g.num_nodes(), 1835, 10);
  EXPECT_NEAR(g.average_out_degree(), 10.0, 2.5);
  EXPECT_LT(reciprocity(g), 0.9);  // directed network
  ASSERT_EQ(ds.planted_small, 0u);
  ASSERT_EQ(ds.planted_medium, 1u);
}

// Calibration at the scales the bench harness actually uses.
class DatasetCalibrationTest : public ::testing::TestWithParam<double> {};

TEST_P(DatasetCalibrationTest, HepDensityAndSymmetryHold) {
  const double scale = GetParam();
  const DatasetSubstitute ds = make_hep_like(1, scale);
  EXPECT_NEAR(ds.net.graph.average_out_degree(), 7.7, 1.6);
  EXPECT_DOUBLE_EQ(reciprocity(ds.net.graph), 1.0);
  // The planted rumor community exists at its scaled size.
  std::size_t planted = 0;
  for (CommunityId c : ds.net.membership) planted += (c == ds.planted_medium);
  EXPECT_NEAR(static_cast<double>(planted), 308.0 * scale,
              0.15 * 308.0 * scale + 12);
}

TEST_P(DatasetCalibrationTest, EnronDensityAndDirectionHold) {
  const double scale = GetParam();
  const DatasetSubstitute ds = make_enron_like(1, scale);
  EXPECT_NEAR(ds.net.graph.average_out_degree(), 10.0, 2.0);
  EXPECT_LT(reciprocity(ds.net.graph), 0.9);
  std::size_t small = 0, large = 0;
  for (CommunityId c : ds.net.membership) {
    small += (c == ds.planted_small);
    large += (c == ds.planted_medium);
  }
  EXPECT_NEAR(static_cast<double>(large), 2631.0 * scale,
              0.15 * 2631.0 * scale + 32);
  EXPECT_LT(small, large);
}

INSTANTIATE_TEST_SUITE_P(BenchScales, DatasetCalibrationTest,
                         ::testing::Values(0.1, 0.2, 0.3, 0.5));

TEST(DatasetSubstitutes, InvalidScaleThrows) {
  EXPECT_THROW(make_hep_like(1, 0.0), Error);
  EXPECT_THROW(make_enron_like(1, 1.5), Error);
}

}  // namespace
}  // namespace lcrb
