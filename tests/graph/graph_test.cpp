#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace lcrb {
namespace {

DiGraph triangle() {
  // 0 -> 1, 1 -> 2, 2 -> 0
  return make_graph(3, {{0, 1}, {1, 2}, {2, 0}});
}

TEST(DiGraph, EmptyGraph) {
  DiGraph g;
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.average_out_degree(), 0.0);
}

TEST(DiGraph, DegreesAndNeighbors) {
  const DiGraph g = triangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_EQ(g.out_degree(v), 1u);
    EXPECT_EQ(g.in_degree(v), 1u);
  }
  ASSERT_EQ(g.out_neighbors(0).size(), 1u);
  EXPECT_EQ(g.out_neighbors(0)[0], 1u);
  ASSERT_EQ(g.in_neighbors(0).size(), 1u);
  EXPECT_EQ(g.in_neighbors(0)[0], 2u);
}

TEST(DiGraph, HasEdge) {
  const DiGraph g = triangle();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(DiGraph, OutOfRangeAccessThrows) {
  const DiGraph g = triangle();
  EXPECT_THROW(g.out_degree(3), Error);
  EXPECT_THROW(g.in_degree(99), Error);
  EXPECT_THROW(g.out_neighbors(3), Error);
  EXPECT_THROW((void)g.has_edge(0, 3), Error);
}

TEST(DiGraph, AverageOutDegree) {
  const DiGraph g = make_graph(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}});
  EXPECT_DOUBLE_EQ(g.average_out_degree(), 1.0);
}

TEST(DiGraph, NeighborListsSorted) {
  const DiGraph g = make_graph(5, {{0, 4}, {0, 1}, {0, 3}, {2, 0}, {1, 0}});
  const auto nbrs = g.out_neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  const auto in = g.in_neighbors(0);
  ASSERT_EQ(in.size(), 2u);
  EXPECT_TRUE(std::is_sorted(in.begin(), in.end()));
}

TEST(DiGraph, IsolatedNodesAllowed) {
  GraphBuilder b;
  b.reserve_nodes(10);
  b.add_edge(0, 1);
  const DiGraph g = b.finalize();
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.out_degree(9), 0u);
  EXPECT_EQ(g.in_degree(9), 0u);
  EXPECT_TRUE(g.out_neighbors(9).empty());
}

TEST(DiGraph, ValidateAcceptsWellFormedGraphs) {
  EXPECT_NO_THROW(DiGraph().validate());
  EXPECT_NO_THROW(triangle().validate());
  GraphBuilder b;
  b.reserve_nodes(8);
  b.add_edge(0, 1);
  b.add_edge(0, 1);  // deduplicated by finalize
  b.add_edge(4, 2);
  b.add_edge(2, 4);
  EXPECT_NO_THROW(b.finalize().validate());
}

}  // namespace
}  // namespace lcrb
