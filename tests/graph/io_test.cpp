#include "graph/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "graph/builder.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace lcrb {
namespace {

TEST(EdgeListIo, ParsesBasicFile) {
  std::istringstream in(
      "# comment\n"
      "% another comment\n"
      "\n"
      "0 1\n"
      "  1 2\n"
      "2\t0\n");
  const DiGraph g = load_edge_list(in);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 0));
}

TEST(EdgeListIo, UndirectedFlagSymmetrizes) {
  std::istringstream in("0 1\n1 2\n");
  const DiGraph g = load_edge_list(in, /*undirected=*/true);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 1));
}

TEST(EdgeListIo, MalformedLineThrows) {
  std::istringstream bad1("0 x\n");
  EXPECT_THROW(load_edge_list(bad1), Error);
  std::istringstream bad2("0\n");
  EXPECT_THROW(load_edge_list(bad2), Error);
  std::istringstream bad3("-1 2\n");
  EXPECT_THROW(load_edge_list(bad3), Error);
}

TEST(EdgeListIo, MissingFileThrows) {
  EXPECT_THROW(load_edge_list("/nonexistent/graph.txt"), Error);
}

TEST(EdgeListIo, RoundTrip) {
  Rng rng(8);
  const DiGraph g = erdos_renyi(60, 0.05, /*directed=*/true, rng);
  const std::string path = testing::TempDir() + "/lcrb_io_roundtrip.txt";
  save_edge_list(g, path);
  const DiGraph h = load_edge_list(path);
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto a = g.out_neighbors(u);
    const auto b = h.out_neighbors(u);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
  std::remove(path.c_str());
}

TEST(BinaryIo, RoundTrip) {
  Rng rng(9);
  const DiGraph g = erdos_renyi(80, 0.04, /*directed=*/true, rng);
  const std::string path = testing::TempDir() + "/lcrb_io_roundtrip.bin";
  save_binary(g, path);
  const DiGraph h = load_binary(path);
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto a = g.out_neighbors(u);
    const auto b = h.out_neighbors(u);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
  std::remove(path.c_str());
}

TEST(BinaryIo, EmptyGraphRoundTrip) {
  GraphBuilder b;
  b.reserve_nodes(4);
  const DiGraph g = b.finalize();
  const std::string path = testing::TempDir() + "/lcrb_io_empty.bin";
  save_binary(g, path);
  const DiGraph h = load_binary(path);
  EXPECT_EQ(h.num_nodes(), 4u);
  EXPECT_EQ(h.num_edges(), 0u);
  std::remove(path.c_str());
}

TEST(BinaryIo, RejectsCorruptedFile) {
  const DiGraph g = make_graph(3, {{0, 1}, {1, 2}});
  const std::string path = testing::TempDir() + "/lcrb_io_corrupt.bin";
  save_binary(g, path);
  // Flip a byte in the payload.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(30);
    char c = 0x7f;
    f.write(&c, 1);
  }
  EXPECT_THROW(load_binary(path), Error);
  std::remove(path.c_str());
}

TEST(BinaryIo, RejectsWrongMagic) {
  const std::string path = testing::TempDir() + "/lcrb_io_magic.bin";
  {
    std::ofstream f(path, std::ios::binary);
    const char junk[32] = "this is not a graph at all!";
    f.write(junk, sizeof junk);
  }
  EXPECT_THROW(load_binary(path), Error);
  std::remove(path.c_str());
}

TEST(BinaryIo, RejectsTruncatedFile) {
  const DiGraph g = make_graph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const std::string path = testing::TempDir() + "/lcrb_io_trunc.bin";
  save_binary(g, path);
  // Rewrite with the last 8 bytes (checksum) cut off.
  std::string bytes;
  {
    std::ifstream f(path, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(f)),
                 std::istreambuf_iterator<char>());
  }
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 8));
  }
  EXPECT_THROW(load_binary(path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lcrb
