#include "graph/metrics.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"

namespace lcrb {
namespace {

TEST(DegreeStats, EmptyGraph) {
  const DegreeStats s = degree_stats(DiGraph{});
  EXPECT_EQ(s.avg_out, 0.0);
  EXPECT_EQ(s.max_out, 0u);
}

TEST(DegreeStats, StarValues) {
  const DiGraph g = star_graph(11);  // hub with 10 out-edges
  const DegreeStats s = degree_stats(g);
  EXPECT_DOUBLE_EQ(s.avg_out, 10.0 / 11.0);
  EXPECT_EQ(s.max_out, 10u);
  EXPECT_EQ(s.max_in, 1u);
  EXPECT_EQ(s.isolated, 0u);
  EXPECT_DOUBLE_EQ(s.p50_out, 0.0);
}

TEST(DegreeStats, CountsIsolated) {
  GraphBuilder b;
  b.reserve_nodes(5);
  b.add_edge(0, 1);
  const DegreeStats s = degree_stats(b.finalize());
  EXPECT_EQ(s.isolated, 3u);
}

TEST(Wcc, SingleComponent) {
  const DiGraph g = cycle_graph(6);
  const ComponentResult r = weakly_connected_components(g);
  EXPECT_EQ(r.count, 1u);
  EXPECT_EQ(r.largest_size, 6u);
}

TEST(Wcc, DirectionIgnored) {
  // 0 -> 1 <- 2: weakly connected despite no directed path 0 -> 2.
  const DiGraph g = make_graph(3, {{0, 1}, {2, 1}});
  const ComponentResult r = weakly_connected_components(g);
  EXPECT_EQ(r.count, 1u);
}

TEST(Wcc, MultipleComponentsAndIsolated) {
  GraphBuilder b;
  b.reserve_nodes(7);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  const ComponentResult r = weakly_connected_components(b.finalize());
  EXPECT_EQ(r.count, 4u);  // {0,1}, {2,3,4}, {5}, {6}
  EXPECT_EQ(r.largest_size, 3u);
  EXPECT_EQ(r.labels[0], r.labels[1]);
  EXPECT_EQ(r.labels[2], r.labels[4]);
  EXPECT_NE(r.labels[0], r.labels[2]);
  EXPECT_NE(r.labels[5], r.labels[6]);
}

TEST(Reciprocity, FullySymmetric) {
  const DiGraph g = path_graph(5, /*undirected=*/true);
  EXPECT_DOUBLE_EQ(reciprocity(g), 1.0);
}

TEST(Reciprocity, NoneSymmetric) {
  const DiGraph g = path_graph(5);
  EXPECT_DOUBLE_EQ(reciprocity(g), 0.0);
}

TEST(Reciprocity, Mixed) {
  const DiGraph g = make_graph(3, {{0, 1}, {1, 0}, {1, 2}});
  EXPECT_NEAR(reciprocity(g), 2.0 / 3.0, 1e-12);
}

TEST(Reciprocity, EmptyGraphIsZero) {
  EXPECT_EQ(reciprocity(DiGraph{}), 0.0);
}

TEST(Describe, MentionsKeyNumbers) {
  const DiGraph g = cycle_graph(4);
  const std::string d = describe(g);
  EXPECT_NE(d.find("n=4"), std::string::npos);
  EXPECT_NE(d.find("arcs=4"), std::string::npos);
  EXPECT_NE(d.find("wcc=1"), std::string::npos);
}

}  // namespace
}  // namespace lcrb
