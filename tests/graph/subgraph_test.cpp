#include "graph/subgraph.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace lcrb {
namespace {

TEST(InducedSubgraph, KeepsInternalEdgesOnly) {
  // 0 -> 1 -> 2 -> 3, plus 0 -> 3.
  const DiGraph g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  const NodeId pick[] = {1, 2};
  const InducedSubgraph s = induced_subgraph(g, pick);
  EXPECT_EQ(s.graph.num_nodes(), 2u);
  EXPECT_EQ(s.graph.num_edges(), 1u);
  EXPECT_TRUE(s.graph.has_edge(s.from_original[1], s.from_original[2]));
}

TEST(InducedSubgraph, MappingRoundTrips) {
  const DiGraph g = cycle_graph(10);
  const NodeId pick[] = {7, 3, 9};
  const InducedSubgraph s = induced_subgraph(g, pick);
  ASSERT_EQ(s.to_original.size(), 3u);
  for (NodeId new_id = 0; new_id < 3; ++new_id) {
    EXPECT_EQ(s.from_original[s.to_original[new_id]], new_id);
  }
  EXPECT_EQ(s.from_original[0], kInvalidNode);
}

TEST(InducedSubgraph, EmptySelection) {
  const DiGraph g = cycle_graph(5);
  const InducedSubgraph s = induced_subgraph(g, {});
  EXPECT_EQ(s.graph.num_nodes(), 0u);
  EXPECT_EQ(s.graph.num_edges(), 0u);
}

TEST(InducedSubgraph, DuplicateNodeThrows) {
  const DiGraph g = cycle_graph(5);
  const NodeId pick[] = {1, 1};
  EXPECT_THROW(induced_subgraph(g, pick), Error);
}

TEST(InducedSubgraph, OutOfRangeThrows) {
  const DiGraph g = cycle_graph(5);
  const NodeId pick[] = {10};
  EXPECT_THROW(induced_subgraph(g, pick), Error);
}

TEST(InducedSubgraph, WholeGraphIsIsomorphic) {
  Rng rng(4);
  const DiGraph g = erdos_renyi(40, 0.1, true, rng);
  std::vector<NodeId> all(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
  const InducedSubgraph s = induced_subgraph(g, all);
  EXPECT_EQ(s.graph.num_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(s.graph.out_degree(s.from_original[u]), g.out_degree(u));
  }
}

TEST(InducedSubgraph, EdgeCountNeverExceedsOriginal) {
  Rng rng(13);
  const DiGraph g = erdos_renyi(60, 0.08, true, rng);
  std::vector<NodeId> pick;
  for (NodeId v = 0; v < 30; ++v) pick.push_back(v * 2);
  const InducedSubgraph s = induced_subgraph(g, pick);
  EXPECT_LE(s.graph.num_edges(), g.num_edges());
}

}  // namespace
}  // namespace lcrb
