// Satellite gate for the compressed backend at production scale: a synthetic
// 100M-arc circulant graph built through EfGraph::from_rows (no CSR
// intermediate — materializing one would need ~1 GB up front) must fit a
// byte budget the CSR encoding provably exceeds, and must decode correctly
// at spot-checked rows across the id range.
//
// Deliberately slow (~10^8 arcs each direction), so it is double-gated:
// the binary carries the ctest label "large" and every test skips unless
// LCRB_SYNTHETIC_LARGE=1 is set, e.g.
//
//   LCRB_SYNTHETIC_LARGE=1 ctest --test-dir build -L large
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdlib>
#include <vector>

#include "graph/ef_graph.h"

namespace lcrb {
namespace {

// Circulant graph C_n(D): u -> (u + d) mod n for each offset d in D. Both
// adjacency directions have an analytic form, so rows stream straight into
// the encoder and every row can be recomputed exactly for verification.
constexpr NodeId kNodes = 10'000'000;
constexpr std::array<NodeId, 10> kOffsets = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
constexpr EdgeId kArcs = static_cast<EdgeId>(kNodes) * kOffsets.size();

std::vector<NodeId> circulant_row(NodeId u, bool transpose) {
  std::vector<NodeId> row;
  row.reserve(kOffsets.size());
  for (const NodeId d : kOffsets) {
    row.push_back(transpose ? (u + kNodes - d) % kNodes : (u + d) % kNodes);
  }
  std::sort(row.begin(), row.end());
  return row;
}

EfGraph build_circulant() {
  return EfGraph::from_rows(
      kNodes, kArcs,
      [](NodeId u, auto&& sink) {
        for (const NodeId v : circulant_row(u, /*transpose=*/false)) sink(v);
      },
      [](NodeId u, auto&& sink) {
        for (const NodeId v : circulant_row(u, /*transpose=*/true)) sink(v);
      });
}

class SyntheticLargeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (const char* flag = std::getenv("LCRB_SYNTHETIC_LARGE");
        flag == nullptr || std::string_view(flag) != "1") {
      GTEST_SKIP() << "set LCRB_SYNTHETIC_LARGE=1 to run the 100M-arc gate";
    }
  }
};

TEST_F(SyntheticLargeTest, HundredMillionArcsFitWhereCsrCannot) {
  const EfGraph g = build_circulant();
  ASSERT_EQ(g.num_nodes(), kNodes);
  ASSERT_EQ(g.num_edges(), kArcs);

  // The budget sits well under the CSR footprint for the same graph: 64-bit
  // offset rows plus 32-bit endpoints, both directions. EF stays under it
  // with margin (~6 B/arc at this density).
  const std::size_t csr_bytes =
      2 * ((static_cast<std::size_t>(kNodes) + 1) * sizeof(EdgeId) +
           static_cast<std::size_t>(kArcs) * sizeof(NodeId));
  const std::size_t budget = 800u << 20;  // 800 MiB
  ASSERT_GT(csr_bytes, budget);
  EXPECT_LE(g.memory_bytes(), budget);

  // Spot-check decoded rows across the id range, including the wrap-around
  // rows whose ascending order differs from offset order.
  for (const NodeId u : {NodeId{0}, NodeId{1}, kNodes / 2, kNodes - 11,
                         kNodes - 5, kNodes - 1}) {
    std::vector<NodeId> out, in;
    for (const NodeId v : g.out_neighbors(u)) out.push_back(v);
    for (const NodeId v : g.in_neighbors(u)) in.push_back(v);
    EXPECT_EQ(out, circulant_row(u, false)) << "out row " << u;
    EXPECT_EQ(in, circulant_row(u, true)) << "in row " << u;
  }

  // Random access paths at scale: row-range binary search and indexing.
  EXPECT_TRUE(g.has_edge(0, 10));
  EXPECT_FALSE(g.has_edge(0, 11));
  EXPECT_TRUE(g.has_edge(kNodes - 1, 9));  // wraps: (n-1) + 10 mod n
  EXPECT_EQ(g.out_neighbors(5)[0], NodeId{6});
}

}  // namespace
}  // namespace lcrb
