#include "graph/transform.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/metrics.h"
#include "util/rng.h"

namespace lcrb {
namespace {

TEST(Transpose, ReversesEveryArc) {
  Rng rng(1);
  const DiGraph g = erdos_renyi(60, 0.06, true, rng);
  const DiGraph t = transpose(g);
  EXPECT_EQ(t.num_nodes(), g.num_nodes());
  EXPECT_EQ(t.num_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.out_neighbors(u)) {
      EXPECT_TRUE(t.has_edge(v, u));
    }
  }
}

TEST(Transpose, InvolutionRestoresGraph) {
  Rng rng(2);
  const DiGraph g = erdos_renyi(40, 0.1, true, rng);
  const DiGraph tt = transpose(transpose(g));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto a = g.out_neighbors(u);
    const auto b = tt.out_neighbors(u);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

TEST(Symmetrize, MakesReciprocityOne) {
  const DiGraph g = path_graph(6);
  const DiGraph s = symmetrize(g);
  EXPECT_DOUBLE_EQ(reciprocity(s), 1.0);
  EXPECT_EQ(s.num_edges(), 10u);
}

TEST(Symmetrize, IdempotentOnSymmetricGraphs) {
  const DiGraph g = cycle_graph(5, /*undirected=*/true);
  const DiGraph s = symmetrize(g);
  EXPECT_EQ(s.num_edges(), g.num_edges());
}

TEST(KCore, PathHasEmptyTwoCore) {
  // Undirected path: every node has undirected degree <= 2 (as arc pairs
  // degree counts 4 for middles) — use directed path instead: degrees 1+1.
  const DiGraph g = path_graph(6);
  const InducedSubgraph core = k_core(g, 3);
  EXPECT_EQ(core.graph.num_nodes(), 0u);
}

TEST(KCore, CliqueSurvives) {
  const DiGraph g = complete_graph(5);  // total degree 8 everywhere
  const InducedSubgraph core = k_core(g, 8);
  EXPECT_EQ(core.graph.num_nodes(), 5u);
  const InducedSubgraph none = k_core(g, 9);
  EXPECT_EQ(none.graph.num_nodes(), 0u);
}

TEST(KCore, PeelsPendantsCascade) {
  // Clique of 4 with a pendant chain: chain must peel away entirely.
  GraphBuilder b;
  for (NodeId u = 0; u < 4; ++u)
    for (NodeId v = u + 1; v < 4; ++v) b.add_undirected_edge(u, v);
  b.add_undirected_edge(3, 4);
  b.add_undirected_edge(4, 5);
  const DiGraph g = b.finalize();
  const InducedSubgraph core = k_core(g, 4);  // undirected deg 2 = total 4
  EXPECT_EQ(core.graph.num_nodes(), 4u);
  for (NodeId v : core.to_original) EXPECT_LT(v, 4u);
}

TEST(KCore, ZeroKeepsEverything) {
  Rng rng(3);
  const DiGraph g = erdos_renyi(30, 0.05, true, rng);
  EXPECT_EQ(k_core(g, 0).graph.num_nodes(), g.num_nodes());
}

TEST(LargestWcc, PicksBiggestComponent) {
  GraphBuilder b;
  b.add_edge(0, 1);          // component of 2
  b.add_edge(2, 3);          // component of 3
  b.add_edge(3, 4);
  b.reserve_nodes(6);        // node 5 isolated
  const DiGraph g = b.finalize();
  const InducedSubgraph wcc = largest_wcc(g);
  EXPECT_EQ(wcc.graph.num_nodes(), 3u);
  EXPECT_EQ(wcc.to_original, (std::vector<NodeId>{2, 3, 4}));
}

TEST(LargestWcc, EmptyGraph) {
  EXPECT_EQ(largest_wcc(DiGraph{}).graph.num_nodes(), 0u);
}

}  // namespace
}  // namespace lcrb
