#include "graph/traversal.h"

#include <gtest/gtest.h>

#include <queue>

#include "graph/builder.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace lcrb {
namespace {

TEST(BfsForward, PathDistances) {
  const DiGraph g = path_graph(5);
  const NodeId src[] = {0};
  const BfsResult r = bfs_forward(g, src);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(r.dist[v], v);
  EXPECT_EQ(r.parent[0], kInvalidNode);
  EXPECT_EQ(r.parent[3], 2u);
}

TEST(BfsForward, UnreachableMarked) {
  const DiGraph g = make_graph(4, {{0, 1}, {2, 3}});
  const NodeId src[] = {0};
  const BfsResult r = bfs_forward(g, src);
  EXPECT_TRUE(r.reached(1));
  EXPECT_FALSE(r.reached(2));
  EXPECT_FALSE(r.reached(3));
  EXPECT_EQ(r.dist[2], kUnreached);
}

TEST(BfsForward, MultiSourceTakesNearest) {
  const DiGraph g = path_graph(10);
  const NodeId src[] = {0, 7};
  const BfsResult r = bfs_forward(g, src);
  EXPECT_EQ(r.dist[7], 0u);
  EXPECT_EQ(r.dist[8], 1u);
  EXPECT_EQ(r.dist[5], 5u);
}

TEST(BfsForward, DuplicateSourcesOk) {
  const DiGraph g = path_graph(3);
  const NodeId src[] = {0, 0, 0};
  const BfsResult r = bfs_forward(g, src);
  EXPECT_EQ(r.dist[2], 2u);
}

TEST(BfsForward, SourceOutOfRangeThrows) {
  const DiGraph g = path_graph(3);
  const NodeId src[] = {5};
  EXPECT_THROW(bfs_forward(g, src), Error);
}

TEST(BfsBackward, ReversesDirection) {
  const DiGraph g = path_graph(5);  // arcs i -> i+1
  const NodeId src[] = {4};
  const BfsResult r = bfs_backward(g, src);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(r.dist[v], 4 - v);
}

TEST(BoundedBfs, RespectsDepthLimit) {
  const DiGraph g = path_graph(10);
  const auto r = bfs_forward_bounded(g, 0, 3);
  EXPECT_EQ(r.nodes.size(), 4u);  // 0,1,2,3
  EXPECT_EQ(r.depth.back(), 3u);
}

TEST(BoundedBfs, BackwardWalksInEdges) {
  const DiGraph g = path_graph(10);
  const auto r = bfs_backward_bounded(g, 5, 2);
  ASSERT_EQ(r.nodes.size(), 3u);
  EXPECT_EQ(r.nodes[0], 5u);
  EXPECT_EQ(r.nodes[1], 4u);
  EXPECT_EQ(r.nodes[2], 3u);
}

TEST(BoundedBfs, DepthZeroIsJustRoot) {
  const DiGraph g = complete_graph(5);
  const auto r = bfs_forward_bounded(g, 2, 0);
  ASSERT_EQ(r.nodes.size(), 1u);
  EXPECT_EQ(r.nodes[0], 2u);
}

TEST(ReachableFrom, IncludesSourcesAndClosure) {
  const DiGraph g = make_graph(6, {{0, 1}, {1, 2}, {3, 4}});
  const NodeId src[] = {0};
  const auto r = reachable_from(g, src);
  EXPECT_EQ(r, (std::vector<NodeId>{0, 1, 2}));
}

// Property: BFS distances match a reference Dijkstra-with-unit-weights on
// random graphs.
class BfsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BfsPropertyTest, MatchesReferenceImplementation) {
  Rng rng(GetParam());
  const DiGraph g = erdos_renyi(80, 0.05, /*directed=*/true, rng);
  const NodeId source = static_cast<NodeId>(GetParam() % 80);

  // Reference: naive repeated relaxation (Bellman-Ford style).
  std::vector<std::uint32_t> ref(g.num_nodes(), kUnreached);
  ref[source] = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (ref[u] == kUnreached) continue;
      for (NodeId v : g.out_neighbors(u)) {
        if (ref[u] + 1 < ref[v]) {
          ref[v] = ref[u] + 1;
          changed = true;
        }
      }
    }
  }

  const NodeId src[] = {source};
  const BfsResult r = bfs_forward(g, src);
  EXPECT_EQ(r.dist, ref);

  // Backward BFS from every node must agree with forward distances:
  // dist_fwd(source -> v) == dist_bwd(v <- source).
  const BfsResult rb = bfs_backward(g, src);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    // rb.dist[v] is the distance from v to source along out-edges.
    std::vector<std::uint32_t> fwd_ref(g.num_nodes(), kUnreached);
    // (checked implicitly by symmetry of the definitions; spot check parents)
    if (rb.reached(v) && v != source) {
      EXPECT_NE(rb.parent[v], kInvalidNode);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfsPropertyTest,
                         ::testing::Values(1, 7, 23, 42, 1001));

}  // namespace
}  // namespace lcrb
