// Integration tests: the whole stack (generator -> Louvain -> bridge ends ->
// SCBG / greedy -> diffusion evaluation) on dataset-substitute networks.
#include <gtest/gtest.h>

#include "lcrb/experiments.h"

namespace lcrb {
namespace {

TEST(EndToEnd, HepSubstituteScbgFullProtection) {
  const DatasetSubstitute ds = make_hep_like(3, 0.08);
  const Partition truth(ds.net.membership);
  const CommunityId rc = ds.planted_medium;

  const ExperimentSetup s =
      prepare_experiment(ds.net.graph, truth, rc,
                         std::max<std::size_t>(1, truth.size_of(rc) / 20), 7);
  ASSERT_FALSE(s.bridges.bridge_ends.empty());

  const ScbgResult r = scbg_from_bridges(ds.net.graph, s.rumors, s.bridges);
  EXPECT_EQ(r.covered, r.bridge_ends.size());
  EXPECT_LT(r.protectors.size(), r.bridge_ends.size() + 1);

  // Under DOAM the guarantee is exact.
  SeedSets seeds{s.rumors, r.protectors};
  const DiffusionResult sim = simulate_doam(ds.net.graph, seeds);
  for (NodeId b : r.bridge_ends) {
    ASSERT_NE(sim.state[b], NodeState::kInfected);
  }
}

TEST(EndToEnd, EnronSubstituteScbgBeatsHeuristicsOnCost) {
  const DatasetSubstitute ds = make_enron_like(5, 0.04);
  const Partition truth(ds.net.membership);
  const CommunityId rc = ds.planted_medium;  // the big community

  const ExperimentSetup s = prepare_experiment(
      ds.net.graph, truth, rc, std::max<std::size_t>(2, truth.size_of(rc) / 20),
      11);
  if (s.bridges.bridge_ends.empty()) GTEST_SKIP();

  const ScbgResult sc = scbg_from_bridges(ds.net.graph, s.rumors, s.bridges);

  // MaxDegree cover cost on the same instance.
  const auto md_order =
      maxdegree_protectors(ds.net.graph, s.rumors, ds.net.graph.num_nodes());
  const CoverCostResult md =
      cover_cost_doam(ds.net.graph, s.rumors, s.bridges.bridge_ends, md_order);

  // SCBG picks positions that actually cover; MaxDegree needs far more.
  if (md.feasible) {
    EXPECT_LT(sc.protectors.size(), md.cost + 1);
  }
}

TEST(EndToEnd, DetectedCommunitiesCloseToPlanted) {
  const DatasetSubstitute ds = make_hep_like(9, 0.06);
  const Partition truth(ds.net.membership);
  const Partition found = louvain(ds.net.graph, {.seed = 4});
  EXPECT_GT(normalized_mutual_information(found, truth), 0.6);
}

TEST(EndToEnd, GreedyReducesInfectionsOnSubstitute) {
  const DatasetSubstitute ds = make_enron_like(7, 0.02);
  const Partition truth(ds.net.membership);
  const CommunityId rc = ds.planted_small;

  const ExperimentSetup s = prepare_experiment(
      ds.net.graph, truth, rc, std::max<std::size_t>(1, truth.size_of(rc) / 10),
      13);
  if (s.bridges.bridge_ends.empty()) GTEST_SKIP();

  SelectorConfig cfg;
  cfg.greedy.alpha = 0.7;
  cfg.greedy.sigma.samples = 10;
  cfg.greedy.max_protectors = s.rumors.size() * 3;
  ThreadPool pool(2);
  const auto greedy = select_protectors(SelectorKind::kGreedy, s, cfg, &pool);

  MonteCarloConfig mc;
  mc.runs = 30;
  mc.max_hops = 31;
  const HopSeries with = evaluate_protectors(s, greedy, mc, &pool);
  const HopSeries without = evaluate_protectors(s, {}, mc, &pool);
  EXPECT_LT(with.final_infected_mean, without.final_infected_mean);
  EXPECT_GE(with.saved_fraction_mean, without.saved_fraction_mean);
}

TEST(EndToEnd, BinaryRoundTripPreservesPipelineResults) {
  const DatasetSubstitute ds = make_hep_like(2, 0.04);
  const std::string path = testing::TempDir() + "/lcrb_e2e_graph.bin";
  save_binary(ds.net.graph, path);
  const DiGraph loaded = load_binary(path);

  const Partition truth(ds.net.membership);
  const ExperimentSetup a = prepare_experiment(ds.net.graph, truth, 0, 2, 3);
  const ExperimentSetup b = prepare_experiment(loaded, truth, 0, 2, 3);
  EXPECT_EQ(a.rumors, b.rumors);
  EXPECT_EQ(a.bridges.bridge_ends, b.bridges.bridge_ends);
  std::remove(path.c_str());
}

TEST(EndToEnd, UmbrellaHeaderExposesEverything) {
  // Compile-time check mostly; touch one symbol per layer.
  Rng rng(1);
  const DiGraph g = erdos_renyi(30, 0.1, true, rng);
  const Partition p = louvain(g);
  EXPECT_EQ(p.num_nodes(), g.num_nodes());
  const DiffusionResult r = simulate_doam(g, {{0}, {}});
  EXPECT_GE(r.infected_count(), 1u);
  TextTable t;
  t.add_values("ok", 1);
  EXPECT_EQ(t.row_count(), 1u);
}

}  // namespace
}  // namespace lcrb
