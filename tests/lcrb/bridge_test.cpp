#include "lcrb/bridge.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace lcrb {
namespace {

// Two communities: {0,1,2} (rumor) and {3,4,5}. Arcs 2->3 (bridge), 4->5.
DiGraph two_communities() {
  return make_graph(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
}

TEST(BridgeEnds, BasicDetection) {
  const DiGraph g = two_communities();
  const Partition p({0, 0, 0, 1, 1, 1});
  const BridgeEndResult r = find_bridge_ends(g, p, 0, std::vector<NodeId>{0});
  // Node 3 is the only node outside C_0 with a direct in-neighbor inside.
  EXPECT_EQ(r.bridge_ends, (std::vector<NodeId>{3}));
  EXPECT_EQ(r.rumor_dist[3], 3u);
}

TEST(BridgeEnds, UnreachableBoundaryExcluded) {
  // 2 -> 3 exists but rumor at 1 cannot reach 2 (arcs point the other way).
  const DiGraph g = make_graph(4, {{1, 0}, {2, 3}});
  const Partition p({0, 0, 0, 1});
  const BridgeEndResult r = find_bridge_ends(g, p, 0, std::vector<NodeId>{1});
  EXPECT_TRUE(r.bridge_ends.empty());
}

TEST(BridgeEnds, NodesInsideRumorCommunityExcluded) {
  const DiGraph g = two_communities();
  const Partition p({0, 0, 0, 1, 1, 1});
  const BridgeEndResult r = find_bridge_ends(g, p, 0, std::vector<NodeId>{0});
  for (NodeId v : r.bridge_ends) EXPECT_NE(p.community_of(v), 0u);
}

TEST(BridgeEnds, ReachableNonBoundaryExcluded) {
  const DiGraph g = two_communities();
  const Partition p({0, 0, 0, 1, 1, 1});
  const BridgeEndResult r = find_bridge_ends(g, p, 0, std::vector<NodeId>{0});
  // 4 and 5 are reachable but their in-neighbors are outside C_0.
  for (NodeId v : {4u, 5u}) {
    EXPECT_EQ(std::find(r.bridge_ends.begin(), r.bridge_ends.end(), v),
              r.bridge_ends.end());
  }
}

TEST(BridgeEnds, MultipleRumorsMergeDistances) {
  // Community 0 = {0,1}; two boundary targets at different distances.
  const DiGraph g = make_graph(4, {{0, 2}, {1, 3}});
  const Partition p({0, 0, 1, 1});
  const BridgeEndResult r =
      find_bridge_ends(g, p, 0, std::vector<NodeId>{0, 1});
  EXPECT_EQ(r.bridge_ends, (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(r.rumor_dist[2], 1u);
  EXPECT_EQ(r.rumor_dist[3], 1u);
}

TEST(BridgeEnds, RumorOutsideCommunityThrows) {
  const DiGraph g = two_communities();
  const Partition p({0, 0, 0, 1, 1, 1});
  EXPECT_THROW(find_bridge_ends(g, p, 0, std::vector<NodeId>{3}), Error);
}

TEST(BridgeEnds, EmptyRumorsThrow) {
  const DiGraph g = two_communities();
  const Partition p({0, 0, 0, 1, 1, 1});
  EXPECT_THROW(find_bridge_ends(g, p, 0, std::vector<NodeId>{}), Error);
}

TEST(BridgeEnds, BadCommunityThrows) {
  const DiGraph g = two_communities();
  const Partition p({0, 0, 0, 1, 1, 1});
  EXPECT_THROW(find_bridge_ends(g, p, 7, std::vector<NodeId>{0}), Error);
}

// Property: on generated community graphs, every reported bridge end
// satisfies the definition, and every node satisfying it is reported.
class BridgePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BridgePropertyTest, DefinitionHoldsExactly) {
  CommunityGraphConfig cfg;
  cfg.community_sizes = {60, 60, 60, 60};
  cfg.avg_intra_degree = 5.0;
  cfg.avg_inter_degree = 1.0;
  cfg.seed = GetParam();
  const CommunityGraph cg = make_community_graph(cfg);
  const Partition p(cg.membership);

  Rng rng(GetParam() * 31 + 7);
  std::vector<NodeId> rumors;
  const auto& members = p.members(0);
  for (int i = 0; i < 3; ++i) {
    const NodeId v = members[rng.next_below(members.size())];
    if (std::find(rumors.begin(), rumors.end(), v) == rumors.end()) {
      rumors.push_back(v);
    }
  }

  const BridgeEndResult r = find_bridge_ends(cg.graph, p, 0, rumors);

  std::vector<bool> is_bridge(cg.graph.num_nodes(), false);
  for (NodeId v : r.bridge_ends) is_bridge[v] = true;

  for (NodeId v = 0; v < cg.graph.num_nodes(); ++v) {
    const bool reachable = r.rumor_dist[v] != kUnreached;
    bool boundary = false;
    for (NodeId w : cg.graph.in_neighbors(v)) {
      if (p.community_of(w) == 0) boundary = true;
    }
    const bool expected =
        p.community_of(v) != 0 && reachable && boundary;
    EXPECT_EQ(is_bridge[v], expected) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BridgePropertyTest,
                         ::testing::Values(1, 2, 3, 10, 77));

}  // namespace
}  // namespace lcrb
