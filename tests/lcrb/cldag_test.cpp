// CLDAG heuristic tests (He et al., arXiv:1110.4723): exact behavior on
// hand-built LDAG instances, theta's coarsening effect, and the headline
// check — blocking quality close to the Monte-Carlo exact greedy on small
// competitive-LT instances, at zero simulation cost.
#include <gtest/gtest.h>

#include <vector>

#include "diffusion/montecarlo.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "lcrb/bridge.h"
#include "lcrb/cldag.h"
#include "lcrb/greedy.h"
#include "util/rng.h"

namespace lcrb {
namespace {

constexpr double kTheta = 1.0 / 320.0;

BridgeEndResult bridges_on(const DiGraph& g, const std::vector<NodeId>& rumors,
                           std::vector<NodeId> ends) {
  BridgeEndResult b;
  b.bridge_ends = std::move(ends);
  b.rumor_dist.assign(g.num_nodes(), kUnreached);
  std::vector<NodeId> frontier, next;
  for (NodeId s : rumors) {
    b.rumor_dist[s] = 0;
    frontier.push_back(s);
  }
  for (std::uint32_t d = 1; !frontier.empty(); ++d) {
    next.clear();
    for (NodeId u : frontier) {
      for (NodeId w : g.out_neighbors(u)) {
        if (b.rumor_dist[w] == kUnreached) {
          b.rumor_dist[w] = d;
          next.push_back(w);
        }
      }
    }
    frontier.swap(next);
  }
  return b;
}

/// Mean fraction of bridge ends saved under competitive LT with `prot`
/// seeded as the protector cascade, over fixed realization seeds.
double lt_quality(const DiGraph& g, const std::vector<NodeId>& rumors,
                  const std::vector<NodeId>& prot,
                  const std::vector<NodeId>& ends) {
  MonteCarloConfig cfg;
  cfg.model = DiffusionModel::kLt;
  cfg.max_hops = 31;
  constexpr std::uint64_t kRuns = 200;
  double total = 0.0;
  for (std::uint64_t s = 0; s < kRuns; ++s) {
    SeedSets seeds;
    seeds.rumors = rumors;
    seeds.protectors = prot;
    total += simulate(g, seeds, s, cfg).saved_fraction(ends);
  }
  return total / static_cast<double>(kRuns);
}

TEST(CldagTest, BlocksTheOnlyPathToTheBridgeEnd) {
  // 0 -> 1 -> 2: the full rumor mass flows through node 1. Blocking 1 (or
  // the root 2 itself) zeroes ap(2); the lowest-id tie rule picks 1.
  const DiGraph g = make_graph(3, {{0, 1}, {1, 2}});
  const CldagResult r =
      cldag_protectors(g, {{0}}, {{2}}, /*budget=*/1, kTheta);
  ASSERT_EQ(r.protectors.size(), 1u);
  EXPECT_EQ(r.protectors[0], 1u);
  ASSERT_EQ(r.score_history.size(), 1u);
  EXPECT_DOUBLE_EQ(r.score_history[0], 1.0);  // ap(1) * alpha(1) = 1
}

TEST(CldagTest, StopsEarlyOnceTheRumorMassIsAbsorbed) {
  // A single chain: one block removes everything; further budget is unused.
  const DiGraph g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  const CldagResult r =
      cldag_protectors(g, {{0}}, {{3}}, /*budget=*/3, kTheta);
  EXPECT_EQ(r.protectors.size(), 1u);
  EXPECT_EQ(r.protectors[0], 1u);
}

TEST(CldagTest, TieBreakingDagificationIsDeterministic) {
  // Two disjoint length-2 paths into the bridge end 5, every interior node
  // at influence 1/2. Equal-influence nodes settle lowest-id-first, so the
  // position order is 5, 1, 0, 3 and the arc 0 -> 3 (position 2 -> 3, the
  // wrong direction) is dropped by the DAG-ification. Only the path through
  // node 1 carries mass: one pick of node 1 absorbs ap(5) = 1/2 and the
  // greedy stops with budget left over — a pin on the tie rule.
  const DiGraph g = make_graph(6, {{0, 1}, {1, 5}, {0, 3}, {3, 5}});
  const CldagResult r =
      cldag_protectors(g, {{0}}, {{5}}, /*budget=*/4, kTheta);
  ASSERT_EQ(r.protectors.size(), 1u);
  EXPECT_EQ(r.protectors[0], 1u);
  EXPECT_DOUBLE_EQ(r.score_history[0], 0.5);
  EXPECT_EQ(r.ldag_arcs, 3u);  // 4 graph arcs, 0 -> 3 dropped
}

TEST(CldagTest, LargerThetaShrinksTheLdags) {
  Rng rng(5);
  const DiGraph g = erdos_renyi(80, 0.06, true, rng);
  std::vector<NodeId> ends;
  for (NodeId v = 30; v < 50; ++v) ends.push_back(v);
  const CldagResult fine =
      cldag_protectors(g, {{0, 1}}, ends, /*budget=*/3, kTheta);
  const CldagResult coarse =
      cldag_protectors(g, {{0, 1}}, ends, /*budget=*/3, 0.5);
  EXPECT_LT(coarse.ldag_nodes, fine.ldag_nodes);
  EXPECT_LE(coarse.ldag_arcs, fine.ldag_arcs);
}

TEST(CldagTest, BlockingQualityTracksTheMonteCarloGreedy) {
  // The headline agreement check: on a small competitive-LT instance the
  // simulation-free CLDAG picks must achieve blocking quality close to the
  // Monte-Carlo LT greedy's (and strictly beat not blocking at all).
  Rng rng(23);
  const DiGraph g = erdos_renyi(50, 0.09, true, rng);
  const std::vector<NodeId> rumors{0, 1};
  std::vector<NodeId> ends;
  for (NodeId v = 10; v < 26; ++v) ends.push_back(v);
  const BridgeEndResult bridges = bridges_on(g, rumors, ends);

  const std::size_t budget = 3;
  const CldagResult cldag =
      cldag_protectors(g, rumors, bridges.bridge_ends, budget, kTheta);
  ASSERT_FALSE(cldag.protectors.empty());

  GreedyConfig cfg;
  cfg.alpha = 1.0;
  cfg.max_protectors = budget;
  cfg.sigma.model = DiffusionModel::kLt;
  cfg.sigma.samples = 30;
  cfg.sigma.seed = 3;
  const GreedyResult greedy =
      greedy_lcrbp_from_bridges(g, rumors, bridges, cfg, nullptr);

  const double q_none = lt_quality(g, rumors, {}, ends);
  const double q_cldag = lt_quality(g, rumors, cldag.protectors, ends);
  const double q_greedy = lt_quality(g, rumors, greedy.protectors, ends);

  EXPECT_GT(q_cldag, q_none) << "CLDAG blocked nothing";
  // Agreement band: the heuristic scores only absorbed rumor mass (no
  // protector spread), so it may trail the exact greedy — but on LDAG-sized
  // instances it must stay within 0.15 saved-fraction of it.
  EXPECT_GE(q_cldag, q_greedy - 0.15)
      << "CLDAG " << q_cldag << " vs greedy " << q_greedy;
}

}  // namespace
}  // namespace lcrb
